.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full gate: build everything, run the whole test suite, then a 5-seed
# crash-harness smoke (random fault plans, crash, recover, fsck,
# acknowledged-write verification).
check:
	dune build @all
	dune runtest
	dune exec bin/wafl_sim.exe -- crash --seeds 5

bench:
	dune exec bench/main.exe

clean:
	dune clean
