.PHONY: all build test lint sanitize trace-smoke check bench bench-quick clean

all: build

build:
	dune build @all

test:
	dune runtest

LINT = ./_build/default/tools/wafl_lint/main.exe

# Determinism lint: AST walk over lib/ and bin/ flagging stray RNG use,
# wall-clock reads, hash-order iteration and partition-state mutation
# outside the owning modules.  The second invocation is a self-check:
# the negative fixture must be flagged (exit non-zero), otherwise the
# lint has gone blind.
lint:
	dune build tools/wafl_lint/main.exe
	$(LINT) lib bin
	@if $(LINT) test/fixtures/lint_negative.ml >/dev/null 2>&1; then \
	  echo "lint self-check FAILED: negative fixture produced no findings"; \
	  exit 1; \
	else \
	  echo "lint self-check OK: negative fixture flagged"; \
	fi

# Sanitized smoke: an ad-hoc run plus the 5-seed crash harness under the
# race detector and affinity-isolation checker.  Any race report or
# isolation violation fails the target.
sanitize:
	dune build bin/wafl_sim.exe
	dune exec bin/wafl_sim.exe -- run --measure 0.5 --sanitize
	dune exec bin/wafl_sim.exe -- crash --seeds 5 --sanitize

# Observability smoke: a tiny traced run must export a trace file that
# is valid Chrome trace-event JSON (the obs test suite checks the JSON
# in depth; this just proves the CLI path end to end).
trace-smoke:
	dune build bin/wafl_sim.exe
	dune exec bin/wafl_sim.exe -- trace --seed 1 --measure 0.05 --out _build/trace_smoke.json
	@test -s _build/trace_smoke.json && echo "trace smoke OK: _build/trace_smoke.json"

# Full gate: build everything (lib/ with warnings as errors), run the
# whole test suite (including the Wafl_obs suite: span nesting, trace
# parse-back, byte-identical same-seed traces, off-vs-on bit-identity),
# the determinism lint, the sanitized smoke, a traced-run smoke, then a
# 5-seed crash-harness smoke (random fault plans, crash, recover, fsck,
# acknowledged-write verification).
check:
	dune build @all
	dune runtest
	$(MAKE) lint
	$(MAKE) sanitize
	$(MAKE) trace-smoke
	dune exec bin/wafl_sim.exe -- crash --seeds 5

bench:
	dune exec bench/main.exe

# Quarter-scale benchmark pass; still writes BENCH_paper.json.
bench-quick:
	WAFL_QUICK=1 dune exec bench/main.exe

clean:
	dune clean
