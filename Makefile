.PHONY: all build test lint analyze sanitize trace-smoke analyze-smoke overload-smoke shard-smoke flash-smoke top-smoke check bench bench-quick bench-gate bench-gate-fast clean

all: build

build:
	dune build @all

test:
	dune runtest

LINT = ./_build/default/tools/wafl_lint/main.exe

# Determinism lint: AST walk over lib/ and bin/ flagging stray RNG use,
# wall-clock reads, hash-order iteration and partition-state mutation
# outside the owning modules.  The second invocation is a self-check:
# the negative fixture must be flagged (exit non-zero), otherwise the
# lint has gone blind.
lint:
	dune build tools/wafl_lint/main.exe
	$(LINT) lib bin
	@if $(LINT) test/fixtures/lint_negative.ml >/dev/null 2>&1; then \
	  echo "lint self-check FAILED: negative fixture produced no findings"; \
	  exit 1; \
	else \
	  echo "lint self-check OK: negative fixture flagged"; \
	fi

ANALYZER = ./_build/default/tools/wafl_analyzer/main.exe

# Whole-program static analysis over the typedtrees (.cmt files):
# probe coverage for shared mutable state on scheduler-reachable paths,
# blocking calls under held mutexes, lock-order cycles, and the
# probe_locked-domain / Isolation-owner cross-check.  `dune build @all`
# first so every .cmt exists.  The second invocation is a self-check:
# the defect fixtures under test/fixtures/analyzer must be flagged
# (exit non-zero), otherwise the analyzer has gone blind.
analyze:
	dune build @all
	$(ANALYZER) _build/default/lib _build/default/bin
	@if $(ANALYZER) _build/default/test/fixtures/analyzer >/dev/null 2>&1; then \
	  echo "analyzer self-check FAILED: defect fixtures produced no findings"; \
	  exit 1; \
	else \
	  echo "analyzer self-check OK: defect fixtures flagged"; \
	fi

# Sanitized smoke: an ad-hoc run plus the 5-seed crash harness under the
# race detector and affinity-isolation checker.  Any race report or
# isolation violation fails the target.  The crash seeds fan over two
# worker domains — explicitly, so the pool path is exercised even on a
# single-core host where the default would serialize.
sanitize:
	dune build bin/wafl_sim.exe
	dune exec bin/wafl_sim.exe -- run --measure 0.5 --sanitize
	dune exec bin/wafl_sim.exe -- crash --seeds 5 --sanitize --domains 2

# Observability smoke: a tiny traced run must export a trace file that
# is valid Chrome trace-event JSON (the obs test suite checks the JSON
# in depth; this just proves the CLI path end to end).
trace-smoke:
	dune build bin/wafl_sim.exe
	dune exec bin/wafl_sim.exe -- trace --seed 1 --measure 0.05 --out _build/trace_smoke.json
	@test -s _build/trace_smoke.json && echo "trace smoke OK: _build/trace_smoke.json"

# Causal-analysis smoke: one figure run with --causal, then the offline
# analyzer over its trace.  Asserts the pipeline end to end: the run
# retained every event (no ring drops), and the analyzer extracted a
# connected critical path from an acyclic DAG.  The figure run's exit
# code is ignored (shape checks can MISS at reduced scale); the greps
# are the gate.
# (--domains 2 routes the figure's runs through the worker pool; a
# traced/causal run serializes them again internally so the single
# trace ring stays ordered — the flag still exercises the pool setup.)
analyze-smoke:
	dune build bin/wafl_sim.exe
	-dune exec --no-build bin/wafl_sim.exe -- fig6 --scale 0.1 --domains 2 --causal _build/causal_smoke.json > _build/analyze_smoke_run.txt 2>&1
	@grep -q "0 dropped" _build/analyze_smoke_run.txt || { echo "analyze smoke FAILED: causal run dropped trace events"; exit 1; }
	dune exec --no-build bin/wafl_sim.exe -- analyze _build/causal_smoke.json > _build/analyze_smoke.txt
	@grep -q "dropped events: 0" _build/analyze_smoke.txt || { echo "analyze smoke FAILED: analyzer saw dropped events"; exit 1; }
	@grep -q "acyclic: yes" _build/analyze_smoke.txt || { echo "analyze smoke FAILED: causal graph not acyclic"; exit 1; }
	@grep -q "critical path: CP" _build/analyze_smoke.txt || { echo "analyze smoke FAILED: no critical path extracted"; exit 1; }
	@grep -q "dominant:" _build/analyze_smoke.txt || { echo "analyze smoke FAILED: no bottleneck attribution"; exit 1; }
	@echo "analyze smoke OK: _build/analyze_smoke.txt"

# Overload smoke: the quarter-scale noisy-neighbor experiment (open-loop
# arrivals, watermark back-pressure, per-volume QoS) plus a 5-seed crash
# run whose crash points land inside throttled / back-to-back-CP
# windows.  The experiment exits non-zero if any isolation shape misses
# (victim p99 within 2x baseline with QoS on, no NVRAM exhaustion, ...).
overload-smoke:
	dune build bin/wafl_sim.exe
	dune exec --no-build bin/wafl_sim.exe -- overload --scale 0.25 --domains 2
	dune exec --no-build bin/wafl_sim.exe -- crash --overload --seeds 5 --domains 2

# Shard smoke: a quarter-scale fleet run on the conservative-lookahead
# partitioned engine — 3 aggregate shards coupled through the global
# CP-epoch barrier and fleet telemetry, windows executed on 2 worker
# domains.  The command exits non-zero on any shape miss and prints a
# run digest that is byte-identical at any domain count.
shard-smoke:
	dune build bin/wafl_sim.exe
	dune exec --no-build bin/wafl_sim.exe -- shard --scale 0.25 --shards 3 --domains 2

# Telemetry smoke: the operator fleet view end to end.  A healthy live
# run must export a wafl-top JSON snapshot with sealed windows and an
# empty health feed; the same snapshot must parse back and render; and
# a light-load run with the B2B chaos hook must light the watchdog up.
top-smoke:
	dune build bin/wafl_sim.exe
	dune exec --no-build bin/wafl_sim.exe -- top --live --measure 0.5 --json --out _build/top_smoke.json
	@grep -q '"schema":"wafl-top/1"' _build/top_smoke.json || { echo "top smoke FAILED: no wafl-top schema"; exit 1; }
	@grep -q '"windows":\[{' _build/top_smoke.json || { echo "top smoke FAILED: no sealed rollup windows"; exit 1; }
	@grep -q '"events":\[\]' _build/top_smoke.json || { echo "top smoke FAILED: healthy run emitted health events"; exit 1; }
	dune exec --no-build bin/wafl_sim.exe -- top _build/top_smoke.json > _build/top_smoke.txt
	@grep -q "fleet timeline" _build/top_smoke.txt || { echo "top smoke FAILED: snapshot did not render"; exit 1; }
	dune exec --no-build bin/wafl_sim.exe -- top --live --measure 0.5 --think 300 --cp-ms 3 --window 200 --inject-b2b --json --out _build/top_smoke_b2b.json
	@grep -q '"rule":"b2b_streak"' _build/top_smoke_b2b.json || { echo "top smoke FAILED: injected B2B streak not detected"; exit 1; }
	@echo "top smoke OK: _build/top_smoke.json"

# Flash smoke: the quarter-scale NAND media-model experiment (WAF vs
# device fill / OP / multi-stream write allocation; exits non-zero on
# any shape miss, e.g. streaming-on failing to beat streaming-off at
# high fill) plus a 5-seed crash run on a nearly-full device where
# crashes land mid-GC-cycle and the volatile L2P is rebuilt on recovery.
flash-smoke:
	dune build bin/wafl_sim.exe
	dune exec --no-build bin/wafl_sim.exe -- flash --scale 0.25 --domains 2
	dune exec --no-build bin/wafl_sim.exe -- crash --flash --seeds 5 --domains 2

# Full gate: build everything (lib/ with warnings as errors), run the
# whole test suite (including the Wafl_obs suite: span nesting, trace
# parse-back, byte-identical same-seed traces, off-vs-on bit-identity),
# the determinism lint, the sanitized smoke, a traced-run smoke, then a
# 5-seed crash-harness smoke (random fault plans, crash, recover, fsck,
# acknowledged-write verification).
check:
	dune build @all
	dune runtest
	$(MAKE) lint
	$(MAKE) analyze
	$(MAKE) sanitize
	$(MAKE) trace-smoke
	$(MAKE) analyze-smoke
	$(MAKE) overload-smoke
	$(MAKE) flash-smoke
	$(MAKE) shard-smoke
	$(MAKE) top-smoke
	dune exec bin/wafl_sim.exe -- crash --seeds 5 --domains 2
	$(MAKE) bench-gate-fast

bench:
	dune exec bench/main.exe

# Quarter-scale benchmark pass; still writes BENCH_paper.json.
bench-quick:
	WAFL_QUICK=1 dune exec bench/main.exe

BENCH_GATE = ./_build/default/tools/bench_gate/main.exe

# Perf regression gate: a fresh quarter-scale suite (written to _build,
# leaving the committed BENCH_paper.json untouched) must stay within
# 15% (+2 s jitter floor) of the committed per-figure wall times.
bench-gate:
	dune build bench/main.exe tools/bench_gate/main.exe
	WAFL_QUICK=1 WAFL_BENCH_OUT=_build/bench_gate.json dune exec bench/main.exe
	$(BENCH_GATE) BENCH_paper.json _build/bench_gate.json

# Fast subset of the gate for make check: four cheap figures (~5 s of
# simulation) instead of the full ~50 s suite.
bench-gate-fast:
	dune build bench/main.exe tools/bench_gate/main.exe
	WAFL_QUICK=1 WAFL_BENCH_OUT=_build/bench_gate_fast.json WAFL_BENCH_ONLY=fig4,batching,history,overload dune exec bench/main.exe
	$(BENCH_GATE) BENCH_paper.json _build/bench_gate_fast.json

clean:
	dune clean
