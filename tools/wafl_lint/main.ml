(* Determinism lint for the simulator sources.

   The whole repository leans on one property: a run is a pure function
   of its spec.  The simulator gets that from cooperative scheduling and
   virtual time, and loses it the moment somebody reads a wall clock,
   pulls entropy from the global [Random] state, or iterates a [Hashtbl]
   in hash order where the order feeds back into scheduling.  This tool
   walks every .ml file's AST (via compiler-libs) and flags:

   - any use of the [Random] module outside the seeded [Util.Rng]
     wrapper (rng.ml itself is exempt);
   - wall-clock reads: [Unix.gettimeofday], [Unix.time], [Sys.time];
   - hash-order iteration: [Hashtbl.iter] / [Hashtbl.fold] (insertion
     hashing makes the visit order an implementation detail);
   - qualified calls to the aggregate's partition-state mutators
     ([commit_alloc_pvbn] & friends) outside infra.ml / cp.ml — all
     other code must go through the Scheduler.post affinity API.

   A finding is suppressed when the token "lint-ok" appears on the
   flagged line or the line directly above it (typically in a comment
   explaining why the use is safe, e.g. a Hashtbl.fold whose result is
   sorted before use). *)

let findings = ref 0

type source = { name : string; lines : string array }

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (s, Array.of_list (String.split_on_char '\n' s))

let contains_sub line sub =
  let ls = String.length sub and ll = String.length line in
  let rec go i = i + ls <= ll && (String.sub line i ls = sub || go (i + 1)) in
  go 0

let suppressed src lnum =
  let check i = i >= 1 && i <= Array.length src.lines && contains_sub src.lines.(i - 1) "lint-ok" in
  check lnum || check (lnum - 1)

let report src (loc : Location.t) msg =
  let lnum = loc.loc_start.pos_lnum in
  if not (suppressed src lnum) then begin
    incr findings;
    Printf.printf "%s:%d: %s\n" src.name lnum msg
  end

let base name = Filename.basename name

let partition_mutators =
  [ "commit_alloc_pvbn"; "commit_free_pvbn"; "commit_alloc_vvbn"; "commit_free_vvbn" ]

(* Files allowed to touch the bitmap partitions directly: the
   infrastructure module that owns them and the CP engine's serial /
   repair paths (which run with the aggregate quiesced). *)
let mutator_whitelist = [ "infra.ml"; "cp.ml"; "aggregate.ml" ]

(* Files allowed to write trace events directly: the observability
   subsystem itself.  Everything else must record through the Trace API
   (with_span / instant / complete), which keeps the disabled path a
   single branch and the event stream well-formed. *)
let sink_whitelist = [ "trace.ml"; "metrics.ml"; "sink.ml" ]

(* Files allowed to call the raw causal-edge primitives on [Trace]
   (capture / restore / with_root / fiber_reset): the observability
   subsystem itself.  Instrumentation elsewhere must go through
   [Wafl_obs.Causal], so every causal edge in a trace comes from one
   audited API (and the analyzer can trust edge pairing). *)
let causal_primitives = [ "capture"; "restore"; "with_root"; "fiber_reset" ]
let causal_whitelist = [ "trace.ml"; "causal.ml" ]

(* Files allowed to append raw health events: the watchdog itself.  Every
   alert elsewhere must come from a typed rule evaluated at window seal,
   so the event stream stays structured (and the fleet view can trust
   rule names). *)
let health_whitelist = [ "health.ml" ]

let check_path src loc path =
  match path with
  | "Random" :: _ when base src.name <> "rng.ml" ->
      report src loc
        "use of the global Random module; draw from the seeded Util.Rng instead (determinism)"
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      report src loc
        (Printf.sprintf "wall-clock read %s; use the engine's virtual clock (Engine.now)"
           (String.concat "." path))
  | _ -> (
      match List.rev path with
      | field :: "Hashtbl" :: _ when field = "iter" || field = "fold" ->
          report src loc
            (Printf.sprintf
               "Hashtbl.%s visits in hash order; iterate a sorted or insertion-ordered key \
                list (or mark lint-ok if the result is order-insensitive)"
               field)
      | field :: _ :: _ when List.mem field partition_mutators ->
          if not (List.mem (base src.name) mutator_whitelist) then
            report src loc
              (Printf.sprintf
                 "%s mutates partitioned bitmap state; only Infra/Cp may call it — post a \
                  message under the owning affinity instead"
                 field)
      | "record" :: "Sink" :: _ ->
          if not (List.mem (base src.name) sink_whitelist) then
            report src loc
              "Sink.record writes raw trace events; go through the Wafl_obs.Trace API \
               (with_span / instant / complete) instead"
      | "emit" :: "Health" :: _ ->
          if not (List.mem (base src.name) health_whitelist) then
            report src loc
              "Health.emit appends raw watchdog events; add a typed Health.rule evaluated \
               at window seal instead"
      | field :: "Trace" :: _ when List.mem field causal_primitives ->
          if not (List.mem (base src.name) causal_whitelist) then
            report src loc
              (Printf.sprintf
                 "Trace.%s emits raw causal flow events; instrument through Wafl_obs.Causal \
                  so every causal edge comes from one audited API"
                 field)
      | _ -> ())

(* A handler pattern that swallows every exception: [_], possibly
   aliased or in an or-pattern arm. *)
let rec catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) -> catch_all p
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let check_catch_all src (cases : Parsetree.case list) ~in_try =
  List.iter
    (fun (c : Parsetree.case) ->
      let flag loc =
        report src loc
          "catch-all exception handler swallows typed faults (e.g. Nvlog.Exhausted); match \
           the exceptions you mean, or mark lint-ok with a reason"
      in
      if in_try then begin
        if catch_all c.pc_lhs then flag c.pc_lhs.ppat_loc
      end
      else
        (* [match ... with exception _ ->] is a try in disguise *)
        match c.pc_lhs.ppat_desc with
        | Ppat_exception p when catch_all p -> flag c.pc_lhs.ppat_loc
        | _ -> ())
    cases

let iterator src =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_path src loc (Longident.flatten txt)
    | Pexp_open ({ popen_expr = { pmod_desc = Pmod_ident { txt; loc }; _ }; _ }, _) ->
        (* [let open Random in ...] smuggles the module in unqualified. *)
        check_path src loc (Longident.flatten txt)
    | Pexp_try (_, cases) -> check_catch_all src cases ~in_try:true
    | Pexp_match (_, cases) -> check_catch_all src cases ~in_try:false
    | _ -> ());
    default_iterator.expr it e
  in
  let open_description it (od : Parsetree.open_description) =
    check_path src od.popen_expr.loc (Longident.flatten od.popen_expr.txt);
    default_iterator.open_description it od
  in
  { default_iterator with expr; open_description }

let lint_file path =
  let text, lines = read_lines path in
  let src = { name = path; lines } in
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | ast ->
      let it = iterator src in
      it.Ast_iterator.structure it ast
  | exception _ ->
      incr findings;
      Printf.printf "%s:1: parse error (file skipped)\n" path

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        let child = Filename.concat path entry in
        if Sys.is_directory child || Filename.check_suffix entry ".ml" then walk child)
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then lint_file path

let () =
  let roots = match Array.to_list Sys.argv with _ :: [] -> [ "lib" ] | _ :: r -> r | [] -> [] in
  List.iter walk roots;
  if !findings > 0 then begin
    Printf.printf "wafl_lint: %d finding(s)\n" !findings;
    exit 1
  end
