(* Bench regression gate: compare a fresh benchmark run against the
   committed BENCH_paper.json baseline, per figure.

     bench_gate BASELINE.json FRESH.json

   A figure regresses when its fresh wall time exceeds the baseline's by
   more than 15% plus an absolute slack of 2 s, or when its end-to-end
   write p99 exceeds the baseline's by more than 25% plus a 100 us
   jitter floor.  Wall time drifts with the host; the p99 is a virtual-
   time measurement, so it is deterministic at a fixed (scale, seed) —
   the generous slack only absorbs intentional model recalibrations,
   while a genuine latency regression (a serialization bug, a lost
   parallelism path) shows up as a multiple.  Figures lacking the p99
   field on either side (pre-v3 baselines, figures with no writes) skip
   the latency gate.  The absolute slack is a
   jitter floor: on a shared single-core host a ~5 s figure varies by
   over 30% run-to-run, so short figures (and fig6, which is fully
   memoized and takes ~0 s) are effectively gated by the floor while the
   15% rule bites on the long ones, where real regressions show.  Only
   figures
   present in both files are compared, so a fast-subset run gates just
   the figures it measured.  Exit status 1 on any regression.

   Wall time scales with the worker-domain count (results don't — runs
   are byte-identical at any count), so the comparison must be
   like-for-like: when the fresh run's "domains" differs from the
   baseline's top-level run, the gate looks for a baseline
   "runs_by_config" entry at the fresh (scale, domains) pair and
   compares against that.  With no matching entry there is nothing
   honest to compare — the gate prints a notice and exits 0 rather
   than fail builds on the first run at a new core count. *)

module J = Wafl_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> fail "bench_gate: %s" e in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match J.of_string body with
  | Ok doc -> doc
  | Error e -> fail "bench_gate: %s: %s" path e

let figures doc path =
  match J.member "figures" doc with
  | Some (J.Arr figs) ->
      List.filter_map
        (fun f ->
          match (J.member "name" f, J.member "wall_s" f) with
          | Some (J.Str n), Some (J.Num w) ->
              let p99 =
                match J.member "write_p99_us" f with
                | Some (J.Num p) when p > 0.0 -> Some p
                | _ -> None
              in
              Some (n, (w, p99))
          | _ -> None)
        figs
  | _ -> fail "bench_gate: %s: no figures array" path

let scale_of doc path =
  match J.member "scale" doc with
  | Some (J.Num s) -> s
  | _ -> fail "bench_gate: %s: no scale" path

(* Pre-v6 files have no "domains" field; those runs were single-domain. *)
let domains_of doc =
  match J.member "domains" doc with Some (J.Num d) -> int_of_float d | _ -> 1

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> fail "usage: bench_gate BASELINE.json FRESH.json"
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  let bs = scale_of baseline baseline_path and fs = scale_of fresh fresh_path in
  if bs <> fs then
    fail "bench_gate: scale mismatch (baseline %.2f vs fresh %.2f): not comparable" bs fs;
  let fd = domains_of fresh in
  let baseline =
    if domains_of baseline = fd then baseline
    else begin
      let key = Printf.sprintf "%.2f/d%d" fs fd in
      match J.member "runs_by_config" baseline with
      | Some (J.Obj runs) when List.mem_assoc key runs ->
          Printf.printf "bench gate: baseline is %d-domain, fresh is %d-domain; comparing against baseline entry %s\n"
            (domains_of baseline) fd key;
          List.assoc key runs
      | _ ->
          Printf.printf
            "bench gate: skipped — baseline has no %d-domain run at scale %.2f (wall time is not comparable across domain counts)\n"
            fd fs;
          exit 0
    end
  in
  let base_figs = figures baseline baseline_path in
  let fresh_figs = figures fresh fresh_path in
  let slack_abs = 2.0 and slack_rel = 1.15 in
  let p99_floor_us = 100.0 and p99_rel = 1.25 in
  let regressed = ref [] in
  let compared = ref 0 in
  List.iter
    (fun (name, (fw, fp99)) ->
      match List.assoc_opt name base_figs with
      | None -> Printf.printf "  %-18s %6.1fs  (new figure, no baseline)\n" name fw
      | Some (bw, bp99) ->
          incr compared;
          let limit = (bw *. slack_rel) +. slack_abs in
          let wall_bad = fw > limit in
          let p99_report, p99_bad =
            match (bp99, fp99) with
            | Some b, Some f ->
                let plimit = (b *. p99_rel) +. p99_floor_us in
                ( Printf.sprintf ", p99 %.0fus vs %.0fus (limit %.0fus)" f b plimit,
                  f > plimit )
            | _ -> ("", false)
          in
          let status =
            if wall_bad && p99_bad then "REGRESSED (wall, p99)"
            else if wall_bad then "REGRESSED (wall)"
            else if p99_bad then "REGRESSED (p99)"
            else "ok"
          in
          if wall_bad || p99_bad then regressed := name :: !regressed;
          Printf.printf "  %-18s %6.1fs vs %6.1fs baseline (limit %.1fs)%s  [%s]\n" name fw bw
            limit p99_report status)
    fresh_figs;
  if !compared = 0 then fail "bench_gate: no common figures between %s and %s" baseline_path fresh_path;
  match !regressed with
  | [] -> Printf.printf "bench gate OK: %d figure(s) within limits\n" !compared
  | l ->
      Printf.printf
        "bench gate FAILED: %s regressed (wall >15%% +2s slack, or write p99 >25%% +100us) vs %s\n"
        (String.concat ", " (List.rev l))
        baseline_path;
      exit 1
