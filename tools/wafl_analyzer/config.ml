(* Static configuration of the whole-program analyzer: which units are
   below the model (exempt substrate), which stdlib/util modules are
   passive containers whose mutations are attributed to the caller, what
   counts as a probe declaration, a blocking primitive, or a fiber
   spawner.  Kept in one place so the analysis rules are auditable. *)

(* Units whose internal state is the simulation substrate itself — the
   engine, the race detector, the sync primitives and the observability
   sinks implement the probe/edge machinery, so they sit below the
   abstraction the analyzer checks.  Counters is the relaxed monotonic
   counter registry: the dynamic sanitizer orders its bumps through the
   probe_atomic declarations at the enclosing touchpoints, and a static
   per-bump requirement would demand a probe at every counter increment
   in the tree. *)
let exempt_units =
  [ "Engine"; "Race"; "Sync"; "Cost"; (* lib/sim: the substrate *)
    "Partition"; (* lib/sim: the partitioned-engine coordinator — its
                    outbox/inbox/horizon state is the window-barrier
                    machinery itself, mutated only between barriers or by
                    the owning partition's fibers *)
    "Trace"; "Sink"; "Metrics"; "Causal"; "Json"; (* lib/obs: host-side, never schedules *)
    "Isolation"; (* the affinity checker itself *)
    "Counters"; (* relaxed counters, see above *)
    "Pool" (* the worker-domain pool: its team barrier is built from
              host Mutex/Condition/Atomic, below the model *) ]

(* Passive containers: mutable data structures with no identity of their
   own.  An access inside them is attributed to the *caller's* argument
   (e.g. [Histogram.add rec_.whist x] is a write to the recorder's
   [whist] field), and their own bodies are not findings.  Per module:
   (name, writes, reads); a call to a function not listed is ignored
   (pure or shape-only). *)
let containers =
  [
    ( "Hashtbl",
      [ "add"; "replace"; "remove"; "clear"; "reset"; "filter_map_inplace" ],
      [ "find"; "find_opt"; "find_all"; "mem"; "length"; "iter"; "fold" ] );
    ( "Array",
      [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "fast_sort" ],
      [ "get"; "unsafe_get" ] );
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ], [ "peek"; "top"; "length" ]);
    ("Stack", [ "push"; "pop"; "clear" ], [ "top"; "length" ]);
    ("Buffer", [ "add_string"; "add_char"; "clear"; "reset" ], [ "contents"; "length" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit" ], [ "get"; "unsafe_get" ]);
    (* lib/util containers *)
    ("Histogram", [ "add"; "merge"; "clear" ], [ "percentile"; "count"; "mean"; "max" ]);
    ( "Intvec",
      [ "push"; "set"; "clear"; "extract"; "blit"; "sort" ],
      [ "get"; "length" ] );
    ("Table", [ "add_row"; "clear" ], []);
    ("Stats", [ "add" ], [ "mean"; "stddev" ]);
    (* A seeded PRNG advances internal state on every draw. *)
    ("Rng", [ "int"; "float"; "bool"; "exponential"; "split"; "shuffle" ], []);
  ]

(* Container units own no families of their own: their internal field
   mutations are the caller's accesses (attributed via [containers]
   above), so bodies of these lib/util modules never produce coverage
   findings. *)
let container_units = List.map (fun (m, _, _) -> m) containers
let is_container_unit u = List.mem u container_units

let probe_fns = [ "probe"; "probe_atomic"; "probe_locked" ]
let is_probe ~unit_ ~fn = unit_ = "Engine" && List.mem fn probe_fns

(* Fiber / message entry points: the function argument becomes a
   scheduler root.  (unit, function, nth positional argument counting
   only unlabeled arguments — the body closure.) *)
let spawners = [ ("Engine", "spawn"); ("Scheduler", "post"); ("Scheduler", "post_wait") ]

(* Worker-domain fan-out points: closures handed to these run
   concurrently on OCaml 5 domains (real parallelism, unlike fibers).
   The collector marks every function value in their argument lists as a
   domain root for the domain-safety pass. *)
let domain_spawners =
  [ ("Pool", "run"); ("Pool", "map"); ("Pool", "team_run"); ("Exp", "par_map") ]

(* Blocking primitives for the blocking-while-holding-lock pass.
   [Sync.Mutex.lock] is deliberately absent: acquiring a second lock is
   the subject of the lock-order pass, not a blocking finding. *)
let blocking =
  [
    ("Engine", "sleep");
    ("Engine", "park");
    ("Engine", "join");
    ("Waitq", "wait");
    ("Condition", "wait");
    ("Channel", "send");
    ("Channel", "recv");
    ("Scheduler", "post_wait");
    ("Scheduler", "drain");
    ("Aggregate", "wait_for_log_space");
  ]

let is_blocking ~unit_ ~fn = List.mem (unit_, fn) blocking

(* Lock primitives (Sync.Mutex / Sync.Condition live in nested modules,
   so call paths end with ["Mutex"; op] etc.). *)
let is_lock = function "Mutex", "lock" -> true | _ -> false
let is_unlock = function "Mutex", "unlock" -> true | _ -> false
let is_with_lock = function "Mutex", "with_lock" -> true | _ -> false
let is_condition_wait = function "Condition", "wait" -> true | _ -> false
let is_register_owner ~unit_ ~fn = unit_ = "Isolation" && fn = "register_owner"
