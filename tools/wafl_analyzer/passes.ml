(* The whole-program analyses over the collected IR:

   1. probe coverage / ownership — families of shared mutable state
      reachable from more than one scheduler root must belong to a unit
      covered by a probe gate;
   2. blocking-while-holding-lock — no call path from a held-lock region
      may reach a blocking primitive;
   3. lock-order cycles — the static acquired-while-held graph must be
      acyclic;
   4. domain-safety — module-level mutable state written from closures
      the worker-domain pool executes must be under a host mutex (or
      Atomic / Domain.DLS, which never register as plain accesses);

   plus the static/dynamic ownership cross-check: every probe_locked
   domain name must have a matching Isolation.register_owner. *)

open Ir

let resolve_call prog (c : call) = find_node prog ~unit_:c.c_unit ~name:c.c_name

let uniq lst =
  let seen = Hashtbl.create 16 in
  List.filter (fun x ->
      if Hashtbl.mem seen x then false
      else (
        Hashtbl.replace seen x ();
        true))
    lst

(* --- reachability ------------------------------------------------------- *)

let reach_from prog root =
  let seen = Hashtbl.create 64 in
  let rec go n =
    let id = node_id n in
    if not (Hashtbl.mem seen id) then (
      Hashtbl.replace seen id ();
      List.iter (fun c -> match resolve_call prog c with Some t -> go t | None -> ()) n.n_calls)
  in
  go root;
  seen

(* --- pass 1: probe coverage --------------------------------------------- *)

(* A "pure probe helper" declares probes and nothing else: no accesses,
   and every program-resolved call it makes targets the exempt substrate
   (or another helper).  Calling one is as good as probing inline. *)
let probe_helpers prog =
  let helpers = Hashtbl.create 8 in
  let is_candidate n = n.n_probes <> [] && n.n_accesses = [] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if is_candidate n && not (Hashtbl.mem helpers (node_id n)) then
          let ok =
            List.for_all
              (fun c ->
                match resolve_call prog c with
                | None -> true
                | Some t ->
                    List.mem t.n_unit Config.exempt_units || Hashtbl.mem helpers (node_id t))
              n.n_calls
          in
          if ok then (
            Hashtbl.replace helpers (node_id n) ();
            changed := true))
      (nodes_in_order prog)
  done;
  helpers

(* Units covered by a probe gate: a gate (node with a probe declaration,
   or calling a pure probe helper) covers its own unit and every unit it
   directly calls into — the probe declares the scheduling edges for the
   state that code manipulates. *)
let covered_units prog =
  let helpers = probe_helpers prog in
  let covered = Hashtbl.create 32 in
  List.iter
    (fun n ->
      let is_gate =
        n.n_probes <> []
        || List.exists
             (fun c ->
               match resolve_call prog c with
               | Some t -> Hashtbl.mem helpers (node_id t)
               | None -> false)
             n.n_calls
      in
      if is_gate then (
        Hashtbl.replace covered n.n_unit ();
        List.iter
          (fun c ->
            match resolve_call prog c with
            | Some t -> Hashtbl.replace covered t.n_unit ()
            | None -> ())
          n.n_calls))
    (nodes_in_order prog);
  covered

type fam_info = {
  fi_fam : fam;
  mutable fi_sites : (node * access) list;
}

let family_table prog =
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun n ->
      List.iter
        (fun a ->
          let id = fam_id a.a_fam ^ if a.a_fam.f_captured then "$c" else "" in
          let fi =
            match Hashtbl.find_opt tbl id with
            | Some fi -> fi
            | None ->
                let fi = { fi_fam = a.a_fam; fi_sites = [] } in
                Hashtbl.replace tbl id fi;
                fi
          in
          fi.fi_sites <- (n, a) :: fi.fi_sites)
        n.n_accesses)
    (nodes_in_order prog);
  tbl

let pass_coverage prog =
  let covered = covered_units prog in
  let roots = List.filter (fun n -> n.n_root) (nodes_in_order prog) in
  let reach = List.map (fun r -> (r, reach_from prog r)) roots in
  let fams = family_table prog in
  let findings = ref [] in
  let fam_list =
    Hashtbl.fold (fun _ fi acc -> fi :: acc) fams []
    |> List.sort (fun a b -> compare (fam_id a.fi_fam) (fam_id b.fi_fam))
  in
  List.iter
    (fun fi ->
      let f = fi.fi_fam in
      if
        (not (List.mem f.f_unit Config.exempt_units))
        && not (Config.is_container_unit f.f_unit)
      then (
        let touching =
          List.filter
            (fun (_, set) ->
              List.exists (fun (n, _) -> Hashtbl.mem set (node_id n)) fi.fi_sites)
            reach
        in
        (* sharing: a family is contended when reachable from two root
           instances — two distinct roots, or one root spawned
           many times (loop / per-request closure) *)
        let weight =
          List.fold_left (fun acc (r, _) -> acc + if r.n_multi then 2 else 1) 0 touching
        in
        let shared =
          if f.f_captured then List.length touching >= 2 else weight >= 2
        in
        if shared && not (Hashtbl.mem covered f.f_unit) then
          let writes = List.filter (fun (_, a) -> a.a_mode = Write) fi.fi_sites in
          (* read-only state is not a race, but shared state with no
             writer anywhere reachable is config — skip it *)
          if writes <> [] then (
            let site_lines =
              uniq
                (List.map
                   (fun (n, a) ->
                     Printf.sprintf "%s at %s:%d (%s)" (mode_name a.a_mode) a.a_loc.file
                       a.a_loc.line (node_id n))
                   fi.fi_sites)
            in
            let root_lines =
              List.map
                (fun (r, _) ->
                  Printf.sprintf "root %s%s" (node_id r) (if r.n_multi then " (many instances)" else ""))
                touching
            in
            let _, a0 = List.hd writes in
            findings :=
              {
                pass = "probe-coverage";
                loc = a0.a_loc;
                subject = fam_id f;
                message =
                  Printf.sprintf
                    "shared mutable state '%s'%s is reached from %s but unit %s has no \
                     Engine.probe gate"
                    (fam_id f)
                    (if f.f_captured then " (captured by a spawned closure)" else "")
                    (match touching with
                    | [ (r, _) ] -> Printf.sprintf "many instances of root %s" (node_id r)
                    | l -> Printf.sprintf "%d scheduler roots" (List.length l))
                    f.f_unit;
                detail = root_lines @ site_lines;
              }
              :: !findings)))
    fam_list;
  List.rev !findings

(* --- pass 2: blocking while holding a lock ------------------------------- *)

let may_block_set prog =
  let mb = Hashtbl.create 64 in
  List.iter (fun n -> if n.n_blocking <> [] then Hashtbl.replace mb (node_id n) ())
    (nodes_in_order prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if not (Hashtbl.mem mb (node_id n)) then
          if
            List.exists
              (fun c ->
                match resolve_call prog c with
                | Some t -> Hashtbl.mem mb (node_id t)
                | None -> false)
              n.n_calls
          then (
            Hashtbl.replace mb (node_id n) ();
            changed := true))
      (nodes_in_order prog)
  done;
  mb

(* Shortest chain of calls from [n] to a direct blocking primitive. *)
let block_chain prog n =
  let rec go seen n =
    match n.n_blocking with
    | (prim, _) :: _ -> Some [ node_id n ^ " -> " ^ prim ]
    | [] ->
        if List.mem (node_id n) seen then None
        else
          List.find_map
            (fun c ->
              match resolve_call prog c with
              | Some t -> (
                  match go (node_id n :: seen) t with
                  | Some chain -> Some ((node_id n ^ " -> " ^ node_id t) :: chain)
                  | None -> None)
              | None -> None)
            n.n_calls
  in
  match go [] n with Some chain -> chain | None -> []

let pass_blocking prog =
  let mb = may_block_set prog in
  let findings = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun ls ->
          match ls.ls_target with
          | `Block prim ->
              findings :=
                {
                  pass = "blocking";
                  loc = ls.ls_loc;
                  subject = node_id n;
                  message =
                    Printf.sprintf "%s called while holding %s" prim
                      (String.concat ", " ls.ls_held);
                  detail = [];
                }
                :: !findings
          | `Call (u, fn) -> (
              match find_node prog ~unit_:u ~name:fn with
              | Some t when Hashtbl.mem mb (node_id t) ->
                  findings :=
                    {
                      pass = "blocking";
                      loc = ls.ls_loc;
                      subject = node_id n;
                      message =
                        Printf.sprintf "call to %s.%s while holding %s can block" u fn
                          (String.concat ", " ls.ls_held);
                      detail = block_chain prog t;
                    }
                    :: !findings
              | _ -> ())
          | `Acquire _ -> ())
        (List.rev n.n_lock_sites))
    (nodes_in_order prog);
  List.rev !findings

(* --- pass 3: lock-order cycles ------------------------------------------ *)

(* Lock classes a node may acquire, transitively through its calls. *)
let acquires_star prog =
  let acq = Hashtbl.create 64 in
  let get n = match Hashtbl.find_opt acq (node_id n) with Some s -> s | None -> [] in
  List.iter
    (fun n ->
      if n.n_acquires <> [] then
        Hashtbl.replace acq (node_id n) (uniq (List.map fst n.n_acquires)))
    (nodes_in_order prog);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let mine = get n in
        let extra =
          List.concat_map
            (fun c -> match resolve_call prog c with Some t -> get t | None -> [])
            n.n_calls
        in
        let merged = uniq (mine @ extra) in
        if List.length merged > List.length mine then (
          Hashtbl.replace acq (node_id n) merged;
          changed := true))
      (nodes_in_order prog)
  done;
  acq

let pass_lock_order prog =
  let acq = acquires_star prog in
  (* edges: held -> acquired *)
  let edges = Hashtbl.create 32 in
  let add_edge a b loc =
    if a <> b then
      let cur = match Hashtbl.find_opt edges a with Some l -> l | None -> [] in
      if not (List.exists (fun (b', _) -> b' = b) cur) then
        Hashtbl.replace edges a ((b, loc) :: cur)
  in
  List.iter
    (fun n ->
      List.iter
        (fun ls ->
          match ls.ls_target with
          | `Acquire cls -> List.iter (fun h -> add_edge h cls ls.ls_loc) ls.ls_held
          | `Call (u, fn) -> (
              match find_node prog ~unit_:u ~name:fn with
              | Some t ->
                  let inner =
                    match Hashtbl.find_opt acq (node_id t) with Some l -> l | None -> []
                  in
                  List.iter
                    (fun cls -> List.iter (fun h -> add_edge h cls ls.ls_loc) ls.ls_held)
                    inner
              | None -> ())
          | `Block _ -> ())
        n.n_lock_sites)
    (nodes_in_order prog);
  (* cycle classes: reach themselves through >= 1 edge *)
  let reachable_from cls =
    let seen = Hashtbl.create 8 in
    let rec go c =
      List.iter
        (fun (d, _) ->
          if not (Hashtbl.mem seen d) then (
            Hashtbl.replace seen d ();
            go d))
        (match Hashtbl.find_opt edges c with Some l -> l | None -> [])
    in
    go cls;
    seen
  in
  let classes = Hashtbl.fold (fun a _ acc -> a :: acc) edges [] |> List.sort compare in
  let reach = List.map (fun c -> (c, reachable_from c)) classes in
  let in_cycle = List.filter (fun (c, r) -> Hashtbl.mem r c) reach in
  (* group mutually-reachable classes into one finding per cycle *)
  let reported = Hashtbl.create 8 in
  List.filter_map
    (fun (c, r) ->
      if Hashtbl.mem reported c then None
      else (
        let members =
          List.filter
            (fun (d, rd) -> Hashtbl.mem r d && Hashtbl.mem rd c)
            in_cycle
          |> List.map fst
        in
        List.iter (fun m -> Hashtbl.replace reported m ()) members;
        let edge_lines =
          List.concat_map
            (fun m ->
              List.filter_map
                (fun (d, loc) ->
                  if List.mem d members then
                    Some (Printf.sprintf "%s -> %s at %s:%d" m d loc.file loc.line)
                  else None)
                (match Hashtbl.find_opt edges m with Some l -> l | None -> []))
            members
        in
        let loc =
          match edge_lines with
          | _ -> (
              match Hashtbl.find_opt edges c with
              | Some ((_, l) :: _) -> l
              | _ -> { file = "<unknown>"; line = 0 })
        in
        Some
          {
            pass = "lock-order";
            loc;
            subject = String.concat " <-> " members;
            message =
              Printf.sprintf "lock-order cycle between { %s }: potential deadlock"
                (String.concat ", " members);
            detail = edge_lines;
          }))
    in_cycle

(* --- ownership cross-check ---------------------------------------------- *)

(* String literals a node (transitively) mentions — used to resolve
   domain-name generator functions like Aggregate.agg_map_domain, whose
   bodies are sprintf format literals.  Names are normalized by cutting
   at the first format directive, so "agg.map/%d" matches the
   register_owner call that used the same generator. *)
let literals_star prog =
  let memo = Hashtbl.create 64 in
  let rec go seen n =
    let id = node_id n in
    match Hashtbl.find_opt memo id with
    | Some l -> l
    | None ->
        if List.mem id seen then []
        else
          let l =
            n.n_strings
            @ List.concat_map
                (fun c ->
                  match resolve_call prog c with
                  | Some t -> go (id :: seen) t
                  | None -> [])
                n.n_calls
          in
          let l = uniq l in
          Hashtbl.replace memo id l;
          l
  in
  fun n -> go [] n

let norm_domain s = match String.index_opt s '%' with Some i -> String.sub s 0 i | None -> s

let domain_names prog probes =
  let lits = literals_star prog in
  List.concat_map
    (fun p ->
      match (p.p_literal, p.p_gen) with
      | Some l, _ -> [ (norm_domain l, p.p_loc) ]
      | None, Some (u, fn) -> (
          match find_node prog ~unit_:u ~name:fn with
          | Some t -> List.map (fun l -> (norm_domain l, p.p_loc)) (lits t)
          | None -> [])
      | None, None -> [])
    probes

(* Exposed for --verbose / tests: the two sides of the cross-check. *)
let ownership_sets prog =
  let locked =
    List.concat_map
      (fun n -> List.filter (fun p -> p.p_kind = "probe_locked") n.n_probes)
      (nodes_in_order prog)
  in
  ( uniq (List.map fst (domain_names prog locked)),
    uniq (List.map fst (domain_names prog prog.owners_declared)) )

let pass_ownership prog =
  let locked =
    List.concat_map
      (fun n -> List.filter (fun p -> p.p_kind = "probe_locked") n.n_probes)
      (nodes_in_order prog)
  in
  let probed = domain_names prog locked in
  let owned = List.map fst (domain_names prog prog.owners_declared) in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (name, loc) ->
      if name = "" || Hashtbl.mem seen name then None
      else (
        Hashtbl.replace seen name ();
        if List.exists (fun o -> o = name) owned then None
        else
          Some
            {
              pass = "ownership";
              loc;
              subject = name;
              message =
                Printf.sprintf
                  "probe_locked domain '%s' has no matching Isolation.register_owner: \
                   static ownership cannot be cross-checked"
                  name;
              detail = [];
            }))
    probed

(* --- pass 5: domain-safety ---------------------------------------------- *)

(* Closures handed to the worker-domain pool (Wafl_util.Pool.run / map /
   team_run, Exp.par_map) execute concurrently on OCaml 5 domains —
   real parallelism, unlike cooperatively-scheduled fibers.  A write to
   module-level mutable state (or to a local captured across the pool
   boundary) from code reachable from such a closure is a data race and
   a determinism hazard unless a host mutex is held at the site.
   Acceptable disciplines the collector sees through:
   - [Mutex]: the write site carries the held lock class ([a_held]), or
     its node acquires some lock (the coarse fallback covers
     [with_lock]-style bodies the sequence tracker cannot scope);
   - [Atomic] / [Domain.DLS]: their operations never register as plain
     family accesses, so guarded state is naturally silent;
   - per-domain ownership: per-run records allocated inside the closure
     are not module-level families ([f_global] is false) and are
     skipped.
   Reads are not flagged: a flag set by the host before fan-out and
   only read inside the pool (Exp.sanitize, Driver.memoize, ...) is the
   sanctioned configuration pattern. *)
let pass_domain prog =
  let droots = List.filter (fun n -> n.n_domain) (nodes_in_order prog) in
  let reach = List.map (fun r -> (r, reach_from prog r)) droots in
  let fams = family_table prog in
  let fam_list =
    Hashtbl.fold (fun _ fi acc -> fi :: acc) fams []
    |> List.sort (fun a b -> compare (fam_id a.fi_fam) (fam_id b.fi_fam))
  in
  List.filter_map
    (fun fi ->
      let f = fi.fi_fam in
      if
        List.mem f.f_unit Config.exempt_units
        || Config.is_container_unit f.f_unit
        || not (f.f_global || f.f_captured)
      then None
      else
        let in_reach n =
          List.exists (fun (_, set) -> Hashtbl.mem set (node_id n)) reach
        in
        let unguarded =
          List.filter
            (fun (n, a) ->
              a.a_mode = Write && a.a_held = [] && n.n_acquires = [] && in_reach n)
            fi.fi_sites
        in
        match unguarded with
        | [] -> None
        | (_, a0) :: _ ->
            let roots_hit =
              List.filter
                (fun (_, set) ->
                  List.exists (fun (n, _) -> Hashtbl.mem set (node_id n)) unguarded)
                reach
              |> List.map (fun (r, _) -> "domain root " ^ node_id r)
            in
            let site_lines =
              uniq
                (List.map
                   (fun (n, a) ->
                     Printf.sprintf "unguarded write at %s:%d (%s)" a.a_loc.file a.a_loc.line
                       (node_id n))
                   unguarded)
            in
            Some
              {
                pass = "domain-safety";
                loc = a0.a_loc;
                subject = fam_id f;
                message =
                  Printf.sprintf
                    "mutable state '%s'%s is written from a pool-executed closure with no \
                     mutex held: concurrent worker domains race on it"
                    (fam_id f)
                    (if f.f_captured then " (captured across the domain boundary)" else "");
                detail = uniq roots_hit @ site_lines;
              })
    fam_list

let run_all prog =
  pass_coverage prog @ pass_blocking prog @ pass_lock_order prog @ pass_ownership prog
  @ pass_domain prog
