(* Intermediate representation shared by the collection walk and the
   analysis passes: one [node] per top-level function (or spawned
   lambda), carrying its accesses to shared mutable state, probe
   declarations, call edges, blocking sites and lock operations. *)

type loc = { file : string; line : int }

let loc_of (l : Location.t) =
  { file = l.loc_start.Lexing.pos_fname; line = l.loc_start.Lexing.pos_lnum }

type mode = Read | Write

let mode_name = function Read -> "read" | Write -> "write"

(* A family of shared mutable state: a mutable record field, a
   module-level ref / array / hashtbl, or a local captured by a spawned
   lambda — keyed by declaring unit and name.  [f_global] marks a
   module-level binding (as opposed to a record field of some
   possibly-local value): the domain-safety pass only examines globals
   and captures, because per-run records allocated inside a
   pool-executed closure are domain-local by construction. *)
type fam = { f_unit : string; f_name : string; f_captured : bool; f_global : bool }

let fam_id f = f.f_unit ^ "." ^ f.f_name

(* [a_held]: lock classes held at the access site (syntactic
   [lock m; ...; unlock m] scope), for the guarded-write check of the
   domain-safety pass. *)
type access = { a_fam : fam; a_mode : mode; a_loc : loc; a_held : string list }

(* What a probe declared: its literal shared name, or the function that
   generates the name (for the ownership cross-check). *)
type probe = {
  p_kind : string; (* probe | probe_atomic | probe_locked *)
  p_literal : string option;
  p_gen : (string * string) option; (* (unit, fn) generating the name *)
  p_loc : loc;
}

type call = { c_unit : string; c_name : string; c_loc : loc }

(* A blocking-primitive call or an outgoing call made while holding at
   least one lock. *)
type lock_site = {
  ls_held : string list; (* lock classes held, innermost first *)
  ls_target : [ `Block of string | `Call of string * string | `Acquire of string ];
  ls_loc : loc;
}

type node = {
  n_unit : string;
  n_name : string; (* dotted for nested modules; host$spawnN for roots *)
  n_loc : loc;
  mutable n_root : bool;
  mutable n_multi : bool; (* spawned inside a loop or closure: many instances *)
  mutable n_domain : bool; (* closure executed on a worker domain (Pool) *)
  mutable n_calls : call list;
  mutable n_accesses : access list;
  mutable n_probes : probe list;
  mutable n_blocking : (string * loc) list; (* unconditional may-block markers *)
  mutable n_lock_sites : lock_site list;
  mutable n_acquires : (string * loc) list; (* lock classes this node acquires *)
  mutable n_strings : string list; (* string literals, for name-generator resolution *)
}

let node_id n = n.n_unit ^ "." ^ n.n_name

type program = {
  units : (string, string) Hashtbl.t; (* normalized unit -> source file *)
  nodes : (string, node) Hashtbl.t; (* node_id -> node *)
  mutable node_order : node list; (* reverse collection order *)
  mutable owners_declared : probe list; (* Isolation.register_owner sites *)
}

let create_program () =
  { units = Hashtbl.create 64; nodes = Hashtbl.create 256; node_order = []; owners_declared = [] }

let add_node p n =
  Hashtbl.replace p.nodes (node_id n) n;
  p.node_order <- n :: p.node_order

let nodes_in_order p = List.rev p.node_order
let find_node p ~unit_ ~name = Hashtbl.find_opt p.nodes (unit_ ^ "." ^ name)

type finding = {
  pass : string; (* probe-coverage | blocking | lock-order | ownership | domain-safety *)
  loc : loc;
  subject : string; (* family id, lock cycle, ... *)
  message : string;
  detail : string list; (* extra lines: roots, call chains, cycle members *)
}
