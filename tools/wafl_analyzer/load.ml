(* .cmt discovery and loading.  Dune's dev profile emits binary
   annotations for every module; we recurse through the given build
   directories, read each implementation .cmt, normalize the unit name
   (dune wraps library modules as Wafl_x__Module) and hand the typedtree
   to the collector.  Interface-only artifacts (.cmti) and units without
   a full implementation annotation are skipped. *)

let rec find_cmts acc dir =
  match Sys.is_directory dir with
  | exception Sys_error _ -> acc
  | false -> if Filename.check_suffix dir ".cmt" then dir :: acc else acc
  | true ->
      Array.fold_left
        (fun acc entry -> find_cmts acc (Filename.concat dir entry))
        acc (Sys.readdir dir)

(* "Wafl_qos__Token_bucket" -> "Token_bucket"; "Dune__exe__Main" -> "Main" *)
let norm_unit = Collect.norm_part

type loaded = { unit_ : string; structure : Typedtree.structure }

let read_one path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          Some { unit_ = norm_unit cmt.Cmt_format.cmt_modname; structure = str }
      | _ -> None)

(* Load every .cmt under [dirs] and collect the non-exempt units into a
   program.  Exempt units (the engine substrate) still register in the
   unit table so call paths into them resolve, but their bodies are not
   analyzed.  Returns the program and the list of units collected. *)
let load_program dirs =
  let paths = List.fold_left find_cmts [] dirs in
  let loaded = List.filter_map read_one (List.sort compare paths) in
  let prog = Ir.create_program () in
  let known_units = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace known_units l.unit_ ();
      Hashtbl.replace prog.Ir.units l.unit_ l.unit_)
    loaded;
  (* Exempt substrate modules may live outside the analyzed dirs in
     partial runs (fixtures): their names must still resolve. *)
  List.iter (fun u -> Hashtbl.replace known_units u ()) Config.exempt_units;
  List.iter (fun u -> Hashtbl.replace known_units u ()) [ "Scheduler"; "Isolation" ];
  let analyzed = ref [] in
  List.iter
    (fun l ->
      if not (List.mem l.unit_ Config.exempt_units) then (
        analyzed := l.unit_ :: !analyzed;
        Collect.collect_unit prog ~known_units ~unit_:l.unit_ l.structure))
    loaded;
  Collect.drain_pending_roots prog;
  (prog, List.rev !analyzed)
