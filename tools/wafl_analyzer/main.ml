(* wafl_analyzer: whole-program static analysis over the typedtrees
   (.cmt files) dune produces.

   Usage: wafl_analyzer [--json] [--src-root DIR] [--verbose] BUILD_DIR...

   Passes (see tools/wafl_analyzer/passes.ml and DESIGN.md §4.12):
     probe-coverage  shared mutable state reachable from several
                     scheduler roots in units with no Engine.probe gate
     blocking        blocking primitives reachable while a Sync.Mutex
                     is held
     lock-order      cycles in the static lock-acquisition graph
     ownership       probe_locked domains with no registered affinity
                     owner in the Isolation registry
     domain-safety   module-level mutable state written without a mutex
                     from closures executed on pool worker domains

   Exit status 1 when any finding survives `lint-ok` suppression, like
   tools/wafl_lint. *)

open Wafl_analyzer_lib

let usage = "usage: wafl_analyzer [--json] [--src-root DIR] [--verbose] BUILD_DIR..."

let () =
  let json = ref false in
  let src_root = ref "." in
  let verbose = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--src-root" :: d :: rest ->
        src_root := d;
        parse rest
    | "--verbose" :: rest ->
        verbose := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | d :: rest ->
        dirs := d :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs =
    if !dirs <> [] then List.rev !dirs
    else [ "_build/default/lib"; "_build/default/bin" ]
  in
  let prog, units = Load.load_program dirs in
  if units = [] then (
    prerr_endline "wafl_analyzer: no .cmt files found (build with dune first)";
    exit 2);
  if !verbose then (
    let nodes = Ir.nodes_in_order prog in
    let roots = List.filter (fun n -> n.Ir.n_root) nodes in
    Printf.eprintf "analyzed %d units, %d nodes, %d scheduler roots\n%!" (List.length units)
      (List.length nodes) (List.length roots);
    List.iter
      (fun r ->
        Printf.eprintf "  root %s%s\n%!" (Ir.node_id r)
          (if r.Ir.n_multi then " (many instances)" else ""))
      roots;
    let droots = List.filter (fun n -> n.Ir.n_domain) nodes in
    Printf.eprintf "%d pool-executed domain roots\n%!" (List.length droots);
    List.iter (fun r -> Printf.eprintf "  domain root %s\n%!" (Ir.node_id r)) droots;
    let probed, owned = Passes.ownership_sets prog in
    Printf.eprintf "probe_locked domains: %s\n%!" (String.concat " " probed);
    Printf.eprintf "registered owners:    %s\n%!" (String.concat " " owned));
  let findings = Passes.run_all prog in
  let findings = Report.filter_suppressed ~src_root:!src_root findings in
  if !json then Report.print_json ~units:(List.length units) findings
  else if findings = [] then
    Printf.printf "wafl_analyzer: %d units analyzed, no findings\n" (List.length units)
  else Report.print_text findings;
  exit (if findings = [] then 0 else 1)
