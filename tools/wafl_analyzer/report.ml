(* Finding output: text or JSON, with the same line-level `lint-ok`
   suppression convention as tools/wafl_lint — a finding whose source
   line (or the line above it) carries "lint-ok" is acknowledged and
   dropped. *)

open Ir

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> [||]
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Array.of_list (List.rev !lines)

let file_cache : (string, string array) Hashtbl.t = Hashtbl.create 16

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* .cmt locations name sources relative to the dune build context root
   (e.g. "lib/qos/qos.ml"); resolve them against --src-root. *)
let suppressed ~src_root (f : finding) =
  let path = Filename.concat src_root f.loc.file in
  let lines =
    match Hashtbl.find_opt file_cache path with
    | Some l -> l
    | None ->
        let l = read_lines path in
        Hashtbl.replace file_cache path l;
        l
  in
  let has n = n >= 1 && n <= Array.length lines && contains_sub lines.(n - 1) "lint-ok" in
  has f.loc.line || has (f.loc.line - 1)

let filter_suppressed ~src_root findings =
  List.filter (fun f -> not (suppressed ~src_root f)) findings

let print_text findings =
  let by_pass p = List.filter (fun f -> f.pass = p) findings in
  List.iter
    (fun pass ->
      match by_pass pass with
      | [] -> ()
      | fs ->
          Printf.printf "== %s: %d finding%s ==\n" pass (List.length fs)
            (if List.length fs = 1 then "" else "s");
          List.iter
            (fun f ->
              Printf.printf "%s:%d: [%s] %s\n" f.loc.file f.loc.line f.pass f.message;
              List.iter (fun d -> Printf.printf "    %s\n" d) f.detail)
            fs)
    [ "probe-coverage"; "blocking"; "lock-order"; "ownership"; "domain-safety" ]

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string ~units findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"wafl-analyzer/1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"units_analyzed\": %d,\n" units);
  Buffer.add_string buf (Printf.sprintf "  \"findings\": [");
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"pass\": \"%s\", \"file\": \"%s\", \"line\": %d, \"subject\": \"%s\", \
            \"message\": \"%s\", \"detail\": [%s]}"
           (json_escape f.pass) (json_escape f.loc.file) f.loc.line (json_escape f.subject)
           (json_escape f.message)
           (String.concat ", " (List.map (fun d -> "\"" ^ json_escape d ^ "\"") f.detail))))
    findings;
  Buffer.add_string buf (if findings = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf (Printf.sprintf "  \"count\": %d\n}\n" (List.length findings));
  Buffer.contents buf

let print_json ~units findings = print_string (json_string ~units findings)
