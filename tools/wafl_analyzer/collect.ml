(* Typedtree collection: one walk per compilation unit producing the IR
   nodes.  The walk resolves value paths against the whole-program unit
   set, so cross-library references (Wafl_qos.Qos.admit,
   Wafl_sim.Engine.probe, Sync.Mutex.lock) all normalize to
   (unit, function) pairs regardless of how dune mangles module names.

   Attribution model:
   - every top-level value binding is a node; a lambda passed to a
     spawner (Engine.spawn / Scheduler.post / post_wait, or a same-named
     local wrapper) becomes its own *root* node, marked multi-instance
     when the spawn site sits inside a loop or closure;
   - mutable record field reads/writes, ref ops, and calls into
     container modules (Hashtbl, Array, Histogram, ...) become access
     sites against the family (declaring unit, field/binding name);
     container calls are attributed to the caller's argument, so
     [Histogram.add rec_.whist x] is a write to the recorder's field;
   - a local mutable binding referenced from a root lambda that did not
     bind it is a *captured* family (the closure smuggled state across a
     spawn boundary);
   - lock acquisition is tracked syntactically through sequence chains
     ([lock m; ...; unlock m]) and [Mutex.with_lock]; blocking
     primitives and outgoing calls made while a lock is held are
     recorded for the blocking / lock-order passes. *)

open Typedtree
open Ir

type ctx = {
  prog : program;
  unit_ : string;
  known_units : (string, unit) Hashtbl.t;
  toplevels : (string, unit) Hashtbl.t;
  lock_names : (string, string) Hashtbl.t; (* toplevel mutex binding -> ~name literal *)
  mutable node : node;
  mutable host : string; (* enclosing top-level binding, for root naming *)
  mutable bound : (string, unit) Hashtbl.t; (* idents bound inside the current node *)
  mutable held : string list;
  mutable lambda_depth : int;
  mutable loop_depth : int;
  mutable spawn_count : int;
  mutable domain_arg : bool; (* walking an argument of a domain spawner *)
}

let pending_roots : (string * string * bool) Queue.t = Queue.create ()
let pending_domain_roots : (string * string) Queue.t = Queue.create ()

(* --- path normalization ------------------------------------------------- *)

(* "Wafl_qos__Token_bucket" -> "Token_bucket": strip the dune wrapping
   prefix so units compare by their source module name. *)
let norm_part s =
  let rec last_sep i acc =
    if i + 1 >= String.length s then acc
    else if s.[i] = '_' && s.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) acc
  in
  match last_sep 0 None with
  | Some j when j < String.length s -> String.sub s j (String.length s - j)
  | _ -> s

let rec path_parts = function
  | Path.Pident id -> [ norm_part (Ident.name id) ]
  | Path.Pdot (p, s) -> path_parts p @ [ norm_part s ]
  | Path.Papply (p, _) -> path_parts p
  | Path.Pextra_ty (p, _) -> path_parts p

(* (unit, dotted fn) for call-graph edges: the *last* path component
   that names a known compilation unit wins (so the library wrapper in
   Wafl_qos.Qos.admit resolves to Qos), falling back to the current unit
   for unqualified top-level names.  None for stdlib / local paths. *)
let resolve ctx parts =
  let rec scan best = function
    | [] | [ _ ] -> best
    | p :: rest ->
        let best = if Hashtbl.mem ctx.known_units p then Some (p, rest) else best in
        scan best rest
  in
  match scan None parts with
  | Some (u, fn) -> Some (u, String.concat "." fn)
  | None ->
      (* same-unit reference, possibly through nested modules *)
      let dotted = String.concat "." parts in
      if Hashtbl.mem ctx.toplevels dotted then Some (ctx.unit_, dotted) else None

(* (module, fn): the last two components, for matching the config's
   primitive tables (Mutex.lock, Waitq.wait, Hashtbl.add, ...);
   unqualified names belong to the current unit. *)
let last2 ctx parts =
  match List.rev parts with
  | fn :: m :: _ -> (m, fn)
  | [ fn ] -> (ctx.unit_, fn)
  | [] -> ("", "")

let head_path (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let positional args =
  List.filter_map (function Asttypes.Nolabel, Some a -> Some a | _ -> None) args

let labelled name args =
  List.find_map
    (function
      | Asttypes.Labelled l, Some a when l = name -> Some a
      | Asttypes.Optional l, Some a when l = name -> Some a
      | _ -> None)
    args

let string_lit (e : expression) =
  match e.exp_desc with Texp_constant (Const_string (s, _, _)) -> Some s | _ -> None

let container_mode (m, fn) =
  List.find_map
    (fun (cm, writes, reads) ->
      if cm <> m then None
      else if List.mem fn writes then Some Write
      else if List.mem fn reads then Some Read
      else None)
    Config.containers

(* --- families ----------------------------------------------------------- *)

let unit_of_type ctx (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match resolve ctx (path_parts p) with Some (u, _) -> u | None -> ctx.unit_)
  | _ -> ctx.unit_

let fam_of_label ctx (lbl : Types.label_description) =
  { f_unit = unit_of_type ctx lbl.lbl_res; f_name = lbl.lbl_name; f_captured = false;
    f_global = false }

(* The family named by a container / ref argument: a record field, a
   module-level binding, or a local captured across a spawn boundary.
   Locals bound inside the current node are private and return None. *)
let family_of ctx (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> Some (fam_of_label ctx lbl)
  | Texp_ident (Path.Pident id, _, _) ->
      let name = Ident.name id in
      if Hashtbl.mem ctx.bound name then None
      else if Hashtbl.mem ctx.toplevels name then
        Some { f_unit = ctx.unit_; f_name = name; f_captured = false; f_global = true }
      else
        Some
          { f_unit = ctx.unit_; f_name = ctx.host ^ "." ^ name; f_captured = true;
            f_global = false }
  | Texp_ident (p, _, _) -> (
      match resolve ctx (path_parts p) with
      | Some (u, n) -> Some { f_unit = u; f_name = n; f_captured = false; f_global = true }
      | None -> None)
  | _ -> None

let record_access ctx fam mode loc =
  match fam with
  | None -> ()
  | Some f ->
      ctx.node.n_accesses <-
        { a_fam = f; a_mode = mode; a_loc = loc; a_held = ctx.held } :: ctx.node.n_accesses

(* --- lock classes ------------------------------------------------------- *)

let lock_class ctx (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> unit_of_type ctx lbl.lbl_res ^ "." ^ lbl.lbl_name
  | Texp_ident (Path.Pident id, _, _) -> (
      let name = Ident.name id in
      match Hashtbl.find_opt ctx.lock_names name with
      | Some n -> n
      | None -> ctx.unit_ ^ "." ^ name)
  | Texp_ident (p, _, _) -> (
      match resolve ctx (path_parts p) with
      | Some (u, n) -> u ^ "." ^ n
      | None -> "<dynamic>")
  | _ -> "<dynamic>"

let record_acquire ctx cls loc =
  ctx.node.n_acquires <- (cls, loc) :: ctx.node.n_acquires;
  if ctx.held <> [] then
    ctx.node.n_lock_sites <-
      { ls_held = ctx.held; ls_target = `Acquire cls; ls_loc = loc } :: ctx.node.n_lock_sites

(* --- the walk ----------------------------------------------------------- *)

let bind_pat : 'k. ctx -> 'k general_pattern -> unit =
 fun ctx p ->
  List.iter (fun id -> Hashtbl.replace ctx.bound (Ident.name id) ()) (pat_bound_idents p)

(* ~shared argument of a probe / register_owner call: a string literal,
   or the head of the generator application producing the name. *)
let probe_arg ctx args =
  match labelled "shared" args with
  | None -> (None, None)
  | Some a -> (
      match string_lit a with
      | Some s -> (Some s, None)
      | None -> (
          match a.exp_desc with
          | Texp_apply (f, _) -> (
              match head_path f with
              | Some p -> (None, resolve ctx (path_parts p))
              | None -> (None, None))
          | _ -> (None, None)))

let fresh_node ctx ~name ~root ~multi loc =
  let node =
    {
      n_unit = ctx.unit_;
      n_name = name;
      n_loc = loc;
      n_root = root;
      n_multi = multi;
      n_domain = false;
      n_calls = [];
      n_accesses = [];
      n_probes = [];
      n_blocking = [];
      n_lock_sites = [];
      n_acquires = [];
      n_strings = [];
    }
  in
  add_node ctx.prog node;
  node

let rec walk ctx (e : expression) =
  match e.exp_desc with
  | Texp_constant (Const_string (s, _, _)) ->
      if String.length s <= 80 then ctx.node.n_strings <- s :: ctx.node.n_strings
  | Texp_constant _ -> ()
  | Texp_ident (p, _, _) -> (
      match resolve ctx (path_parts p) with
      | Some (u, n) ->
          ctx.node.n_calls <-
            { c_unit = u; c_name = n; c_loc = loc_of e.exp_loc } :: ctx.node.n_calls;
          (* a named function handed to a domain spawner executes on
             worker domains: mark it once all units are collected *)
          if ctx.domain_arg then Queue.add (u, n) pending_domain_roots
      | None -> ())
  | Texp_apply (f, args) -> handle_apply ctx e f args
  | Texp_sequence _ -> walk_seq ctx e
  | Texp_setfield (r, _, lbl, v) ->
      record_access ctx (Some (fam_of_label ctx lbl)) Write (loc_of e.exp_loc);
      walk ctx r;
      walk ctx v
  | Texp_field (r, _, lbl) ->
      if lbl.lbl_mut = Mutable then
        record_access ctx (Some (fam_of_label ctx lbl)) Read (loc_of e.exp_loc);
      walk ctx r
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          walk ctx vb.vb_expr;
          bind_pat ctx vb.vb_pat)
        vbs;
      walk ctx body
  | Texp_function { cases; _ } ->
      if ctx.domain_arg then domain_root ctx e cases
      else begin
        ctx.lambda_depth <- ctx.lambda_depth + 1;
        walk_cases ctx cases;
        ctx.lambda_depth <- ctx.lambda_depth - 1
      end
  | Texp_match (scrut, cases, _) ->
      walk ctx scrut;
      walk_cases ctx cases
  | Texp_try (body, cases) ->
      walk ctx body;
      walk_cases ctx cases
  | Texp_while (cond, body) ->
      walk ctx cond;
      ctx.loop_depth <- ctx.loop_depth + 1;
      walk ctx body;
      ctx.loop_depth <- ctx.loop_depth - 1
  | Texp_for (id, _, lo, hi, _, body) ->
      walk ctx lo;
      walk ctx hi;
      Hashtbl.replace ctx.bound (Ident.name id) ();
      ctx.loop_depth <- ctx.loop_depth + 1;
      walk ctx body;
      ctx.loop_depth <- ctx.loop_depth - 1
  | _ -> generic ctx e

and walk_cases : 'k. ctx -> 'k case list -> unit =
 fun ctx cases ->
  List.iter
    (fun c ->
      bind_pat ctx c.c_lhs;
      (match c.c_guard with Some g -> walk ctx g | None -> ());
      walk ctx c.c_rhs)
    cases

(* Fallback for expression forms with no special handling: the default
   iterator enumerates the children, each re-entering [walk]. *)
and generic ctx (e : expression) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ child -> walk ctx child);
      pat = (fun _ _ -> ());
    }
  in
  Tast_iterator.default_iterator.expr it e

(* Sequences carry the syntactic lock scope: [lock m; ...; unlock m]. *)
and walk_seq ctx e =
  let rec stmts (e : expression) =
    match e.exp_desc with Texp_sequence (a, b) -> a :: stmts b | _ -> [ e ]
  in
  let saved = ctx.held in
  List.iter
    (fun (s : expression) ->
      match s.exp_desc with
      | Texp_apply (f, args) -> (
          match head_path f with
          | Some p -> (
              let m2 = last2 ctx (path_parts p) in
              match positional args with
              | m :: _ when Config.is_lock m2 ->
                  let cls = lock_class ctx m in
                  record_acquire ctx cls (loc_of s.exp_loc);
                  ctx.held <- cls :: ctx.held
              | m :: _ when Config.is_unlock m2 ->
                  let cls = lock_class ctx m in
                  ctx.held <- List.filter (fun c -> c <> cls) ctx.held
              | _ -> walk ctx s)
          | None -> walk ctx s)
      | _ -> walk ctx s)
    (stmts e);
  ctx.held <- saved

and handle_apply ctx (e : expression) f args =
  let loc = loc_of e.exp_loc in
  match head_path f with
  | None ->
      walk ctx f;
      List.iter (fun (_, a) -> Option.iter (walk ctx) a) args
  | Some p -> (
      let parts = path_parts p in
      let res = resolve ctx parts in
      let m2, fn2 = last2 ctx parts in
      let record_call () =
        match res with
        | Some (u, n) ->
            ctx.node.n_calls <- { c_unit = u; c_name = n; c_loc = loc } :: ctx.node.n_calls
        | None -> ()
      in
      let walk_args ?(skip = []) () =
        List.iter
          (fun (_, a) ->
            match a with Some a when not (List.memq a skip) -> walk ctx a | _ -> ())
          args
      in
      match res with
      | Some (u, fn) when Config.is_probe ~unit_:u ~fn ->
          let lit, gen = probe_arg ctx args in
          ctx.node.n_probes <-
            { p_kind = fn; p_literal = lit; p_gen = gen; p_loc = loc } :: ctx.node.n_probes;
          walk_args ()
      | Some (u, fn) when Config.is_register_owner ~unit_:u ~fn ->
          let lit, gen = probe_arg ctx args in
          ctx.prog.owners_declared <-
            { p_kind = "register_owner"; p_literal = lit; p_gen = gen; p_loc = loc }
            :: ctx.prog.owners_declared;
          walk_args ()
      | _ when is_spawner res (m2, fn2) -> (
          record_call ();
          match List.rev (positional args) with
          | body :: _ ->
              spawn_root ctx body;
              walk_args ~skip:[ body ] ()
          | [] -> walk_args ())
      | _ when is_domain_spawner res (m2, fn2) ->
          (* every function value among the arguments runs on a worker
             domain: walk them in domain context so lambdas become
             domain roots and named functions are queued *)
          record_call ();
          let saved = ctx.domain_arg in
          ctx.domain_arg <- true;
          walk_args ();
          ctx.domain_arg <- saved
      | _ when Config.is_with_lock (m2, fn2) -> (
          match positional args with
          | m :: rest ->
              let cls = lock_class ctx m in
              record_acquire ctx cls loc;
              ctx.held <- cls :: ctx.held;
              (match rest with
              | [ body ] -> (
                  match body.exp_desc with
                  | Texp_function { cases; _ } -> walk_cases ctx cases
                  | _ -> (
                      walk ctx body;
                      match head_path body with
                      | Some bp -> (
                          match resolve ctx (path_parts bp) with
                          | Some (u, n) ->
                              ctx.node.n_lock_sites <-
                                { ls_held = ctx.held; ls_target = `Call (u, n); ls_loc = loc }
                                :: ctx.node.n_lock_sites
                          | None -> ())
                      | None -> ()))
              | other -> List.iter (walk ctx) other);
              ctx.held <- List.tl ctx.held;
              walk ctx m
          | [] -> walk_args ())
      | _ when Config.is_blocking ~unit_:m2 ~fn:fn2 ->
          ctx.node.n_blocking <- (m2 ^ "." ^ fn2, loc) :: ctx.node.n_blocking;
          (if ctx.held <> [] then
             let allowed =
               (* Condition.wait releases its own mutex: holding exactly
                  that mutex is the intended use. *)
               Config.is_condition_wait (m2, fn2)
               &&
               match positional args with
               | [ _; m ] -> List.for_all (fun h -> h = lock_class ctx m) ctx.held
               | _ -> false
             in
             if not allowed then
               ctx.node.n_lock_sites <-
                 { ls_held = ctx.held; ls_target = `Block (m2 ^ "." ^ fn2); ls_loc = loc }
                 :: ctx.node.n_lock_sites);
          record_call ();
          walk_args ()
      | _ when Config.is_lock (m2, fn2) || Config.is_unlock (m2, fn2) ->
          (* lock/unlock outside a sequence chain: record the acquire for
             the lock-order pass; scope tracking is sequence-based. *)
          (match positional args with
          | m :: _ when Config.is_lock (m2, fn2) -> record_acquire ctx (lock_class ctx m) loc
          | _ -> ());
          walk_args ()
      | _ ->
          (* container-module call: attribute the access to the caller's
             first positional argument *)
          (match container_mode (m2, fn2) with
          | Some mode -> (
              match positional args with
              | a :: _ -> record_access ctx (family_of ctx a) mode loc
              | [] -> ())
          | None -> ());
          (* plain ref ops *)
          (match (fn2, positional args) with
          | "!", a :: _ -> record_access ctx (family_of ctx a) Read loc
          | (":=" | "incr" | "decr"), a :: _ -> record_access ctx (family_of ctx a) Write loc
          | _ -> ());
          record_call ();
          (* a partial application in a domain spawner's argument list
             (Exp.par_map (run_one ~scale) xs) hands the named function
             to the pool *)
          (if ctx.domain_arg then
             match res with
             | Some (u, n) -> Queue.add (u, n) pending_domain_roots
             | None -> ());
          (if ctx.held <> [] then
             match res with
             | Some (u, n) ->
                 ctx.node.n_lock_sites <-
                   { ls_held = ctx.held; ls_target = `Call (u, n); ls_loc = loc }
                   :: ctx.node.n_lock_sites
             | None -> ());
          walk_args ())

and is_spawner res m2fn2 =
  (match res with Some (u, n) -> List.mem (u, n) Config.spawners | None -> false)
  || match m2fn2 with _, ("spawn" | "post" | "post_wait") -> true | _ -> false

and is_domain_spawner res m2fn2 =
  (match res with Some uf -> List.mem uf Config.domain_spawners | None -> false)
  || List.mem m2fn2 Config.domain_spawners

(* A lambda in a domain spawner's argument list: its body executes
   concurrently on pool worker domains, once per task/item, so it gets
   its own many-instance node flagged [n_domain].  Bindings of the
   enclosing node are captures smuggled across the domain boundary. *)
and domain_root ctx (body : expression) cases =
  ctx.spawn_count <- ctx.spawn_count + 1;
  let name = Printf.sprintf "%s$domain%d" ctx.host ctx.spawn_count in
  let root = fresh_node ctx ~name ~root:false ~multi:true (loc_of body.exp_loc) in
  root.n_domain <- true;
  let saved_node = ctx.node and saved_bound = ctx.bound in
  let saved_lam = ctx.lambda_depth and saved_loop = ctx.loop_depth in
  ctx.node <- root;
  ctx.bound <- Hashtbl.create 16;
  ctx.lambda_depth <- 0;
  ctx.loop_depth <- 0;
  ctx.domain_arg <- false;
  walk_cases ctx cases;
  ctx.node <- saved_node;
  ctx.bound <- saved_bound;
  ctx.lambda_depth <- saved_lam;
  ctx.loop_depth <- saved_loop;
  ctx.domain_arg <- true

(* A function value reaching a spawner becomes a root node: a literal
   lambda gets its own node; a named function (or partial application)
   is marked as a root in place once all units are collected. *)
and spawn_root ctx (body : expression) =
  let multi = ctx.lambda_depth > 0 || ctx.loop_depth > 0 in
  match body.exp_desc with
  | Texp_function { cases; _ } ->
      ctx.spawn_count <- ctx.spawn_count + 1;
      let name = Printf.sprintf "%s$spawn%d" ctx.host ctx.spawn_count in
      let root = fresh_node ctx ~name ~root:true ~multi (loc_of body.exp_loc) in
      let saved_node = ctx.node and saved_bound = ctx.bound in
      let saved_lam = ctx.lambda_depth and saved_loop = ctx.loop_depth in
      let saved_dom = ctx.domain_arg in
      ctx.node <- root;
      (* bindings of the enclosing node are *captured*, not local: track
         only what the lambda itself binds *)
      ctx.bound <- Hashtbl.create 16;
      ctx.lambda_depth <- 0;
      ctx.loop_depth <- 0;
      ctx.domain_arg <- false;
      walk_cases ctx cases;
      ctx.node <- saved_node;
      ctx.bound <- saved_bound;
      ctx.lambda_depth <- saved_lam;
      ctx.loop_depth <- saved_loop;
      ctx.domain_arg <- saved_dom
  | _ -> (
      let target =
        match body.exp_desc with
        | Texp_ident (p, _, _) -> Some p
        | Texp_apply (h, hargs) ->
            List.iter (fun (_, a) -> Option.iter (walk ctx) a) hargs;
            head_path h
        | _ ->
            walk ctx body;
            None
      in
      match target with
      | Some p -> (
          match resolve ctx (path_parts p) with
          | Some (u, n) -> Queue.add (u, n, multi) pending_roots
          | None -> ())
      | None -> ())

(* The curried parameter layers of a top-level binding are the
   function's own arguments, not nested closures: peel them at lambda
   depth 0 so only genuinely nested lambdas mark spawn sites as
   multi-instance. *)
let rec walk_top ctx (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun c ->
          bind_pat ctx c.c_lhs;
          (match c.c_guard with Some g -> walk ctx g | None -> ());
          walk_top ctx c.c_rhs)
        cases
  | _ -> walk ctx e

(* --- structure walk ----------------------------------------------------- *)

let binding_names vb = List.map Ident.name (pat_bound_idents vb.vb_pat)

let rec unwrap_module (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (me, _, _, _) -> unwrap_module me
  | Tmod_functor (_, me) -> unwrap_module me
  | _ -> None

(* Pass 1: register top-level value names (dotted through nested
   modules) and the ~name literals of top-level mutex creations. *)
let rec register_toplevels ctx prefix (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (fun name ->
                  Hashtbl.replace ctx.toplevels (prefix ^ name) ();
                  match vb.vb_expr.exp_desc with
                  | Texp_apply (f, args) -> (
                      match head_path f with
                      | Some p when last2 ctx (path_parts p) = ("Mutex", "create") -> (
                          match Option.bind (labelled "name" args) string_lit with
                          | Some lit -> Hashtbl.replace ctx.lock_names (prefix ^ name) lit
                          | None -> ())
                      | _ -> ())
                  | _ -> ())
                (binding_names vb))
            vbs
      | Tstr_module mb -> register_module ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (register_module ctx prefix) mbs
      | _ -> ())
    str.str_items

and register_module ctx prefix mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  match unwrap_module mb.mb_expr with
  | Some s -> register_toplevels ctx (prefix ^ name ^ ".") s
  | None -> ()

(* Pass 2: create nodes and walk bodies. *)
let rec collect_items ctx prefix (str : structure) =
  let anon = ref 0 in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match binding_names vb with
                | n :: _ -> prefix ^ n
                | [] ->
                    incr anon;
                    Printf.sprintf "%s_init%d" prefix !anon
              in
              let node = fresh_node ctx ~name ~root:false ~multi:false (loc_of vb.vb_loc) in
              start_node ctx node name;
              walk_top ctx vb.vb_expr)
            vbs
      | Tstr_eval (e, _) ->
          incr anon;
          let name = Printf.sprintf "%s_eval%d" prefix !anon in
          let node = fresh_node ctx ~name ~root:false ~multi:false (loc_of e.exp_loc) in
          start_node ctx node name;
          walk ctx e
      | Tstr_module mb -> collect_module ctx prefix mb
      | Tstr_recmodule mbs -> List.iter (collect_module ctx prefix) mbs
      | _ -> ())
    str.str_items

and start_node ctx node name =
  ctx.node <- node;
  ctx.host <- name;
  ctx.bound <- Hashtbl.create 16;
  ctx.held <- [];
  ctx.lambda_depth <- 0;
  ctx.loop_depth <- 0;
  ctx.spawn_count <- 0;
  ctx.domain_arg <- false

and collect_module ctx prefix mb =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  match unwrap_module mb.mb_expr with
  | Some s -> collect_items ctx (prefix ^ name ^ ".") s
  | None -> ()

let collect_unit prog ~known_units ~unit_ (str : structure) =
  let ctx =
    {
      prog;
      unit_;
      known_units;
      toplevels = Hashtbl.create 64;
      lock_names = Hashtbl.create 8;
      node =
        {
          n_unit = unit_;
          n_name = "<none>";
          n_loc = { file = ""; line = 0 };
          n_root = false;
          n_multi = false;
          n_domain = false;
          n_calls = [];
          n_accesses = [];
          n_probes = [];
          n_blocking = [];
          n_lock_sites = [];
          n_acquires = [];
          n_strings = [];
        };
      host = "<top>";
      bound = Hashtbl.create 16;
      held = [];
      lambda_depth = 0;
      loop_depth = 0;
      spawn_count = 0;
      domain_arg = false;
    }
  in
  register_toplevels ctx "" str;
  collect_items ctx "" str

(* Root marks recorded for named functions passed to spawners, applied
   after every unit has been collected. *)
let drain_pending_roots prog =
  Queue.iter
    (fun (u, n, multi) ->
      match find_node prog ~unit_:u ~name:n with
      | Some node ->
          node.n_root <- true;
          if multi then node.n_multi <- true
      | None -> ())
    pending_roots;
  Queue.clear pending_roots;
  Queue.iter
    (fun (u, n) ->
      match find_node prog ~unit_:u ~name:n with
      | Some node ->
          node.n_domain <- true;
          node.n_multi <- true
      | None -> ())
    pending_domain_roots;
  Queue.clear pending_domain_roots
