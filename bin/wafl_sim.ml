(* Command-line front end: run any paper experiment or an ad-hoc
   configuration of the simulated storage server. *)

open Cmdliner
open Wafl_workload
module H = Wafl_harness

let scale_arg =
  let doc = "Scale factor for measurement windows and working sets (1.0 = paper scale)." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let domains_arg =
  let doc =
    "Worker-domain count for host-parallel execution of independent runs (experiment rows, \
     crash seeds, partition windows). Results are byte-identical at any value; the default \
     comes from WAFL_DOMAINS or the host core count. Tracing forces serial execution."
  in
  Arg.(
    value
    & opt int (Wafl_util.Pool.default_domains ())
    & info [ "domains" ] ~docv:"N" ~doc)

let sanitize_arg =
  let doc =
    "Run under the race detector and affinity-isolation checker. Any report aborts with a \
     diagnostic; results are bit-identical to an unsanitized run."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let trace_arg =
  let doc =
    "Attach the virtual-time tracer to every run of the experiment and write the last \
     run's Chrome trace-event JSON to $(docv). Tracing never changes results."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let causal_arg =
  let doc =
    "Like $(b,--trace), but additionally record causal edges across every asynchronous \
     handoff and write the last run's trace to $(docv), ready for $(b,wafl_sim analyze) \
     (or Perfetto, where the edges render as flow arrows). Takes precedence over \
     $(b,--trace). Recording never changes results."
  in
  Arg.(value & opt (some string) None & info [ "causal" ] ~docv:"FILE" ~doc)

(* Satellite of the causal work: a trace that overflowed its ring is
   silently missing its oldest events, which breaks DAG connectivity —
   always tell the operator. *)
let report_drops t =
  let dropped = Wafl_obs.Trace.dropped t in
  if dropped > 0 then
    Printf.printf
      "WARNING: %d events dropped from the trace ring; the trace is incomplete (raise the \
       ring capacity or shorten the run)\n"
      dropped

let run_experiment name runner =
  let doc = Printf.sprintf "Reproduce %s." name in
  let action scale sanitize domains trace_out causal_out =
    H.Exp.sanitize := sanitize;
    H.Exp.domains := max 1 domains;
    let last = ref Wafl_obs.Trace.disabled in
    let out =
      match (causal_out, trace_out) with
      | Some path, _ -> Some (path, true)
      | None, Some path -> Some (path, false)
      | None, None -> None
    in
    (match out with
    | Some (_, causal) ->
        H.Exp.trace :=
          Some
            (fun eng ->
              let t = Wafl_obs.Trace.create ~causal eng in
              last := t;
              t)
    | None -> ());
    let shapes = Fun.protect ~finally:(fun () -> H.Exp.trace := None) (fun () -> runner scale) in
    (match out with
    | None -> ()
    | Some (path, causal) ->
        let oc = open_out path in
        output_string oc (Wafl_obs.Trace.export_string !last);
        close_out oc;
        Printf.printf "wrote %s (the experiment's last run%s): %d events retained, %d dropped\n"
          path
          (if causal then ", with causal edges" else "")
          (Wafl_obs.Trace.event_count !last)
          (Wafl_obs.Trace.dropped !last);
        report_drops !last);
    H.Exp.print_shapes shapes;
    if List.for_all snd shapes then `Ok () else `Error (false, "some shape checks missed")
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const action $ scale_arg $ sanitize_arg $ domains_arg $ trace_arg $ causal_arg))

let fig4 scale =
  let rows = H.Fig4.run ~scale () in
  H.Fig4.print rows;
  H.Fig4.shapes rows

let fig5 scale =
  let rows = H.Fig5.run ~scale () in
  H.Fig5.print rows;
  H.Fig5.shapes rows

let fig6 scale =
  let rows = H.Fig6.run ~scale () in
  H.Fig6.print rows;
  H.Fig6.shapes rows

let fig7 scale =
  let rows = H.Fig7.run ~scale () in
  H.Fig7.print rows;
  H.Fig7.shapes rows

let fig8 scale =
  let rows = H.Fig8.run ~scale () in
  H.Fig8.print rows;
  H.Fig8.shapes rows

let fig9 scale =
  let rows = H.Fig9.run ~scale () in
  H.Fig9.print rows;
  H.Fig9.shapes rows

let batching scale =
  let rows = H.Batching.run ~scale () in
  H.Batching.print rows;
  H.Batching.shapes rows

let history scale =
  let rows = H.History.run ~scale () in
  H.History.print rows;
  H.History.shapes rows

let ablation scale =
  let chunk = H.Ablation.run_chunk ~scale () in
  H.Ablation.print_chunk chunk;
  let ranges = H.Ablation.run_ranges ~scale () in
  H.Ablation.print_ranges ranges;
  H.Ablation.shapes_chunk chunk @ H.Ablation.shapes_ranges ranges

let crossover scale =
  let rows = H.Crossover.run ~scale () in
  H.Crossover.print rows;
  H.Crossover.shapes rows

let overload scale =
  let rows = H.Overload.run ~scale () in
  H.Overload.print rows;
  H.Overload.shapes rows

let flash scale =
  let rows = H.Flash.run ~scale () in
  H.Flash.print rows;
  H.Flash.shapes rows

let all scale =
  List.concat
    [
      fig4 scale; fig5 scale; fig6 scale; fig7 scale; fig8 scale; fig9 scale;
      batching scale; history scale; ablation scale; crossover scale; overload scale;
      flash scale;
    ]

(* --- ad-hoc run --- *)

let workload_conv =
  let parse = function
    | "seq" -> Ok `Seq
    | "rand" -> Ok `Rand
    | "oltp" -> Ok `Oltp
    | "nfs" -> Ok `Nfs
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S (seq|rand|oltp|nfs)" s))
  in
  let print ppf w =
    Format.pp_print_string ppf
      (match w with `Seq -> "seq" | `Rand -> "rand" | `Oltp -> "oltp" | `Nfs -> "nfs")
  in
  Arg.conv (parse, print)

let custom_run workload cleaners serial_infra dynamic clients cores measure_s think seed
    sanitize causal_out =
  let wl =
    match workload with
    | `Seq -> Driver.Seq_write { file_blocks = 16384 }
    | `Rand -> Driver.Rand_write { file_blocks = 16384 }
    | `Oltp -> Driver.Oltp { file_blocks = 16384; read_fraction = 0.67 }
    | `Nfs -> Driver.Nfs_mix { files_per_client = 48; file_blocks = 64 }
  in
  let cfg =
    H.Exp.wa_config ~cleaners
      ~max_cleaners:(max cleaners 4)
      ~parallel_infra:(not serial_infra) ~dynamic ()
  in
  let tracer = ref Wafl_obs.Trace.disabled in
  let spec =
    {
      Driver.default_spec with
      Driver.workload = wl;
      cfg;
      clients;
      cores;
      think_time = think;
      measure = measure_s *. 1_000_000.0;
      seed;
      sanitize;
      obs =
        (match causal_out with
        | None -> Driver.default_spec.Driver.obs
        | Some _ ->
            fun eng ->
              let t = Wafl_obs.Trace.create ~causal:true eng in
              tracer := t;
              t);
    }
  in
  let r = Driver.run spec in
  (match causal_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Wafl_obs.Trace.export_string !tracer);
      close_out oc;
      Printf.printf "wrote %s: %d events retained, %d dropped\n" path
        (Wafl_obs.Trace.event_count !tracer)
        (Wafl_obs.Trace.dropped !tracer);
      report_drops !tracer);
  Printf.printf "ops            %d\n" r.Driver.ops;
  Printf.printf "throughput     %.0f ops/s (%.0f per client)\n" r.Driver.throughput
    r.Driver.throughput_per_client;
  Printf.printf "latency        mean %.1f us, p50 %.1f, p95 %.1f, p99 %.1f\n"
    (Wafl_util.Histogram.mean r.Driver.latency)
    (Wafl_util.Histogram.percentile r.Driver.latency 50.0)
    (Wafl_util.Histogram.percentile r.Driver.latency 95.0)
    (Wafl_util.Histogram.percentile r.Driver.latency 99.0);
  Printf.printf "cores          client %.2f, cleaner %.2f, infra %.2f, cp %.2f (util %.2f)\n"
    r.Driver.cores_client r.Driver.cores_cleaner r.Driver.cores_infra r.Driver.cores_cp
    r.Driver.utilization;
  Printf.printf "CPs            %d (%d buffers cleaned, %d cleaner msgs, %d infra msgs)\n"
    r.Driver.cps_completed r.Driver.buffers_cleaned r.Driver.cleaner_messages
    r.Driver.infra_messages;
  Printf.printf "allocation     %d VBNs allocated, %d freed, %d metafile blocks touched\n"
    r.Driver.vbns_allocated r.Driver.vbns_freed r.Driver.metafile_blocks_touched;
  Printf.printf "stripes        %d full, %d partial\n" r.Driver.full_stripes
    r.Driver.partial_stripes;
  if sanitize then Printf.printf "sanitizer      %d race reports\n" r.Driver.races

(* --- traced run --- *)

let traced_run workload cleaners clients cores measure_s seed out sample_interval top causal =
  let wl =
    match workload with
    | `Seq -> Driver.Seq_write { file_blocks = 16384 }
    | `Rand -> Driver.Rand_write { file_blocks = 16384 }
    | `Oltp -> Driver.Oltp { file_blocks = 16384; read_fraction = 0.67 }
    | `Nfs -> Driver.Nfs_mix { files_per_client = 48; file_blocks = 64 }
  in
  let cfg = H.Exp.wa_config ~cleaners ~max_cleaners:(max cleaners 4) () in
  let tracer = ref Wafl_obs.Trace.disabled in
  let spec =
    {
      Driver.default_spec with
      Driver.workload = wl;
      cfg;
      clients;
      cores;
      measure = measure_s *. 1_000_000.0;
      seed;
      obs =
        (fun eng ->
          let t = Wafl_obs.Trace.create ~sample_interval ~causal eng in
          tracer := t;
          t);
    }
  in
  let r = Driver.run spec in
  let t = !tracer in
  let buf = Buffer.create 65536 in
  Wafl_obs.Trace.export t buf;
  let oc = open_out out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s: %d events retained, %d dropped\n" out
    (Wafl_obs.Trace.event_count t) (Wafl_obs.Trace.dropped t);
  report_drops t;
  Printf.printf "run: %d ops, %.0f ops/s, %d CPs\n\n" r.Driver.ops r.Driver.throughput
    r.Driver.cps_completed;
  print_string (Wafl_obs.Trace.profile_table ~top t);
  print_newline ();
  let elapsed =
    match Wafl_obs.Trace.engine t with Some eng -> Wafl_sim.Engine.now eng | None -> 0.0
  in
  print_string (Wafl_fs.Report.perf ~elapsed (Wafl_obs.Trace.metrics t))

let trace_cmd =
  let doc =
    "Run one configuration with the tracer attached and export a Chrome trace-event JSON \
     file (load it in Perfetto or chrome://tracing): CP phase spans, per-affinity message \
     spans, RAID I/O spans, cleaner work spans and a counter/gauge timeseries — all in \
     virtual time.  Also prints the virtual-CPU profile and an operator performance \
     summary.  Deterministic: the same seed produces a byte-identical trace."
  in
  let workload =
    Arg.(value & opt workload_conv `Seq & info [ "workload"; "w" ] ~docv:"KIND" ~doc:"Workload: seq, rand, oltp or nfs.")
  in
  let cleaners = Arg.(value & opt int 4 & info [ "cleaners" ] ~docv:"N" ~doc:"Cleaner threads.") in
  let clients = Arg.(value & opt int 40 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.") in
  let cores = Arg.(value & opt int 20 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.") in
  let measure = Arg.(value & opt float 0.5 & info [ "measure" ] ~docv:"SECONDS" ~doc:"Virtual measurement window.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let out = Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace output file.") in
  let sample_interval = Arg.(value & opt float 10_000.0 & info [ "sample-interval" ] ~docv:"US" ~doc:"Counter/gauge sampling period in virtual us (0 disables the timeseries).") in
  let top = Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc:"Rows in the virtual-CPU profile table.") in
  let causal = Arg.(value & flag & info [ "causal" ] ~doc:"Also record causal edges (flow events) across every asynchronous handoff, for $(b,wafl_sim analyze).") in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const traced_run $ workload $ cleaners $ clients $ cores $ measure $ seed $ out
      $ sample_interval $ top $ causal)

(* --- trace analysis --- *)

let analyze_run file json =
  let contents =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  in
  match contents with
  | Error e -> `Error (false, e)
  | Ok s -> (
      match Wafl_obs.Causal.analyze_string s with
      | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
      | Ok a ->
          if json then print_endline (Wafl_obs.Json.to_string (Wafl_obs.Causal.to_json a))
          else print_string (Wafl_obs.Causal.render a);
          `Ok ())

let analyze_cmd =
  let doc =
    "Analyze a causal trace (written by $(b,--causal)): end-to-end latency decomposition \
     per operation and pipeline stage, each checkpoint's critical path extracted from the \
     causal DAG, and a bottleneck table attributing critical-path time to resource classes \
     (serial allocator, cleaner pool, Waffinity partition classes, RAID). Warns when the \
     trace ring dropped events, since a truncated trace under-reports."
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace JSON file.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as JSON.") in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(ret (const analyze_run $ file $ json))

(* --- randomized crash-point harness --- *)

let crash_run seeds first_seed ops fbn_space horizon verbose sanitize overload flash domains =
  let outcomes =
    H.Crash.run_seeds ~ops ~fbn_space ~horizon ~sanitize ~overload ~flash
      ~domains:(max 1 domains) ~first_seed ~count:seeds ()
  in
  if verbose then
    List.iter
      (fun (o : H.Crash.outcome) ->
        Printf.printf
          "seed %-5d crash %8.0fus %-14s cps %-3d acked %-5d torn %d degraded %b lost %d%s\n"
          o.H.Crash.seed o.H.Crash.crash_time o.H.Crash.cp_phase o.H.Crash.cps_before_crash
          o.H.Crash.acked o.H.Crash.torn o.H.Crash.disk_failure_active o.H.Crash.lost
          (match o.H.Crash.fsck_failure with Some m -> " fsck:" ^ m | None -> ""))
      outcomes;
  print_string (H.Crash.summarize outcomes);
  let races = List.fold_left (fun acc o -> acc + o.H.Crash.races) 0 outcomes in
  if sanitize then Printf.printf "  sanitizer: %d race reports\n" races;
  if not (List.for_all H.Crash.passed outcomes) then
    `Error (false, "some seeds lost acknowledged writes or failed fsck")
  else if races > 0 then `Error (false, "race detector reported under --sanitize")
  else `Ok ()

let crash_cmd =
  let doc =
    "Randomized crash-point testing: for each seed, run a write workload under a seeded \
     fault plan (media errors, transient I/O failures, disk loss, torn NVRAM tail), crash \
     at a plan-chosen virtual instant, recover and verify that fsck passes and no \
     acknowledged write was lost."
  in
  let seeds = Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to run.") in
  let first_seed = Arg.(value & opt int 1 & info [ "first-seed" ] ~docv:"N" ~doc:"First seed (seeds are consecutive).") in
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N" ~doc:"Cap on client operations per seed.") in
  let fbn_space = Arg.(value & opt int 700 & info [ "fbn-space" ] ~docv:"N" ~doc:"Distinct file blocks written per file.") in
  let horizon = Arg.(value & opt float 60_000.0 & info [ "horizon" ] ~docv:"US" ~doc:"Virtual-time horizon; the crash lands in its back 70%.") in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print one line per seed.") in
  let overload = Arg.(value & flag & info [ "overload" ] ~doc:"Drive each seed with a bursty open-loop arrival plan against a small watermarked NVRAM, so crash points land inside throttled and back-to-back-CP windows.") in
  let flash = Arg.(value & flag & info [ "flash" ] ~doc:"Attach a nearly-full NAND/FTL media model to every RAID group, so crashes routinely land mid-GC-cycle; the volatile L2P table is rebuilt on recovery and acked-write read-back must still hold.") in
  Cmd.v (Cmd.info "crash" ~doc)
    Term.(
      ret
        (const crash_run $ seeds $ first_seed $ ops $ fbn_space $ horizon $ verbose
       $ sanitize_arg $ overload $ flash $ domains_arg))

(* --- fleet shard on the partitioned engine --- *)

let shard_run scale shards domains seed =
  let shards = max 1 shards and domains = max 1 domains in
  let o = H.Shard.run ~scale ~shards ~domains ~seed () in
  H.Shard.print ~shards ~domains o;
  let shapes = H.Shard.shapes o in
  H.Exp.print_shapes shapes;
  if List.for_all snd shapes then `Ok () else `Error (false, "some shape checks missed")

let shard_cmd =
  let doc =
    "Fleet-sharded run on the conservative-lookahead partitioned engine: $(b,--shards) \
     independent aggregate stacks advance on independently-clocked engine partitions \
     (concurrently across $(b,--domains) worker domains), coupled through a global \
     CP-epoch barrier and fleet telemetry messages. Output is byte-identical at any \
     domain count; the printed digest makes that easy to check."
  in
  let shards = Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc:"Aggregate shards (engine partitions).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(ret (const shard_run $ scale_arg $ shards $ domains_arg $ seed))

(* --- operator top view --------------------------------------------------- *)

let top_run file live json out workload clients volumes cores measure_s seed window_ms windows
    top_k open_loop inject_b2b think_us cp_ms =
  let emit snap events =
    let s =
      if json then Wafl_obs.Json.to_string (Wafl_obs.Top.to_json snap events) ^ "\n"
      else Wafl_obs.Top.render ~top_k snap events
    in
    match out with
    | None ->
        print_string s;
        `Ok ()
    | Some path ->
        let oc = open_out path in
        output_string oc s;
        close_out oc;
        Printf.printf "wrote %s\n" path;
        `Ok ()
  in
  match (file, live) with
  | Some path, _ -> (
      let contents =
        try
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          Ok s
        with Sys_error e -> Error e
      in
      match contents with
      | Error e -> `Error (false, e)
      | Ok s -> (
          match Wafl_obs.Json.of_string s with
          | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
          | Ok j -> (
              match Wafl_obs.Top.of_json j with
              | snap, events -> emit snap events
              | exception Invalid_argument e -> `Error (false, Printf.sprintf "%s: %s" path e))))
  | None, false ->
      `Error (true, "pass a wafl-top snapshot file, or --live to run one configuration")
  | None, true ->
      let wl =
        match workload with
        | `Seq -> Driver.Seq_write { file_blocks = 4096 }
        | `Rand -> Driver.Rand_write { file_blocks = 4096 }
        | `Oltp -> Driver.Oltp { file_blocks = 4096; read_fraction = 0.67 }
        | `Nfs -> Driver.Nfs_mix { files_per_client = 48; file_blocks = 64 }
      in
      let rcfg0 =
        {
          Wafl_obs.Rollup.default_config with
          Wafl_obs.Rollup.window_us = window_ms *. 1000.0;
          windows;
        }
      in
      (* Size the per-volume budget to the requested ring rather than
         rejecting long-ring requests. *)
      let rcfg =
        {
          rcfg0 with
          Wafl_obs.Rollup.vol_budget_bytes =
            max Wafl_obs.Rollup.default_config.Wafl_obs.Rollup.vol_budget_bytes
              ((windows + 1) * Wafl_obs.Rollup.vol_window_bytes rcfg0);
        }
      in
      let spec =
        {
          Driver.default_spec with
          Driver.workload = wl;
          clients;
          volumes;
          cores;
          think_time = think_us;
          cfg =
            (match cp_ms with
            | None -> Driver.default_spec.Driver.cfg
            | Some ms ->
                { Driver.default_spec.Driver.cfg with
                  Wafl_core.Walloc.cp_timer = Some (ms *. 1000.0) });
          measure = measure_s *. 1_000_000.0;
          seed;
          telemetry = Some { Driver.rollup = rcfg; rules = Wafl_obs.Health.default_rules };
          open_loop =
            (match open_loop with
            | None -> None
            | Some total_rate ->
                Some
                  {
                    Driver.arrivals = Arrival.population ~n:clients ~total_rate ~alpha:1.0;
                    qos = Some Wafl_qos.Qos.default_config;
                  });
        }
      in
      if inject_b2b then Wafl_core.Cp.chaos_force_b2b := true;
      let r =
        Fun.protect
          ~finally:(fun () -> Wafl_core.Cp.chaos_force_b2b := false)
          (fun () -> Driver.run spec)
      in
      (match r.Driver.telemetry with
      | None -> `Error (false, "driver returned no telemetry")
      | Some tr ->
          if tr.Driver.tr_health_dropped > 0 then
            Printf.eprintf "WARNING: %d health events dropped (log capacity)\n"
              tr.Driver.tr_health_dropped;
          emit tr.Driver.tr_snapshot tr.Driver.tr_events)

let top_cmd =
  let doc =
    "Operator fleet view over telemetry rollups: per-window CP/latency/shed timeline, \
     top-K volumes by shed, write p99 and backlog, and the health-event feed.  Reads a \
     snapshot written by $(b,--json)/$(b,--out), or runs one configuration with $(b,--live) \
     (telemetry is observe-only: the run is bit-identical with it on)."
  in
  let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"SNAPSHOT" ~doc:"A wafl-top/1 JSON snapshot to render.") in
  let live = Arg.(value & flag & info [ "live" ] ~doc:"Run one configuration and render its telemetry.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the wafl-top/1 JSON snapshot instead of tables.") in
  let out = Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write output to $(docv) instead of stdout.") in
  let workload = Arg.(value & opt workload_conv `Seq & info [ "workload"; "w" ] ~docv:"KIND" ~doc:"Workload: seq, rand, oltp or nfs.") in
  let clients = Arg.(value & opt int 40 & info [ "clients" ] ~docv:"N" ~doc:"Clients (open loop: tenants).") in
  let volumes = Arg.(value & opt int 8 & info [ "volumes" ] ~docv:"N" ~doc:"FlexVols.") in
  let cores = Arg.(value & opt int 20 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.") in
  let measure = Arg.(value & opt float 1.0 & info [ "measure" ] ~docv:"SECONDS" ~doc:"Virtual measurement window.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  let window = Arg.(value & opt float 100.0 & info [ "window" ] ~docv:"MS" ~doc:"Rollup window width, virtual milliseconds.") in
  let windows = Arg.(value & opt int 8 & info [ "windows" ] ~docv:"N" ~doc:"Sealed windows retained.") in
  let top_k = Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc:"Rows in the top-volume tables.") in
  let open_loop = Arg.(value & opt (some float) None & info [ "open-loop" ] ~docv:"RATE" ~doc:"Open-loop mode: total offered ops/s over a Zipf tenant population behind per-volume QoS.") in
  let inject_b2b = Arg.(value & flag & info [ "inject-b2b" ] ~doc:"Chaos hook: book every CP as back-to-back so the watchdog's B2B-streak rule fires (accounting only; results unchanged).") in
  let think = Arg.(value & opt float 0.0 & info [ "think" ] ~docv:"US" ~doc:"Mean client think time in virtual microseconds (0 = closed loop at full tilt).") in
  let cp_ms = Arg.(value & opt (some float) None & info [ "cp-ms" ] ~docv:"MS" ~doc:"Override the CP timer period in virtual milliseconds.") in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      ret
        (const top_run $ file $ live $ json $ out $ workload $ clients $ volumes $ cores
       $ measure $ seed $ window $ windows $ top_k $ open_loop $ inject_b2b $ think $ cp_ms))

let run_cmd =
  let doc = "Run one ad-hoc configuration and print its measurements." in
  let workload =
    Arg.(value & opt workload_conv `Seq & info [ "workload"; "w" ] ~docv:"KIND" ~doc:"Workload: seq, rand, oltp or nfs.")
  in
  let cleaners = Arg.(value & opt int 4 & info [ "cleaners" ] ~docv:"N" ~doc:"Cleaner threads.") in
  let serial_infra = Arg.(value & flag & info [ "serial-infra" ] ~doc:"Serialize the infrastructure.") in
  let dynamic = Arg.(value & flag & info [ "dynamic" ] ~doc:"Enable dynamic cleaner-thread tuning.") in
  let clients = Arg.(value & opt int 40 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.") in
  let cores = Arg.(value & opt int 20 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.") in
  let measure = Arg.(value & opt float 1.0 & info [ "measure" ] ~docv:"SECONDS" ~doc:"Virtual measurement window.") in
  let think = Arg.(value & opt float 0.0 & info [ "think" ] ~docv:"US" ~doc:"Mean client think time (virtual us).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const custom_run $ workload $ cleaners $ serial_infra $ dynamic $ clients $ cores
      $ measure $ think $ seed $ sanitize_arg $ causal_arg)

let () =
  let doc = "WAFL White Alligator write-allocation reproduction" in
  let info = Cmd.info "wafl_sim" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            run_experiment "fig4" fig4;
            run_experiment "fig5" fig5;
            run_experiment "fig6" fig6;
            run_experiment "fig7" fig7;
            run_experiment "fig8" fig8;
            run_experiment "fig9" fig9;
            run_experiment "batching" batching;
            run_experiment "history" history;
            run_experiment "ablation" ablation;
            run_experiment "crossover" crossover;
            run_experiment "overload" overload;
            run_experiment "flash" flash;
            run_experiment "all" all;
            run_cmd;
            trace_cmd;
            analyze_cmd;
            crash_cmd;
            shard_cmd;
            top_cmd;
          ]))
