(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§V) on the simulated 20-core platform, then runs
   Bechamel micro-benchmarks of the allocator's primitive operations.

     dune exec bench/main.exe              # full paper scale
     WAFL_QUICK=1 dune exec bench/main.exe # fast smoke (quarter scale)
     WAFL_SCALE=0.5 ...                    # custom scale *)

module H = Wafl_harness
module J = Wafl_obs.Json

let section name = Printf.printf "\n=== %s ===\n%!" name

(* One record per figure, accumulated for BENCH_paper.json. *)
type record = {
  r_name : string;
  r_wall_s : float;
  r_virtual_us : float;  (** simulated virtual time across the figure's runs *)
  r_write_ops : int;  (** client writes across the figure's runs (cache hits included) *)
  r_write_p50_us : float;
  r_write_p99_us : float;
  r_health_events : int;
      (** health-watchdog events across the figure's runs; healthy
          figures must report 0 *)
  r_extra : (string * J.t) list;
      (** figure-specific columns (e.g. the overload figure's per-scenario
          goodput / shed_rate / victim_p99 table) *)
  r_shapes : (string * bool) list;
}

let records : record list ref = ref []

(* A figure closure can publish extra JSON columns for its record by
   setting this before returning its shapes; [timed] consumes it. *)
let pending_extra : (string * J.t) list ref = ref []

let virtual_total () =
  (* Driver.run accumulates each run's final virtual clock here. *)
  Wafl_obs.Metrics.counter_value Wafl_obs.Metrics.default "virtual_time_us"

let timed name f =
  let t0 = Unix.gettimeofday () in
  let v0 = virtual_total () in
  (* Fresh per-figure sink: every run under [f] (memoized or not) merges
     its end-to-end write-latency histogram here. *)
  let wh = Wafl_util.Histogram.create () in
  Wafl_workload.Driver.latency_sink := Some wh;
  (* Fresh per-figure health-event counter, fed by every run (memoized
     cache hits replay their cached event count). *)
  let hc = ref 0 in
  Wafl_workload.Driver.health_sink := Some hc;
  pending_extra := [];
  let shapes =
    Fun.protect
      ~finally:(fun () ->
        Wafl_workload.Driver.latency_sink := None;
        Wafl_workload.Driver.health_sink := None)
      f
  in
  let wall = Unix.gettimeofday () -. t0 in
  let virt = virtual_total () -. v0 in
  let p50 = Wafl_util.Histogram.percentile wh 50.0 in
  let p99 = Wafl_util.Histogram.percentile wh 99.0 in
  Printf.printf "  [%s: %.1fs wall, %.2fs virtual, write p50 %.0fus p99 %.0fus, %d health events]\n%!"
    name wall (virt /. 1e6) p50 p99 !hc;
  records :=
    {
      r_name = name;
      r_wall_s = wall;
      r_virtual_us = virt;
      r_write_ops = Wafl_util.Histogram.count wh;
      r_write_p50_us = p50;
      r_write_p99_us = p99;
      r_health_events = !hc;
      r_extra = !pending_extra;
      r_shapes = shapes;
    }
    :: !records;
  pending_extra := [];
  shapes

(* BENCH_paper.json schema (all times in the named unit):
     { "schema": "wafl-bench/7",
       "scale": float,            -- WAFL_SCALE factor of THIS run
       "domains": int,            -- worker domains the harness fanned over
       "total_wall_s": float,
       "total_virtual_us": float, -- simulated time of actually-executed
                                  -- runs (memoized cache hits add none)
       "speedup_vs_d1": float,    -- present when the file holds a 1-domain
                                  -- run at the same scale: its wall / ours
       "shapes_ok": int, "shapes_total": int,
       "figures": [ { "name": str, "wall_s": float, "virtual_us": float,
                      "write_ops": int,        -- client writes, cache hits included
                      "write_p50_us": float,   -- end-to-end write latency
                      "write_p99_us": float,
                      "shapes": [ { "name": str, "ok": bool } ] } ],
       "runs_by_config": { "0.25/d1": { scale, domains, total_wall_s, ... },
                           "0.25/d4": { ... }, "1.00/d1": { ... } } }
   The top-level fields describe the run that last wrote the file (v1
   compatibility, and what `make bench-gate` compares); "runs_by_config"
   keeps the latest run per (scale, domains) pair so one file records
   the quarter-scale smoke, the full-scale suite, and serial-vs-parallel
   pairs whose results are byte-identical by construction (only wall
   time differs).  Figures appear in execution order; "shapes" are the
   qualitative paper-vs-measured assertions also printed in the shape
   summary.  v3 adds the per-figure end-to-end write-latency fields; v4
   adds figure-specific extra columns — the overload figure carries
     "overload": [ { "scenario": str, "goodput_ops_s": float,
                     "shed_rate": float, "victim_p99_us": float } ]
   with one row per scenario; v5 adds the flash media-model figure with
     "flash": [ { "scenario": str, "waf": float, "gc_stall_ms": float,
                  "write_p99_us": float } ]
   per scenario; v6 adds "domains", "speedup_vs_d1" and renames
   "runs_by_scale" to the (scale, domains)-keyed "runs_by_config" —
   legacy v2..v5 entries are carried over under "SCALE/d1"; v7 runs the
   whole suite with fleet telemetry attached (observe-only, so every
   number is unchanged) and adds the per-figure "health_events" count —
   0 on every healthy figure.  Older files (without these fields) are
   still read for carry-over. *)
let run_record ~scale ~domains ~total_wall =
  let figs =
    List.rev_map
      (fun r ->
        J.Obj
          ([
             ("name", J.Str r.r_name);
             ("wall_s", J.Num r.r_wall_s);
             ("virtual_us", J.Num r.r_virtual_us);
             ("write_ops", J.Num (float_of_int r.r_write_ops));
             ("write_p50_us", J.Num r.r_write_p50_us);
             ("write_p99_us", J.Num r.r_write_p99_us);
             ("health_events", J.Num (float_of_int r.r_health_events));
           ]
          @ r.r_extra
          @ [
              ( "shapes",
                J.Arr
                  (List.map
                     (fun (n, ok) -> J.Obj [ ("name", J.Str n); ("ok", J.Bool ok) ])
                     r.r_shapes) );
            ]))
      !records
  in
  let shapes = List.concat_map (fun r -> r.r_shapes) !records in
  [
    ("scale", J.Num scale);
    ("domains", J.Num (float_of_int domains));
    ("total_wall_s", J.Num total_wall);
    ("total_virtual_us", J.Num (virtual_total ()));
    ("shapes_ok", J.Num (float_of_int (List.length (List.filter snd shapes))));
    ("shapes_total", J.Num (float_of_int (List.length shapes)));
    ("figures", J.Arr figs);
  ]

(* Latest run per (scale, domains) config from an existing file, minus
   the key being rewritten; a v1 file (or no file) contributes nothing.
   Pre-v6 files carried one run per scale in "runs_by_scale" — those
   runs were all single-domain, so they carry over as "SCALE/d1". *)
let previous_runs ~except path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic -> (
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match J.of_string body with
      | Ok doc -> (
          let runs =
            match (J.member "schema" doc, J.member "runs_by_config" doc) with
            | Some (J.Str ("wafl-bench/6" | "wafl-bench/7")), Some (J.Obj runs) -> runs
            | Some (J.Str ("wafl-bench/2" | "wafl-bench/3" | "wafl-bench/4" | "wafl-bench/5")), _
              -> (
                match J.member "runs_by_scale" doc with
                | Some (J.Obj runs) -> List.map (fun (k, v) -> (k ^ "/d1", v)) runs
                | _ -> [])
            | _ -> []
          in
          List.filter (fun (k, _) -> k <> except) runs)
      | _ -> [])

let config_key ~scale ~domains = Printf.sprintf "%.2f/d%d" scale domains

let write_json ~scale ~domains ~total_wall path =
  let this_run = run_record ~scale ~domains ~total_wall in
  let key = config_key ~scale ~domains in
  let prev = previous_runs ~except:key path in
  (* Like-for-like speedup: the stored single-domain run at the same
     scale, if the file has one (this run itself when domains = 1). *)
  let speedup =
    if domains = 1 then []
    else
      match List.assoc_opt (config_key ~scale ~domains:1) prev with
      | Some base -> (
          match J.member "total_wall_s" base with
          | Some (J.Num base_wall) when total_wall > 0.0 ->
              [ ("speedup_vs_d1", J.Num (base_wall /. total_wall)) ]
          | _ -> [])
      | None -> []
  in
  let this_run = this_run @ speedup in
  let runs = prev @ [ (key, J.Obj this_run) ] in
  let runs = List.sort (fun (a, _) (b, _) -> compare a b) runs in
  let doc =
    J.Obj ((("schema", J.Str "wafl-bench/7") :: this_run) @ [ ("runs_by_config", J.Obj runs) ])
  in
  let oc = open_out path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  (match speedup with
  | [ (_, J.Num s) ] -> Printf.printf "speedup vs 1-domain run at scale %.2f: %.2fx\n%!" scale s
  | _ -> ());
  Printf.printf "wrote %s\n%!" path

(* WAFL_BENCH_ONLY="fig4,history" restricts the suite to the named
   figures (and drops the micro-benchmarks unless "micro" is listed) —
   the fast subset `make check` runs as its regression gate. *)
let only =
  match Sys.getenv_opt "WAFL_BENCH_ONLY" with
  | None | Some "" -> None
  | Some s -> Some (String.split_on_char ',' s |> List.map String.trim)

let want name = match only with None -> true | Some l -> List.mem name l

let figures scale =
  let all = ref [] in
  let add shapes = all := !all @ shapes in
  let run name title f = if want name then begin section title; add (timed name f) end in
  run "fig4" "Figure 4 (sequential write, permutations)" (fun () ->
         let rows = H.Fig4.run ~scale () in
         H.Fig4.print rows;
         H.Fig4.shapes rows);
  run "fig5" "Figure 5 (cleaner-thread scaling)" (fun () ->
         let rows = H.Fig5.run ~scale () in
         H.Fig5.print rows;
         H.Fig5.shapes rows);
  run "fig6" "Figure 6 (infrastructure parallelization)" (fun () ->
         let rows = H.Fig6.run ~scale () in
         H.Fig6.print rows;
         H.Fig6.shapes rows);
  run "fig7" "Figure 7 (random write, permutations)" (fun () ->
         let rows = H.Fig7.run ~scale () in
         H.Fig7.print rows;
         H.Fig7.shapes rows);
  run "fig8" "Figure 8 (OLTP peak throughput / knee latency)" (fun () ->
         let rows = H.Fig8.run ~scale () in
         H.Fig8.print rows;
         H.Fig8.shapes rows);
  run "fig9" "Figure 9 (throughput vs latency curves)" (fun () ->
         let rows = H.Fig9.run ~scale () in
         H.Fig9.print rows;
         H.Fig9.shapes rows);
  run "batching" "Batched inode cleaning (SV-C)" (fun () ->
         let rows = H.Batching.run ~scale () in
         H.Batching.print rows;
         H.Batching.shapes rows);
  run "history" "History ablation (the SIII evolution: 2006 / 2008 / 2011)" (fun () ->
         let rows = H.History.run ~scale () in
         H.History.print rows;
         H.History.shapes rows);
  run "ablation/chunk" "Design ablation: bucket chunk size (SIV-C)" (fun () ->
         let rows = H.Ablation.run_chunk ~scale () in
         H.Ablation.print_chunk rows;
         H.Ablation.shapes_chunk rows);
  run "ablation/ranges" "Design ablation: Range-affinity instances (SIV-B2)" (fun () ->
         let rows = H.Ablation.run_ranges ~scale () in
         H.Ablation.print_ranges rows;
         H.Ablation.shapes_ranges rows);
  run "crossover" "Crossover sweep: sequential -> random write" (fun () ->
         let rows = H.Crossover.run ~scale () in
         H.Crossover.print rows;
         H.Crossover.shapes rows);
  run "overload" "Overload: noisy-neighbor tenant isolation (QoS)" (fun () ->
         let rows = H.Overload.run ~scale () in
         H.Overload.print rows;
         pending_extra :=
           [
             ( "overload",
               J.Arr
                 (List.map
                    (fun row ->
                      J.Obj
                        [
                          ("scenario", J.Str (H.Overload.scenario_name row.H.Overload.scenario));
                          ("goodput_ops_s", J.Num (H.Overload.goodput row));
                          ("shed_rate", J.Num (H.Overload.shed_rate row));
                          ("victim_p99_us", J.Num (H.Overload.victim_p99 row));
                        ])
                    rows) );
           ];
         H.Overload.shapes rows);
  run "flash" "Flash media model: WAF / GC push-back vs fill, OP, streaming" (fun () ->
         let rows = H.Flash.run ~scale () in
         H.Flash.print rows;
         pending_extra :=
           [
             ( "flash",
               J.Arr
                 (List.map
                    (fun row ->
                      J.Obj
                        [
                          ("scenario", J.Str (H.Flash.scenario_name row.H.Flash.scenario));
                          ("waf", J.Num (H.Flash.waf row));
                          ("gc_stall_ms", J.Num (H.Flash.gc_stall_us row /. 1000.0));
                          ("write_p99_us", J.Num (H.Flash.write_p99 row));
                        ])
                    rows) );
           ];
         H.Flash.shapes rows);
  section "Shape summary (paper-vs-measured, qualitative)";
  H.Exp.print_shapes !all;
  let missed = List.filter (fun (_, ok) -> not ok) !all in
  Printf.printf "\n%d/%d shapes reproduced\n%!"
    (List.length !all - List.length missed)
    (List.length !all)

(* --- Bechamel micro-benchmarks of allocator primitives ------------------- *)

open Bechamel
open Toolkit

let bucket_bench () =
  (* One USE (take + tetris enqueue) amortized over a fresh bucket. *)
  let eng = Wafl_sim.Engine.create ~cores:1 () in
  let geom =
    Wafl_storage.Geometry.create ~drive_blocks:65536 ~aa_stripes:1024 ~raid_groups:[ (2, 1) ] ()
  in
  let disk = Wafl_storage.Disk.create geom in
  let raid = Wafl_storage.Raid.create eng ~cost:Wafl_sim.Cost.free ~disk ~rg:0 in
  let tetris =
    Wafl_core.Tetris.create eng ~cost:Wafl_sim.Cost.free ~raid ~expected_buckets:max_int
  in
  let bucket = ref None in
  let next_base = ref 0 in
  let payload = Wafl_fs.Layout.Data { vol = 0; file = 0; fbn = 0; content = 0L } in
  Staged.stage (fun () ->
      let b =
        match !bucket with
        | Some b when not (Wafl_core.Bucket.is_exhausted b) -> b
        | _ ->
            let vbns = Array.init 64 (fun i -> (!next_base + i) mod 100_000) in
            next_base := (!next_base + 64) mod 100_000;
            let b =
              Wafl_core.Bucket.make
                ~target:(Wafl_core.Bucket.Phys { rg = 0; drive = 0 })
                ~tetris ~vbns ()
            in
            bucket := Some b;
            b
      in
      ignore (Wafl_core.Api.use b ~payload))

let bitmap_bench () =
  let map = Wafl_fs.Bitmap_file.create ~bits:(1 lsl 20) in
  let i = ref 0 in
  Staged.stage (fun () ->
      let bit = !i land 0xFFFFF in
      i := !i + 7919;
      if Wafl_fs.Bitmap_file.mem map bit then Wafl_fs.Bitmap_file.clear map bit
      else Wafl_fs.Bitmap_file.set map bit)

let bitmap_scan_bench () =
  let map = Wafl_fs.Bitmap_file.create ~bits:(1 lsl 20) in
  (* Fill all but every 512th bit so scans do real word-walking. *)
  for b = 0 to (1 lsl 20) - 1 do
    if b land 511 <> 0 then Wafl_fs.Bitmap_file.set map b
  done;
  let start = ref 0 in
  Staged.stage (fun () ->
      match Wafl_fs.Bitmap_file.find_free map ~lo:0 ~hi:((1 lsl 20) - 1) ~start:!start with
      | Some b -> start := (b + 1) land 0xFFFFF
      | None -> start := 0)

let stage_bench () =
  let s = Wafl_core.Stage.create ~target:Wafl_core.Stage.Phys ~capacity:64 in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      match Wafl_core.Stage.add s !i with
      | `Ok -> ()
      | `Full -> ignore (Wafl_core.Stage.drain s))

let engine_bench () =
  Staged.stage (fun () ->
      let eng = Wafl_sim.Engine.create ~cores:4 () in
      for _ = 1 to 50 do
        ignore (Wafl_sim.Engine.spawn eng (fun () -> Wafl_sim.Engine.consume 10.0))
      done;
      Wafl_sim.Engine.run eng)

let rng_bench () =
  let r = Wafl_util.Rng.create ~seed:1 in
  Staged.stage (fun () -> ignore (Wafl_util.Rng.bits64 r))

let micro () =
  section "Micro-benchmarks (real wall time of allocator primitives)";
  let test =
    Test.make_grouped ~name:"primitives"
      [
        Test.make ~name:"bucket USE (take + tetris enqueue)" (bucket_bench ());
        Test.make ~name:"activemap bit toggle (incl. dirty tracking)" (bitmap_bench ());
        Test.make ~name:"activemap find_free (sparse free)" (bitmap_scan_bench ());
        Test.make ~name:"stage add (drain amortized)" (stage_bench ());
        Test.make ~name:"DES engine: 50 fibers spawn+run" (engine_bench ());
        Test.make ~name:"xoshiro256 star-star bits64" (rng_bench ());
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan in
      rows := (name, ns) :: !rows)
    results;
  let t = Wafl_util.Table.create ~headers:[ "operation"; "ns/op" ] in
  List.iter
    (fun (name, ns) -> Wafl_util.Table.add_row t [ name; Printf.sprintf "%.1f" ns ])
    (List.sort compare !rows);
  Wafl_util.Table.print t

let () =
  let scale = H.Exp.of_env () in
  (* The figure suite re-runs several identical specs (fig6 = fig4/5
     rows, history/crossover endpoints, fig9 top-load rows); runs are
     deterministic, so let the driver return cached results for them.
     Per-figure virtual time then counts only actually-executed runs. *)
  Wafl_workload.Driver.memoize := true;
  (* Fan independent runs within each figure over the host's cores
     (WAFL_DOMAINS overrides).  Results are byte-identical at any
     count — only wall time changes — so the recorded domain count
     matters only for like-for-like wall-time comparison. *)
  let domains = Wafl_util.Pool.default_domains () in
  H.Exp.domains := domains;
  (* Always-on fleet telemetry across the whole suite: observe-only (the
     telemetry tests pin bit-identity), and the per-figure health-event
     counts land in BENCH_paper.json. *)
  H.Exp.telemetry := Some Wafl_workload.Driver.default_telemetry;
  Printf.printf "WAFL White Alligator reproduction benchmark harness (scale %.2f, %d domain%s)\n"
    scale domains
    (if domains = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  figures scale;
  if want "micro" then micro ();
  let total_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal wall time: %.1fs\n" total_wall;
  let out = Option.value ~default:"BENCH_paper.json" (Sys.getenv_opt "WAFL_BENCH_OUT") in
  write_json ~scale ~domains ~total_wall out
