(* Unit tests for Wafl_fs: bitmap metafiles, files, volumes, NVLog,
   loose-accounting counters and aggregate-level allocation state. *)

open Wafl_fs

(* --- Bitmap_file --- *)

let test_bitmap_set_clear () =
  let b = Bitmap_file.create ~bits:100_000 in
  Alcotest.(check int) "all free" 100_000 (Bitmap_file.free_count b);
  Bitmap_file.set b 5;
  Bitmap_file.set b 99_999;
  Alcotest.(check bool) "bit set" true (Bitmap_file.mem b 5);
  Alcotest.(check bool) "other clear" false (Bitmap_file.mem b 6);
  Alcotest.(check int) "free count" 99_998 (Bitmap_file.free_count b);
  Alcotest.(check int) "used count" 2 (Bitmap_file.used_count b);
  Bitmap_file.clear b 5;
  Alcotest.(check int) "freed" 99_999 (Bitmap_file.free_count b)

let test_bitmap_double_ops_rejected () =
  let b = Bitmap_file.create ~bits:64 in
  Bitmap_file.set b 3;
  Alcotest.check_raises "double alloc"
    (Invalid_argument "Bitmap_file.set: bit 3 already allocated") (fun () ->
      Bitmap_file.set b 3);
  Bitmap_file.clear b 3;
  Alcotest.check_raises "double free" (Invalid_argument "Bitmap_file.clear: bit 3 already free")
    (fun () -> Bitmap_file.clear b 3)

let test_bitmap_find_free () =
  let b = Bitmap_file.create ~bits:1024 in
  for i = 0 to 99 do
    Bitmap_file.set b i
  done;
  Alcotest.(check (option int)) "first free" (Some 100)
    (Bitmap_file.find_free b ~lo:0 ~hi:1023 ~start:0);
  Alcotest.(check (option int)) "from start" (Some 200)
    (Bitmap_file.find_free b ~lo:0 ~hi:1023 ~start:200);
  Alcotest.(check (option int)) "within used range" None
    (Bitmap_file.find_free b ~lo:0 ~hi:99 ~start:0);
  Bitmap_file.set b 100;
  Alcotest.(check (option int)) "skips newly used" (Some 101)
    (Bitmap_file.find_free b ~lo:0 ~hi:1023 ~start:0)

let test_bitmap_find_free_word_boundaries () =
  let b = Bitmap_file.create ~bits:256 in
  (* Fill everything except bit 63 and bit 128. *)
  for i = 0 to 255 do
    if i <> 63 && i <> 128 then Bitmap_file.set b i
  done;
  Alcotest.(check (option int)) "end of word" (Some 63)
    (Bitmap_file.find_free b ~lo:0 ~hi:255 ~start:0);
  Alcotest.(check (option int)) "start of later word" (Some 128)
    (Bitmap_file.find_free b ~lo:0 ~hi:255 ~start:64);
  Alcotest.(check (option int)) "bounded below 128" None
    (Bitmap_file.find_free b ~lo:64 ~hi:127 ~start:64)

let test_bitmap_count_free_in () =
  let b = Bitmap_file.create ~bits:2048 in
  for i = 100 to 299 do
    Bitmap_file.set b i
  done;
  Alcotest.(check int) "range fully free" 100 (Bitmap_file.count_free_in b ~lo:1000 ~hi:1099);
  Alcotest.(check int) "range fully used" 0 (Bitmap_file.count_free_in b ~lo:100 ~hi:299);
  Alcotest.(check int) "mixed range" 100 (Bitmap_file.count_free_in b ~lo:0 ~hi:199)

let test_bitmap_dirty_tracking () =
  let b = Bitmap_file.create ~bits:(3 * Layout.bits_per_map_block) in
  Alcotest.(check (list int)) "clean" [] (Bitmap_file.dirty_blocks b);
  Bitmap_file.set b 0;
  Bitmap_file.set b (Layout.bits_per_map_block + 1);
  Alcotest.(check (list int)) "two dirty blocks" [ 0; 1 ] (Bitmap_file.dirty_blocks b);
  Bitmap_file.clear_dirty b;
  Alcotest.(check (list int)) "cleared" [] (Bitmap_file.dirty_blocks b);
  Bitmap_file.clear b 0;
  Alcotest.(check (list int)) "free dirties too" [ 0 ] (Bitmap_file.dirty_blocks b)

let test_bitmap_block_roundtrip () =
  let b = Bitmap_file.create ~bits:(2 * Layout.bits_per_map_block) in
  List.iter (Bitmap_file.set b) [ 0; 63; 64; 32767; 32768; 40000 ];
  let w0 = Bitmap_file.words_of_block b 0 in
  let w1 = Bitmap_file.words_of_block b 1 in
  let b2 = Bitmap_file.create ~bits:(2 * Layout.bits_per_map_block) in
  Bitmap_file.load_block b2 0 w0;
  Bitmap_file.load_block b2 1 w1;
  Alcotest.(check int) "free count reconstructed" (Bitmap_file.free_count b)
    (Bitmap_file.free_count b2);
  List.iter
    (fun bit -> Alcotest.(check bool) "bit survives" true (Bitmap_file.mem b2 bit))
    [ 0; 63; 64; 32767; 32768; 40000 ]

let test_bitmap_locations () =
  let b = Bitmap_file.create ~bits:(2 * Layout.bits_per_map_block) in
  Alcotest.(check int) "unknown" (-1) (Bitmap_file.location b 0);
  Alcotest.(check int) "old none" (-1) (Bitmap_file.set_location b 0 500);
  Alcotest.(check int) "old returned" 500 (Bitmap_file.set_location b 0 900);
  Alcotest.(check int) "current" 900 (Bitmap_file.location b 0)

let prop_bitmap_free_count_consistent =
  QCheck.Test.make ~name:"free count matches bit population" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 8191))
    (fun bits ->
      let b = Bitmap_file.create ~bits:8192 in
      let distinct = List.sort_uniq compare bits in
      List.iter (Bitmap_file.set b) distinct;
      Bitmap_file.free_count b = 8192 - List.length distinct
      && Bitmap_file.count_free_in b ~lo:0 ~hi:8191 = Bitmap_file.free_count b)

(* --- File --- *)

let test_file_write_snapshot_cow () =
  let f = File.create ~vol:0 ~id:1 in
  File.write f ~fbn:10 ~content:100L;
  File.write f ~fbn:11 ~content:110L;
  Alcotest.(check int) "front dirty" 2 (File.dirty_front f);
  File.cp_snapshot f;
  Alcotest.(check int) "front empty after snapshot" 0 (File.dirty_front f);
  Alcotest.(check int) "cp holds both" 2 (File.cp_buffer_count f);
  (* Write during CP: in-memory COW; snapshot untouched. *)
  File.write f ~fbn:10 ~content:999L;
  Alcotest.(check (list (pair int int64))) "snapshot unchanged"
    [ (10, 100L); (11, 110L) ]
    (File.cp_buffers f);
  Alcotest.(check (option int64)) "read sees newest" (Some 999L) (File.read_cached f ~fbn:10);
  Alcotest.(check (option int64)) "cp visible through cache" (Some 110L)
    (File.read_cached f ~fbn:11);
  File.cp_done f;
  Alcotest.(check (option int64)) "cp buffer gone" None (File.read_cached f ~fbn:11);
  Alcotest.(check (option int64)) "front survives" (Some 999L) (File.read_cached f ~fbn:10)

let test_file_double_snapshot_rejected () =
  let f = File.create ~vol:0 ~id:1 in
  File.write f ~fbn:0 ~content:1L;
  File.cp_snapshot f;
  Alcotest.check_raises "second snapshot"
    (Invalid_argument "File.cp_snapshot: previous CP not finished") (fun () ->
      File.cp_snapshot f)

let test_file_bmap_and_inode_rec () =
  let f = File.create ~vol:0 ~id:7 in
  Alcotest.(check int) "hole" (-1) (File.vvbn_of_fbn f 5);
  Alcotest.(check int) "no old vvbn" (-1) (File.set_vvbn f ~fbn:5 ~vvbn:1000);
  Alcotest.(check int) "old vvbn returned" 1000 (File.set_vvbn f ~fbn:5 ~vvbn:2000);
  Alcotest.(check (list int)) "bmap block 0 dirty" [ 0 ] (File.dirty_bmap_blocks f);
  ignore (File.set_vvbn f ~fbn:600 ~vvbn:3000);
  Alcotest.(check (list int)) "second bmap block dirty" [ 0; 1 ] (File.dirty_bmap_blocks f);
  ignore (File.set_bmap_location f 0 42);
  ignore (File.set_bmap_location f 1 43);
  File.write f ~fbn:600 ~content:0L;
  let r = File.inode_rec f in
  Alcotest.(check int) "id" 7 r.Layout.file_id;
  Alcotest.(check int) "nfbns" 601 r.Layout.nfbns;
  Alcotest.(check int) "two bmap blocks" 2 (Array.length r.Layout.bmap_pvbns);
  (* Round-trip through the persistent representation. *)
  let f2 = File.of_inode_rec ~vol:0 r in
  File.load_bmap_block f2 ~index:0 ~entries:(File.bmap_entries f 0);
  File.load_bmap_block f2 ~index:1 ~entries:(File.bmap_entries f 1);
  Alcotest.(check int) "vvbn restored" 2000 (File.vvbn_of_fbn f2 5);
  Alcotest.(check int) "vvbn restored 2" 3000 (File.vvbn_of_fbn f2 600)

(* --- Volume --- *)

let test_volume_dirty_inode_tracking () =
  let v = Volume.create ~id:0 ~vvbn_space:10_000 in
  let f1 = File.create ~vol:0 ~id:(Volume.fresh_file_id v) in
  let f2 = File.create ~vol:0 ~id:(Volume.fresh_file_id v) in
  Volume.add_file v f1;
  Volume.add_file v f2;
  File.write f1 ~fbn:0 ~content:1L;
  Volume.note_dirty v f1;
  Volume.note_dirty v f1;
  Alcotest.(check int) "idempotent note_dirty" 1 (Volume.dirty_inode_count v);
  File.write f2 ~fbn:0 ~content:2L;
  Volume.note_dirty v f2;
  let snap = Volume.cp_snapshot v in
  Alcotest.(check int) "two files snapshotted" 2 (List.length snap);
  Alcotest.(check int) "dirty list emptied" 0 (Volume.dirty_inode_count v);
  Alcotest.(check int) "buffers frozen" 1 (File.cp_buffer_count f1);
  Volume.cp_done v;
  Alcotest.(check int) "cp buffers released" 0 (File.cp_buffer_count f1)

let test_volume_container_map () =
  let v = Volume.create ~id:3 ~vvbn_space:10_000 in
  Alcotest.(check int) "unmapped" (-1) (Volume.pvbn_of_vvbn v 100);
  Alcotest.(check int) "no previous" (-1) (Volume.map_vvbn v ~vvbn:100 ~pvbn:777);
  Alcotest.(check int) "mapped" 777 (Volume.pvbn_of_vvbn v 100);
  Alcotest.(check int) "previous returned" 777 (Volume.map_vvbn v ~vvbn:100 ~pvbn:(-1));
  Alcotest.(check int) "cleared" (-1) (Volume.pvbn_of_vvbn v 100);
  Alcotest.(check (list int)) "chunk dirty" [ 0 ] (Volume.dirty_container_chunks v)

let test_volume_inode_chunks () =
  let v = Volume.create ~id:0 ~vvbn_space:1000 in
  for _ = 1 to 70 do
    let f = File.create ~vol:0 ~id:(Volume.fresh_file_id v) in
    Volume.add_file v f
  done;
  Alcotest.(check (list int)) "two inode chunks dirty" [ 0; 1 ] (Volume.dirty_inode_chunks v);
  Alcotest.(check int) "chunk 0 holds 64" 64 (List.length (Volume.inode_chunk v 0));
  Alcotest.(check int) "chunk 1 holds 6" 6 (List.length (Volume.inode_chunk v 1))

let test_volume_vol_rec_roundtrip () =
  let v = Volume.create ~id:9 ~vvbn_space:70_000 in
  ignore (Volume.set_inode_location v 0 101);
  ignore (Volume.set_container_location v 2 202);
  ignore (Bitmap_file.set_location (Volume.vol_map v) 1 303);
  let r = Volume.to_vol_rec v in
  let v2 = Volume.of_vol_rec r in
  Alcotest.(check int) "id" 9 (Volume.id v2);
  Alcotest.(check int) "vvbn space" 70_000 (Volume.vvbn_space v2);
  Alcotest.(check int) "inode loc" 101 (Volume.inode_location v2 0);
  Alcotest.(check int) "container loc" 202 (Volume.container_location v2 2);
  Alcotest.(check int) "volmap loc" 303 (Bitmap_file.location (Volume.vol_map v2) 1)

let test_volume_recent_frees () =
  let v = Volume.create ~id:0 ~vvbn_space:1000 in
  Alcotest.(check bool) "reusable initially" true (Volume.vvbn_reusable v 5);
  Volume.note_freed_vvbn v 5;
  Alcotest.(check bool) "frozen" false (Volume.vvbn_reusable v 5);
  Volume.clear_recent_frees v;
  Alcotest.(check bool) "thawed" true (Volume.vvbn_reusable v 5)

(* --- Nvlog --- *)

let wop i = Nvlog.Write { vol = 0; file = 0; fbn = i; content = Int64.of_int i }

let test_nvlog_halves () =
  let log = Nvlog.create ~half_capacity:4 () in
  for i = 0 to 2 do
    Alcotest.(check bool) "ok" true (Nvlog.append log (wop i) = `Ok)
  done;
  Alcotest.(check bool) "fourth trips half-full" true (Nvlog.append log (wop 3) = `Half_full);
  Alcotest.(check bool) "half full flag" true (Nvlog.is_half_full log);
  Nvlog.cp_begin log;
  Alcotest.(check int) "cp half" 4 (Nvlog.in_cp log);
  Alcotest.(check int) "filling reset" 0 (Nvlog.pending log);
  ignore (Nvlog.append log (wop 4));
  Nvlog.cp_commit log;
  Alcotest.(check int) "cp dropped" 0 (Nvlog.in_cp log);
  Alcotest.(check int) "tail survives" 1 (Nvlog.pending log)

let test_nvlog_exhaustion () =
  let log = Nvlog.create ~half_capacity:8 () in
  for i = 0 to 14 do
    ignore (Nvlog.append log (wop i))
  done;
  (* nearly_full leaves headroom (capacity/8) before the hard limit. *)
  Alcotest.(check bool) "nearly full before hard limit" true (Nvlog.is_nearly_full log);
  ignore (Nvlog.append log (wop 15));
  Alcotest.(check bool) "exhausted at capacity" true (Nvlog.is_exhausted log);
  Alcotest.check_raises "NVRAM exhausted" Nvlog.Exhausted (fun () ->
      ignore (Nvlog.append log (wop 16)));
  (* The refused op is not logged: pending is unchanged and the log still
     replays cleanly. *)
  Alcotest.(check int) "refused op not logged" 16 (Nvlog.pending log)

let test_nvlog_replay_order () =
  let log = Nvlog.create ~half_capacity:10 () in
  for i = 0 to 4 do
    ignore (Nvlog.append log (wop i))
  done;
  Nvlog.cp_begin log;
  for i = 5 to 7 do
    ignore (Nvlog.append log (wop i))
  done;
  let fbns =
    List.map (function Nvlog.Write { fbn; _ } -> fbn | _ -> -1) (Nvlog.replay_ops log)
  in
  Alcotest.(check (list int)) "cp half first, in order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] fbns

let test_nvlog_recover_reset () =
  let log = Nvlog.create ~half_capacity:10 () in
  ignore (Nvlog.append log (wop 0));
  Nvlog.cp_begin log;
  ignore (Nvlog.append log (wop 1));
  Nvlog.recover_reset log;
  Alcotest.(check int) "both halves merged" 2 (Nvlog.pending log);
  Alcotest.(check int) "no cp half" 0 (Nvlog.in_cp log);
  (* cp_begin is legal again after recovery. *)
  Nvlog.cp_begin log;
  Alcotest.(check int) "all covered" 2 (Nvlog.in_cp log)

let fbns_of ops = List.map (function Nvlog.Write { fbn; _ } -> fbn | _ -> -1) ops

let test_nvlog_tear_clamps () =
  let log = Nvlog.create ~half_capacity:10 () in
  for i = 0 to 2 do
    ignore (Nvlog.append log (wop i))
  done;
  let torn_ops = Nvlog.tear log ~records:10 in
  Alcotest.(check (list int)) "clamped to live length, oldest first" [ 0; 1; 2 ] (fbns_of torn_ops);
  Alcotest.(check int) "all three torn" 3 (Nvlog.torn log);
  Alcotest.(check (list int)) "second tear finds nothing" [] (fbns_of (Nvlog.tear log ~records:1))

let test_nvlog_replay_stops_at_torn () =
  let log = Nvlog.create ~half_capacity:10 () in
  for i = 0 to 3 do
    ignore (Nvlog.append log (wop i))
  done;
  Nvlog.cp_begin log;
  for i = 4 to 8 do
    ignore (Nvlog.append log (wop i))
  done;
  let torn_ops = Nvlog.tear log ~records:2 in
  Alcotest.(check (list int)) "newest two torn, oldest first" [ 7; 8 ] (fbns_of torn_ops);
  Alcotest.(check (list int)) "cp half, then filling up to first torn" [ 0; 1; 2; 3; 4; 5; 6 ]
    (fbns_of (Nvlog.replay_ops log))

let test_nvlog_recover_reset_discards_torn () =
  let log = Nvlog.create ~half_capacity:10 () in
  for i = 0 to 2 do
    ignore (Nvlog.append log (wop i))
  done;
  (* The CP covering ops 0-2 never commits before the crash, so those
     operations are live again after recovery. *)
  Nvlog.cp_begin log;
  for i = 3 to 6 do
    ignore (Nvlog.append log (wop i))
  done;
  ignore (Nvlog.tear log ~records:1);
  Nvlog.recover_reset log;
  Alcotest.(check int) "torn record discarded" 0 (Nvlog.torn log);
  Alcotest.(check int) "cp half merged, torn dropped" 6 (Nvlog.pending log);
  Alcotest.(check int) "no cp half" 0 (Nvlog.in_cp log);
  Nvlog.cp_begin log;
  Alcotest.(check (list int)) "surviving order preserved" [ 0; 1; 2; 3; 4; 5 ]
    (fbns_of (Nvlog.replay_ops log))

(* --- Counters --- *)

let test_counters_loose_accounting () =
  let c = Counters.create () in
  Counters.set c "free" 100;
  let t1 = Counters.token c and t2 = Counters.token c in
  Counters.stage t1 "free" (-10);
  Counters.stage t2 "free" (-5);
  Counters.stage t1 "cleaned" 3;
  (* Loose reads lag. *)
  Alcotest.(check int) "loose value" 100 (Counters.read c "free");
  (* Exact reads fold in tokens. *)
  Alcotest.(check int) "exact value" 85 (Counters.exact c [ t1; t2 ] "free");
  let updates = Counters.flush c t1 in
  Alcotest.(check int) "two counters flushed" 2 updates;
  Alcotest.(check int) "after flush" 90 (Counters.read c "free");
  Alcotest.(check int) "token emptied" 0 (Counters.staged t1 "free");
  ignore (Counters.flush c t2);
  Alcotest.(check int) "all applied" 85 (Counters.read c "free")

let prop_counters_flush_order_irrelevant =
  QCheck.Test.make ~name:"token flush order does not matter" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 3) (int_range (-50) 50)))
    (fun deltas ->
      let apply order =
        let c = Counters.create () in
        let toks = Array.init 4 (fun _ -> Counters.token c) in
        List.iter (fun (i, d) -> Counters.stage toks.(i) (Printf.sprintf "k%d" (i mod 2)) d) deltas;
        List.iter (fun i -> ignore (Counters.flush c toks.(i))) order;
        (Counters.read c "k0", Counters.read c "k1")
      in
      apply [ 0; 1; 2; 3 ] = apply [ 3; 2; 1; 0 ])

(* --- Buffer_cache --- *)

let test_cache_probe_insert () =
  let c = Buffer_cache.create ~capacity:3 in
  Alcotest.(check bool) "first probe misses" false (Buffer_cache.probe c 10);
  Alcotest.(check bool) "second probe hits" true (Buffer_cache.probe c 10);
  Alcotest.(check int) "one hit" 1 (Buffer_cache.hits c);
  Alcotest.(check int) "one miss" 1 (Buffer_cache.misses c);
  Alcotest.(check int) "one resident" 1 (Buffer_cache.length c)

let test_cache_lru_eviction () =
  let c = Buffer_cache.create ~capacity:3 in
  List.iter (fun b -> ignore (Buffer_cache.probe c b)) [ 1; 2; 3 ];
  (* Refresh 1 so that 2 is the LRU, then insert 4. *)
  ignore (Buffer_cache.probe c 1);
  ignore (Buffer_cache.probe c 4);
  Alcotest.(check bool) "LRU (2) evicted" false (Buffer_cache.contains c 2);
  Alcotest.(check bool) "refreshed (1) kept" true (Buffer_cache.contains c 1);
  Alcotest.(check bool) "3 kept" true (Buffer_cache.contains c 3);
  Alcotest.(check bool) "4 inserted" true (Buffer_cache.contains c 4);
  Alcotest.(check int) "one eviction" 1 (Buffer_cache.evictions c);
  Alcotest.(check int) "at capacity" 3 (Buffer_cache.length c)

let test_cache_invalidate () =
  let c = Buffer_cache.create ~capacity:4 in
  ignore (Buffer_cache.probe c 7);
  Buffer_cache.invalidate c 7;
  Alcotest.(check bool) "gone" false (Buffer_cache.contains c 7);
  Buffer_cache.invalidate c 7;
  (* idempotent *)
  Alcotest.(check int) "empty" 0 (Buffer_cache.length c)

let test_cache_hit_rate () =
  let c = Buffer_cache.create ~capacity:8 in
  for _ = 1 to 3 do
    ignore (Buffer_cache.probe c 1)
  done;
  (* 1 miss then 2 hits. *)
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Buffer_cache.hit_rate c)

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache never exceeds capacity and keeps MRU entries" ~count:200
    QCheck.(pair (int_range 1 16) (list_of_size Gen.(1 -- 200) (int_bound 50)))
    (fun (cap, probes) ->
      let c = Buffer_cache.create ~capacity:cap in
      List.iter (fun b -> ignore (Buffer_cache.probe c b)) probes;
      Buffer_cache.length c <= cap
      &&
      (* The most recent probe is always resident. *)
      match List.rev probes with [] -> true | last :: _ -> Buffer_cache.contains c last)

(* --- Aggregate-level allocation state --- *)

let small_geom () =
  Wafl_storage.Geometry.create ~drive_blocks:4096 ~aa_stripes:512 ~raid_groups:[ (3, 1) ] ()

let make_agg () =
  let eng = Wafl_sim.Engine.create ~cores:2 () in
  Aggregate.create eng ~cost:Wafl_sim.Cost.default ~geometry:(small_geom ()) ()

let test_aggregate_aa_accounting () =
  let agg = make_agg () in
  Alcotest.(check int) "aa 0 initially full" (512 * 3) (Aggregate.aa_free agg ~rg:0 ~aa:0);
  Aggregate.commit_alloc_pvbn agg 0;
  Aggregate.commit_alloc_pvbn agg 1;
  Alcotest.(check int) "aa 0 minus two" ((512 * 3) - 2) (Aggregate.aa_free agg ~rg:0 ~aa:0);
  Aggregate.commit_free_pvbn agg 0;
  Alcotest.(check int) "freed back" ((512 * 3) - 1) (Aggregate.aa_free agg ~rg:0 ~aa:0);
  Alcotest.(check bool) "frozen until CP end" false (Aggregate.pvbn_allocatable agg 0);
  Alcotest.(check bool) "untouched block fine" true (Aggregate.pvbn_allocatable agg 5)

let test_aggregate_select_aa () =
  let agg = make_agg () in
  (* Drain AA 0 a bit; AA 1..7 tie at max, selection must avoid excluded. *)
  Aggregate.commit_alloc_pvbn agg 0;
  (match Aggregate.select_aa agg ~rg:0 ~exclude:[] with
  | Some aa -> Alcotest.(check bool) "not the drained AA" true (aa <> 0)
  | None -> Alcotest.fail "no AA selected");
  match Aggregate.select_aa agg ~rg:0 ~exclude:[ 1; 2; 3; 4; 5; 6; 7 ] with
  | Some aa -> Alcotest.(check int) "falls back to AA 0" 0 aa
  | None -> Alcotest.fail "exclusion removed everything"

let test_aggregate_free_counter_tracks () =
  let agg = make_agg () in
  let free0 = Counters.read (Aggregate.counters agg) "agg_free_blocks" in
  Aggregate.commit_alloc_pvbn agg 100;
  Aggregate.commit_alloc_pvbn agg 101;
  Aggregate.commit_free_pvbn agg 100;
  Alcotest.(check int) "counter tracks" (free0 - 1)
    (Counters.read (Aggregate.counters agg) "agg_free_blocks")

let () =
  Alcotest.run "wafl_fs"
    [
      ( "bitmap_file",
        [
          Alcotest.test_case "set/clear/free count" `Quick test_bitmap_set_clear;
          Alcotest.test_case "double ops rejected" `Quick test_bitmap_double_ops_rejected;
          Alcotest.test_case "find_free" `Quick test_bitmap_find_free;
          Alcotest.test_case "find_free word boundaries" `Quick
            test_bitmap_find_free_word_boundaries;
          Alcotest.test_case "count_free_in" `Quick test_bitmap_count_free_in;
          Alcotest.test_case "dirty tracking" `Quick test_bitmap_dirty_tracking;
          Alcotest.test_case "block serialization roundtrip" `Quick test_bitmap_block_roundtrip;
          Alcotest.test_case "locations" `Quick test_bitmap_locations;
          QCheck_alcotest.to_alcotest ~verbose:false prop_bitmap_free_count_consistent;
        ] );
      ( "file",
        [
          Alcotest.test_case "write/snapshot/COW" `Quick test_file_write_snapshot_cow;
          Alcotest.test_case "double snapshot rejected" `Quick test_file_double_snapshot_rejected;
          Alcotest.test_case "bmap and inode record" `Quick test_file_bmap_and_inode_rec;
        ] );
      ( "volume",
        [
          Alcotest.test_case "dirty inode tracking" `Quick test_volume_dirty_inode_tracking;
          Alcotest.test_case "container map" `Quick test_volume_container_map;
          Alcotest.test_case "inode chunks" `Quick test_volume_inode_chunks;
          Alcotest.test_case "vol_rec roundtrip" `Quick test_volume_vol_rec_roundtrip;
          Alcotest.test_case "recent frees" `Quick test_volume_recent_frees;
        ] );
      ( "nvlog",
        [
          Alcotest.test_case "halves" `Quick test_nvlog_halves;
          Alcotest.test_case "exhaustion" `Quick test_nvlog_exhaustion;
          Alcotest.test_case "replay order" `Quick test_nvlog_replay_order;
          Alcotest.test_case "recover reset" `Quick test_nvlog_recover_reset;
          Alcotest.test_case "tear clamps" `Quick test_nvlog_tear_clamps;
          Alcotest.test_case "replay stops at torn" `Quick test_nvlog_replay_stops_at_torn;
          Alcotest.test_case "recover reset discards torn" `Quick
            test_nvlog_recover_reset_discards_torn;
        ] );
      ( "counters",
        [
          Alcotest.test_case "loose accounting" `Quick test_counters_loose_accounting;
          QCheck_alcotest.to_alcotest ~verbose:false prop_counters_flush_order_irrelevant;
        ] );
      ( "buffer_cache",
        [
          Alcotest.test_case "probe/insert" `Quick test_cache_probe_insert;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "hit rate" `Quick test_cache_hit_rate;
          QCheck_alcotest.to_alcotest ~verbose:false prop_cache_never_exceeds_capacity;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "AA accounting" `Quick test_aggregate_aa_accounting;
          Alcotest.test_case "AA selection" `Quick test_aggregate_select_aa;
          Alcotest.test_case "free counter" `Quick test_aggregate_free_counter_tracks;
        ] );
    ]
