(* Tests for the QoS layer (token buckets, fair interleave, per-volume
   admission) and the open-loop arrival generators.  The load-bearing
   property throughout is determinism: every decision and every gap is a
   pure function of (parameters, seed, arrival sequence), which is what
   lets QoS-on overload runs replay byte-identically. *)

open Wafl_qos
open Wafl_workload

let q = QCheck_alcotest.to_alcotest

(* --- token bucket -------------------------------------------------------- *)

let test_bucket_burst_then_delay () =
  (* Starts full: [burst] ops admit back-to-back, the next is delayed by
     exactly one token's refill time (GCRA). *)
  let b = Token_bucket.create ~rate_per_s:1_000.0 ~burst:4.0 in
  for i = 1 to 4 do
    match Token_bucket.reserve b ~now:0.0 ~max_debt:8.0 with
    | Token_bucket.Admit -> ()
    | _ -> Alcotest.failf "op %d of the initial burst not admitted" i
  done;
  (match Token_bucket.reserve b ~now:0.0 ~max_debt:8.0 with
  | Token_bucket.Delay d ->
      (* 1000 ops/s = 1e-3 tokens/µs; one token of debt = 1000 µs. *)
      Alcotest.(check (float 1e-6)) "first delay is one refill period" 1_000.0 d
  | _ -> Alcotest.fail "fifth op should be delayed");
  match Token_bucket.reserve b ~now:0.0 ~max_debt:8.0 with
  | Token_bucket.Delay d ->
      Alcotest.(check (float 1e-6)) "debt accumulates linearly" 2_000.0 d
  | _ -> Alcotest.fail "sixth op should be delayed"

let test_bucket_sheds_at_max_debt () =
  let b = Token_bucket.create ~rate_per_s:1_000.0 ~burst:1.0 in
  (* One admit, then ride the debt down to the bound. *)
  let rec drain n =
    if n = 0 then ()
    else begin
      (match Token_bucket.reserve b ~now:0.0 ~max_debt:3.0 with
      | Token_bucket.Shed -> Alcotest.fail "shed before the queue was full"
      | _ -> ());
      drain (n - 1)
    end
  in
  drain 4 (* tokens: 1 -> 0, -1, -2, -3 *);
  let before = Token_bucket.state b in
  (match Token_bucket.reserve b ~now:0.0 ~max_debt:3.0 with
  | Token_bucket.Shed -> ()
  | _ -> Alcotest.fail "full queue must shed");
  Alcotest.(check bool) "shed leaves bucket state untouched" true
    (Token_bucket.state b = before)

let test_bucket_refills_to_burst_cap () =
  let b = Token_bucket.create ~rate_per_s:1_000_000.0 ~burst:2.0 in
  ignore (Token_bucket.reserve b ~now:0.0 ~max_debt:8.0);
  ignore (Token_bucket.reserve b ~now:0.0 ~max_debt:8.0);
  (* A long idle refills to the cap, never beyond. *)
  (match Token_bucket.reserve b ~now:1e9 ~max_debt:8.0 with
  | Token_bucket.Admit -> ()
  | _ -> Alcotest.fail "refilled bucket should admit");
  Alcotest.(check (float 1e-9)) "tokens capped at burst" 1.0 (Token_bucket.tokens b)

let arb_reservations =
  (* A reservation sequence: monotone arrival times built from gaps. *)
  QCheck.(
    triple
      (pair (float_range 100.0 200_000.0) (float_range 1.0 64.0))
      (float_range 0.0 32.0)
      (list_of_size Gen.(1 -- 200) (float_range 0.0 500.0)))

let prop_bucket_replay_identity =
  QCheck.Test.make ~name:"token bucket: same arrivals, same decisions and state" ~count:200
    arb_reservations
    (fun ((rate_per_s, burst), max_debt, gaps) ->
      let run () =
        let b = Token_bucket.create ~rate_per_s ~burst in
        let now = ref 0.0 in
        let ds =
          List.map
            (fun gap ->
              now := !now +. gap;
              Token_bucket.reserve b ~now:!now ~max_debt)
            gaps
        in
        (ds, Token_bucket.state b)
      in
      run () = run ())

let prop_bucket_debt_bounded =
  QCheck.Test.make ~name:"token bucket: debt never exceeds the queue bound" ~count:200
    arb_reservations
    (fun ((rate_per_s, burst), max_debt, gaps) ->
      let b = Token_bucket.create ~rate_per_s ~burst in
      let now = ref 0.0 in
      List.for_all
        (fun gap ->
          now := !now +. gap;
          ignore (Token_bucket.reserve b ~now:!now ~max_debt);
          Token_bucket.tokens b >= -.max_debt -. 1e-9)
        gaps)

(* --- fair interleave ----------------------------------------------------- *)

let test_interleave_round_robin () =
  Alcotest.(check (list int))
    "one element per list per round"
    [ 1; 10; 100; 2; 20; 200; 3; 30; 4 ]
    (Fair.interleave [ [ 1; 2; 3; 4 ]; [ 10; 20; 30 ]; [ 100; 200 ] ])

let test_interleave_edge_cases () =
  Alcotest.(check (list int)) "empty input" [] (Fair.interleave []);
  Alcotest.(check (list int)) "empty lists skipped" [ 1; 2 ] (Fair.interleave [ []; [ 1; 2 ]; [] ]);
  Alcotest.(check (list int)) "single list unchanged" [ 3; 1; 2 ] (Fair.interleave [ [ 3; 1; 2 ] ])

let prop_interleave_preserves_elements =
  QCheck.Test.make ~name:"interleave: permutation that preserves per-list order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 8) (list_of_size Gen.(0 -- 20) small_nat))
    (fun lists ->
      let out = Fair.interleave lists in
      (* Same multiset... *)
      List.sort compare out = List.sort compare (List.concat lists)
      (* ...and each list's own order survives (indices are per-list
         positions, so subsequence extraction is exact for tagged
         elements). *)
      &&
      let tagged = List.mapi (fun i l -> List.map (fun x -> (i, x)) l) lists in
      let out_tagged = Fair.interleave tagged in
      List.for_all
        (fun (i, l) -> List.filter (fun (j, _) -> j = i) out_tagged = List.map (fun x -> (i, x)) l)
        (List.mapi (fun i l -> (i, l)) lists))

(* --- per-volume admission ------------------------------------------------ *)

let test_qos_volumes_independent () =
  let qos = Qos.create { Qos.rate_per_s = 1_000.0; burst = 1.0; queue_depth = 0 } in
  (* Volume 0 exhausts its bucket; volume 1's first op still admits. *)
  (match Qos.admit qos ~vol:0 ~now:0.0 with
  | `Admit -> ()
  | _ -> Alcotest.fail "vol 0 first op should admit");
  (match Qos.admit qos ~vol:0 ~now:0.0 with
  | `Shed -> ()
  | _ -> Alcotest.fail "vol 0 second op should shed (queue_depth 0)");
  (match Qos.admit qos ~vol:1 ~now:0.0 with
  | `Admit -> ()
  | _ -> Alcotest.fail "vol 1 unaffected by vol 0's debt");
  Alcotest.(check int) "admitted counter" 2 (Qos.admitted qos);
  Alcotest.(check int) "throttled counter" 0 (Qos.throttled qos);
  Alcotest.(check int) "shed counter" 1 (Qos.shed qos);
  Alcotest.(check bool) "untouched volume has no bucket" true
    (Qos.bucket_state qos ~vol:7 = None)

let test_qos_vol_stats () =
  (* Per-volume verdict accounting (feeds the telemetry rollup rows). *)
  let qos = Qos.create { Qos.rate_per_s = 1_000.0; burst = 2.0; queue_depth = 1 } in
  (* vol 0: 2 admits (burst), 1 throttle (queue slot), 1 shed. *)
  for _ = 1 to 4 do
    ignore (Qos.admit qos ~vol:0 ~now:0.0)
  done;
  ignore (Qos.admit qos ~vol:3 ~now:0.0);
  Alcotest.(check (option (triple int int int))) "vol 0 admit/throttle/shed" (Some (2, 1, 1))
    (Qos.vol_stats qos ~vol:0);
  Alcotest.(check (option (triple int int int))) "vol 3 single admit" (Some (1, 0, 0))
    (Qos.vol_stats qos ~vol:3);
  Alcotest.(check (option (triple int int int))) "untouched volume has no stats" None
    (Qos.vol_stats qos ~vol:9);
  (* Per-volume rows sum to the global counters. *)
  let a0, t0, s0 = Option.get (Qos.vol_stats qos ~vol:0) in
  let a3, t3, s3 = Option.get (Qos.vol_stats qos ~vol:3) in
  Alcotest.(check (triple int int int)) "vol rows sum to global counters"
    (Qos.admitted qos, Qos.throttled qos, Qos.shed qos)
    (a0 + a3, t0 + t3, s0 + s3)

let prop_qos_replay_identity =
  QCheck.Test.make ~name:"qos: same arrival sequence, same verdicts and bucket state" ~count:100
    QCheck.(
      pair
        (pair (float_range 1_000.0 100_000.0) (float_range 1.0 32.0))
        (list_of_size Gen.(1 -- 150) (pair (int_bound 3) (float_range 0.0 100.0))))
    (fun ((rate_per_s, burst), arrivals) ->
      let run () =
        let qos = Qos.create { Qos.rate_per_s; burst; queue_depth = 4 } in
        let now = ref 0.0 in
        let vs =
          List.map
            (fun (vol, gap) ->
              now := !now +. gap;
              (Qos.admit qos ~vol ~now:!now, Qos.bucket_state qos ~vol))
            arrivals
        in
        (vs, Qos.admitted qos, Qos.throttled qos, Qos.shed qos)
      in
      run () = run ())

(* --- arrival generators -------------------------------------------------- *)

let draw_gaps proc ~seed ~n =
  let s = Arrival.start proc ~rng:(Wafl_util.Rng.create ~seed) in
  let now = ref 0.0 in
  List.init n (fun _ ->
      let gap = Arrival.next s ~now:!now in
      now := !now +. gap;
      gap)

let arb_process =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.map (fun r -> Arrival.Poisson { rate = r }) (Gen.float_range 100.0 1e6);
        Gen.map
          (fun (base_rate, burst_rate, mean_on_us, mean_off_us) ->
            Arrival.Bursty { base_rate; burst_rate; mean_on_us; mean_off_us })
          (Gen.quad (Gen.float_range 0.0 1e4) (Gen.float_range 1e4 1e6)
             (Gen.float_range 100.0 1e4) (Gen.float_range 100.0 1e4));
        Gen.map
          (fun (peak_rate, floor, period_us) -> Arrival.Diurnal { peak_rate; floor; period_us })
          (Gen.triple (Gen.float_range 1e3 1e6) (Gen.float_range 0.0 1.0)
             (Gen.float_range 1e3 1e6));
      ]
  in
  make gen

let prop_arrival_same_seed_identity =
  QCheck.Test.make ~name:"arrivals: same process + seed, byte-identical gap sequence" ~count:150
    QCheck.(pair arb_process small_nat)
    (fun (proc, seed) -> draw_gaps proc ~seed ~n:300 = draw_gaps proc ~seed ~n:300)

let prop_arrival_gaps_sane =
  QCheck.Test.make ~name:"arrivals: gaps are positive and finite" ~count:150
    QCheck.(pair arb_process small_nat)
    (fun (proc, seed) ->
      List.for_all (fun g -> g > 0.0 && Float.is_finite g) (draw_gaps proc ~seed ~n:300))

let mean_gap proc ~seed ~n =
  List.fold_left ( +. ) 0.0 (draw_gaps proc ~seed ~n) /. float_of_int n

let test_arrival_mean_rates () =
  (* Long-run mean gap tracks 1e6 / mean_rate for each process family. *)
  List.iter
    (fun proc ->
      let want = 1e6 /. Arrival.mean_rate proc in
      let got = mean_gap proc ~seed:42 ~n:60_000 in
      Alcotest.(check bool)
        (Printf.sprintf "mean gap within 10%% (want %.1f, got %.1f)" want got)
        true
        (Float.abs (got -. want) < 0.10 *. want))
    [
      Arrival.Poisson { rate = 25_000.0 };
      Arrival.Bursty
        { base_rate = 2_000.0; burst_rate = 150_000.0; mean_on_us = 2_000.0; mean_off_us = 6_000.0 };
      Arrival.Diurnal { peak_rate = 50_000.0; floor = 0.2; period_us = 40_000.0 };
    ]

let test_arrival_validation () =
  List.iter
    (fun proc ->
      match Arrival.validate proc with
      | () -> Alcotest.fail "invalid process accepted"
      | exception Invalid_argument _ -> ())
    [
      Arrival.Poisson { rate = 0.0 };
      Arrival.Poisson { rate = -5.0 };
      Arrival.Bursty { base_rate = -1.0; burst_rate = 1e5; mean_on_us = 1e3; mean_off_us = 1e3 };
      Arrival.Bursty { base_rate = 0.0; burst_rate = 0.0; mean_on_us = 1e3; mean_off_us = 1e3 };
      Arrival.Bursty { base_rate = 0.0; burst_rate = 1e5; mean_on_us = 0.0; mean_off_us = 1e3 };
      Arrival.Diurnal { peak_rate = 1e5; floor = 1.5; period_us = 1e4 };
      Arrival.Diurnal { peak_rate = 1e5; floor = 0.5; period_us = 0.0 };
    ]

let test_population () =
  let procs = Arrival.population ~n:8 ~total_rate:80_000.0 ~alpha:1.0 in
  Alcotest.(check int) "population size" 8 (List.length procs);
  let rates = List.map Arrival.mean_rate procs in
  let total = List.fold_left ( +. ) 0.0 rates in
  Alcotest.(check (float 1e-6)) "rates sum to the total" 80_000.0 total;
  Alcotest.(check bool) "Zipf weights are non-increasing" true
    (List.for_all2 ( >= ) (List.filteri (fun i _ -> i < 7) rates) (List.tl rates));
  let uniform = Arrival.population ~n:4 ~total_rate:100.0 ~alpha:0.0 in
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "alpha 0 is a uniform split" 25.0 (Arrival.mean_rate p))
    uniform

let () =
  Alcotest.run "wafl_qos"
    [
      ( "token bucket",
        [
          Alcotest.test_case "burst then GCRA delay" `Quick test_bucket_burst_then_delay;
          Alcotest.test_case "sheds at max debt, state untouched" `Quick
            test_bucket_sheds_at_max_debt;
          Alcotest.test_case "refill capped at burst" `Quick test_bucket_refills_to_burst_cap;
          q prop_bucket_replay_identity;
          q prop_bucket_debt_bounded;
        ] );
      ( "fair interleave",
        [
          Alcotest.test_case "round robin" `Quick test_interleave_round_robin;
          Alcotest.test_case "edge cases" `Quick test_interleave_edge_cases;
          q prop_interleave_preserves_elements;
        ] );
      ( "admission",
        [
          Alcotest.test_case "volumes are independent" `Quick test_qos_volumes_independent;
          Alcotest.test_case "per-volume verdict stats" `Quick test_qos_vol_stats;
          q prop_qos_replay_identity;
        ] );
      ( "arrivals",
        [
          q prop_arrival_same_seed_identity;
          q prop_arrival_gaps_sane;
          Alcotest.test_case "mean rates" `Quick test_arrival_mean_rates;
          Alcotest.test_case "parameter validation" `Quick test_arrival_validation;
          Alcotest.test_case "Zipf population" `Quick test_population;
        ] );
    ]
