(* Tests for the always-on fleet telemetry (DESIGN.md §4.15): the
   observe-only invariant (telemetry on is bit-identical to telemetry
   off), the health watchdog's quiet-on-healthy / loud-on-injected
   behavior via the chaos hooks, snapshot JSON round-trips, merge
   determinism, and the fleet-scale memory budget. *)

open Wafl_workload
module Rollup = Wafl_obs.Rollup
module Health = Wafl_obs.Health
module Top = Wafl_obs.Top
module Json = Wafl_obs.Json
module Histogram = Wafl_util.Histogram

let small_spec ?(workload = Driver.Seq_write { file_blocks = 1024 }) ?(clients = 6) () =
  {
    Driver.default_spec with
    Driver.cores = 8;
    workload;
    clients;
    volumes = 2;
    geometry = Driver.small_geometry ();
    nvlog_half = 2048;
    warmup = 80_000.0;
    measure = 250_000.0;
    cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 100_000.0 };
  }

(* Every result field except [telemetry] itself, rendered to a string:
   if any of these moves when telemetry is attached, the observe-only
   invariant is broken. *)
let digest (r : Driver.result) =
  let h hist =
    Printf.sprintf "%d/%.3f/%.1f/%.1f" (Histogram.count hist) (Histogram.mean hist)
      (Histogram.percentile hist 50.0)
      (Histogram.percentile hist 99.0)
  in
  Printf.sprintf
    "%d;%.6f;%.6f;%.6f;%s;%s;%d;%d;%d;%.6f;%.6f;%.6f;%.6f;%.6f;%.6f;%d;%d;%d;%d;%d;%d;%d;%d;%.6f;%d;%d;%.6f;%d;%d;%d;%.6f;%d;%d;%d;%d;%d;%d;%.6f;%.6f"
    r.Driver.ops r.Driver.duration r.Driver.throughput r.Driver.throughput_per_client
    (h r.Driver.latency) (h r.Driver.write_latency) r.Driver.reads r.Driver.writes
    r.Driver.metas r.Driver.cores_client r.Driver.cores_cleaner r.Driver.cores_infra
    r.Driver.cores_cp r.Driver.cores_io_other r.Driver.utilization r.Driver.cps_completed
    r.Driver.buffers_cleaned r.Driver.vbns_allocated r.Driver.vbns_freed
    r.Driver.metafile_blocks_touched r.Driver.infra_messages r.Driver.cleaner_messages
    r.Driver.get_waits r.Driver.avg_active_cleaners r.Driver.full_stripes
    r.Driver.partial_stripes r.Driver.read_contiguity r.Driver.offered_ops r.Driver.shed_ops
    r.Driver.throttled_ops r.Driver.stall_us r.Driver.b2b_cps r.Driver.b2b_episodes
    r.Driver.nvlog_exhausted r.Driver.races r.Driver.flash_host_pages r.Driver.flash_gc_pages
    r.Driver.flash_gc_stall_us r.Driver.waf

let with_telemetry ?(rollup = Rollup.default_config) ?(rules = Health.default_rules)
    (spec : Driver.spec) =
  { spec with Driver.telemetry = Some { Driver.rollup; rules } }

let telem r =
  match r.Driver.telemetry with
  | Some t -> t
  | None -> Alcotest.fail "telemetry requested but result carries none"

(* --- observe-only invariant ---------------------------------------------- *)

let test_bit_identity () =
  let off = Driver.run (small_spec ()) in
  let on = Driver.run (with_telemetry (small_spec ())) in
  Alcotest.(check string) "telemetry on is bit-identical to off" (digest off) (digest on);
  let tr = telem on in
  Alcotest.(check bool) "rollup sealed windows" true (tr.Driver.tr_snapshot.Rollup.s_windows <> [])

let test_bit_identity_open_loop () =
  let spec =
    {
      (small_spec ()) with
      Driver.clients = 4;
      volumes = 4;
      open_loop =
        Some
          {
            Driver.arrivals = Arrival.population ~n:4 ~total_rate:40_000.0 ~alpha:1.0;
            qos = Some Wafl_qos.Qos.default_config;
          };
    }
  in
  let off = Driver.run spec in
  let on = Driver.run (with_telemetry spec) in
  Alcotest.(check string) "open-loop telemetry on is bit-identical to off" (digest off)
    (digest on);
  (* Shed/throttle/admit verdicts land in the per-volume rows. *)
  let tr = telem on in
  let sum f =
    List.fold_left
      (fun acc w -> List.fold_left (fun a (_, row) -> a + f row) acc w.Rollup.w_vols)
      0 tr.Driver.tr_snapshot.Rollup.s_windows
  in
  Alcotest.(check bool) "windowed writes observed" true (sum (fun r -> r.Rollup.vr_writes) > 0);
  Alcotest.(check bool) "admissions observed" true (sum (fun r -> r.Rollup.vr_admitted) > 0)

(* --- watchdog: quiet on healthy runs ------------------------------------- *)

let test_healthy_zero_events () =
  List.iter
    (fun (name, spec) ->
      let tr = telem (Driver.run (with_telemetry spec)) in
      Alcotest.(check int)
        (name ^ ": healthy run emits no health events")
        0
        (List.length tr.Driver.tr_events))
    [
      ("seq", small_spec ());
      ("oltp", small_spec ~workload:(Driver.Oltp { file_blocks = 1024; read_fraction = 0.67 }) ());
      ("nfs", small_spec ~workload:(Driver.Nfs_mix { files_per_client = 16; file_blocks = 32 }) ());
    ]

(* --- watchdog: chaos injection ------------------------------------------- *)

(* Light load (think time keeps the log far from half-full, so natural
   b2b is zero) with a fast CP timer: injection flips the dense timer
   CPs to back-to-back, which is exactly the all-b2b signature the
   streak rule looks for. *)
let frequent_cp_spec () =
  {
    (small_spec ()) with
    Driver.think_time = 300.0;
    cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 3_000.0 };
    measure = 500_000.0;
  }

let test_chaos_b2b_streak () =
  let healthy = telem (Driver.run (with_telemetry (frequent_cp_spec ()))) in
  Alcotest.(check int) "frequent CPs alone stay quiet" 0 (List.length healthy.Driver.tr_events);
  Wafl_core.Cp.chaos_force_b2b := true;
  let tr =
    Fun.protect
      ~finally:(fun () -> Wafl_core.Cp.chaos_force_b2b := false)
      (fun () -> telem (Driver.run (with_telemetry (frequent_cp_spec ()))))
  in
  let b2b = List.filter (fun ev -> ev.Health.ev_rule = "b2b_streak") tr.Driver.tr_events in
  Alcotest.(check bool) "injected b2b streak detected" true (b2b <> []);
  List.iter
    (fun ev -> Alcotest.(check bool) "b2b events are critical" true (ev.Health.ev_severity = Health.Crit))
    b2b

let test_chaos_hard_dwell () =
  let rollup = { Rollup.default_config with Rollup.window_us = 50_000.0 } in
  Wafl_fs.Aggregate.chaos_inject_hard_dwell := 25.0;
  let tr =
    Fun.protect
      ~finally:(fun () -> Wafl_fs.Aggregate.chaos_inject_hard_dwell := 0.0)
      (fun () -> telem (Driver.run (with_telemetry ~rollup (small_spec ()))))
  in
  let dwell = List.filter (fun ev -> ev.Health.ev_rule = "hard_dwell") tr.Driver.tr_events in
  Alcotest.(check bool) "injected hard-watermark dwell detected" true (dwell <> [])

(* --- snapshot JSON round-trips ------------------------------------------- *)

let test_snapshot_roundtrip () =
  let tr = telem (Driver.run (with_telemetry (small_spec ()))) in
  let s1 = Json.to_string (Rollup.snapshot_to_json tr.Driver.tr_snapshot) in
  let reparsed =
    match Json.of_string s1 with
    | Ok j -> Rollup.snapshot_of_json j
    | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e
  in
  let s2 = Json.to_string (Rollup.snapshot_to_json reparsed) in
  Alcotest.(check string) "rollup snapshot JSON round-trips byte-identically" s1 s2;
  let t1 = Json.to_string (Top.to_json tr.Driver.tr_snapshot tr.Driver.tr_events) in
  let snap2, events2 =
    match Json.of_string t1 with
    | Ok j -> Top.of_json j
    | Error e -> Alcotest.failf "top JSON does not parse: %s" e
  in
  let t2 = Json.to_string (Top.to_json snap2 events2) in
  Alcotest.(check string) "wafl-top JSON round-trips byte-identically" t1 t2;
  (* The rendered tables are pure functions of the snapshot. *)
  Alcotest.(check string) "render is reproducible from the re-parsed snapshot"
    (Top.render tr.Driver.tr_snapshot tr.Driver.tr_events)
    (Top.render snap2 events2)

let test_merge_deterministic () =
  let tr = telem (Driver.run (with_telemetry (small_spec ()))) in
  let snap = tr.Driver.tr_snapshot in
  let m1 = Rollup.merge_snapshots [ (0, snap); (1, snap) ] in
  let m2 = Rollup.merge_snapshots [ (1, snap); (0, snap) ] in
  Alcotest.(check string) "merge is order-independent"
    (Json.to_string (Rollup.snapshot_to_json m1))
    (Json.to_string (Rollup.snapshot_to_json m2));
  (* Merging two copies of one shard doubles every counter and sketch. *)
  let total s =
    List.fold_left
      (fun acc w ->
        List.fold_left (fun a (_, row) -> a + row.Rollup.vr_writes) acc w.Rollup.w_vols)
      0 s.Rollup.s_windows
  in
  Alcotest.(check int) "merged writes sum over shards" (2 * total snap) (total m1)

(* --- fleet-scale memory budget ------------------------------------------- *)

let test_thousand_volume_budget () =
  let cfg = Rollup.default_config in
  let eng = Wafl_sim.Engine.create ~cores:1 () in
  let roll = Rollup.create ~config:cfg eng in
  let vols = 1000 in
  ignore
    (Wafl_sim.Engine.spawn eng (fun () ->
         (* Drive enough windows to cycle the ring past its capacity. *)
         for _w = 1 to (2 * cfg.Rollup.windows) + 3 do
           for vol = 0 to vols - 1 do
             Rollup.count roll ~vol `Admitted;
             Rollup.observe_write roll ~vol (float_of_int ((vol mod 97) + 1));
             Rollup.count roll ~vol `Completed
           done;
           Wafl_sim.Engine.sleep cfg.Rollup.window_us
         done));
  Wafl_sim.Engine.run eng;
  let snap = Rollup.snapshot roll in
  Alcotest.(check int) "ring holds exactly the configured window count" cfg.Rollup.windows
    (List.length snap.Rollup.s_windows);
  List.iter
    (fun w ->
      Alcotest.(check int) "every volume appears in every sealed window" vols
        (List.length w.Rollup.w_vols))
    snap.Rollup.s_windows;
  (* The whole structure, divided across volumes, must fit the per-volume
     byte budget (ISSUE: O(volumes x windows), bounded per volume). *)
  let bytes = 8 * Obj.reachable_words (Obj.repr roll) in
  let per_vol = bytes / vols in
  Alcotest.(check bool)
    (Printf.sprintf "per-volume footprint %dB within budget %dB" per_vol
       cfg.Rollup.vol_budget_bytes)
    true
    (per_vol <= cfg.Rollup.vol_budget_bytes)

(* --- budget rejection ----------------------------------------------------- *)

let test_budget_rejected () =
  let eng = Wafl_sim.Engine.create ~cores:1 () in
  let cfg = { Rollup.default_config with Rollup.vol_budget_bytes = 64 } in
  match Rollup.create ~config:cfg eng with
  | _ -> Alcotest.fail "a 64-byte budget cannot hold the ring"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "telemetry"
    [
      ( "observe-only",
        [
          Alcotest.test_case "closed-loop bit-identity" `Slow test_bit_identity;
          Alcotest.test_case "open-loop bit-identity" `Slow test_bit_identity_open_loop;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "healthy runs emit nothing" `Slow test_healthy_zero_events;
          Alcotest.test_case "injected b2b streak fires" `Slow test_chaos_b2b_streak;
          Alcotest.test_case "injected hard dwell fires" `Slow test_chaos_hard_dwell;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "JSON round-trip" `Slow test_snapshot_roundtrip;
          Alcotest.test_case "deterministic merge" `Quick test_merge_deterministic;
        ] );
      ( "budget",
        [
          Alcotest.test_case "1000-volume smoke" `Quick test_thousand_volume_budget;
          Alcotest.test_case "undersized budget rejected" `Quick test_budget_rejected;
        ] );
    ]
