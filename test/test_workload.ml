(* Tests for the workload driver: measurement bookkeeping, workload mixes,
   determinism, and cross-checks between the driver's counters and the
   allocator's. Small geometry and short windows keep these fast. *)

open Wafl_workload

let small_spec ?(workload = Driver.Seq_write { file_blocks = 1024 }) ?(clients = 6)
    ?(think = 0.0) () =
  {
    Driver.default_spec with
    Driver.cores = 8;
    workload;
    clients;
    think_time = think;
    volumes = 1;
    geometry = Driver.small_geometry ();
    nvlog_half = 2048;
    warmup = 80_000.0;
    measure = 250_000.0;
    cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 100_000.0 };
  }

let test_seq_write_basics () =
  let r = Driver.run (small_spec ()) in
  Alcotest.(check bool) "ops recorded" true (r.Driver.ops > 500);
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput > 0.0);
  Alcotest.(check int) "all ops are writes" r.Driver.ops r.Driver.writes;
  Alcotest.(check int) "ops counted consistently" r.Driver.ops
    (r.Driver.reads + r.Driver.writes + r.Driver.metas);
  Alcotest.(check bool) "latency samples match ops" true
    (Wafl_util.Histogram.count r.Driver.latency = r.Driver.ops);
  Alcotest.(check bool) "CPs ran" true (r.Driver.cps_completed > 0);
  Alcotest.(check bool) "cleaning happened" true (r.Driver.buffers_cleaned > 0)

let test_seq_write_layout_quality () =
  let r = Driver.run (small_spec ()) in
  (* Sequential streams through chunked buckets must leave long physical
     runs (objective 2). *)
  Alcotest.(check bool)
    (Printf.sprintf "contiguity high (%.1f)" r.Driver.read_contiguity)
    true
    (r.Driver.read_contiguity > 8.0);
  Alcotest.(check bool) "mostly full stripes" true
    (r.Driver.full_stripes > r.Driver.partial_stripes)

let test_oltp_mix () =
  let r =
    Driver.run
      (small_spec ~workload:(Driver.Oltp { file_blocks = 1024; read_fraction = 0.67 }) ())
  in
  let total = float_of_int (r.Driver.reads + r.Driver.writes) in
  let read_frac = float_of_int r.Driver.reads /. total in
  Alcotest.(check bool)
    (Printf.sprintf "read fraction ~0.67 (%.2f)" read_frac)
    true
    (read_frac > 0.60 && read_frac < 0.74);
  Alcotest.(check int) "no metadata ops in OLTP" 0 r.Driver.metas

let test_nfs_mix () =
  let r =
    Driver.run
      (small_spec ~workload:(Driver.Nfs_mix { files_per_client = 16; file_blocks = 32 }) ())
  in
  Alcotest.(check bool) "reads present" true (r.Driver.reads > 0);
  Alcotest.(check bool) "writes present" true (r.Driver.writes > 0);
  Alcotest.(check bool) "metadata ops present" true (r.Driver.metas > 0);
  (* Many small files: far more inodes cleaned per buffer than seq write. *)
  Alcotest.(check bool) "many distinct dirty inodes" true (r.Driver.buffers_cleaned > 0)

let test_rand_write_touches_more_metafile_blocks () =
  (* The scattered-free effect needs an address space spanning many
     bitmap blocks; use a medium geometry rather than the tiny one. *)
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:65536 ~aa_stripes:1024
      ~raid_groups:[ (4, 1) ] ()
  in
  let medium workload =
    { (small_spec ~workload ()) with Driver.geometry; clients = 6 }
  in
  let seq = Driver.run (medium (Driver.Seq_write { file_blocks = 8192 })) in
  let rand = Driver.run (medium (Driver.Rand_write { file_blocks = 8192 })) in
  let per_op (r : Driver.result) =
    float_of_int r.Driver.metafile_blocks_touched /. float_of_int (max 1 r.Driver.writes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "rand touches more (%.3f vs %.3f)" (per_op rand) (per_op seq))
    true
    (per_op rand > 1.5 *. per_op seq)

let test_think_time_lowers_load () =
  let busy = Driver.run (small_spec ()) in
  let idle = Driver.run (small_spec ~think:200.0 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "think time lowers throughput (%.0f vs %.0f)" idle.Driver.throughput
       busy.Driver.throughput)
    true
    (idle.Driver.throughput < 0.8 *. busy.Driver.throughput);
  Alcotest.(check bool) "and lowers latency" true
    (Wafl_util.Histogram.mean idle.Driver.latency
    <= Wafl_util.Histogram.mean busy.Driver.latency)

let test_determinism () =
  let a = Driver.run (small_spec ()) in
  let b = Driver.run (small_spec ()) in
  Alcotest.(check int) "identical op counts" a.Driver.ops b.Driver.ops;
  Alcotest.(check int) "identical CP counts" a.Driver.cps_completed b.Driver.cps_completed;
  Alcotest.(check int) "identical allocation traffic" a.Driver.vbns_allocated
    b.Driver.vbns_allocated;
  Alcotest.(check (float 0.0)) "identical throughput" a.Driver.throughput b.Driver.throughput

let test_five_seed_determinism () =
  (* Whole-result structural equality (counters, floats, histograms)
     across an immediate replay, for five distinct seeds. *)
  List.iter
    (fun seed ->
      let spec = { (small_spec ()) with Driver.seed } in
      let a = Driver.run spec and b = Driver.run spec in
      Alcotest.(check bool) (Printf.sprintf "seed %d replays identically" seed) true (a = b))
    [ 1; 2; 3; 4; 5 ]

let test_memoized_run_matches () =
  let spec = small_spec () in
  let fresh = Driver.run spec in
  Driver.memoize := true;
  Fun.protect
    ~finally:(fun () -> Driver.memoize := false)
    (fun () ->
      let first = Driver.run spec in
      let cached = Driver.run spec in
      Alcotest.(check bool) "memoized result equals fresh run" true (fresh = first);
      Alcotest.(check bool) "repeat spec returns the cached record" true (first == cached))

let test_seed_changes_rand_stream () =
  let spec = small_spec ~workload:(Driver.Rand_write { file_blocks = 1024 }) () in
  let a = Driver.run spec in
  let b = Driver.run { spec with Driver.seed = 1234 } in
  (* Different seeds produce different (but similar-scale) runs. *)
  Alcotest.(check bool) "different allocation traffic" true
    (a.Driver.vbns_allocated <> b.Driver.vbns_allocated);
  Alcotest.(check bool) "similar throughput" true
    (Float.abs (a.Driver.throughput -. b.Driver.throughput)
    < 0.25 *. a.Driver.throughput)

let test_alloc_free_balance () =
  let r = Driver.run (small_spec ()) in
  (* Steady-state overwrites: allocations and frees track each other
     (within CP-boundary slack). *)
  let slack = r.Driver.vbns_allocated / 4 in
  Alcotest.(check bool)
    (Printf.sprintf "allocs ~ frees (%d vs %d)" r.Driver.vbns_allocated r.Driver.vbns_freed)
    true
    (abs (r.Driver.vbns_allocated - r.Driver.vbns_freed) < max 4096 slack)

let test_working_set_guard () =
  Alcotest.check_raises "oversized working set rejected"
    (Invalid_argument
       "Driver.run: working set 786432 too large for aggregate of 65536 blocks") (fun () ->
      ignore
        (Driver.run
           (small_spec ~workload:(Driver.Seq_write { file_blocks = 131072 }) ())))

let () =
  Alcotest.run "wafl_workload"
    [
      ( "driver",
        [
          Alcotest.test_case "sequential write basics" `Quick test_seq_write_basics;
          Alcotest.test_case "layout quality" `Quick test_seq_write_layout_quality;
          Alcotest.test_case "OLTP mix" `Quick test_oltp_mix;
          Alcotest.test_case "NFS mix" `Quick test_nfs_mix;
          Alcotest.test_case "random write metafile pressure" `Quick
            test_rand_write_touches_more_metafile_blocks;
          Alcotest.test_case "think time lowers load" `Quick test_think_time_lowers_load;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "five-seed replay identity" `Quick test_five_seed_determinism;
          Alcotest.test_case "memoized runs match fresh runs" `Quick test_memoized_run_matches;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_rand_stream;
          Alcotest.test_case "alloc/free balance" `Quick test_alloc_free_balance;
          Alcotest.test_case "working-set guard" `Quick test_working_set_guard;
        ] );
    ]
