(* Overload robustness tests: NVLog watermark back-pressure, the
   back-to-back-CP regime, open-loop driver determinism, and the crash
   harness's overload mode.  Small geometry and short windows keep these
   fast; the full-scale behavior lives in the `overload` experiment. *)

open Wafl_workload

let watermarks = { Wafl_fs.Nvlog.soft = 0.5; hard = 0.9; pace = 25.0 }

(* One hot bursty tenant and two polite victims, each on its own volume,
   against a deliberately small NVRAM. *)
let hot =
  Arrival.Bursty
    { base_rate = 5_000.0; burst_rate = 400_000.0; mean_on_us = 3_000.0; mean_off_us = 10_000.0 }

let victim = Arrival.Poisson { rate = 2_000.0 }

let open_spec ?(qos = None) ?(watermarks = Some watermarks) ?(nvlog_half = 256) () =
  {
    Driver.default_spec with
    Driver.cores = 8;
    workload = Driver.Rand_write { file_blocks = 1024 };
    clients = 3;
    volumes = 3;
    geometry = Driver.small_geometry ();
    nvlog_half;
    watermarks;
    open_loop = Some { Driver.arrivals = [ hot; victim; victim ]; qos };
    warmup = 60_000.0;
    measure = 200_000.0;
    cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 100_000.0 };
  }

let qos_config = { Wafl_qos.Qos.rate_per_s = 12_000.0; burst = 32.0; queue_depth = 64 }

(* --- the back-to-back-CP regime ------------------------------------------ *)

let test_small_nvram_peak_enters_b2b () =
  (* Figure 8's setup in miniature: OLTP peak load (closed loop, full
     tilt) against a small NVRAM.  The second log half must fill before
     the previous CP commits, i.e. the run enters the back-to-back-CP
     regime the paper describes for peak load. *)
  let r =
    Driver.run
      {
        Driver.default_spec with
        Driver.cores = 8;
        workload = Driver.Oltp { file_blocks = 1024; read_fraction = 0.67 };
        clients = 8;
        volumes = 2;
        geometry = Driver.small_geometry ();
        nvlog_half = 256;
        warmup = 60_000.0;
        measure = 250_000.0;
        cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 100_000.0 };
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "back-to-back CPs at peak (%d)" r.Driver.b2b_cps)
    true (r.Driver.b2b_cps > 0);
  Alcotest.(check bool) "episodes group consecutive b2b CPs" true
    (r.Driver.b2b_episodes > 0 && r.Driver.b2b_episodes <= r.Driver.b2b_cps)

(* --- watermarks make NVRAM exhaustion unreachable ------------------------ *)

let test_exhaustion_reachable_without_watermarks () =
  (* The hazard is real: open-loop bursts against the legacy half-full
     throttle alone can outrun CP drain and hit Nvlog.Exhausted (surfaced
     as refused writes, never an abort). *)
  let r = Driver.run (open_spec ~watermarks:None ~nvlog_half:64 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "exhaustion observed without watermarks (%d refusals)"
       r.Driver.nvlog_exhausted)
    true
    (r.Driver.nvlog_exhausted > 0)

let test_watermarks_make_exhaustion_unreachable () =
  (* Satellite regression: the same overload with watermark admission
     never reaches the exhaustion fault — back-pressure (visible as
     client stall time) takes the hit instead. *)
  let r = Driver.run (open_spec ~nvlog_half:64 ()) in
  Alcotest.(check int) "no exhausted writes with watermarks" 0 r.Driver.nvlog_exhausted;
  Alcotest.(check bool) "back-pressure engaged (stall time observed)" true
    (r.Driver.stall_us > 0.0)

(* --- QoS semantics under overload ---------------------------------------- *)

let test_qos_sheds_hot_tenant_only () =
  let r = Driver.run (open_spec ~qos:(Some qos_config) ()) in
  Alcotest.(check int) "three tenants accounted" 3 (Array.length r.Driver.tenants);
  let h = r.Driver.tenants.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "hot tenant shed (%d of %d offered)" h.Driver.t_shed h.Driver.t_offered)
    true (h.Driver.t_shed > 0);
  Array.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check int) (Printf.sprintf "victim %d never shed" i) 0 t.Driver.t_shed;
      Alcotest.(check int)
        (Printf.sprintf "tenant %d: offered = admitted + shed" i)
        t.Driver.t_offered
        (t.Driver.t_admitted + t.Driver.t_shed);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d: completions bounded by admissions" i)
        true
        (t.Driver.t_completed <= t.Driver.t_admitted))
    r.Driver.tenants;
  (* Whole-run totals agree with the per-tenant view. *)
  let sum f = Array.fold_left (fun a t -> a + f t) 0 r.Driver.tenants in
  Alcotest.(check int) "offered total" r.Driver.offered_ops (sum (fun t -> t.Driver.t_offered));
  Alcotest.(check int) "shed total" r.Driver.shed_ops (sum (fun t -> t.Driver.t_shed));
  Alcotest.(check int) "throttled total" r.Driver.throttled_ops
    (sum (fun t -> t.Driver.t_throttled));
  Alcotest.(check int) "completed total" r.Driver.ops (sum (fun t -> t.Driver.t_completed))

let test_qos_bounds_backlog () =
  let backlog (r : Driver.result) =
    let h = r.Driver.tenants.(0) in
    h.Driver.t_admitted - h.Driver.t_completed
  in
  let off = Driver.run (open_spec ()) in
  let on = Driver.run (open_spec ~qos:(Some qos_config) ()) in
  Alcotest.(check bool)
    (Printf.sprintf "qos bounds the hot backlog (%d off vs %d on)" (backlog off) (backlog on))
    true
    (backlog on * 5 < backlog off)

let test_fair_cp_admission () =
  (* Fair CP admission (Walloc.config.fair_cp): per-volume work units are
     round-robined through Wafl_qos.Fair.interleave.  The reordering must
     leave the run deterministic and the CP pipeline fully functional. *)
  let spec fair_cp =
    let s = open_spec ~qos:(Some qos_config) () in
    { s with Driver.cfg = { s.Driver.cfg with Wafl_core.Walloc.fair_cp } }
  in
  let fair = Driver.run (spec true) in
  Alcotest.(check bool) "CPs complete under fair admission" true (fair.Driver.cps_completed > 0);
  Alcotest.(check bool) "cleaning happens under fair admission" true
    (fair.Driver.buffers_cleaned > 0);
  Alcotest.(check int) "still no exhausted writes" 0 fair.Driver.nvlog_exhausted;
  let again = Driver.run (spec true) in
  Alcotest.(check bool) "fair admission replays identically" true (fair = again)

(* --- determinism and observer invisibility -------------------------------- *)

let test_open_loop_replay_identity () =
  List.iter
    (fun seed ->
      let spec = { (open_spec ~qos:(Some qos_config) ()) with Driver.seed } in
      let a = Driver.run spec and b = Driver.run spec in
      Alcotest.(check bool) (Printf.sprintf "seed %d replays identically" seed) true (a = b))
    [ 1; 2; 3 ]

let test_open_loop_sanitize_bit_identity () =
  let spec = open_spec ~qos:(Some qos_config) () in
  let plain = Driver.run spec in
  let sane = Driver.run { spec with Driver.sanitize = true } in
  Alcotest.(check int) "no races under the detector" 0 sane.Driver.races;
  Alcotest.(check bool) "sanitized overload run bit-identical" true (plain = sane)

let test_open_loop_causal_bit_identity () =
  let spec = open_spec ~qos:(Some qos_config) () in
  let plain = Driver.run spec in
  let traced =
    Driver.run
      { spec with Driver.obs = (fun eng -> Wafl_obs.Trace.create ~causal:true eng) }
  in
  Alcotest.(check bool) "causally traced overload run bit-identical" true (plain = traced)

(* --- crash harness overload mode ------------------------------------------ *)

let test_crash_overload_seeds () =
  let outcomes =
    Wafl_harness.Crash.run_seeds ~overload:true ~first_seed:7000 ~count:3 ()
  in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: no acked write lost, fsck clean" o.Wafl_harness.Crash.seed)
        true
        (Wafl_harness.Crash.passed o);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: watermarks held admission back" o.Wafl_harness.Crash.seed)
        0 o.Wafl_harness.Crash.exhausted_writes)
    outcomes;
  (* The point of the mode: crash points land inside overload windows. *)
  Alcotest.(check bool) "overload pressure observed across seeds" true
    (List.exists
       (fun o -> o.Wafl_harness.Crash.b2b_cps > 0 || o.Wafl_harness.Crash.stall_us > 0.0)
       outcomes)

let () =
  Alcotest.run "wafl_overload"
    [
      ( "back-pressure",
        [
          Alcotest.test_case "small-NVRAM peak enters the B2B regime" `Quick
            test_small_nvram_peak_enters_b2b;
          Alcotest.test_case "exhaustion reachable without watermarks" `Quick
            test_exhaustion_reachable_without_watermarks;
          Alcotest.test_case "watermarks make exhaustion unreachable" `Quick
            test_watermarks_make_exhaustion_unreachable;
        ] );
      ( "qos",
        [
          Alcotest.test_case "sheds the hot tenant only" `Quick test_qos_sheds_hot_tenant_only;
          Alcotest.test_case "bounds the hot backlog" `Quick test_qos_bounds_backlog;
          Alcotest.test_case "fair CP admission" `Quick test_fair_cp_admission;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "open-loop replay identity" `Quick test_open_loop_replay_identity;
          Alcotest.test_case "sanitize bit-identity" `Quick test_open_loop_sanitize_bit_identity;
          Alcotest.test_case "causal-trace bit-identity" `Quick test_open_loop_causal_bit_identity;
        ] );
      ( "crash",
        [ Alcotest.test_case "crash --overload seeds pass" `Quick test_crash_overload_seeds ] );
    ]
