(* Unit tests for Wafl_storage: geometry arithmetic, the disk store and
   the RAID write path (stripe accounting, durability, quiescing). *)

open Wafl_storage
open Wafl_sim

let geom () = Geometry.create ~drive_blocks:4096 ~aa_stripes:256 ~raid_groups:[ (4, 1); (3, 1) ] ()

(* --- Geometry --- *)

let test_totals () =
  let g = geom () in
  Alcotest.(check int) "data drives" 7 (Geometry.drives_total g);
  Alcotest.(check int) "total blocks" (7 * 4096) (Geometry.total_data_blocks g);
  Alcotest.(check int) "raid groups" 2 (Geometry.raid_group_count g);
  Alcotest.(check int) "rg0 data" 4 (Geometry.data_drives g ~rg:0);
  Alcotest.(check int) "rg1 data" 3 (Geometry.data_drives g ~rg:1);
  Alcotest.(check int) "rg0 parity" 1 (Geometry.parity_drives g ~rg:0);
  Alcotest.(check int) "aa count" 16 (Geometry.aa_count g)

let test_vbn_roundtrip () =
  let g = geom () in
  for rg = 0 to 1 do
    for drive = 0 to Geometry.data_drives g ~rg - 1 do
      List.iter
        (fun dbn ->
          let vbn = Geometry.vbn_of g ~rg ~drive ~dbn in
          let loc = Geometry.locate g vbn in
          Alcotest.(check int) "rg" rg loc.Geometry.rg;
          Alcotest.(check int) "drive" drive loc.Geometry.drive;
          Alcotest.(check int) "dbn" dbn loc.Geometry.dbn)
        [ 0; 1; 255; 4095 ]
    done
  done

let test_vbn_ranges_disjoint () =
  let g = geom () in
  (* Every VBN belongs to exactly one drive; drive bases partition the
     space into contiguous runs. *)
  let seen = Hashtbl.create 16 in
  for rg = 0 to 1 do
    List.iter
      (fun (drive, base) ->
        Alcotest.(check bool) "base not seen" false (Hashtbl.mem seen base);
        Hashtbl.add seen base (rg, drive);
        Alcotest.(check int) "base = vbn_of dbn 0" base (Geometry.vbn_of g ~rg ~drive ~dbn:0))
      (Geometry.drives_of_rg g ~rg)
  done;
  Alcotest.(check int) "seven drives" 7 (Hashtbl.length seen)

let test_aa_ranges () =
  let g = geom () in
  let lo, hi = Geometry.aa_dbn_range g ~aa:0 in
  Alcotest.(check (pair int int)) "first AA" (0, 255) (lo, hi);
  let lo, hi = Geometry.aa_dbn_range g ~aa:15 in
  Alcotest.(check (pair int int)) "last AA" (15 * 256, 4095) (lo, hi);
  Alcotest.(check int) "aa of dbn" 3 (Geometry.aa_of_dbn g 800)

let test_geometry_validation () =
  Alcotest.check_raises "no groups" (Invalid_argument "Geometry.create: no RAID groups")
    (fun () -> ignore (Geometry.create ~raid_groups:[] ()));
  Alcotest.check_raises "bad alignment"
    (Invalid_argument "Geometry.create: drive_blocks must be a positive multiple of aa_stripes")
    (fun () -> ignore (Geometry.create ~drive_blocks:100 ~aa_stripes:64 ~raid_groups:[ (2, 1) ] ()));
  let g = geom () in
  Alcotest.(check bool) "invalid vbn" false (Geometry.vbn_valid g (7 * 4096));
  Alcotest.(check bool) "valid vbn" true (Geometry.vbn_valid g 0)

let prop_locate_inverts_vbn_of =
  QCheck.Test.make ~name:"locate inverts vbn_of" ~count:500
    QCheck.(triple (int_bound 1) (int_bound 2) (int_bound 4095))
    (fun (rg, drive, dbn) ->
      let g = geom () in
      let drive = drive mod Geometry.data_drives g ~rg in
      let vbn = Geometry.vbn_of g ~rg ~drive ~dbn in
      let loc = Geometry.locate g vbn in
      loc.Geometry.rg = rg && loc.Geometry.drive = drive && loc.Geometry.dbn = dbn)

(* --- Disk --- *)

let test_disk_read_write () =
  let d = Disk.create (geom ()) in
  Alcotest.(check (option string)) "unwritten" None (Disk.read d 42);
  Disk.write d 42 "hello";
  Alcotest.(check (option string)) "written" (Some "hello") (Disk.read d 42);
  Disk.write d 42 "world";
  Alcotest.(check string) "overwritten" "world" (Disk.read_exn d 42);
  Alcotest.(check int) "write count" 2 (Disk.writes_total d)

let test_disk_bounds () =
  let d = Disk.create (geom ()) in
  Alcotest.check_raises "oob write" (Invalid_argument "Disk: vbn 999999 out of range")
    (fun () -> Disk.write d 999999 "x")

(* --- Raid --- *)

let with_engine f =
  let eng = Engine.create ~cores:4 () in
  let result = ref None in
  ignore (Engine.spawn eng ~label:"test" (fun () -> result := Some (f eng)));
  Engine.run eng;
  match !result with Some v -> v | None -> Alcotest.fail "test fiber did not finish"

let test_raid_write_durable () =
  let g = geom () in
  let d = Disk.create g in
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let writes = List.init 8 (fun i -> (Geometry.vbn_of g ~rg:0 ~drive:(i mod 4) ~dbn:(i / 4), i)) in
      let completed = ref false in
      Raid.submit raid ~writes ~on_complete:(fun () -> completed := true);
      Alcotest.(check bool) "asynchronous" false !completed;
      Raid.quiesce raid;
      Alcotest.(check bool) "completed" true !completed;
      List.iter
        (fun (vbn, v) -> Alcotest.(check (option int)) "durable" (Some v) (Disk.read d vbn))
        writes;
      Raid.shutdown raid)

let test_raid_full_vs_partial_stripes () =
  let g = geom () in
  let d = Disk.create g in
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      (* dbn 0: all four drives -> full stripe; dbn 1: one drive -> partial. *)
      let writes =
        List.init 4 (fun drive -> (Geometry.vbn_of g ~rg:0 ~drive ~dbn:0, drive))
        @ [ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:1, 99) ]
      in
      Raid.submit raid ~writes ~on_complete:(fun () -> ());
      Raid.quiesce raid;
      Alcotest.(check int) "one full stripe" 1 (Raid.full_stripes raid);
      Alcotest.(check int) "one partial stripe" 1 (Raid.partial_stripes raid);
      Alcotest.(check int) "five blocks" 5 (Raid.blocks_written raid);
      Raid.shutdown raid)

let test_raid_partial_pays_parity_penalty () =
  let g = geom () in
  let timed full =
    let d = Disk.create g in
    with_engine (fun eng ->
        let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
        let writes =
          if full then List.init 4 (fun drive -> (Geometry.vbn_of g ~rg:0 ~drive ~dbn:0, drive))
          else List.init 4 (fun dbn -> (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn, dbn))
        in
        Raid.submit raid ~writes ~on_complete:(fun () -> ());
        Raid.quiesce raid;
        Raid.device_busy raid)
  in
  let full_time = timed true and partial_time = timed false in
  Alcotest.(check bool)
    (Printf.sprintf "partial stripes slower (%.0f vs %.0f)" partial_time full_time)
    true
    (partial_time > full_time)

let test_raid_rejects_foreign_vbn () =
  (* The check runs in the RAID service fiber, so the exception surfaces
     from Engine.run rather than from submit. *)
  let g = geom () in
  let d = Disk.create g in
  let eng = Engine.create ~cores:4 () in
  ignore
    (Engine.spawn eng ~label:"test" (fun () ->
         let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
         let foreign = Geometry.vbn_of g ~rg:1 ~drive:0 ~dbn:0 in
         Raid.submit raid ~writes:[ (foreign, 0) ] ~on_complete:(fun () -> ())));
  Alcotest.check_raises "foreign vbn rejected"
    (Invalid_argument "Raid.submit: vbn not in this group") (fun () -> Engine.run eng)

let test_raid_empty_submit_completes_inline () =
  let g = geom () in
  let d = Disk.create g in
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let completed = ref false in
      Raid.submit raid ~writes:[] ~on_complete:(fun () -> completed := true);
      Alcotest.(check bool) "inline completion" true !completed;
      Raid.shutdown raid)

let test_raid_many_ios_in_order_counts () =
  let g = geom () in
  let d = Disk.create g in
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 ~queue_depth:2 in
      for i = 0 to 9 do
        Raid.submit raid
          ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:i, i) ]
          ~on_complete:(fun () -> ())
      done;
      Raid.quiesce raid;
      Alcotest.(check int) "all IOs done" 10 (Raid.ios_completed raid);
      Raid.shutdown raid)

(* --- Fault injection --- *)

let test_media_error_reconstructed_and_repaired () =
  let g = geom () in
  let d = Disk.create g in
  let plan = Fault.create ~seed:1 () in
  Disk.set_fault d plan;
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let vbn = Geometry.vbn_of g ~rg:0 ~drive:1 ~dbn:5 in
      Raid.submit raid ~writes:[ (vbn, 41) ] ~on_complete:(fun () -> ());
      Raid.quiesce raid;
      Fault.add_media_error plan vbn;
      (match Raid.read raid vbn with
      | `Degraded v -> Alcotest.(check int) "reconstructed from parity" 41 v
      | _ -> Alcotest.fail "expected a degraded read");
      (* Reconstruction rewrites the block, repairing the sector. *)
      (match Raid.read raid vbn with
      | `Ok v -> Alcotest.(check int) "sector repaired" 41 v
      | _ -> Alcotest.fail "expected a clean read after repair");
      Alcotest.(check int) "degraded read counted" 1 (Raid.degraded_reads raid);
      Alcotest.(check int) "media error counted" 1 (Fault.media_errors_seen plan);
      Raid.shutdown raid)

let test_transient_failures_retried_in_virtual_time () =
  let g = geom () in
  let run transient_p =
    let d = Disk.create g in
    let plan = Fault.create ~transient_p ~seed:7 () in
    Disk.set_fault d plan;
    with_engine (fun eng ->
        let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
        for i = 0 to 19 do
          Raid.submit raid
            ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:i, i) ]
            ~on_complete:(fun () -> ())
        done;
        Raid.quiesce raid;
        for i = 0 to 19 do
          Alcotest.(check (option int)) "durable despite transients" (Some i)
            (Disk.read d (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:i))
        done;
        let retries = Raid.transient_retries raid and busy = Raid.device_busy raid in
        Raid.shutdown raid;
        (retries, busy))
  in
  let retries_faulty, busy_faulty = run 0.4 in
  let retries_clean, busy_clean = run 0.0 in
  Alcotest.(check int) "no retries without faults" 0 retries_clean;
  Alcotest.(check bool) "retries happened" true (retries_faulty > 0);
  Alcotest.(check bool)
    (Printf.sprintf "backoff visible in device time (%.0f vs %.0f)" busy_faulty busy_clean)
    true
    (busy_faulty > busy_clean)

let test_disk_failure_degraded_then_rebuilt () =
  let g = geom () in
  let d = Disk.create g in
  let plan = Fault.create ~seed:3 () in
  Disk.set_fault d plan;
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let vbn = Geometry.vbn_of g ~rg:0 ~drive:2 ~dbn:100 in
      Raid.submit raid ~writes:[ (vbn, 5) ] ~on_complete:(fun () -> ());
      Raid.quiesce raid;
      Fault.fail_disk plan ~rg:0 ~drive:2 ~at:(Engine.now eng);
      (match Raid.read raid vbn with
      | `Degraded v -> Alcotest.(check int) "served by reconstruction" 5 v
      | _ -> Alcotest.fail "expected a degraded read");
      Alcotest.(check bool) "group degraded" true (Raid.degraded raid);
      (* The background rebuild fiber recreates the drive. *)
      while Raid.degraded raid do
        Engine.sleep 1_000.0
      done;
      Alcotest.(check int) "whole drive rebuilt" 4096 (Raid.rebuild_blocks raid);
      (match Raid.read raid vbn with
      | `Ok v -> Alcotest.(check int) "clean read after rebuild" 5 v
      | _ -> Alcotest.fail "expected a clean read after rebuild");
      Raid.shutdown raid)

let test_double_failure_is_lost () =
  let g = geom () in
  let d = Disk.create g in
  let plan = Fault.create ~seed:5 () in
  Disk.set_fault d plan;
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let on_failed = Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:9 in
      let peer = Geometry.vbn_of g ~rg:0 ~drive:1 ~dbn:9 in
      Raid.submit raid ~writes:[ (on_failed, 1); (peer, 2) ] ~on_complete:(fun () -> ());
      Raid.quiesce raid;
      Fault.fail_disk plan ~rg:0 ~drive:0 ~at:(Engine.now eng);
      Fault.add_media_error plan peer;
      (* Reconstructing the failed drive's block needs every peer of the
         stripe; the media error makes it a double failure. *)
      (match Raid.read raid on_failed with
      | `Lost -> ()
      | _ -> Alcotest.fail "expected the block to be unrecoverable");
      Alcotest.(check bool) "counted" true (Fault.unrecoverable_reads plan > 0);
      Raid.shutdown raid)

let test_write_error_lands_in_take_failed () =
  let g = geom () in
  let d = Disk.create g in
  let plan = Fault.create ~seed:9 () in
  Disk.set_fault d plan;
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
      let good = Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:0 in
      let bad = Geometry.vbn_of g ~rg:0 ~drive:1 ~dbn:0 in
      Fault.add_write_error plan bad;
      Raid.submit raid ~writes:[ (good, 1); (bad, 2) ] ~on_complete:(fun () -> ());
      Raid.quiesce raid;
      Alcotest.(check (option int)) "good write durable" (Some 1) (Disk.read d good);
      Alcotest.(check (option int)) "bad write not durable" None (Disk.read d bad);
      Alcotest.(check (list (pair int int))) "failed write reported" [ (bad, 2) ]
        (Raid.take_failed raid);
      Alcotest.(check (list (pair int int))) "list cleared" [] (Raid.take_failed raid);
      Raid.shutdown raid)

let test_shutdown_drains_queued_ios () =
  (* Stop requests queue behind pending I/Os, so a shutdown issued while
     the queue is deep must drain it, not drop it. *)
  let g = geom () in
  let d = Disk.create g in
  with_engine (fun eng ->
      let raid = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 ~queue_depth:1 in
      for i = 0 to 11 do
        Raid.submit raid
          ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:i, i) ]
          ~on_complete:(fun () -> ())
      done;
      Raid.shutdown raid;
      Raid.quiesce raid;
      Alcotest.(check int) "all queued IOs completed" 12 (Raid.ios_completed raid);
      for i = 0 to 11 do
        Alcotest.(check (option int)) "payload durable" (Some i)
          (Disk.read d (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:i))
      done)

let test_quiesce_races_concurrent_submit () =
  (* One fiber quiesces while another keeps submitting: device service
     takes ~25 virtual µs, so the io2/io3 submissions land while the
     quiescer is parked on io1.  Quiesce must cover them too — it
     returns only when the group is truly idle. *)
  let g = geom () in
  let d = Disk.create g in
  let eng = Engine.create ~cores:4 () in
  let raid = ref None in
  let ios_at_quiesce = ref (-1) in
  ignore
    (Engine.spawn eng ~label:"submitter" (fun () ->
         let r = Raid.create eng ~cost:Cost.default ~disk:d ~rg:0 in
         raid := Some r;
         Raid.submit r ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:0, 0) ]
           ~on_complete:(fun () -> ());
         Engine.sleep 5.0;
         Raid.submit r ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:1, 1) ]
           ~on_complete:(fun () -> ());
         Raid.submit r ~writes:[ (Geometry.vbn_of g ~rg:0 ~drive:0 ~dbn:2, 2) ]
           ~on_complete:(fun () -> ())));
  ignore
    (Engine.spawn eng ~label:"quiescer" (fun () ->
         Engine.sleep 10.0;
         let r = Option.get !raid in
         Raid.quiesce r;
         ios_at_quiesce := Raid.ios_completed r;
         Raid.shutdown r));
  Engine.run eng;
  Alcotest.(check int) "quiesce covered the racing submits" 3 !ios_at_quiesce

let () =
  Alcotest.run "wafl_storage"
    [
      ( "geometry",
        [
          Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "vbn roundtrip" `Quick test_vbn_roundtrip;
          Alcotest.test_case "drive ranges disjoint" `Quick test_vbn_ranges_disjoint;
          Alcotest.test_case "aa ranges" `Quick test_aa_ranges;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
          QCheck_alcotest.to_alcotest ~verbose:false prop_locate_inverts_vbn_of;
        ] );
      ( "disk",
        [
          Alcotest.test_case "read/write" `Quick test_disk_read_write;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
        ] );
      ( "raid",
        [
          Alcotest.test_case "write durable at completion" `Quick test_raid_write_durable;
          Alcotest.test_case "full vs partial stripes" `Quick test_raid_full_vs_partial_stripes;
          Alcotest.test_case "parity penalty" `Quick test_raid_partial_pays_parity_penalty;
          Alcotest.test_case "foreign vbn rejected" `Quick test_raid_rejects_foreign_vbn;
          Alcotest.test_case "empty submit" `Quick test_raid_empty_submit_completes_inline;
          Alcotest.test_case "many IOs" `Quick test_raid_many_ios_in_order_counts;
          Alcotest.test_case "shutdown drains queued IOs" `Quick test_shutdown_drains_queued_ios;
          Alcotest.test_case "quiesce races concurrent submit" `Quick
            test_quiesce_races_concurrent_submit;
        ] );
      ( "faults",
        [
          Alcotest.test_case "media error reconstructed + repaired" `Quick
            test_media_error_reconstructed_and_repaired;
          Alcotest.test_case "transient failures retried" `Quick
            test_transient_failures_retried_in_virtual_time;
          Alcotest.test_case "disk failure: degraded then rebuilt" `Quick
            test_disk_failure_degraded_then_rebuilt;
          Alcotest.test_case "double failure is lost" `Quick test_double_failure_is_lost;
          Alcotest.test_case "write error lands in take_failed" `Quick
            test_write_error_lands_in_take_failed;
        ] );
    ]
