(* Wafl_obs.Causal: causal edges, the trace analyzer, and the guarantees
   the tentpole rests on.

   Four legs: (1) every causal trace of a figure run parses into a
   connected, acyclic DAG whose per-CP critical paths cover the whole CP
   interval; (2) causal tracing is deterministic (same seed, byte-equal
   trace) and invisible (results bit-identical with causal tracing on and
   off); (3) pooled worker fibers reset their span stack and causal
   context between messages, so state leaked by one message cannot attach
   to the next; (4) ring-buffer drops are surfaced through the analyzer
   so a truncated trace is never mistaken for a complete one. *)

module H = Wafl_harness
module Driver = Wafl_workload.Driver
module Engine = Wafl_sim.Engine
module Trace = Wafl_obs.Trace
module Causal = Wafl_obs.Causal
module Sched = Wafl_waffinity.Scheduler
module Aff = Wafl_waffinity.Affinity

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let scale = 0.02

(* --- pooled workers must not leak spans or contexts across messages ------ *)

let profile_total rows key =
  match List.find_opt (fun (k, _, _) -> k = key) rows with
  | Some (_, total, _) -> total
  | None -> 0.0

let test_worker_reset () =
  let eng = Engine.create ~cores:1 () in
  let t = Trace.create ~sample_interval:0.0 ~causal:true eng in
  let sched = Sched.create ~workers:1 ~obs:t eng ~cost:Wafl_sim.Cost.default () in
  ignore
    (Engine.spawn eng ~label:"poster" (fun () ->
         (* Message A opens a span it never closes — a bug in a message
            body.  Serial affinity forces both messages onto the same
            pooled worker fiber, back to back. *)
         Sched.post sched ~affinity:Aff.Serial ~label:"test" (fun () ->
             Trace.begin_span t ~cat:"test" ~name:"leaked";
             Engine.consume 5.0);
         Sched.post sched ~affinity:Aff.Serial ~label:"test" (fun () ->
             Engine.consume 7.0);
         Sched.drain sched));
  Engine.run eng;
  let rows = Trace.profile_rows t in
  (* A's charge lands under the leaked span... *)
  Alcotest.(check (float 1e-6)) "A charged under its leaked span" 5.0
    (profile_total rows "msg serial/leaked");
  (* ...but B starts from a clean stack: its charge sits directly under
     its own message span, not under A's leftovers. *)
  Alcotest.(check (float 1e-6)) "B charged under its own span only" 7.0
    (profile_total rows "msg serial");
  Alcotest.(check bool) "no doubled message-span path" false
    (List.exists (fun (k, _, _) -> contains k "msg serial/msg serial") rows);
  Alcotest.(check bool) "no leak onto B's path" false
    (List.exists (fun (k, _, _) -> contains k "leaked/msg serial") rows)

(* --- figure traces form connected, acyclic causal DAGs ------------------- *)

let causal_fig name f =
  let last = ref Trace.disabled in
  H.Exp.trace :=
    Some
      (fun eng ->
        let t = Trace.create ~causal:true eng in
        last := t;
        t);
  ignore (Fun.protect ~finally:(fun () -> H.Exp.trace := None) f);
  let json = Trace.export_string !last in
  match Causal.analyze_string json with
  | Error e -> Alcotest.fail (name ^ ": analyze failed: " ^ e)
  | Ok a ->
      Alcotest.(check bool) (name ^ ": acyclic") true a.Causal.a_acyclic;
      Alcotest.(check int) (name ^ ": no ring drops") 0 a.Causal.a_dropped;
      Alcotest.(check int) (name ^ ": every finish has its start") 0
        a.Causal.a_orphan_finishes;
      Alcotest.(check bool) (name ^ ": causal edges present") true (a.Causal.a_edges > 0);
      Alcotest.(check bool) (name ^ ": checkpoints present") true (a.Causal.a_cps <> []);
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: CP @ %.0fus critical path connected" name p.Causal.p_ts)
            true
            (p.Causal.p_coverage >= 0.99))
        a.Causal.a_cps;
      a

let test_dag_fig4 () = ignore (causal_fig "fig4" (fun () -> H.Fig4.run ~scale ()))

let test_dag_fig5 () =
  ignore (causal_fig "fig5" (fun () -> H.Fig5.run ~scale ~thread_counts:[ 1; 4 ] ()))

let test_dag_fig6 () =
  let a = causal_fig "fig6" (fun () -> H.Fig6.run ~scale ()) in
  (* The bottleneck table attributes the whole walked critical path. *)
  Alcotest.(check bool) "fig6: bottlenecks non-empty" true (a.Causal.a_bottlenecks <> []);
  Alcotest.(check bool) "fig6: write ops decomposed" true
    (List.exists (fun o -> o.Causal.o_name = "write" && o.Causal.o_count > 0) a.Causal.a_ops);
  let txt = Causal.render a in
  Alcotest.(check bool) "fig6: render names a critical path" true
    (contains txt "critical path: CP");
  Alcotest.(check bool) "fig6: render has the bottleneck table" true
    (contains txt "bottleneck")

let test_dag_fig7 () = ignore (causal_fig "fig7" (fun () -> H.Fig7.run ~scale ()))
let test_dag_fig8 () = ignore (causal_fig "fig8" (fun () -> H.Fig8.run ~scale ()))

let test_dag_fig9 () =
  ignore (causal_fig "fig9" (fun () -> H.Fig9.run ~scale ~levels:2 ()))

(* --- determinism and invisibility ---------------------------------------- *)

let causal_traced_run seed =
  let tracer = ref Trace.disabled in
  let spec =
    {
      (H.Exp.spec_base ~scale) with
      Driver.seed;
      obs =
        (fun eng ->
          let t = Trace.create ~causal:true eng in
          tracer := t;
          t);
    }
  in
  let r = Driver.run spec in
  (r, !tracer)

let test_causal_deterministic () =
  let r1, t1 = causal_traced_run 7 in
  let r2, t2 = causal_traced_run 7 in
  Alcotest.(check bool) "same-seed results identical" true (r1 = r2);
  Alcotest.(check string) "same-seed causal traces byte-identical"
    (Trace.export_string t1) (Trace.export_string t2)

(* Runs [f] untraced, then causally traced; results must be bit-equal —
   causal recording never consumes virtual time, never schedules and
   never draws randomness. *)
let check_fig_causal name f =
  H.Exp.trace := None;
  let off = f () in
  H.Exp.trace := Some (fun eng -> Trace.create ~causal:true eng);
  let on = Fun.protect ~finally:(fun () -> H.Exp.trace := None) f in
  Alcotest.(check bool) (name ^ ": causal run bit-identical") true (off = on)

let test_causal_off_vs_on_fig4 () =
  check_fig_causal "fig4" (fun () -> H.Fig4.run ~scale ())

let test_causal_off_vs_on_fig6 () =
  check_fig_causal "fig6" (fun () -> H.Fig6.run ~scale ())

(* --- ring drops are surfaced, never silent ------------------------------- *)

let test_drops_surfaced () =
  let tracer = ref Trace.disabled in
  let spec =
    {
      (H.Exp.spec_base ~scale) with
      Driver.seed = 3;
      obs =
        (fun eng ->
          let t = Trace.create ~ring_capacity:256 ~causal:true eng in
          tracer := t;
          t);
    }
  in
  ignore (Driver.run spec);
  let t = !tracer in
  Alcotest.(check bool) "tiny ring dropped events" true (Trace.dropped t > 0);
  match Causal.analyze_string (Trace.export_string t) with
  | Error e -> Alcotest.fail ("analyze failed: " ^ e)
  | Ok a ->
      Alcotest.(check int) "drop count exported in trace metadata" (Trace.dropped t)
        a.Causal.a_dropped;
      Alcotest.(check bool) "render warns about the incomplete trace" true
        (contains (Causal.render a) "WARNING")

let () =
  Alcotest.run "causal"
    [
      ( "workers",
        [
          Alcotest.test_case "pooled worker resets span stack and context between messages"
            `Quick test_worker_reset;
        ] );
      ( "dag",
        [
          Alcotest.test_case "fig4 trace is a connected acyclic DAG" `Slow test_dag_fig4;
          Alcotest.test_case "fig5 trace is a connected acyclic DAG" `Slow test_dag_fig5;
          Alcotest.test_case "fig6 trace analyzes end to end" `Slow test_dag_fig6;
          Alcotest.test_case "fig7 trace is a connected acyclic DAG" `Slow test_dag_fig7;
          Alcotest.test_case "fig8 trace is a connected acyclic DAG" `Slow test_dag_fig8;
          Alcotest.test_case "fig9 trace is a connected acyclic DAG" `Slow test_dag_fig9;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, byte-identical causal trace" `Slow
            test_causal_deterministic;
          Alcotest.test_case "fig4 bit-identical with causal tracing" `Slow
            test_causal_off_vs_on_fig4;
          Alcotest.test_case "fig6 bit-identical with causal tracing" `Slow
            test_causal_off_vs_on_fig6;
        ] );
      ( "completeness",
        [ Alcotest.test_case "ring drops surfaced by the analyzer" `Quick test_drops_surfaced ] );
    ]
