(* Tests for the experiment-harness logic itself: configuration helpers
   and the shape-check predicates, exercised on synthetic results so they
   run in microseconds.  (The experiments' real outputs are validated by
   `bench/main.exe`, which prints the same shape checks.) *)

open Wafl_workload
module H = Wafl_harness

let synthetic ?(throughput = 100_000.0) ?(cores_cleaner = 1.0) ?(cores_infra = 0.5)
    ?(utilization = 0.5) ?(metafile_blocks_touched = 0) ?(writes = 100_000)
    ?(cleaner_messages = 100) ?(avg_active_cleaners = 1.0) ?(latency_mean = 50.0) () =
  let latency = Wafl_util.Histogram.create () in
  for _ = 1 to 100 do
    Wafl_util.Histogram.add latency latency_mean
  done;
  {
    Driver.ops = int_of_float (throughput /. 10.0);
    duration = 1_000_000.0;
    throughput;
    throughput_per_client = throughput /. 40.0;
    latency;
    write_latency = latency;
    reads = 0;
    writes;
    metas = 0;
    cores_client = 5.0;
    cores_cleaner;
    cores_infra;
    cores_cp = 0.1;
    cores_io_other = 0.1;
    utilization;
    cps_completed = 10;
    buffers_cleaned = writes;
    vbns_allocated = writes;
    vbns_freed = writes;
    metafile_blocks_touched;
    infra_messages = 1000;
    cleaner_messages;
    get_waits = 0;
    avg_active_cleaners;
    full_stripes = 1000;
    partial_stripes = 10;
    read_contiguity = 50.0;
    offered_ops = int_of_float (throughput /. 10.0);
    shed_ops = 0;
    throttled_ops = 0;
    stall_us = 0.0;
    b2b_cps = 0;
    b2b_episodes = 0;
    nvlog_exhausted = 0;
    tenants = [||];
    races = 0;
    flash_host_pages = 0;
    flash_gc_pages = 0;
    flash_erases = 0;
    flash_gc_stall_us = 0.0;
    waf = 1.0;
    telemetry = None;
  }

let all_ok shapes = List.for_all snd shapes
let any_missed shapes = List.exists (fun (_, ok) -> not ok) shapes

(* --- Exp helpers --- *)

let test_gain_pct () =
  Alcotest.(check (float 1e-9)) "gain" 50.0 (H.Exp.gain_pct ~baseline:100.0 150.0);
  Alcotest.(check (float 1e-9)) "negative gain" (-25.0) (H.Exp.gain_pct ~baseline:100.0 75.0);
  Alcotest.(check (float 1e-9)) "zero baseline guarded" 0.0 (H.Exp.gain_pct ~baseline:0.0 10.0)

let test_wa_config_composition () =
  let cfg = H.Exp.wa_config ~cleaners:3 ~parallel_infra:false ~dynamic:true () in
  Alcotest.(check int) "cleaners" 3 cfg.Wafl_core.Walloc.cleaner_threads;
  Alcotest.(check bool) "serial infra" false cfg.Wafl_core.Walloc.parallel_infra;
  Alcotest.(check bool) "dynamic" true cfg.Wafl_core.Walloc.dynamic_cleaners;
  Alcotest.(check bool) "cp timer set" true (cfg.Wafl_core.Walloc.cp_timer <> None)

let test_spec_base_scaling () =
  let full = H.Exp.spec_base ~scale:1.0 in
  let quarter = H.Exp.spec_base ~scale:0.25 in
  Alcotest.(check bool) "window shrinks" true
    (quarter.Driver.measure < full.Driver.measure);
  Alcotest.(check bool) "window floor respected" true
    (quarter.Driver.measure >= 200_000.0)

(* --- Fig4 shapes on synthetic permutation rows --- *)

let perm_rows ~base ~infra ~cleaners ~both =
  let row name result gain = { H.Perms.name; result; gain } in
  [
    row "base" base 0.0;
    row "infra" infra (H.Exp.gain_pct ~baseline:base.Driver.throughput infra.Driver.throughput);
    row "cleaners" cleaners
      (H.Exp.gain_pct ~baseline:base.Driver.throughput cleaners.Driver.throughput);
    row "both" both (H.Exp.gain_pct ~baseline:base.Driver.throughput both.Driver.throughput);
  ]

let paper_like_fig4 () =
  perm_rows
    ~base:(synthetic ~throughput:100_000.0 ~utilization:0.25 ())
    ~infra:(synthetic ~throughput:107_000.0 ~utilization:0.26 ())
    ~cleaners:(synthetic ~throughput:182_000.0 ~utilization:0.45 ())
    ~both:
      (synthetic ~throughput:374_000.0 ~utilization:0.95 ~cores_cleaner:3.9 ~cores_infra:2.35
         ())

let test_fig4_shapes_accept_paper_numbers () =
  Alcotest.(check bool) "paper-shaped data passes" true
    (all_ok (H.Fig4.shapes (paper_like_fig4 ())))

let test_fig4_shapes_reject_inverted_result () =
  (* If infra-only were the big winner, the sequential-write claim broke. *)
  let rows =
    perm_rows
      ~base:(synthetic ~throughput:100_000.0 ~utilization:0.25 ())
      ~infra:(synthetic ~throughput:190_000.0 ~utilization:0.5 ())
      ~cleaners:(synthetic ~throughput:110_000.0 ~utilization:0.3 ())
      ~both:
        (synthetic ~throughput:300_000.0 ~utilization:0.9 ~cores_cleaner:3.0 ~cores_infra:2.0
           ())
  in
  Alcotest.(check bool) "inverted data flagged" true (any_missed (H.Fig4.shapes rows))

let test_fig7_shapes_accept_paper_numbers () =
  let touches = 90_000 in
  let rows =
    perm_rows
      ~base:(synthetic ~throughput:100_000.0 ~utilization:0.6 ())
      ~infra:(synthetic ~throughput:125_000.0 ~utilization:0.7 ())
      ~cleaners:(synthetic ~throughput:114_000.0 ~utilization:0.65 ())
      ~both:
        (synthetic ~throughput:150_000.0 ~utilization:0.99
           ~metafile_blocks_touched:touches ())
  in
  Alcotest.(check bool) "paper-shaped data passes" true (all_ok (H.Fig7.shapes rows))

let test_fig7_shapes_reject_runaway_gain () =
  (* A +300% random-write gain would mean we rebuilt Figure 4, not 7. *)
  let rows =
    perm_rows
      ~base:(synthetic ~throughput:100_000.0 ~utilization:0.6 ())
      ~infra:(synthetic ~throughput:125_000.0 ())
      ~cleaners:(synthetic ~throughput:114_000.0 ())
      ~both:
        (synthetic ~throughput:400_000.0 ~utilization:0.99 ~metafile_blocks_touched:90_000 ())
  in
  Alcotest.(check bool) "runaway gain flagged" true (any_missed (H.Fig7.shapes rows))

(* --- Fig8 shapes --- *)

let fig8_rows ~peaks ~knee_lats ~dyn_peak ~dyn_lat ~dyn_threads =
  let mk c peak lat threads =
    {
      H.Fig8.config = c;
      peak = synthetic ~throughput:peak ();
      knee = synthetic ~throughput:(0.6 *. peak) ~latency_mean:lat ~avg_active_cleaners:threads ();
    }
  in
  List.map2
    (fun (c, peak) lat ->
      match c with
      | H.Fig8.Static n -> mk (H.Fig8.Static n) peak lat 1.0
      | H.Fig8.Dynamic -> mk H.Fig8.Dynamic dyn_peak dyn_lat dyn_threads)
    [
      (H.Fig8.Static 1, List.nth peaks 0);
      (H.Fig8.Static 2, List.nth peaks 1);
      (H.Fig8.Static 3, List.nth peaks 2);
      (H.Fig8.Static 4, List.nth peaks 3);
      (H.Fig8.Dynamic, 0.0);
    ]
    knee_lats

let test_fig8_shapes_accept_paper_numbers () =
  let rows =
    fig8_rows
      ~peaks:[ 480_000.0; 590_000.0; 588_000.0; 585_000.0 ]
      ~knee_lats:[ 30.0; 26.0; 26.5; 27.0; 26.2 ]
      ~dyn_peak:589_000.0 ~dyn_lat:26.2 ~dyn_threads:2.0
  in
  Alcotest.(check bool) "paper-shaped data passes" true (all_ok (H.Fig8.shapes rows))

let test_fig8_shapes_reject_lazy_dynamic () =
  let rows =
    fig8_rows
      ~peaks:[ 480_000.0; 590_000.0; 588_000.0; 585_000.0 ]
      ~knee_lats:[ 30.0; 26.0; 26.5; 27.0; 29.9 ]
      ~dyn_peak:480_000.0 ~dyn_lat:29.9 ~dyn_threads:1.0
  in
  Alcotest.(check bool) "dynamic stuck at one thread flagged" true
    (any_missed (H.Fig8.shapes rows))

(* --- Batching shapes --- *)

let test_batching_shapes () =
  let off = { H.Batching.batching = false; result = synthetic ~cleaner_messages:2000 () } in
  let on =
    {
      H.Batching.batching = true;
      result = synthetic ~cleaner_messages:300 ~throughput:103_000.0 ();
    }
  in
  Alcotest.(check bool) "good batching passes" true (all_ok (H.Batching.shapes [ off; on ]));
  let bad_on = { on with H.Batching.result = synthetic ~cleaner_messages:1900 () } in
  Alcotest.(check bool) "non-amortizing batching flagged" true
    (any_missed (H.Batching.shapes [ off; bad_on ]))

let () =
  Alcotest.run "wafl_harness"
    [
      ( "exp",
        [
          Alcotest.test_case "gain_pct" `Quick test_gain_pct;
          Alcotest.test_case "wa_config composition" `Quick test_wa_config_composition;
          Alcotest.test_case "spec_base scaling" `Quick test_spec_base_scaling;
        ] );
      ( "shape checks",
        [
          Alcotest.test_case "fig4 accepts paper numbers" `Quick
            test_fig4_shapes_accept_paper_numbers;
          Alcotest.test_case "fig4 rejects inversion" `Quick
            test_fig4_shapes_reject_inverted_result;
          Alcotest.test_case "fig7 accepts paper numbers" `Quick
            test_fig7_shapes_accept_paper_numbers;
          Alcotest.test_case "fig7 rejects runaway gain" `Quick
            test_fig7_shapes_reject_runaway_gain;
          Alcotest.test_case "fig8 accepts paper numbers" `Quick
            test_fig8_shapes_accept_paper_numbers;
          Alcotest.test_case "fig8 rejects lazy dynamic" `Quick
            test_fig8_shapes_reject_lazy_dynamic;
          Alcotest.test_case "batching shapes" `Quick test_batching_shapes;
        ] );
    ]
