(* Unit tests for Wafl_flash: device sizing and thin provisioning,
   per-stream open blocks, GC reclamation under churn, trims, and
   seeded replay identity (same seed + same host history -> identical
   device signature). *)

open Wafl_flash
open Wafl_sim

let cfg0 =
  { Ftl.default_config with Ftl.pages_per_block = 16; op_ratio = 0.25; prefill = 0.0; seed = 7 }

(* Run [f] with a fresh engine from fiber context (host_write charges
   virtual time). *)
let in_fiber f =
  let eng = Engine.create ~cores:2 () in
  let result = ref None in
  ignore (Engine.spawn eng ~label:"test" (fun () -> result := Some (f eng)));
  Engine.run eng;
  Option.get !result

(* --- sizing ------------------------------------------------------------- *)

let test_sizing () =
  let t = in_fiber (fun eng -> Ftl.create eng ~cfg:cfg0 ~lpns:1024 ~rg:0) in
  (* 1024 lpns / 16 ppb = 64 logical blocks, x1.25 OP = 80 physical. *)
  Alcotest.(check int) "lpns" 1024 (Ftl.lpn_count t);
  Alcotest.(check int) "advertised pages" 1024 (Ftl.logical_pages t);
  Alcotest.(check int) "physical blocks" 80 (Ftl.block_count t);
  Alcotest.(check int) "all free" 80 (Ftl.free_blocks t);
  Alcotest.(check int) "nothing valid" 0 (Ftl.valid_pages t)

let test_thin_provisioning () =
  let cfg = { cfg0 with Ftl.logical_capacity = 0.5 } in
  let t = in_fiber (fun eng -> Ftl.create eng ~cfg ~lpns:1024 ~rg:0) in
  (* Advertised capacity halves; the OP spare is sized off the advertised
     space, so the device shrinks with it. *)
  Alcotest.(check int) "lpn space unchanged" 1024 (Ftl.lpn_count t);
  Alcotest.(check int) "advertised pages" 512 (Ftl.logical_pages t);
  Alcotest.(check int) "physical blocks" 40 (Ftl.block_count t)

let test_prefill_seasons () =
  let cfg = { cfg0 with Ftl.prefill = 0.75 } in
  let t = in_fiber (fun eng -> Ftl.create eng ~cfg ~lpns:1024 ~rg:0) in
  Alcotest.(check int) "prefilled pages valid" 768 (Ftl.valid_pages t);
  (* Seasoning churns the aged span until the free pool sits at the
     GC-idle threshold, as on a long-written device. *)
  Alcotest.(check bool) "free pool drained to steady state" true
    (Ftl.free_blocks t < Ftl.block_count t - (768 / 16))

(* --- streams ------------------------------------------------------------ *)

let test_streams_separate_blocks () =
  let cfg = { cfg0 with Ftl.streams = 2 } in
  let t =
    in_fiber (fun eng ->
        let t = Ftl.create eng ~cfg ~lpns:1024 ~rg:0 in
        Ftl.host_write t [ (0, 0); (1, 1); (2, 0); (3, 1) ];
        t)
  in
  (* Pages written through different streams land in different open
     erase blocks; same stream shares a block. *)
  Alcotest.(check int) "stream 0 pages co-located" (Ftl.block_of_lpn t 0) (Ftl.block_of_lpn t 2);
  Alcotest.(check int) "stream 1 pages co-located" (Ftl.block_of_lpn t 1) (Ftl.block_of_lpn t 3);
  Alcotest.(check bool) "streams use distinct blocks" true
    (Ftl.block_of_lpn t 0 <> Ftl.block_of_lpn t 1);
  let per_stream = Ftl.stream_appended t in
  Alcotest.(check (array int)) "per-stream append counts" [| 2; 2; 0 |] per_stream

let test_stream_clamping () =
  let t =
    in_fiber (fun eng ->
        let t = Ftl.create eng ~cfg:cfg0 ~lpns:64 ~rg:0 in
        (* Out-of-range stream ids clamp instead of raising. *)
        Ftl.host_write t [ (0, -3); (1, 99) ];
        t)
  in
  Alcotest.(check int) "both pages mapped" 2 (Ftl.valid_pages t)

(* --- overwrite, trim, GC ------------------------------------------------ *)

let test_overwrite_and_trim () =
  let t =
    in_fiber (fun eng ->
        let t = Ftl.create eng ~cfg:cfg0 ~lpns:64 ~rg:0 in
        Ftl.host_write t [ (5, 0) ];
        Ftl.host_write t [ (5, 0) ];
        (* remap: old page dead *)
        Ftl.trim t ~lpn:9;
        (* unmapped: no-op *)
        Ftl.trim t ~lpn:5;
        t)
  in
  Alcotest.(check int) "trimmed page unmapped" (-1) (Ftl.block_of_lpn t 5);
  Alcotest.(check int) "nothing valid" 0 (Ftl.valid_pages t);
  Alcotest.(check int) "one effective trim" 1 (Ftl.trims t);
  Alcotest.(check int) "two host pages" 2 (Ftl.host_pages t)

let churn t spins lpns =
  let rng = Wafl_util.Rng.create ~seed:42 in
  for _ = 1 to spins do
    Ftl.host_write t [ (Wafl_util.Rng.int rng lpns, 0) ]
  done

let test_gc_reclaims () =
  let cfg = { cfg0 with Ftl.prefill = 0.9 } in
  let lpns = 1024 in
  let t =
    in_fiber (fun eng ->
        let t = Ftl.create eng ~cfg ~lpns ~rg:0 in
        (* Overwrite churn across a nearly-full device: the GC must
           relocate live pages to reclaim erase blocks. *)
        churn t 4096 (9 * lpns / 10);
        t)
  in
  Alcotest.(check bool) "gc relocated pages" true (Ftl.gc_pages t > 0);
  Alcotest.(check bool) "erases happened" true (Ftl.erases t > 0);
  Alcotest.(check bool) "waf above 1" true (Ftl.waf t > 1.0);
  Alcotest.(check bool) "wear recorded" true (Ftl.max_wear t >= 1);
  (* Valid count must track the mapped working set exactly. *)
  let mapped = ref 0 in
  for lpn = 0 to lpns - 1 do
    if Ftl.block_of_lpn t lpn >= 0 then incr mapped
  done;
  Alcotest.(check int) "valid = mapped" !mapped (Ftl.valid_pages t)

(* --- replay identity ---------------------------------------------------- *)

let run_history cfg ~lpns ops =
  in_fiber (fun eng ->
      let t = Ftl.create eng ~cfg ~lpns ~rg:0 in
      List.iter
        (fun op ->
          match op with
          | `Write pairs -> Ftl.host_write t pairs
          | `Trim lpn -> Ftl.trim t ~lpn)
        ops;
      Ftl.signature t)

let test_replay_identity_qcheck () =
  let lpns = 256 in
  let gen =
    QCheck2.Gen.(
      list_size (int_bound 200)
        (oneof
           [
             map
               (fun ps -> `Write ps)
               (list_size (int_bound 4) (pair (int_bound (lpns - 1)) (int_bound 2)));
             map (fun l -> `Trim l) (int_bound (lpns - 1));
           ]))
  in
  let cfg = { cfg0 with Ftl.prefill = 0.5; streams = 2 } in
  let test =
    QCheck2.Test.make ~count:30 ~name:"same seed + history -> same signature" gen (fun ops ->
        String.equal (run_history cfg ~lpns ops) (run_history cfg ~lpns ops))
  in
  QCheck_alcotest.to_alcotest test

let test_seed_changes_signature () =
  (* The victim-tie RNG and seasoning churn are seeded: a different seed
     yields a different physical layout for the same logical history. *)
  let ops = [ `Write [ (0, 0); (1, 0) ]; `Trim 0; `Write [ (2, 1) ] ] in
  let cfg = { cfg0 with Ftl.prefill = 0.5; streams = 2 } in
  let a = run_history cfg ~lpns:256 ops in
  let b = run_history { cfg with Ftl.seed = cfg.Ftl.seed + 1 } ~lpns:256 ops in
  Alcotest.(check bool) "signatures differ across seeds" true (not (String.equal a b))

(* --- temperature classifier --------------------------------------------- *)

let data ~fbn = Wafl_fs.Layout.Data { vol = 0; file = 1; fbn; content = 0L }

let test_temperature_classifier () =
  let classify = Wafl_core.Tetris.make_temperature_stream () in
  (* Metafile payloads are always hot. *)
  Alcotest.(check int) "bmap hot" 1
    (classify (Wafl_fs.Layout.Bmap { vol = 0; file = 1; index = 0; entries = [||] }));
  Alcotest.(check int) "aggmap hot" 1
    (classify (Wafl_fs.Layout.Agg_map { index = 0; words = [||] }));
  (* First sighting of a data block is cold. *)
  Alcotest.(check int) "first write cold" 0 (classify (data ~fbn:0));
  (* Track a population of blocks, then rewrite one immediately: its
     interval (1) is far below a uniform rewrite interval, so it is hot. *)
  for fbn = 1 to 63 do
    ignore (classify (data ~fbn))
  done;
  ignore (classify (data ~fbn:0));
  Alcotest.(check int) "rapid rewrite hot" 1 (classify (data ~fbn:0));
  (* A block not seen since the start of tracking reads as cold. *)
  Alcotest.(check int) "stale rewrite cold" 0 (classify (data ~fbn:1))

let () =
  Alcotest.run "wafl_flash"
    [
      ( "ftl",
        [
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "thin provisioning" `Quick test_thin_provisioning;
          Alcotest.test_case "prefill seasons to steady state" `Quick test_prefill_seasons;
          Alcotest.test_case "streams use separate blocks" `Quick test_streams_separate_blocks;
          Alcotest.test_case "stream ids clamp" `Quick test_stream_clamping;
          Alcotest.test_case "overwrite and trim" `Quick test_overwrite_and_trim;
          Alcotest.test_case "gc reclaims under churn" `Quick test_gc_reclaims;
          Alcotest.test_case "seed changes signature" `Quick test_seed_changes_signature;
          test_replay_identity_qcheck ();
        ] );
      ( "streams-policy",
        [ Alcotest.test_case "temperature classifier" `Quick test_temperature_classifier ] );
    ]
