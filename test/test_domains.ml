(* Multicore host execution: the domain pool, the partitioned engine,
   and the end-to-end byte-identity guarantee.

   The tentpole claim of the multicore work is that parallelism is pure
   mechanism — a run fanned over N worker domains returns exactly what
   the serial run returns, bit for bit.  These tests pin that claim at
   every layer: Pool.run/map/team (input-order merge, exception
   propagation, barrier reuse), Partition (conservative-lookahead
   bounds, deterministic cross-partition delivery order, QCheck replay
   identity on random message topologies), and the full harnesses
   (figs 4-9, overload, flash, crash seeds, fleet shard) at
   Exp.domains 1 vs 4 with polymorphic equality over the complete row
   structures, exactly like test_sanitize.ml does for the sanitizer. *)

module H = Wafl_harness
module Pool = Wafl_util.Pool
module Rng = Wafl_util.Rng
open Wafl_sim

let scale = 0.02

(* --- Pool ---------------------------------------------------------------- *)

let test_pool_input_order () =
  let tasks = List.init 23 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in input order regardless of completion order"
    (List.init 23 (fun i -> i * i))
    (Pool.run ~domains:4 tasks);
  Alcotest.(check (list int))
    "map matches List.map"
    (List.map (fun x -> x + 1) [ 5; 3; 8 ])
    (Pool.map ~domains:3 (fun x -> x + 1) [ 5; 3; 8 ])

let test_pool_more_domains_than_tasks () =
  Alcotest.(check (list int)) "domains > tasks" [ 7 ] (Pool.run ~domains:8 [ (fun () -> 7) ]);
  Alcotest.(check (list int)) "empty task list" [] (Pool.run ~domains:4 [])

exception Boom of int

let test_pool_exception_first_in_input_order () =
  let tasks =
    [
      (fun () -> 1);
      (fun () -> raise (Boom 2));
      (fun () -> 3);
      (fun () -> raise (Boom 4));
    ]
  in
  List.iter
    (fun domains ->
      match Pool.run ~domains tasks with
      | _ -> Alcotest.failf "expected Boom at %d domains" domains
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "first input-order exception at %d domains" domains)
            2 n)
    [ 1; 4 ]

let test_pool_team_batches () =
  let team = Pool.team ~domains:3 in
  Fun.protect ~finally:(fun () -> Pool.team_stop team) @@ fun () ->
  (* several barriers through the same persistent workers *)
  for batch = 1 to 5 do
    let n = 4 + batch in
    let out = Array.make n 0 in
    Pool.team_run team (List.init n (fun i () -> out.(i) <- (batch * 100) + i));
    Alcotest.(check (array int))
      (Printf.sprintf "batch %d: every task ran exactly once" batch)
      (Array.init n (fun i -> (batch * 100) + i))
      out
  done;
  (match Pool.team_run team [ (fun () -> raise (Boom 9)) ] with
  | () -> Alcotest.fail "expected Boom from team_run"
  | exception Boom 9 -> ()
  | exception e -> raise e);
  (* the team survives a failed batch *)
  let ok = ref false in
  Pool.team_run team [ (fun () -> ok := true) ];
  Alcotest.(check bool) "team usable after an exception batch" true !ok

let test_pool_default_domains () =
  Alcotest.(check bool) "default_domains >= 1" true (Pool.default_domains () >= 1)

(* --- Partition: conservative bounds and delivery order ------------------- *)

let test_partition_bounds () =
  let part = Partition.create ~parts:2 ~cores_per_part:1 ~lookahead:100.0 () in
  Alcotest.check_raises "delay below lookahead rejected"
    (Invalid_argument "Partition.post: delay below the conservative lookahead") (fun () ->
      Partition.post part ~src:0 ~dst:1 ~delay:50.0 (fun () -> ()));
  Alcotest.check_raises "dst out of range rejected"
    (Invalid_argument "Partition.post: dst out of range") (fun () ->
      Partition.post part ~src:0 ~dst:2 ~delay:100.0 (fun () -> ()));
  Partition.run ~until:500.0 part;
  Alcotest.(check (float 0.0)) "drained run jumps to until" 500.0 (Partition.now part);
  Alcotest.check_raises "until behind horizon rejected"
    (Invalid_argument "Partition.run: until is behind the horizon") (fun () ->
      Partition.run ~until:100.0 part)

let test_partition_delivery_order () =
  let part = Partition.create ~parts:2 ~cores_per_part:1 ~lookahead:10.0 () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  (* Same-time ties break by (src, per-source seq): s0 before s1, and
     within a source in send order. *)
  Partition.post part ~src:0 ~dst:1 ~delay:25.0 (mark "d25.s0q0");
  Partition.post part ~src:0 ~dst:1 ~delay:15.0 (mark "d15.s0q1");
  Partition.post part ~src:0 ~dst:1 ~delay:20.0 (mark "d20.s0q2");
  Partition.post part ~src:0 ~dst:1 ~delay:20.0 (mark "d20.s0q3");
  Partition.post part ~src:1 ~dst:1 ~delay:20.0 (mark "d20.s1q0");
  Partition.run ~until:100.0 part;
  Alcotest.(check (list string))
    "delivery sorted by (deliver, src, seq)"
    [ "d15.s0q1"; "d20.s0q2"; "d20.s0q3"; "d20.s1q0"; "d25.s0q0" ]
    (List.rev !log)

(* --- Partition: QCheck replay identity ----------------------------------- *)

(* A random cross-partition message topology: every partition runs a
   generator fiber that burns random virtual time, logs its progress,
   and posts closures (which log at the destination) to random
   partitions with random conservative delays.  The per-partition logs
   — values and virtual timestamps — must be byte-identical however
   many worker domains execute the windows. *)
let topology ~seed ~parts ~domains =
  let part = Partition.create ~parts ~cores_per_part:2 ~lookahead:50.0 () in
  let logs = Array.make parts [] in
  for pid = 0 to parts - 1 do
    let eng = Partition.engine part pid in
    ignore
      (Engine.spawn eng ~label:"gen" (fun () ->
           let rng = Rng.create ~seed:(seed + (pid * 7919)) in
           for i = 1 to 40 do
             Engine.consume (1.0 +. Rng.float rng 30.0);
             logs.(pid) <- (i, Engine.now eng) :: logs.(pid);
             if Rng.bool rng then begin
               let dst = Rng.int rng parts in
               let delay = 50.0 +. Rng.float rng 100.0 in
               Partition.post part ~src:pid ~dst ~delay (fun () ->
                   logs.(dst) <- (-i, Engine.now (Partition.engine part dst)) :: logs.(dst))
             end
           done))
  done;
  Partition.run ~domains ~until:2_500.0 part;
  Array.map List.rev logs

let prop_partition_replay_identical =
  QCheck.Test.make ~name:"partitioned runs replay identically across domain counts" ~count:30
    QCheck.(pair (int_bound 100_000) (int_range 2 4))
    (fun (seed, parts) ->
      topology ~seed ~parts ~domains:1 = topology ~seed ~parts ~domains:4)

(* --- harness byte-identity: Exp.domains 1 vs 4 --------------------------- *)

let with_domains n f =
  let saved = !H.Exp.domains in
  H.Exp.domains := n;
  Fun.protect ~finally:(fun () -> H.Exp.domains := saved) f

let check_fig name f =
  let serial = with_domains 1 f in
  let par = with_domains 4 f in
  (* Polymorphic equality over the full row structure: every counter,
     float and latency histogram must match exactly. *)
  Alcotest.(check bool) (name ^ ": 4-domain run bit-identical to serial") true (serial = par)

let test_fig4 () = check_fig "fig4" (fun () -> H.Fig4.run ~scale ())
let test_fig5 () = check_fig "fig5" (fun () -> H.Fig5.run ~scale ~thread_counts:[ 1; 4 ] ())
let test_fig6 () = check_fig "fig6" (fun () -> H.Fig6.run ~scale ())
let test_fig7 () = check_fig "fig7" (fun () -> H.Fig7.run ~scale ())
let test_fig8 () = check_fig "fig8" (fun () -> H.Fig8.run ~scale ())
let test_fig9 () = check_fig "fig9" (fun () -> H.Fig9.run ~scale ~levels:2 ())
let test_overload () = check_fig "overload" (fun () -> H.Overload.run ~scale ())
let test_flash () = check_fig "flash" (fun () -> H.Flash.run ~scale ())

let test_crash_seeds () =
  let run domains =
    H.Crash.run_seeds ~ops:20_000 ~horizon:20_000.0 ~domains ~first_seed:1 ~count:5 ()
  in
  let serial = run 1 and par = run 4 in
  Alcotest.(check bool) "crash: all seeds pass" true (List.for_all H.Crash.passed par);
  Alcotest.(check bool) "crash: 4-domain outcomes bit-identical" true (serial = par)

let test_shard_digest () =
  let digest domains = H.Shard.digest (H.Shard.run ~scale:0.1 ~shards:3 ~domains ()) in
  let d1 = digest 1 in
  Alcotest.(check string) "shard: 2-domain digest identical" d1 (digest 2);
  Alcotest.(check string) "shard: 4-domain digest identical" d1 (digest 4);
  let o = H.Shard.run ~scale:0.1 ~shards:3 ~domains:4 () in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (H.Shard.shapes o)

let () =
  Alcotest.run "domains"
    [
      ( "pool",
        [
          Alcotest.test_case "input-order merge" `Quick test_pool_input_order;
          Alcotest.test_case "more domains than tasks" `Quick test_pool_more_domains_than_tasks;
          Alcotest.test_case "first exception wins" `Quick test_pool_exception_first_in_input_order;
          Alcotest.test_case "persistent team batches" `Quick test_pool_team_batches;
          Alcotest.test_case "default domain count" `Quick test_pool_default_domains;
        ] );
      ( "partition",
        [
          Alcotest.test_case "conservative bounds" `Quick test_partition_bounds;
          Alcotest.test_case "delivery order" `Quick test_partition_delivery_order;
          QCheck_alcotest.to_alcotest ~verbose:false prop_partition_replay_identical;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "overload" `Slow test_overload;
          Alcotest.test_case "flash" `Slow test_flash;
          Alcotest.test_case "crash five seeds" `Slow test_crash_seeds;
          Alcotest.test_case "fleet shard digest" `Slow test_shard_digest;
        ] );
    ]
