(* Tests for the Hierarchical Waffinity scheduler: hierarchy relations,
   exclusion rules, parallelism of disjoint affinities, FIFO fairness. *)

open Wafl_sim
open Wafl_waffinity

(* --- Affinity hierarchy --- *)

let test_parent_chain () =
  let open Affinity in
  Alcotest.(check bool) "serial is root" true (parent Serial = None);
  Alcotest.(check bool) "stripe chain" true
    (ancestors (Stripe (0, 1, 2))
    = [ Volume_logical (0, 1); Volume (0, 1); Aggregate 0; Serial ]);
  Alcotest.(check bool) "agg range chain" true
    (ancestors (Agg_range (0, 3)) = [ Aggregate_vbn 0; Aggregate 0; Serial ])

let test_conflicts () =
  let open Affinity in
  (* An affinity conflicts with itself, ancestors and descendants. *)
  Alcotest.(check bool) "self" true (conflicts Serial Serial);
  Alcotest.(check bool) "ancestor" true (conflicts (Volume (0, 1)) (Stripe (0, 1, 5)));
  Alcotest.(check bool) "descendant" true (conflicts (Stripe (0, 1, 5)) (Volume (0, 1)));
  Alcotest.(check bool) "serial vs anything" true (conflicts Serial (Vol_range (0, 2, 3)));
  (* Siblings and cousins run in parallel. *)
  Alcotest.(check bool) "two stripes" false (conflicts (Stripe (0, 1, 1)) (Stripe (0, 1, 2)));
  Alcotest.(check bool) "two volumes" false (conflicts (Volume (0, 1)) (Volume (0, 2)));
  Alcotest.(check bool) "logical vs vbn (the Figure 1 example)" false
    (conflicts (Volume_logical (0, 1)) (Volume_vbn (0, 1)));
  Alcotest.(check bool) "stripe vs vol range" false
    (conflicts (Stripe (0, 1, 0)) (Vol_range (0, 1, 0)));
  Alcotest.(check bool) "agg vbn vs volume" false
    (conflicts (Aggregate_vbn 0) (Volume (0, 1)));
  Alcotest.(check bool) "different aggregates" false (conflicts (Aggregate 0) (Aggregate 1))

let prop_conflicts_symmetric =
  let arb =
    QCheck.make
      (QCheck.Gen.oneof
         [
           QCheck.Gen.return Affinity.Serial;
           QCheck.Gen.map (fun a -> Affinity.Aggregate (a mod 2)) QCheck.Gen.nat;
           QCheck.Gen.map (fun a -> Affinity.Aggregate_vbn (a mod 2)) QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a r -> Affinity.Agg_range (a mod 2, r mod 3)) QCheck.Gen.nat QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a v -> Affinity.Volume (a mod 2, v mod 3)) QCheck.Gen.nat QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a v -> Affinity.Volume_logical (a mod 2, v mod 3)) QCheck.Gen.nat QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a v -> Affinity.Stripe (a mod 2, v mod 3, a mod 5)) QCheck.Gen.nat QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a v -> Affinity.Volume_vbn (a mod 2, v mod 3)) QCheck.Gen.nat QCheck.Gen.nat;
           QCheck.Gen.map2 (fun a v -> Affinity.Vol_range (a mod 2, v mod 3, a mod 5)) QCheck.Gen.nat QCheck.Gen.nat;
         ])
  in
  QCheck.Test.make ~name:"conflicts is symmetric" ~count:300 (QCheck.pair arb arb)
    (fun (x, y) -> Affinity.conflicts x y = Affinity.conflicts y x)

(* --- Scheduler --- *)

let run_sched ?(cores = 8) ?workers f =
  let eng = Engine.create ~cores () in
  let sched = Scheduler.create ?workers eng ~cost:Cost.default () in
  f eng sched;
  Engine.run eng;
  sched

let test_messages_execute () =
  let count = ref 0 in
  let sched =
    run_sched (fun _eng sched ->
        for i = 0 to 9 do
          Scheduler.post sched
            ~affinity:(Affinity.Stripe (0, 0, i mod 4))
            ~label:"client"
            (fun () -> incr count)
        done)
  in
  Alcotest.(check int) "all executed" 10 !count;
  Alcotest.(check int) "stat agrees" 10 (Scheduler.executed_total sched)

let test_same_affinity_serializes () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let concurrent = ref 0 and max_concurrent = ref 0 in
  for _ = 1 to 5 do
    Scheduler.post sched ~affinity:(Affinity.Volume_vbn (0, 0)) ~label:"infra" (fun () ->
        incr concurrent;
        if !concurrent > !max_concurrent then max_concurrent := !concurrent;
        Engine.consume 10.0;
        decr concurrent)
  done;
  Engine.run eng;
  Alcotest.(check int) "one at a time" 1 !max_concurrent

let test_disjoint_affinities_parallel () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let concurrent = ref 0 and max_concurrent = ref 0 in
  let body () =
    incr concurrent;
    if !concurrent > !max_concurrent then max_concurrent := !concurrent;
    Engine.consume 50.0;
    decr concurrent
  in
  for s = 0 to 3 do
    Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, s)) ~label:"client" body
  done;
  Engine.run eng;
  Alcotest.(check int) "four stripes in parallel" 4 !max_concurrent

let test_ancestor_excludes_descendants () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let trace = ref [] in
  Scheduler.post sched ~affinity:(Affinity.Volume (0, 0)) ~label:"a" (fun () ->
      trace := "volume-start" :: !trace;
      Engine.consume 100.0;
      trace := "volume-end" :: !trace);
  (* Posted later, but must not start while the parent Volume runs. *)
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 1)) ~label:"b" (fun () ->
      trace := "stripe" :: !trace);
  Scheduler.post sched ~affinity:(Affinity.Volume_vbn (0, 0)) ~label:"c" (fun () ->
      trace := "volume-vbn" :: !trace);
  (* A different volume's work is unaffected and may run concurrently. *)
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 1, 0)) ~label:"d" (fun () ->
      trace := "other-vol" :: !trace);
  Engine.run eng;
  let t = List.rev !trace in
  let index x = ref (-1) |> fun r -> List.iteri (fun i y -> if x = y && !r < 0 then r := i) t; !r in
  Alcotest.(check bool) "stripe after volume end" true (index "stripe" > index "volume-end");
  Alcotest.(check bool) "volume-vbn after volume end" true
    (index "volume-vbn" > index "volume-end");
  Alcotest.(check bool) "other volume before volume end" true
    (index "other-vol" < index "volume-end")

let test_running_child_blocks_parent () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let trace = ref [] in
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"child" (fun () ->
      trace := "child-start" :: !trace;
      Engine.consume 100.0;
      trace := "child-end" :: !trace);
  Scheduler.post sched ~affinity:Affinity.Serial ~label:"parent" (fun () ->
      trace := "serial" :: !trace);
  Engine.run eng;
  Alcotest.(check (list string)) "serial waits for child"
    [ "child-start"; "child-end"; "serial" ]
    (List.rev !trace)

let test_serial_blocks_everything () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let order = ref [] in
  Scheduler.post sched ~affinity:Affinity.Serial ~label:"serial" (fun () ->
      order := "serial" :: !order;
      Engine.consume 50.0);
  Scheduler.post sched ~affinity:(Affinity.Agg_range (0, 0)) ~label:"x" (fun () ->
      order := "range" :: !order);
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 5, 3)) ~label:"y" (fun () ->
      order := "stripe" :: !order);
  Engine.run eng;
  Alcotest.(check string) "serial first" "serial" (List.nth (List.rev !order) 0)

let test_worker_cap () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create ~workers:2 eng ~cost:Cost.default () in
  let concurrent = ref 0 and max_concurrent = ref 0 in
  for s = 0 to 5 do
    Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, s)) ~label:"w" (fun () ->
        incr concurrent;
        if !concurrent > !max_concurrent then max_concurrent := !concurrent;
        Engine.consume 10.0;
        decr concurrent)
  done;
  Engine.run eng;
  Alcotest.(check int) "bounded by workers" 2 !max_concurrent

let test_post_wait_returns_value () =
  let eng = Engine.create ~cores:4 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let got = ref 0 in
  ignore
    (Engine.spawn eng ~label:"caller" (fun () ->
         got :=
           Scheduler.post_wait sched ~affinity:(Affinity.Volume_logical (0, 0)) ~label:"m"
             (fun () ->
               Engine.consume 5.0;
               41 + 1)));
  Engine.run eng;
  Alcotest.(check int) "value returned" 42 !got

let test_fifo_among_equal_affinities () =
  let eng = Engine.create ~cores:1 () in
  let sched = Scheduler.create ~workers:1 eng ~cost:Cost.default () in
  let order = ref [] in
  for i = 0 to 4 do
    Scheduler.post sched ~affinity:(Affinity.Volume_vbn (0, 0)) ~label:"m" (fun () ->
        order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_blocked_message_does_not_block_younger_compatible () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let order = ref [] in
  (* Long-running stripe blocks a Serial message; a later, unrelated
     aggregate's message must still be granted (no head-of-line block). *)
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"a" (fun () ->
      Engine.consume 100.0;
      order := "long-stripe" :: !order);
  Scheduler.post sched ~affinity:Affinity.Serial ~label:"b" (fun () ->
      order := "serial" :: !order);
  Scheduler.post sched ~affinity:(Affinity.Aggregate 1) ~label:"c" (fun () ->
      order := "agg1" :: !order);
  Engine.run eng;
  Alcotest.(check string) "agg1 ran first" "agg1" (List.nth (List.rev !order) 0)

let test_executed_by_kind () =
  let sched =
    run_sched (fun _eng sched ->
        Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"x" (fun () -> ());
        Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 1)) ~label:"x" (fun () -> ());
        Scheduler.post sched ~affinity:(Affinity.Agg_range (0, 0)) ~label:"x" (fun () -> ()))
  in
  Alcotest.(check (list (pair string int)))
    "kind counts"
    [ ("agg_range", 1); ("stripe", 2) ]
    (Scheduler.executed_by_kind sched)

let test_drain () =
  let eng = Engine.create ~cores:4 () in
  let sched = Scheduler.create eng ~cost:Cost.default () in
  let drained_after = ref false in
  let done_count = ref 0 in
  for s = 0 to 3 do
    Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, s)) ~label:"w" (fun () ->
        Engine.consume 25.0;
        incr done_count)
  done;
  ignore
    (Engine.spawn eng ~label:"waiter" (fun () ->
         Scheduler.drain sched;
         drained_after := !done_count = 4));
  Engine.run eng;
  Alcotest.(check bool) "drain saw all done" true !drained_after

(* With one worker every message serializes, so execution order is
   exactly the grant order: for always-grantable (disjoint) affinities
   the dispatcher must pop oldest-posted-first across nodes. *)
let test_fifo_across_nodes () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create ~workers:1 eng ~cost:Cost.default () in
  let order = ref [] in
  for i = 0 to 19 do
    Scheduler.post sched
      ~affinity:(Affinity.Stripe (0, 0, i))
      ~label:"m"
      (fun () ->
        Engine.consume 5.0;
        order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "oldest grantable first" (List.init 20 Fun.id) (List.rev !order)

(* A message that keeps reposting to its own node must not starve an
   older message on another node: each repost gets a fresh (younger)
   sequence number, so the victim's turn comes at the next grant. *)
let test_no_starvation_under_repost_stream () =
  let eng = Engine.create ~cores:8 () in
  let sched = Scheduler.create ~workers:1 eng ~cost:Cost.default () in
  let order = ref [] in
  let reposts = ref 0 in
  let rec chain () =
    order := "chain" :: !order;
    Engine.consume 10.0;
    if !reposts < 20 then begin
      incr reposts;
      Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"chain" (fun () ->
          chain ())
    end
  in
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"chain" (fun () -> chain ());
  Scheduler.post sched
    ~affinity:(Affinity.Stripe (0, 0, 1))
    ~label:"victim"
    (fun () -> order := "victim" :: !order);
  Engine.run eng;
  let executed = List.rev !order in
  let pos = ref (-1) in
  List.iteri (fun i x -> if x = "victim" then pos := i) executed;
  Alcotest.(check int) "all links and the victim ran" 22 (List.length executed);
  Alcotest.(check bool)
    (Printf.sprintf "victim ran at grant %d, not after the stream" !pos)
    true
    (!pos >= 0 && !pos <= 1)

(* The worker pool recycles fibers across messages; replaying the same
   posts must reproduce the same execution intervals bit-for-bit (the
   property the figure-level identity tests rely on, in isolation). *)
let prop_scheduler_replay_identical =
  let affinity_of r =
    match Wafl_util.Rng.int r 4 with
    | 0 -> Affinity.Stripe (0, 0, Wafl_util.Rng.int r 4)
    | 1 -> Affinity.Volume (0, Wafl_util.Rng.int r 2)
    | 2 -> Affinity.Agg_range (0, Wafl_util.Rng.int r 3)
    | _ -> Affinity.Serial
  in
  QCheck.Test.make ~name:"worker pool replays identically" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let run_once () =
        let r = Wafl_util.Rng.create ~seed in
        let eng = Engine.create ~cores:(1 + Wafl_util.Rng.int r 7) () in
        let sched =
          Scheduler.create ~workers:(1 + Wafl_util.Rng.int r 7) eng ~cost:Cost.default ()
        in
        let log = ref [] in
        for i = 0 to 29 do
          let aff = affinity_of r in
          Scheduler.post sched ~affinity:aff ~label:"m" (fun () ->
              let t0 = Engine.now eng in
              Engine.consume (1.0 +. Wafl_util.Rng.float r 20.0);
              log := (i, t0, Engine.now eng) :: !log)
        done;
        Engine.run eng;
        !log
      in
      run_once () = run_once ())

(* --- Classical Waffinity (SIII-B) --- *)

let test_classical_mapping () =
  let open Classical in
  (* Data ops in different stripes parallelize. *)
  Alcotest.(check bool) "different stripes parallel" true
    (parallelizable (User_data { volume = 0; fbn = 0 })
       (User_data { volume = 0; fbn = default_stripe_blocks }));
  (* Same stripe serializes. *)
  Alcotest.(check bool) "same stripe serializes" false
    (parallelizable (User_data { volume = 0; fbn = 0 }) (User_data { volume = 0; fbn = 1 }));
  (* Anything involving metadata excludes everything. *)
  Alcotest.(check bool) "metadata blocks data" false
    (parallelizable Metadata (User_data { volume = 0; fbn = 0 }));
  Alcotest.(check bool) "metadata blocks metadata" false (parallelizable Metadata Metadata);
  Alcotest.(check bool) "spanning ops serialize" false
    (parallelizable (Spanning { volume = 0 }) (Spanning { volume = 1 }))

let test_classical_stripe_rotation () =
  let open Classical in
  (* Stripes rotate: fbn ranges [0, sb) and [sb*stripes, sb*(stripes+1))
     map to the same Stripe affinity instance. *)
  let a0 = affinity_of ~aggregate:0 (User_data { volume = 3; fbn = 0 }) in
  let a_wrap =
    affinity_of ~aggregate:0
      (User_data { volume = 3; fbn = default_stripe_blocks * default_stripes })
  in
  Alcotest.(check bool) "rotation wraps" true (a0 = a_wrap);
  match a0 with
  | Affinity.Stripe (0, 3, 0) -> ()
  | other -> Alcotest.failf "unexpected affinity %s" (Format.asprintf "%a" Affinity.pp other)

(* Property: whatever is posted, two conflicting affinities never execute
   concurrently.  Messages record their (start, end, affinity) intervals
   in virtual time; afterwards every overlapping pair must be
   conflict-free. *)
let prop_no_conflicting_coschedule =
  let gen_aff =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return Affinity.Serial;
        QCheck.Gen.map (fun a -> Affinity.Aggregate (a mod 2)) QCheck.Gen.nat;
        QCheck.Gen.map (fun a -> Affinity.Aggregate_vbn (a mod 2)) QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a r -> Affinity.Agg_range (a mod 2, r mod 3)) QCheck.Gen.nat QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a v -> Affinity.Volume (a mod 2, v mod 2)) QCheck.Gen.nat QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a v -> Affinity.Volume_logical (a mod 2, v mod 2)) QCheck.Gen.nat QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a v -> Affinity.Stripe (a mod 2, v mod 2, a mod 4)) QCheck.Gen.nat QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a v -> Affinity.Volume_vbn (a mod 2, v mod 2)) QCheck.Gen.nat QCheck.Gen.nat;
        QCheck.Gen.map2 (fun a v -> Affinity.Vol_range (a mod 2, v mod 2, a mod 4)) QCheck.Gen.nat QCheck.Gen.nat;
      ]
  in
  QCheck.Test.make ~name:"conflicting affinities never co-scheduled" ~count:100
    QCheck.(pair (int_bound 10_000) (list_of_size Gen.(5 -- 40) (QCheck.make gen_aff)))
    (fun (seed, affs) ->
      let r = Wafl_util.Rng.create ~seed in
      let eng = Engine.create ~cores:(2 + Wafl_util.Rng.int r 6) () in
      let sched = Scheduler.create eng ~cost:Cost.default () in
      let intervals = ref [] in
      List.iter
        (fun aff ->
          let work = 1.0 +. Wafl_util.Rng.float r 25.0 in
          Scheduler.post sched ~affinity:aff ~label:"m" (fun () ->
              let t0 = Engine.now eng in
              Engine.consume work;
              intervals := (aff, t0, Engine.now eng) :: !intervals))
        affs;
      Engine.run eng;
      let overlap (_, s1, e1) (_, s2, e2) = s1 < e2 && s2 < e1 in
      let pairs_ok = ref true in
      let rec check = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                let (a1, _, _) = x and (a2, _, _) = y in
                if overlap x y && Affinity.conflicts a1 a2 then pairs_ok := false)
              rest;
            check rest
      in
      check !intervals;
      !pairs_ok && List.length !intervals = List.length affs)

let () =
  Alcotest.run "wafl_waffinity"
    [
      ( "affinity",
        [
          Alcotest.test_case "parent chains" `Quick test_parent_chain;
          Alcotest.test_case "conflict matrix" `Quick test_conflicts;
          QCheck_alcotest.to_alcotest ~verbose:false prop_conflicts_symmetric;
        ] );
      ( "classical",
        [
          Alcotest.test_case "operation mapping" `Quick test_classical_mapping;
          Alcotest.test_case "stripe rotation" `Quick test_classical_stripe_rotation;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "messages execute" `Quick test_messages_execute;
          Alcotest.test_case "same affinity serializes" `Quick test_same_affinity_serializes;
          Alcotest.test_case "disjoint affinities parallel" `Quick
            test_disjoint_affinities_parallel;
          Alcotest.test_case "ancestor excludes descendants" `Quick
            test_ancestor_excludes_descendants;
          Alcotest.test_case "running child blocks parent" `Quick
            test_running_child_blocks_parent;
          Alcotest.test_case "serial blocks everything" `Quick test_serial_blocks_everything;
          Alcotest.test_case "worker cap" `Quick test_worker_cap;
          Alcotest.test_case "post_wait returns value" `Quick test_post_wait_returns_value;
          Alcotest.test_case "FIFO across nodes (1 worker)" `Quick test_fifo_across_nodes;
          Alcotest.test_case "no starvation under repost stream" `Quick
            test_no_starvation_under_repost_stream;
          QCheck_alcotest.to_alcotest ~verbose:false prop_scheduler_replay_identical;
          Alcotest.test_case "FIFO among equal affinities" `Quick
            test_fifo_among_equal_affinities;
          Alcotest.test_case "no head-of-line blocking" `Quick
            test_blocked_message_does_not_block_younger_compatible;
          Alcotest.test_case "executed by kind" `Quick test_executed_by_kind;
          Alcotest.test_case "drain" `Quick test_drain;
          QCheck_alcotest.to_alcotest ~verbose:false prop_no_conflicting_coschedule;
        ] );
    ]
