(* End-to-end sanitizer runs: every paper experiment (figs 4-9) and the
   randomized crash harness, executed small-scale with the race detector
   and isolation checker enabled, must (a) report zero races and raise
   zero isolation violations, and (b) produce bit-identical results to
   the unsanitized run — probes must never consume virtual time or
   perturb scheduling. *)

module H = Wafl_harness
module Driver = Wafl_workload.Driver

let scale = 0.02

(* Runs [f] unsanitized then sanitized; returns both values.  The global
   flag is always restored so test order cannot leak. *)
let both f =
  H.Exp.sanitize := false;
  let off = f () in
  H.Exp.sanitize := true;
  let on = Fun.protect ~finally:(fun () -> H.Exp.sanitize := false) f in
  (off, on)

let check_fig name f races_of =
  let off, on = both f in
  Alcotest.(check int) (name ^ ": zero race reports under sanitize") 0 (races_of on);
  (* Polymorphic equality over the full row structure: every counter,
     float and latency histogram must match exactly. *)
  Alcotest.(check bool) (name ^ ": sanitized run bit-identical") true (off = on)

let sum_results races rows = List.fold_left (fun acc r -> acc + races r) 0 rows
let perms_races = sum_results (fun (r : H.Perms.row) -> r.H.Perms.result.Driver.races)

let test_fig4 () = check_fig "fig4" (fun () -> H.Fig4.run ~scale ()) perms_races

let test_fig5 () =
  check_fig "fig5"
    (fun () -> H.Fig5.run ~scale ~thread_counts:[ 1; 4 ] ())
    (sum_results (fun (r : H.Fig5.row) -> r.H.Fig5.result.Driver.races))

let test_fig6 () =
  check_fig "fig6"
    (fun () -> H.Fig6.run ~scale ())
    (sum_results (fun (r : H.Fig6.row) -> r.H.Fig6.result.Driver.races))

let test_fig7 () = check_fig "fig7" (fun () -> H.Fig7.run ~scale ()) perms_races

let test_fig8 () =
  check_fig "fig8"
    (fun () -> H.Fig8.run ~scale ())
    (sum_results (fun (r : H.Fig8.row) ->
         r.H.Fig8.peak.Driver.races + r.H.Fig8.knee.Driver.races))

let test_fig9 () =
  check_fig "fig9"
    (fun () -> H.Fig9.run ~scale ~levels:2 ())
    (sum_results (fun (s : H.Fig9.series) ->
         sum_results (fun (p : H.Fig9.point) -> p.H.Fig9.result.Driver.races) s.H.Fig9.points))

(* The crash harness spins up two engines per seed (run + recovery); both
   must stay silent, and the whole outcome must be unaffected. *)
(* Enough concurrent clients to grow and recycle the scheduler's worker
   pool: the sanitizer must stay silent and the outcome must match the
   unsanitized run exactly. *)
let test_worker_pool_churn () =
  let spec = { (H.Exp.spec_base ~scale:0.02) with Driver.clients = 24; seed = 11 } in
  let off, on =
    both (fun () ->
        Driver.run { spec with Driver.sanitize = !H.Exp.sanitize })
  in
  Alcotest.(check int) "pool churn: zero race reports" 0 on.Driver.races;
  Alcotest.(check bool) "pool churn: sanitized run bit-identical" true (off = on)

let test_crash_seeds () =
  let run sanitize =
    H.Crash.run_seeds ~ops:20_000 ~horizon:20_000.0 ~sanitize ~first_seed:1 ~count:5 ()
  in
  let off = run false and on = run true in
  Alcotest.(check int) "crash: zero race reports under sanitize" 0
    (List.fold_left (fun acc o -> acc + o.H.Crash.races) 0 on);
  Alcotest.(check bool) "crash: all seeds still pass" true (List.for_all H.Crash.passed on);
  Alcotest.(check bool) "crash: sanitized outcomes bit-identical" true (off = on)

let () =
  Alcotest.run "sanitize"
    [
      ( "experiments",
        [
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "worker-pool churn" `Slow test_worker_pool_churn ] );
      ("crash", [ Alcotest.test_case "five seeds" `Slow test_crash_seeds ]);
    ]
