(* Negative fixture for wafl_lint: every construct below must be flagged.
   This file has no dune stanza — it is never compiled, only parsed by
   the lint self-check in `make lint`. *)

let _bad_entropy () = Random.self_init ()
let _bad_clock () = Unix.gettimeofday ()
let _bad_cpu_clock () = Sys.time ()
let _bad_order tbl = Hashtbl.iter (fun _ v -> print_int v) tbl
let _bad_fold tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let _bad_mutation agg = Wafl_fs.Aggregate.commit_alloc_pvbn agg 42
let _bad_raw_event sink ev = Wafl_obs.Sink.record sink ev
let _bad_raw_flow t = Wafl_obs.Trace.capture t ~kind:"smuggled"
let _bad_raw_restore t h = Wafl_obs.Trace.restore t ~kind:"smuggled" h
let _bad_raw_reset t = Wafl_obs.Trace.fiber_reset t
let _bad_raw_health t ev = Wafl_obs.Health.emit t ev

(* Suppressed: the fold result is sorted before use. lint-ok *)
let _ok_fold tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let _bad_catch_all f = try f () with _ -> ()
let _bad_catch_alias f = try f () with _ as _e -> ()
let _bad_catch_or f = try f () with Not_found | _ -> ()
let _bad_match_exception f = match f () with x -> x | exception _ -> 0

(* Suppressed: the caller re-checks the invariant. lint-ok *)
let _ok_catch_all f = try f () with _ -> ()
let _ok_specific f = try f () with Not_found -> ()
