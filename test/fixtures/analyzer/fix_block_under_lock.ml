(* Positive fixture: blocking primitives reached while a mutex is held —
   directly (Engine.sleep between lock and unlock) and transitively
   (a helper that sleeps, called under the lock). *)
open Wafl_sim

let slow_path () = Engine.sleep 5.0

let direct m =
  Sync.Mutex.lock m;
  Engine.sleep 1.0;
  Sync.Mutex.unlock m

let indirect m =
  Sync.Mutex.lock m;
  slow_path ();
  Sync.Mutex.unlock m
