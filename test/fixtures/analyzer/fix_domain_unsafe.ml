(* Positive fixture for the domain-safety pass: module-level mutable
   state written from closures the worker-domain pool executes.  The
   analyzer must flag the bare counter, the captured accumulator, and
   the named worker function — and stay silent on the mutex-guarded
   twin, which follows the sanctioned host-locking discipline. *)

let racy_hits = ref 0

(* Unguarded: every worker domain increments the module-level counter. *)
let run_racy xs =
  Wafl_util.Pool.map ~domains:4
    (fun x ->
      racy_hits := !racy_hits + x;
      x)
    xs

(* Unguarded capture: a host local smuggled across the pool boundary. *)
let run_captured xs =
  let acc = ref 0 in
  ignore (Wafl_util.Pool.map ~domains:4 (fun x -> acc := !acc + x) xs);
  !acc

let named_total = ref 0
let named_worker x = named_total := !named_total + x

(* The named function reaches the pool by value, not as a lambda. *)
let run_named xs = Wafl_util.Pool.map ~domains:4 named_worker xs

(* Guarded twin: same shape under a host mutex — must not be flagged. *)
let guarded_total = ref 0
let guard = Mutex.create ()

let run_guarded xs =
  Wafl_util.Pool.map ~domains:4
    (fun x ->
      Mutex.lock guard;
      guarded_total := !guarded_total + x;
      Mutex.unlock guard;
      x)
    xs
