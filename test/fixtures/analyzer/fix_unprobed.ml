(* Positive fixture: shared mutable state reached from two spawned
   fibers with no Engine.probe declaration anywhere in the unit.  The
   analyzer must flag the module-level ref, the mutable record field,
   and the local ref captured by both closures. *)
open Wafl_sim

let hits = ref 0

type acc = { mutable total : int }

let shared = { total = 0 }

let start eng =
  ignore
    (Engine.spawn eng ~label:"a" (fun () ->
         incr hits;
         shared.total <- shared.total + 1));
  ignore
    (Engine.spawn eng ~label:"b" (fun () ->
         incr hits;
         shared.total <- shared.total + 1))

let start_captured eng =
  let local = ref 0 in
  ignore (Engine.spawn eng ~label:"a" (fun () -> incr local));
  ignore (Engine.spawn eng ~label:"b" (fun () -> incr local));
  fun () -> !local
