(* Negative fixture: the same sharing shapes as Fix_unprobed, but every
   spawned context declares its touches with Engine.probe_atomic — the
   analyzer must report nothing for this unit. *)
open Wafl_sim

let hits = ref 0

type acc = { mutable total : int }

let shared = { total = 0 }

let start eng =
  ignore
    (Engine.spawn eng ~label:"a" (fun () ->
         Engine.probe_atomic eng ~shared:"fix.counter";
         incr hits;
         shared.total <- shared.total + 1));
  ignore
    (Engine.spawn eng ~label:"b" (fun () ->
         Engine.probe_atomic eng ~shared:"fix.counter";
         incr hits;
         shared.total <- shared.total + 1))

let consistent a b =
  Sync.Mutex.lock a;
  Sync.Mutex.lock b;
  Sync.Mutex.unlock b;
  Sync.Mutex.unlock a
