(* Positive fixture: AB/BA lock ordering — a classic deadlock shape the
   lock-order pass must report as a cycle. *)
open Wafl_sim

let ab a b =
  Sync.Mutex.lock a;
  Sync.Mutex.lock b;
  Sync.Mutex.unlock b;
  Sync.Mutex.unlock a

let ba a b =
  Sync.Mutex.lock b;
  Sync.Mutex.lock a;
  Sync.Mutex.unlock a;
  Sync.Mutex.unlock b
