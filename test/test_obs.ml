(* Wafl_obs: span tracer, metrics registry, trace export and the
   off-vs-on bit-identity guarantee.

   The subsystem's contract has three legs: (1) spans and the
   virtual-CPU profile attribute correctly across fiber switches,
   (2) the Chrome trace-event export is well-formed JSON and
   deterministic for a given seed, and (3) attaching a tracer never
   changes simulation results — every paper experiment must be
   bit-identical with tracing on and off. *)

module H = Wafl_harness
module Driver = Wafl_workload.Driver
module Engine = Wafl_sim.Engine
module Trace = Wafl_obs.Trace
module Metrics = Wafl_obs.Metrics
module Json = Wafl_obs.Json

(* --- spans and the virtual-CPU profile ----------------------------------- *)

let profile_total rows key =
  match List.find_opt (fun (k, _, _) -> k = key) rows with
  | Some (_, total, _) -> total
  | None -> 0.0

let test_span_nesting () =
  let eng = Engine.create ~cores:2 () in
  let t = Trace.create ~sample_interval:0.0 eng in
  ignore
    (Engine.spawn eng ~label:"a" (fun () ->
         Trace.with_span t ~cat:"test" ~name:"outer" (fun () ->
             Engine.consume 5.0;
             Trace.with_span t ~cat:"test" ~name:"inner" (fun () ->
                 Engine.consume 7.0;
                 (* A sleep switches fibers mid-span: frames are per-fiber,
                    so attribution must survive the interleaving. *)
                 Engine.sleep 3.0;
                 Engine.consume 2.0))));
  ignore
    (Engine.spawn eng ~label:"b" (fun () ->
         Trace.with_span t ~cat:"test" ~name:"other" (fun () -> Engine.consume 11.0);
         Engine.consume 1.0));
  Engine.run eng;
  let rows = Trace.profile_rows t in
  Alcotest.(check (float 1e-6)) "outer self-charges" 5.0 (profile_total rows "outer");
  Alcotest.(check (float 1e-6)) "nested stack path" 9.0 (profile_total rows "outer/inner");
  Alcotest.(check (float 1e-6)) "sibling fiber" 11.0 (profile_total rows "other");
  Alcotest.(check (float 1e-6)) "outside any span" 1.0 (profile_total rows "fiber:b");
  Alcotest.(check int) "three span events" 3 (Trace.event_count t);
  (* The table renders without blowing up and mentions the hot row. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let tbl = Trace.profile_table ~top:2 t in
  Alcotest.(check bool) "table has top row" true (contains tbl "other")

let test_span_exception () =
  let eng = Engine.create ~cores:1 () in
  let t = Trace.create ~sample_interval:0.0 eng in
  ignore
    (Engine.spawn eng ~label:"boom" (fun () ->
         (try Trace.with_span t ~cat:"test" ~name:"raises" (fun () -> raise Exit)
          with Exit -> ());
         (* The frame must have been popped: this charge is span-free. *)
         Engine.consume 4.0));
  Engine.run eng;
  Alcotest.(check int) "span recorded despite raise" 1 (Trace.event_count t);
  Alcotest.(check (float 1e-6)) "stack popped on raise" 4.0
    (profile_total (Trace.profile_rows t) "fiber:boom")

(* --- metrics registry ---------------------------------------------------- *)

let test_metrics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  (* Find-or-create: the same name is the same instrument. *)
  Metrics.incr (Metrics.counter m "a.count");
  Alcotest.(check (float 1e-9)) "counter accumulates" 6.0 (Metrics.counter_value m "a.count");
  let g = Metrics.gauge m "b.gauge" in
  Metrics.set g 3.0;
  Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 2.5 (Metrics.gauge_value m "b.gauge");
  let h = Metrics.histogram m "c.histo" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  (match Metrics.histo m "c.histo" with
  | None -> Alcotest.fail "histogram not found"
  | Some hh ->
      Alcotest.(check int) "histogram count" 100 (Wafl_util.Histogram.count hh);
      let p50 = Wafl_util.Histogram.percentile hh 50.0 in
      let p99 = Wafl_util.Histogram.percentile hh 99.0 in
      Alcotest.(check bool) "p50 in band" true (p50 > 30.0 && p50 < 70.0);
      Alcotest.(check bool) "p99 above p50" true (p99 > p50));
  Alcotest.(check (list string)) "sorted iteration"
    [ "a.count" ]
    (List.map fst (Metrics.counters m));
  Alcotest.(check (float 1e-9)) "missing name reads 0" 0.0 (Metrics.counter_value m "nope");
  (* A disabled tracer still hands out a usable registry. *)
  Metrics.incr (Metrics.counter (Trace.metrics Trace.disabled) "x");
  Alcotest.(check bool) "disabled tracer is disabled" false (Trace.enabled Trace.disabled)

let test_ring_drop () =
  let eng = Engine.create ~cores:1 () in
  let t = Trace.create ~ring_capacity:8 ~sample_interval:0.0 eng in
  ignore
    (Engine.spawn eng (fun () ->
         for i = 1 to 20 do
           Trace.instant t ~cat:"test" ~name:(string_of_int i) ()
         done));
  Engine.run eng;
  Alcotest.(check int) "ring holds capacity" 8 (Trace.event_count t);
  Alcotest.(check int) "oldest dropped, counted" 12 (Trace.dropped t)

(* --- export: well-formed, complete, deterministic ------------------------ *)

let traced_run seed =
  let tracer = ref Trace.disabled in
  let spec =
    {
      (H.Exp.spec_base ~scale:0.02) with
      Driver.seed;
      obs =
        (fun eng ->
          let t = Trace.create eng in
          tracer := t;
          t);
    }
  in
  let r = Driver.run spec in
  (r, !tracer)

let test_export_parses () =
  let _, t = traced_run 1 in
  let json = Trace.export_string t in
  match Json.of_string json with
  | Error msg -> Alcotest.fail ("trace JSON does not parse: " ^ msg)
  | Ok doc ->
      let events =
        match Option.bind (Json.member "traceEvents" doc) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "events recorded" true (List.length events > 0);
      let cat_of ev = Option.bind (Json.member "cat" ev) Json.to_str in
      let has c = List.exists (fun ev -> cat_of ev = Some c) events in
      Alcotest.(check bool) "CP phase spans present" true (has "cp");
      Alcotest.(check bool) "scheduler message spans present" true (has "sched");
      Alcotest.(check bool) "raid io spans present" true (has "raid");
      Alcotest.(check bool) "cleaner work spans present" true (has "cleaner");
      Alcotest.(check bool) "metrics timeseries present" true (has "metrics");
      (* Every event is timestamped in-range and durations are sane. *)
      let horizon =
        match Trace.engine t with Some eng -> Engine.now eng | None -> 0.0
      in
      List.iter
        (fun ev ->
          let num field = Option.bind (Json.member field ev) Json.to_float in
          match num "ts" with
          | None -> () (* metadata events carry no ts *)
          | Some ts ->
              Alcotest.(check bool) "ts within run" true (ts >= 0.0 && ts <= horizon);
              Option.iter
                (fun d -> Alcotest.(check bool) "dur non-negative" true (d >= 0.0))
                (num "dur"))
        events;
      Alcotest.(check bool) "profile non-empty" true (Trace.profile_rows t <> [])

let test_deterministic () =
  let r1, t1 = traced_run 7 in
  let r2, t2 = traced_run 7 in
  Alcotest.(check bool) "same-seed results identical" true (r1 = r2);
  Alcotest.(check string) "same-seed traces byte-identical" (Trace.export_string t1)
    (Trace.export_string t2)

(* Same property with enough concurrent clients to grow the scheduler's
   worker-fiber pool and recycle workers across messages: pool reuse
   must leave no mark on the trace. *)
let test_worker_pool_trace_identical () =
  let churn_run seed =
    let tracer = ref Trace.disabled in
    let spec =
      {
        (H.Exp.spec_base ~scale:0.02) with
        Driver.seed;
        clients = 24;
        obs =
          (fun eng ->
            let t = Trace.create eng in
            tracer := t;
            t);
      }
    in
    let r = Driver.run spec in
    (r, !tracer)
  in
  let r1, t1 = churn_run 11 in
  let r2, t2 = churn_run 11 in
  Alcotest.(check bool) "pool-churn results identical" true (r1 = r2);
  Alcotest.(check string) "pool-churn traces byte-identical" (Trace.export_string t1)
    (Trace.export_string t2)

(* --- tracing must not change results ------------------------------------- *)

(* Runs [f] untraced then traced (via the harness hook, as the CLI's
   trace subcommand would); the global is always restored. *)
let both f =
  H.Exp.trace := None;
  let off = f () in
  H.Exp.trace := Some (fun eng -> Trace.create eng);
  let on = Fun.protect ~finally:(fun () -> H.Exp.trace := None) f in
  (off, on)

let check_fig name f =
  let off, on = both f in
  Alcotest.(check bool) (name ^ ": traced run bit-identical") true (off = on)

let scale = 0.02
let test_fig4 () = check_fig "fig4" (fun () -> H.Fig4.run ~scale ())
let test_fig5 () = check_fig "fig5" (fun () -> H.Fig5.run ~scale ~thread_counts:[ 1; 4 ] ())
let test_fig6 () = check_fig "fig6" (fun () -> H.Fig6.run ~scale ())
let test_fig7 () = check_fig "fig7" (fun () -> H.Fig7.run ~scale ())
let test_fig8 () = check_fig "fig8" (fun () -> H.Fig8.run ~scale ())
let test_fig9 () = check_fig "fig9" (fun () -> H.Fig9.run ~scale ~levels:2 ())

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "span nesting across fiber switches" `Quick test_span_nesting;
          Alcotest.test_case "span closed on exception" `Quick test_span_exception;
          Alcotest.test_case "ring buffer drops oldest" `Quick test_ring_drop;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics ]);
      ( "export",
        [
          Alcotest.test_case "chrome trace JSON parses back" `Slow test_export_parses;
          Alcotest.test_case "same seed, byte-identical trace" `Slow test_deterministic;
          Alcotest.test_case "worker-pool churn, byte-identical trace" `Slow
            test_worker_pool_trace_identical;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "fig4" `Slow test_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
          Alcotest.test_case "fig6" `Slow test_fig6;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
        ] );
    ]
