(* End-to-end tests: client writes -> CP (cleaning, metafile relocation,
   tetris I/O, superblock) -> read-back -> fsck -> crash -> recovery.
   These exercise every layer of the reproduction together. *)

open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry

let small_geometry () =
  (* 2 RAID groups x 3 data drives, small drives so tests are fast. *)
  Geometry.create ~drive_blocks:8192 ~aa_stripes:512 ~raid_groups:[ (3, 1); (3, 1) ] ()

type env = {
  eng : Engine.t;
  agg : Aggregate.t;
  walloc : Wafl_core.Walloc.t;
  vol : Volume.t;
}

let make_env ?(cfg = Wafl_core.Walloc.default_config) ?(cores = 8) () =
  let eng = Engine.create ~cores () in
  let agg =
    Aggregate.create eng ~cost:Cost.default ~geometry:(small_geometry ()) ~nvlog_half:4096 ()
  in
  let walloc = Wafl_core.Walloc.create agg cfg in
  let env = ref None in
  ignore
    (Engine.spawn eng ~label:"setup" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         env := Some vol));
  (* Bounded slices: a CP-timer or tuner fiber keeps the engine from ever
     going idle. *)
  while !env = None do
    Engine.run ~until:(Engine.now eng +. 10_000.0) eng
  done;
  match !env with
  | Some vol -> { eng; agg; walloc; vol }
  | None -> failwith "setup failed"

(* Run [body] inside the simulation and drive it to completion. *)
let in_sim env body =
  ignore (Engine.spawn env.eng ~label:"test" (fun () -> body ()));
  Engine.run env.eng

let content_token ~file ~fbn ~gen =
  Int64.of_int ((file * 1_000_003) + (fbn * 997) + (gen * 31))

let write_file env ~file ~blocks ~gen =
  for fbn = 0 to blocks - 1 do
    match
      Aggregate.write env.agg ~vol:(Volume.id env.vol) ~file ~fbn
        ~content:(content_token ~file ~fbn ~gen)
    with
    | `Ok | `Log_half_full -> ()
    | `Log_exhausted -> failwith "unexpected NVRAM exhaustion"
  done

let check_file env ~file ~blocks ~gen =
  for fbn = 0 to blocks - 1 do
    match Aggregate.read env.agg ~vol:(Volume.id env.vol) ~file ~fbn with
    | Some c ->
        if c <> content_token ~file ~fbn ~gen then
          Alcotest.failf "file %d fbn %d: wrong content (gen %d)" file fbn gen
    | None -> Alcotest.failf "file %d fbn %d: unexpected hole" file fbn
  done

let run_cp env = Wafl_core.Cp.run_now (Wafl_core.Walloc.cp env.walloc)

(* --- tests --------------------------------------------------------------- *)

let test_write_read_before_cp () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:100 ~gen:0;
      check_file env ~file:(File.id f) ~blocks:100 ~gen:0)

let test_cp_persists_and_reads_back () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:500 ~gen:0;
      run_cp env;
      (* After the CP the buffers are gone from memory; reads must hit the
         on-disk tree through bmap -> container -> disk. *)
      check_file env ~file:(File.id f) ~blocks:500 ~gen:0);
  Alcotest.(check int) "one CP completed" 1
    (Wafl_core.Cp.cps_completed (Wafl_core.Walloc.cp env.walloc));
  Aggregate.fsck env.agg

let test_overwrite_frees_old_blocks () =
  let env = make_env () in
  let free_before = ref 0 in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:300 ~gen:0;
      run_cp env;
      free_before := Bitmap_file.free_count (Aggregate.agg_map env.agg);
      (* Overwrite everything; the old pvbns must be freed by the next CP. *)
      write_file env ~file:(File.id f) ~blocks:300 ~gen:1;
      run_cp env;
      check_file env ~file:(File.id f) ~blocks:300 ~gen:1);
  Aggregate.fsck env.agg;
  let free_after = Bitmap_file.free_count (Aggregate.agg_map env.agg) in
  (* Steady state: data blocks reused (new alloc = old free); only
     metafile growth can consume a handful of extra blocks. *)
  Alcotest.(check bool)
    (Printf.sprintf "free space steady under overwrite (%d -> %d)" !free_before free_after)
    true
    (free_after >= !free_before - 64)

let test_multiple_files_and_cps () =
  let env = make_env () in
  in_sim env (fun () ->
      let files = Array.init 20 (fun _ -> Aggregate.create_file env.agg ~vol:(Volume.id env.vol)) in
      for round = 0 to 3 do
        Array.iter (fun f -> write_file env ~file:(File.id f) ~blocks:50 ~gen:round) files;
        run_cp env
      done;
      Array.iter (fun f -> check_file env ~file:(File.id f) ~blocks:50 ~gen:3) files);
  Aggregate.fsck env.agg

let test_crash_before_any_cp () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:100 ~gen:0);
  (* Crash: all volatile state dropped; NVRAM log replays everything. *)
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  ignore
    (Engine.spawn eng2 ~label:"check" (fun () ->
         for fbn = 0 to 99 do
           match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
           | Some c ->
               if c <> content_token ~file:0 ~fbn ~gen:0 then
                 Alcotest.failf "fbn %d: wrong content after replay" fbn
           | None -> Alcotest.failf "fbn %d: lost after replay" fbn
         done));
  Engine.run eng2

let test_crash_after_cp_with_tail () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:200 ~gen:0;
      run_cp env;
      (* Tail of operations after the CP, lost from memory but in NVRAM. *)
      write_file env ~file:(File.id f) ~blocks:80 ~gen:1);
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  ignore
    (Engine.spawn eng2 ~label:"check" (fun () ->
         for fbn = 0 to 199 do
           let expected_gen = if fbn < 80 then 1 else 0 in
           match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
           | Some c ->
               if c <> content_token ~file:0 ~fbn ~gen:expected_gen then
                 Alcotest.failf "fbn %d: wrong content after recovery" fbn
           | None -> Alcotest.failf "fbn %d: lost after recovery" fbn
         done));
  Engine.run eng2

let test_recovery_then_new_cp_and_fsck () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:150 ~gen:0;
      run_cp env;
      write_file env ~file:(File.id f) ~blocks:150 ~gen:1);
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  let walloc2 = Wafl_core.Walloc.create agg2 Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng2 ~label:"drive" (fun () ->
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc2);
         for fbn = 0 to 149 do
           match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
           | Some c ->
               if c <> content_token ~file:0 ~fbn ~gen:1 then
                 Alcotest.failf "fbn %d: wrong content after recovery + CP" fbn
           | None -> Alcotest.failf "fbn %d: lost after recovery + CP" fbn
         done));
  Engine.run eng2;
  Aggregate.fsck agg2

let permutation_configs =
  [
    ("serialized", Wafl_core.Walloc.serialized_config);
    ( "parallel infra only",
      { Wafl_core.Walloc.serialized_config with parallel_infra = true } );
    ( "parallel cleaners only",
      {
        Wafl_core.Walloc.serialized_config with
        cleaner_threads = 4;
        max_cleaner_threads = 4;
      } );
    ("white alligator", Wafl_core.Walloc.default_config);
  ]

let test_all_permutations_correct () =
  List.iter
    (fun (name, cfg) ->
      let env = make_env ~cfg () in
      in_sim env (fun () ->
          let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
          write_file env ~file:(File.id f) ~blocks:400 ~gen:0;
          run_cp env;
          write_file env ~file:(File.id f) ~blocks:400 ~gen:1;
          run_cp env;
          check_file env ~file:(File.id f) ~blocks:400 ~gen:1);
      (try Aggregate.fsck env.agg with Failure m -> Alcotest.failf "%s: %s" name m);
      ignore name)
    permutation_configs

let test_random_overwrites_with_cps () =
  let env = make_env () in
  let r = Wafl_util.Rng.create ~seed:2024 in
  let blocks = 600 in
  let latest = Array.make blocks (-1) in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      (* Initial layout. *)
      write_file env ~file:(File.id f) ~blocks ~gen:0;
      Array.fill latest 0 blocks 0;
      for round = 1 to 6 do
        for _ = 1 to 400 do
          let fbn = Wafl_util.Rng.int r blocks in
          ignore
            (Aggregate.write env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn
               ~content:(content_token ~file:(File.id f) ~fbn ~gen:round));
          latest.(fbn) <- round
        done;
        run_cp env
      done;
      for fbn = 0 to blocks - 1 do
        match Aggregate.read env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn with
        | Some c ->
            if c <> content_token ~file:(File.id f) ~fbn ~gen:latest.(fbn) then
              Alcotest.failf "fbn %d: stale content after random overwrites" fbn
        | None -> Alcotest.failf "fbn %d: hole after random overwrites" fbn
      done);
  Aggregate.fsck env.agg

let test_two_volumes_isolated () =
  let env = make_env () in
  in_sim env (fun () ->
      let vol2 = Aggregate.create_volume env.agg ~vvbn_space:65536 in
      Wafl_core.Walloc.register_volume env.walloc vol2;
      let f1 = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      let f2 = Aggregate.create_file env.agg ~vol:(Volume.id vol2) in
      write_file env ~file:(File.id f1) ~blocks:200 ~gen:0;
      for fbn = 0 to 199 do
        ignore
          (Aggregate.write env.agg ~vol:(Volume.id vol2) ~file:(File.id f2) ~fbn
             ~content:(content_token ~file:77 ~fbn ~gen:5))
      done;
      run_cp env;
      check_file env ~file:(File.id f1) ~blocks:200 ~gen:0;
      for fbn = 0 to 199 do
        match Aggregate.read env.agg ~vol:(Volume.id vol2) ~file:(File.id f2) ~fbn with
        | Some c ->
            if c <> content_token ~file:77 ~fbn ~gen:5 then
              Alcotest.failf "vol2 fbn %d: wrong content" fbn
        | None -> Alcotest.failf "vol2 fbn %d: hole" fbn
      done);
  Aggregate.fsck env.agg

let test_counters_audited () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:256 ~gen:0;
      run_cp env;
      write_file env ~file:(File.id f) ~blocks:256 ~gen:1;
      run_cp env);
  (* Loose-accounting tokens are flushed at each CP end, so the global
     cleaner counters must now be exact. *)
  let counters = Aggregate.counters env.agg in
  Alcotest.(check int) "buffers cleaned counter" 512
    (Counters.read counters "cleaner_buffers_cleaned");
  Alcotest.(check int) "blocks freed counter" 256
    (Counters.read counters "cleaner_blocks_freed")

let test_no_stalled_fibers_after_quiesce () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:100 ~gen:0;
      run_cp env);
  (* Service fibers (io, cleaners, CP manager, infra caches) legitimately
     park between CPs; anything labelled "test" or "client" must not. *)
  let stuck =
    List.filter
      (fun (_, label) -> label = "test" || label = "client" || label = "setup")
      (Engine.stalled_fibers env.eng)
  in
  Alcotest.(check int) "no stuck test fibers" 0 (List.length stuck)

let test_full_stripe_writes_dominate_sequential () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:3000 ~gen:0;
      run_cp env);
  let full = ref 0 and partial = ref 0 in
  Array.iter
    (fun raid ->
      full := !full + Wafl_storage.Raid.full_stripes raid;
      partial := !partial + Wafl_storage.Raid.partial_stripes raid)
    (Aggregate.raid_groups env.agg);
  Alcotest.(check bool)
    (Printf.sprintf "full stripes dominate (%d full vs %d partial)" !full !partial)
    true
    (!full > !partial)

let test_delete_file_reclaims_space () =
  let env = make_env () in
  let free_before = ref 0 in
  in_sim env (fun () ->
      free_before := Bitmap_file.free_count (Aggregate.agg_map env.agg);
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:400 ~gen:0;
      run_cp env;
      Aggregate.delete_file env.agg ~vol:(Volume.id env.vol) ~file:(File.id f);
      run_cp env;
      (* A second CP so the thawed frees are fully visible. *)
      run_cp env;
      Alcotest.(check (option Alcotest.unit)) "file gone" None
        (Option.map ignore (Volume.file env.vol (File.id f))));
  Aggregate.fsck env.agg;
  let free_after = Bitmap_file.free_count (Aggregate.agg_map env.agg) in
  (* Everything except a handful of metafile blocks comes back. *)
  Alcotest.(check bool)
    (Printf.sprintf "space reclaimed (%d -> %d)" !free_before free_after)
    true
    (free_after >= !free_before - 64)

let test_delete_survives_crash_replay () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:100 ~gen:0;
      run_cp env;
      Aggregate.delete_file env.agg ~vol:(Volume.id env.vol) ~file:(File.id f));
  (* Crash before the deleting CP: the logged deletion must replay. *)
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  let walloc2 = Wafl_core.Walloc.create agg2 Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng2 ~label:"drive" (fun () ->
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc2);
         Alcotest.(check bool) "file gone after replayed deletion" true
           (Volume.file (Aggregate.volume_exn agg2 0) 0 = None)));
  Engine.run eng2;
  Aggregate.fsck agg2

let test_delete_dirty_file_drops_buffers () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:50 ~gen:0;
      (* Never flushed: delete while dirty. *)
      Aggregate.delete_file env.agg ~vol:(Volume.id env.vol) ~file:(File.id f);
      run_cp env);
  Aggregate.fsck env.agg;
  Alcotest.(check int) "nothing allocated for the deleted file" 0
    (Bitmap_file.used_count (Volume.vol_map env.vol))

let test_history_serial_mode_correct () =
  (* The pre-2008 serial-affinity allocator must produce the same
     on-disk correctness guarantees as White Alligator. *)
  let cfg = { Wafl_core.Walloc.serialized_config with serial_cleaning = true } in
  let env = make_env ~cfg () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:400 ~gen:0;
      run_cp env;
      write_file env ~file:(File.id f) ~blocks:400 ~gen:1;
      run_cp env;
      check_file env ~file:(File.id f) ~blocks:400 ~gen:1);
  Aggregate.fsck env.agg

let test_serial_mode_crash_recovery () =
  let cfg = { Wafl_core.Walloc.serialized_config with serial_cleaning = true } in
  let env = make_env ~cfg () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_file env ~file:(File.id f) ~blocks:120 ~gen:0;
      run_cp env;
      write_file env ~file:(File.id f) ~blocks:60 ~gen:1);
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  ignore
    (Engine.spawn eng2 ~label:"check" (fun () ->
         for fbn = 0 to 119 do
           let expected_gen = if fbn < 60 then 1 else 0 in
           match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
           | Some c when c = content_token ~file:0 ~fbn ~gen:expected_gen -> ()
           | _ -> Alcotest.failf "fbn %d: wrong content after serial-mode recovery" fbn
         done));
  Engine.run eng2

(* Crash at an arbitrary moment — including mid-CP — must lose nothing
   that was acknowledged.  Copy-on-write guarantees the previous CP's
   tree is intact on disk; NVRAM replay covers the rest. *)
let prop_crash_anywhere_loses_nothing =
  QCheck.Test.make ~name:"crash at a random instant loses no acknowledged write" ~count:8
    QCheck.(pair (int_bound 10_000) (int_range 5_000 60_000))
    (fun (seed, crash_at) ->
      let cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 8_000.0 } in
      let env = make_env ~cfg () in
      let journal = Hashtbl.create 1024 in
      let r = Wafl_util.Rng.create ~seed in
      ignore
        (Engine.spawn env.eng ~label:"writer" (fun () ->
             let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
             for i = 0 to 2999 do
               let fbn = Wafl_util.Rng.int r 700 in
               let content = Int64.of_int ((i * 131) + fbn) in
               (match
                  Aggregate.write env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn
                    ~content
                with
               | `Ok -> ()
               | `Log_half_full -> Wafl_core.Cp.request (Wafl_core.Walloc.cp env.walloc)
               | `Log_exhausted -> failwith "unexpected NVRAM exhaustion");
               (* The reply leaves the box here; the write is acknowledged. *)
               Hashtbl.replace journal fbn content;
               Engine.consume 3.0
             done));
      Engine.run ~until:(float_of_int crash_at) env.eng;
      let pers = Aggregate.crash env.agg in
      let eng2 = Engine.create ~cores:8 () in
      let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
      let ok = ref true in
      (match Aggregate.volume agg2 0 with
      | None -> ok := Hashtbl.length journal = 0
      | Some _ ->
          Hashtbl.iter
            (fun fbn content ->
              match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
              | Some c when c = content -> ()
              | _ -> ok := false)
            journal);
      !ok)

(* --- randomized crash-point harness --- *)

module Crash = Wafl_harness.Crash

(* 50 seeds of the full fault-injection harness: seeded fault plan
   (media errors, transient failures, disk loss, torn NVRAM tail),
   crash at a plan-chosen virtual instant, recover, fsck, and verify
   every acknowledged write.  Also asserts the seed range exercises the
   interesting regimes: some crashes land mid-CP and some with a disk
   failure active. *)
let test_crash_harness_50_seeds () =
  let outcomes = Crash.run_seeds ~first_seed:1 ~count:50 () in
  List.iter
    (fun (o : Crash.outcome) ->
      if not (Crash.passed o) then
        Alcotest.failf "seed %d: lost %d acked blocks%s (crash %.0fus, phase %s)" o.Crash.seed
          o.Crash.lost
          (match o.Crash.fsck_failure with Some m -> ", fsck: " ^ m | None -> "")
          o.Crash.crash_time o.Crash.cp_phase)
    outcomes;
  Alcotest.(check bool) "some seeds crash mid-CP" true
    (List.exists (fun o -> o.Crash.mid_cp) outcomes);
  Alcotest.(check bool) "some seeds crash with a disk failure active" true
    (List.exists (fun o -> o.Crash.disk_failure_active) outcomes)

(* Negative control: deliberately publish the superblock before the
   tetris flush has quiesced (a broken commit ordering, enabled through
   a test-only chaos hook).  The harness must catch it — otherwise its
   oracle proves nothing. *)
let test_chaos_broken_commit_ordering_caught () =
  Fun.protect
    ~finally:(fun () -> Wafl_core.Cp.chaos_publish_before_quiesce := false)
    (fun () ->
      Wafl_core.Cp.chaos_publish_before_quiesce := true;
      let outcomes = Crash.run_seeds ~first_seed:1 ~count:6 () in
      Alcotest.(check bool) "harness catches publish-before-quiesce" true
        (List.exists (fun o -> not (Crash.passed o)) outcomes))

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "write/read before CP" `Quick test_write_read_before_cp;
          Alcotest.test_case "CP persists and reads back" `Quick test_cp_persists_and_reads_back;
          Alcotest.test_case "overwrite frees old blocks" `Quick test_overwrite_frees_old_blocks;
          Alcotest.test_case "multiple files and CPs" `Quick test_multiple_files_and_cps;
          Alcotest.test_case "crash before any CP" `Quick test_crash_before_any_cp;
          Alcotest.test_case "crash after CP with tail" `Quick test_crash_after_cp_with_tail;
          Alcotest.test_case "recovery then new CP + fsck" `Quick
            test_recovery_then_new_cp_and_fsck;
          Alcotest.test_case "all four permutations correct" `Slow
            test_all_permutations_correct;
          Alcotest.test_case "random overwrites with CPs" `Slow test_random_overwrites_with_cps;
          Alcotest.test_case "two volumes isolated" `Quick test_two_volumes_isolated;
          Alcotest.test_case "loose accounting audited" `Quick test_counters_audited;
          Alcotest.test_case "no stalled fibers" `Quick test_no_stalled_fibers_after_quiesce;
          Alcotest.test_case "sequential writes are full-stripe" `Quick
            test_full_stripe_writes_dominate_sequential;
          Alcotest.test_case "delete reclaims space" `Quick test_delete_file_reclaims_space;
          Alcotest.test_case "delete survives crash replay" `Quick
            test_delete_survives_crash_replay;
          Alcotest.test_case "delete dirty file drops buffers" `Quick
            test_delete_dirty_file_drops_buffers;
          Alcotest.test_case "serial mode correct" `Quick test_history_serial_mode_correct;
          Alcotest.test_case "serial mode crash recovery" `Quick
            test_serial_mode_crash_recovery;
          QCheck_alcotest.to_alcotest ~verbose:false prop_crash_anywhere_loses_nothing;
        ] );
      ( "crash-harness",
        [
          Alcotest.test_case "50 random fault plans lose nothing" `Slow
            test_crash_harness_50_seeds;
          Alcotest.test_case "broken commit ordering caught" `Slow
            test_chaos_broken_commit_ordering_caught;
        ] );
    ]
