(* Unit and property tests for Wafl_util. *)

open Wafl_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let v1 = Rng.bits64 c in
  (* Drawing more from the parent must not affect the child's stream. *)
  let a2 = Rng.create ~seed:7 in
  let c2 = Rng.split a2 in
  ignore (Rng.bits64 a2);
  ignore (Rng.bits64 a2);
  Alcotest.(check int64) "child unaffected" v1 (Rng.bits64 c2 |> fun _ -> v1);
  ignore v1

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_range () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in_range () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 9)
  done

let test_rng_int_covers () =
  let r = Rng.create ~seed:5 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int r 8) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let r = Rng.create ~seed:6 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:8 in
  let acc = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add acc (Rng.exponential r ~mean:10.0)
  done;
  let m = Stats.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~ 10 (got %f)" m)
    true
    (m > 9.5 && m < 10.5)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "total" 10.0 (Stats.total s);
  check_float "min" 1.0 (Stats.min_value s);
  check_float "max" 4.0 (Stats.max_value s);
  (* Sample variance of 1..4 is 5/3. *)
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean of empty" 0.0 (Stats.mean s);
  check_float "variance of empty" 0.0 (Stats.variance s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min_value: empty") (fun () ->
      ignore (Stats.min_value s))

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Stats.clear s;
  Alcotest.(check int) "count reset" 0 (Stats.count s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  let xs = [ 1.0; 5.0; 2.0 ] and ys = [ 10.0; 4.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add all) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count m);
  check_float "mean" (Stats.mean all) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "variance" (Stats.variance all) (Stats.variance m);
  check_float "min" (Stats.min_value all) (Stats.min_value m);
  check_float "max" (Stats.max_value all) (Stats.max_value m)

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"stats mean matches naive computation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6 *. (1.0 +. Float.abs naive))

(* --- Histogram --- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 ~ 500 (got %f)" p50)
    true
    (p50 > 440.0 && p50 < 560.0);
  Alcotest.(check bool)
    (Printf.sprintf "p99 ~ 990 (got %f)" p99)
    true
    (p99 > 900.0 && p99 <= 1000.0)

let test_histogram_empty () =
  let h = Histogram.create () in
  check_float "quantile of empty" 0.0 (Histogram.quantile h 0.5);
  Alcotest.(check int) "count" 0 (Histogram.count h)

let test_histogram_mean_exact () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 10.0; 20.0; 30.0 ];
  check_float "mean is exact (tracked outside buckets)" 20.0 (Histogram.mean h)

let test_histogram_clamp () =
  let h = Histogram.create ~lo:1.0 ~hi:100.0 () in
  Histogram.add h 0.001;
  Histogram.add h 1e9;
  Alcotest.(check int) "both counted" 2 (Histogram.count h);
  Alcotest.(check bool) "max quantile bounded by max seen" true
    (Histogram.quantile h 1.0 <= 1e9)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 500 do
    Histogram.add a (float_of_int i)
  done;
  for i = 501 to 1000 do
    Histogram.add b (float_of_int i)
  done;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "count" 1000 (Histogram.count a);
  let p50 = Histogram.percentile a 50.0 in
  Alcotest.(check bool) "merged p50" true (p50 > 440.0 && p50 < 560.0)

let prop_histogram_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (float_range 1.0 1e6))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ] in
      let vs = List.map (Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

let prop_histogram_quantile_brackets =
  QCheck.Test.make ~name:"histogram p0/p100 bracket the data" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (float_range 10.0 1e5))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let mx = List.fold_left Float.max neg_infinity xs in
      Histogram.quantile h 1.0 <= mx +. 1e-9)

let test_histogram_empty_percentiles () =
  let h = Histogram.create () in
  List.iter
    (fun p -> check_float (Printf.sprintf "p%.0f of empty is 0" p) 0.0 (Histogram.percentile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_histogram_one_sample () =
  (* With a single sample every rank-selecting percentile lands in the
     sample's bucket, so the reported value (the bucket's geometric
     center, capped at max_seen) is within one bucket width — about 6%
     at 20 buckets/decade — of the sample.  p0 has rank 0 so it reports
     the bottom of the value range, not the sample. *)
  let h = Histogram.create () in
  Histogram.add h 137.0;
  let p50 = Histogram.percentile h 50.0 in
  List.iter
    (fun p ->
      let v = Histogram.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f of one sample within bucket resolution" p)
        true
        (v = p50 && Float.abs (v -. 137.0) /. 137.0 < 0.06 && v <= Histogram.max_seen h))
    [ 50.0; 99.0; 100.0 ];
  let p0 = Histogram.percentile h 0.0 in
  Alcotest.(check bool) "p0 within (0, sample]" true (p0 > 0.0 && p0 <= 137.0);
  check_float "mean of one sample" 137.0 (Histogram.mean h)

let test_histogram_clamp_percentiles () =
  (* Below-range and above-range samples land in the edge buckets but
     percentiles stay within [max_seen]. *)
  let h = Histogram.create ~lo:10.0 ~hi:1000.0 () in
  Histogram.add h 0.001;
  Histogram.add h 1e9;
  Alcotest.(check int) "clamped samples counted" 2 (Histogram.count h);
  Alcotest.(check bool) "p100 caps at max_seen" true (Histogram.percentile h 100.0 <= 1e9);
  Alcotest.(check bool) "p0 positive" true (Histogram.percentile h 0.0 > 0.0)

(* Merging two histograms must be bucket-exact equivalent to one
   histogram of the concatenated samples: identical counts array, sum
   and max (the basis for the telemetry rollup's cross-shard merge). *)
let prop_histogram_merge_is_concat =
  QCheck.Test.make ~name:"histogram merge = concatenation, bucket-exact" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 100) (float_range 0.5 1e7))
        (list_of_size Gen.(0 -- 100) (float_range 0.5 1e7)))
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () and c = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      List.iter (Histogram.add c) (xs @ ys);
      let m = Histogram.merge a b in
      Histogram.counts m = Histogram.counts c
      && Histogram.count m = Histogram.count c
      && Float.abs (Histogram.sum m -. Histogram.sum c) <= 1e-6 *. (1.0 +. Histogram.sum c)
      && Histogram.max_seen m = Histogram.max_seen c)

(* Delta against a baseline recovers exactly the samples added after the
   baseline copy — the rollup's per-window sketch extraction. *)
let prop_histogram_delta_recovers_tail =
  QCheck.Test.make ~name:"histogram delta recovers post-baseline samples" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 100) (float_range 0.5 1e7))
        (list_of_size Gen.(0 -- 100) (float_range 0.5 1e7)))
    (fun (xs, ys) ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let baseline = Histogram.copy h in
      List.iter (Histogram.add h) ys;
      let d = Histogram.delta ~baseline h in
      let tail = Histogram.create () in
      List.iter (Histogram.add tail) ys;
      Histogram.counts d = Histogram.counts tail && Histogram.count d = List.length ys)

(* --- Bitops --- *)

let test_popcount_cases () =
  Alcotest.(check int) "zero" 0 (Bitops.popcount 0L);
  Alcotest.(check int) "all ones" 64 (Bitops.popcount (-1L));
  Alcotest.(check int) "one bit" 1 (Bitops.popcount 0x8000000000000000L);
  Alcotest.(check int) "alternating" 32 (Bitops.popcount 0x5555555555555555L)

let test_ctz_matches_reference () =
  let reference x =
    let rec go i =
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then i else go (i + 1)
    in
    go 0
  in
  for i = 0 to 63 do
    Alcotest.(check int)
      (Printf.sprintf "single bit %d" i)
      i
      (Bitops.ctz (Int64.shift_left 1L i))
  done;
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.bits64 r in
    if x <> 0L then Alcotest.(check int) "random word" (reference x) (Bitops.ctz x)
  done

let test_find_first_zero () =
  Alcotest.(check int) "empty word" 0 (Bitops.find_first_zero 0L);
  Alcotest.(check int) "full word" (-1) (Bitops.find_first_zero (-1L));
  Alcotest.(check int) "bit 0 used" 1 (Bitops.find_first_zero 1L);
  Alcotest.(check int) "low 63 used" 63 (Bitops.find_first_zero Int64.max_int)

let test_find_next_zero () =
  Alcotest.(check int) "from 10 in empty" 10 (Bitops.find_next_zero 0L 10);
  Alcotest.(check int) "past end" (-1) (Bitops.find_next_zero 0L 64);
  Alcotest.(check int) "full word" (-1) (Bitops.find_next_zero (-1L) 0);
  (* Word with only bit 5 free. *)
  let w = Bitops.clear (-1L) 5 in
  Alcotest.(check int) "exactly bit 5" 5 (Bitops.find_next_zero w 0);
  Alcotest.(check int) "after bit 5" (-1) (Bitops.find_next_zero w 6)

let test_bit_get_set_clear () =
  let w = Bitops.set 0L 17 in
  Alcotest.(check bool) "set" true (Bitops.get w 17);
  Alcotest.(check bool) "others untouched" false (Bitops.get w 16);
  let w = Bitops.clear w 17 in
  Alcotest.(check bool) "cleared" false (Bitops.get w 17)

let prop_popcount_set_increments =
  QCheck.Test.make ~name:"setting a clear bit increments popcount" ~count:500
    QCheck.(pair int64 (int_bound 63))
    (fun (w, i) ->
      if Bitops.get w i then Bitops.popcount (Bitops.clear w i) = Bitops.popcount w - 1
      else Bitops.popcount (Bitops.set w i) = Bitops.popcount w + 1)

let prop_find_first_zero_correct =
  QCheck.Test.make ~name:"find_first_zero returns lowest clear bit" ~count:500 QCheck.int64
    (fun w ->
      match Bitops.find_first_zero w with
      | -1 -> w = -1L
      | i ->
          (not (Bitops.get w i))
          && (let rec lower j = j >= i || (Bitops.get w j && lower (j + 1)) in
              lower 0))

(* --- Intvec --- *)

let test_intvec_extract () =
  let v = Intvec.create ~default:(-1) () in
  List.iter (fun (i, x) -> Intvec.set v i x) [ (0, 10); (3, 13); (7, 17) ];
  let model pos len = Array.init len (fun i -> Intvec.get v (pos + i)) in
  List.iter
    (fun (pos, len) ->
      Alcotest.(check (array int))
        (Printf.sprintf "extract pos=%d len=%d" pos len)
        (model pos len)
        (Intvec.extract v ~pos ~len))
    [ (0, 8); (0, 0); (2, 3); (6, 10); (100, 4) ];
  Alcotest.check_raises "negative pos rejected" (Invalid_argument "Intvec.extract") (fun () ->
      ignore (Intvec.extract v ~pos:(-1) ~len:2))


let test_intvec_defaults () =
  let v = Intvec.create ~default:(-1) () in
  Alcotest.(check int) "empty length" 0 (Intvec.length v);
  Alcotest.(check int) "default on read past end" (-1) (Intvec.get v 100);
  Intvec.set v 5 42;
  Alcotest.(check int) "value" 42 (Intvec.get v 5);
  Alcotest.(check int) "hole before it" (-1) (Intvec.get v 4);
  Alcotest.(check int) "length tracks highest write" 6 (Intvec.length v)

let test_intvec_growth () =
  let v = Intvec.create ~initial_capacity:2 ~default:0 () in
  for i = 0 to 999 do
    Intvec.set v i (i * 3)
  done;
  Alcotest.(check int) "grown length" 1000 (Intvec.length v);
  Alcotest.(check int) "early value survives growth" 0 (Intvec.get v 0);
  Alcotest.(check int) "late value" 2997 (Intvec.get v 999)

let test_intvec_iteri_set () =
  let v = Intvec.create ~default:(-1) () in
  Intvec.set v 3 30;
  Intvec.set v 7 70;
  Intvec.set v 5 (-1);
  (* default value: not reported *)
  let seen = ref [] in
  Intvec.iteri_set v (fun i x -> seen := (i, x) :: !seen);
  Alcotest.(check (list (pair int int))) "only non-default" [ (3, 30); (7, 70) ]
    (List.rev !seen)

let test_intvec_copy_independent () =
  let v = Intvec.create ~default:0 () in
  Intvec.set v 1 11;
  let w = Intvec.copy v in
  Intvec.set w 1 99;
  Alcotest.(check int) "original unchanged" 11 (Intvec.get v 1);
  Alcotest.(check int) "copy changed" 99 (Intvec.get w 1)

let test_intvec_negative_index () =
  let v = Intvec.create ~default:0 () in
  Alcotest.check_raises "negative get" (Invalid_argument "Intvec.get: negative index")
    (fun () -> ignore (Intvec.get v (-1)))

let prop_intvec_models_assoc =
  QCheck.Test.make ~name:"intvec behaves like a sparse map" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (pair (int_bound 500) (int_range (-100) 100)))
    (fun writes ->
      let v = Intvec.create ~default:(-1000) () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (i, x) ->
          Intvec.set v i x;
          Hashtbl.replace model i x)
        writes;
      List.for_all
        (fun i ->
          Intvec.get v i = Option.value ~default:(-1000) (Hashtbl.find_opt model i))
        (List.init 501 Fun.id))

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* Both rows present. *)
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "row alpha" true (contains "alpha");
  Alcotest.(check bool) "row 22" true (contains "22")

let test_table_short_row () =
  let t = Table.create ~headers:[ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_table_too_long_row () =
  let t = Table.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "cell_f" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "cell_f1" "3.1" (Table.cell_f1 3.14159);
  Alcotest.(check string) "cell_i" "42" (Table.cell_i 42);
  Alcotest.(check string) "cell_pct" "+27.4%" (Table.cell_pct 27.4);
  Alcotest.(check string) "cell_pct negative" "-3.0%" (Table.cell_pct (-3.0))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "wafl_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in_range;
          Alcotest.test_case "int covers all values" `Quick test_rng_int_covers;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        qsuite [ prop_stats_mean_matches_naive ]
        @ [
            Alcotest.test_case "basic accumulation" `Quick test_stats_basic;
            Alcotest.test_case "empty" `Quick test_stats_empty;
            Alcotest.test_case "clear" `Quick test_stats_clear;
            Alcotest.test_case "merge" `Quick test_stats_merge;
          ] );
      ( "histogram",
        qsuite
          [
            prop_histogram_quantile_monotone;
            prop_histogram_quantile_brackets;
            prop_histogram_merge_is_concat;
            prop_histogram_delta_recovers_tail;
          ]
        @ [
            Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
            Alcotest.test_case "empty" `Quick test_histogram_empty;
            Alcotest.test_case "empty percentiles" `Quick test_histogram_empty_percentiles;
            Alcotest.test_case "one sample" `Quick test_histogram_one_sample;
            Alcotest.test_case "mean exact" `Quick test_histogram_mean_exact;
            Alcotest.test_case "clamping" `Quick test_histogram_clamp;
            Alcotest.test_case "clamped percentiles" `Quick test_histogram_clamp_percentiles;
            Alcotest.test_case "merge" `Quick test_histogram_merge;
          ] );
      ( "bitops",
        qsuite [ prop_popcount_set_increments; prop_find_first_zero_correct ]
        @ [
            Alcotest.test_case "popcount cases" `Quick test_popcount_cases;
            Alcotest.test_case "ctz vs reference" `Quick test_ctz_matches_reference;
            Alcotest.test_case "find_first_zero" `Quick test_find_first_zero;
            Alcotest.test_case "find_next_zero" `Quick test_find_next_zero;
            Alcotest.test_case "get/set/clear" `Quick test_bit_get_set_clear;
          ] );
      ( "intvec",
        [
          Alcotest.test_case "defaults and holes" `Quick test_intvec_defaults;
          Alcotest.test_case "growth" `Quick test_intvec_growth;
          Alcotest.test_case "iteri_set" `Quick test_intvec_iteri_set;
          Alcotest.test_case "extract matches get loop" `Quick test_intvec_extract;
          Alcotest.test_case "copy independence" `Quick test_intvec_copy_independent;
          Alcotest.test_case "negative index" `Quick test_intvec_negative_index;
          QCheck_alcotest.to_alcotest ~verbose:false prop_intvec_models_assoc;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows pad" `Quick test_table_short_row;
          Alcotest.test_case "long rows rejected" `Quick test_table_too_long_row;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
        ] );
    ]
