(* Tests for tools/wafl_analyzer, the typedtree (.cmt) static analyzer.

   Teeth in both directions: the deliberately defective fixture modules
   under test/fixtures/analyzer must be caught (unprobed shared state,
   blocking under a held mutex, an AB/BA lock-order cycle), the clean
   fixture and the real simulator libraries must analyze silently, and
   the --json output must parse back through Wafl_obs.Json.

   The fixture .cmt files are produced by dune as a side effect of
   compiling the analyzer_fixtures library; dune runs tests from
   _build/default/test, so both the fixture objs directory and ../lib
   are reachable with relative paths. *)

open Wafl_analyzer_lib

(* Anchor on the test binary (_build/default/test/test_analyzer.exe) so
   the paths work under both `dune runtest` and `dune exec`. *)
let test_dir = Filename.dirname Sys.executable_name
let fixture_dir = Filename.concat test_dir "fixtures/analyzer/.analyzer_fixtures.objs/byte"

(* Loading mutates per-run tables inside the collector (pending roots,
   known units), so load once and share across tests. *)
let fixture_report = lazy (Load.load_program [ fixture_dir ])

let fixture_findings =
  lazy
    (let prog, units = Lazy.force fixture_report in
     if units = [] then Alcotest.fail "no fixture .cmt files found (dune should build them)";
     Passes.run_all prog)

let by_pass pass = List.filter (fun f -> f.Ir.pass = pass) (Lazy.force fixture_findings)

let mentions sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let has_finding ~pass ~subject_sub ?message_sub () =
  List.exists
    (fun f ->
      mentions subject_sub f.Ir.subject
      && match message_sub with None -> true | Some m -> mentions m f.Ir.message)
    (by_pass pass)

(* --- probe-coverage ----------------------------------------------------- *)

let test_unprobed_ref_flagged () =
  Alcotest.(check bool)
    "module-level ref flagged" true
    (has_finding ~pass:"probe-coverage" ~subject_sub:"Fix_unprobed.hits"
       ~message_sub:"no Engine.probe gate" ());
  Alcotest.(check bool)
    "mutable record field flagged" true
    (has_finding ~pass:"probe-coverage" ~subject_sub:"Fix_unprobed.total" ())

let test_captured_local_flagged () =
  Alcotest.(check bool)
    "ref captured by two spawned closures flagged" true
    (has_finding ~pass:"probe-coverage" ~subject_sub:"Fix_unprobed.start_captured.local" ())

let test_clean_fixture_silent () =
  (* Fix_clean has the same shapes but gates every closure with
     Engine.probe_atomic; nothing in any pass may mention it. *)
  List.iter
    (fun f ->
      if mentions "Fix_clean" f.Ir.subject || mentions "Fix_clean" f.Ir.message then
        Alcotest.failf "clean fixture flagged: [%s] %s" f.Ir.pass f.Ir.message)
    (Lazy.force fixture_findings)

(* --- blocking ----------------------------------------------------------- *)

let test_blocking_direct () =
  Alcotest.(check bool)
    "Engine.sleep under held mutex flagged" true
    (has_finding ~pass:"blocking" ~subject_sub:"Fix_block_under_lock.direct"
       ~message_sub:"Engine.sleep called while holding Fix_block_under_lock.m" ())

let test_blocking_transitive () =
  (* The lock holder calls slow_path, which sleeps: the finding must
     survive one level of indirection and name the callee. *)
  Alcotest.(check bool)
    "blocking through a callee flagged" true
    (has_finding ~pass:"blocking" ~subject_sub:"Fix_block_under_lock.indirect"
       ~message_sub:"Fix_block_under_lock.slow_path" ())

(* --- lock-order --------------------------------------------------------- *)

let test_lock_cycle () =
  match by_pass "lock-order" with
  | [ f ] ->
      Alcotest.(check bool) "names lock a" true (mentions "Fix_lock_cycle.a" f.Ir.message);
      Alcotest.(check bool) "names lock b" true (mentions "Fix_lock_cycle.b" f.Ir.message);
      (* Both edges of the cycle appear in the detail with locations. *)
      Alcotest.(check bool)
        "a -> b edge" true
        (List.exists (mentions "Fix_lock_cycle.a -> Fix_lock_cycle.b") f.Ir.detail);
      Alcotest.(check bool)
        "b -> a edge" true
        (List.exists (mentions "Fix_lock_cycle.b -> Fix_lock_cycle.a") f.Ir.detail)
  | fs -> Alcotest.failf "expected exactly one lock-order finding, got %d" (List.length fs)

(* --- domain-safety ------------------------------------------------------- *)

let test_domain_unsafe_flagged () =
  Alcotest.(check bool)
    "module-level ref written from pool closure flagged" true
    (has_finding ~pass:"domain-safety" ~subject_sub:"Fix_domain_unsafe.racy_hits"
       ~message_sub:"pool-executed closure" ());
  Alcotest.(check bool)
    "named worker function flagged" true
    (has_finding ~pass:"domain-safety" ~subject_sub:"Fix_domain_unsafe.named_total" ())

let test_domain_captured_flagged () =
  Alcotest.(check bool)
    "accumulator captured across the domain boundary flagged" true
    (has_finding ~pass:"domain-safety" ~subject_sub:"Fix_domain_unsafe.run_captured.acc"
       ~message_sub:"captured across the domain boundary" ())

let test_domain_guarded_silent () =
  (* The mutex-guarded twin follows the sanctioned discipline; the pass
     must see the held lock and stay silent. *)
  Alcotest.(check bool)
    "mutex-guarded counter not flagged" false
    (has_finding ~pass:"domain-safety" ~subject_sub:"guarded_total" ())

(* --- clean repo --------------------------------------------------------- *)

let test_repo_lib_clean () =
  (* The real simulator libraries must analyze with zero findings: every
     shared family is behind a probe gate, no blocking under locks, no
     lock cycles, ownership registry consistent. *)
  let prog, units = Load.load_program [ Filename.concat test_dir "../lib" ] in
  if List.length units < 30 then
    Alcotest.failf "expected the full library set, found only %d units" (List.length units);
  if not (List.mem "Ftl" units) then
    Alcotest.fail "expected the flash FTL unit (lib/flash) among the analyzed units";
  match Passes.run_all prog with
  | [] -> ()
  | f :: _ as fs ->
      Alcotest.failf "repo libraries not clean: %d finding(s), first: [%s] %s:%d %s"
        (List.length fs) f.Ir.pass f.Ir.loc.Ir.file f.Ir.loc.Ir.line f.Ir.message

(* --- JSON round trip ---------------------------------------------------- *)

let test_json_parses_back () =
  let findings = Lazy.force fixture_findings in
  let s = Report.json_string ~units:5 findings in
  match Wafl_obs.Json.of_string s with
  | Error e -> Alcotest.failf "analyzer JSON does not parse: %s" e
  | Ok j ->
      let open Wafl_obs.Json in
      let str_exn k = match member k j with Some v -> to_str v | None -> None in
      Alcotest.(check (option string)) "schema" (Some "wafl-analyzer/1") (str_exn "schema");
      (match member "count" j with
      | Some (Num n) -> Alcotest.(check int) "count" (List.length findings) (int_of_float n)
      | _ -> Alcotest.fail "missing count");
      (match Option.bind (member "findings" j) to_list with
      | Some items ->
          Alcotest.(check int) "findings array length" (List.length findings) (List.length items);
          List.iter2
            (fun item (f : Ir.finding) ->
              Alcotest.(check (option string))
                "pass field" (Some f.Ir.pass)
                (Option.bind (member "pass" item) to_str);
              Alcotest.(check (option string))
                "message field" (Some f.Ir.message)
                (Option.bind (member "message" item) to_str))
            items findings
      | None -> Alcotest.fail "missing findings array")

let () =
  Alcotest.run "analyzer"
    [
      ( "probe-coverage",
        [
          Alcotest.test_case "unprobed shared state flagged" `Quick test_unprobed_ref_flagged;
          Alcotest.test_case "captured local flagged" `Quick test_captured_local_flagged;
          Alcotest.test_case "clean fixture silent" `Quick test_clean_fixture_silent;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "direct sleep under lock" `Quick test_blocking_direct;
          Alcotest.test_case "transitive block under lock" `Quick test_blocking_transitive;
        ] );
      ("lock-order", [ Alcotest.test_case "AB/BA cycle" `Quick test_lock_cycle ]);
      ( "domain-safety",
        [
          Alcotest.test_case "unguarded pool writes flagged" `Quick test_domain_unsafe_flagged;
          Alcotest.test_case "captured accumulator flagged" `Quick test_domain_captured_flagged;
          Alcotest.test_case "guarded twin silent" `Quick test_domain_guarded_silent;
        ] );
      ("clean-repo", [ Alcotest.test_case "lib analyzes clean" `Quick test_repo_lib_clean ]);
      ("json", [ Alcotest.test_case "round trip" `Quick test_json_parses_back ]);
    ]
