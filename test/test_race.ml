(* Tests for the sanitizers: the happens-before race detector (teeth in
   both directions: a seeded racy pair must be flagged, properly
   synchronized pairs must not), the affinity-isolation checker (a
   message touching another partition's data must abort), and the named
   lock diagnostics. *)

open Wafl_sim
module Affinity = Wafl_waffinity.Affinity
module Isolation = Wafl_waffinity.Isolation
module Scheduler = Wafl_waffinity.Scheduler

let spawn eng ?label body = ignore (Engine.spawn eng ?label body)

(* --- detector flags real races --- *)

let test_racy_pair_flagged () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  spawn eng ~label:"alpha" (fun () ->
      Engine.consume 1.0;
      Engine.probe eng ~shared:"shared.counter" Race.Write);
  spawn eng ~label:"beta" (fun () ->
      Engine.consume 2.0;
      Engine.probe eng ~shared:"shared.counter" Race.Write);
  Engine.run eng;
  Alcotest.(check int) "write/write race reported" 1 (Engine.race_report_count eng);
  match Engine.race_reports eng with
  | [ r ] ->
      Alcotest.(check string) "shared id" "shared.counter" r.Race.shared;
      let labels = List.sort compare [ r.Race.first_label; r.Race.second_label ] in
      Alcotest.(check (list string)) "both fibers named" [ "alpha"; "beta" ] labels
  | rs -> Alcotest.failf "expected exactly one report, got %d" (List.length rs)

let test_read_write_race_flagged () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  spawn eng ~label:"reader" (fun () -> Engine.probe eng ~shared:"x" Race.Read);
  spawn eng ~label:"writer" (fun () ->
      Engine.consume 1.0;
      Engine.probe eng ~shared:"x" Race.Write);
  Engine.run eng;
  Alcotest.(check bool) "read/write race reported" true (Engine.race_report_count eng >= 1)

let test_concurrent_reads_clean () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  for _ = 1 to 4 do
    spawn eng (fun () -> Engine.probe eng ~shared:"x" Race.Read)
  done;
  Engine.run eng;
  Alcotest.(check int) "read/read is not a race" 0 (Engine.race_report_count eng)

let test_distinct_ids_clean () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  spawn eng (fun () -> Engine.probe eng ~shared:"a" Race.Write);
  spawn eng (fun () -> Engine.probe eng ~shared:"b" Race.Write);
  Engine.run eng;
  Alcotest.(check int) "different ids never race" 0 (Engine.race_report_count eng)

(* --- synchronized pairs stay clean --- *)

let test_mutex_ordered_clean () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  let m = Sync.Mutex.create ~name:"guard" eng in
  for _ = 1 to 3 do
    spawn eng (fun () ->
        Sync.Mutex.with_lock m (fun () ->
            Engine.probe eng ~shared:"protected" Race.Write;
            Engine.consume 5.0))
  done;
  Engine.run eng;
  Alcotest.(check int) "mutex orders the accesses" 0 (Engine.race_report_count eng)

let test_channel_ordered_clean () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  let ch = Sync.Channel.create eng in
  spawn eng ~label:"producer" (fun () ->
      Engine.probe eng ~shared:"handoff" Race.Write;
      Sync.Channel.send ch ());
  spawn eng ~label:"consumer" (fun () ->
      Sync.Channel.recv ch;
      Engine.probe eng ~shared:"handoff" Race.Write);
  Engine.run eng;
  Alcotest.(check int) "channel send/recv is release/acquire" 0 (Engine.race_report_count eng)

let test_join_ordered_clean () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  let a =
    Engine.spawn eng ~label:"first" (fun () ->
        Engine.consume 3.0;
        Engine.probe eng ~shared:"once" Race.Write)
  in
  spawn eng ~label:"second" (fun () ->
      Engine.join eng a;
      Engine.probe eng ~shared:"once" Race.Write);
  Engine.run eng;
  Alcotest.(check int) "join is an ordering edge" 0 (Engine.race_report_count eng)

let test_probe_atomic_never_reports () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  for _ = 1 to 4 do
    spawn eng (fun () ->
        Engine.probe_atomic eng ~shared:"relaxed.counter";
        Engine.consume 1.0)
  done;
  Engine.run eng;
  Alcotest.(check int) "atomic probes are exempt" 0 (Engine.race_report_count eng)

let test_probe_locked_serializes () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  for _ = 1 to 4 do
    spawn eng (fun () ->
        Engine.probe_locked eng ~shared:"buffer.0" Race.Write;
        Engine.consume 1.0)
  done;
  Engine.run eng;
  Alcotest.(check int) "per-item lock model serializes same-id" 0
    (Engine.race_report_count eng)

let test_disabled_probes_are_noops () =
  let eng = Engine.create ~cores:2 () in
  spawn eng (fun () ->
      Engine.probe eng ~shared:"x" Race.Write;
      Engine.probe_atomic eng ~shared:"y";
      Engine.probe_locked eng ~shared:"z" Race.Write);
  spawn eng (fun () -> Engine.probe eng ~shared:"x" Race.Write);
  Engine.run eng;
  Alcotest.(check bool) "no detector attached" false (Engine.sanitizing eng);
  Alcotest.(check int) "no reports possible" 0 (Engine.race_report_count eng)

(* The detector rides the engine's own edges, so a sanitized run must be
   bit-identical to an unsanitized one: probes consume no virtual time. *)
let test_sanitize_does_not_change_timing () =
  let run sanitize =
    let eng = Engine.create ~cores:2 ~sanitize () in
    let m = Sync.Mutex.create eng in
    for _ = 1 to 3 do
      spawn eng (fun () ->
          Sync.Mutex.with_lock m (fun () ->
              Engine.probe eng ~shared:"s" Race.Write;
              Engine.consume 7.0);
          Engine.consume 2.0)
    done;
    Engine.run eng;
    Engine.now eng
  in
  Alcotest.(check (float 0.0)) "identical end time" (run false) (run true)

(* --- named lock diagnostics --- *)

let test_unlock_diagnostic_names_parties () =
  let eng = Engine.create ~cores:2 ~sanitize:true () in
  let m = Sync.Mutex.create ~name:"bucket_cache" eng in
  spawn eng ~label:"holder" (fun () ->
      Sync.Mutex.lock m;
      Engine.consume 50.0;
      Sync.Mutex.unlock m);
  spawn eng ~label:"intruder" (fun () ->
      Engine.consume 10.0;
      Sync.Mutex.unlock m);
  let msg =
    try
      Engine.run eng;
      Alcotest.fail "unlock by non-owner did not raise"
    with Invalid_argument m -> m
  in
  let contains sub =
    let ls = String.length sub and lm = String.length msg in
    let rec go i = i + ls <= lm && (String.sub msg i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("mutex named in: " ^ msg) true (contains "bucket_cache");
  Alcotest.(check bool) ("holder named in: " ^ msg) true (contains "holder");
  Alcotest.(check bool) ("caller named in: " ^ msg) true (contains "intruder")

(* --- affinity-isolation checker --- *)

let make_checked_stack () =
  let eng = Engine.create ~cores:4 ~sanitize:true () in
  let iso = Isolation.create () in
  Engine.set_access_hook eng (fun fid shared _mode -> Isolation.check iso ~fid ~shared);
  let sched = Scheduler.create ~isolation:iso eng ~cost:Cost.default () in
  (eng, iso, sched)

let vol_map_domain = "vol/0.map/0"

let test_isolation_allows_owner_and_family () =
  let eng, iso, sched = make_checked_stack () in
  Isolation.register_owner iso ~shared:vol_map_domain (Affinity.Volume_vbn (0, 0));
  (* The owner itself, a descendant range and the Serial ancestor are all
     granted exclusive access by the scheduler, so all may touch it. *)
  List.iter
    (fun affinity ->
      Scheduler.post sched ~affinity ~label:"infra" (fun () ->
          Engine.probe eng ~shared:vol_map_domain Race.Write))
    [ Affinity.Volume_vbn (0, 0); Affinity.Vol_range (0, 0, 1); Affinity.Serial ];
  Engine.run eng;
  Alcotest.(check int) "no races either" 0 (Engine.race_report_count eng)

let test_isolation_flags_foreign_touch () =
  let eng, iso, sched = make_checked_stack () in
  Isolation.register_owner iso ~shared:vol_map_domain (Affinity.Volume_vbn (0, 0));
  (* A Volume_logical message runs concurrently with Volume_vbn (they are
     siblings), so touching the volume map from it is the exact bug class
     the checker exists for. *)
  Scheduler.post sched ~affinity:(Affinity.Volume_logical (0, 0)) ~label:"client" (fun () ->
      Engine.probe eng ~shared:vol_map_domain Race.Write);
  let raised =
    try
      Engine.run eng;
      false
    with Isolation.Violation _ -> true
  in
  Alcotest.(check bool) "foreign touch aborts" true raised

let test_isolation_chaos_misattribution_caught () =
  let eng, iso, sched = make_checked_stack () in
  Isolation.register_owner iso ~shared:vol_map_domain (Affinity.Volume_vbn (0, 0));
  (* Drop the isolation guard: the same body, posted to the wrong
     affinity by the chaos hook, must be caught. *)
  let body () = Engine.probe eng ~shared:vol_map_domain Race.Write in
  Scheduler.post sched ~affinity:(Affinity.Volume_vbn (0, 0)) ~label:"infra" body;
  Scheduler.set_chaos_misattribute sched (Some (Affinity.Stripe (0, 0, 3)));
  Scheduler.post sched ~affinity:(Affinity.Volume_vbn (0, 0)) ~label:"infra" body;
  let msg =
    try
      Engine.run eng;
      ""
    with Isolation.Violation m -> m
  in
  Alcotest.(check bool) "misattributed message aborts" true (msg <> "");
  let contains sub =
    let ls = String.length sub and lm = String.length msg in
    let rec go i = i + ls <= lm && (String.sub msg i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("domain named in: " ^ msg) true (contains vol_map_domain)

let test_isolation_unregistered_and_nonmessage_free () =
  let eng, iso, sched = make_checked_stack () in
  Isolation.register_owner iso ~shared:vol_map_domain (Affinity.Volume_vbn (0, 0));
  (* Unregistered domains are unconstrained, and so are probes from plain
     fibers (cleaners, the CP fiber) that run under no affinity. *)
  Scheduler.post sched ~affinity:(Affinity.Stripe (0, 0, 0)) ~label:"client" (fun () ->
      Engine.probe eng ~shared:"scratch" Race.Write);
  spawn eng ~label:"cleaner" (fun () -> Engine.probe eng ~shared:vol_map_domain Race.Read);
  Engine.run eng;
  Alcotest.(check bool) "ran to completion" true (Engine.live_fibers eng = 0)

let () =
  Alcotest.run "race"
    [
      ( "detector",
        [
          Alcotest.test_case "racy write/write flagged" `Quick test_racy_pair_flagged;
          Alcotest.test_case "racy read/write flagged" `Quick test_read_write_race_flagged;
          Alcotest.test_case "concurrent reads clean" `Quick test_concurrent_reads_clean;
          Alcotest.test_case "distinct ids clean" `Quick test_distinct_ids_clean;
          Alcotest.test_case "mutex-ordered clean" `Quick test_mutex_ordered_clean;
          Alcotest.test_case "channel-ordered clean" `Quick test_channel_ordered_clean;
          Alcotest.test_case "join-ordered clean" `Quick test_join_ordered_clean;
          Alcotest.test_case "probe_atomic exempt" `Quick test_probe_atomic_never_reports;
          Alcotest.test_case "probe_locked serializes" `Quick test_probe_locked_serializes;
          Alcotest.test_case "disabled probes no-op" `Quick test_disabled_probes_are_noops;
          Alcotest.test_case "sanitize keeps timing" `Quick
            test_sanitize_does_not_change_timing;
          Alcotest.test_case "unlock diagnostic" `Quick test_unlock_diagnostic_names_parties;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "owner and family allowed" `Quick
            test_isolation_allows_owner_and_family;
          Alcotest.test_case "foreign touch flagged" `Quick test_isolation_flags_foreign_touch;
          Alcotest.test_case "chaos misattribution caught" `Quick
            test_isolation_chaos_misattribution_caught;
          Alcotest.test_case "unregistered domains free" `Quick
            test_isolation_unregistered_and_nonmessage_free;
        ] );
    ]
