(* Fault injection: attach a fault plan to the disk and watch the
   storage stack absorb it — transient I/O failures retried with backoff,
   a latent media error reconstructed from parity, a whole-disk loss
   survived in degraded mode with a background rebuild, and permanent
   write errors repaired by the CP before the superblock commits.

     dune exec examples/fault_injection.exe *)

open Wafl_sim
open Wafl_fs
module Fault = Wafl_storage.Fault
module Disk = Wafl_storage.Disk
module Raid = Wafl_storage.Raid

let () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:8192 ~aa_stripes:512
      ~raid_groups:[ (3, 1); (3, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in

  (* The plan starts with transient failures only (15% of I/O attempts);
     targeted faults are added below once we know which blocks are in
     use. *)
  let plan = Fault.create ~transient_p:0.15 ~seed:7 () in
  Disk.set_fault (Aggregate.disk agg) plan;

  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         let file = Aggregate.create_file agg ~vol:(Volume.id vol) in
         let vid = Volume.id vol and fid = File.id file in
         for fbn = 0 to 1999 do
           match Aggregate.write agg ~vol:vid ~file:fid ~fbn ~content:(Int64.of_int fbn) with
           | `Ok | `Log_half_full -> ()
           | `Log_exhausted -> assert false (* 2000 ops fit in NVRAM *)
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);

         (* A latent media error under a block the file just wrote: the
            next read must reconstruct it from the surviving drives of
            the stripe (and repair the sector by rewriting it). *)
         let pvbn_of fbn = Volume.pvbn_of_vvbn vol (File.vvbn_of_fbn file fbn) in
         Fault.add_media_error plan (pvbn_of 17);
         (match Aggregate.read agg ~vol:vid ~file:fid ~fbn:17 with
         | Some c -> Printf.printf "media error on fbn 17 : reconstructed %Ld\n" c
         | None -> Printf.printf "media error on fbn 17 : LOST\n");

         (* Kill a drive.  The group goes degraded, reads of its blocks
            are served by reconstruction, and a background fiber starts
            rebuilding onto a spare. *)
         Fault.fail_disk plan ~rg:0 ~drive:1 ~at:(Engine.now eng);
         let before = ref 0 in
         for fbn = 0 to 1999 do
           match Aggregate.read agg ~vol:vid ~file:fid ~fbn with
           | Some c when c = Int64.of_int fbn -> incr before
           | _ -> ()
         done;
         Printf.printf "degraded read-back    : %d/2000 blocks intact\n" !before;

         (* Writes whose target sector is bad fail permanently; the CP
            repair phase re-allocates them before the commit. *)
         for fbn = 0 to 1999 do
           ignore (Aggregate.write agg ~vol:vid ~file:fid ~fbn ~content:(Int64.of_int (fbn + 7)))
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         Fault.add_write_error plan (pvbn_of 3);
         ignore (Aggregate.write agg ~vol:vid ~file:fid ~fbn:3 ~content:77L);
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         (match Aggregate.read agg ~vol:vid ~file:fid ~fbn:3 with
         | Some 77L -> print_string "failed write repaired : content survived the bad sector\n"
         | _ -> print_string "failed write repaired : LOST\n");

         (* Let the rebuild finish, then report. *)
         while Array.exists Raid.degraded (Aggregate.raid_groups agg) do
           Engine.sleep 1_000.0
         done;
         print_string (Report.faults agg);
         Aggregate.fsck agg;
         print_string "fsck                  : clean\n"));
  Engine.run eng
