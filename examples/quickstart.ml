(* Quickstart: build a small simulated storage server, write a file,
   flush it with a consistency point, and read it back from "disk".

     dune exec examples/quickstart.exe *)

open Wafl_sim
open Wafl_fs

let () =
  (* A virtual 8-core controller with one RAID group of 4 data + 1
     parity drives. *)
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (4, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in

  (* Attach a full White Alligator write-allocation stack: Waffinity
     scheduler, infrastructure, parallel cleaner threads, CP engine. *)
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in

  (* All file-system work happens inside the simulation. *)
  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         let file = Aggregate.create_file agg ~vol:(Volume.id vol) in

         (* Write 1000 blocks; replies would be sent as soon as the ops
            are in NVRAM, long before anything reaches disk. *)
         for fbn = 0 to 999 do
           match
             Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn
               ~content:(Int64.of_int (1000 + fbn))
           with
           | `Ok | `Log_half_full -> ()
           | `Log_exhausted -> assert false (* 1000 ops fit in NVRAM *)
         done;
         Printf.printf "dirty buffers before CP : %d\n" (File.dirty_front file);

         (* One consistency point writes everything out: cleaner threads
            assign vvbns and pvbns from buckets, tetris I/Os hit RAID,
            metafiles are relocated, and the superblock commits. *)
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         Printf.printf "consistency points      : %d\n"
           (Wafl_core.Cp.cps_completed (Wafl_core.Walloc.cp walloc));
         Printf.printf "dirty buffers after CP  : %d\n" (File.dirty_front file);

         (* Reads now traverse block map -> container map -> disk. *)
         let ok = ref true in
         for fbn = 0 to 999 do
           match Aggregate.read agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn with
           | Some c when c = Int64.of_int (1000 + fbn) -> ()
           | _ -> ok := false
         done;
         Printf.printf "read-back verified      : %b\n" !ok;

         (* Where did the blocks land?  Consecutive file blocks sit on
            consecutive VBNs of one drive (bucket contiguity). *)
         let v0 = File.vvbn_of_fbn file 0 and v1 = File.vvbn_of_fbn file 1 in
         let p0 = Volume.pvbn_of_vvbn vol v0 and p1 = Volume.pvbn_of_vvbn vol v1 in
         Printf.printf "fbn 0 -> vvbn %d -> pvbn %d\n" v0 p0;
         Printf.printf "fbn 1 -> vvbn %d -> pvbn %d (contiguous: %b)\n" v1 p1 (p1 = p0 + 1);
         Printf.printf "free blocks             : %d of %d\n"
           (Bitmap_file.free_count (Aggregate.agg_map agg))
           (Wafl_storage.Geometry.total_data_blocks geometry);
         Aggregate.fsck agg;
         print_endline "fsck                    : clean"));
  Engine.run eng;
  Printf.printf "virtual time elapsed    : %.1f ms\n" (Engine.now eng /. 1000.0)
