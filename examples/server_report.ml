(* Operator's view: run a mixed workload against the simulated controller
   and print the df/snap-list style reports plus the per-CP history and
   the Wafl_obs performance summary — the observability a storage admin
   of the real system would expect.

     dune exec examples/server_report.exe *)

open Wafl_sim
open Wafl_fs

let () =
  let eng = Engine.create ~cores:12 () in
  let obs = Wafl_obs.Trace.create eng in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:32768 ~aa_stripes:1024
      ~raid_groups:[ (5, 1); (5, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry ~nvlog_half:8192 ~obs () in
  let walloc = Wafl_core.Walloc.create ~obs agg Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol_a = Aggregate.create_volume agg ~vvbn_space:131072 in
         let vol_b = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol_a;
         Wafl_core.Walloc.register_volume walloc vol_b;
         let r = Wafl_util.Rng.create ~seed:7 in
         let write vol f fbn =
           match
             Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id f) ~fbn
               ~content:(Wafl_util.Rng.bits64 r)
           with
           | `Ok -> ()
           | `Log_half_full -> Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc)
           | `Log_exhausted -> assert false (* run_now drains the log first *)
         in
         let mk_files vol n blocks =
           Array.init n (fun _ ->
               let f = Aggregate.create_file agg ~vol:(Volume.id vol) in
               for fbn = 0 to blocks - 1 do
                 write vol f fbn
               done;
               f)
         in
         let files_a = mk_files vol_a 8 2048 in
         let _files_b = mk_files vol_b 30 128 in
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         ignore (Aggregate.create_snapshot agg ~name:"hourly.0");
         (* Overwrite part of volume A, read some of it back, delete a file. *)
         Array.iteri
           (fun i f ->
             if i < 4 then
               for fbn = 0 to 2047 do
                 write vol_a f fbn
               done)
           files_a;
         Aggregate.delete_file agg ~vol:(Volume.id vol_a) ~file:(File.id files_a.(7));
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         for _ = 1 to 4000 do
           let f = files_a.(Wafl_util.Rng.int r 4) in
           ignore
             (Aggregate.read agg ~vol:(Volume.id vol_a) ~file:(File.id f)
                ~fbn:(Wafl_util.Rng.int r 2048))
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);

         print_endline "== space ==";
         print_string (Report.space agg);
         print_endline "\n== snapshots ==";
         print_string (Report.snapshots agg);
         print_endline "\n== allocation areas ==";
         print_string (Report.allocation_areas agg);
         print_endline "\n== consistency points ==";
         List.iter
           (fun (cp : Wafl_core.Cp.record) ->
             Printf.printf
               "  gen %-3d at %8.1f ms: %6d buffers, %4d metafile blocks, %d passes, %.2f ms\n"
               cp.Wafl_core.Cp.generation
               (cp.Wafl_core.Cp.started_at /. 1000.0)
               cp.Wafl_core.Cp.buffers cp.Wafl_core.Cp.meta_blocks cp.Wafl_core.Cp.passes
               (cp.Wafl_core.Cp.duration /. 1000.0))
           (Wafl_core.Cp.history (Wafl_core.Walloc.cp walloc));
         print_endline "\n== performance (Wafl_obs) ==";
         print_string
           (Report.perf ~elapsed:(Engine.now eng) (Wafl_obs.Trace.metrics obs));
         Aggregate.fsck agg;
         print_endline "\nfsck: clean"));
  Engine.run eng
