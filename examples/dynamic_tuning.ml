(* Dynamic cleaner-thread tuning (paper §V-B): the number of active
   cleaner threads follows the cleaning load.  A bursty workload —
   alternating heavy write phases and quiet phases — shows threads being
   activated within a few 50 ms tuning intervals and dropped again when
   the burst ends.

     dune exec examples/dynamic_tuning.exe *)

open Wafl_sim
open Wafl_fs

let () =
  let eng = Engine.create ~cores:16 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:65536 ~aa_stripes:1024 ~raid_groups:[ (6, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry ~nvlog_half:8192 () in
  let cfg =
    {
      Wafl_core.Walloc.default_config with
      Wafl_core.Walloc.cleaner_threads = 1;
      max_cleaner_threads = 6;
      dynamic_cleaners = true;
      cp_timer = Some 100_000.0;
    }
  in
  let walloc = Wafl_core.Walloc.create agg cfg in
  let pool = Wafl_core.Walloc.pool walloc in
  let stop = ref false in

  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:524288 in
         Wafl_core.Walloc.register_volume walloc vol;
         let file = Aggregate.create_file agg ~vol:(Volume.id vol) in
         let fbn = ref 0 in
         (* Three bursts of heavy writing with quiet gaps. *)
         for burst = 1 to 3 do
           Printf.printf "t=%6.0f ms  burst %d begins\n" (Engine.now eng /. 1000.0) burst;
           for _ = 1 to 60_000 do
             (match
                Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn:!fbn
                  ~content:(Int64.of_int !fbn)
              with
             | `Ok -> ()
             | `Log_half_full ->
                 Wafl_core.Cp.request (Wafl_core.Walloc.cp walloc);
                 Aggregate.wait_for_log_space agg
             | `Log_exhausted -> assert false (* wait_for_log_space throttles first *));
             fbn := (!fbn + 1) mod 262144;
             (* ~6 us of client work per op keeps virtual time moving. *)
             Engine.consume 6.0
           done;
           Printf.printf "t=%6.0f ms  burst %d ends; going quiet\n" (Engine.now eng /. 1000.0)
             burst;
           Engine.sleep 400_000.0
         done;
         stop := true));

  (* Observer: report the active-thread count every 50 ms. *)
  ignore
    (Engine.spawn eng ~label:"observer" (fun () ->
         let last = ref (-1) in
         while not !stop do
           Engine.sleep 50_000.0;
           let active = Wafl_core.Cleaner_pool.active pool in
           if active <> !last then begin
             Printf.printf "t=%6.0f ms  active cleaner threads -> %d\n"
               (Engine.now eng /. 1000.0) active;
             last := active
           end
         done));
  (* The CP-timer and tuner fibers never exit, so drive the engine in
     bounded slices until the application signals completion. *)
  while not !stop do
    Engine.run ~until:(Engine.now eng +. 100_000.0) eng
  done;
  match Wafl_core.Walloc.tuner walloc with
  | Some tuner ->
      Printf.printf "\ntuner decisions: %d (%d activations, %d deactivations)\n"
        (Wafl_core.Tuner.decisions tuner)
        (Wafl_core.Tuner.activations tuner)
        (Wafl_core.Tuner.deactivations tuner)
  | None -> ()
