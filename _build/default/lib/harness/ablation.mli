(** Ablations of White Alligator's design choices (paper §IV-C/§IV-D):

    - {b chunk size}: "It is possible to allocate VBNs one at a time by
      using the White Alligator API (i.e., a bucket size of one)."  The
      sweep quantifies the three advantages §IV-C claims for chunked
      buckets: amortized infrastructure work, amortized synchronization,
      and contiguous on-disk layout for sequential reads.
    - {b allocation-area policy}: §IV-D selects the AA with the most free
      blocks; the sweep compares against first-fit to show the effect on
      full-stripe writes (objective 1).
    - {b range affinities}: how many Range instances the infrastructure
      needs before serialization stops hurting (random write). *)

type chunk_row = { chunk : int; result : Wafl_workload.Driver.result }
type ranges_row = { ranges : int; result : Wafl_workload.Driver.result }

val run_chunk : ?scale:float -> ?chunks:int list -> unit -> chunk_row list
val print_chunk : chunk_row list -> unit
val shapes_chunk : chunk_row list -> (string * bool) list

val run_ranges : ?scale:float -> ?range_counts:int list -> unit -> ranges_row list
val print_ranges : ranges_row list -> unit
val shapes_ranges : ranges_row list -> (string * bool) list
