(** Crossover sweep between the paper's two write regimes.

    Figures 4 and 7 are the endpoints of a spectrum: sequential streams
    free blocks that cluster in a few allocation-metafile blocks, random
    overwrites scatter them.  Sweeping the random fraction locates the
    crossover — the mix beyond which infrastructure work overtakes
    cleaner work per operation, which is the paper's §V-A2 explanation
    made quantitative. *)

type row = { random_fraction : float; result : Wafl_workload.Driver.result }

val run : ?scale:float -> ?fractions:float list -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
