lib/harness/batching.ml: Driver Exp Histogram List Printf Table Wafl_util Wafl_workload
