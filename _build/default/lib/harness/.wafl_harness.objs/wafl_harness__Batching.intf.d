lib/harness/batching.mli: Wafl_workload
