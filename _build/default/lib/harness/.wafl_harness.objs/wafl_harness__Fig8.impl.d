lib/harness/fig8.ml: Driver Exp Float Histogram List Printf Table Wafl_util Wafl_workload
