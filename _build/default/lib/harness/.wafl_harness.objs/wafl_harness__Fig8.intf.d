lib/harness/fig8.mli: Wafl_workload
