lib/harness/fig4.ml: Driver Exp Perms Wafl_workload
