lib/harness/history.mli: Wafl_workload
