lib/harness/exp.mli: Wafl_core Wafl_workload
