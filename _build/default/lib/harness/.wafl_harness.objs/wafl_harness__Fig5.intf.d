lib/harness/fig5.mli: Wafl_workload
