lib/harness/exp.ml: Driver Float List Printf Sys Wafl_core Wafl_workload
