lib/harness/perms.mli: Wafl_workload
