lib/harness/ablation.mli: Wafl_workload
