lib/harness/history.ml: Driver Exp Histogram List Printf Table Wafl_core Wafl_util Wafl_workload
