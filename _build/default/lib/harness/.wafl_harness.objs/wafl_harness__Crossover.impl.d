lib/harness/crossover.ml: Driver Exp Float List Printf Table Wafl_util Wafl_workload
