lib/harness/ablation.ml: Driver Exp Float List Printf Table Wafl_core Wafl_util Wafl_workload
