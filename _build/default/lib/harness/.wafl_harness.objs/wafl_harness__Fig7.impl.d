lib/harness/fig7.ml: Driver Exp Perms Wafl_workload
