lib/harness/fig9.mli: Wafl_workload
