lib/harness/perms.ml: Driver Exp List Printf Table Wafl_util Wafl_workload
