lib/harness/fig6.mli: Wafl_workload
