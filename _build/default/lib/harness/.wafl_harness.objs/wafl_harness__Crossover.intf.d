lib/harness/crossover.mli: Wafl_workload
