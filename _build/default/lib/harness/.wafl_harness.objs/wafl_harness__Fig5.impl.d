lib/harness/fig5.ml: Driver Exp List Printf Table Wafl_util Wafl_workload
