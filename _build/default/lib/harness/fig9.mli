(** Figure 9: throughput versus latency at increasing client load, for
    2/3/4 static cleaner threads and dynamic tuning (sequential write).

    Paper result: peak throughput needs four threads but off-peak latency
    is best with three; dynamic tuning gets the best of both — lower
    latency at moderate load and at least the throughput of any static
    setting at high load — by running fewer threads for short intervals
    when cleaning demand is low. *)

type config = Static of int | Dynamic
type point = { offered_level : int; result : Wafl_workload.Driver.result }
type series = { config : config; points : point list }

val run : ?scale:float -> ?levels:int -> unit -> series list
val print : series list -> unit
val shapes : series list -> (string * bool) list
