(** The four-permutation experiment shared by Figures 4 and 7: every
    combination of {parallel cleaner threads} x {parallel infrastructure},
    using the instrumented-kernel methodology of §V-A (the same White
    Alligator code with components forcibly serialized). *)

type row = {
  name : string;
  result : Wafl_workload.Driver.result;
  gain : float;  (** throughput gain over the serialized baseline, % *)
}

val run : ?cleaners:int -> workload:Wafl_workload.Driver.workload -> scale:float -> unit -> row list
(** Rows in order: serialized baseline, parallel infrastructure only,
    parallel cleaners only, full White Alligator. [cleaners] (default 6)
    is the thread count used in the "parallel cleaners" configurations. *)

val print : title:string -> row list -> unit
