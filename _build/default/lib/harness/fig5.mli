(** Figure 5: sequential write with a parallel infrastructure, increasing
    the number of cleaner threads.

    Paper result: throughput rises nearly linearly with cleaner threads
    until the system CPUs saturate and can absorb no additional work. *)

type row = { threads : int; result : Wafl_workload.Driver.result }

val run : ?scale:float -> ?thread_counts:int list -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
