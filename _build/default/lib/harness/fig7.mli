(** Figure 7: random write — the same four permutations as Figure 4.

    Paper result: the outcome inverts relative to sequential write —
    parallelizing the infrastructure gives the larger benefit (+25%)
    versus the cleaner threads (+14%), because randomly distributed
    block frees touch many more allocation-metafile blocks; together
    they yield +50%. *)

val run : ?scale:float -> unit -> Perms.row list
val print : Perms.row list -> unit
val shapes : Perms.row list -> (string * bool) list
