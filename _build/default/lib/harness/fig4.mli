(** Figure 4: sequential write — throughput per client and core usage for
    all four cleaner/infrastructure parallelization permutations.

    Paper result: +7% (infrastructure only), +82% (cleaners only), +274%
    (both), with ~6.23 cores of write-allocation work (2.35
    infrastructure + 3.88 cleaners) and all cores saturated at peak. *)

val run : ?scale:float -> unit -> Perms.row list
val print : Perms.row list -> unit
val shapes : Perms.row list -> (string * bool) list
(** The qualitative claims this reproduction must preserve. *)
