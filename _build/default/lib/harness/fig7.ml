open Wafl_workload

let workload scale =
  Driver.Rand_write { file_blocks = max 2048 (int_of_float (16384.0 *. scale)) }

let run ?(scale = 1.0) () = Perms.run ~workload:(workload scale) ~scale ()

let print rows =
  Perms.print ~title:"Figure 7: random write, parallelization permutations" rows

let shapes rows =
  match rows with
  | [ base; infra_only; cleaners_only; both ] ->
      ignore base;
      [
        Exp.shape "fig7: both-parallel gain is moderate (25..90%)"
          (both.Perms.gain > 25.0 && both.Perms.gain < 90.0);
        Exp.shape "fig7: gains much smaller than sequential write"
          (both.Perms.gain < 120.0);
        Exp.shape "fig7: infra parallelization matters for random write"
          (infra_only.Perms.gain > 5.0 || both.Perms.gain -. cleaners_only.Perms.gain > 10.0);
        Exp.shape "fig7: random write touches far more metafile blocks per op"
          (let per_op r =
             float_of_int r.Perms.result.Driver.metafile_blocks_touched
             /. float_of_int (max 1 r.Perms.result.Driver.writes)
           in
           per_op both > 0.2);
        Exp.shape "fig7: system saturates at peak (util > 0.85)"
          (both.Perms.result.Driver.utilization > 0.85);
      ]
  | _ -> [ Exp.shape "fig7: four permutations ran" false ]
