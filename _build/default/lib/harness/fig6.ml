open Wafl_workload
open Wafl_util

type row = { parallel : bool; result : Driver.result }

let run ?(scale = 1.0) () =
  let spec = Exp.spec_base ~scale in
  List.map
    (fun parallel ->
      let cfg = Exp.wa_config ~cleaners:6 ~max_cleaners:6 ~parallel_infra:parallel () in
      { parallel; result = Driver.run { spec with Driver.cfg } })
    [ false; true ]

let print rows =
  Printf.printf "\nFigure 6: infrastructure parallelization (sequential write, parallel cleaners)\n";
  let t =
    Table.create
      ~headers:[ "infrastructure"; "ops/s"; "ops/s/client"; "infra cores"; "cleaner cores"; "total util" ]
  in
  List.iter
    (fun { parallel; result = r } ->
      Table.add_row t
        [
          (if parallel then "parallel" else "serialized");
          Printf.sprintf "%.0f" r.Driver.throughput;
          Printf.sprintf "%.0f" r.Driver.throughput_per_client;
          Table.cell_f r.Driver.cores_infra;
          Table.cell_f r.Driver.cores_cleaner;
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t

let shapes rows =
  match rows with
  | [ serial; parallel ] ->
      let gain =
        Exp.gain_pct ~baseline:serial.result.Driver.throughput parallel.result.Driver.throughput
      in
      [
        Exp.shape "fig6: serialized infrastructure is capped near one core"
          (serial.result.Driver.cores_infra <= 1.15);
        Exp.shape "fig6: parallel infrastructure uses more than one core"
          (parallel.result.Driver.cores_infra > 1.0);
        Exp.shape "fig6: infra parallelization raises throughput substantially (>40%)"
          (gain > 40.0);
      ]
  | _ -> [ Exp.shape "fig6: two configurations ran" false ]
