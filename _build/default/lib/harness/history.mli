(** Ablation across the three generations of WAFL write allocation that
    §III recounts:

    - 2006, Classical Waffinity: inode cleaning runs in the Serial
      affinity, excluding all client processing while it runs;
    - 2008, single cleaner thread: cleaning moves to one thread that runs
      in parallel with Waffinity but owns the metafiles (here: one
      cleaner thread + serialized infrastructure);
    - 2011, White Alligator: parallel cleaner threads over the bucket
      API, infrastructure parallelized in Waffinity.

    Not a figure in the paper, but the quantitative version of its
    historical narrative; also shows the latency cliff the Serial
    affinity inflicted on concurrent client operations. *)

type row = { era : string; result : Wafl_workload.Driver.result; gain : float }

val run : ?scale:float -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
