(** §V-C (in-text result): batched inode cleaning on an NFS-style mix.

    Paper result: with many dirty inodes that each have few dirty buffers,
    associating multiple inodes with a single cleaner message raises
    throughput from 21.2 K to 22.0 K ops/s per client (+3.8%) and lowers
    latency from 6.7 ms to 6.5 ms. *)

type row = { batching : bool; result : Wafl_workload.Driver.result }

val run : ?scale:float -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
