(** Figure 6: infrastructure core usage and throughput with and without
    infrastructure parallelization (cleaner threads parallel in both).

    Paper result: infrastructure usage grows from 0.94 to 2.35 cores,
    and the added metafile-processing bandwidth yields +106% throughput. *)

type row = { parallel : bool; result : Wafl_workload.Driver.result }

val run : ?scale:float -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
