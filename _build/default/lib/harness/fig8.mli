(** Figure 8: OLTP — throughput at peak load and latency at the "knee"
    (off-peak) load, for 1-4 static cleaner threads and dynamic tuning.

    Paper result (20-core Flash Pool system): going from one to two
    threads raises peak throughput and lowers off-peak latency; more
    than two static threads adds lock contention and thread-management
    overhead (−3% throughput, higher latency); dynamic tuning matches
    the best static choice on both metrics at once. *)

type config = Static of int | Dynamic

type row = {
  config : config;
  peak : Wafl_workload.Driver.result;  (** closed loop, no think time *)
  knee : Wafl_workload.Driver.result;  (** reduced offered load *)
}

val run : ?scale:float -> unit -> row list
val print : row list -> unit
val shapes : row list -> (string * bool) list
