open Wafl_workload

let workload scale =
  Driver.Seq_write { file_blocks = max 2048 (int_of_float (16384.0 *. scale)) }

let run ?(scale = 1.0) () = Perms.run ~workload:(workload scale) ~scale ()

let print rows =
  Perms.print ~title:"Figure 4: sequential write, parallelization permutations" rows

let shapes rows =
  match rows with
  | [ base; infra_only; cleaners_only; both ] ->
      [
        Exp.shape "fig4: infra-only gain is small (0..25%)"
          (infra_only.Perms.gain >= -2.0 && infra_only.Perms.gain <= 25.0);
        Exp.shape "fig4: cleaners-only gain is large (>50%)" (cleaners_only.Perms.gain > 50.0);
        Exp.shape "fig4: both >> each alone (>150%)"
          (both.Perms.gain > 150.0
          && both.Perms.gain > cleaners_only.Perms.gain
          && both.Perms.gain > infra_only.Perms.gain);
        Exp.shape "fig4: seq write is cleaner-bound (cleaners-only > infra-only)"
          (cleaners_only.Perms.gain > infra_only.Perms.gain);
        Exp.shape "fig4: full config uses several walloc cores (>3)"
          (Driver.cores_write_alloc both.Perms.result > 3.0);
        Exp.shape "fig4: cleaner cores exceed infra cores at peak"
          (both.Perms.result.Driver.cores_cleaner > both.Perms.result.Driver.cores_infra);
        Exp.shape "fig4: system approaches saturation at peak (util > 0.7)"
          (both.Perms.result.Driver.utilization > 0.7);
        Exp.shape "fig4: baseline leaves most cores idle (util < 0.45)"
          (base.Perms.result.Driver.utilization < 0.45);
      ]
  | _ -> [ Exp.shape "fig4: four permutations ran" false ]
