lib/workload/driver.mli: Wafl_core Wafl_sim Wafl_storage Wafl_util
