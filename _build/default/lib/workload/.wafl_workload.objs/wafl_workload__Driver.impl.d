lib/workload/driver.ml: Aggregate Array Cost Engine File Int64 Printf Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage Wafl_util Wafl_waffinity
