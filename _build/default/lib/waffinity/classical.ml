type operation =
  | User_data of { volume : int; fbn : int }
  | Spanning of { volume : int }
  | Metadata

let default_stripe_blocks = 2048
let default_stripes = 16

let affinity_of ?(stripe_blocks = default_stripe_blocks) ?(stripes = default_stripes)
    ~aggregate op =
  match op with
  | User_data { volume; fbn } ->
      (* File stripes rotate over the Stripe affinity instances, giving
         implicit coarse-grained synchronization: two messages in
         different stripes touch disjoint user data. *)
      Affinity.Stripe (aggregate, volume, fbn / stripe_blocks mod stripes)
  | Spanning _ | Metadata -> Affinity.Serial

let parallelizable a b =
  not
    (Affinity.conflicts
       (affinity_of ~aggregate:0 a)
       (affinity_of ~aggregate:0 b))
