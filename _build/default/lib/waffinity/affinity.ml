type t =
  | Serial
  | Aggregate of int
  | Aggregate_vbn of int
  | Agg_range of int * int
  | Volume of int * int
  | Volume_logical of int * int
  | Stripe of int * int * int
  | Volume_vbn of int * int
  | Vol_range of int * int * int

let parent = function
  | Serial -> None
  | Aggregate _ -> Some Serial
  | Aggregate_vbn a -> Some (Aggregate a)
  | Agg_range (a, _) -> Some (Aggregate_vbn a)
  | Volume (a, _) -> Some (Aggregate a)
  | Volume_logical (a, v) -> Some (Volume (a, v))
  | Stripe (a, v, _) -> Some (Volume_logical (a, v))
  | Volume_vbn (a, v) -> Some (Volume (a, v))
  | Vol_range (a, v, _) -> Some (Volume_vbn (a, v))

let ancestors t =
  let rec go acc t = match parent t with None -> List.rev acc | Some p -> go (p :: acc) p in
  go [] t

let conflicts x y = x = y || List.mem x (ancestors y) || List.mem y (ancestors x)

let kind_name = function
  | Serial -> "serial"
  | Aggregate _ -> "aggregate"
  | Aggregate_vbn _ -> "aggregate_vbn"
  | Agg_range _ -> "agg_range"
  | Volume _ -> "volume"
  | Volume_logical _ -> "volume_logical"
  | Stripe _ -> "stripe"
  | Volume_vbn _ -> "volume_vbn"
  | Vol_range _ -> "vol_range"

let pp ppf t =
  match t with
  | Serial -> Format.pp_print_string ppf "serial"
  | Aggregate a -> Format.fprintf ppf "aggregate(%d)" a
  | Aggregate_vbn a -> Format.fprintf ppf "aggregate_vbn(%d)" a
  | Agg_range (a, r) -> Format.fprintf ppf "agg_range(%d,%d)" a r
  | Volume (a, v) -> Format.fprintf ppf "volume(%d,%d)" a v
  | Volume_logical (a, v) -> Format.fprintf ppf "volume_logical(%d,%d)" a v
  | Stripe (a, v, s) -> Format.fprintf ppf "stripe(%d,%d,%d)" a v s
  | Volume_vbn (a, v) -> Format.fprintf ppf "volume_vbn(%d,%d)" a v
  | Vol_range (a, v, r) -> Format.fprintf ppf "vol_range(%d,%d,%d)" a v r
