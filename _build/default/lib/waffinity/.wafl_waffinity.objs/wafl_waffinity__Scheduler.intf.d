lib/waffinity/scheduler.mli: Affinity Wafl_sim
