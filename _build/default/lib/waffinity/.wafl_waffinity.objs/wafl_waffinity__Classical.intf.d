lib/waffinity/classical.mli: Affinity
