lib/waffinity/affinity.ml: Format List
