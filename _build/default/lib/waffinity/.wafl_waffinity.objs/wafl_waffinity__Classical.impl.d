lib/waffinity/classical.ml: Affinity
