lib/waffinity/scheduler.ml: Affinity Cost Engine Hashtbl List Option String Sync Wafl_sim
