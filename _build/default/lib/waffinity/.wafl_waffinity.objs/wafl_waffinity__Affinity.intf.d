lib/waffinity/affinity.mli: Format
