(** Affinity identifiers for the Hierarchical Waffinity model (paper §III,
    Figure 1).

    Each affinity is an execution context with implicit data permissions;
    the scheduler guarantees that an affinity never runs concurrently
    with any of its ancestors or descendants, while unrelated affinities
    (siblings, cousins) run in parallel.  The hierarchy is:

    {v
    Serial
    └── Aggregate a
        ├── Aggregate_vbn a            (aggregate allocation metafiles)
        │   └── Agg_range (a, r)       (block ranges of those metafiles)
        └── Volume (a, v)
            ├── Volume_logical (a, v)  (client-facing file data)
            │   └── Stripe (a, v, s)   (user-file block stripes)
            └── Volume_vbn (a, v)      (volume allocation metafiles)
                └── Vol_range (a, v, r)
    v}

    Classical Waffinity (§III-B) is the degenerate use of only [Serial]
    and [Stripe]. *)

type t =
  | Serial
  | Aggregate of int
  | Aggregate_vbn of int
  | Agg_range of int * int
  | Volume of int * int  (** (aggregate, volume) *)
  | Volume_logical of int * int
  | Stripe of int * int * int
  | Volume_vbn of int * int
  | Vol_range of int * int * int

val parent : t -> t option
(** [None] only for [Serial]. *)

val ancestors : t -> t list
(** Proper ancestors, nearest first. *)

val conflicts : t -> t -> bool
(** Whether two affinities may not run concurrently: equal, or one is an
    ancestor of the other. *)

val kind_name : t -> string
(** Without instance indices, e.g. "volume_vbn"; used for statistics. *)

val pp : Format.formatter -> t -> unit
