(** Classical Waffinity (paper §III-B), the first WAFL multiprocessor
    model (Data ONTAP 7.2, 2006).

    User files were partitioned into {e file stripes} — contiguous block
    ranges rotated over a fixed set of Stripe affinities — so that the
    dozen performance-critical data operations could run in parallel;
    {e everything else} ran in the Serial affinity and excluded all other
    WAFL processing.  This module expresses that mapping on top of the
    hierarchical scheduler (Serial and Stripe are the degenerate subset
    of the Figure 1 hierarchy), for the historical configurations and
    tests.

    The limitation that motivated Hierarchical Waffinity is visible in
    the type: anything that is not a user-file data operation — metadata
    updates, allocation work, anything spanning a stripe boundary — maps
    to [Serial]. *)

type operation =
  | User_data of { volume : int; fbn : int }
      (** read/write of one block of a user file *)
  | Spanning of { volume : int }
      (** an operation crossing stripe boundaries within one file *)
  | Metadata
      (** metafile access, allocation work, administrative operations *)

val default_stripe_blocks : int
(** Blocks per file stripe (a contiguous range of a file). *)

val default_stripes : int
(** Number of Stripe affinity instances the stripes rotate over. *)

val affinity_of :
  ?stripe_blocks:int -> ?stripes:int -> aggregate:int -> operation -> Affinity.t
(** Where an operation runs under the classical model. *)

val parallelizable : operation -> operation -> bool
(** Whether the classical model lets two operations run concurrently
    (with the default parameters). *)
