lib/core/walloc.mli: Cleaner_pool Cp Infra Tuner Wafl_fs Wafl_waffinity
