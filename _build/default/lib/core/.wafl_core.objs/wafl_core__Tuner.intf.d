lib/core/tuner.mli: Cleaner_pool
