lib/core/tetris.ml: Engine List Wafl_fs Wafl_sim Wafl_storage
