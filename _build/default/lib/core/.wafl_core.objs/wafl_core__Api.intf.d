lib/core/api.mli: Bucket Infra Wafl_fs
