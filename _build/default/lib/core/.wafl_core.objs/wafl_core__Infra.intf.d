lib/core/infra.mli: Bucket Stage Tetris Wafl_fs Wafl_waffinity
