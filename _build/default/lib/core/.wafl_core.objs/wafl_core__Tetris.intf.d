lib/core/tetris.mli: Wafl_fs Wafl_sim Wafl_storage
