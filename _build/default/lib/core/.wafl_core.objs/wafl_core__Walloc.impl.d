lib/core/walloc.ml: Cleaner_pool Cp Infra Tuner Wafl_fs Wafl_waffinity
