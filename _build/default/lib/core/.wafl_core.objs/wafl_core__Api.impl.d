lib/core/api.ml: Bucket Infra Tetris
