lib/core/stage.mli:
