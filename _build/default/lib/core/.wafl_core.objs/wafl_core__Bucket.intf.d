lib/core/bucket.mli: Tetris
