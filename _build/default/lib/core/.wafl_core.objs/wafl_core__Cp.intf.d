lib/core/cp.mli: Cleaner_pool Infra
