lib/core/bucket.ml: Array Tetris
