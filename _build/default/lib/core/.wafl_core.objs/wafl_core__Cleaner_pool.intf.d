lib/core/cleaner_pool.mli: Infra Wafl_fs Wafl_sim
