lib/core/stage.ml: List
