lib/core/tuner.ml: Cleaner_pool Engine Wafl_sim
