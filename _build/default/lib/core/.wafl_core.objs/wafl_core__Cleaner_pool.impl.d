lib/core/cleaner_pool.ml: Aggregate Api Array Bucket Cost Counters Engine File Hashtbl Infra Layout List Printf Stage Sync Volume Wafl_fs Wafl_sim
