lib/core/infra.ml: Aggregate Array Bitmap_file Bucket Cost Counters Engine Hashtbl Layout List Option Printf Stage Sync Tetris Volume Wafl_fs Wafl_sim Wafl_storage Wafl_waffinity
