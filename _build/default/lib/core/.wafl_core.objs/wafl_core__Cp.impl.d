lib/core/cp.ml: Aggregate Api Array Bitmap_file Bucket Cleaner_pool Cost Counters Engine File Hashtbl Infra Layout List Option Stage Sync Tetris Volume Wafl_fs Wafl_sim Wafl_storage Wafl_waffinity
