(** A stage: the free-side analogue of a bucket (paper §IV-A).

    Cleaner threads push VBNs freed by overwrites into a thread-local
    stage (no locking); when the stage fills, the cleaner sends its
    contents to the infrastructure, which commits the frees to the
    allocation metafiles.  One stage per target per cleaner: physical
    frees (pvbns) and per-volume virtual frees (vvbns) are staged
    separately because they commit to different metafiles under
    different affinities. *)

type target = Phys | Virt of { vol : int }

type t

val create : target:target -> capacity:int -> t
val target : t -> target
val capacity : t -> int
val length : t -> int
val is_empty : t -> bool

val add : t -> int -> [ `Ok | `Full ]
(** Push a freed VBN; [`Full] means the stage just reached capacity and
    must be drained now. *)

val drain : t -> int list
(** Take every staged VBN (ascending) and empty the stage. *)
