(** The White Alligator API: GET, USE and PUT (paper §IV-A, Figure 2).

    These are the only operations cleaner threads perform against
    allocation state; everything they touch is either bucket-local
    (lock-free, owned between GET and PUT) or a lock-protected queue
    whose cost is amortized over a whole bucket of VBNs.

    USE assigns one VBN from the bucket to a dirty buffer and enqueues
    the buffer into the per-RAID-group tetris (step 3 of Figure 2); PUT
    returns the bucket to the infrastructure's used-bucket queue and
    drops the tetris reference (step 5). *)

val get_phys : Infra.t -> Bucket.t
(** Step 2: acquire a bucket of physical VBNs from the bucket cache;
    parks if the cache is momentarily empty. *)

val get_virt : Infra.t -> Wafl_fs.Volume.t -> Bucket.t
(** Acquire a bucket of virtual VBNs for one volume. *)

val use : Bucket.t -> payload:Wafl_fs.Layout.block -> int option
(** Consume the next VBN of a physical bucket and enqueue the buffer
    into the tetris; [None] when the bucket is exhausted (PUT it and GET
    a fresh one).  Raises [Invalid_argument] on a virtual bucket. *)

val use_virt : Bucket.t -> int option
(** Consume the next vvbn of a virtual bucket. *)

val take_deferred : Bucket.t -> int option
(** CP metafile pass only: consume a VBN {e without} enqueuing a payload
    yet (metafile contents are serialized after all allocation bits have
    settled).  Pair with {!enqueue_deferred}. *)

val enqueue_deferred : Bucket.t -> vbn:int -> payload:Wafl_fs.Layout.block -> unit

val put : Infra.t -> Bucket.t -> unit
(** Release the tetris reference (submitting the I/O if this was the last
    outstanding bucket) and hand the bucket to the infrastructure for
    commit and refill. *)
