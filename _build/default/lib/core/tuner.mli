(** Dynamic tuning of the cleaner-thread count (paper §V-B).

    Every [interval] (50 ms in the paper) the tuner measures the
    utilization of the currently active cleaner threads and activates one
    more when it exceeds [activate_above], or deactivates one (never
    below one) when it falls under [deactivate_below].  The fine
    granularity lets the system ride workload swings: more threads only
    while heavy cleaning demand lasts, fewer as soon as the extra lock
    contention and CPU draw stop paying for themselves. *)

type config = {
  interval : float;  (** virtual µs between decisions *)
  activate_above : float;  (** utilization threshold to add a thread *)
  deactivate_below : float;  (** utilization threshold to drop a thread *)
}

val default_config : config
(** 50 000 µs interval as in §V-B; thresholds 0.35 / 0.15.  The paper
    quotes 90%/50% as example thresholds for a system whose consistency
    points span whole tuning intervals; with this reproduction's shorter
    CPs, a cleaner thread's wall-clock utilization equals the CP duty
    cycle, so the thresholds are calibrated to that quantity. *)

type t

val create : Cleaner_pool.t -> config -> t
(** Spawns the tuner fiber. *)

val activations : t -> int
val deactivations : t -> int
val decisions : t -> int
