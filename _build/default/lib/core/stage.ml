type target = Phys | Virt of { vol : int }

type t = { target : target; capacity : int; mutable items : int list; mutable len : int }

let create ~target ~capacity =
  if capacity <= 0 then invalid_arg "Stage.create: capacity must be positive";
  { target; capacity; items = []; len = 0 }

let target t = t.target
let capacity t = t.capacity
let length t = t.len
let is_empty t = t.len = 0

let add t vbn =
  t.items <- vbn :: t.items;
  t.len <- t.len + 1;
  if t.len >= t.capacity then `Full else `Ok

let drain t =
  let items = List.sort compare t.items in
  t.items <- [];
  t.len <- 0;
  items
