let get_phys infra = Infra.get_phys infra
let get_virt infra vol = Infra.get_virt infra vol

let phys_tetris bucket =
  match Bucket.tetris bucket with
  | Some t -> t
  | None -> invalid_arg "Api: operation requires a physical bucket"

let use bucket ~payload =
  let tetris = phys_tetris bucket in
  match Bucket.take bucket with
  | None -> None
  | Some vbn ->
      Tetris.enqueue tetris ~vbn ~payload;
      Some vbn

let use_virt bucket =
  (match Bucket.target bucket with
  | Bucket.Virt _ -> ()
  | Bucket.Phys _ -> invalid_arg "Api.use_virt: physical bucket");
  Bucket.take bucket

let take_deferred bucket =
  ignore (phys_tetris bucket);
  Bucket.take bucket

let enqueue_deferred bucket ~vbn ~payload = Tetris.enqueue (phys_tetris bucket) ~vbn ~payload

let put infra bucket =
  (match Bucket.tetris bucket with Some t -> Tetris.bucket_done t | None -> ());
  Infra.put infra bucket
