let bits_per_map_block = 32768
let entries_per_bmap_block = 512
let entries_per_container_block = 512
let inodes_per_block = 64

type inode_rec = { file_id : int; nfbns : int; bmap_pvbns : (int * int) array }

type block =
  | Data of { vol : int; file : int; fbn : int; content : int64 }
  | Bmap of { vol : int; file : int; index : int; entries : int array }
  | Inode_chunk of { vol : int; index : int; inodes : inode_rec list }
  | Container of { vol : int; index : int; entries : int array }
  | Vol_map of { vol : int; index : int; words : int64 array }
  | Agg_map of { index : int; words : int64 array }

type vol_rec = {
  vol_id : int;
  vvbn_space : int;
  inode_chunk_pvbns : (int * int) array;
  container_pvbns : (int * int) array;
  volmap_pvbns : (int * int) array;
}

type superblock = {
  generation : int;
  cp_count : int;
  vols : vol_rec list;
  aggmap_pvbns : (int * int) array;
  free_blocks : int;
  snap_roots : (string * superblock) list;
}
