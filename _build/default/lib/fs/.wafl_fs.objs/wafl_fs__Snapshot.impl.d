lib/fs/snapshot.ml: Array Bitops Layout List Printf Wafl_storage Wafl_util
