lib/fs/aggregate.mli: Bitmap_file Buffer_cache Counters File Layout Nvlog Snapshot Volume Wafl_sim Wafl_storage
