lib/fs/file.ml: Array Hashtbl Intvec Layout List Wafl_util
