lib/fs/aggregate.ml: Array Bitmap_file Buffer_cache Cost Counters Disk Engine File Fun Geometry Hashtbl Int64 Layout List Nvlog Option Printf Raid Snapshot Sync Volume Wafl_sim Wafl_storage Wafl_util
