lib/fs/counters.ml: Hashtbl List
