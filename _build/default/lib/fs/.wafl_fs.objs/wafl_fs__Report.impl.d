lib/fs/report.ml: Aggregate Array Bitmap_file Buffer Buffer_cache Counters Geometry List Printf Snapshot Volume Wafl_storage Wafl_util
