lib/fs/nvlog.ml: List
