lib/fs/layout.ml:
