lib/fs/report.mli: Aggregate
