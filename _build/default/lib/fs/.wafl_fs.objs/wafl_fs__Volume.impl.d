lib/fs/volume.ml: Array Bitmap_file File Hashtbl Intvec Layout List Printf Wafl_util
