lib/fs/snapshot.mli: Layout Wafl_storage
