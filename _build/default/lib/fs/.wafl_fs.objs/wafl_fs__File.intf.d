lib/fs/file.mli: Layout
