lib/fs/volume.mli: Bitmap_file File Layout
