lib/fs/counters.mli:
