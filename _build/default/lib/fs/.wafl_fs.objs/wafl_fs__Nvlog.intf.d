lib/fs/nvlog.mli:
