lib/fs/bitmap_file.ml: Array Bitops Hashtbl Intvec Layout List Printf Wafl_util
