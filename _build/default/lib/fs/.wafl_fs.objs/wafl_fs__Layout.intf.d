lib/fs/layout.mli:
