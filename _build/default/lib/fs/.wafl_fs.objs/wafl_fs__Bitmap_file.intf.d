lib/fs/bitmap_file.mli:
