(** On-disk layout: block payload formats and the superblock.

    Every piece of metadata is stored in blocks on the simulated disk, as
    in WAFL ("all metadata and user data are stored in files", §II-B).
    A consistency point rewrites dirty metadata blocks at fresh VBNs and
    then atomically publishes a superblock that points (transitively) at
    every live block; recovery reads only these structures.

    Constants give each 4 KiB block a realistic capacity: 32768 bitmap
    bits, 512 block-map or container entries, or 64 inode records. *)

val bits_per_map_block : int
(** Bits per allocation-bitmap block (32768 = 4 KiB of bits). *)

val entries_per_bmap_block : int
(** fbn->vvbn entries per user-file block-map block (512). *)

val entries_per_container_block : int
(** vvbn->pvbn entries per container-map block (512). *)

val inodes_per_block : int
(** Inode records per inode-file block (64). *)

type inode_rec = {
  file_id : int;
  nfbns : int;  (** one past the highest written file block number *)
  bmap_pvbns : (int * int) array;  (** (bmap block index, pvbn) pairs *)
}

type block =
  | Data of { vol : int; file : int; fbn : int; content : int64 }
      (** A user (or metafile-content) data block; [content] is the opaque
          write token used to verify read-back integrity. *)
  | Bmap of { vol : int; file : int; index : int; entries : int array }
      (** Block-map block [index] of a file: entry [i] maps
          fbn = index * entries_per_bmap_block + i to a vvbn (-1 = hole). *)
  | Inode_chunk of { vol : int; index : int; inodes : inode_rec list }
  | Container of { vol : int; index : int; entries : int array }
      (** vvbn -> pvbn translations (-1 = unmapped). *)
  | Vol_map of { vol : int; index : int; words : int64 array }
      (** Volume activemap chunk (vvbn allocation bitmap). *)
  | Agg_map of { index : int; words : int64 array }
      (** Aggregate activemap chunk (pvbn allocation bitmap). *)

type vol_rec = {
  vol_id : int;
  vvbn_space : int;
  inode_chunk_pvbns : (int * int) array;
  container_pvbns : (int * int) array;
  volmap_pvbns : (int * int) array;
}

type superblock = {
  generation : int;
  cp_count : int;
  vols : vol_rec list;
  aggmap_pvbns : (int * int) array;
  free_blocks : int;  (** persisted free-space counter, audited on mount *)
  snap_roots : (string * superblock) list;
      (** read-only snapshots: name and the superblock of the CP each one
          pins (nested snapshots lists are empty) *)
}
