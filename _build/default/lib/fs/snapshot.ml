open Wafl_util

type t = { name : string; sb : Layout.superblock; words : int64 array }

let make ~name ~sb ~words = { name; sb; words }
let name t = t.name
let generation t = t.sb.Layout.generation
let superblock t = t.sb

let holds t pvbn =
  let w = pvbn / 64 in
  w >= 0 && w < Array.length t.words && Bitops.get t.words.(w) (pvbn mod 64)

let held_words t = t.words

let read_block disk pvbn what =
  match Wafl_storage.Disk.read disk pvbn with
  | Some payload -> payload
  | None -> failwith (Printf.sprintf "snapshot: %s at pvbn %d missing" what pvbn)

let assoc_location locations idx =
  let found = ref (-1) in
  Array.iter (fun (i, pvbn) -> if i = idx then found := pvbn) locations;
  !found

let read t ~disk ~vol ~file ~fbn =
  match List.find_opt (fun (vr : Layout.vol_rec) -> vr.Layout.vol_id = vol) t.sb.Layout.vols with
  | None -> None
  | Some vr -> (
      let chunk_idx = file / Layout.inodes_per_block in
      match assoc_location vr.Layout.inode_chunk_pvbns chunk_idx with
      | -1 -> None
      | chunk_pvbn -> (
          let inodes =
            match read_block disk chunk_pvbn "inode chunk" with
            | Layout.Inode_chunk { vol = v; index; inodes } when v = vol && index = chunk_idx
              ->
                inodes
            | _ -> failwith "snapshot: inode chunk has wrong payload"
          in
          match List.find_opt (fun (r : Layout.inode_rec) -> r.Layout.file_id = file) inodes with
          | None -> None
          | Some inode -> (
              if fbn < 0 || fbn >= inode.Layout.nfbns then None
              else
                let bmap_idx = fbn / Layout.entries_per_bmap_block in
                match assoc_location inode.Layout.bmap_pvbns bmap_idx with
                | -1 -> None
                | bmap_pvbn -> (
                    let entries =
                      match read_block disk bmap_pvbn "bmap block" with
                      | Layout.Bmap { vol = v; file = f; index; entries }
                        when v = vol && f = file && index = bmap_idx ->
                          entries
                      | _ -> failwith "snapshot: bmap block has wrong payload"
                    in
                    match entries.(fbn mod Layout.entries_per_bmap_block) with
                    | -1 -> None
                    | vvbn -> (
                        let cidx = vvbn / Layout.entries_per_container_block in
                        match assoc_location vr.Layout.container_pvbns cidx with
                        | -1 -> failwith "snapshot: vvbn has no container chunk"
                        | container_pvbn -> (
                            let centries =
                              match read_block disk container_pvbn "container chunk" with
                              | Layout.Container { vol = v; index; entries }
                                when v = vol && index = cidx ->
                                  entries
                              | _ -> failwith "snapshot: container chunk has wrong payload"
                            in
                            match centries.(vvbn mod Layout.entries_per_container_block) with
                            | -1 -> failwith "snapshot: vvbn unmapped in container"
                            | pvbn -> (
                                match read_block disk pvbn "data block" with
                                | Layout.Data d
                                  when d.vol = vol && d.file = file && d.fbn = fbn ->
                                    Some d.content
                                | _ -> failwith "snapshot: data block mismatch")))))))
