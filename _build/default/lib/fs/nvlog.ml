type op =
  | Create_vol of { vol : int; vvbn_space : int }
  | Create_file of { vol : int; file : int }
  | Write of { vol : int; file : int; fbn : int; content : int64 }
  | Delete_file of { vol : int; file : int }

type t = {
  half_capacity : int;
  mutable filling : op list; (* newest first *)
  mutable filling_len : int;
  mutable cp_half : op list; (* newest first; [] when no CP active *)
  mutable cp_active : bool;
}

let create ?(half_capacity = 16384) () =
  if half_capacity <= 0 then invalid_arg "Nvlog.create: bad capacity";
  { half_capacity; filling = []; filling_len = 0; cp_half = []; cp_active = false }

let append t op =
  if t.filling_len >= 2 * t.half_capacity then
    failwith "Nvlog.append: NVRAM exhausted (client not throttled against CP)";
  t.filling <- op :: t.filling;
  t.filling_len <- t.filling_len + 1;
  if t.filling_len >= t.half_capacity then `Half_full else `Ok

let is_half_full t = t.filling_len >= t.half_capacity

(* Leave headroom for operations already in flight through the message
   scheduler when the throttle check happens in the client thread. *)
let is_nearly_full t = t.filling_len >= (2 * t.half_capacity) - (t.half_capacity / 8)
let pending t = t.filling_len
let in_cp t = List.length t.cp_half

let cp_begin t =
  if t.cp_active then invalid_arg "Nvlog.cp_begin: CP already active";
  t.cp_half <- t.filling;
  t.filling <- [];
  t.filling_len <- 0;
  t.cp_active <- true

let cp_commit t =
  if not t.cp_active then invalid_arg "Nvlog.cp_commit: no CP active";
  t.cp_half <- [];
  t.cp_active <- false

let replay_ops t = List.rev t.cp_half @ List.rev t.filling

let recover_reset t =
  t.filling <- t.filling @ t.cp_half;
  t.filling_len <- List.length t.filling;
  t.cp_half <- [];
  t.cp_active <- false
