(** Read-only snapshots.

    A snapshot pins the on-disk tree of one committed consistency point:
    its superblock plus a copy of the aggregate activemap words at that
    CP (the set of pvbns the snapshot references).  Because WAFL never
    overwrites in place, none of those blocks change afterwards — the
    active file system simply stops freeing them for reuse while the
    snapshot exists ({!Aggregate.pvbn_allocatable} consults {!holds}).

    Reads against a snapshot walk the persisted structures directly:
    superblock → inode chunk → block-map block → container chunk → data
    block, touching nothing in the live file system. *)

type t

val make : name:string -> sb:Layout.superblock -> words:int64 array -> t
val name : t -> string
val generation : t -> int
(** The CP generation this snapshot pins. *)

val superblock : t -> Layout.superblock
val holds : t -> int -> bool
(** Whether the snapshot references the given pvbn. *)

val held_words : t -> int64 array
(** The raw pinned-block words (not a copy; treat as read-only). *)

val read :
  t -> disk:Layout.block Wafl_storage.Disk.t -> vol:int -> file:int -> fbn:int -> int64 option
(** Read a block as of the snapshot.  [None] for holes or absent
    files/volumes; raises [Failure] if the persisted structure is
    malformed (which a correct allocator can never cause). *)
