(** Read buffer cache.

    WAFL keeps recently used blocks in a global buffer cache (the
    companion design in Denz et al., ICPP 2016 — reference [20] of the
    paper).  This model tracks which pvbns are resident with an exact
    LRU policy so the read path can distinguish cache hits from disk
    misses; the workload driver charges the extra miss cost.  Dirty
    buffers never reach this cache — they live in the per-file dirty
    tables until their consistency point retires them.

    Capacity is in blocks.  The structure is a hash table over an
    intrusive doubly-linked LRU list: O(1) probe, insert and evict. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int

val probe : t -> int -> bool
(** [probe t pvbn] is [true] on a hit (the entry is refreshed to MRU).
    On a miss the block is inserted, evicting the LRU entry if full. *)

val contains : t -> int -> bool
(** Lookup without side effects. *)

val invalidate : t -> int -> unit
(** Drop an entry if present (e.g. when its block is freed and reused). *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val hit_rate : t -> float
(** hits / (hits + misses); 0.0 before any probe. *)

val clear : t -> unit
