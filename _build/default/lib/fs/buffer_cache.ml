(* Exact LRU: hash table to intrusive list nodes; the list head is the
   most recently used entry. *)

type node = { pvbn : int; mutable prev : node option; mutable next : node option }

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 65536);
    head = None;
    tail = None;
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.pvbn;
      t.n_evictions <- t.n_evictions + 1

let probe t pvbn =
  match Hashtbl.find_opt t.table pvbn with
  | Some node ->
      t.n_hits <- t.n_hits + 1;
      unlink t node;
      push_front t node;
      true
  | None ->
      t.n_misses <- t.n_misses + 1;
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { pvbn; prev = None; next = None } in
      Hashtbl.add t.table pvbn node;
      push_front t node;
      false

let contains t pvbn = Hashtbl.mem t.table pvbn

let invalidate t pvbn =
  match Hashtbl.find_opt t.table pvbn with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table pvbn
  | None -> ()

let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions

let hit_rate t =
  let total = t.n_hits + t.n_misses in
  if total = 0 then 0.0 else float_of_int t.n_hits /. float_of_int total

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
