(** Streaming statistics: count / mean / variance / min / max accumulators
    (Welford's algorithm) used by the metric collectors. *)

type t

val create : unit -> t
val clear : t -> unit
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** [mean t] is 0.0 when no samples were added. *)

val variance : t -> float
(** Unbiased sample variance; 0.0 with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> float
(** Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    sample streams. *)

val pp : Format.formatter -> t -> unit
