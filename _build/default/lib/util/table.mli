(** Minimal ASCII table renderer for benchmark and experiment reports.

    Columns are right-aligned except the first, which is left-aligned;
    widths are computed from content. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty.
    Longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
val render : t -> string
val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val cell_f : float -> string
(** Fixed 2-decimal rendering, e.g. "12.34". *)

val cell_f1 : float -> string
(** 1-decimal rendering. *)

val cell_i : int -> string
val cell_pct : float -> string
(** Signed percentage, e.g. "+27.4%". *)
