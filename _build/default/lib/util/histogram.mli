(** Log-bucketed histogram for latency distributions.

    Values are assigned to geometrically spaced buckets, which gives
    accurate percentiles over many orders of magnitude (microseconds to
    seconds) with a small fixed memory footprint.  Quantiles are
    interpolated within a bucket. *)

type t

val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t
(** Defaults cover [1e0, 1e8] (virtual microseconds) with 20 buckets per
    decade, i.e. ~2.8% relative resolution. Out-of-range values clamp to
    the first / last bucket. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]. Returns 0.0 when empty. *)

val percentile : t -> float -> float
(** [percentile t 99.0] = [quantile t 0.99]. *)

val clear : t -> unit
val merge_into : dst:t -> t -> unit
(** Adds all of the source's buckets into [dst]; the histograms must have
    been created with identical parameters. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line "p50/p95/p99/max" rendering. *)
