type row = Cells of string list | Separator

type t = { headers : string list; ncols : int; mutable rows : row list (* reversed *) }

let create ~headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  if List.length cells > t.ncols then invalid_arg "Table.add_row: too many cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad_cells t cells =
  let n = List.length cells in
  if n = t.ncols then cells else cells @ List.init (t.ncols - n) (fun _ -> "")

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells c -> note_row (pad_cells t c) | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let put_row cells =
    List.iteri
      (fun i c ->
        let w = widths.(i) in
        let padding = String.make (w - String.length c) ' ' in
        if i > 0 then Buffer.add_string buf "  ";
        (* Left-align the first column (labels), right-align numerics. *)
        if i = 0 then (
          Buffer.add_string buf c;
          Buffer.add_string buf padding)
        else (
          Buffer.add_string buf padding;
          Buffer.add_string buf c))
      cells;
    Buffer.add_char buf '\n'
  in
  let put_separator () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  put_row t.headers;
  put_separator ();
  List.iter (function Cells c -> put_row (pad_cells t c) | Separator -> put_separator ()) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout

let cell_f x = Printf.sprintf "%.2f" x
let cell_f1 x = Printf.sprintf "%.1f" x
let cell_i n = string_of_int n
let cell_pct x = Printf.sprintf "%+.1f%%" x
