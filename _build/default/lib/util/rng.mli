(** Deterministic pseudo-random number generator.

    A small, fast, splittable PRNG (splitmix64 seeding into xoshiro256
    star-star) used everywhere in the reproduction so that every experiment is
    replayable from a single integer seed.  The global [Random] module is
    deliberately not used anywhere in this repository. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator whose entire future stream is a pure
    function of [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated client or thread its own stream so that
    adding consumers does not perturb existing streams. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean; used for
    open-loop arrival processes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
