lib/util/rng.mli:
