lib/util/table.mli:
