lib/util/bitops.mli:
