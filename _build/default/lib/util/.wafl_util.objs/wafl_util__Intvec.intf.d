lib/util/intvec.mli:
