let popcount (x : int64) =
  (* SWAR popcount, 64-bit. *)
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let ctz (x : int64) =
  (* Count trailing zeros of a non-zero word via de Bruijn-free loop; words
     are scanned rarely (once per 64 allocations) so a simple loop is fine. *)
  let rec go x i = if Int64.logand x 1L = 1L then i else go (Int64.shift_right_logical x 1) (i + 1) in
  go x 0

let find_first_zero w =
  let inv = Int64.lognot w in
  if inv = 0L then -1 else ctz inv

let find_next_zero w i =
  if i > 63 then -1
  else
    let mask = if i = 0 then Int64.minus_one else Int64.shift_left Int64.minus_one i in
    let inv = Int64.logand (Int64.lognot w) mask in
    if inv = 0L then -1 else ctz inv

let get w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L
let set w i = Int64.logor w (Int64.shift_left 1L i)
let clear w i = Int64.logand w (Int64.lognot (Int64.shift_left 1L i))
