(** Aggregate geometry: RAID groups, data drives, stripes and Allocation
    Areas (paper §II-B, §IV-D).

    The physical VBN space covers only data drives; parity drives are
    implicit in the RAID model.  VBNs are laid out so that each data drive
    owns one contiguous VBN range — a {e bucket} (a chunk of consecutive
    VBNs on one drive) is therefore a simple integer interval.

    A {e stripe} is the set of blocks at the same drive offset (DBN)
    across the data drives of one RAID group; an {e Allocation Area} is a
    contiguous run of [aa_stripes] stripes. *)

type t

type vbn = int
(** Physical volume block number; dense in [\[0, total_data_blocks)]. *)

type location = { rg : int; drive : int; dbn : int }
(** [drive] is the data-drive index within the RAID group; [dbn] is the
    block offset within the drive. *)

val create :
  ?drive_blocks:int -> ?aa_stripes:int -> raid_groups:(int * int) list -> unit -> t
(** [create ~raid_groups:\[(d1, p1); (d2, p2)\] ()] builds an aggregate
    with one RAID group of [d1] data and [p1] parity drives, etc.
    [drive_blocks] (default 65536) is the per-drive capacity in 4 KiB
    blocks; [aa_stripes] (default 1024) the Allocation Area depth.
    [drive_blocks] must be a multiple of [aa_stripes]. *)

val total_data_blocks : t -> int
val raid_group_count : t -> int
val data_drives : t -> rg:int -> int
val parity_drives : t -> rg:int -> int
val drives_total : t -> int
(** Data drives across all RAID groups. *)

val drive_blocks : t -> int
val aa_stripes : t -> int
val aa_count : t -> int
(** Allocation Areas per drive. *)

val vbn_of : t -> rg:int -> drive:int -> dbn:int -> vbn
val locate : t -> vbn -> location
val drive_base : t -> rg:int -> drive:int -> vbn
(** First VBN of the given drive's contiguous range. *)

val vbn_valid : t -> vbn -> bool
val aa_of_dbn : t -> int -> int
(** Which Allocation Area a drive offset falls in. *)

val aa_dbn_range : t -> aa:int -> int * int
(** [(first_dbn, last_dbn)] covered by an Allocation Area, inclusive. *)

val drives_of_rg : t -> rg:int -> (int * int) list
(** [(drive, base_vbn)] for each data drive of the group. *)
