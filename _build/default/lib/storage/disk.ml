type 'b t = {
  geometry : Geometry.t;
  blocks : 'b option array;
  mutable writes : int;
}

let create geometry =
  { geometry; blocks = Array.make (Geometry.total_data_blocks geometry) None; writes = 0 }

let geometry t = t.geometry

let check t vbn =
  if not (Geometry.vbn_valid t.geometry vbn) then
    invalid_arg (Printf.sprintf "Disk: vbn %d out of range" vbn)

let write t vbn payload =
  check t vbn;
  t.blocks.(vbn) <- Some payload;
  t.writes <- t.writes + 1

let read t vbn =
  check t vbn;
  t.blocks.(vbn)

let read_exn t vbn =
  match read t vbn with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Disk.read_exn: vbn %d never written" vbn)

let writes_total t = t.writes
