open Wafl_sim

type 'b request =
  | Io of { writes : (Geometry.vbn * 'b) list; on_complete : unit -> unit }
  | Stop

type 'b t = {
  cost : Cost.t;
  disk : 'b Disk.t;
  rg : int;
  data_width : int;
  queue_depth : int;
  queue : 'b request Sync.Channel.t;
  done_q : Sync.Waitq.t;
  mutable outstanding : int;
  mutable ios : int;
  mutable blocks : int;
  mutable full : int;
  mutable partial : int;
  mutable busy : float;
}

(* Count full vs partial stripes in one I/O: a stripe (distinct dbn) is
   full when every data drive of the group contributes a block. *)
let stripe_mix t writes =
  let per_dbn = Hashtbl.create 64 in
  List.iter
    (fun (vbn, _) ->
      let loc = Geometry.locate (Disk.geometry t.disk) vbn in
      if loc.Geometry.rg <> t.rg then invalid_arg "Raid.submit: vbn not in this group";
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_dbn loc.Geometry.dbn) in
      Hashtbl.replace per_dbn loc.Geometry.dbn (cur + 1))
    writes;
  Hashtbl.fold
    (fun _ n (full, partial) -> if n >= t.data_width then (full + 1, partial) else (full, partial + 1))
    per_dbn (0, 0)

let service_fiber t () =
  let rec loop () =
    match Sync.Channel.recv t.queue with
    | Stop -> ()
    | Io { writes; on_complete } ->
        let full, partial = stripe_mix t writes in
        let nblocks = List.length writes in
        let service =
          t.cost.Cost.device_base_latency
          +. (float_of_int nblocks *. t.cost.Cost.device_write_per_block)
          +. (float_of_int partial *. t.cost.Cost.parity_read_penalty)
        in
        Engine.sleep service;
        List.iter (fun (vbn, payload) -> Disk.write t.disk vbn payload) writes;
        t.ios <- t.ios + 1;
        t.blocks <- t.blocks + nblocks;
        t.full <- t.full + full;
        t.partial <- t.partial + partial;
        t.busy <- t.busy +. service;
        on_complete ();
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then ignore (Sync.Waitq.wake_all t.done_q);
        loop ()
  in
  loop ()

let create ?(queue_depth = 4) eng ~cost ~disk ~rg =
  if queue_depth <= 0 then invalid_arg "Raid.create: queue_depth must be positive";
  let t =
    {
      cost;
      disk;
      rg;
      data_width = Geometry.data_drives (Disk.geometry disk) ~rg;
      queue_depth;
      queue = Sync.Channel.create eng;
      done_q = Sync.Waitq.create eng;
      outstanding = 0;
      ios = 0;
      blocks = 0;
      full = 0;
      partial = 0;
      busy = 0.0;
    }
  in
  for _ = 1 to queue_depth do
    ignore (Engine.spawn eng ~label:"io" (service_fiber t))
  done;
  t

let rg t = t.rg

let submit t ~writes ~on_complete =
  if writes = [] then on_complete ()
  else begin
    Engine.consume t.cost.Cost.raid_io_dispatch;
    t.outstanding <- t.outstanding + 1;
    Sync.Channel.send t.queue (Io { writes; on_complete })
  end

let quiesce t =
  while t.outstanding > 0 do
    Sync.Waitq.wait t.done_q
  done

let shutdown t =
  (* One Stop per service fiber; the queue is FIFO so all pending I/Os
     complete before the fibers exit. *)
  for _ = 1 to t.queue_depth do
    Sync.Channel.send t.queue Stop
  done

let ios_completed t = t.ios
let blocks_written t = t.blocks
let full_stripes t = t.full
let partial_stripes t = t.partial
let device_busy t = t.busy
