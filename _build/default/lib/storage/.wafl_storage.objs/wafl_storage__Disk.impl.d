lib/storage/disk.ml: Array Geometry Printf
