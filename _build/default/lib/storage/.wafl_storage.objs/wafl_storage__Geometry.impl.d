lib/storage/geometry.ml: Array List
