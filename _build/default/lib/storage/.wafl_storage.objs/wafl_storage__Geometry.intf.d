lib/storage/geometry.mli:
