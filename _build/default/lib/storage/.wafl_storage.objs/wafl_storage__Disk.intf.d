lib/storage/disk.mli: Geometry
