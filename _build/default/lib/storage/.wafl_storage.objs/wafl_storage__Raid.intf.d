lib/storage/raid.mli: Disk Geometry Wafl_sim
