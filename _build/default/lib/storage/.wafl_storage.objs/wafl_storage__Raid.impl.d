lib/storage/raid.ml: Cost Disk Engine Geometry Hashtbl List Option Sync Wafl_sim
