(** RAID-group write path.

    Tetris I/Os (one per RAID group, paper §IV-E) are submitted here.  The
    group services requests with a configurable queue depth; service time
    models per-block transfer plus a parity-read penalty for every stripe
    that is not written full-width (objective 1 of §IV-D: full-stripe
    writes need no parity reads).  Payloads become durable — visible in
    the {!Disk} — at I/O completion.

    Statistics exposed here (full vs partial stripe counts) back the
    allocation-quality ablation benchmarks. *)

type 'b t

val create :
  ?queue_depth:int ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  disk:'b Disk.t ->
  rg:int ->
  'b t
(** Spawns [queue_depth] (default 4) service fibers labelled ["io"]. *)

val rg : 'b t -> int

val submit : 'b t -> writes:(Geometry.vbn * 'b) list -> on_complete:(unit -> unit) -> unit
(** Enqueue one tetris I/O.  Charges the submitting fiber the CPU dispatch
    cost; device service happens asynchronously in virtual time.
    [on_complete] runs in a service-fiber context after the payloads are
    durable — it must only update counters / wake fibers.  Every VBN must
    belong to this RAID group. *)

val quiesce : 'b t -> unit
(** Park until all submitted I/Os have completed. *)

val shutdown : 'b t -> unit
(** Stop the service fibers once the queue drains; used by tests that
    assert no fiber is left parked. *)

val ios_completed : 'b t -> int
val blocks_written : 'b t -> int
val full_stripes : 'b t -> int
val partial_stripes : 'b t -> int
val device_busy : 'b t -> float
(** Total device service time consumed, in virtual µs. *)
