(** Simulated persistent block store.

    One payload slot per physical VBN.  The store survives a simulated
    crash (the file system drops its volatile state and reloads from
    here); copy-on-write correctness therefore depends on the allocator
    never directing a write at an in-use VBN, which {!write} enforces in
    cooperation with the caller-provided overwrite check.

    Payloads are polymorphic: the file-system layer instantiates ['b]
    with its on-disk block representation. *)

type 'b t

val create : Geometry.t -> 'b t
val geometry : 'b t -> Geometry.t

val write : 'b t -> Geometry.vbn -> 'b -> unit
(** Store a payload.  Raises [Invalid_argument] on an out-of-range VBN. *)

val read : 'b t -> Geometry.vbn -> 'b option
(** [None] if the block was never written. *)

val read_exn : 'b t -> Geometry.vbn -> 'b

val writes_total : 'b t -> int
(** Number of block writes since creation (includes rewrites of freed
    blocks in later consistency points). *)
