lib/sim/engine.ml: Array Effect Hashtbl List Obj Queue String
