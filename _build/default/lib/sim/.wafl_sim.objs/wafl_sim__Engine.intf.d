lib/sim/engine.mli:
