lib/sim/cost.ml:
