lib/sim/sync.ml: Cost Engine Printf Queue
