lib/sim/cost.mli:
