examples/crash_recovery.ml: Aggregate Cost Engine File Int64 Nvlog Printf Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage
