examples/quickstart.mli:
