examples/quickstart.ml: Aggregate Bitmap_file Cost Engine File Int64 Printf Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage
