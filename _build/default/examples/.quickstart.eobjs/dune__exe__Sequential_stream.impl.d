examples/sequential_stream.ml: Driver Printf Wafl_core Wafl_harness Wafl_util Wafl_workload
