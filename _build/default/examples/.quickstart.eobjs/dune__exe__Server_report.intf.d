examples/server_report.mli:
