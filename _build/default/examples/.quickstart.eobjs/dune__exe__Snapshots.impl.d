examples/snapshots.ml: Aggregate Cost Counters Engine File Int64 Option Printf Snapshot Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage
