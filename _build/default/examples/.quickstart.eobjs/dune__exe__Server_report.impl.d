examples/server_report.ml: Aggregate Array Cost Engine File List Printf Report Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage Wafl_util
