examples/sequential_stream.mli:
