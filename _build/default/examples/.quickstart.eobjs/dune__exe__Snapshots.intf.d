examples/snapshots.mli:
