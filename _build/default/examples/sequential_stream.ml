(* The paper's motivating scenario: a many-core controller absorbing
   sequential write streams from Fibre-Channel clients.  Runs the same
   workload twice — once with the pre-White-Alligator serialized write
   allocator, once with the full parallel architecture — and compares.

     dune exec examples/sequential_stream.exe *)

open Wafl_workload

let describe name (r : Driver.result) =
  Printf.printf "%s\n" name;
  Printf.printf "  throughput      %8.0f ops/s  (%.0f per client)\n" r.Driver.throughput
    r.Driver.throughput_per_client;
  Printf.printf "  write bandwidth %8.1f MB/s (4 KiB blocks)\n"
    (r.Driver.throughput *. 4096.0 /. 1.0e6);
  Printf.printf "  latency         p50 %.0f us, p99 %.0f us\n"
    (Wafl_util.Histogram.percentile r.Driver.latency 50.0)
    (Wafl_util.Histogram.percentile r.Driver.latency 99.0);
  Printf.printf "  core usage      cleaners %.2f, infrastructure %.2f, clients %.2f (util %.0f%%)\n"
    r.Driver.cores_cleaner r.Driver.cores_infra r.Driver.cores_client
    (100.0 *. r.Driver.utilization);
  Printf.printf "  allocation      %d VBNs placed, %d freed, %d/%d full/partial stripes\n\n"
    r.Driver.vbns_allocated r.Driver.vbns_freed r.Driver.full_stripes r.Driver.partial_stripes

let () =
  let scale = Wafl_harness.Exp.of_env () in
  let spec = Wafl_harness.Exp.spec_base ~scale in
  print_endline "Sequential write streams on a 20-core simulated controller\n";
  let serialized =
    Driver.run
      { spec with Driver.cfg = { Wafl_core.Walloc.serialized_config with cp_timer = Some 250_000.0 } }
  in
  describe "serialized write allocation (pre-2011 architecture)" serialized;
  let wa = Driver.run spec in
  describe "White Alligator (parallel cleaners + parallel infrastructure)" wa;
  Printf.printf "speedup: %+.0f%%\n"
    ((wa.Driver.throughput /. serialized.Driver.throughput -. 1.0) *. 100.0)
