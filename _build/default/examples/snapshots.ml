(* Snapshots: each consistency point is "a self-consistent point-in-time
   image of the file system" (paper §II-C); a snapshot pins one of them.
   Because WAFL never overwrites a block in place, the pinned image stays
   intact on disk no matter how much the active file system churns.

     dune exec examples/snapshots.exe *)

open Wafl_sim
open Wafl_fs

let token ~gen ~fbn = Int64.of_int ((gen * 1_000_000) + fbn)

let () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (4, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  let free () = Counters.read (Aggregate.counters agg) "agg_free_blocks" in
  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         let file = Aggregate.create_file agg ~vol:(Volume.id vol) in
         let blocks = 500 in
         for fbn = 0 to blocks - 1 do
           ignore
             (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn
                ~content:(token ~gen:0 ~fbn))
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         Printf.printf "generation 0 committed; free blocks: %d\n" (free ());

         let snap = Aggregate.create_snapshot agg ~name:"monday" in
         Printf.printf "snapshot %S pins CP generation %d\n" (Snapshot.name snap)
           (Snapshot.generation snap);

         (* Overwrite everything, twice.  Copy-on-write means new blocks
            are allocated while the snapshot's blocks stay pinned. *)
         for gen = 1 to 2 do
           for fbn = 0 to blocks - 1 do
             ignore
               (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn
                  ~content:(token ~gen ~fbn))
           done;
           Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc)
         done;
         Printf.printf "two overwrites later; free blocks: %d (%d pinned by snapshot)\n"
           (free ())
           (Counters.read (Aggregate.counters agg) "snapshot_held_blocks");

         let active = Aggregate.read agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn:7 in
         let old =
           Aggregate.read_snapshot agg snap ~vol:(Volume.id vol) ~file:(File.id file) ~fbn:7
         in
         Printf.printf "fbn 7: active view = %Ld, snapshot view = %Ld\n"
           (Option.get active) (Option.get old);

         Aggregate.delete_snapshot agg snap;
         Printf.printf "snapshot deleted; free blocks: %d\n" (free ());
         Aggregate.fsck agg;
         print_endline "fsck clean"));
  Engine.run eng
