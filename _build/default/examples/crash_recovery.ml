(* Crash consistency demonstration (paper §II-C): operations are
   acknowledged from NVRAM; a crash at any point loses no acknowledged
   write.  The consistency point's copy-on-write discipline means the
   previous superblock's tree is untouched on disk, and NVRAM replay
   reconstructs everything after it.

     dune exec examples/crash_recovery.exe *)

open Wafl_sim
open Wafl_fs

let token ~round ~fbn = Int64.of_int ((round * 1_000_000) + fbn)

let () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (4, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng ~label:"app" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         let file = Aggregate.create_file agg ~vol:(Volume.id vol) in
         (* Round 0 committed by a CP; round 1 only acknowledged in NVRAM. *)
         for fbn = 0 to 499 do
           ignore
             (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn
                ~content:(token ~round:0 ~fbn))
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         for fbn = 0 to 199 do
           ignore
             (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id file) ~fbn
                ~content:(token ~round:1 ~fbn))
         done;
         Printf.printf "before crash: %d ops durable via CP, %d only in NVRAM\n" 500
           (Nvlog.pending (Aggregate.nvlog agg))));
  Engine.run eng;

  (* Pull the plug: all volatile state is gone.  Only the disk image, the
     last superblock and the NVRAM log survive. *)
  let persistent = Aggregate.crash agg in
  print_endline "CRASH: dropping all in-memory state";

  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default persistent in
  Printf.printf "recovered: superblock generation %d, replaying NVRAM\n"
    (Aggregate.generation agg2);
  ignore
    (Engine.spawn eng2 ~label:"verify" (fun () ->
         let lost = ref 0 in
         for fbn = 0 to 499 do
           let expected = if fbn < 200 then token ~round:1 ~fbn else token ~round:0 ~fbn in
           match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
           | Some c when c = expected -> ()
           | _ -> incr lost
         done;
         Printf.printf "verified 500 blocks after recovery: %d lost\n" !lost;
         (* The replayed tail is flushed by the next CP as usual. *)
         let walloc2 = Wafl_core.Walloc.create agg2 Wafl_core.Walloc.default_config in
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc2);
         Aggregate.fsck agg2;
         Printf.printf "post-recovery CP committed (generation %d), fsck clean\n"
           (Aggregate.generation agg2)));
  Engine.run eng2
