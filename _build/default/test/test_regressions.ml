(* Regression tests for failure modes found while building this system.
   Each test names the bug it guards against; these are the scenarios
   that once deadlocked, lost data, or diverged. *)

open Wafl_sim
open Wafl_fs
open Wafl_workload

(* Bug 1: idle cleaner threads retained partially-used buckets, starving
   the per-RAID-group refill cycle: with more cleaners than concurrently
   dirty inodes, the bucket cache drained and every cleaner parked in GET
   forever.  The trigger was many clients funnelling into few work
   messages on a machine with few drives. *)
let test_idle_cleaner_does_not_starve_refill_cycle () =
  let spec =
    {
      Driver.default_spec with
      Driver.cores = 20;
      clients = 24;
      volumes = 1;
      workload = Driver.Seq_write { file_blocks = 4096 };
      geometry =
        Wafl_storage.Geometry.create ~drive_blocks:65536 ~aa_stripes:1024
          ~raid_groups:[ (4, 1) ] ();
      nvlog_half = 4096;
      warmup = 100_000.0;
      measure = 300_000.0;
      cfg =
        {
          (Wafl_harness.Exp.wa_config ~cleaners:8 ~max_cleaners:8 ()) with
          Wafl_core.Walloc.cp_timer = Some 100_000.0;
        };
    }
  in
  let r = Driver.run spec in
  Alcotest.(check bool)
    (Printf.sprintf "progress under cleaner surplus (%d ops)" r.Driver.ops)
    true (r.Driver.ops > 1000)

(* Bug 2: the CP metafile pass held every bucket it drew from until the
   end of the pass; a random-write CP dirties thousands of container
   chunks, needing more buckets than exist, which deadlocked GET.  The
   pass must return exhausted buckets immediately. *)
let test_metafile_heavy_cp_completes () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (3, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry ~nvlog_half:16384 () in
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng ~label:"test" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:32768 in
         Wafl_core.Walloc.register_volume walloc vol;
         let f = Aggregate.create_file agg ~vol:(Volume.id vol) in
         (* Scatter writes across the whole file so nearly every
            container chunk is dirty in one CP. *)
         let r = Wafl_util.Rng.create ~seed:99 in
         for _ = 1 to 8000 do
           ignore
             (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id f)
                ~fbn:(Wafl_util.Rng.int r 16000)
                ~content:7L)
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc);
         (* A second scattered round reuses freed blocks. *)
         for _ = 1 to 8000 do
           ignore
             (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id f)
                ~fbn:(Wafl_util.Rng.int r 16000)
                ~content:8L)
         done;
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc)));
  Engine.run eng;
  Alcotest.(check int) "two CPs completed" 2
    (Wafl_core.Cp.cps_completed (Wafl_core.Walloc.cp walloc));
  Aggregate.fsck agg

(* Bug 3: with a CP timer (or dynamic tuner) fiber alive, Engine.run
   without ~until never returns; drivers and tests must run in bounded
   slices.  Guard the engine-side contract: run ~until always returns
   even when periodic fibers exist. *)
let test_run_until_returns_with_periodic_fibers () =
  let eng = Engine.create ~cores:2 () in
  ignore
    (Engine.spawn eng ~label:"timer" (fun () ->
         while true do
           Engine.sleep 1_000.0
         done));
  Engine.run ~until:50_000.0 eng;
  Alcotest.(check (float 1e-6)) "clock at limit" 50_000.0 (Engine.now eng)

(* Bug 4: the serialized-infrastructure mode originally posted volume-side
   commits to per-volume affinities, leaking parallelism; everything must
   share the single Aggregate_vbn lane. *)
let test_serialized_infra_is_truly_serial () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (3, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in
  let cfg = { Wafl_core.Walloc.serialized_config with cleaner_threads = 4; max_cleaner_threads = 4 } in
  let walloc = Wafl_core.Walloc.create agg cfg in
  ignore
    (Engine.spawn eng ~label:"test" (fun () ->
         let v1 = Aggregate.create_volume agg ~vvbn_space:16384 in
         let v2 = Aggregate.create_volume agg ~vvbn_space:16384 in
         Wafl_core.Walloc.register_volume walloc v1;
         Wafl_core.Walloc.register_volume walloc v2;
         List.iter
           (fun v ->
             let f = Aggregate.create_file agg ~vol:(Volume.id v) in
             for fbn = 0 to 999 do
               ignore
                 (Aggregate.write agg ~vol:(Volume.id v) ~file:(File.id f) ~fbn
                    ~content:(Int64.of_int fbn))
             done)
           [ v1; v2 ];
         Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc)));
  Engine.run eng;
  (* In serialized mode no Range-affinity messages may execute. *)
  let kinds = Wafl_waffinity.Scheduler.executed_by_kind (Wafl_core.Walloc.scheduler walloc) in
  List.iter
    (fun (kind, n) ->
      if kind = "agg_range" || kind = "vol_range" || kind = "volume_vbn" then
        Alcotest.failf "serialized infra executed %d %s messages" n kind)
    kinds;
  Alcotest.(check bool) "aggregate_vbn lane used" true
    (List.mem_assoc "aggregate_vbn" kinds)

(* Bug 5: NVRAM overflow — clients that only reacted to the Half_full
   return value could overrun the log while a CP was in flight; the
   throttle must park them before the hard limit. *)
let test_clients_throttle_against_cp () =
  let spec =
    {
      Driver.default_spec with
      Driver.cores = 4;
      (* Few cores: CPs are slow relative to the offered load. *)
      clients = 8;
      volumes = 1;
      workload = Driver.Seq_write { file_blocks = 2048 };
      geometry = Driver.small_geometry ();
      nvlog_half = 512;
      warmup = 50_000.0;
      measure = 200_000.0;
      cfg = Wafl_harness.Exp.wa_config ~cleaners:2 ~max_cleaners:2 ();
    }
  in
  (* Must not raise "NVRAM exhausted". *)
  let r = Driver.run spec in
  Alcotest.(check bool) "survived with a tiny log" true (r.Driver.ops > 0)

(* Bug 6: blocks enqueued into a tetris after its refcount reached zero
   (metafile write-out racing bucket retirement) were silently dropped,
   corrupting recovery.  End-to-end guard: heavy metafile CPs followed by
   crash + recovery must read back exactly. *)
let test_no_lost_metafile_blocks_across_crash () =
  let eng = Engine.create ~cores:8 () in
  let geometry =
    Wafl_storage.Geometry.create ~drive_blocks:16384 ~aa_stripes:512 ~raid_groups:[ (3, 1) ] ()
  in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry () in
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  ignore
    (Engine.spawn eng ~label:"test" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:32768 in
         Wafl_core.Walloc.register_volume walloc vol;
         let f = Aggregate.create_file agg ~vol:(Volume.id vol) in
         let r = Wafl_util.Rng.create ~seed:5 in
         for round = 1 to 3 do
           for _ = 1 to 4000 do
             let fbn = Wafl_util.Rng.int r 12000 in
             ignore
               (Aggregate.write agg ~vol:(Volume.id vol) ~file:(File.id f) ~fbn
                  ~content:(Int64.of_int ((round * 100_000) + fbn)))
           done;
           Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc)
         done));
  Engine.run eng;
  let pers = Aggregate.crash agg in
  let eng2 = Engine.create ~cores:4 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  (* Every mapped block must be readable — a lost metafile block would
     surface as Corruption here. *)
  let f2 = Volume.file_exn (Aggregate.volume_exn agg2 0) 0 in
  let checked = ref 0 in
  for fbn = 0 to File.nfbns f2 - 1 do
    if File.vvbn_of_fbn f2 fbn >= 0 then begin
      (match Aggregate.read agg2 ~vol:0 ~file:0 ~fbn with
      | Some _ -> ()
      | None -> Alcotest.failf "fbn %d mapped but unreadable" fbn);
      incr checked
    end
  done;
  Alcotest.(check bool) "thousands of blocks verified" true (!checked > 5000);
  Aggregate.fsck agg2

let () =
  Alcotest.run "regressions"
    [
      ( "deadlocks and data loss",
        [
          Alcotest.test_case "idle cleaners don't starve refills" `Quick
            test_idle_cleaner_does_not_starve_refill_cycle;
          Alcotest.test_case "metafile-heavy CP completes" `Quick
            test_metafile_heavy_cp_completes;
          Alcotest.test_case "run ~until with periodic fibers" `Quick
            test_run_until_returns_with_periodic_fibers;
          Alcotest.test_case "serialized infra truly serial" `Quick
            test_serialized_infra_is_truly_serial;
          Alcotest.test_case "clients throttle against CP" `Quick
            test_clients_throttle_against_cp;
          Alcotest.test_case "no lost metafile blocks across crash" `Quick
            test_no_lost_metafile_blocks_across_crash;
        ] );
    ]
