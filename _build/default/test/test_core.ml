(* Unit tests for Wafl_core: buckets, stages, tetris, the GET/USE/PUT API,
   infrastructure refill cycles, the cleaner pool and the dynamic tuner. *)

open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry
open Wafl_core

(* --- Bucket --- *)

let phys_target = Bucket.Phys { rg = 0; drive = 0 }

let dummy_tetris eng cost =
  let geom = Geometry.create ~drive_blocks:1024 ~aa_stripes:128 ~raid_groups:[ (2, 1) ] () in
  let disk = Wafl_storage.Disk.create geom in
  let raid = Wafl_storage.Raid.create eng ~cost ~disk ~rg:0 in
  (Tetris.create eng ~cost ~raid ~expected_buckets:1, disk, raid)

let test_bucket_take_order () =
  let eng = Engine.create ~cores:1 () in
  let tetris, _, _ = dummy_tetris eng Cost.free in
  let b = Bucket.make ~target:phys_target ~tetris ~vbns:[| 10; 11; 13 |] () in
  Alcotest.(check int) "capacity" 3 (Bucket.capacity b);
  Alcotest.(check (option int)) "first" (Some 10) (Bucket.take b);
  Alcotest.(check (option int)) "second" (Some 11) (Bucket.take b);
  Alcotest.(check (list int)) "consumed so far" [ 10; 11 ] (Bucket.consumed b);
  Alcotest.(check (list int)) "unused" [ 13 ] (Bucket.unused b);
  Alcotest.(check (option int)) "third" (Some 13) (Bucket.take b);
  Alcotest.(check (option int)) "exhausted" None (Bucket.take b);
  Alcotest.(check bool) "flag" true (Bucket.is_exhausted b)

let test_bucket_kind_constraints () =
  let eng = Engine.create ~cores:1 () in
  let tetris, _, _ = dummy_tetris eng Cost.free in
  Alcotest.check_raises "phys needs tetris"
    (Invalid_argument "Bucket.make: physical bucket needs a tetris") (fun () ->
      ignore (Bucket.make ~target:phys_target ~vbns:[||] ()));
  Alcotest.check_raises "virt refuses tetris"
    (Invalid_argument "Bucket.make: virtual bucket cannot have a tetris") (fun () ->
      ignore (Bucket.make ~target:(Bucket.Virt { vol = 0 }) ~tetris ~vbns:[||] ()))

let test_api_use_virt_on_phys_rejected () =
  let eng = Engine.create ~cores:1 () in
  let tetris, _, _ = dummy_tetris eng Cost.free in
  let b = Bucket.make ~target:phys_target ~tetris ~vbns:[| 1 |] () in
  Alcotest.check_raises "use_virt on phys"
    (Invalid_argument "Api.use_virt: physical bucket") (fun () -> ignore (Api.use_virt b))

(* --- Stage --- *)

let test_stage_fill_drain () =
  let s = Stage.create ~target:Stage.Phys ~capacity:3 in
  Alcotest.(check bool) "not full" true (Stage.add s 5 = `Ok);
  Alcotest.(check bool) "not full" true (Stage.add s 3 = `Ok);
  Alcotest.(check bool) "full on capacity" true (Stage.add s 9 = `Full);
  Alcotest.(check (list int)) "drain sorted" [ 3; 5; 9 ] (Stage.drain s);
  Alcotest.(check bool) "empty after drain" true (Stage.is_empty s)

(* --- Tetris --- *)

let data vbn = Layout.Data { vol = 0; file = 0; fbn = vbn; content = Int64.of_int vbn }

let test_tetris_submits_on_last_bucket () =
  let eng = Engine.create ~cores:2 () in
  let geom = Geometry.create ~drive_blocks:1024 ~aa_stripes:128 ~raid_groups:[ (2, 1) ] () in
  let disk = Wafl_storage.Disk.create geom in
  ignore
    (Engine.spawn eng ~label:"t" (fun () ->
         let raid = Wafl_storage.Raid.create eng ~cost:Cost.default ~disk ~rg:0 in
         let tetris = Tetris.create eng ~cost:Cost.default ~raid ~expected_buckets:2 in
         Tetris.enqueue tetris ~vbn:0 ~payload:(data 0);
         Tetris.enqueue tetris ~vbn:1024 ~payload:(data 1024);
         Tetris.bucket_done tetris;
         Alcotest.(check int) "no IO before last bucket" 0 (Tetris.ios_submitted tetris);
         Tetris.bucket_done tetris;
         Alcotest.(check int) "IO on last bucket" 1 (Tetris.ios_submitted tetris);
         Alcotest.(check int) "both blocks" 2 (Tetris.blocks_submitted tetris);
         Wafl_storage.Raid.quiesce raid;
         Alcotest.(check bool) "durable" true (Wafl_storage.Disk.read disk 0 <> None)));
  Engine.run eng

let test_tetris_submit_now_then_more () =
  let eng = Engine.create ~cores:2 () in
  let geom = Geometry.create ~drive_blocks:1024 ~aa_stripes:128 ~raid_groups:[ (2, 1) ] () in
  let disk = Wafl_storage.Disk.create geom in
  ignore
    (Engine.spawn eng ~label:"t" (fun () ->
         let raid = Wafl_storage.Raid.create eng ~cost:Cost.default ~disk ~rg:0 in
         let tetris = Tetris.create eng ~cost:Cost.default ~raid ~expected_buckets:1 in
         Tetris.enqueue tetris ~vbn:1 ~payload:(data 1);
         Tetris.submit_now tetris;
         (* Late blocks after an early flush are not lost: the next submit
            picks them up (the CP metafile pass relies on this). *)
         Tetris.enqueue tetris ~vbn:2 ~payload:(data 2);
         Tetris.submit_now tetris;
         Alcotest.(check int) "two IOs" 2 (Tetris.ios_submitted tetris);
         Wafl_storage.Raid.quiesce raid;
         Alcotest.(check bool) "late block durable" true
           (Wafl_storage.Disk.read disk 2 <> None)));
  Engine.run eng

(* --- a full stack for infra / pool tests --- *)

let small_geom () = Geometry.create ~drive_blocks:8192 ~aa_stripes:512 ~raid_groups:[ (3, 1) ] ()

type stack = {
  eng : Engine.t;
  agg : Aggregate.t;
  walloc : Walloc.t;
  vol : Volume.t;
}

let make_stack ?(cfg = Walloc.default_config) () =
  let eng = Engine.create ~cores:8 () in
  let agg = Aggregate.create eng ~cost:Cost.default ~geometry:(small_geom ()) ~nvlog_half:4096 () in
  let walloc = Walloc.create agg cfg in
  let out = ref None in
  ignore
    (Engine.spawn eng ~label:"setup" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Walloc.register_volume walloc vol;
         out := Some vol));
  (* A dynamic-tuner (or CP-timer) fiber keeps the engine from ever going
     idle, so drive setup with bounded slices. *)
  while !out = None do
    Engine.run ~until:(Engine.now eng +. 10_000.0) eng
  done;
  { eng; agg; walloc; vol = Option.get !out }

let in_sim st body =
  ignore (Engine.spawn st.eng ~label:"test" (fun () -> body ()));
  Engine.run st.eng

(* Configurations with a dynamic tuner (or CP timer) keep a periodic fiber
   alive forever, so the engine never goes idle; drive those tests with a
   bounded virtual-time window instead. *)
let in_sim_bounded st ~until body =
  let finished = ref false in
  ignore
    (Engine.spawn st.eng ~label:"test" (fun () ->
         body ();
         finished := true));
  let deadline = ref until in
  while (not !finished) && Engine.now st.eng < !deadline do
    Engine.run ~until:(Engine.now st.eng +. 100_000.0) st.eng
  done;
  Alcotest.(check bool) "test body completed in time" true !finished

(* --- Infra --- *)

let test_infra_initial_fill () =
  let st = make_stack () in
  (* After creation + engine run, each data drive contributed one bucket
     and the volume cache was stocked. *)
  let infra = Walloc.infra st.walloc in
  Alcotest.(check int) "phys cache stocked" 3 (Infra.phys_cache_length infra);
  Alcotest.(check bool) "virt cache stocked" true (Infra.virt_cache_length infra st.vol > 0)

let test_infra_get_use_put_commit_cycle () =
  let st = make_stack () in
  let infra = Walloc.infra st.walloc in
  in_sim st (fun () ->
      let b = Api.get_phys infra in
      let vbns = ref [] in
      (match Api.use b ~payload:(data 0) with
      | Some v -> vbns := v :: !vbns
      | None -> Alcotest.fail "empty bucket");
      (match Api.use b ~payload:(data 1) with
      | Some v -> vbns := v :: !vbns
      | None -> Alcotest.fail "empty bucket");
      (* Consecutive USEs give consecutive VBNs (objective 2). *)
      (match !vbns with
      | [ b1; a ] -> Alcotest.(check int) "contiguous" (a + 1) b1
      | _ -> Alcotest.fail "expected two vbns");
      Api.put infra b;
      (* Let the commit message run. *)
      Wafl_waffinity.Scheduler.drain (Walloc.scheduler st.walloc);
      List.iter
        (fun v ->
          Alcotest.(check bool) "committed in activemap" true
            (Bitmap_file.mem (Aggregate.agg_map st.agg) v))
        !vbns)

let test_infra_equal_progress_per_drive () =
  (* Consume buckets from the cache and check each drive of the RAID
     group is represented exactly once per cycle. *)
  let st = make_stack () in
  let infra = Walloc.infra st.walloc in
  in_sim st (fun () ->
      let drives = ref [] in
      for _ = 1 to 3 do
        let b = Api.get_phys infra in
        (match Bucket.target b with
        | Bucket.Phys { drive; _ } -> drives := drive :: !drives
        | Bucket.Virt _ -> Alcotest.fail "virtual bucket in phys cache");
        Api.put infra b
      done;
      Alcotest.(check (list int)) "one bucket per drive" [ 0; 1; 2 ]
        (List.sort compare !drives))

let test_infra_frees_committed () =
  let st = make_stack () in
  let infra = Walloc.infra st.walloc in
  in_sim st (fun () ->
      (* Allocate a pvbn directly, then free it through the stage path. *)
      Aggregate.commit_alloc_pvbn st.agg 4242;
      let token = Counters.token (Aggregate.counters st.agg) in
      Infra.commit_frees infra ~target:Stage.Phys ~vbns:[ 4242 ] ~token;
      Infra.quiesce_commits infra;
      Alcotest.(check bool) "bit cleared" false (Bitmap_file.mem (Aggregate.agg_map st.agg) 4242);
      Alcotest.(check bool) "frozen until CP" false (Aggregate.pvbn_allocatable st.agg 4242))

let test_infra_virt_bucket_roundtrip () =
  let st = make_stack () in
  let infra = Walloc.infra st.walloc in
  in_sim st (fun () ->
      let b = Api.get_virt infra st.vol in
      (match Api.use_virt b with
      | Some vvbn ->
          Api.put infra b;
          Infra.quiesce_commits infra;
          Alcotest.(check bool) "vvbn committed" true
            (Bitmap_file.mem (Volume.vol_map st.vol) vvbn)
      | None -> Alcotest.fail "virt bucket empty"))

(* --- Cleaner pool --- *)

let test_pool_cleans_and_is_idempotent_on_wait () =
  let st = make_stack () in
  let pool = Walloc.pool st.walloc in
  in_sim st (fun () ->
      let f = Aggregate.create_file st.agg ~vol:(Volume.id st.vol) in
      for fbn = 0 to 9 do
        ignore
          (Aggregate.write st.agg ~vol:(Volume.id st.vol) ~file:(File.id f) ~fbn
             ~content:(Int64.of_int fbn))
      done;
      let snap = Aggregate.cp_snapshot st.agg in
      let work =
        List.concat_map
          (fun (vol, files) ->
            List.map
              (fun file ->
                { Cleaner_pool.vol; file; buffers = File.cp_buffers file; whole_inode = true })
              files)
          snap
      in
      Cleaner_pool.submit pool work;
      Cleaner_pool.wait_idle pool;
      Cleaner_pool.wait_idle pool;
      (* second wait returns immediately *)
      Alcotest.(check int) "ten buffers cleaned" 10 (Cleaner_pool.buffers_cleaned pool);
      Alcotest.(check int) "one inode" 1 (Cleaner_pool.inodes_cleaned pool);
      (* Every cleaned fbn now has a vvbn and a container mapping. *)
      for fbn = 0 to 9 do
        let vvbn = File.vvbn_of_fbn f fbn in
        Alcotest.(check bool) "vvbn assigned" true (vvbn >= 0);
        Alcotest.(check bool) "container mapped" true (Volume.pvbn_of_vvbn st.vol vvbn >= 0)
      done;
      Cleaner_pool.flush_and_wait pool;
      (* Finish the CP so the aggregate is reusable. *)
      Infra.quiesce_commits (Walloc.infra st.walloc);
      Aggregate.publish_superblock st.agg (Aggregate.make_superblock st.agg))

let test_pool_set_active_clamps () =
  let st = make_stack () in
  let pool = Walloc.pool st.walloc in
  in_sim st (fun () ->
      Cleaner_pool.set_active pool 0;
      Alcotest.(check int) "min one" 1 (Cleaner_pool.active pool);
      Cleaner_pool.set_active pool 999;
      Alcotest.(check int) "max clamp" (Cleaner_pool.max_threads pool)
        (Cleaner_pool.active pool))

(* --- Tuner --- *)

let test_tuner_activates_under_load () =
  let cfg =
    {
      Walloc.default_config with
      cleaner_threads = 1;
      max_cleaner_threads = 6;
      dynamic_cleaners = true;
      tuner = { Tuner.interval = 1_000.0; activate_above = 0.5; deactivate_below = 0.2 };
    }
  in
  let st = make_stack ~cfg () in
  let pool = Walloc.pool st.walloc in
  ignore pool;
  in_sim_bounded st ~until:10_000_000.0 (fun () ->
      (* Heavy cleaning load: large file, several CPs. *)
      let f = Aggregate.create_file st.agg ~vol:(Volume.id st.vol) in
      for round = 0 to 2 do
        for fbn = 0 to 2999 do
          ignore
            (Aggregate.write st.agg ~vol:(Volume.id st.vol) ~file:(File.id f) ~fbn
               ~content:(Int64.of_int (round + fbn)))
        done;
        Cp.run_now (Walloc.cp st.walloc)
      done);
  (* Threads are activated during the heavy CPs and correctly dropped
     again once cleaning ends, so inspect the tuner's decision log. *)
  match Walloc.tuner st.walloc with
  | Some tuner ->
      Alcotest.(check bool)
        (Printf.sprintf "threads were activated (%d times)" (Tuner.activations tuner))
        true
        (Tuner.activations tuner > 0)
  | None -> Alcotest.fail "tuner not created" 

let test_tuner_deactivates_when_idle () =
  let cfg =
    {
      Walloc.default_config with
      cleaner_threads = 4;
      max_cleaner_threads = 6;
      dynamic_cleaners = true;
      tuner = { Tuner.interval = 1_000.0; activate_above = 0.9; deactivate_below = 0.5 };
    }
  in
  let st = make_stack ~cfg () in
  let pool = Walloc.pool st.walloc in
  in_sim_bounded st ~until:1_000_000.0 (fun () -> Engine.sleep 20_000.0);
  Alcotest.(check int) "dropped to one" 1 (Cleaner_pool.active pool)

(* --- CP engine specifics --- *)

let test_cp_converges_and_counts () =
  let st = make_stack () in
  let cp = Walloc.cp st.walloc in
  in_sim st (fun () ->
      let f = Aggregate.create_file st.agg ~vol:(Volume.id st.vol) in
      for fbn = 0 to 499 do
        ignore
          (Aggregate.write st.agg ~vol:(Volume.id st.vol) ~file:(File.id f) ~fbn
             ~content:(Int64.of_int fbn))
      done;
      Cp.run_now cp);
  Alcotest.(check int) "buffers counted" 500 (Cp.buffers_last_cp cp);
  Alcotest.(check bool) "meta blocks written" true (Cp.meta_blocks_last_cp cp > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fixpoint converged in %d passes" (Cp.meta_passes_last_cp cp))
    true
    (Cp.meta_passes_last_cp cp <= 8);
  Alcotest.(check string) "idle after CP" "idle" (Cp.phase cp)

let test_cp_empty_is_cheap_and_correct () =
  let st = make_stack () in
  let cp = Walloc.cp st.walloc in
  in_sim st (fun () ->
      Cp.run_now cp;
      Cp.run_now cp);
  Alcotest.(check int) "two CPs" 2 (Cp.cps_completed cp);
  Alcotest.(check int) "nothing cleaned" 0 (Cp.buffers_last_cp cp);
  Aggregate.fsck st.agg

let test_cp_batching_reduces_messages () =
  let messages_with batching =
    let cfg = { Walloc.default_config with batching } in
    let st = make_stack ~cfg () in
    let pool = Walloc.pool st.walloc in
    in_sim st (fun () ->
        (* Many small files: one dirty buffer each. *)
        for _ = 1 to 60 do
          let f = Aggregate.create_file st.agg ~vol:(Volume.id st.vol) in
          ignore
            (Aggregate.write st.agg ~vol:(Volume.id st.vol) ~file:(File.id f) ~fbn:0
               ~content:1L)
        done;
        Cp.run_now (Walloc.cp st.walloc));
    Cleaner_pool.messages_processed pool
  in
  let batched = messages_with true and unbatched = messages_with false in
  Alcotest.(check bool)
    (Printf.sprintf "batching reduces messages (%d vs %d)" batched unbatched)
    true
    (batched * 4 <= unbatched);
  Alcotest.(check int) "unbatched is one per inode" 60 unbatched

let test_cp_segments_large_inode () =
  let cfg = { Walloc.default_config with segment_buffers = 100 } in
  let st = make_stack ~cfg () in
  let pool = Walloc.pool st.walloc in
  in_sim st (fun () ->
      let f = Aggregate.create_file st.agg ~vol:(Volume.id st.vol) in
      for fbn = 0 to 449 do
        ignore
          (Aggregate.write st.agg ~vol:(Volume.id st.vol) ~file:(File.id f) ~fbn
             ~content:(Int64.of_int fbn))
      done;
      Cp.run_now (Walloc.cp st.walloc));
  (* 450 buffers / 100 per segment = 5 messages for one inode. *)
  Alcotest.(check int) "five segments" 5 (Cleaner_pool.messages_processed pool);
  Alcotest.(check int) "inode counted once" 1 (Cleaner_pool.inodes_cleaned pool);
  Alcotest.(check int) "all buffers cleaned" 450 (Cleaner_pool.buffers_cleaned pool);
  Aggregate.fsck st.agg

let () =
  Alcotest.run "wafl_core"
    [
      ( "bucket",
        [
          Alcotest.test_case "take order" `Quick test_bucket_take_order;
          Alcotest.test_case "kind constraints" `Quick test_bucket_kind_constraints;
          Alcotest.test_case "api kind check" `Quick test_api_use_virt_on_phys_rejected;
        ] );
      ("stage", [ Alcotest.test_case "fill and drain" `Quick test_stage_fill_drain ]);
      ( "tetris",
        [
          Alcotest.test_case "submits on last bucket" `Quick test_tetris_submits_on_last_bucket;
          Alcotest.test_case "late blocks not lost" `Quick test_tetris_submit_now_then_more;
        ] );
      ( "infra",
        [
          Alcotest.test_case "initial fill" `Quick test_infra_initial_fill;
          Alcotest.test_case "get/use/put commit cycle" `Quick
            test_infra_get_use_put_commit_cycle;
          Alcotest.test_case "equal progress per drive" `Quick
            test_infra_equal_progress_per_drive;
          Alcotest.test_case "frees committed and frozen" `Quick test_infra_frees_committed;
          Alcotest.test_case "virt bucket roundtrip" `Quick test_infra_virt_bucket_roundtrip;
        ] );
      ( "cleaner_pool",
        [
          Alcotest.test_case "cleans buffers" `Quick test_pool_cleans_and_is_idempotent_on_wait;
          Alcotest.test_case "set_active clamps" `Quick test_pool_set_active_clamps;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "activates under load" `Quick test_tuner_activates_under_load;
          Alcotest.test_case "deactivates when idle" `Quick test_tuner_deactivates_when_idle;
        ] );
      ( "cp",
        [
          Alcotest.test_case "converges and counts" `Quick test_cp_converges_and_counts;
          Alcotest.test_case "empty CP" `Quick test_cp_empty_is_cheap_and_correct;
          Alcotest.test_case "batching reduces messages" `Quick
            test_cp_batching_reduces_messages;
          Alcotest.test_case "large inode segmented" `Quick test_cp_segments_large_inode;
        ] );
    ]
