(* Snapshot tests: point-in-time read-back, block pinning, space
   accounting, persistence across crashes, interaction with deletion.
   Snapshots are the strongest consumer of the copy-on-write guarantee:
   any allocator bug that reuses a referenced block corrupts them. *)

open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry

let small_geometry () =
  Geometry.create ~drive_blocks:8192 ~aa_stripes:512 ~raid_groups:[ (3, 1); (3, 1) ] ()

type env = {
  eng : Engine.t;
  agg : Aggregate.t;
  walloc : Wafl_core.Walloc.t;
  vol : Volume.t;
}

let make_env () =
  let eng = Engine.create ~cores:8 () in
  let agg =
    Aggregate.create eng ~cost:Cost.default ~geometry:(small_geometry ()) ~nvlog_half:4096 ()
  in
  let walloc = Wafl_core.Walloc.create agg Wafl_core.Walloc.default_config in
  let env = ref None in
  ignore
    (Engine.spawn eng ~label:"setup" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         Wafl_core.Walloc.register_volume walloc vol;
         env := Some vol));
  Engine.run eng;
  { eng; agg; walloc; vol = Option.get !env }

let in_sim env body =
  ignore (Engine.spawn env.eng ~label:"test" (fun () -> body ()));
  Engine.run env.eng

let token ~gen ~fbn = Int64.of_int ((gen * 1_000_000) + fbn)

let write_gen env f ~blocks ~gen =
  for fbn = 0 to blocks - 1 do
    ignore
      (Aggregate.write env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn
         ~content:(token ~gen ~fbn))
  done

let run_cp env = Wafl_core.Cp.run_now (Wafl_core.Walloc.cp env.walloc)

let test_snapshot_reads_past () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:200 ~gen:0;
      run_cp env;
      let snap = Aggregate.create_snapshot env.agg ~name:"nightly" in
      (* Overwrite everything twice so the old blocks would normally be
         reused. *)
      write_gen env f ~blocks:200 ~gen:1;
      run_cp env;
      write_gen env f ~blocks:200 ~gen:2;
      run_cp env;
      (* Active view sees gen 2; the snapshot still reads gen 0. *)
      for fbn = 0 to 199 do
        (match Aggregate.read env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn with
        | Some c when c = token ~gen:2 ~fbn -> ()
        | _ -> Alcotest.failf "active fbn %d: wrong content" fbn);
        match Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn with
        | Some c when c = token ~gen:0 ~fbn -> ()
        | Some c -> Alcotest.failf "snapshot fbn %d: got %Ld" fbn c
        | None -> Alcotest.failf "snapshot fbn %d: hole" fbn
      done);
  Aggregate.fsck env.agg

let test_snapshot_pins_space_until_delete () =
  let env = make_env () in
  let free_at_snap = ref 0 and free_with_snap = ref 0 in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:300 ~gen:0;
      run_cp env;
      free_at_snap := Counters.read (Aggregate.counters env.agg) "agg_free_blocks";
      let snap = Aggregate.create_snapshot env.agg ~name:"pin" in
      write_gen env f ~blocks:300 ~gen:1;
      run_cp env;
      run_cp env;
      free_with_snap := Counters.read (Aggregate.counters env.agg) "agg_free_blocks";
      (* The overwrite could not reuse the snapshot's ~300 data blocks. *)
      Alcotest.(check bool)
        (Printf.sprintf "space pinned (%d -> %d)" !free_at_snap !free_with_snap)
        true
        (!free_with_snap <= !free_at_snap - 250);
      Alcotest.(check bool) "held counter positive" true
        (Counters.read (Aggregate.counters env.agg) "snapshot_held_blocks" > 250);
      Aggregate.fsck env.agg;
      Aggregate.delete_snapshot env.agg snap;
      let free_after = Counters.read (Aggregate.counters env.agg) "agg_free_blocks" in
      Alcotest.(check bool)
        (Printf.sprintf "space released (%d -> %d)" !free_with_snap free_after)
        true
        (free_after >= !free_at_snap - 64);
      Alcotest.(check int) "held counter zero" 0
        (Counters.read (Aggregate.counters env.agg) "snapshot_held_blocks"));
  Aggregate.fsck env.agg

let test_snapshot_survives_crash () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:100 ~gen:0;
      run_cp env;
      ignore (Aggregate.create_snapshot env.agg ~name:"persist-me");
      write_gen env f ~blocks:100 ~gen:1;
      (* This CP persists the snapshot root in the superblock. *)
      run_cp env);
  let pers = Aggregate.crash env.agg in
  let eng2 = Engine.create ~cores:8 () in
  let agg2 = Aggregate.recover eng2 ~cost:Cost.default pers in
  (match Aggregate.find_snapshot agg2 "persist-me" with
  | None -> Alcotest.fail "snapshot lost across crash"
  | Some snap ->
      for fbn = 0 to 99 do
        match Aggregate.read_snapshot agg2 snap ~vol:0 ~file:0 ~fbn with
        | Some c when c = token ~gen:0 ~fbn -> ()
        | _ -> Alcotest.failf "snapshot fbn %d: wrong content after recovery" fbn
      done);
  Aggregate.fsck agg2

let test_snapshot_protects_deleted_file () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:150 ~gen:0;
      run_cp env;
      let snap = Aggregate.create_snapshot env.agg ~name:"before-delete" in
      Aggregate.delete_file env.agg ~vol:(Volume.id env.vol) ~file:(File.id f);
      run_cp env;
      run_cp env;
      Alcotest.(check bool) "file gone from active" true
        (Volume.file env.vol (File.id f) = None);
      (* The snapshot still reads the deleted file's data. *)
      for fbn = 0 to 149 do
        match
          Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn
        with
        | Some c when c = token ~gen:0 ~fbn -> ()
        | _ -> Alcotest.failf "snapshot fbn %d: deleted file unreadable" fbn
      done);
  Aggregate.fsck env.agg

let test_multiple_snapshots_generations () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      let snaps = ref [] in
      for gen = 0 to 2 do
        write_gen env f ~blocks:100 ~gen;
        run_cp env;
        snaps := Aggregate.create_snapshot env.agg ~name:(Printf.sprintf "gen%d" gen) :: !snaps
      done;
      write_gen env f ~blocks:100 ~gen:3;
      run_cp env;
      (* Each snapshot reads its own generation. *)
      List.iteri
        (fun i snap ->
          let gen = 2 - i in
          for fbn = 0 to 99 do
            match
              Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:(File.id f)
                ~fbn
            with
            | Some c when c = token ~gen ~fbn -> ()
            | _ -> Alcotest.failf "snapshot gen%d fbn %d: wrong content" gen fbn
          done)
        !snaps;
      (* Delete the middle snapshot; the others stay valid. *)
      (match Aggregate.find_snapshot env.agg "gen1" with
      | Some s -> Aggregate.delete_snapshot env.agg s
      | None -> Alcotest.fail "gen1 missing");
      Aggregate.fsck env.agg;
      List.iter
        (fun name ->
          match Aggregate.find_snapshot env.agg name with
          | Some snap ->
              let gen = if name = "gen0" then 0 else 2 in
              for fbn = 0 to 99 do
                match
                  Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol)
                    ~file:(File.id f) ~fbn
                with
                | Some c when c = token ~gen ~fbn -> ()
                | _ -> Alcotest.failf "%s fbn %d: wrong after deleting sibling" name fbn
              done
          | None -> Alcotest.failf "%s missing" name)
        [ "gen0"; "gen2" ]);
  Aggregate.fsck env.agg

let test_snapshot_guards () =
  let env = make_env () in
  in_sim env (fun () ->
      (* No CP yet: nothing to pin. *)
      (try
         ignore (Aggregate.create_snapshot env.agg ~name:"too-early");
         Alcotest.fail "snapshot before first CP should be rejected"
       with Invalid_argument _ -> ());
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:10 ~gen:0;
      run_cp env;
      ignore (Aggregate.create_snapshot env.agg ~name:"dup");
      try
        ignore (Aggregate.create_snapshot env.agg ~name:"dup");
        Alcotest.fail "duplicate snapshot name should be rejected"
      with Invalid_argument _ -> ())

let test_snapshot_holes_and_absent_files () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:10 ~gen:0;
      run_cp env;
      let snap = Aggregate.create_snapshot env.agg ~name:"s" in
      Alcotest.(check (option int64)) "hole" None
        (Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:(File.id f)
           ~fbn:5000);
      Alcotest.(check (option int64)) "absent file" None
        (Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:999 ~fbn:0);
      Alcotest.(check (option int64)) "absent volume" None
        (Aggregate.read_snapshot env.agg snap ~vol:42 ~file:0 ~fbn:0))

let prop_snapshot_immutable_under_random_traffic =
  QCheck.Test.make ~name:"snapshot content immutable under random overwrites" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let env = make_env () in
      let r = Wafl_util.Rng.create ~seed in
      let blocks = 150 in
      let ok = ref true in
      in_sim env (fun () ->
          let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
          write_gen env f ~blocks ~gen:0;
          run_cp env;
          let snap = Aggregate.create_snapshot env.agg ~name:"frozen" in
          (* Random overwrite traffic across several CPs. *)
          for round = 1 to 4 do
            for _ = 1 to 300 do
              let fbn = Wafl_util.Rng.int r blocks in
              ignore
                (Aggregate.write env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn
                   ~content:(token ~gen:round ~fbn))
            done;
            run_cp env
          done;
          for fbn = 0 to blocks - 1 do
            match
              Aggregate.read_snapshot env.agg snap ~vol:(Volume.id env.vol) ~file:(File.id f)
                ~fbn
            with
            | Some c when c = token ~gen:0 ~fbn -> ()
            | _ -> ok := false
          done);
      Aggregate.fsck env.agg;
      !ok)

(* --- operator reports (Report uses snapshots, so tested here) --- *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_reports () =
  let env = make_env () in
  in_sim env (fun () ->
      let f = Aggregate.create_file env.agg ~vol:(Volume.id env.vol) in
      write_gen env f ~blocks:100 ~gen:0;
      run_cp env;
      ignore (Aggregate.create_snapshot env.agg ~name:"report-me");
      write_gen env f ~blocks:100 ~gen:1;
      run_cp env;
      for fbn = 0 to 99 do
        ignore (Aggregate.read env.agg ~vol:(Volume.id env.vol) ~file:(File.id f) ~fbn)
      done;
      let space = Report.space env.agg in
      Alcotest.(check bool) "space mentions the aggregate" true (contains space "aggregate:");
      Alcotest.(check bool) "space mentions the volume" true (contains space "volume 0:");
      Alcotest.(check bool) "space reports cache hit rate" true (contains space "hit rate");
      Alcotest.(check bool) "space reports snapshot-held blocks" true
        (contains space "snapshot-held");
      let snaps = Report.snapshots env.agg in
      Alcotest.(check bool) "snapshot listed by name" true (contains snaps "report-me");
      let aas = Report.allocation_areas env.agg in
      Alcotest.(check bool) "AA report covers both groups" true
        (contains aas "raid group 0" && contains aas "raid group 1"))

let test_report_no_snapshots () =
  let env = make_env () in
  Alcotest.(check string) "empty snapshot list" "no snapshots\n" (Report.snapshots env.agg)

let () =
  Alcotest.run "snapshots"
    [
      ( "snapshot",
        [
          Alcotest.test_case "reads the past" `Quick test_snapshot_reads_past;
          Alcotest.test_case "pins space until delete" `Quick
            test_snapshot_pins_space_until_delete;
          Alcotest.test_case "survives crash" `Quick test_snapshot_survives_crash;
          Alcotest.test_case "protects deleted file" `Quick test_snapshot_protects_deleted_file;
          Alcotest.test_case "multiple generations" `Quick test_multiple_snapshots_generations;
          Alcotest.test_case "creation guards" `Quick test_snapshot_guards;
          Alcotest.test_case "holes and absent files" `Quick
            test_snapshot_holes_and_absent_files;
          QCheck_alcotest.to_alcotest ~verbose:false
            prop_snapshot_immutable_under_random_traffic;
        ] );
      ( "reports",
        [
          Alcotest.test_case "space/snapshots/AA reports" `Quick test_reports;
          Alcotest.test_case "no snapshots" `Quick test_report_no_snapshots;
        ] );
    ]
