(* Tests for the discrete-event engine: virtual time, core limits, CPU
   accounting, preemption, synchronization primitives, determinism. *)

open Wafl_sim

let check_float = Alcotest.(check (float 1e-6))

let test_single_fiber_time () =
  let eng = Engine.create ~cores:1 () in
  let done_at = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 10.0;
         Engine.consume 5.0;
         done_at := Engine.now eng));
  Engine.run eng;
  check_float "consumes add up" 15.0 !done_at;
  check_float "clock at end" 15.0 (Engine.now eng)

let test_parallel_on_two_cores () =
  let eng = Engine.create ~cores:2 () in
  for _ = 1 to 2 do
    ignore (Engine.spawn eng (fun () -> Engine.consume 100.0))
  done;
  Engine.run eng;
  check_float "two fibers overlap fully" 100.0 (Engine.now eng)

let test_serialization_on_one_core () =
  let eng = Engine.create ~cores:1 () in
  for _ = 1 to 2 do
    ignore (Engine.spawn eng (fun () -> Engine.consume 100.0))
  done;
  Engine.run eng;
  check_float "two fibers serialize" 200.0 (Engine.now eng)

let test_three_fibers_two_cores () =
  let eng = Engine.create ~quantum:0.0 ~cores:2 () in
  for _ = 1 to 3 do
    ignore (Engine.spawn eng (fun () -> Engine.consume 100.0))
  done;
  Engine.run eng;
  check_float "third fiber waits for a core" 200.0 (Engine.now eng)

let test_sleep () =
  let eng = Engine.create ~cores:1 () in
  let woke = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.sleep 50.0;
         woke := Engine.now eng));
  Engine.run eng;
  check_float "sleep wakes at the right time" 50.0 !woke

let test_sleep_releases_core () =
  let eng = Engine.create ~cores:1 () in
  let order = ref [] in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.sleep 100.0;
         order := "sleeper" :: !order));
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 10.0;
         order := "worker" :: !order));
  Engine.run eng;
  Alcotest.(check (list string)) "worker ran during the sleep" [ "sleeper"; "worker" ] !order

let test_spawn_at () =
  let eng = Engine.create ~cores:1 () in
  let started = ref 0.0 in
  ignore (Engine.spawn eng ~at:42.0 (fun () -> started := Engine.now eng));
  Engine.run eng;
  check_float "delayed spawn" 42.0 !started

let test_accounting_by_label () =
  let eng = Engine.create ~cores:4 () in
  ignore (Engine.spawn eng ~label:"cleaner" (fun () -> Engine.consume 30.0));
  ignore (Engine.spawn eng ~label:"cleaner" (fun () -> Engine.consume 20.0));
  ignore (Engine.spawn eng ~label:"infra" (fun () -> Engine.consume 100.0));
  Engine.run eng;
  check_float "cleaner busy" 50.0 (Engine.busy eng "cleaner");
  check_float "infra busy" 100.0 (Engine.busy eng "infra");
  check_float "cleaner cores-used" 0.5 (Engine.cores_used eng "cleaner");
  check_float "utilization" (150.0 /. 400.0) (Engine.utilization eng)

let test_accounting_reset () =
  let eng = Engine.create ~cores:1 () in
  ignore
    (Engine.spawn eng ~label:"w" (fun () ->
         Engine.consume 10.0;
         Engine.sleep 10.0;
         Engine.consume 7.0));
  Engine.run ~until:15.0 eng;
  Engine.reset_accounting eng;
  Engine.run eng;
  check_float "only post-reset work counted" 7.0 (Engine.busy eng "w")

let test_set_label () =
  let eng = Engine.create ~cores:1 () in
  ignore
    (Engine.spawn eng ~label:"a" (fun () ->
         Engine.consume 10.0;
         Engine.set_label eng "b";
         Engine.consume 5.0));
  Engine.run eng;
  check_float "label a" 10.0 (Engine.busy eng "a");
  check_float "label b" 5.0 (Engine.busy eng "b")

let test_run_until_resumable () =
  let eng = Engine.create ~cores:1 () in
  let finished = ref false in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 100.0;
         finished := true));
  Engine.run ~until:40.0 eng;
  check_float "clock stopped at limit" 40.0 (Engine.now eng);
  Alcotest.(check bool) "not finished yet" false !finished;
  Engine.run eng;
  Alcotest.(check bool) "finished after continuing" true !finished;
  check_float "full time elapsed" 100.0 (Engine.now eng)

let test_quantum_preemption () =
  (* With a quantum, two long CPU hogs on one core interleave rather than
     running to completion in spawn order. *)
  let eng = Engine.create ~quantum:10.0 ~cores:1 () in
  let first_done = ref 0.0 and second_done = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 10 do
           Engine.consume 10.0
         done;
         first_done := Engine.now eng));
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 10 do
           Engine.consume 10.0
         done;
         second_done := Engine.now eng));
  Engine.run eng;
  (* Round-robin slicing means neither hog finishes early: without a
     quantum the first would finish at t=100. *)
  Alcotest.(check bool)
    (Printf.sprintf "interleaved (first at %.0f, second at %.0f)" !first_done !second_done)
    true
    (!first_done >= 190.0 && !second_done >= 190.0)

let test_no_quantum_runs_to_completion () =
  let eng = Engine.create ~quantum:0.0 ~cores:1 () in
  let first_done = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 10 do
           Engine.consume 10.0
         done;
         first_done := Engine.now eng));
  ignore (Engine.spawn eng (fun () -> Engine.consume 100.0));
  Engine.run eng;
  check_float "first fiber unpreempted" 100.0 !first_done

let test_yield_round_robin () =
  let eng = Engine.create ~cores:1 () in
  let order = Buffer.create 16 in
  let worker c =
    Engine.spawn eng (fun () ->
        for _ = 1 to 3 do
          Buffer.add_char order c;
          Engine.yield ()
        done)
  in
  ignore (worker 'a');
  ignore (worker 'b');
  Engine.run eng;
  Alcotest.(check string) "strict alternation" "ababab" (Buffer.contents order)

let test_join () =
  let eng = Engine.create ~cores:2 () in
  let seen = ref 0.0 in
  let producer = Engine.spawn eng (fun () -> Engine.consume 80.0) in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.join eng producer;
         seen := Engine.now eng));
  Engine.run eng;
  check_float "join waits for completion" 80.0 !seen

let test_join_finished_fiber () =
  let eng = Engine.create ~cores:1 () in
  let ok = ref false in
  let quick = Engine.spawn eng (fun () -> ()) in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 5.0;
         Engine.join eng quick;
         ok := true));
  Engine.run eng;
  Alcotest.(check bool) "join on finished fiber returns" true !ok

let test_stalled_fiber_detection () =
  let eng = Engine.create ~cores:1 () in
  ignore (Engine.spawn eng ~label:"stuck" (fun () -> Engine.park eng));
  Engine.run eng;
  match Engine.stalled_fibers eng with
  | [ (_, label) ] -> Alcotest.(check string) "stalled label" "stuck" label
  | other -> Alcotest.failf "expected one stalled fiber, got %d" (List.length other)

let test_determinism () =
  let trace () =
    let eng = Engine.create ~cores:3 () in
    let buf = Buffer.create 64 in
    let r = Wafl_util.Rng.create ~seed:99 in
    for i = 0 to 9 do
      let work = 1.0 +. Wafl_util.Rng.float r 10.0 in
      ignore
        (Engine.spawn eng (fun () ->
             Engine.consume work;
             Buffer.add_string buf (Printf.sprintf "%d@%.3f;" i (Engine.now eng))))
    done;
    Engine.run eng;
    Buffer.contents buf
  in
  Alcotest.(check string) "identical traces" (trace ()) (trace ())

(* --- Sync primitives --- *)

let test_mutex_exclusion () =
  let eng = Engine.create ~cores:4 () in
  let m = Sync.Mutex.create ~acquire_cost:0.0 eng in
  let in_section = ref 0 and max_in_section = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn eng (fun () ->
           Sync.Mutex.with_lock m (fun () ->
               incr in_section;
               if !in_section > !max_in_section then max_in_section := !in_section;
               Engine.consume 10.0;
               decr in_section)))
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_in_section;
  check_float "critical sections serialized" 40.0 (Engine.now eng);
  Alcotest.(check int) "three acquisitions contended" 3 (Sync.Mutex.contended_acquires m);
  Alcotest.(check int) "four acquisitions total" 4 (Sync.Mutex.acquires m)

let test_mutex_cost_charged () =
  let eng = Engine.create ~cores:1 () in
  let m = Sync.Mutex.create ~acquire_cost:2.0 eng in
  ignore
    (Engine.spawn eng ~label:"locker" (fun () ->
         Sync.Mutex.with_lock m (fun () -> ())));
  Engine.run eng;
  check_float "acquire cost charged" 2.0 (Engine.busy eng "locker")

let test_mutex_unlock_by_non_owner () =
  let eng = Engine.create ~cores:1 () in
  let m = Sync.Mutex.create ~name:"m" eng in
  let raised = ref false in
  ignore
    (Engine.spawn eng (fun () ->
         try Sync.Mutex.unlock m with Invalid_argument _ -> raised := true));
  Engine.run eng;
  Alcotest.(check bool) "unlock by non-owner rejected" true !raised

let test_condition_signal () =
  let eng = Engine.create ~cores:2 () in
  let m = Sync.Mutex.create ~acquire_cost:0.0 eng in
  let c = Sync.Condition.create eng in
  let ready = ref false and observed = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         Sync.Mutex.lock m;
         while not !ready do
           Sync.Condition.wait c m
         done;
         observed := Engine.now eng;
         Sync.Mutex.unlock m));
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 30.0;
         Sync.Mutex.lock m;
         ready := true;
         Sync.Condition.signal c;
         Sync.Mutex.unlock m));
  Engine.run eng;
  check_float "woken after signal" 30.0 !observed

let test_condition_broadcast () =
  let eng = Engine.create ~cores:4 () in
  let m = Sync.Mutex.create ~acquire_cost:0.0 eng in
  let c = Sync.Condition.create eng in
  let woken = ref 0 and go = ref false in
  for _ = 1 to 3 do
    ignore
      (Engine.spawn eng (fun () ->
           Sync.Mutex.lock m;
           while not !go do
             Sync.Condition.wait c m
           done;
           incr woken;
           Sync.Mutex.unlock m))
  done;
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 5.0;
         Sync.Mutex.lock m;
         go := true;
         Sync.Condition.broadcast c;
         Sync.Mutex.unlock m));
  Engine.run eng;
  Alcotest.(check int) "all waiters woken" 3 !woken;
  Alcotest.(check (list (pair int string))) "no stalled fibers" [] (Engine.stalled_fibers eng)

let test_channel_fifo () =
  let eng = Engine.create ~cores:1 () in
  let ch = Sync.Channel.create eng in
  let received = ref [] in
  ignore
    (Engine.spawn eng (fun () ->
         for i = 1 to 5 do
           Sync.Channel.send ch i
         done));
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 5 do
           received := Sync.Channel.recv ch :: !received
         done));
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5 ] (List.rev !received)

let test_channel_blocking_recv () =
  let eng = Engine.create ~cores:2 () in
  let ch = Sync.Channel.create eng in
  let got_at = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         ignore (Sync.Channel.recv ch);
         got_at := Engine.now eng));
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 25.0;
         Sync.Channel.send ch ()));
  Engine.run eng;
  check_float "receiver blocked until send" 25.0 !got_at

let test_channel_bounded_backpressure () =
  let eng = Engine.create ~cores:2 () in
  let ch = Sync.Channel.create ~capacity:2 eng in
  let sent_all_at = ref 0.0 in
  ignore
    (Engine.spawn eng (fun () ->
         for i = 1 to 4 do
           Sync.Channel.send ch i
         done;
         sent_all_at := Engine.now eng));
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 4 do
           Engine.sleep 10.0;
           ignore (Sync.Channel.recv ch)
         done));
  Engine.run eng;
  (* Two sends fit immediately; the third must wait for the first recv at
     t=10, the fourth for the second recv at t=20. *)
  check_float "producer throttled by capacity" 20.0 !sent_all_at

let test_channel_try_recv () =
  let eng = Engine.create ~cores:1 () in
  let ch = Sync.Channel.create eng in
  let first = ref (Some 0) and second = ref None in
  ignore
    (Engine.spawn eng (fun () ->
         first := Sync.Channel.try_recv ch;
         Sync.Channel.send ch 7;
         second := Sync.Channel.try_recv ch));
  Engine.run eng;
  Alcotest.(check (option int)) "empty" None !first;
  Alcotest.(check (option int)) "nonempty" (Some 7) !second

let test_waitq () =
  let eng = Engine.create ~cores:2 () in
  let wq = Sync.Waitq.create eng in
  let woke = ref [] in
  for i = 1 to 2 do
    ignore
      (Engine.spawn eng (fun () ->
           Sync.Waitq.wait wq;
           woke := i :: !woke))
  done;
  ignore
    (Engine.spawn eng (fun () ->
         Engine.consume 10.0;
         Alcotest.(check int) "two waiters" 2 (Sync.Waitq.waiters wq);
         ignore (Sync.Waitq.wake_one wq);
         Engine.consume 10.0;
         Alcotest.(check int) "remaining woken" 1 (Sync.Waitq.wake_all wq)));
  Engine.run eng;
  Alcotest.(check int) "both woke" 2 (List.length !woke)

let test_mutex_fairness_fifo () =
  let eng = Engine.create ~quantum:0.0 ~cores:3 () in
  let m = Sync.Mutex.create ~acquire_cost:0.0 eng in
  let order = ref [] in
  (* Holder takes the lock first; two contenders arrive in a known order. *)
  ignore
    (Engine.spawn eng (fun () ->
         Sync.Mutex.lock m;
         Engine.consume 50.0;
         Sync.Mutex.unlock m));
  for i = 1 to 2 do
    ignore
      (Engine.spawn eng (fun () ->
           Engine.consume (float_of_int i);
           Sync.Mutex.lock m;
           order := i :: !order;
           Sync.Mutex.unlock m))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO handoff" [ 1; 2 ] (List.rev !order)

(* --- property: the engine is a pure function of its program --- *)

(* A random "program" of fibers doing consumes, sleeps, yields, channel
   sends/receives and mutex critical sections must produce a bit-identical
   event trace on every execution. *)
let run_random_program seed =
  let r = Wafl_util.Rng.create ~seed in
  let eng = Engine.create ~cores:(1 + Wafl_util.Rng.int r 4) () in
  let trace = Buffer.create 256 in
  let ch = Sync.Channel.create eng in
  let m = Sync.Mutex.create ~acquire_cost:0.1 eng in
  let nfibers = 2 + Wafl_util.Rng.int r 6 in
  let nsenders = ref 0 in
  for i = 0 to nfibers - 1 do
    let my_rng = Wafl_util.Rng.split r in
    let sender = Wafl_util.Rng.bool my_rng in
    if sender then incr nsenders;
    ignore
      (Engine.spawn eng ~label:(Printf.sprintf "f%d" i) (fun () ->
           for step = 0 to 4 + Wafl_util.Rng.int my_rng 8 do
             match Wafl_util.Rng.int my_rng 4 with
             | 0 -> Engine.consume (1.0 +. Wafl_util.Rng.float my_rng 20.0)
             | 1 -> Engine.sleep (Wafl_util.Rng.float my_rng 30.0)
             | 2 -> Engine.yield ()
             | _ ->
                 Sync.Mutex.with_lock m (fun () ->
                     Engine.consume 2.0;
                     Buffer.add_string trace (Printf.sprintf "%d.%d@%.2f;" i step (Engine.now eng)))
           done;
           if sender then Sync.Channel.send ch i))
  done;
  (* A consumer that drains exactly the values the senders produce. *)
  ignore
    (Engine.spawn eng ~label:"consumer" (fun () ->
         for _ = 1 to !nsenders do
           let v = Sync.Channel.recv ch in
           Buffer.add_string trace (Printf.sprintf "recv%d@%.2f;" v (Engine.now eng))
         done));
  Engine.run eng;
  Buffer.add_string trace (Printf.sprintf "end@%.2f" (Engine.now eng));
  Buffer.contents trace

let prop_engine_deterministic =
  QCheck.Test.make ~name:"random fiber programs replay identically" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed -> String.equal (run_random_program seed) (run_random_program seed))

let prop_no_fiber_starves =
  QCheck.Test.make ~name:"every fiber of a terminating program finishes" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let r = Wafl_util.Rng.create ~seed in
      let eng = Engine.create ~cores:(1 + Wafl_util.Rng.int r 3) () in
      let n = 3 + Wafl_util.Rng.int r 8 in
      let finished = ref 0 in
      for _ = 1 to n do
        let my = Wafl_util.Rng.split r in
        ignore
          (Engine.spawn eng (fun () ->
               for _ = 0 to Wafl_util.Rng.int my 6 do
                 if Wafl_util.Rng.bool my then Engine.consume (Wafl_util.Rng.float my 5.0)
                 else Engine.yield ()
               done;
               incr finished))
      done;
      Engine.run eng;
      !finished = n && Engine.live_fibers eng = 0)

let () =
  Alcotest.run "wafl_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "single fiber time" `Quick test_single_fiber_time;
          Alcotest.test_case "two cores run in parallel" `Quick test_parallel_on_two_cores;
          Alcotest.test_case "one core serializes" `Quick test_serialization_on_one_core;
          Alcotest.test_case "three fibers two cores" `Quick test_three_fibers_two_cores;
          Alcotest.test_case "sleep" `Quick test_sleep;
          Alcotest.test_case "sleep releases core" `Quick test_sleep_releases_core;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "accounting by label" `Quick test_accounting_by_label;
          Alcotest.test_case "accounting reset" `Quick test_accounting_reset;
          Alcotest.test_case "set_label" `Quick test_set_label;
          Alcotest.test_case "run ~until is resumable" `Quick test_run_until_resumable;
          Alcotest.test_case "quantum preemption" `Quick test_quantum_preemption;
          Alcotest.test_case "no quantum runs to completion" `Quick
            test_no_quantum_runs_to_completion;
          Alcotest.test_case "yield round robin" `Quick test_yield_round_robin;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "join finished fiber" `Quick test_join_finished_fiber;
          Alcotest.test_case "stalled fiber detection" `Quick test_stalled_fiber_detection;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "mutex cost charged" `Quick test_mutex_cost_charged;
          Alcotest.test_case "mutex unlock by non-owner" `Quick test_mutex_unlock_by_non_owner;
          Alcotest.test_case "condition signal" `Quick test_condition_signal;
          Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
          Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
          Alcotest.test_case "channel blocking recv" `Quick test_channel_blocking_recv;
          Alcotest.test_case "channel bounded backpressure" `Quick
            test_channel_bounded_backpressure;
          Alcotest.test_case "channel try_recv" `Quick test_channel_try_recv;
          Alcotest.test_case "waitq" `Quick test_waitq;
          Alcotest.test_case "mutex FIFO fairness" `Quick test_mutex_fairness_fifo;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~verbose:false prop_engine_deterministic;
          QCheck_alcotest.to_alcotest ~verbose:false prop_no_fiber_starves;
        ] );
    ]
