test/test_regressions.ml: Aggregate Alcotest Cost Driver Engine File Int64 List Printf Volume Wafl_core Wafl_fs Wafl_harness Wafl_sim Wafl_storage Wafl_util Wafl_waffinity Wafl_workload
