test/test_storage.ml: Alcotest Cost Disk Engine Geometry Hashtbl List Printf QCheck QCheck_alcotest Raid Wafl_sim Wafl_storage
