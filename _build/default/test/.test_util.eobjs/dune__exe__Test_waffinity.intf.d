test/test_waffinity.mli:
