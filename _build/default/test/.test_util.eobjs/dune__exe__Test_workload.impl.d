test/test_workload.ml: Alcotest Driver Float Printf Wafl_core Wafl_storage Wafl_util Wafl_workload
