test/test_snapshot.ml: Aggregate Alcotest Cost Counters Engine File Int64 List Option Printf QCheck QCheck_alcotest Report String Volume Wafl_core Wafl_fs Wafl_sim Wafl_storage Wafl_util
