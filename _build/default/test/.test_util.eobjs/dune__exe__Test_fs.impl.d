test/test_fs.ml: Aggregate Alcotest Array Bitmap_file Buffer_cache Counters File Gen Int64 Layout List Nvlog Printf QCheck QCheck_alcotest Volume Wafl_fs Wafl_sim Wafl_storage
