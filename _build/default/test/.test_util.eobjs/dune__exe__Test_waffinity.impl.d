test/test_waffinity.ml: Affinity Alcotest Classical Cost Engine Format Gen List QCheck QCheck_alcotest Scheduler Wafl_sim Wafl_util Wafl_waffinity
