test/test_sim.ml: Alcotest Buffer Engine List Printf QCheck QCheck_alcotest String Sync Wafl_sim Wafl_util
