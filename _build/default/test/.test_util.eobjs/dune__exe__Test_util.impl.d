test/test_util.ml: Alcotest Array Bitops Float Fun Gen Hashtbl Histogram Int64 Intvec List Option Printf QCheck QCheck_alcotest Rng Stats String Table Wafl_util
