test/test_harness.ml: Alcotest Driver List Wafl_core Wafl_harness Wafl_util Wafl_workload
