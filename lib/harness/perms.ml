open Wafl_workload
open Wafl_util

type row = { name : string; result : Driver.result; gain : float }

let run ?(cleaners = 6) ~workload ~scale () =
  let base_spec = { (Exp.spec_base ~scale) with Driver.workload } in
  let configs =
    [
      ("serialized baseline", Exp.wa_config ~cleaners:1 ~max_cleaners:1 ~parallel_infra:false ());
      ("parallel infrastructure", Exp.wa_config ~cleaners:1 ~max_cleaners:1 ~parallel_infra:true ());
      ( "parallel cleaner threads",
        Exp.wa_config ~cleaners ~max_cleaners:cleaners ~parallel_infra:false () );
      ("white alligator (both)", Exp.wa_config ~cleaners ~max_cleaners:cleaners ~parallel_infra:true ());
    ]
  in
  (* Rows run concurrently (Exp.par_map), so the serialized baseline is
     taken from the first row's result afterwards, not via a ref inside
     the loop. *)
  let results =
    Exp.par_map (fun (name, cfg) -> (name, Driver.run { base_spec with Driver.cfg })) configs
  in
  let baseline =
    match results with (_, r) :: _ -> r.Driver.throughput | [] -> 0.0
  in
  List.map
    (fun (name, result) ->
      { name; result; gain = Exp.gain_pct ~baseline result.Driver.throughput })
    results

let print ~title rows =
  Printf.printf "\n%s\n" title;
  let t =
    Table.create
      ~headers:
        [
          "configuration";
          "ops/s";
          "ops/s/client";
          "gain";
          "cleaner cores";
          "infra cores";
          "walloc cores";
          "total util";
        ]
  in
  List.iter
    (fun { name; result = r; gain } ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Printf.sprintf "%.0f" r.Driver.throughput_per_client;
          Table.cell_pct gain;
          Table.cell_f r.Driver.cores_cleaner;
          Table.cell_f r.Driver.cores_infra;
          Table.cell_f (Driver.cores_write_alloc r);
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t
