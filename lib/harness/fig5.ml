open Wafl_workload
open Wafl_util

type row = { threads : int; result : Driver.result }

let run ?(scale = 1.0) ?(thread_counts = [ 1; 2; 3; 4; 6; 8 ]) () =
  let spec = Exp.spec_base ~scale in
  Exp.par_map
    (fun threads ->
      let cfg = Exp.wa_config ~cleaners:threads ~max_cleaners:threads () in
      { threads; result = Driver.run { spec with Driver.cfg } })
    thread_counts

let print rows =
  Printf.printf "\nFigure 5: sequential write vs number of cleaner threads\n";
  let t =
    Table.create
      ~headers:[ "cleaner threads"; "ops/s"; "ops/s/client"; "cleaner cores"; "infra cores"; "total util" ]
  in
  List.iter
    (fun { threads; result = r } ->
      Table.add_row t
        [
          string_of_int threads;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Printf.sprintf "%.0f" r.Driver.throughput_per_client;
          Table.cell_f r.Driver.cores_cleaner;
          Table.cell_f r.Driver.cores_infra;
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t

let shapes rows =
  let tput n =
    match List.find_opt (fun r -> r.threads = n) rows with
    | Some r -> r.result.Driver.throughput
    | None -> 0.0
  in
  let last = List.nth rows (List.length rows - 1) in
  [
    Exp.shape "fig5: 2 threads scale well over 1 (>55% of linear)"
      (tput 2 > 1.55 *. tput 1);
    Exp.shape "fig5: 4 threads beat 2" (tput 4 > tput 2);
    Exp.shape "fig5: throughput monotonically non-degrading to saturation"
      (tput 8 > 0.9 *. tput 4);
    Exp.shape "fig5: saturation reached at high thread counts (util > 0.7)"
      (last.result.Driver.utilization > 0.7);
    Exp.shape "fig5: cleaner core usage grows with threads"
      (last.result.Driver.cores_cleaner > 2.0 *. (List.hd rows).result.Driver.cores_cleaner);
  ]
