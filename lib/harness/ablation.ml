open Wafl_workload
open Wafl_util

type chunk_row = { chunk : int; result : Driver.result }
type ranges_row = { ranges : int; result : Driver.result }

let run_chunk ?(scale = 1.0) ?(chunks = [ 1; 8; 64; 128; 256 ]) () =
  (* Smaller working set than the figure experiments: one-VBN buckets do
     twenty times the infrastructure message traffic, and the comparison
     between configurations is what matters here. *)
  let spec =
    {
      (Exp.spec_base ~scale) with
      Driver.clients = 32;
      volumes = 1;
      workload = Driver.Seq_write { file_blocks = max 1024 (int_of_float (4096.0 *. scale)) };
      warmup = Float.max 50_000.0 (150_000.0 *. scale);
      measure = Float.max 100_000.0 (400_000.0 *. scale);
    }
  in
  Exp.par_map
    (fun chunk ->
      let cfg = { (Exp.wa_config ~cleaners:6 ~max_cleaners:6 ()) with Wafl_core.Walloc.chunk } in
      { chunk; result = Driver.run { spec with Driver.cfg } })
    chunks

let print_chunk rows =
  Printf.printf
    "\nAblation: bucket chunk size (SIV-C: a bucket of one VBN vs chunked buckets)\n";
  let t =
    Table.create
      ~headers:
        [
          "chunk (VBNs)";
          "ops/s";
          "infra cores";
          "infra msgs";
          "read contiguity";
          "full/partial stripes";
        ]
  in
  List.iter
    (fun { chunk; result = r } ->
      Table.add_row t
        [
          string_of_int chunk;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Table.cell_f r.Driver.cores_infra;
          Table.cell_i r.Driver.infra_messages;
          Table.cell_f1 r.Driver.read_contiguity;
          Printf.sprintf "%d/%d" r.Driver.full_stripes r.Driver.partial_stripes;
        ])
    rows;
  Table.print t

let find_chunk rows c = List.find (fun r -> r.chunk = c) rows

let shapes_chunk rows =
  let tput c = (find_chunk rows c).result.Driver.throughput in
  let contig c = (find_chunk rows c).result.Driver.read_contiguity in
  let msgs c = (find_chunk rows c).result.Driver.infra_messages in
  (* Per-operation infrastructure cost, which is what amortization buys. *)
  let infra_us c =
    let r = (find_chunk rows c).result in
    r.Driver.cores_infra *. 1e6 /. Float.max 1.0 r.Driver.throughput
  in
  [
    Exp.shape "ablation/chunk: one-VBN buckets measurably slower"
      (tput 1 < 0.95 *. tput 64);
    Exp.shape "ablation/chunk: one-VBN buckets burn several times the infra CPU per op"
      (infra_us 1 > 3.0 *. infra_us 64);
    Exp.shape "ablation/chunk: chunked buckets amortize infrastructure messages"
      (msgs 64 * 4 < msgs 1);
    Exp.shape "ablation/chunk: contiguity grows with chunk size"
      (contig 64 > 4.0 *. Float.max 1.0 (contig 1));
    Exp.shape "ablation/chunk: returns diminish past 128"
      (tput 256 < 1.15 *. tput 128);
  ]

let run_ranges ?(scale = 1.0) ?(range_counts = [ 1; 2; 4; 8; 16 ]) () =
  let spec =
    {
      (Exp.spec_base ~scale) with
      Driver.workload = Driver.Rand_write { file_blocks = max 2048 (int_of_float (16384.0 *. scale)) };
    }
  in
  Exp.par_map
    (fun ranges ->
      let cfg = { (Exp.wa_config ~cleaners:6 ~max_cleaners:6 ()) with Wafl_core.Walloc.ranges } in
      { ranges; result = Driver.run { spec with Driver.cfg } })
    range_counts

let print_ranges rows =
  Printf.printf "\nAblation: Range-affinity instances (random write; SIV-B2)\n";
  let t =
    Table.create ~headers:[ "range affinities"; "ops/s"; "infra cores"; "total util" ]
  in
  List.iter
    (fun { ranges; result = r } ->
      Table.add_row t
        [
          string_of_int ranges;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Table.cell_f r.Driver.cores_infra;
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t

let shapes_ranges rows =
  let tput n = (List.find (fun r -> r.ranges = n) rows).result.Driver.throughput in
  [
    Exp.shape "ablation/ranges: one range ~ serialized infrastructure"
      (tput 1 < tput 8);
    Exp.shape "ablation/ranges: a handful of ranges suffices"
      (tput 16 < 1.2 *. tput 8);
  ]
