(** Randomized crash-point harness (robustness counterpart of the
    performance experiments).

    For each seed: derive a {!Wafl_storage.Fault.random} plan, run a
    random write workload against a full stack (Waffinity, cleaners, CP
    engine) with the plan attached to the disk, crash at the
    plan-chosen virtual instant — possibly mid-CP — tearing the
    scheduled NVRAM tail, then recover on a fresh engine and check the
    two durability invariants:

    - every write acknowledged before the crash (minus the torn-tail
      records, whose replies never left the box) reads back with the
      exact content written;
    - {!Wafl_fs.Aggregate.fsck} passes on the recovered image after a
      post-recovery CP (which exercises the failed-write repair path
      against the still-degraded substrate).

    The workload, fault schedule and crash point are all derived from
    the seed, so any failure is replayable. *)

type outcome = {
  seed : int;
  crash_time : float;  (** virtual µs at which the crash was taken *)
  mid_cp : bool;  (** a CP was running when the crash hit *)
  cp_phase : string;  (** CP engine phase at the crash instant *)
  cps_before_crash : int;
  acked : int;  (** distinct acknowledged blocks the oracle checked *)
  torn : int;  (** NVRAM records torn off at the crash *)
  lost : int;  (** acked blocks missing or wrong after recovery *)
  fsck_failure : string option;
  disk_failure_active : bool;  (** a RAID group was degraded at crash *)
  media_errors : int;
  transient_retries : int;
  degraded_reads : int;
  rebuild_blocks : int;
  b2b_cps : int;  (** back-to-back CPs before the crash (overload mode) *)
  stall_us : float;  (** client virtual µs parked in watermark admission *)
  exhausted_writes : int;
      (** writes refused on exhausted NVRAM before the crash; watermark
          admission must keep this 0 even in overload mode *)
  flash_gc_pages : int;
      (** FTL GC relocations before the crash (flash mode); > 0 means
          the crash landed on a device with GC underway *)
  flash_erases : int;  (** erase-block reclaims before the crash *)
  races : int;  (** race-detector reports across crash run + recovery (0 unless sanitizing) *)
}

val run_one :
  ?ops:int ->
  ?fbn_space:int ->
  ?horizon:float ->
  ?sanitize:bool ->
  ?overload:bool ->
  ?flash:bool ->
  seed:int ->
  unit ->
  outcome
(** One crash-recover-verify cycle.  [ops] (default 100_000) caps the
    workload; the client keeps writing until the horizon so the crash
    lands mid-activity.  [horizon] (default 60_000 µs) bounds the
    virtual run; the plan crashes in its back 70%.  [sanitize] (default
    false) runs both the crash run and the recovery engine under the
    race detector and isolation checker.  [overload] (default false)
    runs a small NVRAM with watermark back-pressure under a seeded
    bursty open-loop arrival plan, so crash points land inside
    throttled and back-to-back-CP windows; acknowledged-write read-back
    is verified the same way (a shed write is never acknowledged).
    [flash] (default false) attaches a nearly-full {!Wafl_flash.Ftl} to
    every RAID group so the crash routinely lands mid-GC-cycle; the
    volatile L2P table is rebuilt on recovery and read-back must still
    hold. *)

val passed : outcome -> bool
(** No acknowledged write lost and fsck clean. *)

val run_seeds :
  ?ops:int -> ?fbn_space:int -> ?horizon:float -> ?sanitize:bool -> ?overload:bool ->
  ?flash:bool -> ?domains:int -> first_seed:int -> count:int -> unit -> outcome list
(** [count] outcomes for consecutive seeds from [first_seed], in seed
    order.  [domains] (default 1) fans the seeds out over that many
    worker domains ({!Wafl_util.Pool}); outcomes are byte-identical at
    any domain count. *)

val summarize : outcome list -> string
(** Multi-line human-readable summary: pass/fail count, how many seeds
    crashed mid-CP, how many ran degraded, aggregate fault counters. *)
