(** Noisy-neighbor overload experiment (DESIGN.md §4.11).

    Open-loop tenants on their own volumes: one bursty hot tenant
    offering load far above the CP drain rate next to three trickling
    victims.  NVLog watermark back-pressure is always on; per-volume QoS
    is the variable.  The three scenarios give the tenant-isolation
    curves: victims alone (baseline tail), noisy with QoS off (victim
    tail and hot backlog grow without bound), and noisy with QoS on
    (hot tenant throttled and shed; victims near baseline). *)

type scenario = Isolated | Noisy_off | Noisy_on

val scenario_name : scenario -> string

type row = {
  scenario : scenario;
  r : Wafl_workload.Driver.result;
  victim_whist : Wafl_util.Histogram.t;
      (** merged end-to-end write latency of all victim tenants *)
}

val run : ?scale:float -> unit -> row list
(** All three scenarios, deterministic per seed (the spec seed comes from
    {!Exp.spec_base}). *)

val find : row list -> scenario -> row
val victims : row -> Wafl_workload.Driver.tenant_stat list
val hot : row -> Wafl_workload.Driver.tenant_stat option

val goodput : row -> float
(** Completed windowed ops per virtual second. *)

val shed_rate : row -> float
(** Shed fraction of windowed arrivals, 0..1. *)

val victim_p99 : row -> float
(** p99 of the merged victim write-latency histogram, virtual µs. *)

val backlog : Wafl_workload.Driver.tenant_stat -> int
(** Admitted minus completed at the end of the window. *)

val print : row list -> unit
val shapes : row list -> (string * bool) list
