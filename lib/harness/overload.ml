open Wafl_workload
open Wafl_util

(* Noisy-neighbor overload experiment (DESIGN.md §4.11).

   One hot tenant offers bursty open-loop load far above the aggregate's
   CP drain rate while three well-behaved victims trickle along.  NVLog
   watermarks are always on (the hot bursts would otherwise exhaust
   NVRAM); per-volume QoS is the variable under test:

   - [Isolated]   victims alone, QoS on — the baseline tail.
   - [Noisy_off]  hot + victims, QoS off — the hot tenant's backlog and
                  the victims' tail latency grow without bound.
   - [Noisy_on]   hot + victims, QoS on — the hot tenant is throttled
                  and shed deterministically; victims stay near the
                  isolated baseline. *)

type scenario = Isolated | Noisy_off | Noisy_on

let scenario_name = function
  | Isolated -> "victims isolated"
  | Noisy_off -> "noisy, qos off"
  | Noisy_on -> "noisy, qos on"

type row = { scenario : scenario; r : Driver.result; victim_whist : Histogram.t }

let n_victims = 3
let victim_rate = 2_000.0 (* ops per virtual second, each *)

(* The burst phase offers ~10x a tenant's QoS share and well above what
   small-NVRAM CPs can drain, so watermark back-pressure and (with QoS
   on) shedding both engage.  Mean rate stays modest so a measurement
   window's total arrival count — and thus the fiber backlog a QoS-off
   run accumulates — stays bounded. *)
let hot_process =
  Arrival.Bursty
    { base_rate = 5_000.0; burst_rate = 400_000.0; mean_on_us = 5_000.0; mean_off_us = 20_000.0 }

let victim_process = Arrival.Poisson { rate = victim_rate }

let qos_config =
  { Wafl_qos.Qos.rate_per_s = 15_000.0; burst = 64.0; queue_depth = 128 }

let watermarks = { Wafl_fs.Nvlog.soft = 0.5; hard = 0.9; pace = 25.0 }

let spec ~scale ~scenario =
  let arrivals =
    match scenario with
    | Isolated -> List.init n_victims (fun _ -> victim_process)
    | Noisy_off | Noisy_on -> hot_process :: List.init n_victims (fun _ -> victim_process)
  in
  let qos = match scenario with Noisy_off -> None | Isolated | Noisy_on -> Some qos_config in
  let tenants = List.length arrivals in
  (* QoS on also means fair CP admission: per-volume cleaning work is
     round-robined so the hot volume cannot monopolize the front of a
     checkpoint. *)
  let cfg = Exp.wa_config ~cleaners:2 ~max_cleaners:4 () in
  let cfg = { cfg with Wafl_core.Walloc.fair_cp = qos <> None } in
  {
    (Exp.spec_base ~scale) with
    Driver.workload = Driver.Rand_write { file_blocks = max 1024 (int_of_float (8192.0 *. scale)) };
    (* tenant i <-> client slot i <-> its own volume *)
    clients = tenants;
    volumes = tenants;
    nvlog_half = 512;
    watermarks = Some watermarks;
    open_loop = Some { Driver.arrivals; qos };
    cfg;
  }

(* Victims are every tenant except the hot one (tenant 0 in the noisy
   scenarios). *)
let victims row =
  match row.scenario with
  | Isolated -> Array.to_list row.r.Driver.tenants
  | Noisy_off | Noisy_on -> List.tl (Array.to_list row.r.Driver.tenants)

let hot row =
  match row.scenario with
  | Isolated -> None
  | Noisy_off | Noisy_on -> Some row.r.Driver.tenants.(0)

let run_one ~scale scenario =
  let r = Driver.run (spec ~scale ~scenario) in
  let victim_whist = Histogram.create () in
  let row = { scenario; r; victim_whist } in
  List.iter
    (fun t -> Histogram.merge_into ~dst:victim_whist t.Driver.t_write_latency)
    (victims row);
  row

let run ?(scale = 1.0) () = Exp.par_map (run_one ~scale) [ Isolated; Noisy_off; Noisy_on ]

let find rows scenario = List.find (fun row -> row.scenario = scenario) rows

(* --- bench accessors ---------------------------------------------------- *)

let goodput row = row.r.Driver.throughput

let shed_rate row =
  if row.r.Driver.offered_ops = 0 then 0.0
  else float_of_int row.r.Driver.shed_ops /. float_of_int row.r.Driver.offered_ops

let victim_p99 row = Histogram.percentile row.victim_whist 99.0

let backlog t = t.Driver.t_admitted - t.Driver.t_completed

let print rows =
  Printf.printf
    "\nOverload: noisy-neighbor tenant isolation (open-loop arrivals, watermarks on)\n";
  let t =
    Table.create
      ~headers:
        [
          "scenario";
          "offered ops/s";
          "goodput ops/s";
          "shed %";
          "victim p50 (us)";
          "victim p99 (us)";
          "hot backlog";
          "b2b cps";
          "stall (ms)";
        ]
  in
  List.iter
    (fun row ->
      let r = row.r in
      Table.add_row t
        [
          scenario_name row.scenario;
          Printf.sprintf "%.0f"
            (float_of_int r.Driver.offered_ops /. r.Driver.duration *. 1_000_000.0);
          Printf.sprintf "%.0f" (goodput row);
          Printf.sprintf "%.1f" (100.0 *. shed_rate row);
          Table.cell_f1 (Histogram.percentile row.victim_whist 50.0);
          Table.cell_f1 (victim_p99 row);
          (match hot row with None -> "-" | Some h -> string_of_int (backlog h));
          string_of_int r.Driver.b2b_cps;
          Printf.sprintf "%.1f" (r.Driver.stall_us /. 1000.0);
        ])
    rows;
  Table.print t;
  List.iter
    (fun row ->
      match hot row with
      | None -> ()
      | Some h ->
          Printf.printf
            "  %-16s hot tenant: offered %d, admitted %d, throttled %d, shed %d, completed %d\n"
            (scenario_name row.scenario) h.Driver.t_offered h.Driver.t_admitted
            h.Driver.t_throttled h.Driver.t_shed h.Driver.t_completed)
    rows

let shapes rows =
  let isolated = find rows Isolated in
  let off = find rows Noisy_off in
  let on = find rows Noisy_on in
  let base_p99 = victim_p99 isolated in
  [
    Exp.shape "overload: watermarks keep NVRAM exhaustion unreachable"
      (List.for_all (fun row -> row.r.Driver.nvlog_exhausted = 0) rows);
    Exp.shape "overload: hot bursts drive back-to-back CPs (qos off)" (off.r.Driver.b2b_cps > 0);
    Exp.shape "overload: qos off lets the hot tenant build unbounded backlog"
      (match hot off with
      | Some h -> backlog h > 10 * Option.fold ~none:0 ~some:backlog (hot on)
      | None -> false);
    Exp.shape "overload: qos off inflates victim p99 well above baseline (> 2x)"
      (victim_p99 off > 2.0 *. base_p99);
    Exp.shape "overload: qos on holds victim p99 within 2x isolated baseline"
      (victim_p99 on <= 2.0 *. base_p99);
    Exp.shape "overload: qos on sheds hot-tenant overload deterministically"
      (match hot on with Some h -> h.Driver.t_shed > 0 | None -> false);
    Exp.shape "overload: victims are never shed"
      (List.for_all (fun t -> t.Driver.t_shed = 0) (victims on @ victims isolated));
    Exp.shape "overload: watermark admission stalls clients (back-pressure visible)"
      (off.r.Driver.stall_us > 0.0);
  ]
