open Wafl_workload

let of_env () =
  match Sys.getenv_opt "WAFL_SCALE" with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
  | None -> ( match Sys.getenv_opt "WAFL_QUICK" with Some ("1" | "true") -> 0.25 | _ -> 1.0)

(* When set (the --sanitize flag), every experiment spec derived from
   [spec_base] runs under the race detector and isolation checker. *)
let sanitize = ref false

(* When set (the trace CLI / test harness), every spec derived from
   [spec_base] attaches a tracer built by this factory. *)
let trace : (Wafl_sim.Engine.t -> Wafl_obs.Trace.t) option ref = ref None

(* Worker-domain fan-out for experiment sweep points (the CLI's
   --domains flag; the bench harness and Makefile smoke targets set it
   from WAFL_DOMAINS / the host core count).  1 = serial. *)
let domains = ref 1

(* When set (the bench harness, the top CLI), every spec derived from
   [spec_base] attaches fleet telemetry — observe-only, so results are
   unchanged. *)
let telemetry : Driver.telemetry option ref = ref None

(* Experiment rows are independent seeded runs, so they execute
   concurrently and merge in input order — byte-identical to a serial
   sweep (tested in test_domains.ml).  Tracing forces the serial path:
   the CLI's tracer factory captures the tracer of the *last started*
   run through a ref, which only means something when rows start in
   order. *)
let par_map f xs =
  let domains = if !trace <> None then 1 else !domains in
  Wafl_util.Pool.map ~domains f xs

let spec_base ~scale =
  let d = Driver.default_spec in
  {
    d with
    Driver.warmup = Float.max 100_000.0 (d.Driver.warmup *. scale);
    measure = Float.max 200_000.0 (d.Driver.measure *. scale);
    workload =
      Driver.Seq_write { file_blocks = max 2048 (int_of_float (16384.0 *. scale)) };
    sanitize = !sanitize;
    telemetry = !telemetry;
    obs = (match !trace with Some f -> f | None -> d.Driver.obs);
  }

let wa_config ?(cleaners = 4) ?max_cleaners ?(parallel_infra = true) ?(dynamic = false)
    ?(batching = true) () =
  let max_cleaners = match max_cleaners with Some m -> m | None -> max cleaners 8 in
  {
    Wafl_core.Walloc.default_config with
    Wafl_core.Walloc.cleaner_threads = cleaners;
    max_cleaner_threads = max_cleaners;
    parallel_infra;
    dynamic_cleaners = dynamic;
    batching;
    cp_timer = Some 250_000.0;
  }

let gain_pct ~baseline v = if baseline <= 0.0 then 0.0 else (v /. baseline -. 1.0) *. 100.0
let shape name ok = (name, ok)

let print_shapes shapes =
  print_newline ();
  List.iter
    (fun (name, ok) -> Printf.printf "  shape %-58s %s\n" name (if ok then "[ok]" else "[MISS]"))
    shapes;
  flush stdout
