open Wafl_workload
open Wafl_util

type config = Static of int | Dynamic

type row = { config : config; peak : Driver.result; knee : Driver.result }

let config_name = function Static n -> Printf.sprintf "%d static" n | Dynamic -> "dynamic"

let oltp scale = Driver.Oltp { file_blocks = max 2048 (int_of_float (16384.0 *. scale)); read_fraction = 0.67 }

let walloc_config = function
  | Static n -> Exp.wa_config ~cleaners:n ~max_cleaners:n ()
  | Dynamic -> Exp.wa_config ~cleaners:1 ~max_cleaners:4 ~dynamic:true ()

let run ?(scale = 1.0) () =
  (* A small NVRAM puts peak load in the back-to-back-CP regime where the
     cleaner-thread count governs both throughput and latency. *)
  (* A controller-sized read cache keeps the OLTP hot set resident, so
     knee latency reflects CP interference rather than read misses. *)
  let spec =
    {
      (Exp.spec_base ~scale) with
      Driver.workload = oltp scale;
      nvlog_half = 2048;
      cache_blocks = 1 lsl 20;
    }
  in
  let configs = [ Static 1; Static 2; Static 3; Static 4; Dynamic ] in
  (* Peak: closed loop at full tilt. *)
  let peaks =
    Exp.par_map (fun c -> (c, Driver.run { spec with Driver.cfg = walloc_config c })) configs
  in
  let best_peak =
    List.fold_left (fun acc (_, r) -> Float.max acc r.Driver.throughput) 0.0 peaks
  in
  (* Knee: identical offered load for every configuration, placed at the
     bend of the single-thread scalability curve — "beyond which
     increases in load cause disproportional increases in latency".
     This is where one cleaner thread starts failing to keep up while
     two or more still have headroom. *)
  let target = 0.78 *. best_peak in
  let think =
    Float.max 20.0 ((float_of_int spec.Driver.clients /. target *. 1_000_000.0) -. 60.0)
  in
  Exp.par_map
    (fun (c, peak) ->
      let knee =
        Driver.run { spec with Driver.cfg = walloc_config c; think_time = think }
      in
      { config = c; peak; knee })
    peaks

let print rows =
  Printf.printf "\nFigure 8: OLTP — peak throughput and off-peak (knee) latency vs cleaner threads\n";
  let t =
    Table.create
      ~headers:
        [
          "cleaner threads";
          "peak ops/s";
          "peak ops/s/client";
          "knee mean lat (us)";
          "knee p95 (us)";
          "avg active threads";
        ]
  in
  List.iter
    (fun { config; peak; knee } ->
      Table.add_row t
        [
          config_name config;
          Printf.sprintf "%.0f" peak.Driver.throughput;
          Printf.sprintf "%.0f" peak.Driver.throughput_per_client;
          Table.cell_f1 (Histogram.mean knee.Driver.latency);
          Table.cell_f1 (Histogram.percentile knee.Driver.latency 95.0);
          Table.cell_f knee.Driver.avg_active_cleaners;
        ])
    rows;
  Table.print t

let find rows c = List.find (fun r -> r.config = c) rows

let shapes rows =
  let peak c = (find rows c).peak.Driver.throughput in
  let lat c = Histogram.mean (find rows c).knee.Driver.latency in
  let dynamic = find rows Dynamic in
  let best_static_peak = List.fold_left (fun a n -> Float.max a (peak (Static n))) 0.0 [1;2;3;4] in
  let best_static_lat =
    List.fold_left (fun a n -> Float.min a (lat (Static n))) infinity [ 1; 2; 3; 4 ]
  in
  [
    Exp.shape "fig8: a second thread raises peak throughput" (peak (Static 2) > peak (Static 1));
    Exp.shape "fig8: a second thread lowers knee latency" (lat (Static 2) < lat (Static 1));
    Exp.shape "fig8: >2 threads do not keep improving peak (within 5%)"
      (peak (Static 4) < 1.05 *. peak (Static 2));
    Exp.shape "fig8: dynamic ~ matches best static peak (>= 95%)"
      (dynamic.peak.Driver.throughput >= 0.95 *. best_static_peak);
    Exp.shape "fig8: dynamic ~ matches best static knee latency (<= 115%)"
      (Histogram.mean dynamic.knee.Driver.latency <= 1.15 *. best_static_lat);
    Exp.shape "fig8: dynamic uses few threads off-peak (< 2.5 avg)"
      (dynamic.knee.Driver.avg_active_cleaners < 2.5);
  ]
