(** Flash media-model experiment (DESIGN.md §4.13).

    Attaches a {!Wafl_flash.Ftl} to every RAID group and measures write
    amplification (WAF), erase-block GC activity and GC-induced host
    stalls under a skewed random-overwrite workload, sweeping device fill,
    over-provisioning and the multi-stream [streams] policy of
    {!Wafl_core.Walloc}.  One row adds the PR-6 overload substrate
    (bursty open-loop arrivals under NVLog watermarks) so back-to-back
    CPs interfere with flash GC. *)

type scenario = Steady of { fill : float; op : float; streaming : bool } | B2b_interference

val scenario_name : scenario -> string

val scenarios : scenario list
(** The canonical row order: fill {50, 85}% x streaming {off, on} at 10%
    OP, one 25%-OP point, and the B2B-interference row. *)

type row = { scenario : scenario; r : Wafl_workload.Driver.result }

val run : ?scale:float -> unit -> row list
(** All scenarios, deterministic per seed (the spec seed comes from
    {!Exp.spec_base}). *)

val find : row list -> scenario -> row

val waf : row -> float
(** Measured write amplification over the window. *)

val gc_stall_us : row -> float
val write_p99 : row -> float

val print : row list -> unit
val shapes : row list -> (string * bool) list
