open Wafl_workload
open Wafl_util

type row = { batching : bool; result : Driver.result }

let run ?(scale = 1.0) () =
  let files = max 8 (int_of_float (48.0 *. scale)) in
  let spec =
    {
      (Exp.spec_base ~scale) with
      Driver.workload = Driver.Nfs_mix { files_per_client = files; file_blocks = 64 };
      nvlog_half = 4096;
    }
  in
  Exp.par_map
    (fun batching ->
      let cfg = Exp.wa_config ~cleaners:4 ~batching () in
      { batching; result = Driver.run { spec with Driver.cfg } })
    [ false; true ]

let print rows =
  Printf.printf "\nBatched inode cleaning (NFS mix, many inodes with few dirty buffers; SV-C)\n";
  let t =
    Table.create
      ~headers:
        [
          "batching";
          "ops/s";
          "mean lat (us)";
          "cleaner msgs";
          "inodes cleaned";
          "msgs per inode";
        ]
  in
  List.iter
    (fun { batching; result = r } ->
      Table.add_row t
        [
          (if batching then "enabled" else "disabled");
          Printf.sprintf "%.0f" r.Driver.throughput;
          Table.cell_f1 (Histogram.mean r.Driver.latency);
          Table.cell_i r.Driver.cleaner_messages;
          Table.cell_i r.Driver.buffers_cleaned;
          Printf.sprintf "%.3f"
            (float_of_int r.Driver.cleaner_messages /. float_of_int (max 1 r.Driver.buffers_cleaned));
        ])
    rows;
  Table.print t

let shapes rows =
  match rows with
  | [ off; on ] ->
      let tput_gain = Exp.gain_pct ~baseline:off.result.Driver.throughput on.result.Driver.throughput in
      [
        Exp.shape "batching: fewer cleaner messages for the same work"
          (on.result.Driver.cleaner_messages * 2 < off.result.Driver.cleaner_messages);
        Exp.shape "batching: throughput gain small and non-negative (-1..15%)"
          (tput_gain > -1.0 && tput_gain < 15.0);
        Exp.shape "batching: latency does not regress"
          (Histogram.mean on.result.Driver.latency
          <= 1.02 *. Histogram.mean off.result.Driver.latency);
      ]
  | _ -> [ Exp.shape "batching: two configurations ran" false ]
