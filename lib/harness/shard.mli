(** Fleet-sharded aggregate experiment on the partitioned engine.

    The fleet-scale roadmap item needs many aggregates / volume groups
    advancing concurrently on the host.  This experiment shards a fleet
    of [shards] independent aggregate stacks (engine, RAID, NVLog, CP
    engine, cleaner pool, client population) across
    {!Wafl_sim.Partition} partitions and couples them the way a real
    cluster is coupled — coarsely: partition 0 runs a global CP-epoch
    coordinator that broadcasts a checkpoint tick to every shard each
    epoch (the aggregate-wide CP barrier), and every shard reports its
    completed-operation count back to the coordinator on each tick
    (fleet telemetry).  Both directions ride {!Wafl_sim.Partition.post}
    with the conservative lookahead delay.

    The outcome is byte-identical at any [domains] (tested in
    test_domains.ml); on a multicore host wall time scales with
    [min shards domains]. *)

type row = {
  shard : int;
  ops : int;  (** client writes completed during the measurement window *)
  cps : int;  (** checkpoints completed during the measurement window *)
  util : float;  (** engine utilization over the measurement window *)
}

type outcome = {
  rows : row list;
  epochs : int;  (** global CP epochs broadcast during measurement *)
  fleet_reported : int;
      (** sum of the per-shard op totals the coordinator last heard —
          nonzero proves shard -> coordinator messaging works *)
  horizon : float;  (** final virtual time *)
  telemetry : Wafl_obs.Rollup.snapshot;
      (** per-shard rollup snapshots (each fed only by its own shard's
          fibers, into its own engine's registry) merged
          deterministically; volume ids are namespaced by shard *)
}

val run :
  ?scale:float -> ?shards:int -> ?domains:int -> ?seed:int -> unit -> outcome
(** [run ~scale ~shards ~domains ~seed ()] — [shards] (default 4)
    partitions, fanned over [domains] (default 1) worker domains. *)

val digest : outcome -> string
(** One-line deterministic digest of every field, for byte-identity
    checks across domain counts. *)

val shapes : outcome -> (string * bool) list
val print : shards:int -> domains:int -> outcome -> unit
