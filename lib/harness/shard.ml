open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry

type row = { shard : int; ops : int; cps : int; util : float }

type outcome = {
  rows : row list;
  epochs : int;
  fleet_reported : int;
  horizon : float;
  telemetry : Wafl_obs.Rollup.snapshot;
      (* per-shard rollup snapshots merged deterministically (volume ids
         namespaced by shard) *)
}

(* Per-shard rollup config: fine windows so even the scaled-down smoke
   run seals a few, with the ring budget sized to match. *)
let rollup_config =
  {
    Wafl_obs.Rollup.default_config with
    Wafl_obs.Rollup.window_us = 2_000.0;
    windows = 16;
    vol_budget_bytes = 8192;
  }

(* Cross-partition delivery bound; the global CP epoch is a coarse
   multiple of it, as the real barriers are. *)
let lookahead = 1_000.0
let epoch_us = 6_000.0
let clients_per_shard = 6
let files_per_shard = 4
let fbn_space = 700

(* Same small-geometry stack as the crash harness: 2 groups x (3 + 1)
   small drives per shard. *)
let geometry () =
  Geometry.create ~drive_blocks:8192 ~aa_stripes:512 ~raid_groups:[ (3, 1); (3, 1) ] ()

type shard_state = {
  walloc : Wafl_core.Walloc.t;
  ops_done : int ref; (* mutated only by this shard's fibers *)
  cp : Wafl_core.Cp.t;
  roll : Wafl_obs.Rollup.t; (* fed only by this shard's fibers *)
  metrics : Wafl_obs.Metrics.t; (* this shard's own registry (DLS-free attribution) *)
}

let setup part sid ~seed =
  let eng = Partition.engine part sid in
  (* Each shard gets its own metrics-only tracer: a live per-engine
     registry, so samples attribute to the owning partition engine
     rather than the per-domain throwaway registry disabled tracers
     share (test_domains pins this). *)
  let obs = Wafl_obs.Trace.metrics_only eng in
  let agg =
    Aggregate.create eng ~cost:Cost.default ~geometry:(geometry ()) ~nvlog_half:2048 ~obs ()
  in
  (* CPs come only from the global epoch barrier (and log-half-full
     self-defense), so per-shard CP counts expose the coupling. *)
  let cfg =
    { (Wafl_core.Walloc.default_config) with Wafl_core.Walloc.cleaner_threads = 2; cp_timer = None }
  in
  let walloc = Wafl_core.Walloc.create ~obs agg cfg in
  let ops_done = ref 0 in
  let roll = Wafl_obs.Rollup.create ~config:rollup_config eng in
  Wafl_obs.Rollup.add_source roll ~name:"ops" (fun () -> float_of_int !ops_done);
  Wafl_obs.Rollup.add_source roll ~name:"cp.count" (fun () ->
      float_of_int (Wafl_core.Cp.cps_completed (Wafl_core.Walloc.cp walloc)));
  Wafl_obs.Rollup.add_source roll ~name:"cp.b2b" (fun () ->
      float_of_int (Counters.read (Aggregate.counters agg) "b2b_cps"));
  Wafl_obs.Rollup.add_source roll ~name:"nvlog.stall_us" (fun () -> Aggregate.stall_time agg);
  ignore
    (Engine.spawn eng ~label:"client" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         let vid = Volume.id vol in
         Wafl_core.Walloc.register_volume walloc vol;
         let files =
           Array.init files_per_shard (fun _ -> File.id (Aggregate.create_file agg ~vol:vid))
         in
         for c = 0 to clients_per_shard - 1 do
           let rng =
             Wafl_util.Rng.create ~seed:(seed lxor (((sid * 31) + c) * 0x9e3779b9) lxor 0x517cc1b7)
           in
           ignore
             (Engine.spawn eng ~label:"client" (fun () ->
                  let i = ref 0 in
                  while true do
                    incr i;
                    let started = Engine.now eng in
                    Wafl_obs.Rollup.count roll ~vol:vid `Admitted;
                    Aggregate.wait_for_log_space agg;
                    let file = files.(Wafl_util.Rng.int rng files_per_shard) in
                    let fbn = Wafl_util.Rng.int rng fbn_space in
                    let content = Int64.of_int ((!i * 131) + (sid * 17) + fbn) in
                    (match Aggregate.write agg ~vol:vid ~file ~fbn ~content with
                    | `Ok -> incr ops_done
                    | `Log_half_full ->
                        Wafl_core.Cp.request (Wafl_core.Walloc.cp walloc);
                        incr ops_done
                    | `Log_exhausted -> ());
                    Wafl_obs.Rollup.count roll ~vol:vid `Completed;
                    Wafl_obs.Rollup.observe_write roll ~vol:vid (Engine.now eng -. started);
                    Engine.consume 3.0
                  done))
         done));
  {
    walloc;
    ops_done;
    cp = Wafl_core.Walloc.cp walloc;
    roll;
    metrics = Wafl_obs.Trace.metrics obs;
  }

let run ?(scale = 1.0) ?(shards = 4) ?(domains = 1) ?(seed = 42) () =
  let warmup = Float.max 20_000.0 (100_000.0 *. scale) in
  let measure = Float.max 50_000.0 (400_000.0 *. scale) in
  let part = Partition.create ~parts:shards ~cores_per_part:4 ~lookahead () in
  let state = Array.init shards (fun sid -> setup part sid ~seed) in
  (* Fleet telemetry owned by partition 0: mutated only by closures
     delivered to (fibers of) partition 0, so it is partition-local. *)
  let fleet_seen = Array.make shards 0 in
  let epochs = ref 0 in
  (* Global CP epoch coordinator on partition 0: each tick fans a
     checkpoint request out to every shard; each shard reports its op
     total back.  Every hop uses the conservative delay. *)
  ignore
    (Engine.spawn (Partition.engine part 0) ~label:"epoch" ~daemon:true (fun () ->
         while true do
           Engine.sleep epoch_us;
           incr epochs;
           for dst = 0 to shards - 1 do
             Partition.post part ~src:0 ~dst ~delay:lookahead (fun () ->
                 Wafl_core.Cp.request state.(dst).cp;
                 let reported = !(state.(dst).ops_done) in
                 Partition.post part ~src:dst ~dst:0 ~delay:lookahead (fun () ->
                     fleet_seen.(dst) <- reported))
           done
         done));
  Partition.run ~domains ~until:warmup part;
  (* Horizon boundary: every partition is parked at [warmup]; reads and
     resets here are host-side and race-free. *)
  let ops0 = Array.map (fun s -> !(s.ops_done)) state in
  let cps0 = Array.map (fun s -> Wafl_core.Cp.cps_completed s.cp) state in
  let epochs0 = !epochs in
  Array.iteri (fun sid _ -> Engine.reset_accounting (Partition.engine part sid)) state;
  Partition.run ~domains ~until:(warmup +. measure) part;
  let rows =
    List.init shards (fun sid ->
        {
          shard = sid;
          ops = !(state.(sid).ops_done) - ops0.(sid);
          cps = Wafl_core.Cp.cps_completed state.(sid).cp - cps0.(sid);
          util = Engine.utilization (Partition.engine part sid);
        })
  in
  (* Horizon boundary again: all partitions parked, so the host-side
     snapshots see each shard at the same virtual time and the merge is
     deterministic at any domain count. *)
  let telemetry =
    Wafl_obs.Rollup.merge_snapshots
      (Array.to_list (Array.mapi (fun sid s -> (sid, Wafl_obs.Rollup.snapshot s.roll)) state))
  in
  {
    rows;
    epochs = !epochs - epochs0;
    fleet_reported = Array.fold_left ( + ) 0 fleet_seen;
    horizon = Partition.now part;
    telemetry;
  }

let digest o =
  let b = Buffer.create 128 in
  List.iter
    (fun r -> Buffer.add_string b (Printf.sprintf "s%d:%d/%d/%.6f;" r.shard r.ops r.cps r.util))
    o.rows;
  Buffer.add_string b (Printf.sprintf "e%d;f%d;h%.1f" o.epochs o.fleet_reported o.horizon);
  (* The full merged rollup snapshot rides in the digest, so any
     window/counter/sketch divergence across domain counts is caught. *)
  Buffer.add_string b ";t";
  Buffer.add_string b (Wafl_obs.Json.to_string (Wafl_obs.Rollup.snapshot_to_json o.telemetry));
  Buffer.contents b

let shapes o =
  let cps = List.map (fun r -> r.cps) o.rows in
  let ops = List.map (fun r -> float_of_int r.ops) o.rows in
  let min_l = List.fold_left min max_int cps and max_l = List.fold_left max 0 cps in
  let mean = List.fold_left ( +. ) 0.0 ops /. float_of_int (max 1 (List.length ops)) in
  let spread_ok =
    List.for_all (fun v -> Float.abs (v -. mean) <= 0.25 *. Float.max 1.0 mean) ops
  in
  [
    Exp.shape "shard: every shard checkpoints on the global epoch barrier"
      (min_l > 0 && max_l - min_l <= 2);
    Exp.shape "shard: uniform load spreads within 25% of mean across shards" spread_ok;
    Exp.shape "shard: coordinator heard op telemetry from the fleet" (o.fleet_reported > 0);
  ]

let print ~shards ~domains o =
  Printf.printf "\nFleet shard: %d aggregate shards on the partitioned engine (%d domain%s)\n"
    shards domains
    (if domains = 1 then "" else "s");
  Printf.printf "  global CP epochs in measure window: %d   fleet ops heard: %d\n" o.epochs
    o.fleet_reported;
  let tbl = Wafl_util.Table.create ~headers:[ "shard"; "ops"; "ops/s"; "CPs"; "util" ] in
  List.iter
    (fun r ->
      Wafl_util.Table.add_row tbl
        [
          string_of_int r.shard;
          string_of_int r.ops;
          Printf.sprintf "%.0f" (float_of_int r.ops /. (o.horizon /. 1e6));
          string_of_int r.cps;
          Printf.sprintf "%.2f" r.util;
        ])
    o.rows;
  Wafl_util.Table.print tbl;
  let windows = List.length o.telemetry.Wafl_obs.Rollup.s_windows in
  let writes =
    List.fold_left
      (fun acc w ->
        List.fold_left (fun a (_, r) -> a + r.Wafl_obs.Rollup.vr_writes) acc w.Wafl_obs.Rollup.w_vols)
      0 o.telemetry.Wafl_obs.Rollup.s_windows
  in
  Printf.printf "  telemetry: %d merged rollup windows, %d windowed writes\n" windows writes;
  Printf.printf "  digest %s\n" (Digest.to_hex (Digest.string (digest o)))
