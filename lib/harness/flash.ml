open Wafl_workload
open Wafl_util

(* Flash media-model experiment (DESIGN.md §4.13).

   Every row attaches a {!Wafl_flash.Ftl} to the RAID groups and runs a
   random-overwrite workload; the FTL's background GC relocates live
   pages to reclaim erase blocks, and the measured write amplification
   (WAF) plus GC-induced host stalls quantify what the device-fill level,
   the over-provisioning ratio and multi-stream write allocation buy:

   - [Steady] rows sweep device fill x streaming (and one bigger-OP
     point).  The workload is skewed (10% of each file takes 90% of the
     writes) so blocks have genuinely different lifetimes; streaming on
     routes metafile payloads and frequently-rewritten data to a hot
     open erase block and long-lived data to a cold one
     ([Tetris.make_temperature_stream]), so co-streamed pages die
     together and the GC moves fewer live pages.
   - [B2b_interference] adds the PR-6 overload substrate: a bursty
     open-loop tenant under NVLog watermarks, so back-to-back CPs and
     flash GC contend for the device at once. *)

type scenario = Steady of { fill : float; op : float; streaming : bool } | B2b_interference

let scenario_name = function
  | Steady { fill; op; streaming } ->
      Printf.sprintf "fill %.0f%% op %.0f%% stream %s" (100.0 *. fill) (100.0 *. op)
        (if streaming then "on" else "off")
  | B2b_interference -> "b2b bursts, stream on"

(* Device fill is live data over advertised capacity.  The live data is
   a fixed FS occupancy — every page of every client file churned by
   skewed random overwrites — and the fill axis thin-provisions the
   device ([Ftl.config.logical_capacity]) so the same aggregate sits at
   50% or 85% of the drive.  Two dead ends inform this shape: an
   FTL-internal cold prefill gets evicted by the working set (WAFL
   trims every freed VBN at CP commit, so GC keeps finding fully-dead
   churn blocks and WAF pins at 1), and sweeping fill as real FS
   occupancy runs the aggregate's own allocator out of copy-on-write
   headroom before the device is meaningfully full. *)
let occupancy = 0.625
let low_fill = 0.50
let high_fill = 0.85

(* Lifetime skew: 10% of each file's blocks take 90% of the writes.
   Without it every block has the same expected lifetime and there is
   nothing for stream segregation to separate. *)
let hot_fraction = 0.10
let hot_rate = 0.90

let scenarios =
  [
    Steady { fill = low_fill; op = 0.10; streaming = false };
    Steady { fill = low_fill; op = 0.10; streaming = true };
    Steady { fill = high_fill; op = 0.10; streaming = false };
    Steady { fill = high_fill; op = 0.10; streaming = true };
    Steady { fill = high_fill; op = 0.25; streaming = false };
    B2b_interference;
  ]

type row = { scenario : scenario; r : Driver.result }

let ftl_config ~fill ~op =
  {
    Wafl_flash.Ftl.default_config with
    Wafl_flash.Ftl.logical_capacity = occupancy /. fill;
    op_ratio = op;
    streams = 2;
  }

(* The B2B row reuses the overload substrate at a size the small
   geometry can carry: one bursty hot tenant plus one steady one, small
   NVRAM halves, watermark admission on. *)
let b2b_arrivals =
  [
    Arrival.Bursty
      { base_rate = 2_000.0; burst_rate = 80_000.0; mean_on_us = 20_000.0; mean_off_us = 150_000.0 };
    Arrival.Poisson { rate = 2_000.0 };
  ]

let watermarks = { Wafl_fs.Nvlog.soft = 0.5; hard = 0.9; pace = 25.0 }

let spec ~scale ~scenario =
  let base = Exp.spec_base ~scale in
  let cfg = Exp.wa_config ~cleaners:2 ~max_cleaners:4 () in
  let geometry = Driver.small_geometry () in
  let device_vbns = Wafl_storage.Geometry.total_data_blocks geometry in
  (* The churn footprint is physics, not workload size: it stays fixed
     across [scale] — only the window length scales. *)
  let file_blocks ~clients = int_of_float (occupancy *. float_of_int device_vbns) / clients in
  let common =
    (* Steady-state seasoning: the window must not open until the churn
       has written every physical erase block at least once and the GC
       is live at its watermarks, which takes ~(physical pages / flush
       rate) of virtual time — fixed physics, so it does not scale. *)
    {
      base with
      Driver.geometry;
      clients = 8;
      volumes = 2;
      cache_blocks = 16384;
      warmup = 2_500_000.0;
    }
  in
  match scenario with
  | Steady { fill; op; streaming } ->
      {
        common with
        Driver.workload =
          Driver.Skewed_write { file_blocks = file_blocks ~clients:8; hot_fraction; hot_rate };
        flash = Some (ftl_config ~fill ~op);
        cfg =
          { cfg with Wafl_core.Walloc.streams = (if streaming then `Temperature else `Off) };
      }
  | B2b_interference ->
      {
        common with
        Driver.workload =
          Driver.Skewed_write { file_blocks = file_blocks ~clients:2; hot_fraction; hot_rate };
        flash = Some (ftl_config ~fill:high_fill ~op:0.10);
        cfg = { cfg with Wafl_core.Walloc.streams = `Temperature };
        clients = 2;
        volumes = 2;
        nvlog_half = 256;
        watermarks = Some watermarks;
        open_loop = Some { Driver.arrivals = b2b_arrivals; qos = None };
      }

let run_one ~scale scenario = { scenario; r = Driver.run (spec ~scale ~scenario) }
let run ?(scale = 1.0) () = Exp.par_map (run_one ~scale) scenarios
let find rows scenario = List.find (fun row -> row.scenario = scenario) rows

(* --- bench accessors ---------------------------------------------------- *)

let waf row = row.r.Driver.waf
let gc_stall_us row = row.r.Driver.flash_gc_stall_us
let write_p99 row = Histogram.percentile row.r.Driver.write_latency 99.0

let print rows =
  Printf.printf "\nFlash: NAND media model — WAF and GC push-back vs fill / OP / streaming\n";
  let t =
    Table.create
      ~headers:
        [
          "scenario";
          "waf";
          "host pages";
          "gc pages";
          "erases";
          "gc stall (ms)";
          "write p99 (us)";
          "ops/s";
          "b2b cps";
        ]
  in
  List.iter
    (fun row ->
      let r = row.r in
      Table.add_row t
        [
          scenario_name row.scenario;
          Printf.sprintf "%.2f" (waf row);
          string_of_int r.Driver.flash_host_pages;
          string_of_int r.Driver.flash_gc_pages;
          string_of_int r.Driver.flash_erases;
          Printf.sprintf "%.1f" (gc_stall_us row /. 1000.0);
          Table.cell_f1 (write_p99 row);
          Printf.sprintf "%.0f" r.Driver.throughput;
          string_of_int r.Driver.b2b_cps;
        ])
    rows;
  Table.print t

let shapes rows =
  let off_lo = find rows (Steady { fill = low_fill; op = 0.10; streaming = false }) in
  let off_hi = find rows (Steady { fill = high_fill; op = 0.10; streaming = false }) in
  let on_hi = find rows (Steady { fill = high_fill; op = 0.10; streaming = true }) in
  let op25 = find rows (Steady { fill = high_fill; op = 0.25; streaming = false }) in
  let b2b = find rows B2b_interference in
  [
    Exp.shape "flash: GC is active at high fill (relocations and erases happen)"
      (off_hi.r.Driver.flash_gc_pages > 0 && off_hi.r.Driver.flash_erases > 0);
    Exp.shape "flash: WAF grows with device fill (streaming off)" (waf off_hi > waf off_lo);
    Exp.shape "flash: streaming on beats streaming off at high fill (lower WAF)"
      (waf on_hi < waf off_hi);
    Exp.shape "flash: more over-provisioning lowers WAF at the same fill"
      (waf op25 < waf off_hi);
    Exp.shape "flash: GC push-back stalls host writes at high fill"
      (gc_stall_us off_hi > 0.0);
    Exp.shape "flash: bursty overload drives back-to-back CPs into GC interference"
      (b2b.r.Driver.b2b_cps > 0 && b2b.r.Driver.flash_gc_pages > 0);
  ]
