open Wafl_workload
open Wafl_util

type row = { random_fraction : float; result : Driver.result }

let run ?(scale = 1.0) ?(fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ]) () =
  let file_blocks = max 2048 (int_of_float (16384.0 *. scale)) in
  let spec = Exp.spec_base ~scale in
  Exp.par_map
    (fun random_fraction ->
      let workload = Driver.Mixed_write { file_blocks; random_fraction } in
      {
        random_fraction;
        result =
          Driver.run
            { spec with Driver.workload; cfg = Exp.wa_config ~cleaners:6 ~max_cleaners:6 () };
      })
    fractions

(* Per-operation virtual µs of each component. *)
let per_op_us cores (r : Driver.result) = cores *. 1e6 /. Float.max 1.0 r.Driver.throughput

let print rows =
  Printf.printf
    "\nCrossover sweep: sequential -> random write (White Alligator, 6 cleaners)\n";
  let t =
    Table.create
      ~headers:
        [
          "random fraction";
          "ops/s";
          "cleaner us/op";
          "infra us/op";
          "metafile touches/op";
          "total util";
        ]
  in
  List.iter
    (fun { random_fraction; result = r } ->
      Table.add_row t
        [
          Printf.sprintf "%.2f" random_fraction;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Table.cell_f (per_op_us r.Driver.cores_cleaner r);
          Table.cell_f (per_op_us r.Driver.cores_infra r);
          Printf.sprintf "%.3f"
            (float_of_int r.Driver.metafile_blocks_touched
            /. float_of_int (max 1 r.Driver.writes));
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t

let shapes rows =
  let infra_us f =
    let r = List.find (fun x -> x.random_fraction = f) rows in
    per_op_us r.result.Driver.cores_infra r.result
  in
  let cleaner_us f =
    let r = List.find (fun x -> x.random_fraction = f) rows in
    per_op_us r.result.Driver.cores_cleaner r.result
  in
  let touches f =
    let r = List.find (fun x -> x.random_fraction = f) rows in
    float_of_int r.result.Driver.metafile_blocks_touched
    /. float_of_int (max 1 r.result.Driver.writes)
  in
  [
    Exp.shape "crossover: infra cost per op grows with randomness"
      (infra_us 1.0 > 1.5 *. infra_us 0.0);
    Exp.shape "crossover: cleaner cost per op roughly flat (within 35%)"
      (Float.abs (cleaner_us 1.0 -. cleaner_us 0.0) < 0.35 *. cleaner_us 0.0);
    Exp.shape "crossover: metafile touches grow monotonically"
      (touches 0.25 < touches 0.75 && touches 0.0 < touches 1.0);
    Exp.shape "crossover: fully random write is infra-dominated"
      (infra_us 1.0 > cleaner_us 1.0);
    Exp.shape "crossover: sequential write is cleaner-dominated"
      (cleaner_us 0.0 > infra_us 0.0);
  ]
