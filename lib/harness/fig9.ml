open Wafl_workload
open Wafl_util

type config = Static of int | Dynamic
type point = { offered_level : int; result : Driver.result }
type series = { config : config; points : point list }

let config_name = function Static n -> Printf.sprintf "%d threads" n | Dynamic -> "dynamic"

let walloc_config = function
  | Static n -> Exp.wa_config ~cleaners:n ~max_cleaners:n ()
  | Dynamic -> Exp.wa_config ~cleaners:1 ~max_cleaners:4 ~dynamic:true ()

(* Offered load is swept by shrinking exponential think time; the last
   level is full tilt. *)
let think_of_level ~levels level =
  if level >= levels then 0.0 else 320.0 *. float_of_int (levels - level) /. float_of_int levels

let run ?(scale = 1.0) ?(levels = 4) () =
  let spec = Exp.spec_base ~scale in
  (* Fan out across configs; the load levels within one series stay
     serial (one level of parallelism — see Wafl_util.Pool). *)
  Exp.par_map
    (fun config ->
      let cfg = walloc_config config in
      let points =
        List.init levels (fun i ->
            let level = i + 1 in
            let think = think_of_level ~levels level in
            {
              offered_level = level;
              result = Driver.run { spec with Driver.cfg; think_time = think };
            })
      in
      { config; points })
    [ Static 2; Static 3; Static 4; Dynamic ]

let print series =
  Printf.printf "\nFigure 9: throughput vs latency at increasing load (sequential write)\n";
  let t =
    Table.create
      ~headers:
        [ "configuration"; "load level"; "ops/s"; "mean lat (us)"; "p95 lat (us)"; "avg threads" ]
  in
  List.iter
    (fun { config; points } ->
      List.iter
        (fun { offered_level; result = r } ->
          Table.add_row t
            [
              config_name config;
              string_of_int offered_level;
              Printf.sprintf "%.0f" r.Driver.throughput;
              Table.cell_f1 (Histogram.mean r.Driver.latency);
              Table.cell_f1 (Histogram.percentile r.Driver.latency 95.0);
              Table.cell_f r.Driver.avg_active_cleaners;
            ])
        points;
      Table.add_separator t)
    series;
  Table.print t

let find series c = List.find (fun s -> s.config = c) series

let shapes series =
  let peak c =
    List.fold_left (fun a p -> Float.max a p.result.Driver.throughput) 0.0 (find series c).points
  in
  let low_lat c =
    match (find series c).points with
    | p :: _ -> Histogram.mean p.result.Driver.latency
    | [] -> infinity
  in
  let dyn = find series Dynamic in
  let monotone_tput s =
    let rec go = function
      | a :: (b :: _ as rest) ->
          b.result.Driver.throughput >= 0.85 *. a.result.Driver.throughput && go rest
      | _ -> true
    in
    go s.points
  in
  [
    Exp.shape "fig9: throughput rises with offered load (all configs)"
      (List.for_all monotone_tput series);
    Exp.shape "fig9: latency rises with offered load (dynamic)"
      (match dyn.points with
      | first :: rest ->
          let last = List.nth rest (List.length rest - 1) in
          Histogram.mean last.result.Driver.latency
          > Histogram.mean first.result.Driver.latency
      | [] -> false);
    Exp.shape "fig9: dynamic peak >= 95% of best static peak"
      (peak Dynamic >= 0.95 *. List.fold_left (fun a n -> Float.max a (peak (Static n))) 0.0 [2;3;4]);
    Exp.shape "fig9: dynamic low-load latency <= 4-thread low-load latency * 1.1"
      (low_lat Dynamic <= 1.1 *. low_lat (Static 4));
    Exp.shape "fig9: dynamic uses fewer threads at low load than at peak"
      (match dyn.points with
      | first :: rest ->
          let last = List.nth rest (List.length rest - 1) in
          first.result.Driver.avg_active_cleaners < last.result.Driver.avg_active_cleaners +. 0.5
      | [] -> false);
  ]
