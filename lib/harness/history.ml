open Wafl_workload
open Wafl_util

type row = { era : string; result : Driver.result; gain : float }

let configs =
  [
    ( "2006 serial affinity",
      { Wafl_core.Walloc.serialized_config with serial_cleaning = true } );
    ("2008 single cleaner thread", Wafl_core.Walloc.serialized_config);
    ("2011 white alligator", Exp.wa_config ~cleaners:6 ~max_cleaners:6 ());
  ]

let run ?(scale = 1.0) () =
  let spec = Exp.spec_base ~scale in
  (* Rows run concurrently (Exp.par_map); the 2003 baseline is the first
     row's result, read back after the sweep. *)
  let results =
    Exp.par_map
      (fun (era, cfg) ->
        let cfg = { cfg with Wafl_core.Walloc.cp_timer = Some 250_000.0 } in
        (era, Driver.run { spec with Driver.cfg }))
      configs
  in
  let baseline =
    match results with (_, r) :: _ -> r.Driver.throughput | [] -> 0.0
  in
  List.map
    (fun (era, result) ->
      { era; result; gain = Exp.gain_pct ~baseline result.Driver.throughput })
    results

let print rows =
  Printf.printf "\nHistory ablation: three generations of WAFL write allocation (seq write)\n";
  let t =
    Table.create
      ~headers:[ "era"; "ops/s"; "gain"; "mean lat (us)"; "p99 lat (us)"; "total util" ]
  in
  List.iter
    (fun { era; result = r; gain } ->
      Table.add_row t
        [
          era;
          Printf.sprintf "%.0f" r.Driver.throughput;
          Table.cell_pct gain;
          Table.cell_f1 (Histogram.mean r.Driver.latency);
          Table.cell_f1 (Histogram.percentile r.Driver.latency 99.0);
          Table.cell_f r.Driver.utilization;
        ])
    rows;
  Table.print t

let shapes rows =
  match rows with
  | [ serial; single; wa ] ->
      [
        Exp.shape "history: each generation improves throughput"
          (single.result.Driver.throughput > serial.result.Driver.throughput
          && wa.result.Driver.throughput > single.result.Driver.throughput);
        (* Mean latency, not a percentile: the serial era's pain is rare
           but enormous client stalls behind Serial-affinity cleaning,
           which sit beyond p99 at these op counts. *)
        Exp.shape "history: serial affinity inflicts the worst mean latency"
          (Histogram.mean serial.result.Driver.latency
          > 2.0 *. Histogram.mean wa.result.Driver.latency);
        Exp.shape "history: white alligator >2x the 2006 design"
          (wa.result.Driver.throughput > 2.0 *. serial.result.Driver.throughput);
      ]
  | _ -> [ Exp.shape "history: three eras ran" false ]
