(** Shared infrastructure for the paper-reproduction experiments.

    Every experiment accepts a [scale] factor: 1.0 reproduces the default
    measurement windows; smaller values shrink warmup/measure windows and
    working sets proportionally for quick smoke runs ([of_env] reads
    WAFL_SCALE, with WAFL_QUICK=1 as a 0.25 shortcut). *)

val of_env : unit -> float
(** Scale factor from the environment; 1.0 by default. *)

val sanitize : bool ref
(** When set (the CLI's --sanitize flag), every spec derived from
    [spec_base] runs under the race detector and isolation checker.
    Results are bit-identical either way; any report is a bug. *)

val trace : (Wafl_sim.Engine.t -> Wafl_obs.Trace.t) option ref
(** When set (the CLI's trace subcommand), every spec derived from
    [spec_base] attaches a tracer built by this factory; capture the
    tracer via a [ref] inside the closure to export it after the run.
    Tracing never changes results. *)

val telemetry : Wafl_workload.Driver.telemetry option ref
(** When set (the bench harness, the CLI's top subcommand), every spec
    derived from [spec_base] attaches fleet telemetry rollups and the
    health watchdog.  Observe-only; results are bit-identical either
    way. *)

val domains : int ref
(** Worker-domain count for experiment fan-out (the CLI's --domains
    flag).  1 (the default) runs sweeps serially; [n > 1] lets
    {!par_map} execute up to [n] rows concurrently. *)

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** Map over independent sweep points (experiment rows, scenario
    matrices), executing up to [!domains] of them concurrently on
    worker domains ({!Wafl_util.Pool}).  Results keep input order, so
    the sweep is byte-identical to [List.map] at any domain count.
    When a tracer factory is installed ({!trace}), falls back to
    serial: trace capture is start-order-dependent. *)

val spec_base : scale:float -> Wafl_workload.Driver.spec
(** The common 20-core paper-platform spec: SSD aggregate of 2 RAID
    groups x (10 + 2) drives, 40 Fibre-Channel-style clients, 2 volumes,
    CP timer at 250 ms. *)

val wa_config :
  ?cleaners:int ->
  ?max_cleaners:int ->
  ?parallel_infra:bool ->
  ?dynamic:bool ->
  ?batching:bool ->
  unit ->
  Wafl_core.Walloc.config
(** White Alligator configuration shorthand used by all experiments. *)

val gain_pct : baseline:float -> float -> float

val shape : string -> bool -> string * bool
(** Tag a shape assertion for EXPERIMENTS.md reporting. *)

val print_shapes : (string * bool) list -> unit
