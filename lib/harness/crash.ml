open Wafl_sim
open Wafl_fs
module Geometry = Wafl_storage.Geometry
module Disk = Wafl_storage.Disk
module Raid = Wafl_storage.Raid
module Fault = Wafl_storage.Fault

type outcome = {
  seed : int;
  crash_time : float;
  mid_cp : bool;
  cp_phase : string;
  cps_before_crash : int;
  acked : int;
  torn : int;
  lost : int;
  fsck_failure : string option;
  disk_failure_active : bool;
  media_errors : int;
  transient_retries : int;
  degraded_reads : int;
  rebuild_blocks : int;
  b2b_cps : int;  (* back-to-back CPs before the crash (overload mode) *)
  stall_us : float;  (* client time parked in watermark admission *)
  exhausted_writes : int;  (* must stay 0: watermarks hold admission back *)
  flash_gc_pages : int;  (* FTL GC relocations before the crash (flash mode) *)
  flash_erases : int;
  races : int;
}

(* Same shape as the integration tests: 2 groups x 3 data drives, small
   drives so a rebuild completes within a verification run. *)
let raid_groups = [ (3, 1); (3, 1) ]
let drive_blocks = 8192
let geometry () = Geometry.create ~drive_blocks ~aa_stripes:512 ~raid_groups ()

(* Replay the surviving (acknowledged, not torn) operation mirror into
   the expected state: (vol, file, fbn) -> content. *)
let expected_state surviving =
  let expected = Hashtbl.create 4096 in
  let live = Hashtbl.create 16 in
  List.iter
    (function
      | Nvlog.Create_vol _ -> ()
      | Nvlog.Create_file { vol; file } -> Hashtbl.replace live (vol, file) ()
      | Nvlog.Write { vol; file; fbn; content } ->
          if Hashtbl.mem live (vol, file) then Hashtbl.replace expected (vol, file, fbn) content
      | Nvlog.Delete_file { vol; file } ->
          Hashtbl.remove live (vol, file);
          Hashtbl.filter_map_inplace
            (fun (v, f, _) c -> if v = vol && f = file then None else Some c)
            expected)
    surviving;
  expected

(* Overload mode: a small NVRAM with watermark admission, driven by a
   seeded bursty open-loop arrival plan, so crash points land inside
   throttled and back-to-back-CP windows rather than steady state. *)
let overload_watermarks = { Nvlog.soft = 0.5; hard = 0.9; pace = 25.0 }

let overload_process =
  Wafl_workload.Arrival.Bursty
    { base_rate = 20_000.0; burst_rate = 800_000.0; mean_on_us = 3_000.0; mean_off_us = 8_000.0 }

(* Flash mode: a nearly-full FTL so the background GC is active for most
   of the run and the crash routinely lands mid-GC-cycle.  The FTL's L2P
   table is volatile — recovery rebuilds the mapping from the recovered
   aggregate — so acked-write read-back must hold regardless of where in
   a GC relocation the crash hit. *)
let flash_config =
  {
    Wafl_flash.Ftl.default_config with
    Wafl_flash.Ftl.prefill = 0.85;
    op_ratio = 0.10;
    streams = 2;
  }

let run_one ?(ops = 100_000) ?(fbn_space = 700) ?(horizon = 60_000.0) ?(sanitize = false)
    ?(overload = false) ?(flash = false) ~seed () =
  let geom = geometry () in
  let plan =
    Fault.random ~seed ~total_vbns:(Geometry.total_data_blocks geom) ~raid_groups ~drive_blocks
      ~horizon
  in
  let eng = Engine.create ~cores:8 ~sanitize () in
  let agg =
    Aggregate.create eng ~cost:Cost.default ~geometry:geom
      ~nvlog_half:(if overload then 512 else 2048)
      ?nvlog_watermarks:(if overload then Some overload_watermarks else None)
      ?flash:(if flash then Some flash_config else None)
      ()
  in
  Disk.set_fault (Aggregate.disk agg) plan;
  let cfg = { Wafl_core.Walloc.default_config with cp_timer = Some 6_000.0 } in
  let walloc = Wafl_core.Walloc.create agg cfg in
  let r = Wafl_util.Rng.create ~seed:(seed lxor 0x2545f491) in
  (* Ordered mirror of every operation this harness acknowledged (newest
     first).  The harness is the only nvlog client, so the mirror's tail
     is exactly the nvlog's tail: the torn records at crash are the
     newest [torn] entries here. *)
  let oplog = ref [] in
  ignore
    (Engine.spawn eng ~label:"client" (fun () ->
         let vol = Aggregate.create_volume agg ~vvbn_space:65536 in
         let vid = Wafl_fs.Volume.id vol in
         oplog := Nvlog.Create_vol { vol = vid; vvbn_space = 65536 } :: !oplog;
         Wafl_core.Walloc.register_volume walloc vol;
         let files =
           Array.init 4 (fun _ ->
               let f = Aggregate.create_file agg ~vol:vid in
               oplog := Nvlog.Create_file { vol = vid; file = File.id f } :: !oplog;
               File.id f)
         in
         (* Overload mode paces ops by the bursty arrival plan (open
            loop); otherwise a fixed per-op CPU cost (closed loop). *)
         let arrival =
           if overload then
             Some
               (Wafl_workload.Arrival.start overload_process
                  ~rng:(Wafl_util.Rng.create ~seed:(seed lxor 0x51ca7a11)))
           else None
         in
         let i = ref 0 in
         while !i < ops && Engine.now eng < horizon do
           incr i;
           (match arrival with
           | Some a -> Engine.sleep (Wafl_workload.Arrival.next a ~now:(Engine.now eng))
           | None -> ());
           Aggregate.wait_for_log_space agg;
           let file = files.(Wafl_util.Rng.int r (Array.length files)) in
           let fbn = Wafl_util.Rng.int r fbn_space in
           let content = Int64.of_int ((!i * 131) + (seed * 7) + fbn) in
           (* The reply leaves the box when the write lands in the log; a
              shed write is never acknowledged and never enters the
              mirror. *)
           (match Aggregate.write agg ~vol:vid ~file ~fbn ~content with
           | `Ok -> oplog := Nvlog.Write { vol = vid; file; fbn; content } :: !oplog
           | `Log_half_full ->
               Wafl_core.Cp.request (Wafl_core.Walloc.cp walloc);
               oplog := Nvlog.Write { vol = vid; file; fbn; content } :: !oplog
           | `Log_exhausted -> ());
           if not overload then Engine.consume 3.0
         done));
  let crash_time = Fault.crash_at plan in
  Engine.run ~until:crash_time eng;
  let cp = Wafl_core.Walloc.cp walloc in
  let mid_cp = Wafl_core.Cp.running cp in
  let cp_phase = Wafl_core.Cp.phase cp in
  let cps_before_crash = Wafl_core.Cp.cps_completed cp in
  let b2b_cps = Counters.read (Aggregate.counters agg) "b2b_cps" in
  let stall_us = Aggregate.stall_time agg in
  let exhausted_writes = Counters.read (Aggregate.counters agg) "nvlog_exhausted_writes" in
  let ftls = Aggregate.ftls agg in
  let flash_gc_pages = List.fold_left (fun a f -> a + Wafl_flash.Ftl.gc_pages f) 0 ftls in
  let flash_erases = List.fold_left (fun a f -> a + Wafl_flash.Ftl.erases f) 0 ftls in
  let disk_failure_active = Array.exists Raid.degraded (Aggregate.raid_groups agg) in
  (* The crash tears the scheduled NVRAM tail: those records' DMA was in
     flight, so their acknowledgements never left the box — retract them
     from the oracle. *)
  let torn_ops = Nvlog.tear (Aggregate.nvlog agg) ~records:(Fault.torn_tail plan) in
  let torn = List.length torn_ops in
  let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  let surviving = List.rev (drop torn !oplog) in
  let expected = expected_state surviving in
  let pers = Aggregate.crash agg in
  let lost = ref 0 in
  let fsck_failure = ref None in
  let races = ref (Engine.race_report_count eng) in
  (match
     try `Ok (Aggregate.recover (Engine.create ~cores:8 ~sanitize ()) ~cost:Cost.default pers)
     with Aggregate.Corruption m -> `Corrupt m
   with
  | `Corrupt m ->
      fsck_failure := Some m;
      lost := Hashtbl.length expected
  | `Ok agg2 ->
      let eng2 = Aggregate.engine agg2 in
      let walloc2 = Wafl_core.Walloc.create agg2 Wafl_core.Walloc.default_config in
      (* Sorted oracle walk: the reads consume virtual time, so hash-order
         iteration would make the verification run seed-dependent. *)
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) expected [] in (* lint-ok: sorted below *)
      let keys = List.sort compare keys in
      ignore
        (Engine.spawn eng2 ~label:"verify" (fun () ->
             (* A post-recovery CP flushes the replayed state through the
                still-degraded substrate, exercising the repair path. *)
             Wafl_core.Cp.run_now (Wafl_core.Walloc.cp walloc2);
             List.iter
               (fun ((vol, file, fbn) as k) ->
                 let content = Hashtbl.find expected k in
                 match
                   try Aggregate.read agg2 ~vol ~file ~fbn
                   with Aggregate.Corruption _ -> None
                 with
                 | Some c when c = content -> ()
                 | _ -> incr lost)
               keys));
      Engine.run eng2;
      races := !races + Engine.race_report_count eng2;
      (try Aggregate.fsck agg2 with Failure m -> fsck_failure := Some m);
      Aggregate.refresh_fault_counters agg2);
  {
    seed;
    crash_time;
    mid_cp;
    cp_phase;
    cps_before_crash;
    acked = Hashtbl.length expected;
    torn;
    lost = !lost;
    fsck_failure = !fsck_failure;
    disk_failure_active;
    media_errors = Fault.media_errors_seen plan;
    transient_retries = Fault.transient_retries plan;
    degraded_reads = Fault.degraded_reads plan;
    rebuild_blocks = Fault.rebuild_blocks plan;
    b2b_cps;
    stall_us;
    exhausted_writes;
    flash_gc_pages;
    flash_erases;
    races = !races;
  }

let passed o = o.lost = 0 && o.fsck_failure = None

(* Seeds are fully independent runs (each builds its own engines), so
   they fan out over worker domains; the outcome list keeps seed order,
   byte-identical to a serial sweep at any [domains]. *)
let run_seeds ?ops ?fbn_space ?horizon ?sanitize ?overload ?flash ?(domains = 1) ~first_seed
    ~count () =
  Wafl_util.Pool.map ~domains
    (fun seed -> run_one ?ops ?fbn_space ?horizon ?sanitize ?overload ?flash ~seed ())
    (List.init count (fun i -> first_seed + i))

let summarize outcomes =
  let n = List.length outcomes in
  let failed = List.filter (fun o -> not (passed o)) outcomes in
  let count f = List.length (List.filter f outcomes) in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "crash harness: %d/%d seeds passed\n" (n - List.length failed) n);
  Buffer.add_string b
    (Printf.sprintf "  crashed mid-CP: %d   degraded at crash: %d   with torn tail: %d\n"
       (count (fun o -> o.mid_cp))
       (count (fun o -> o.disk_failure_active))
       (count (fun o -> o.torn > 0)));
  Buffer.add_string b
    (Printf.sprintf
       "  faults seen: %d media errors, %d transient retries, %d degraded reads, %d rebuilt \
        blocks\n"
       (sum (fun o -> o.media_errors))
       (sum (fun o -> o.transient_retries))
       (sum (fun o -> o.degraded_reads))
       (sum (fun o -> o.rebuild_blocks)));
  let b2b = sum (fun o -> o.b2b_cps) in
  let stall = List.fold_left (fun acc o -> acc +. o.stall_us) 0.0 outcomes in
  if b2b > 0 || stall > 0.0 then
    Buffer.add_string b
      (Printf.sprintf
         "  overload: %d back-to-back CPs, %.1f ms client stall, %d exhausted-write refusals\n"
         b2b (stall /. 1000.0)
         (sum (fun o -> o.exhausted_writes)));
  let gc_pages = sum (fun o -> o.flash_gc_pages) in
  if gc_pages > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "  flash: %d GC relocations, %d erases before crash (%d seeds crashed with GC \
          underway)\n"
         gc_pages
         (sum (fun o -> o.flash_erases))
         (count (fun o -> o.flash_gc_pages > 0)));
  List.iter
    (fun o ->
      Buffer.add_string b
        (Printf.sprintf "  FAILED seed %d: lost %d/%d acked blocks%s (crash %.0fus, phase %s)\n"
           o.seed o.lost o.acked
           (match o.fsck_failure with Some m -> ", fsck: " ^ m | None -> "")
           o.crash_time o.cp_phase))
    failed;
  Buffer.contents b
