open Wafl_sim

(* One node per affinity instance.  Besides the conflict-tracking state
   (active / desc_active, as before), each node owns the FIFO of its own
   pending messages and caches everything derivable from its affinity
   (kind name, span name, metric handles) so the per-message hot path
   computes no strings and performs no hash lookups. *)
type node = {
  aff : Affinity.t;
  parent : node option;
  mutable active : bool;
  mutable desc_active : int;
  q : msg Queue.t; (* this node's pending messages, oldest first *)
  kind : string; (* Affinity.kind_name aff *)
  span_name : string; (* "msg " ^ kind *)
  post_kind : string; (* "post " ^ kind: the causal-edge kind for this node *)
  mutable wait_h : Wafl_obs.Metrics.histo option; (* registered on first use *)
  mutable service_h : Wafl_obs.Metrics.histo option;
}

and msg = {
  label : string;
  body : unit -> unit;
  posted_at : float;
  seq : int;
  h : Wafl_obs.Causal.handoff; (* poster's causal context (no_handoff unless causal) *)
}

(* A pooled worker fiber.  Workers are daemons: spawned on demand up to
   (roughly) the worker count, they execute one granted message at a
   time and park between grants instead of being created and torn down
   per message — the real Waffinity worker-thread model. *)
type worker = {
  mutable slot : (node * msg) option; (* the granted message to run next *)
  mutable fiber : Engine.fiber option; (* set right after spawn *)
}

type t = {
  eng : Engine.t;
  cost : Cost.t;
  workers : int;
  nodes : (Affinity.t, node) Hashtbl.t;
  (* Grantable-head index: a binary min-heap of nodes keyed by the
     sequence number of each node's head (oldest) pending message.
     Invariant: a node appears in the heap or the round's stash exactly
     when its queue is non-empty, keyed by its current head's seq. *)
  mutable hp_seq : int array;
  mutable hp_node : node array;
  mutable hp_len : int;
  (* Nodes popped but not grantable during the current dispatch round;
     re-pushed when the round ends.  Within a round grantability only
     shrinks (grants add blockers, releases re-enter dispatch), so a
     skipped node stays skipped — exactly the old rescan semantics. *)
  mutable st_seq : int array;
  mutable st_node : node array;
  mutable st_len : int;
  mutable next_seq : int;
  mutable pending_count : int;
  mutable executing : int;
  mutable executed : int;
  by_kind_tbl : (string, int ref) Hashtbl.t;
  mutable by_kind : (string * int ref) list; (* same refs, kind-sorted *)
  mutable wait_time : float;
  idle : Sync.Waitq.t; (* drain waiters *)
  mutable idle_workers : worker list; (* parked workers, most recent first *)
  isolation : Isolation.t option;
  obs : Wafl_obs.Trace.t;
  obs_on : bool; (* Trace.enabled obs, hoisted off the hot path *)
  causal_on : bool; (* Causal.enabled obs, hoisted likewise *)
  m_msgs : Wafl_obs.Metrics.counter;
  g_queued : Wafl_obs.Metrics.gauge;
  g_executing : Wafl_obs.Metrics.gauge;
  mutable chaos_misattribute : Affinity.t option;
      (* test-only: the next posted message is mislabelled with this
         affinity, as if a grant guard were dropped *)
}

let dummy_node =
  {
    aff = Affinity.Serial;
    parent = None;
    active = false;
    desc_active = 0;
    q = Queue.create ();
    kind = "";
    span_name = "";
    post_kind = "";
    wait_h = None;
    service_h = None;
  }

let create ?workers ?isolation ?(obs = Wafl_obs.Trace.disabled) eng ~cost () =
  let workers = match workers with Some w -> w | None -> Engine.cores eng in
  if workers <= 0 then invalid_arg "Scheduler.create: workers must be positive";
  let m = Wafl_obs.Trace.metrics obs in
  {
    eng;
    cost;
    workers;
    nodes = Hashtbl.create 64;
    hp_seq = Array.make 64 0;
    hp_node = Array.make 64 dummy_node;
    hp_len = 0;
    st_seq = Array.make 64 0;
    st_node = Array.make 64 dummy_node;
    st_len = 0;
    next_seq = 0;
    pending_count = 0;
    executing = 0;
    executed = 0;
    by_kind_tbl = Hashtbl.create 16;
    by_kind = [];
    wait_time = 0.0;
    idle = Sync.Waitq.create eng;
    idle_workers = [];
    isolation;
    obs;
    obs_on = Wafl_obs.Trace.enabled obs;
    causal_on = Wafl_obs.Causal.enabled obs;
    m_msgs = Wafl_obs.Metrics.counter m "sched.messages";
    g_queued = Wafl_obs.Metrics.gauge m "sched.queued";
    g_executing = Wafl_obs.Metrics.gauge m "sched.executing";
    chaos_misattribute = None;
  }

let isolation t = t.isolation
let set_chaos_misattribute t aff = t.chaos_misattribute <- aff

let rec node t aff =
  match Hashtbl.find_opt t.nodes aff with
  | Some n -> n
  | None ->
      let parent = Option.map (node t) (Affinity.parent aff) in
      let kind = Affinity.kind_name aff in
      let n =
        {
          aff;
          parent;
          active = false;
          desc_active = 0;
          q = Queue.create ();
          kind;
          span_name = "msg " ^ kind;
          post_kind = "post " ^ kind;
          wait_h = None;
          service_h = None;
        }
      in
      Hashtbl.add t.nodes aff n;
      n

let grantable n =
  if n.active || n.desc_active > 0 then false
  else
    let rec up = function
      | None -> true
      | Some p -> (not p.active) && up p.parent
    in
    up n.parent

let activate n =
  n.active <- true;
  let rec up = function
    | None -> ()
    | Some p ->
        p.desc_active <- p.desc_active + 1;
        up p.parent
  in
  up n.parent

let release n =
  n.active <- false;
  let rec up = function
    | None -> ()
    | Some p ->
        p.desc_active <- p.desc_active - 1;
        up p.parent
  in
  up n.parent

(* Per-affinity-kind histograms, registered on first use and cached on
   the node (the metrics registry dedups by name, so nodes of the same
   kind share the underlying histogram). *)
let wait_histo t n =
  match n.wait_h with
  | Some h -> h
  | None ->
      let h =
        Wafl_obs.Metrics.histogram (Wafl_obs.Trace.metrics t.obs) ("sched.wait_us." ^ n.kind)
      in
      n.wait_h <- Some h;
      h

let service_histo t n =
  match n.service_h with
  | Some h -> h
  | None ->
      let h =
        Wafl_obs.Metrics.histogram (Wafl_obs.Trace.metrics t.obs) ("sched.service_us." ^ n.kind)
      in
      n.service_h <- Some h;
      h

let rec insert_sorted key r = function
  | [] -> [ (key, r) ]
  | (k, _) :: _ as rest when String.compare key k < 0 -> (key, r) :: rest
  | kv :: rest -> kv :: insert_sorted key r rest

let count_kind t n =
  match Hashtbl.find_opt t.by_kind_tbl n.kind with
  | Some r -> incr r
  | None ->
      let r = ref 1 in
      Hashtbl.add t.by_kind_tbl n.kind r;
      t.by_kind <- insert_sorted n.kind r t.by_kind

(* --- the grantable-head heap (min-heap on head-message seq) --- *)

let hp_push t seq n =
  let cap = Array.length t.hp_seq in
  if t.hp_len = cap then begin
    let cap' = 2 * cap in
    let sq = Array.make cap' 0 and nd = Array.make cap' dummy_node in
    Array.blit t.hp_seq 0 sq 0 t.hp_len;
    Array.blit t.hp_node 0 nd 0 t.hp_len;
    t.hp_seq <- sq;
    t.hp_node <- nd
  end;
  let i = ref t.hp_len in
  t.hp_len <- t.hp_len + 1;
  let continue_up = ref true in
  while !continue_up && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.hp_seq.(parent) < seq then continue_up := false
    else begin
      t.hp_seq.(!i) <- t.hp_seq.(parent);
      t.hp_node.(!i) <- t.hp_node.(parent);
      i := parent
    end
  done;
  t.hp_seq.(!i) <- seq;
  t.hp_node.(!i) <- n

(* Remove the minimum (slot 0); the caller has already read it. *)
let hp_remove_min t =
  t.hp_len <- t.hp_len - 1;
  let n = t.hp_len in
  if n = 0 then t.hp_node.(0) <- dummy_node
  else begin
    let seq = t.hp_seq.(n) and node = t.hp_node.(n) in
    t.hp_node.(n) <- dummy_node;
    let i = ref 0 in
    let continue_down = ref true in
    while !continue_down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      if l >= n then continue_down := false
      else begin
        let s = ref (if t.hp_seq.(l) < seq then l else -1) in
        if r < n && t.hp_seq.(r) < (if !s >= 0 then t.hp_seq.(l) else seq) then s := r;
        if !s < 0 then continue_down := false
        else begin
          t.hp_seq.(!i) <- t.hp_seq.(!s);
          t.hp_node.(!i) <- t.hp_node.(!s);
          i := !s
        end
      end
    done;
    t.hp_seq.(!i) <- seq;
    t.hp_node.(!i) <- node
  end

let stash t seq n =
  let cap = Array.length t.st_seq in
  if t.st_len = cap then begin
    let cap' = 2 * cap in
    let sq = Array.make cap' 0 and nd = Array.make cap' dummy_node in
    Array.blit t.st_seq 0 sq 0 t.st_len;
    Array.blit t.st_node 0 nd 0 t.st_len;
    t.st_seq <- sq;
    t.st_node <- nd
  end;
  t.st_seq.(t.st_len) <- seq;
  t.st_node.(t.st_len) <- n;
  t.st_len <- t.st_len + 1

(* --- dispatch: grant oldest pending messages whose affinity is free --- *)

(* The body a message runs under: cost, isolation registration, optional
   span — byte-for-byte the work the old per-message fiber did. *)
let exec t n m =
  let t0 = Engine.now t.eng in
  (* The grant: the queued message's causal context becomes this worker's
     context (and the 'f' half of the post edge lands here), so spans the
     body opens attribute to the posting request, not to whatever the
     pooled worker ran last. *)
  Wafl_obs.Causal.restore t.obs ~kind:n.post_kind m.h;
  Engine.consume t.cost.Cost.msg_dispatch;
  (match t.isolation with
  | Some iso ->
      Isolation.enter iso ~fid:(Engine.current_fid t.eng) ~affinity:n.aff ~label:m.label
  | None -> ());
  let run_body () =
    if t.obs_on then
      Wafl_obs.Trace.with_span t.obs ~cat:"sched" ~name:n.span_name
        ~args:[ ("label", m.label) ]
        ~num_args:(if t.causal_on then [ ("wait_us", t0 -. m.posted_at) ] else [])
        m.body
    else m.body ()
  in
  (try run_body ()
   with exn ->
     (match t.isolation with
     | Some iso -> Isolation.exit iso ~fid:(Engine.current_fid t.eng)
     | None -> ());
     release n;
     raise exn);
  (match t.isolation with
  | Some iso -> Isolation.exit iso ~fid:(Engine.current_fid t.eng)
  | None -> ());
  release n;
  if t.obs_on then begin
    Wafl_obs.Metrics.observe (service_histo t n) (Engine.now t.eng -. t0);
    Wafl_obs.Metrics.incr t.m_msgs
  end;
  t.executing <- t.executing - 1;
  t.executed <- t.executed + 1;
  if t.obs_on then Wafl_obs.Metrics.set t.g_executing (float_of_int t.executing);
  count_kind t n

(* A worker executes its granted message, re-enters dispatch (the old
   per-message fiber did the same on its way out), then parks in the
   idle pool until the next grant fills its slot. *)
let rec worker_loop t w =
  (match w.slot with
  | None -> ()
  | Some (n, m) ->
      w.slot <- None;
      exec t n m;
      (* Workers are reused across unrelated messages: drop any span the
         body left open and deactivate its causal context, so message A's
         leftovers can never parent message B's spans. *)
      if t.obs_on then Wafl_obs.Causal.fiber_reset t.obs;
      if t.executing = 0 && t.pending_count = 0 then ignore (Sync.Waitq.wake_all t.idle);
      dispatch t);
  t.idle_workers <- w :: t.idle_workers;
  Engine.park t.eng;
  worker_loop t w

and start t n m =
  activate n;
  t.executing <- t.executing + 1;
  let wait = Engine.now t.eng -. m.posted_at in
  t.wait_time <- t.wait_time +. wait;
  if t.obs_on then begin
    Wafl_obs.Metrics.observe (wait_histo t n) wait;
    Wafl_obs.Metrics.set t.g_executing (float_of_int t.executing)
  end;
  (* The queue hand-off orders the poster before the message body even
     when the granting dispatch runs in an unrelated fiber. *)
  Engine.probe_atomic t.eng ~shared:"sched.queue";
  match t.idle_workers with
  | w :: rest ->
      t.idle_workers <- rest;
      w.slot <- Some (n, m);
      let f = Option.get w.fiber in
      (* Charge the worker's CPU to the message's class, and let the
         dispatch observability hook see that class, exactly as the old
         fresh-fiber-per-message spawn did. *)
      Engine.relabel f m.label;
      Engine.wake t.eng f
  | [] ->
      (* No idle worker: grow the pool.  [executing] <= workers bounds
         the busy workers, so the pool stays within one fiber of the
         worker count (the one transiently between finish and park). *)
      let w = { slot = Some (n, m); fiber = None } in
      w.fiber <- Some (Engine.spawn t.eng ~label:m.label ~daemon:true (fun () -> worker_loop t w))

and dispatch t =
  (* Pop grantable heads oldest-first; stash skipped (blocked) nodes and
     re-push them once the round ends.  Equivalent to the old "rescan
     the whole pending list after every grant" because a node blocked at
     its pop stays blocked for the rest of the round. *)
  while t.executing < t.workers && t.hp_len > 0 do
    let seq = t.hp_seq.(0) and n = t.hp_node.(0) in
    hp_remove_min t;
    if grantable n then begin
      let m = Queue.pop n.q in
      t.pending_count <- t.pending_count - 1;
      if t.obs_on then Wafl_obs.Metrics.set t.g_queued (float_of_int t.pending_count);
      if not (Queue.is_empty n.q) then hp_push t (Queue.peek n.q).seq n;
      start t n m
    end
    else stash t seq n
  done;
  for i = 0 to t.st_len - 1 do
    hp_push t t.st_seq.(i) t.st_node.(i);
    t.st_node.(i) <- dummy_node
  done;
  t.st_len <- 0

let post t ~affinity ~label body =
  let affinity =
    match t.chaos_misattribute with
    | Some chaos ->
        t.chaos_misattribute <- None;
        chaos
    | None -> affinity
  in
  let n = node t affinity in
  let m =
    {
      label;
      body;
      posted_at = Engine.now t.eng;
      seq = t.next_seq;
      h = Wafl_obs.Causal.capture t.obs ~kind:n.post_kind;
    }
  in
  t.next_seq <- t.next_seq + 1;
  let was_empty = Queue.is_empty n.q in
  Queue.push m n.q;
  if was_empty then hp_push t m.seq n;
  t.pending_count <- t.pending_count + 1;
  if t.obs_on then Wafl_obs.Metrics.set t.g_queued (float_of_int t.pending_count);
  Engine.probe_atomic t.eng ~shared:"sched.queue";
  dispatch t

let post_wait t ~affinity ~label body =
  let result = ref None in
  let me = Engine.self t.eng in
  post t ~affinity ~label (fun () ->
      result := Some (body ());
      Engine.wake t.eng me);
  (* Scheduling is cooperative: the message fiber cannot run until this
     fiber parks, so the wake always finds us parked. *)
  Engine.park t.eng;
  match !result with Some v -> v | None -> assert false

let drain t =
  while t.executing > 0 || t.pending_count > 0 do
    Sync.Waitq.wait t.idle
  done

let queued t = t.pending_count
let executing t = t.executing
let executed_total t = t.executed

(* [by_kind] is maintained kind-sorted at insertion; no hash-order walk,
   no re-sort per call. *)
let executed_by_kind t = List.map (fun (k, r) -> (k, !r)) t.by_kind
let wait_time_total t = t.wait_time
