open Wafl_sim

type node = {
  aff : Affinity.t;
  parent : node option;
  mutable active : bool;
  mutable desc_active : int;
}

type msg = { node : node; label : string; body : unit -> unit; posted_at : float }

type t = {
  eng : Engine.t;
  cost : Cost.t;
  workers : int;
  nodes : (Affinity.t, node) Hashtbl.t;
  mutable pending : msg list; (* oldest first *)
  mutable pending_count : int;
  mutable executing : int;
  mutable executed : int;
  by_kind : (string, int ref) Hashtbl.t;
  mutable wait_time : float;
  idle : Sync.Waitq.t;
  isolation : Isolation.t option;
  obs : Wafl_obs.Trace.t;
  wait_h : (string, Wafl_obs.Metrics.histo) Hashtbl.t; (* per affinity kind *)
  service_h : (string, Wafl_obs.Metrics.histo) Hashtbl.t;
  m_msgs : Wafl_obs.Metrics.counter;
  g_queued : Wafl_obs.Metrics.gauge;
  g_executing : Wafl_obs.Metrics.gauge;
  mutable chaos_misattribute : Affinity.t option;
      (* test-only: the next posted message is mislabelled with this
         affinity, as if a grant guard were dropped *)
}

(* Per-affinity-kind histograms, registered on first use (the kind set is
   small and fixed, so the cache stays tiny). *)
let kind_histo t cache prefix kind =
  match Hashtbl.find_opt cache kind with
  | Some h -> h
  | None ->
      let h = Wafl_obs.Metrics.histogram (Wafl_obs.Trace.metrics t.obs) (prefix ^ kind) in
      Hashtbl.add cache kind h;
      h

let create ?workers ?isolation ?(obs = Wafl_obs.Trace.disabled) eng ~cost () =
  let workers = match workers with Some w -> w | None -> Engine.cores eng in
  if workers <= 0 then invalid_arg "Scheduler.create: workers must be positive";
  let m = Wafl_obs.Trace.metrics obs in
  {
    eng;
    cost;
    workers;
    nodes = Hashtbl.create 64;
    pending = [];
    pending_count = 0;
    executing = 0;
    executed = 0;
    by_kind = Hashtbl.create 16;
    wait_time = 0.0;
    idle = Sync.Waitq.create eng;
    isolation;
    obs;
    wait_h = Hashtbl.create 16;
    service_h = Hashtbl.create 16;
    m_msgs = Wafl_obs.Metrics.counter m "sched.messages";
    g_queued = Wafl_obs.Metrics.gauge m "sched.queued";
    g_executing = Wafl_obs.Metrics.gauge m "sched.executing";
    chaos_misattribute = None;
  }

let isolation t = t.isolation
let set_chaos_misattribute t aff = t.chaos_misattribute <- aff

let rec node t aff =
  match Hashtbl.find_opt t.nodes aff with
  | Some n -> n
  | None ->
      let parent = Option.map (node t) (Affinity.parent aff) in
      let n = { aff; parent; active = false; desc_active = 0 } in
      Hashtbl.add t.nodes aff n;
      n

let grantable n =
  if n.active || n.desc_active > 0 then false
  else
    let rec up = function
      | None -> true
      | Some p -> (not p.active) && up p.parent
    in
    up n.parent

let activate n =
  n.active <- true;
  let rec up = function
    | None -> ()
    | Some p ->
        p.desc_active <- p.desc_active + 1;
        up p.parent
  in
  up n.parent

let release n =
  n.active <- false;
  let rec up = function
    | None -> ()
    | Some p ->
        p.desc_active <- p.desc_active - 1;
        up p.parent
  in
  up n.parent

let count_kind t aff =
  let key = Affinity.kind_name aff in
  match Hashtbl.find_opt t.by_kind key with
  | Some r -> incr r
  | None -> Hashtbl.add t.by_kind key (ref 1)

let rec dispatch t =
  if t.executing < t.workers && t.pending_count > 0 then begin
    (* Grant the oldest message whose affinity is unblocked. *)
    let rec pick acc = function
      | [] -> None
      | m :: rest ->
          if grantable m.node then Some (m, List.rev_append acc rest)
          else pick (m :: acc) rest
    in
    match pick [] t.pending with
    | None -> ()
    | Some (m, rest) ->
        t.pending <- rest;
        t.pending_count <- t.pending_count - 1;
        Wafl_obs.Metrics.set t.g_queued (float_of_int t.pending_count);
        start t m;
        dispatch t
  end

and start t m =
  activate m.node;
  t.executing <- t.executing + 1;
  let kind = Affinity.kind_name m.node.aff in
  let wait = Engine.now t.eng -. m.posted_at in
  t.wait_time <- t.wait_time +. wait;
  Wafl_obs.Metrics.observe (kind_histo t t.wait_h "sched.wait_us." kind) wait;
  Wafl_obs.Metrics.set t.g_executing (float_of_int t.executing);
  (* The queue hand-off orders the poster before the message body even
     when the granting dispatch runs in an unrelated fiber. *)
  Engine.probe_atomic t.eng ~shared:"sched.queue";
  ignore
    (Engine.spawn t.eng ~label:m.label (fun () ->
         let t0 = Engine.now t.eng in
         Engine.consume t.cost.Cost.msg_dispatch;
         (match t.isolation with
         | Some iso ->
             Isolation.enter iso ~fid:(Engine.current_fid t.eng) ~affinity:m.node.aff
               ~label:m.label
         | None -> ());
         let run_body () =
           if Wafl_obs.Trace.enabled t.obs then
             Wafl_obs.Trace.with_span t.obs ~cat:"sched" ~name:("msg " ^ kind)
               ~args:[ ("label", m.label) ]
               m.body
           else m.body ()
         in
         (try run_body ()
          with exn ->
            (match t.isolation with
            | Some iso -> Isolation.exit iso ~fid:(Engine.current_fid t.eng)
            | None -> ());
            release m.node;
            raise exn);
         (match t.isolation with
         | Some iso -> Isolation.exit iso ~fid:(Engine.current_fid t.eng)
         | None -> ());
         release m.node;
         Wafl_obs.Metrics.observe
           (kind_histo t t.service_h "sched.service_us." kind)
           (Engine.now t.eng -. t0);
         Wafl_obs.Metrics.incr t.m_msgs;
         t.executing <- t.executing - 1;
         t.executed <- t.executed + 1;
         Wafl_obs.Metrics.set t.g_executing (float_of_int t.executing);
         count_kind t m.node.aff;
         if t.executing = 0 && t.pending_count = 0 then ignore (Sync.Waitq.wake_all t.idle);
         dispatch t))

let post t ~affinity ~label body =
  let affinity =
    match t.chaos_misattribute with
    | Some chaos ->
        t.chaos_misattribute <- None;
        chaos
    | None -> affinity
  in
  let m = { node = node t affinity; label; body; posted_at = Engine.now t.eng } in
  t.pending <- t.pending @ [ m ];
  t.pending_count <- t.pending_count + 1;
  Wafl_obs.Metrics.set t.g_queued (float_of_int t.pending_count);
  Engine.probe_atomic t.eng ~shared:"sched.queue";
  dispatch t

let post_wait t ~affinity ~label body =
  let result = ref None in
  let me = Engine.self t.eng in
  post t ~affinity ~label (fun () ->
      result := Some (body ());
      Engine.wake t.eng me);
  (* Scheduling is cooperative: the message fiber cannot run until this
     fiber parks, so the wake always finds us parked. *)
  Engine.park t.eng;
  match !result with Some v -> v | None -> assert false

let drain t =
  while t.executing > 0 || t.pending_count > 0 do
    Sync.Waitq.wait t.idle
  done

let queued t = t.pending_count
let executing t = t.executing
let executed_total t = t.executed

let executed_by_kind t =
  (* lint-ok: sorted before use. *)
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let wait_time_total t = t.wait_time
