exception Violation of string

type t = {
  owners : (string, Affinity.t) Hashtbl.t;
  running : (int, Affinity.t * string) Hashtbl.t; (* fid -> affinity, message label *)
}

let create () = { owners = Hashtbl.create 256; running = Hashtbl.create 64 }
let register_owner t ~shared affinity = Hashtbl.replace t.owners shared affinity
let owner t ~shared = Hashtbl.find_opt t.owners shared
let enter t ~fid ~affinity ~label = Hashtbl.replace t.running fid (affinity, label)
let exit t ~fid = Hashtbl.remove t.running fid

let check t ~fid ~shared =
  match Hashtbl.find_opt t.running fid with
  | None -> ()
  | Some (affinity, label) -> (
      match Hashtbl.find_opt t.owners shared with
      | None -> ()
      | Some owner ->
          if not (Affinity.conflicts affinity owner) then
            raise
              (Violation
                 (Format.asprintf
                    "affinity-isolation violation: message %S running under %a touched %s, \
                     which belongs to %a (no conflict, so no mutual exclusion)"
                    label Affinity.pp affinity shared Affinity.pp owner)))
