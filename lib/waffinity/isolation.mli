(** Affinity-isolation checker (paper §III): Hierarchical Waffinity's
    central claim is that affinity rules {e replace} fine-grained locks —
    a message may touch partition-private data only if its affinity
    conflicts with (equals, or is an ancestor/descendant of) the
    affinity that owns that data, because only then does the scheduler
    guarantee mutual exclusion.

    This module materializes that permission map.  Data domains are the
    shared-state ids used by [Engine.probe] (e.g. a metafile map block);
    each is registered with its owning affinity.  The scheduler records
    which affinity every message fiber runs under; the engine's access
    hook then calls {!check} on every probe, and a touch of a domain
    whose owner does not conflict with the running affinity aborts the
    run with a {!Violation} diagnostic.

    Probes from outside message context (setup code, the CP engine's own
    fibers, cleaner threads) are not constrained — only code that claims
    to run under an affinity is held to the affinity rules. *)

exception Violation of string

type t

val create : unit -> t

val register_owner : t -> shared:string -> Affinity.t -> unit
(** Declare that the data domain [shared] is private to [affinity]'s
    partition.  Re-registering replaces the owner. *)

val owner : t -> shared:string -> Affinity.t option

val enter : t -> fid:int -> affinity:Affinity.t -> label:string -> unit
(** Record that fiber [fid] is executing a message under [affinity];
    called by the scheduler when the message fiber starts. *)

val exit : t -> fid:int -> unit
(** The message finished (or raised); the fiber is unconstrained again. *)

val check : t -> fid:int -> shared:string -> unit
(** Raise {!Violation} if [fid] is running a message whose affinity does
    not conflict with the registered owner of [shared].  No-op for
    unregistered domains and non-message fibers. *)
