(** The Waffinity message scheduler.

    Messages are posted with a target {!Affinity.t}; the scheduler starts
    a message only when no conflicting affinity (ancestor, descendant or
    the same instance) is executing and a worker-thread slot is free.
    Non-conflicting messages run concurrently, bounded by [workers] (the
    Waffinity thread count, normally one per core).

    Message bodies run in fiber context and may charge CPU with
    [Engine.consume]; they must not park (a real Waffinity message runs
    to completion), which the scheduler asserts.

    Pending messages are granted in FIFO arrival order, skipping those
    whose affinity is blocked — the "scheduler enforces execution
    exclusivity" behaviour of §III-D. *)

type t

val create :
  ?workers:int ->
  ?isolation:Isolation.t ->
  ?obs:Wafl_obs.Trace.t ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  unit ->
  t
(** [workers] defaults to the engine's core count.  When [isolation] is
    given, every message fiber is registered with the checker for its
    lifetime, so [Engine.probe] calls from message context are validated
    against the message's affinity (see {!Isolation}).  [obs] (default
    disabled) wraps each message body in a ["msg <kind>"] span and
    records queue-wait and service-time histograms per affinity kind
    (["sched.wait_us.<kind>"], ["sched.service_us.<kind>"]) plus queue
    depth gauges. *)

val isolation : t -> Isolation.t option

val set_chaos_misattribute : t -> Affinity.t option -> unit
(** Test-only chaos hook (compare [Cp.chaos_publish_before_quiesce]):
    the next posted message is granted and checked under the given
    affinity instead of its own — simulating a message posted to the
    wrong affinity, i.e. a dropped isolation guard.  The sanitizers must
    catch the resulting violation. *)

val post : t -> affinity:Affinity.t -> label:string -> (unit -> unit) -> unit
(** Fire-and-forget message.  [label] is the CPU accounting class the
    body's work is charged to. *)

val post_wait : t -> affinity:Affinity.t -> label:string -> (unit -> 'a) -> 'a
(** Post and park until the message completes; returns the body's result.
    Must be called from fiber context (and not from inside another
    message whose affinity conflicts — that would deadlock, as in the
    real system). *)

val drain : t -> unit
(** Park until no message is queued or executing. *)

val queued : t -> int
val executing : t -> int
val executed_total : t -> int
val executed_by_kind : t -> (string * int) list
(** Completed-message counts per affinity kind, sorted by kind name. *)

val wait_time_total : t -> float
(** Total virtual µs messages spent queued before starting; queueing here
    is affinity-conflict or worker-saturation delay. *)
