(** Simulated persistent block store.

    One payload slot per physical VBN.  The store survives a simulated
    crash (the file system drops its volatile state and reloads from
    here); copy-on-write correctness therefore depends on the allocator
    never directing a write at an in-use VBN, which {!write} enforces in
    cooperation with the caller-provided overwrite check.

    Payloads are polymorphic: the file-system layer instantiates ['b]
    with its on-disk block representation. *)

type 'b t

val create : Geometry.t -> 'b t
val geometry : 'b t -> Geometry.t

val set_fault : 'b t -> Fault.t -> unit
(** Attach a fault plan.  The plan travels with the disk image, so latent
    media errors and a failed drive survive a simulated crash. *)

val fault : 'b t -> Fault.t option

val write : 'b t -> Geometry.vbn -> 'b -> unit
(** Store a payload.  Raises [Invalid_argument] on an out-of-range VBN.
    Writing a sector with a latent media error remaps (clears) it. *)

val read : 'b t -> Geometry.vbn -> 'b option
(** Raw store read, bypassing the fault plan: [None] if the block was
    never written.  Fault-aware callers use {!read_checked} or
    {!Raid.read}. *)

val read_checked : 'b t -> Geometry.vbn -> [ `Ok of 'b | `Absent | `Media_error ]
(** Like {!read} but surfaces latent media errors from the fault plan;
    {!Raid.read} reconstructs such blocks from the parity model. *)

val read_exn : 'b t -> Geometry.vbn -> 'b

val writes_total : 'b t -> int
(** Number of block writes since creation (includes rewrites of freed
    blocks in later consistency points). *)
