(** Deterministic fault plan for the storage substrate.

    A fault plan is a seeded schedule of storage failures: latent media
    errors on specific VBNs (discovered when the block is read), transient
    per-I/O failures with a configurable probability (retried by
    {!Raid.submit} with exponential backoff in virtual time), permanent
    write errors on specific VBNs (the CP engine re-allocates the affected
    blocks), whole-disk failure within a RAID group at a virtual time
    (flipping the group into degraded mode and starting a background
    rebuild), and a torn NVRAM tail applied at crash.

    The plan is attached to the {!Disk} ({!Disk.set_fault}), so it is part
    of the persistent image: latent errors, a failed drive and rebuild
    progress all survive a simulated crash, and recovery reads run against
    the same degraded substrate.  All randomness comes from the plan's own
    {!Wafl_util.Rng} stream, so every failure schedule is replayable from
    its seed.

    The plan also accumulates the global fault counters (media errors
    seen, degraded reads served, transient retries, rebuilt blocks);
    {!Raid} bumps them as faults are encountered. *)

type disk_failure = {
  fail_rg : int;
  fail_drive : int;  (** data-drive index within the group *)
  fail_at : float;  (** virtual time the drive dies *)
  mutable tripped : bool;  (** failure noticed by the RAID layer *)
  mutable rebuilt_to : int;  (** DBNs below this are reconstructed on the spare *)
  mutable rebuild_done : bool;
}

type t

val create :
  ?media_errors:int list ->
  ?write_errors:int list ->
  ?transient_p:float ->
  ?max_retries:int ->
  ?torn_tail:int ->
  ?disk_failures:(int * int * float) list ->
  ?crash_at:float ->
  seed:int ->
  unit ->
  t
(** [media_errors]: VBNs with latent unreadable sectors.  [write_errors]:
    VBNs whose writes fail permanently (bad sector discovered at write;
    retries are pointless).  [transient_p] (default 0.0): probability that
    one I/O attempt fails transiently.  [max_retries] (default 6): attempts
    before a transient failure is treated as permanent.  [torn_tail]
    (default 0): NVRAM records torn off the filling half at crash.
    [disk_failures]: [(rg, drive, at)] whole-disk losses.  [crash_at]:
    virtual time the crash harness should crash at (0.0 = none). *)

val random : seed:int -> total_vbns:int -> raid_groups:(int * int) list ->
  drive_blocks:int -> horizon:float -> t
(** Derive a randomized plan from a seed: a crash point inside the
    horizon, and independently chosen media errors {e or} one disk failure
    (never both, so single-parity reconstruction always succeeds), a
    transient-failure probability, and a torn tail.  [raid_groups] is
    [(data_drives, parity_drives)] per group as in {!Geometry.create}. *)

(** {1 Queries (used by [Disk] / [Raid])} *)

val media_error : t -> int -> bool
val clear_media_error : t -> int -> unit
(** Reconstructing a block repairs the sector (re-write remaps it). *)

val write_fails : t -> int -> bool
val transient_now : t -> bool
(** Draw from the plan's RNG: does this I/O attempt fail transiently? *)

val max_retries : t -> int
val torn_tail : t -> int
val crash_at : t -> float
val failure_for : t -> rg:int -> now:float -> disk_failure option
(** The group's disk failure if it is (or should now be) active and not
    yet fully rebuilt; marks it tripped. *)

(** {1 Mutators (tests / examples build plans incrementally)} *)

val add_media_error : t -> int -> unit
val add_write_error : t -> int -> unit
val set_transient_p : t -> float -> unit
val fail_disk : t -> rg:int -> drive:int -> at:float -> unit

(** {1 Counters} *)

val note_media_error : t -> unit
val note_degraded_read : t -> unit
val note_transient_retry : t -> unit
val note_rebuild_block : t -> unit
val note_unrecoverable : t -> unit

val media_errors_seen : t -> int
val degraded_reads : t -> int
val transient_retries : t -> int
val rebuild_blocks : t -> int
val unrecoverable_reads : t -> int
