(** RAID-group write path.

    Tetris I/Os (one per RAID group, paper §IV-E) are submitted here.  The
    group services requests with a configurable queue depth; service time
    models per-block transfer plus a parity-read penalty for every stripe
    that is not written full-width (objective 1 of §IV-D: full-stripe
    writes need no parity reads).  Payloads become durable — visible in
    the {!Disk} — at I/O completion.

    Statistics exposed here (full vs partial stripe counts) back the
    allocation-quality ablation benchmarks.

    Failure surface: when a {!Fault} plan is attached to the disk, I/Os
    can fail transiently (retried with bounded exponential backoff in
    virtual time) or permanently ({!take_failed} hands the affected
    writes to the CP engine for re-allocation); a scheduled whole-disk
    loss flips the group into degraded mode, where {!read} reconstructs
    lost blocks from the parity model while a background rebuild fiber
    (label ["rebuild"]) recreates the drive, its progress and device-busy
    cost observable through {!rebuild_blocks} and {!device_busy}. *)

type 'b t

val create :
  ?queue_depth:int ->
  ?obs:Wafl_obs.Trace.t ->
  ?flash:Wafl_flash.Ftl.t ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  disk:'b Disk.t ->
  rg:int ->
  'b t
(** Spawns [queue_depth] (default 4) service fibers labelled ["io"].
    [obs] (default disabled) records a ["raid io"] span per serviced I/O
    with stripe mix args, plus service-time histogram and I/O counters
    under the ["raid."] metric prefix.  [flash] (default none) attaches an
    FTL media model: durable writes additionally program NAND pages —
    charging program time and GC-induced stalls to the I/O before its
    completion is signalled — and freed blocks should be {!trim}med. *)

val rg : 'b t -> int

val flash : 'b t -> Wafl_flash.Ftl.t option
(** The attached FTL media model, if any. *)

val set_stream_of : 'b t -> ('b -> int) -> unit
(** Install the payload -> flash-write-stream classifier (default: all
    payloads to stream 0).  Only consulted when a flash model is
    attached. *)

val trim : 'b t -> Geometry.vbn -> unit
(** Tell the FTL this block's previous contents are dead (no-op without a
    flash model).  Callable outside fiber context. *)

val read : 'b t -> Geometry.vbn -> [ `Ok of 'b | `Degraded of 'b | `Absent | `Lost ]
(** Fault-aware read path.  [`Degraded] means the payload was
    reconstructed from the parity model (media error or failed drive) —
    the content is intact but the read cost the group a reconstruction.
    [`Lost] is a double failure (media error in a stripe that already
    lost its drive): the data is unrecoverable.  Without a fault plan
    this is exactly {!Disk.read}.  Usable outside fiber context (it
    never charges CPU); every VBN must belong to this group. *)

val submit : 'b t -> writes:(Geometry.vbn * 'b) list -> on_complete:(unit -> unit) -> unit
(** Enqueue one tetris I/O.  Charges the submitting fiber the CPU dispatch
    cost; device service happens asynchronously in virtual time.
    [on_complete] runs in a service-fiber context after the payloads are
    durable — it must only update counters / wake fibers.  Every VBN must
    belong to this RAID group. *)

val quiesce : 'b t -> unit
(** Park until all submitted I/Os have completed. *)

val shutdown : 'b t -> unit
(** Stop the service fibers once the queue drains; used by tests that
    assert no fiber is left parked. *)

val take_failed : 'b t -> (Geometry.vbn * 'b) list
(** Writes that failed permanently (bad sector, or transient retries
    exhausted), in submission order, clearing the list.  The CP engine
    calls this after quiescing and re-allocates the affected blocks
    before publishing the superblock. *)

val degraded : 'b t -> bool
(** A drive of this group is lost and not yet fully rebuilt. *)

val ios_completed : 'b t -> int
val blocks_written : 'b t -> int
val full_stripes : 'b t -> int
val partial_stripes : 'b t -> int
val device_busy : 'b t -> float
(** Total device service time consumed, in virtual µs (includes retry
    backoff and rebuild work). *)

val transient_retries : 'b t -> int
val degraded_reads : 'b t -> int
val rebuild_blocks : 'b t -> int
