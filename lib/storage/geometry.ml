type vbn = int
type location = { rg : int; drive : int; dbn : int }

type group = { data : int; parity : int; first_drive : int (* global data-drive index *) }

type t = {
  drive_blocks : int;
  drive_shift : int; (* log2 drive_blocks when a power of two, else -1 *)
  aa_stripes : int;
  groups : group array;
  drives_total : int;
}

let create ?(drive_blocks = 65536) ?(aa_stripes = 1024) ~raid_groups () =
  if raid_groups = [] then invalid_arg "Geometry.create: no RAID groups";
  if drive_blocks <= 0 || aa_stripes <= 0 || drive_blocks mod aa_stripes <> 0 then
    invalid_arg "Geometry.create: drive_blocks must be a positive multiple of aa_stripes";
  let next = ref 0 in
  let groups =
    raid_groups
    |> List.map (fun (data, parity) ->
           if data <= 0 || parity < 0 then
             invalid_arg "Geometry.create: bad drive counts";
           let g = { data; parity; first_drive = !next } in
           next := !next + data;
           g)
    |> Array.of_list
  in
  let drive_shift =
    if drive_blocks land (drive_blocks - 1) = 0 then
      let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
      log2 drive_blocks 0
    else -1
  in
  { drive_blocks; drive_shift; aa_stripes; groups; drives_total = !next }

let drives_total t = t.drives_total
let total_data_blocks t = t.drives_total * t.drive_blocks
let raid_group_count t = Array.length t.groups

let group t rg =
  if rg < 0 || rg >= Array.length t.groups then invalid_arg "Geometry: bad RAID group";
  t.groups.(rg)

let data_drives t ~rg = (group t rg).data
let parity_drives t ~rg = (group t rg).parity
let drive_blocks t = t.drive_blocks
let aa_stripes t = t.aa_stripes
let aa_count t = t.drive_blocks / t.aa_stripes

let drive_base t ~rg ~drive =
  let g = group t rg in
  if drive < 0 || drive >= g.data then invalid_arg "Geometry: bad drive";
  (g.first_drive + drive) * t.drive_blocks

let vbn_of t ~rg ~drive ~dbn =
  if dbn < 0 || dbn >= t.drive_blocks then invalid_arg "Geometry: bad dbn";
  drive_base t ~rg ~drive + dbn

let vbn_valid t v = v >= 0 && v < total_data_blocks t

let locate t v =
  if not (vbn_valid t v) then invalid_arg "Geometry.locate: bad vbn";
  let global_drive, dbn =
    if t.drive_shift >= 0 then (v lsr t.drive_shift, v land (t.drive_blocks - 1))
    else (v / t.drive_blocks, v mod t.drive_blocks)
  in
  (* RAID groups are few (typically 1-4); a linear scan is clear and fast. *)
  let rec find rg =
    let g = t.groups.(rg) in
    if global_drive < g.first_drive + g.data then
      { rg; drive = global_drive - g.first_drive; dbn }
    else find (rg + 1)
  in
  find 0

let aa_of_dbn t dbn =
  if dbn < 0 || dbn >= t.drive_blocks then invalid_arg "Geometry.aa_of_dbn: bad dbn";
  dbn / t.aa_stripes

let aa_dbn_range t ~aa =
  if aa < 0 || aa >= aa_count t then invalid_arg "Geometry.aa_dbn_range: bad aa";
  (aa * t.aa_stripes, ((aa + 1) * t.aa_stripes) - 1)

let drives_of_rg t ~rg =
  let g = group t rg in
  List.init g.data (fun d -> (d, drive_base t ~rg ~drive:d))
