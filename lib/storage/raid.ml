open Wafl_sim

type 'b request =
  | Io of {
      writes : (Geometry.vbn * 'b) list;
      on_complete : unit -> unit;
      submitted_at : float;
      h : Wafl_obs.Causal.handoff; (* submitter's causal context *)
    }
  | Stop

type 'b t = {
  eng : Engine.t;
  cost : Cost.t;
  disk : 'b Disk.t;
  rg : int;
  flash : Wafl_flash.Ftl.t option; (* FTL media model, None = flat slab *)
  mutable stream_of : 'b -> int; (* payload -> flash write stream *)
  obs : Wafl_obs.Trace.t;
  obs_on : bool; (* Trace.enabled obs, hoisted off the hot path *)
  causal_on : bool; (* Causal.enabled obs, hoisted likewise *)
  m_service : Wafl_obs.Metrics.histo;
  m_wait : Wafl_obs.Metrics.histo;
  m_ios : Wafl_obs.Metrics.counter;
  m_blocks : Wafl_obs.Metrics.counter;
  data_width : int;
  queue_depth : int;
  queue : 'b request Sync.Channel.t;
  done_q : Sync.Waitq.t;
  mutable outstanding : int;
  mutable ios : int;
  mutable blocks : int;
  mutable full : int;
  mutable partial : int;
  mutable busy : float;
  (* fault surface *)
  mutable degraded : bool;
  mutable rebuild_spawned : bool;
  mutable failed_writes : (Geometry.vbn * 'b) list; (* newest first *)
  mutable retries : int;
  mutable degraded_reads_served : int;
  mutable rebuilt : int;
}

(* Count full vs partial stripes in one I/O: a stripe (distinct dbn) is
   full when every data drive of the group contributes a block. *)
let stripe_mix t writes =
  let per_dbn = Hashtbl.create 64 in
  List.iter
    (fun (vbn, _) ->
      let loc = Geometry.locate (Disk.geometry t.disk) vbn in
      if loc.Geometry.rg <> t.rg then invalid_arg "Raid.submit: vbn not in this group";
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_dbn loc.Geometry.dbn) in
      Hashtbl.replace per_dbn loc.Geometry.dbn (cur + 1))
    writes;
  (* Counting full/partial stripes commutes over the visit order. lint-ok *)
  Hashtbl.fold
    (fun _ n (full, partial) -> if n >= t.data_width then (full + 1, partial) else (full, partial + 1))
    per_dbn (0, 0)

(* Reconstruct the lost drive onto a spare, one stripe block at a time.
   Progress lives in the fault plan (it survives a crash; a re-created
   group resumes where the old fiber stopped), and the device-busy cost
   is charged to this group. *)
let rebuild_fiber t fault (failure : Fault.disk_failure) () =
  let nblocks = Geometry.drive_blocks (Disk.geometry t.disk) in
  while failure.Fault.rebuilt_to < nblocks do
    Engine.sleep t.cost.Cost.rebuild_block;
    (* rebuild progress lives in the shared fault plan, also read by the
       service fiber and the crash harness *)
    Engine.probe_atomic t.eng ~shared:"raid.fault";
    t.busy <- t.busy +. t.cost.Cost.rebuild_block;
    failure.Fault.rebuilt_to <- failure.Fault.rebuilt_to + 1;
    t.rebuilt <- t.rebuilt + 1;
    Fault.note_rebuild_block fault
  done;
  failure.Fault.rebuild_done <- true;
  t.degraded <- false

let active_failure t =
  match Disk.fault t.disk with
  | None -> None
  | Some f -> Fault.failure_for f ~rg:t.rg ~now:(Engine.now t.eng)

(* Notice a scheduled disk failure: flip into degraded mode and start the
   background rebuild (resuming a pre-crash rebuild when recovering). *)
let check_failure t =
  if not (t.degraded && t.rebuild_spawned) then
    match active_failure t with
    | None -> ()
    | Some failure ->
        t.degraded <- true;
        if not t.rebuild_spawned then begin
          t.rebuild_spawned <- true;
          let fault = Option.get (Disk.fault t.disk) in
          ignore (Engine.spawn t.eng ~label:"rebuild" (rebuild_fiber t fault failure))
        end

let service_fiber t () =
  let rec loop () =
    match Sync.Channel.recv t.queue with
    | Stop -> ()
    | Io { writes; on_complete; submitted_at; h } ->
        (* The service fiber picks up the request: the submitter's causal
           context becomes this fiber's, so the I/O span (and the queue
           wait it reveals) attribute to the submitting CP. *)
        Wafl_obs.Causal.restore t.obs ~kind:"raid" h;
        let wait = Engine.now t.eng -. submitted_at in
        if t.obs_on then Wafl_obs.Metrics.observe t.m_wait wait;
        check_failure t;
        (* the device block map and the fault plan's bookkeeping are
           touched from this service fiber, client read paths and the
           crash harness; the real device serializes them *)
        Engine.probe_atomic t.eng ~shared:"disk.blocks";
        Engine.probe_atomic t.eng ~shared:"raid.fault";
        let fault = Disk.fault t.disk in
        (* Transient failures: bounded exponential backoff in virtual
           time, so retry latency shows up in CP duration. *)
        let outcome =
          match fault with
          | None -> `Proceed
          | Some f ->
              let rec attempt n backoff =
                if not (Fault.transient_now f) then `Proceed
                else if n >= Fault.max_retries f then `Give_up
                else begin
                  Fault.note_transient_retry f;
                  t.retries <- t.retries + 1;
                  Engine.sleep backoff;
                  t.busy <- t.busy +. backoff;
                  attempt (n + 1) (backoff *. 2.0)
                end
              in
              attempt 0 t.cost.Cost.transient_retry_backoff
        in
        let full, partial = stripe_mix t writes in
        let nblocks = List.length writes in
        let service =
          t.cost.Cost.device_base_latency
          +. (float_of_int nblocks *. t.cost.Cost.device_write_per_block)
          +. (float_of_int partial *. t.cost.Cost.parity_read_penalty)
        in
        let t0 = Engine.now t.eng in
        Engine.sleep service;
        Wafl_obs.Metrics.observe t.m_service service;
        Wafl_obs.Metrics.incr t.m_ios;
        Wafl_obs.Metrics.add t.m_blocks nblocks;
        if t.obs_on then
          Wafl_obs.Trace.complete t.obs ~cat:"raid" ~name:"raid io" ~ts:t0 ~dur:service
            ~num_args:
              (let base =
                 [
                   ("rg", float_of_int t.rg);
                   ("blocks", float_of_int nblocks);
                   ("full_stripes", float_of_int full);
                   ("partial_stripes", float_of_int partial);
                 ]
               in
               if t.causal_on then ("wait_us", wait) :: base else base)
            ();
        let failed, ok =
          match outcome with
          | `Give_up -> (writes, []) (* retries exhausted: nothing became durable *)
          | `Proceed ->
              List.partition
                (fun (vbn, _) ->
                  match fault with Some f when Fault.write_fails f vbn -> true | _ -> false)
                writes
        in
        List.iter (fun (vbn, payload) -> Disk.write t.disk vbn payload) ok;
        (* With a flash model attached, the durable writes also program
           NAND pages: this charges program time and any GC-induced stall
           before on_complete, so media push-back shows up in CP write
           latency. *)
        (match t.flash with
        | None -> ()
        | Some ftl ->
            let geom = Disk.geometry t.disk in
            let db = Geometry.drive_blocks geom in
            Wafl_flash.Ftl.host_write ftl
              (List.map
                 (fun (vbn, payload) ->
                   let loc = Geometry.locate geom vbn in
                   ((loc.Geometry.drive * db) + loc.Geometry.dbn, t.stream_of payload))
                 ok));
        if failed <> [] then t.failed_writes <- List.rev_append failed t.failed_writes;
        t.ios <- t.ios + 1;
        t.blocks <- t.blocks + nblocks;
        t.full <- t.full + full;
        t.partial <- t.partial + partial;
        t.busy <- t.busy +. service;
        on_complete ();
        (* Service fibers are reused across unrelated requests: deactivate
           this request's causal context before dequeuing the next. *)
        if t.obs_on then Wafl_obs.Causal.fiber_reset t.obs;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then ignore (Sync.Waitq.wake_all t.done_q);
        loop ()
  in
  loop ()

let create ?(queue_depth = 4) ?(obs = Wafl_obs.Trace.disabled) ?flash eng ~cost ~disk ~rg =
  if queue_depth <= 0 then invalid_arg "Raid.create: queue_depth must be positive";
  let m = Wafl_obs.Trace.metrics obs in
  let t =
    {
      eng;
      cost;
      disk;
      rg;
      flash;
      stream_of = (fun _ -> 0);
      obs;
      obs_on = Wafl_obs.Trace.enabled obs;
      causal_on = Wafl_obs.Causal.enabled obs;
      m_service = Wafl_obs.Metrics.histogram m "raid.io_service_us";
      m_wait = Wafl_obs.Metrics.histogram m "raid.io_wait_us";
      m_ios = Wafl_obs.Metrics.counter m "raid.ios";
      m_blocks = Wafl_obs.Metrics.counter m "raid.blocks";
      data_width = Geometry.data_drives (Disk.geometry disk) ~rg;
      queue_depth;
      queue = Sync.Channel.create eng;
      done_q = Sync.Waitq.create eng;
      outstanding = 0;
      ios = 0;
      blocks = 0;
      full = 0;
      partial = 0;
      busy = 0.0;
      degraded = false;
      rebuild_spawned = false;
      failed_writes = [];
      retries = 0;
      degraded_reads_served = 0;
      rebuilt = 0;
    }
  in
  for _ = 1 to queue_depth do
    ignore (Engine.spawn eng ~label:"io" (service_fiber t))
  done;
  (* A drive lost before a crash is still lost after recovery: resume the
     degraded mode and rebuild immediately. *)
  check_failure t;
  t

let rg t = t.rg
let flash t = t.flash
let set_stream_of t f = t.stream_of <- f

(* FTL logical page number of a VBN: RG-local, one page per data block. *)
let lpn_of t vbn =
  let geom = Disk.geometry t.disk in
  let loc = Geometry.locate geom vbn in
  (loc.Geometry.drive * Geometry.drive_blocks geom) + loc.Geometry.dbn

let trim t vbn =
  match t.flash with
  | None -> ()
  | Some ftl -> Wafl_flash.Ftl.trim ftl ~lpn:(lpn_of t vbn)

let read t vbn =
  let geom = Disk.geometry t.disk in
  let loc = Geometry.locate geom vbn in
  if loc.Geometry.rg <> t.rg then invalid_arg "Raid.read: vbn not in this group";
  check_failure t;
  match Disk.fault t.disk with
  | None -> ( match Disk.read t.disk vbn with Some p -> `Ok p | None -> `Absent)
  | Some fault -> (
      let failure =
        if t.degraded then Fault.failure_for fault ~rg:t.rg ~now:(Engine.now t.eng) else None
      in
      let on_failed_drive =
        match failure with
        | Some f ->
            f.Fault.fail_drive = loc.Geometry.drive && loc.Geometry.dbn >= f.Fault.rebuilt_to
        | None -> false
      in
      if on_failed_drive then begin
        (* Reconstruct from the surviving drives of the stripe; a latent
           media error on any of them makes the stripe unrecoverable. *)
        let peers_clean =
          List.for_all
            (fun (drive, _) ->
              drive = loc.Geometry.drive
              || not
                   (Fault.media_error fault
                      (Geometry.vbn_of geom ~rg:t.rg ~drive ~dbn:loc.Geometry.dbn)))
            (Geometry.drives_of_rg geom ~rg:t.rg)
        in
        if not peers_clean then begin
          Fault.note_unrecoverable fault;
          `Lost
        end
        else begin
          Fault.note_degraded_read fault;
          t.degraded_reads_served <- t.degraded_reads_served + 1;
          match Disk.read t.disk vbn with Some p -> `Degraded p | None -> `Absent
        end
      end
      else
        match Disk.read_checked t.disk vbn with
        | `Ok p -> `Ok p
        | `Absent -> `Absent
        | `Media_error ->
            (* Reconstruction needs every other drive of the stripe — in
               degraded mode the failed drive's copy is gone too. *)
            let failed_peer_needed =
              match failure with
              | Some f ->
                  f.Fault.fail_drive <> loc.Geometry.drive
                  && loc.Geometry.dbn >= f.Fault.rebuilt_to
              | None -> false
            in
            if failed_peer_needed then begin
              Fault.note_unrecoverable fault;
              `Lost
            end
            else begin
              Fault.note_media_error fault;
              Fault.note_degraded_read fault;
              t.degraded_reads_served <- t.degraded_reads_served + 1;
              (* The reconstructed block is rewritten, repairing the sector. *)
              Fault.clear_media_error fault vbn;
              match Disk.read t.disk vbn with Some p -> `Degraded p | None -> `Absent
            end)

let submit t ~writes ~on_complete =
  if writes = [] then on_complete ()
  else begin
    Engine.consume t.cost.Cost.raid_io_dispatch;
    t.outstanding <- t.outstanding + 1;
    Sync.Channel.send t.queue
      (Io
         {
           writes;
           on_complete;
           submitted_at = Engine.now t.eng;
           h = Wafl_obs.Causal.capture t.obs ~kind:"raid";
         })
  end

let quiesce t =
  while t.outstanding > 0 do
    Sync.Waitq.wait t.done_q
  done

let shutdown t =
  (* One Stop per service fiber; the queue is FIFO so all pending I/Os
     complete before the fibers exit. *)
  for _ = 1 to t.queue_depth do
    Sync.Channel.send t.queue Stop
  done

let take_failed t =
  let failed = t.failed_writes in
  t.failed_writes <- [];
  List.rev failed

let degraded t = t.degraded
let ios_completed t = t.ios
let blocks_written t = t.blocks
let full_stripes t = t.full
let partial_stripes t = t.partial
let device_busy t = t.busy
let transient_retries t = t.retries
let degraded_reads t = t.degraded_reads_served
let rebuild_blocks t = t.rebuilt
