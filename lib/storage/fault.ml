type disk_failure = {
  fail_rg : int;
  fail_drive : int;
  fail_at : float;
  mutable tripped : bool;
  mutable rebuilt_to : int;
  mutable rebuild_done : bool;
}

type t = {
  rng : Wafl_util.Rng.t;
  media : (int, unit) Hashtbl.t;
  write_errs : (int, unit) Hashtbl.t;
  mutable transient_p : float;
  max_retries : int;
  torn_tail : int;
  mutable failures : disk_failure list;
  crash_at : float;
  (* counters *)
  mutable n_media : int;
  mutable n_degraded : int;
  mutable n_retries : int;
  mutable n_rebuilt : int;
  mutable n_unrecoverable : int;
}

let create ?(media_errors = []) ?(write_errors = []) ?(transient_p = 0.0) ?(max_retries = 6)
    ?(torn_tail = 0) ?(disk_failures = []) ?(crash_at = 0.0) ~seed () =
  if transient_p < 0.0 || transient_p >= 1.0 then
    invalid_arg "Fault.create: transient_p must be in [0, 1)";
  if max_retries < 0 then invalid_arg "Fault.create: negative max_retries";
  if torn_tail < 0 then invalid_arg "Fault.create: negative torn_tail";
  let media = Hashtbl.create 16 and write_errs = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace media v ()) media_errors;
  List.iter (fun v -> Hashtbl.replace write_errs v ()) write_errors;
  {
    rng = Wafl_util.Rng.create ~seed;
    media;
    write_errs;
    transient_p;
    max_retries;
    torn_tail;
    failures =
      List.map
        (fun (rg, drive, at) ->
          { fail_rg = rg; fail_drive = drive; fail_at = at; tripped = false; rebuilt_to = 0;
            rebuild_done = false })
        disk_failures;
    crash_at;
    n_media = 0;
    n_degraded = 0;
    n_retries = 0;
    n_rebuilt = 0;
    n_unrecoverable = 0;
  }

(* A seeded plan: crash point in the back 70% of the horizon; then either
   a handful of latent media errors or one whole-disk failure (never both,
   so single-parity reconstruction always has enough surviving drives),
   plus independent transient-failure, write-error and torn-tail choices. *)
let random ~seed ~total_vbns ~raid_groups ~drive_blocks ~horizon =
  ignore drive_blocks;
  let r = Wafl_util.Rng.create ~seed in
  let crash_at = (0.3 +. Wafl_util.Rng.float r 0.7) *. horizon in
  let mode = Wafl_util.Rng.int r 10 in
  let media_errors =
    if mode < 3 then List.init (4 + Wafl_util.Rng.int r 12) (fun _ -> Wafl_util.Rng.int r total_vbns)
    else []
  in
  let disk_failures =
    if mode >= 3 && mode < 6 then begin
      let rg = Wafl_util.Rng.int r (List.length raid_groups) in
      let data, _ = List.nth raid_groups rg in
      let drive = Wafl_util.Rng.int r data in
      [ (rg, drive, Wafl_util.Rng.float r crash_at) ]
    end
    else []
  in
  let transient_p = if Wafl_util.Rng.bool r then 0.0 else 0.01 +. Wafl_util.Rng.float r 0.06 in
  let write_errors =
    if Wafl_util.Rng.int r 4 = 0 then
      List.init (1 + Wafl_util.Rng.int r 3) (fun _ -> Wafl_util.Rng.int r total_vbns)
    else []
  in
  let torn_tail = Wafl_util.Rng.int r 4 in
  create ~media_errors ~write_errors ~transient_p ~torn_tail ~disk_failures ~crash_at
    ~seed:(seed lxor 0x5bd1e995) ()

let media_error t vbn = Hashtbl.mem t.media vbn
let clear_media_error t vbn = Hashtbl.remove t.media vbn
let write_fails t vbn = Hashtbl.mem t.write_errs vbn

let transient_now t =
  t.transient_p > 0.0 && Wafl_util.Rng.float t.rng 1.0 < t.transient_p

let max_retries t = t.max_retries
let torn_tail t = t.torn_tail
let crash_at t = t.crash_at

let failure_for t ~rg ~now =
  List.find_opt
    (fun f ->
      f.fail_rg = rg && (not f.rebuild_done) && (f.tripped || f.fail_at <= now))
    t.failures
  |> Option.map (fun f ->
         f.tripped <- true;
         f)

let add_media_error t vbn = Hashtbl.replace t.media vbn ()
let add_write_error t vbn = Hashtbl.replace t.write_errs vbn ()

let set_transient_p t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Fault.set_transient_p: must be in [0, 1)";
  t.transient_p <- p

let fail_disk t ~rg ~drive ~at =
  t.failures <-
    { fail_rg = rg; fail_drive = drive; fail_at = at; tripped = false; rebuilt_to = 0;
      rebuild_done = false }
    :: t.failures

let note_media_error t = t.n_media <- t.n_media + 1
let note_degraded_read t = t.n_degraded <- t.n_degraded + 1
let note_transient_retry t = t.n_retries <- t.n_retries + 1
let note_rebuild_block t = t.n_rebuilt <- t.n_rebuilt + 1
let note_unrecoverable t = t.n_unrecoverable <- t.n_unrecoverable + 1

let media_errors_seen t = t.n_media
let degraded_reads t = t.n_degraded
let transient_retries t = t.n_retries
let rebuild_blocks t = t.n_rebuilt
let unrecoverable_reads t = t.n_unrecoverable
