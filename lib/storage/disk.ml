type 'b t = {
  geometry : Geometry.t;
  blocks : 'b option array;
  mutable writes : int;
  mutable fault : Fault.t option;
}

let create geometry =
  { geometry; blocks = Array.make (Geometry.total_data_blocks geometry) None; writes = 0;
    fault = None }

let geometry t = t.geometry
let set_fault t f = t.fault <- Some f
let fault t = t.fault

let check t vbn =
  if not (Geometry.vbn_valid t.geometry vbn) then
    invalid_arg (Printf.sprintf "Disk: vbn %d out of range" vbn)

let write t vbn payload =
  check t vbn;
  t.blocks.(vbn) <- Some payload;
  (* A write remaps the sector, clearing any latent media error. *)
  (match t.fault with Some f when Fault.media_error f vbn -> Fault.clear_media_error f vbn | _ -> ());
  t.writes <- t.writes + 1

let read t vbn =
  check t vbn;
  t.blocks.(vbn)

let read_checked t vbn =
  check t vbn;
  match t.fault with
  | Some f when Fault.media_error f vbn -> `Media_error
  | _ -> ( match t.blocks.(vbn) with Some p -> `Ok p | None -> `Absent)

let read_exn t vbn =
  match read t vbn with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Disk.read_exn: vbn %d never written" vbn)

let writes_total t = t.writes
