(** Typed metrics registry: counters, gauges and virtual-time histograms.

    Components register instruments once at construction time (a name
    lookup) and update them on the hot path with a single field mutation.
    The tracer ({!Trace}) periodically samples every counter and gauge
    into the trace sink as a Chrome counter-event timeseries; read-side
    iteration is always name-sorted, so nothing depends on hash order. *)

type t
type counter
type gauge
type histo

val create : unit -> t

val default : t
(** A process-wide registry for values that accumulate across runs —
    the bench harness reads per-figure virtual-time totals from here. *)

(** {1 Registration (find-or-create by name)} *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge

val histogram : ?lo:float -> ?hi:float -> t -> string -> histo
(** Log-bucketed histogram of virtual-time values (default range
    0.01..1e9 virtual microseconds). *)

(** {1 Hot-path updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val addf : counter -> float -> unit
val set : gauge -> float -> unit
val observe : histo -> float -> unit

(** {1 Reading (deterministic: missing names read as 0 / [None])} *)

val counter_value : t -> string -> float
val gauge_value : t -> string -> float
val histo : t -> string -> Wafl_util.Histogram.t option

val counters : t -> (string * float) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Wafl_util.Histogram.t) list

val clear : t -> unit
