(* Span/event tracer in virtual time.

   A [t] is either disabled — the shared [disabled] value, where every
   operation is a single branch and the instrumented code path is
   bit-identical to an uninstrumented build — or attached to an engine,
   in which case spans, instants and metric samples are recorded into a
   bounded ring sink ({!Sink}) and exported as Chrome trace-event JSON
   (loadable in Perfetto / chrome://tracing).

   All timestamps are the engine's virtual clock, and recording performs
   no allocation of virtual time and no scheduling, so an enabled run
   still produces results bit-identical to a disabled one; because every
   input of the recording is deterministic, two runs with the same seed
   export byte-identical traces.

   The tracer also owns the virtual-CPU profile: an engine hook
   attributes every [Engine.consume] charge to the charging fiber's
   current span stack, yielding a top-N table of where simulated CPU
   actually went. *)

module Engine = Wafl_sim.Engine

type frame = { f_cat : string; f_name : string; f_ts : float }
type prof_cell = { mutable p_total : float; mutable p_count : int }

type enabled = {
  eng : Engine.t;
  record : bool;
      (* false for a metrics-only tracer ({!metrics_only}): instruments
         stay live (registered and updated by components), but span /
         instant / flow recording and the CPU profile are skipped, so an
         always-on telemetry attachment costs only the metric updates. *)
  sink : Sink.t;
  metrics : Metrics.t;
  stacks : (int, frame list ref) Hashtbl.t; (* span stack per fiber id *)
  names : (int, string) Hashtbl.t; (* last-seen accounting label per fiber *)
  profile : (string, prof_cell) Hashtbl.t;
  mutable profile_order : string list; (* first-appearance, newest first *)
  sample_interval : float; (* 0.0 disables the metrics timeseries *)
  mutable next_sample : float;
  (* Causal mode (see Causal / DESIGN.md §4.10): explicit request-context
     propagation across asynchronous handoffs, recorded as flow events. *)
  causal : bool;
  ctxs : (int, int) Hashtbl.t; (* fiber id -> active causal context; absent = none *)
  mutable next_ctx : int;
  mutable next_flow : int;
}

type t = { state : enabled option }

let disabled = { state = None }
let enabled t = t.state <> None

(* Writes to this registry are lost by design: disabled instrumentation
   that registers instruments anyway lands here.  One registry per
   domain (not one per process): concurrent untraced runs on worker
   domains (Wafl_util.Pool) would otherwise race on the registry's
   hash tables. *)
let null_metrics_key : Metrics.t Domain.DLS.key = Domain.DLS.new_key Metrics.create
let metrics t = match t.state with Some s -> s.metrics | None -> Domain.DLS.get null_metrics_key
let engine t = Option.map (fun s -> s.eng) t.state

(* --- metric sampling ----------------------------------------------------- *)

let sample s ~now =
  let put (name, v) =
    Sink.record s.sink
      {
        ph = 'C';
        cat = "metrics";
        name;
        ts = now;
        dur = v;
        tid = 0;
        flow = 0;
        args = [];
        num_args = [];
      }
  in
  List.iter put (Metrics.counters s.metrics);
  List.iter put (Metrics.gauges s.metrics)

(* Piggybacks on trace-recording and engine-hook call sites rather than a
   dedicated fiber: a sampler fiber would occupy cores and perturb FIFO
   ordering, breaking the off-vs-on bit-identity guarantee. *)
let maybe_sample s ~now =
  if s.sample_interval > 0.0 && now >= s.next_sample then begin
    sample s ~now;
    s.next_sample <- now +. s.sample_interval
  end

(* --- span stacks and the CPU profile ------------------------------------- *)

let stack_of s fid =
  match Hashtbl.find_opt s.stacks fid with
  | Some st -> st
  | None ->
      let st = ref [] in
      Hashtbl.add s.stacks fid st;
      st

let profile_charge s ~fid ~label ~amount =
  let key =
    match Hashtbl.find_opt s.stacks fid with
    | Some { contents = frames } when frames <> [] ->
        String.concat "/" (List.rev_map (fun f -> f.f_name) frames)
    | _ -> "fiber:" ^ label
  in
  match Hashtbl.find_opt s.profile key with
  | Some cell ->
      cell.p_total <- cell.p_total +. amount;
      cell.p_count <- cell.p_count + 1
  | None ->
      Hashtbl.add s.profile key { p_total = amount; p_count = 1 };
      s.profile_order <- key :: s.profile_order

(* --- causal context propagation (the low-level half of Causal) ----------- *)

let ctx_of s fid = match Hashtbl.find_opt s.ctxs fid with Some c -> c | None -> 0
let set_ctx s fid c = if c = 0 then Hashtbl.remove s.ctxs fid else Hashtbl.replace s.ctxs fid c

(* One half of a causal edge.  's' marks the handoff source, 'f' the
   destination; the shared [flow] id pairs them (Perfetto draws the
   arrow, the analyzer walks it). *)
let record_flow s ~ph ~name ~tid ~flow ~now =
  Sink.record s.sink
    { ph; cat = "flow"; name; ts = now; dur = 0.0; tid; flow; args = []; num_args = [] }

type handoff = { h_ctx : int; h_flow : int }

let no_handoff = { h_ctx = 0; h_flow = 0 }

let capture t ~kind =
  match t.state with
  | Some s when s.causal ->
      let fid = Engine.current_fid s.eng in
      let flow = s.next_flow in
      s.next_flow <- flow + 1;
      record_flow s ~ph:'s' ~name:kind ~tid:fid ~flow ~now:(Engine.now s.eng);
      { h_ctx = ctx_of s fid; h_flow = flow }
  | _ -> no_handoff

let restore t ~kind h =
  if h != no_handoff then
    match t.state with
    | Some s when s.causal ->
        let fid = Engine.current_fid s.eng in
        record_flow s ~ph:'f' ~name:kind ~tid:fid ~flow:h.h_flow ~now:(Engine.now s.eng);
        set_ctx s fid h.h_ctx
    | _ -> ()

let with_root t f =
  match t.state with
  | Some s when s.causal ->
      let fid = Engine.current_fid s.eng in
      let prev = ctx_of s fid in
      let c = s.next_ctx in
      s.next_ctx <- c + 1;
      set_ctx s fid c;
      Fun.protect ~finally:(fun () -> set_ctx s fid prev) f
  | _ -> f ()

let current_ctx t =
  match t.state with
  | Some s when s.causal -> ctx_of s (Engine.current_fid s.eng)
  | _ -> 0

(* Pooled worker fibers call this between messages: whatever the previous
   message left behind — an unclosed span, an active causal context —
   must not leak into the next, unrelated message (see DESIGN.md §4.10). *)
let fiber_reset t =
  match t.state with
  | None -> ()
  | Some s ->
      let fid = Engine.current_fid s.eng in
      (match Hashtbl.find_opt s.stacks fid with Some st -> st := [] | None -> ());
      if s.causal then Hashtbl.remove s.ctxs fid

(* In causal mode every recorded span carries its fiber's active context
   as a numeric arg, which is how the analyzer groups spans per request. *)
let span_num_args s ~fid num_args =
  if s.causal then
    match ctx_of s fid with 0 -> num_args | c -> ("ctx", float_of_int c) :: num_args
  else num_args

let causal t = match t.state with Some s -> s.causal | None -> false

let create ?ring_capacity ?(sample_interval = 10_000.0) ?(causal = false) eng =
  (* Causal mode records two flow events per handoff on top of the spans,
     so its default ring is deep enough for the smoke figures to export
     with zero drops. *)
  let ring_capacity =
    match ring_capacity with Some c -> c | None -> if causal then 1 lsl 22 else 262_144
  in
  let s =
    {
      eng;
      record = true;
      sink = Sink.create ~capacity:ring_capacity;
      metrics = Metrics.create ();
      stacks = Hashtbl.create 64;
      names = Hashtbl.create 64;
      profile = Hashtbl.create 64;
      profile_order = [];
      sample_interval;
      next_sample = Engine.now eng +. sample_interval;
      causal;
      ctxs = Hashtbl.create 64;
      next_ctx = 1;
      next_flow = 1;
    }
  in
  Engine.set_obs_hooks eng
    {
      Engine.on_consume =
        (fun ~fid ~label ~amount ~now ->
          profile_charge s ~fid ~label ~amount;
          maybe_sample s ~now);
      on_switch =
        (fun ~fid ~label ~now ->
          Hashtbl.replace s.names fid label;
          maybe_sample s ~now);
      on_wake =
        (if causal then fun ~waker ~wakee ~now ->
           (* A blocked fiber resumes its own context; the edge is what
              the critical-path walk follows from wakee back to waker. *)
           let flow = s.next_flow in
           s.next_flow <- flow + 1;
           record_flow s ~ph:'s' ~name:"wake" ~tid:waker ~flow ~now;
           record_flow s ~ph:'f' ~name:"wake" ~tid:wakee ~flow ~now
         else fun ~waker:_ ~wakee:_ ~now:_ -> ());
      on_spawn =
        (if causal then fun ~parent ~child ~now ->
           let flow = s.next_flow in
           s.next_flow <- flow + 1;
           record_flow s ~ph:'s' ~name:"spawn" ~tid:parent ~flow ~now;
           record_flow s ~ph:'f' ~name:"spawn" ~tid:child ~flow ~now;
           set_ctx s child (ctx_of s parent)
         else fun ~parent:_ ~child:_ ~now:_ -> ());
    };
  { state = Some s }

(* Always-on telemetry attachment: [enabled] is true — so every
   component's instruments register in a live registry and update on the
   hot path — but nothing is recorded into the ring, no engine hooks are
   installed, and the CPU profile stays empty.  Rollups pull the live
   registry; the host cost is just the metric updates. *)
let metrics_only eng =
  {
    state =
      Some
        {
          eng;
          record = false;
          sink = Sink.create ~capacity:1;
          metrics = Metrics.create ();
          stacks = Hashtbl.create 1;
          names = Hashtbl.create 1;
          profile = Hashtbl.create 1;
          profile_order = [];
          sample_interval = 0.0;
          next_sample = 0.0;
          causal = false;
          ctxs = Hashtbl.create 1;
          next_ctx = 1;
          next_flow = 1;
        };
  }

(* --- recording ----------------------------------------------------------- *)

let with_span t ~cat ~name ?(args = []) ?(num_args = []) f =
  match t.state with
  | None -> f ()
  | Some s when not s.record -> f ()
  | Some s ->
      let fid = Engine.current_fid s.eng in
      let ts = Engine.now s.eng in
      let stack = stack_of s fid in
      stack := { f_cat = cat; f_name = name; f_ts = ts } :: !stack;
      let finish () =
        (match !stack with [] -> () | _ :: rest -> stack := rest);
        let now = Engine.now s.eng in
        Sink.record s.sink
          {
            ph = 'X';
            cat;
            name;
            ts;
            dur = now -. ts;
            tid = fid;
            flow = 0;
            args;
            num_args = span_num_args s ~fid num_args;
          };
        maybe_sample s ~now
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception exn ->
          finish ();
          raise exn)

(* Non-lexical span pair for callers whose open and close sites are in
   different scopes.  [end_span] with an empty stack is a no-op, so an
   unmatched begin is survivable (and cleaned up by {!fiber_reset}). *)
let begin_span t ~cat ~name =
  match t.state with
  | None -> ()
  | Some s when not s.record -> ()
  | Some s ->
      let fid = Engine.current_fid s.eng in
      let stack = stack_of s fid in
      stack := { f_cat = cat; f_name = name; f_ts = Engine.now s.eng } :: !stack

let end_span t =
  match t.state with
  | None -> ()
  | Some s when not s.record -> ()
  | Some s -> (
      let fid = Engine.current_fid s.eng in
      match Hashtbl.find_opt s.stacks fid with
      | Some ({ contents = fr :: rest } as stack) ->
          stack := rest;
          let now = Engine.now s.eng in
          Sink.record s.sink
            {
              ph = 'X';
              cat = fr.f_cat;
              name = fr.f_name;
              ts = fr.f_ts;
              dur = now -. fr.f_ts;
              tid = fid;
              flow = 0;
              args = [];
              num_args = span_num_args s ~fid [];
            };
          maybe_sample s ~now
      | _ -> ())

let instant t ~cat ~name ?(args = []) () =
  match t.state with
  | None -> ()
  | Some s when not s.record -> ()
  | Some s ->
      let now = Engine.now s.eng in
      Sink.record s.sink
        {
          ph = 'i';
          cat;
          name;
          ts = now;
          dur = 0.0;
          tid = Engine.current_fid s.eng;
          flow = 0;
          args;
          num_args = [];
        };
      maybe_sample s ~now

(* Non-lexical interval measured by the caller (e.g. RAID service time
   spanning sleeps): recorded at completion with an explicit start. *)
let complete t ~cat ~name ~ts ~dur ?(args = []) ?(num_args = []) () =
  match t.state with
  | None -> ()
  | Some s when not s.record -> ()
  | Some s ->
      let fid = Engine.current_fid s.eng in
      Sink.record s.sink
        {
          ph = 'X';
          cat;
          name;
          ts;
          dur;
          tid = fid;
          flow = 0;
          args;
          num_args = span_num_args s ~fid num_args;
        };
      maybe_sample s ~now:(Engine.now s.eng)

let event_count t = match t.state with Some s -> Sink.length s.sink | None -> 0
let dropped t = match t.state with Some s -> Sink.dropped s.sink | None -> 0

(* --- Chrome trace-event export ------------------------------------------- *)

let emit_event buf (ev : Sink.ev) =
  Buffer.add_string buf "{\"name\":";
  Json.str_into buf ev.name;
  Buffer.add_string buf ",\"cat\":";
  Json.str_into buf ev.cat;
  Buffer.add_string buf ",\"ph\":\"";
  Buffer.add_char buf ev.ph;
  Buffer.add_string buf "\",\"ts\":";
  Buffer.add_string buf (Json.num_str ev.ts);
  if ev.ph = 'X' then begin
    Buffer.add_string buf ",\"dur\":";
    Buffer.add_string buf (Json.num_str ev.dur)
  end;
  if ev.ph = 'i' then Buffer.add_string buf ",\"s\":\"g\"";
  if ev.ph = 's' || ev.ph = 'f' then begin
    Buffer.add_string buf ",\"id\":";
    Buffer.add_string buf (string_of_int ev.flow);
    (* Bind the flow finish to the enclosing slice so Perfetto draws the
       arrow into the consuming span, not just at the track. *)
    if ev.ph = 'f' then Buffer.add_string buf ",\"bp\":\"e\""
  end;
  Buffer.add_string buf ",\"pid\":0,\"tid\":";
  Buffer.add_string buf (string_of_int ev.tid);
  let has_args = ev.ph = 'C' || ev.args <> [] || ev.num_args <> [] in
  if has_args then begin
    Buffer.add_string buf ",\"args\":{";
    let first = ref true in
    let sep () =
      if !first then first := false else Buffer.add_char buf ','
    in
    if ev.ph = 'C' then begin
      sep ();
      Buffer.add_string buf "\"value\":";
      Buffer.add_string buf (Json.num_str ev.dur)
    end;
    List.iter
      (fun (k, v) ->
        sep ();
        Json.str_into buf k;
        Buffer.add_char buf ':';
        Buffer.add_string buf (Json.num_str v))
      ev.num_args;
    List.iter
      (fun (k, v) ->
        sep ();
        Json.str_into buf k;
        Buffer.add_char buf ':';
        Json.str_into buf v)
      ev.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let export t buf =
  match t.state with
  | None -> Buffer.add_string buf "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
  | Some s ->
      (* Close the timeseries so the last window is visible. *)
      if s.sample_interval > 0.0 then sample s ~now:(Engine.now s.eng);
      Buffer.add_string buf "{\"traceEvents\":[";
      let first = ref true in
      let sep () = if !first then first := false else Buffer.add_char buf ',' in
      (* Thread-name metadata first, sorted by fiber id, so Perfetto shows
         accounting labels instead of bare tids.  Only fibers that appear
         in a retained event get a record — long runs see one short-lived
         message fiber per client op, and naming them all would dwarf the
         bounded event ring. *)
      let live = Hashtbl.create 256 in
      Sink.iter s.sink (fun ev -> Hashtbl.replace live ev.tid ());
      (* lint-ok: sorted before use. *)
      Hashtbl.fold
        (fun fid label acc -> if Hashtbl.mem live fid then (fid, label) :: acc else acc)
        s.names []
      |> List.sort compare
      |> List.iter (fun (fid, label) ->
             sep ();
             Buffer.add_string buf
               (Printf.sprintf
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":"
                  fid);
             Json.str_into buf (Printf.sprintf "%s/%d" label fid);
             Buffer.add_string buf "}}");
      Sink.iter s.sink (fun ev ->
          sep ();
          emit_event buf ev);
      Buffer.add_string buf "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
      Buffer.add_string buf
        (Printf.sprintf
           "\"clock\":\"virtual-us\",\"events\":%d,\"dropped\":%d,\"causal\":%b,\"sample_interval_us\":%s}}"
           (Sink.length s.sink) (Sink.dropped s.sink) s.causal
           (Json.num_str s.sample_interval))

let export_string t =
  let buf = Buffer.create 65536 in
  export t buf;
  Buffer.contents buf

(* --- virtual-CPU profile ------------------------------------------------- *)

let profile_rows t =
  match t.state with
  | None -> []
  | Some s ->
      List.rev s.profile_order
      |> List.map (fun key ->
             let cell = Hashtbl.find s.profile key in
             (key, cell.p_total, cell.p_count))
      |> List.sort (fun (ka, ta, _) (kb, tb, _) ->
             if ta <> tb then compare tb ta else String.compare ka kb)

let profile_table ?(top = 20) t =
  let rows = profile_rows t in
  let total = List.fold_left (fun acc (_, v, _) -> acc +. v) 0.0 rows in
  let tbl =
    Wafl_util.Table.create ~headers:[ "span stack (virtual-CPU profile)"; "virt us"; "charges"; "share" ]
  in
  let shown = ref 0 in
  List.iter
    (fun (key, v, n) ->
      if !shown < top then begin
        incr shown;
        Wafl_util.Table.add_row tbl
          [
            key;
            Printf.sprintf "%.1f" v;
            string_of_int n;
            Printf.sprintf "%.1f%%" (if total > 0.0 then 100.0 *. v /. total else 0.0);
          ]
      end)
    rows;
  if List.length rows > top then
    Wafl_util.Table.add_row tbl
      [ Printf.sprintf "... %d more" (List.length rows - top); ""; ""; "" ];
  Wafl_util.Table.render tbl
