(** Bounded-memory sliding-window telemetry rollups (virtual time).

    A rollup keeps a fixed ring of time windows.  Each sealed window holds
    counter deltas (sampled from cumulative sources), gauge readings,
    log-bucketed latency sketches, and per-volume activity rows.  Memory
    is O(volumes x windows), independent of run length, with an explicit
    per-volume byte budget checked at {!create}.

    Strictly observe-only: the rollup never spawns fibers, consumes
    virtual time, or draws randomness.  Windows seal lazily inside the
    write-side calls ({!observe_write}, {!count}, {!snapshot}), so a run
    with a rollup attached is bit-identical to one without.  Windows are
    aligned to the absolute virtual-time grid ([w_seq = floor (now /
    window_us)]), which makes per-shard snapshots mergeable by sequence
    number ({!merge_snapshots}). *)

type config = {
  window_us : float;  (** window width in virtual microseconds *)
  windows : int;  (** sealed windows retained in the ring *)
  vol_budget_bytes : int;
      (** hard per-volume memory budget; {!create} rejects configs whose
          ring would exceed it *)
  lat_lo : float;  (** latency sketch range and resolution *)
  lat_hi : float;
  lat_buckets_per_decade : int;
}

val default_config : config
(** 8 windows of 100ms virtual time, 4 buckets/decade over [1, 1e7] us,
    4 KiB per volume. *)

type vol_row = {
  vr_writes : int;  (** write ops completed this window *)
  vr_admitted : int;
  vr_throttled : int;
  vr_shed : int;
  vr_completed : int;
  vr_backlog : int;  (** cumulative admitted - completed at seal time *)
  vr_lat : Wafl_util.Histogram.t;  (** write latency sketch *)
}

type window = {
  w_seq : int;  (** absolute grid index: floor (start / window_us) *)
  w_start : float;
  w_end : float;
  w_counters : (string * float) list;  (** per-window deltas, name-sorted *)
  w_gauges : (string * float) list;  (** sampled at seal, name-sorted *)
  w_sketches : (string * Wafl_util.Histogram.t) list;
      (** per-window histogram deltas, name-sorted *)
  w_vols : (int * vol_row) list;  (** vol-id-sorted *)
}

type snapshot = { s_window_us : float; s_windows : window list  (** oldest first *) }
type t

val create : ?config:config -> Wafl_sim.Engine.t -> t
(** Raises [Invalid_argument] if the configured ring cannot fit in
    [vol_budget_bytes] per volume. *)

val config : t -> config

val vol_window_bytes : config -> int
(** Approximate bytes one volume costs per retained window (row plus
    latency sketch); the budget check is
    [(windows + 1) * vol_window_bytes <= vol_budget_bytes] (the +1 is the
    open window). *)

(** {1 Feeding} *)

val add_source : t -> name:string -> (unit -> float) -> unit
(** Register a cumulative counter source; each sealed window records the
    delta since the previous seal (first window: since registration). *)

val add_gauge : t -> name:string -> (unit -> float) -> unit
(** Register a gauge; sampled as-is at each seal. *)

val add_hsource : t -> name:string -> (unit -> Wafl_util.Histogram.t option) -> unit
(** Register a cumulative histogram source; each sealed window records
    the bucket-wise delta since the previous seal.  [None] readings are
    skipped (the instrument does not exist yet). *)

val observe_write : t -> vol:int -> float -> unit
(** Record one completed write for [vol] with the given end-to-end
    latency (virtual us).  Seals due windows first. *)

val count : t -> vol:int -> [ `Admitted | `Throttled | `Shed | `Completed ] -> unit
(** Bump a per-volume admission counter.  [`Admitted] / [`Completed]
    also feed the cumulative backlog.  Seals due windows first. *)

val on_seal : t -> (t -> window -> unit) -> unit
(** Register a callback invoked synchronously (inside the sealing
    write-side call) for every sealed window, in registration order.
    Callbacks must themselves be observe-only. *)

(** {1 Reading} *)

val recent : t -> int -> window list
(** Up to [n] most recent sealed windows, newest first.  Does not seal. *)

val snapshot : t -> snapshot
(** Seals due windows, then returns the retained sealed windows oldest
    first.  The open (partial) window is excluded. *)

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> snapshot
(** Byte-exact round-trip: [snapshot_of_json (snapshot_to_json s)]
    re-renders to the same JSON. *)

val merge_snapshots : (int * snapshot) list -> snapshot
(** Deterministically merge per-shard snapshots: windows align by
    [w_seq], counters and gauges sum, sketches merge bucket-wise, and
    volume ids are namespaced as [(ns lsl 16) lor vol] so shards cannot
    collide.  All snapshots must share [s_window_us]. *)
