(* Ring-buffer trace sink.

   Bounded so a long run cannot exhaust memory: when full, the oldest
   events are overwritten and counted as dropped (the exporter reports
   the drop count, so a truncated trace is never mistaken for a complete
   one).  Mutation goes through [record] only, and only the Wafl_obs
   modules may call it — wafl_lint enforces that every other module emits
   through the Trace API. *)

type ev = {
  ph : char;  (* 'X' complete span, 'i' instant, 'C' counter sample,
                 's'/'f' flow start/finish (causal edge) *)
  cat : string;
  name : string;
  ts : float; (* virtual microseconds *)
  dur : float; (* 'X': span duration; 'C': sampled value *)
  tid : int; (* fiber id; Race.main_fid (-1) outside fiber context *)
  flow : int; (* 's'/'f': edge id pairing the two halves; 0 = none *)
  args : (string * string) list;
  num_args : (string * float) list;
}

type t = {
  cap : int;
  buf : ev option array;
  mutable next : int; (* slot receiving the next event *)
  mutable len : int;
  mutable n_dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  { cap = capacity; buf = Array.make capacity None; next = 0; len = 0; n_dropped = 0 }

let record t ev =
  if t.len = t.cap then t.n_dropped <- t.n_dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.cap

let length t = t.len
let dropped t = t.n_dropped

(* Oldest to newest. *)
let iter t f =
  let start = (t.next - t.len + t.cap) mod t.cap in
  for i = 0 to t.len - 1 do
    match t.buf.((start + i) mod t.cap) with Some ev -> f ev | None -> ()
  done

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0;
  t.len <- 0;
  t.n_dropped <- 0
