(** Causal request tracing and critical-path analysis (DESIGN.md §4.10).

    The propagation half is the {e only} sanctioned way for code outside
    [Wafl_obs] to emit causal edges ([wafl_lint] rejects the underlying
    [Trace] primitives elsewhere): {!capture} a context where
    asynchronous work is produced, carry the {!handoff} with the work,
    {!restore} it where the work is consumed.  Every call is a single
    branch unless the tracer was created with [Trace.create ~causal:true]
    (the [--causal] experiment flag), and recording never consumes
    virtual time, schedules events or draws randomness, so causal runs
    are bit-identical to untraced ones.

    The analyzer half powers [wafl_sim analyze]: it pairs flow events
    into edges, extracts each checkpoint's critical path by walking those
    edges backward, attributes critical-path time to resource classes
    (serial allocator, cleaner pool, Waffinity partition classes, RAID),
    and decomposes end-to-end write latency per stage. *)

(** {1 Context propagation} *)

type handoff = Trace.handoff

val no_handoff : handoff
val capture : Trace.t -> kind:string -> handoff
val restore : Trace.t -> kind:string -> handoff -> unit
val with_root : Trace.t -> (unit -> 'a) -> 'a
val current_ctx : Trace.t -> int
val fiber_reset : Trace.t -> unit

val enabled : Trace.t -> bool
(** True iff the tracer records causal edges ([Trace.causal]). *)

(** {1 Trace analysis} *)

type span = {
  sp_tid : int;
  sp_ts : float;
  sp_dur : float;
  sp_cat : string;
  sp_name : string;
  sp_ctx : int;
  sp_wait : float;
}

type edge = {
  ed_id : int;
  ed_name : string;
  ed_src_tid : int;
  ed_src_ts : float;
  ed_dst_tid : int;
  ed_dst_ts : float;
}

type segment = { sg_class : string; sg_from : float; sg_until : float }

type cp_path = {
  p_ts : float;
  p_dur : float;
  p_tid : int;
  p_generation : float;
  p_coverage : float;  (** walked fraction of the CP interval, 0..1 *)
  p_segments : segment list;  (** chronological *)
  p_classes : (string * float) list;  (** class -> critical-path us, descending *)
}

type op_stat = {
  o_name : string;
  o_count : int;
  o_mean : float;
  o_p50 : float;
  o_p99 : float;
}

type stage_stat = {
  st_name : string;
  st_count : int;
  st_service_p50 : float;
  st_service_p99 : float;
  st_wait_p50 : float;
  st_wait_p99 : float;
}

type analysis = {
  a_events : int;
  a_dropped : int;
  a_causal : bool;
  a_spans : int;
  a_edges : int;
  a_unmatched_starts : int;
  a_orphan_finishes : int;
  a_acyclic : bool;
  a_cps : cp_path list;
  a_bottlenecks : (string * float) list;
  a_ops : op_stat list;
  a_stages : stage_stat list;
}

val analyze : Json.t -> (analysis, string) result
(** Analyze a parsed Chrome trace (as exported by {!Trace.export}). *)

val analyze_string : string -> (analysis, string) result

val dominant : cp_path -> string * float
(** The class holding the largest critical-path share of one CP. *)

val render : analysis -> string
(** Human-readable report: completeness, per-CP critical paths, the
    bottleneck table, and the write-path latency decomposition. *)

val to_json : analysis -> Json.t
