(* Minimal deterministic JSON support for the observability subsystem.

   The emitter is used by the Chrome trace exporter and the benchmark
   harness; the parser exists so tests (and `wafl_sim trace` smoke runs)
   can load an exported trace back and assert its structure without an
   external JSON dependency.  Everything is plain recursive descent over
   strings — trace files are written once per run, so emitter and parser
   favour simplicity and byte-stable output over speed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Canonical float image: integers print without a fractional part so
   counters and block counts read naturally; everything else keeps three
   decimals (virtual microseconds resolve sub-nanosecond simulated time,
   which no consumer of a trace needs).  Stability matters more than
   precision here: the same run must always print the same bytes. *)
let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let str_into buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_str f)
  | Str s -> str_into buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          str_into buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* Emitted traces only escape control characters; decode
                      the BMP code point as latin-1-ish best effort. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors (for tests and report code) ------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
