(* Causal request tracing (DESIGN.md §4.10).

   Two halves.  The first is the blessed propagation API: thin wrappers
   over the causal half of {!Trace} that instrumented code threads
   through every asynchronous handoff — capture a context where work is
   produced (a message post, a cleaner work item, a RAID submit), restore
   it where the work is consumed.  wafl_lint rejects direct use of the
   underlying [Trace] primitives outside lib/obs, so every causal edge in
   a trace comes from this one audited surface.

   The second half is the offline analyzer behind `wafl_sim analyze`: it
   parses an exported trace, pairs the flow events into causal edges,
   extracts the critical path through each checkpoint (the longest
   dependency chain, walked backward through wake/post edges), attributes
   critical-path time to resource classes (serial allocator, cleaner
   pool, Waffinity partition classes, RAID), and decomposes per-write
   end-to-end latency into queue wait and service per stage — the
   paper's "which stage bounds this CP" question, answered per trace. *)

(* --- propagation API ----------------------------------------------------- *)

type handoff = Trace.handoff

let no_handoff = Trace.no_handoff
let capture = Trace.capture
let restore = Trace.restore
let with_root = Trace.with_root
let current_ctx = Trace.current_ctx
let fiber_reset = Trace.fiber_reset
let enabled = Trace.causal

(* --- analyzer: trace model ----------------------------------------------- *)

type span = {
  sp_tid : int;
  sp_ts : float;
  sp_dur : float;
  sp_cat : string;
  sp_name : string;
  sp_ctx : int;  (* causal context ("ctx" arg); 0 = none *)
  sp_wait : float;  (* queue wait ("wait_us" arg); negative = absent *)
}

type edge = {
  ed_id : int;
  ed_name : string;  (* handoff kind: "post <kind>", "wake", "spawn", ... *)
  ed_src_tid : int;
  ed_src_ts : float;
  ed_dst_tid : int;
  ed_dst_ts : float;
}

type segment = { sg_class : string; sg_from : float; sg_until : float }

type cp_path = {
  p_ts : float;
  p_dur : float;
  p_tid : int;
  p_generation : float;  (* -1 when the CP span carried no generation *)
  p_coverage : float;  (* walked fraction of the CP interval, 0..1 *)
  p_segments : segment list;  (* chronological *)
  p_classes : (string * float) list;  (* class -> critical-path us, descending *)
}

type op_stat = {
  o_name : string;
  o_count : int;
  o_mean : float;
  o_p50 : float;
  o_p99 : float;
}

type stage_stat = {
  st_name : string;
  st_count : int;
  st_service_p50 : float;
  st_service_p99 : float;
  st_wait_p50 : float;  (* negative when the stage records no queue wait *)
  st_wait_p99 : float;
}

type analysis = {
  a_events : int;
  a_dropped : int;
  a_causal : bool;
  a_spans : int;
  a_edges : int;
  a_unmatched_starts : int;  (* 's' with no 'f': work still queued at export *)
  a_orphan_finishes : int;  (* 'f' with no 's': its start was dropped from the ring *)
  a_acyclic : bool;  (* every edge runs forward in virtual time *)
  a_cps : cp_path list;  (* chronological *)
  a_bottlenecks : (string * float) list;  (* summed over all CPs, descending *)
  a_ops : op_stat list;
  a_stages : stage_stat list;
}

(* --- parsing ------------------------------------------------------------- *)

let num_member key j = match Json.member key j with Some (Json.Num f) -> Some f | _ -> None
let str_member key j = match Json.member key j with Some (Json.Str s) -> Some s | _ -> None

let arg_num key j =
  match Json.member "args" j with Some args -> num_member key args | None -> None

(* Resource classes for bottleneck attribution.  The serial allocator is
   anything running under the aggregate-wide allocation affinities
   (Serial / Aggregate_vbn) or the in-line CP cleaning phase of the
   serialized infrastructure; the Waffinity partition classes keep their
   kind names so the report shows which class saturates. *)
let class_of_span ~cat ~name =
  match cat with
  | "cleaner" -> "cleaner pool"
  | "raid" | "tetris" -> "raid"
  | "flash" ->
      (* GC runs and the host stalls they cause are one resource (the
         device's background cleaning); page programs are the media. *)
      if name = "flash gc" || name = "flash stall" then "flash gc" else "flash media"
  | "op" -> "client"
  | "cp" ->
      if name = "CP" then "cp orchestration"
      else if name = "cp cleaning" then "serial allocator"
      else name
  | "sched" -> (
      match String.length name > 4 && String.sub name 0 4 = "msg " with
      | false -> "sched"
      | true -> (
          match String.sub name 4 (String.length name - 4) with
          | "serial" | "aggregate_vbn" -> "serial allocator"
          | kind -> "waffinity " ^ kind))
  | c -> c

let queue_class_of_edge name =
  if String.length name > 5 && String.sub name 0 5 = "post " then
    "queue " ^ String.sub name 5 (String.length name - 5)
  else "queue " ^ name

(* For the bottleneck table, a queue-wait segment is attributed to the
   resource it queues behind: a saturated resource's bottleneck shows up
   mostly as queueing (the serialized allocator's cap manifests almost
   entirely as messages waiting on the Serial/Aggregate_vbn affinities).
   Segments keep their raw "queue <kind>" labels, and the stage table
   still separates wait from service. *)
let resource_of_class c =
  if String.length c > 6 && String.sub c 0 6 = "queue " then
    match String.sub c 6 (String.length c - 6) with
    | "clean" -> "cleaner pool"
    | "raid" -> "raid"
    | "serial" | "aggregate_vbn" -> "serial allocator"
    | kind -> "waffinity " ^ kind
  else c

(* --- percentiles over raw sample lists (offline; exact) ------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* --- critical-path extraction -------------------------------------------- *)

(* Walk backward from the end of [cp] following, at each point, the most
   recent causal edge into the current fiber: run intervals attribute to
   the innermost enclosing span, post edges contribute their queue wait,
   wake edges jump (at one instant) to the fiber that enabled progress.
   Per-fiber edge cursors only move backward, so the walk terminates even
   on degenerate same-instant edge chains. *)
let critical_path ~spans ~edges cp =
  let t0 = cp.sp_ts and t1 = cp.sp_ts +. cp.sp_dur in
  let eps = 1e-9 in
  (* Window-filtered per-tid indices. *)
  let spans_by : (int, span list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun sp ->
      if sp.sp_ts < t1 +. eps && sp.sp_ts +. sp.sp_dur > t0 -. eps && sp.sp_cat <> "op" then begin
        match Hashtbl.find_opt spans_by sp.sp_tid with
        | Some l -> l := sp :: !l
        | None -> Hashtbl.add spans_by sp.sp_tid (ref [ sp ])
      end)
    spans;
  let edges_by : (int, edge array) Hashtbl.t = Hashtbl.create 64 in
  let edge_lists : (int, edge list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      if e.ed_dst_ts >= t0 -. eps && e.ed_dst_ts <= t1 +. eps then begin
        match Hashtbl.find_opt edge_lists e.ed_dst_tid with
        | Some l -> l := e :: !l
        | None -> Hashtbl.add edge_lists e.ed_dst_tid (ref [ e ])
      end)
    edges;
  (* Input is dst_ts-ascending, so the reversed lists are ascending again
     after [List.rev]. *)
  List.iter
    (fun tid ->
      match Hashtbl.find_opt edge_lists tid with
      | Some l -> Hashtbl.replace edges_by tid (Array.of_list (List.rev !l))
      | None -> ())
    (* keys listed for per-key array conversion; order irrelevant. lint-ok *)
    (Hashtbl.fold (fun k _ acc -> k :: acc) edge_lists []);
  let cursors : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* Latest unconsumed edge into [tid] with dst_ts <= t. *)
  let find_edge tid t =
    match Hashtbl.find_opt edges_by tid with
    | None -> None
    | Some arr ->
        let limit =
          match Hashtbl.find_opt cursors tid with Some c -> c | None -> Array.length arr
        in
        let rec down i =
          if i < 0 then None
          else if arr.(i).ed_dst_ts <= t +. eps then begin
            Hashtbl.replace cursors tid i;
            Some arr.(i)
          end
          else down (i - 1)
        in
        down (limit - 1)
  in
  (* Innermost span on [tid] covering instant [p]: latest start wins,
     shortest duration on start ties (nested spans share their open ts
     when opened back-to-back). *)
  let innermost tid p =
    match Hashtbl.find_opt spans_by tid with
    | None -> None
    | Some { contents = l } ->
        List.fold_left
          (fun best sp ->
            if sp.sp_ts <= p +. eps && sp.sp_ts +. sp.sp_dur >= p -. eps then
              match best with
              | None -> Some sp
              | Some b ->
                  if
                    sp.sp_ts > b.sp_ts +. eps
                    || (Float.abs (sp.sp_ts -. b.sp_ts) <= eps && sp.sp_dur < b.sp_dur)
                  then Some sp
                  else best
            else best)
          None l
  in
  (* Attribute the run interval (b, t] on [tid], splitting at span
     boundaries so each piece lands on its innermost span. *)
  let attribute tid b t acc =
    if t -. b <= eps then acc
    else begin
      let points = ref [ b; t ] in
      (match Hashtbl.find_opt spans_by tid with
      | None -> ()
      | Some { contents = l } ->
          List.iter
            (fun sp ->
              let s = sp.sp_ts and e = sp.sp_ts +. sp.sp_dur in
              if s > b +. eps && s < t -. eps then points := s :: !points;
              if e > b +. eps && e < t -. eps then points := e :: !points)
            l);
      let pts = List.sort_uniq compare !points in
      let rec pairs acc = function
        | x :: (y :: _ as rest) ->
            let mid = (x +. y) /. 2.0 in
            let cls =
              match innermost tid mid with
              | Some sp -> class_of_span ~cat:sp.sp_cat ~name:sp.sp_name
              | None -> "untracked"
            in
            pairs ({ sg_class = cls; sg_from = x; sg_until = y } :: acc) rest
        | _ -> acc
      in
      (* [pairs] prepends left-to-right, yielding newest-first — the same
         orientation as the backward walk's accumulator. *)
      pairs [] pts @ acc
    end
  in
  let max_iters = Array.length edges + Array.length spans + 16 in
  let segments = ref [] in
  let tid = ref cp.sp_tid and t = ref t1 and iters = ref 0 and stopped = ref false in
  while (not !stopped) && !t > t0 +. eps && !iters <= max_iters do
    incr iters;
    match find_edge !tid !t with
    | None ->
        segments := attribute !tid t0 !t !segments;
        t := t0;
        stopped := true
    | Some e ->
        let b = max t0 e.ed_dst_ts in
        segments := attribute !tid b !t !segments;
        if e.ed_dst_ts <= t0 +. eps then begin
          t := t0;
          stopped := true
        end
        else begin
          if e.ed_dst_ts -. e.ed_src_ts > eps then
            segments :=
              {
                sg_class = queue_class_of_edge e.ed_name;
                sg_from = max t0 e.ed_src_ts;
                sg_until = e.ed_dst_ts;
              }
              :: !segments;
          tid := e.ed_src_tid;
          t := max t0 e.ed_src_ts
        end
  done;
  let walked_to = !t in
  let segs = !segments in
  let by_class : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sg ->
      let d = sg.sg_until -. sg.sg_from in
      if d > 0.0 then
        let cls = resource_of_class sg.sg_class in
        match Hashtbl.find_opt by_class cls with
        | Some r -> r := !r +. d
        | None -> Hashtbl.add by_class cls (ref d))
    segs;
  let classes =
    (* lint-ok: sorted before use. *)
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) by_class []
    |> List.sort (fun (ka, va) (kb, vb) ->
           if va <> vb then compare vb va else String.compare ka kb)
  in
  {
    p_ts = cp.sp_ts;
    p_dur = cp.sp_dur;
    p_tid = cp.sp_tid;
    p_generation = (if cp.sp_wait >= 0.0 then cp.sp_wait else -1.0);
    p_coverage = (if cp.sp_dur <= 0.0 then 1.0 else (t1 -. walked_to) /. cp.sp_dur);
    p_segments = segs;
    p_classes = classes;
  }

(* --- whole-trace analysis ------------------------------------------------ *)

let analyze doc =
  match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
      let dropped, causal =
        match Json.member "otherData" doc with
        | Some od ->
            ( (match num_member "dropped" od with Some d -> int_of_float d | None -> 0),
              match Json.member "causal" od with Some (Json.Bool b) -> b | _ -> false )
        | None -> (0, false)
      in
      let spans = ref [] and n_spans = ref 0 in
      let starts : (int, string * int * float) Hashtbl.t = Hashtbl.create 1024 in
      let edges = ref [] and n_edges = ref 0 and orphans = ref 0 in
      List.iter
        (fun j ->
          match str_member "ph" j with
          | Some "X" ->
              let get d k = Option.value ~default:d (num_member k j) in
              incr n_spans;
              spans :=
                {
                  sp_tid = int_of_float (get (-1.0) "tid");
                  sp_ts = get 0.0 "ts";
                  sp_dur = get 0.0 "dur";
                  sp_cat = Option.value ~default:"" (str_member "cat" j);
                  sp_name = Option.value ~default:"" (str_member "name" j);
                  sp_ctx =
                    (match arg_num "ctx" j with Some c -> int_of_float c | None -> 0);
                  sp_wait =
                    (match arg_num "wait_us" j with
                    | Some w -> w
                    | None -> (
                        (* CP spans reuse the wait slot for their generation. *)
                        match arg_num "generation" j with Some g -> g | None -> -1.0));
                }
                :: !spans
          | Some "s" -> (
              match (num_member "id" j, num_member "ts" j, num_member "tid" j) with
              | Some id, Some ts, Some tid ->
                  Hashtbl.replace starts (int_of_float id)
                    (Option.value ~default:"" (str_member "name" j), int_of_float tid, ts)
              | _ -> ())
          | Some "f" -> (
              match (num_member "id" j, num_member "ts" j, num_member "tid" j) with
              | Some id, Some ts, Some tid -> (
                  let id = int_of_float id in
                  match Hashtbl.find_opt starts id with
                  | Some (name, src_tid, src_ts) ->
                      Hashtbl.remove starts id;
                      incr n_edges;
                      edges :=
                        {
                          ed_id = id;
                          ed_name = name;
                          ed_src_tid = src_tid;
                          ed_src_ts = src_ts;
                          ed_dst_tid = int_of_float tid;
                          ed_dst_ts = ts;
                        }
                        :: !edges
                  | None -> incr orphans)
              | _ -> ())
          | _ -> ())
        events;
      let span_arr = Array.of_list (List.rev !spans) in
      Array.sort (fun a b -> compare a.sp_ts b.sp_ts) span_arr;
      let edge_arr = Array.of_list (List.rev !edges) in
      Array.sort (fun a b -> compare a.ed_dst_ts b.ed_dst_ts) edge_arr;
      let acyclic =
        Array.for_all (fun e -> e.ed_src_ts <= e.ed_dst_ts +. 1e-9) edge_arr
      in
      (* Critical path per CP span. *)
      let cps =
        Array.to_list span_arr
        |> List.filter (fun sp -> sp.sp_cat = "cp" && sp.sp_name = "CP")
        |> List.map (critical_path ~spans:span_arr ~edges:edge_arr)
      in
      let agg : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun p ->
          List.iter
            (fun (cls, us) ->
              match Hashtbl.find_opt agg cls with
              | Some r -> r := !r +. us
              | None -> Hashtbl.add agg cls (ref us))
            p.p_classes)
        cps;
      let bottlenecks =
        (* lint-ok: sorted before use. *)
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) agg []
        |> List.sort (fun (ka, va) (kb, vb) ->
               if va <> vb then compare vb va else String.compare ka kb)
      in
      (* Per-op end-to-end latency (cat "op" spans, grouped by name). *)
      let op_tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun sp ->
          if sp.sp_cat = "op" then
            match Hashtbl.find_opt op_tbl sp.sp_name with
            | Some l -> l := sp.sp_dur :: !l
            | None -> Hashtbl.add op_tbl sp.sp_name (ref [ sp.sp_dur ]))
        span_arr;
      let stats_of name l =
        let arr = Array.of_list l in
        Array.sort compare arr;
        let n = Array.length arr in
        {
          o_name = name;
          o_count = n;
          o_mean =
            (if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 arr /. float_of_int n);
          o_p50 = percentile arr 0.50;
          o_p99 = percentile arr 0.99;
        }
      in
      let ops =
        (* lint-ok: sorted before use. *)
        Hashtbl.fold (fun k l acc -> (k, !l) :: acc) op_tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, l) -> stats_of name l)
      in
      (* Per-stage queue-wait vs service decomposition. *)
      let stage_tbl : (string, (float list ref * float list ref)) Hashtbl.t =
        Hashtbl.create 16
      in
      Array.iter
        (fun sp ->
          match sp.sp_cat with
          | "sched" | "cleaner" | "raid" | "tetris" | "flash" ->
              let svc, wait =
                match Hashtbl.find_opt stage_tbl sp.sp_name with
                | Some cell -> cell
                | None ->
                    let cell = (ref [], ref []) in
                    Hashtbl.add stage_tbl sp.sp_name cell;
                    cell
              in
              svc := sp.sp_dur :: !svc;
              if sp.sp_wait >= 0.0 then wait := sp.sp_wait :: !wait
          | _ -> ())
        span_arr;
      let stages =
        (* lint-ok: sorted before use. *)
        Hashtbl.fold (fun k cell acc -> (k, cell) :: acc) stage_tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, (svc, wait)) ->
               let s = Array.of_list !svc and w = Array.of_list !wait in
               Array.sort compare s;
               Array.sort compare w;
               {
                 st_name = name;
                 st_count = Array.length s;
                 st_service_p50 = percentile s 0.50;
                 st_service_p99 = percentile s 0.99;
                 st_wait_p50 = (if Array.length w = 0 then -1.0 else percentile w 0.50);
                 st_wait_p99 = (if Array.length w = 0 then -1.0 else percentile w 0.99);
               })
      in
      Ok
        {
          a_events = List.length events;
          a_dropped = dropped;
          a_causal = causal;
          a_spans = !n_spans;
          a_edges = !n_edges;
          a_unmatched_starts = Hashtbl.length starts;
          a_orphan_finishes = !orphans;
          a_acyclic = acyclic;
          a_cps = cps;
          a_bottlenecks = bottlenecks;
          a_ops = ops;
          a_stages = stages;
        }
  | _ -> Error "not a trace: no traceEvents array"

let analyze_string body =
  match Json.of_string body with Ok doc -> analyze doc | Error e -> Error e

(* --- reports ------------------------------------------------------------- *)

let dominant p = match p.p_classes with [] -> ("(empty)", 0.0) | (c, us) :: _ -> (c, us)

let render a =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "trace: %d events, %d spans, %d causal edges (%d still-queued starts, %d orphan finishes)\n"
    a.a_events a.a_spans a.a_edges a.a_unmatched_starts a.a_orphan_finishes;
  pf "dropped events: %d\n" a.a_dropped;
  if a.a_dropped > 0 || a.a_orphan_finishes > 0 then
    pf
      "WARNING: trace incomplete (%d dropped, %d orphan finishes) — critical paths and \
       decompositions may be wrong; re-run with a larger ring capacity\n"
      a.a_dropped a.a_orphan_finishes;
  if not a.a_causal then
    pf "NOTE: trace was not recorded in causal mode (no --causal); edges come only from \
        engine-level wake/spawn hooks and will be empty\n";
  pf "acyclic: %s\n" (if a.a_acyclic then "yes" else "NO — malformed trace");
  pf "\ncheckpoints: %d\n" (List.length a.a_cps);
  List.iteri
    (fun i p ->
      let cls, us = dominant p in
      pf
        "critical path: CP #%d @ %.0f us: duration %.0f us, %d segments, coverage %.1f%%, \
         dominant: %s (%.1f%%)\n"
        (i + 1) p.p_ts p.p_dur (List.length p.p_segments) (100.0 *. p.p_coverage)
        cls
        (if p.p_dur > 0.0 then 100.0 *. us /. p.p_dur else 0.0))
    a.a_cps;
  if a.a_bottlenecks <> [] then begin
    let total = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 a.a_bottlenecks in
    let t =
      Wafl_util.Table.create
        ~headers:[ "bottleneck (all CPs)"; "critical-path us"; "share" ]
    in
    List.iter
      (fun (cls, us) ->
        Wafl_util.Table.add_row t
          [
            cls;
            Printf.sprintf "%.1f" us;
            Printf.sprintf "%.1f%%" (if total > 0.0 then 100.0 *. us /. total else 0.0);
          ])
      a.a_bottlenecks;
    pf "\n%s" (Wafl_util.Table.render t)
  end;
  if a.a_ops <> [] then begin
    let t =
      Wafl_util.Table.create
        ~headers:[ "op (end-to-end)"; "count"; "mean us"; "p50 us"; "p99 us" ]
    in
    List.iter
      (fun o ->
        Wafl_util.Table.add_row t
          [
            o.o_name;
            string_of_int o.o_count;
            Printf.sprintf "%.1f" o.o_mean;
            Printf.sprintf "%.1f" o.o_p50;
            Printf.sprintf "%.1f" o.o_p99;
          ])
      a.a_ops;
    pf "\n%s" (Wafl_util.Table.render t)
  end;
  if a.a_stages <> [] then begin
    let t =
      Wafl_util.Table.create
        ~headers:[ "stage"; "count"; "service p50/p99 us"; "queue wait p50/p99 us" ]
    in
    List.iter
      (fun s ->
        Wafl_util.Table.add_row t
          [
            s.st_name;
            string_of_int s.st_count;
            Printf.sprintf "%.1f / %.1f" s.st_service_p50 s.st_service_p99;
            (if s.st_wait_p50 < 0.0 then "-"
             else Printf.sprintf "%.1f / %.1f" s.st_wait_p50 s.st_wait_p99);
          ])
      a.a_stages;
    pf "\n%s" (Wafl_util.Table.render t)
  end;
  Buffer.contents buf

let to_json a =
  let open Json in
  let share_list l =
    let total = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 l in
    Arr
      (List.map
         (fun (cls, us) ->
           Obj
             [
               ("class", Str cls);
               ("us", Num us);
               ("share", Num (if total > 0.0 then us /. total else 0.0));
             ])
         l)
  in
  Obj
    [
      ("events", Num (float_of_int a.a_events));
      ("dropped", Num (float_of_int a.a_dropped));
      ("causal", Bool a.a_causal);
      ("spans", Num (float_of_int a.a_spans));
      ("edges", Num (float_of_int a.a_edges));
      ("unmatched_starts", Num (float_of_int a.a_unmatched_starts));
      ("orphan_finishes", Num (float_of_int a.a_orphan_finishes));
      ("acyclic", Bool a.a_acyclic);
      ( "cps",
        Arr
          (List.map
             (fun p ->
               Obj
                 [
                   ("ts", Num p.p_ts);
                   ("dur_us", Num p.p_dur);
                   ("generation", Num p.p_generation);
                   ("coverage", Num p.p_coverage);
                   ("segments", Num (float_of_int (List.length p.p_segments)));
                   ("classes", share_list p.p_classes);
                 ])
             a.a_cps) );
      ("bottlenecks", share_list a.a_bottlenecks);
      ( "ops",
        Arr
          (List.map
             (fun o ->
               Obj
                 [
                   ("op", Str o.o_name);
                   ("count", Num (float_of_int o.o_count));
                   ("mean_us", Num o.o_mean);
                   ("p50_us", Num o.o_p50);
                   ("p99_us", Num o.o_p99);
                 ])
             a.a_ops) );
      ( "stages",
        Arr
          (List.map
             (fun s ->
               Obj
                 [
                   ("stage", Str s.st_name);
                   ("count", Num (float_of_int s.st_count));
                   ("service_p50_us", Num s.st_service_p50);
                   ("service_p99_us", Num s.st_service_p99);
                   ("wait_p50_us", Num s.st_wait_p50);
                   ("wait_p99_us", Num s.st_wait_p99);
                 ])
             a.a_stages) );
    ]
