module Histogram = Wafl_util.Histogram

type severity = Info | Warn | Crit

type rule =
  | B2b_streak of { cps : int; windows : int }
  | Hard_dwell of { frac : float }
  | Victim_p99 of { factor : float; baseline_windows : int; min_samples : int }
  | Gc_stall of { frac : float }
  | Rebuild_stall of { windows : int }
  | Trace_drops

(* The b2b threshold sits above what a saturated closed-loop benchmark
   produces naturally (tens of CPs per second, all back-to-back, because
   the other log half refills during each CP): 24 b2b CPs inside 300ms
   means CPs are completing faster than 12.5ms sustained — the log is
   thrashing, not just full. *)
let default_rules =
  [
    B2b_streak { cps = 24; windows = 3 };
    Hard_dwell { frac = 0.05 };
    Victim_p99 { factor = 3.0; baseline_windows = 3; min_samples = 50 };
    Gc_stall { frac = 0.25 };
    Rebuild_stall { windows = 3 };
    Trace_drops;
  ]

type event = {
  ev_seq : int;
  ev_time : float;
  ev_severity : severity;
  ev_rule : string;
  ev_vol : int option;
  ev_detail : string;
}

type t = {
  rules : rule list;
  capacity : int;
  mutable log : event list; (* newest first *)
  mutable n_events : int;
  mutable n_dropped : int;
  mutable rebuild_idle_streak : int;
}

let emit t ev =
  if t.n_events >= t.capacity then t.n_dropped <- t.n_dropped + 1
  else begin
    t.log <- ev :: t.log;
    t.n_events <- t.n_events + 1
  end

let events t = List.rev t.log
let dropped t = t.n_dropped
let severity_str = function Info -> "info" | Warn -> "warn" | Crit -> "crit"

let counter w name =
  match List.assoc_opt name w.Rollup.w_counters with Some v -> v | None -> 0.0

let gauge w name = match List.assoc_opt name w.Rollup.w_gauges with Some v -> v | None -> 0.0

let width w = w.Rollup.w_end -. w.Rollup.w_start

let mk w sev rule ?vol detail =
  { ev_seq = w.Rollup.w_seq; ev_time = w.Rollup.w_end; ev_severity = sev; ev_rule = rule;
    ev_vol = vol; ev_detail = detail }

(* Each evaluator looks at the freshly sealed window [w] (already the head
   of the rollup's ring when on_seal fires). *)
let eval_rule t roll w = function
  | B2b_streak { cps; windows } ->
      (* Sustained b2b mode: a back-to-back CP lands in every one of the
         last [windows] windows and the span accumulates at least [cps]
         of them.  Isolated b2b transients (one busy window) stay
         quiet. *)
      let recent = Rollup.recent roll windows in
      let total = List.fold_left (fun acc rw -> acc +. counter rw "cp.b2b") 0.0 recent in
      if
        List.length recent >= windows
        && List.for_all (fun rw -> counter rw "cp.b2b" >= 1.0) recent
        && total >= float_of_int cps
      then
        emit t
          (mk w Crit "b2b_streak"
             (Printf.sprintf "%.0f back-to-back CPs across the last %d windows (>=%d)" total
                windows cps))
  | Hard_dwell { frac } ->
      let dwell = counter w "nvlog.hard_dwell_us" in
      if width w > 0.0 && dwell /. width w >= frac then
        emit t
          (mk w Crit "hard_dwell"
             (Printf.sprintf "NVLog hard-watermark dwell %.0fus = %.1f%% of window" dwell
                (100.0 *. dwell /. width w)))
  | Victim_p99 { factor; baseline_windows; min_samples } ->
      let prev =
        match Rollup.recent roll (baseline_windows + 1) with
        | [] -> []
        | _ :: older -> older
      in
      List.iter
        (fun (vol, row) ->
          let lat = row.Rollup.vr_lat in
          if Histogram.count lat >= min_samples then begin
            let base =
              List.fold_left
                (fun acc pw ->
                  match List.assoc_opt vol pw.Rollup.w_vols with
                  | None -> acc
                  | Some r -> (
                      match acc with
                      | None -> Some (Histogram.copy r.Rollup.vr_lat)
                      | Some b ->
                          Histogram.merge_into ~dst:b r.Rollup.vr_lat;
                          Some b))
                None prev
            in
            match base with
            | Some b when Histogram.count b >= min_samples ->
                let p99 = Histogram.percentile lat 99.0 in
                let base_p99 = Histogram.percentile b 99.0 in
                if base_p99 > 0.0 && p99 > factor *. base_p99 then
                  emit t
                    (mk w Warn "victim_p99" ~vol
                       (Printf.sprintf "vol %d write p99 %.0fus vs baseline %.0fus (>%.1fx)"
                          vol p99 base_p99 factor))
            | _ -> ()
          end)
        w.Rollup.w_vols
  | Gc_stall { frac } ->
      let stall = counter w "flash.gc_stall_us" in
      if width w > 0.0 && stall /. width w >= frac then
        emit t
          (mk w Warn "gc_stall"
             (Printf.sprintf "GC stall %.0fus = %.1f%% of window" stall
                (100.0 *. stall /. width w)))
  | Rebuild_stall { windows } ->
      if gauge w "rebuild.active" > 0.0 && counter w "rebuild.blocks" = 0.0 then begin
        t.rebuild_idle_streak <- t.rebuild_idle_streak + 1;
        if t.rebuild_idle_streak >= windows then
          emit t
            (mk w Warn "rebuild_stall"
               (Printf.sprintf "rebuild active but 0 blocks repaired for %d windows"
                  t.rebuild_idle_streak))
      end
      else t.rebuild_idle_streak <- 0
  | Trace_drops ->
      let drops = counter w "trace.drops" in
      if drops > 0.0 then
        emit t
          (mk w Warn "trace_drops" (Printf.sprintf "trace ring dropped %.0f events" drops))

let create ?(capacity = 256) ~rules roll =
  let t =
    { rules; capacity; log = []; n_events = 0; n_dropped = 0; rebuild_idle_streak = 0 }
  in
  Rollup.on_seal roll (fun r w -> List.iter (eval_rule t r w) t.rules);
  t

module J = Json

let event_to_json ev =
  J.Obj
    [
      ("seq", J.Num (float_of_int ev.ev_seq));
      (* Pre-rounded to the printer's resolution so serialization is a
         fixed point under parse/re-serialize (see Rollup.jnum3). *)
      ("time", J.Num (Float.round (ev.ev_time *. 1000.0) /. 1000.0));
      ("severity", J.Str (severity_str ev.ev_severity));
      ("rule", J.Str ev.ev_rule);
      ("vol", (match ev.ev_vol with Some v -> J.Num (float_of_int v) | None -> J.Null));
      ("detail", J.Str ev.ev_detail);
    ]

let event_of_json j =
  let get k = match J.member k j with Some v -> v | None -> invalid_arg ("Health: missing " ^ k) in
  let num k = match J.to_float (get k) with Some f -> f | None -> invalid_arg ("Health: " ^ k) in
  let str k = match J.to_str (get k) with Some s -> s | None -> invalid_arg ("Health: " ^ k) in
  {
    ev_seq = int_of_float (num "seq");
    ev_time = num "time";
    ev_severity =
      (match str "severity" with
      | "info" -> Info
      | "warn" -> Warn
      | "crit" -> Crit
      | s -> invalid_arg ("Health: severity " ^ s));
    ev_rule = str "rule";
    ev_vol = (match J.member "vol" j with Some (J.Num v) -> Some (int_of_float v) | _ -> None);
    ev_detail = str "detail";
  }
