(** Virtual-time span/event tracer with Chrome trace-event export.

    A tracer is either {!disabled} — every operation is a single branch,
    and instrumented code is bit-identical to uninstrumented code — or
    attached to an engine with {!create}, recording spans, instants and
    periodic metric samples into a bounded ring buffer, all timestamped
    with the engine's virtual clock.

    Recording never consumes virtual time and never schedules events, so
    enabling tracing does not change simulation results; and because all
    recorded inputs are deterministic, two runs with the same seed export
    byte-identical traces.  See DESIGN.md §4.8. *)

type t

val disabled : t
(** The shared no-op tracer; the default everywhere instrumentation is
    threaded. *)

val create : ?ring_capacity:int -> ?sample_interval:float -> Wafl_sim.Engine.t -> t
(** Attach a tracer to [eng].  Installs the engine's observability hooks
    (displacing any previously installed hooks), so at most one tracer
    should be attached per engine.  [ring_capacity] (default 262144)
    bounds retained events, oldest dropped first; [sample_interval]
    (default 10000.0 virtual microseconds) is the counter/gauge sampling
    period, [0.0] disables the timeseries. *)

val enabled : t -> bool
val engine : t -> Wafl_sim.Engine.t option

val metrics : t -> Metrics.t
(** The tracer's metrics registry.  On a disabled tracer this returns a
    shared throwaway registry, so instrumentation may register and update
    instruments unconditionally. *)

(** {1 Recording} *)

val with_span :
  t -> cat:string -> name:string -> ?args:(string * string) list -> (unit -> 'a) -> 'a
(** Run the thunk inside a span: records a complete ('X') event covering
    its virtual-time extent on the current fiber, and attributes CPU
    charged within to the span stack (see {!profile_rows}).  The span is
    closed (and recorded) even if the thunk raises. *)

val instant : t -> cat:string -> name:string -> ?args:(string * string) list -> unit -> unit
(** Record a zero-duration instant ('i') event at the current virtual
    time. *)

val complete :
  t ->
  cat:string ->
  name:string ->
  ts:float ->
  dur:float ->
  ?args:(string * string) list ->
  ?num_args:(string * float) list ->
  unit ->
  unit
(** Record a complete ('X') event for an interval the caller measured
    itself — e.g. a RAID service time spanning sleeps, where a lexical
    {!with_span} does not fit. *)

val event_count : t -> int
val dropped : t -> int

(** {1 Export} *)

val export : t -> Buffer.t -> unit
(** Append the whole trace as Chrome trace-event JSON
    ([{"traceEvents": [...], ...}]), loadable in Perfetto or
    chrome://tracing.  Timestamps and durations are virtual microseconds,
    [tid] is the fiber id, and counter samples appear as 'C' events. *)

val export_string : t -> string

(** {1 Virtual-CPU profile} *)

val profile_rows : t -> (string * float * int) list
(** [(span-stack path, total virtual us charged, number of charges)],
    sorted by total descending (path ascending on ties).  Charges made
    outside any span are attributed to ["fiber:<label>"]. *)

val profile_table : ?top:int -> t -> string
(** Rendered top-[top] (default 20) rows of {!profile_rows} with a
    percentage-of-total column. *)
