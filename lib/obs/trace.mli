(** Virtual-time span/event tracer with Chrome trace-event export.

    A tracer is either {!disabled} — every operation is a single branch,
    and instrumented code is bit-identical to uninstrumented code — or
    attached to an engine with {!create}, recording spans, instants and
    periodic metric samples into a bounded ring buffer, all timestamped
    with the engine's virtual clock.

    Recording never consumes virtual time and never schedules events, so
    enabling tracing does not change simulation results; and because all
    recorded inputs are deterministic, two runs with the same seed export
    byte-identical traces.  See DESIGN.md §4.8. *)

type t

val disabled : t
(** The shared no-op tracer; the default everywhere instrumentation is
    threaded. *)

val create :
  ?ring_capacity:int -> ?sample_interval:float -> ?causal:bool -> Wafl_sim.Engine.t -> t
(** Attach a tracer to [eng].  Installs the engine's observability hooks
    (displacing any previously installed hooks), so at most one tracer
    should be attached per engine.  [ring_capacity] (default 262144;
    4194304 in causal mode, which records a multiple of the events)
    bounds retained events, oldest dropped first;
    [sample_interval] (default 10000.0 virtual microseconds) is the
    counter/gauge sampling period, [0.0] disables the timeseries.

    [causal] (default [false]) additionally records causal edges — flow
    events pairing every asynchronous handoff's source and destination —
    and stamps each span with its fiber's active request context; see
    {!Causal} and DESIGN.md §4.10. *)

val metrics_only : Wafl_sim.Engine.t -> t
(** Always-on telemetry attachment: {!enabled} is true, so component
    instrumentation registers and updates in a live {!Metrics} registry,
    but no spans are recorded, no engine hooks are installed, and the CPU
    profile stays empty.  The cheap substrate for {!Rollup} when no full
    tracer is attached. *)

val enabled : t -> bool
val causal : t -> bool
val engine : t -> Wafl_sim.Engine.t option

val metrics : t -> Metrics.t
(** The tracer's metrics registry.  On a disabled tracer this returns a
    shared throwaway registry, so instrumentation may register and update
    instruments unconditionally. *)

(** {1 Recording} *)

val with_span :
  t ->
  cat:string ->
  name:string ->
  ?args:(string * string) list ->
  ?num_args:(string * float) list ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span: records a complete ('X') event covering
    its virtual-time extent on the current fiber, and attributes CPU
    charged within to the span stack (see {!profile_rows}).  The span is
    closed (and recorded) even if the thunk raises. *)

val begin_span : t -> cat:string -> name:string -> unit
val end_span : t -> unit
(** Non-lexical span pair for open/close sites in different scopes.
    [end_span] on an empty stack is a no-op; a span left open on a pooled
    worker fiber is discarded by {!fiber_reset} between messages. *)

val instant : t -> cat:string -> name:string -> ?args:(string * string) list -> unit -> unit
(** Record a zero-duration instant ('i') event at the current virtual
    time. *)

val complete :
  t ->
  cat:string ->
  name:string ->
  ts:float ->
  dur:float ->
  ?args:(string * string) list ->
  ?num_args:(string * float) list ->
  unit ->
  unit
(** Record a complete ('X') event for an interval the caller measured
    itself — e.g. a RAID service time spanning sleeps, where a lexical
    {!with_span} does not fit. *)

val event_count : t -> int
val dropped : t -> int

(** {1 Causal edges}

    The low-level half of {!Causal}; instrumentation outside [Wafl_obs]
    must go through the [Causal] wrappers ([wafl_lint] enforces this), so
    every causal edge in a trace comes from one audited API.  All of
    these are single branches unless the tracer was created with
    [~causal:true]. *)

type handoff
(** A captured causal context plus the flow id of its edge, carried
    through an asynchronous handoff (a queued message, a cleaner work
    item, a RAID request). *)

val no_handoff : handoff
(** The shared empty handoff; what {!capture} returns when causal mode is
    off, and a valid field initializer for requests that never cross a
    traced edge. *)

val capture : t -> kind:string -> handoff
(** Record the source half ('s' flow event, named [kind]) of a causal
    edge on the current fiber and return its context for the consumer. *)

val restore : t -> kind:string -> handoff -> unit
(** Record the destination half ('f') of the edge on the current fiber
    and activate the captured context.  [kind] must match the capture. *)

val with_root : t -> (unit -> 'a) -> 'a
(** Run the thunk under a fresh causal context (a new request root); the
    fiber's previous context is restored afterwards. *)

val current_ctx : t -> int
(** The current fiber's active context id; 0 when none or not causal. *)

val fiber_reset : t -> unit
(** Clear the current fiber's span stack and causal context.  Pooled
    worker fibers call this between messages so state leaked by one
    message cannot attach to the next. *)

(** {1 Export} *)

val export : t -> Buffer.t -> unit
(** Append the whole trace as Chrome trace-event JSON
    ([{"traceEvents": [...], ...}]), loadable in Perfetto or
    chrome://tracing.  Timestamps and durations are virtual microseconds,
    [tid] is the fiber id, and counter samples appear as 'C' events. *)

val export_string : t -> string

(** {1 Virtual-CPU profile} *)

val profile_rows : t -> (string * float * int) list
(** [(span-stack path, total virtual us charged, number of charges)],
    sorted by total descending (path ascending on ties).  Charges made
    outside any span are attributed to ["fiber:<label>"]. *)

val profile_table : ?top:int -> t -> string
(** Rendered top-[top] (default 20) rows of {!profile_rows} with a
    percentage-of-total column. *)
