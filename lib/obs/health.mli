(** Health watchdog: typed rules evaluated over {!Rollup} windows.

    The watchdog is not a fiber — it registers a {!Rollup.on_seal}
    callback and evaluates its rules synchronously whenever a window
    seals, emitting structured events into a bounded log.  Strictly
    observe-only: it never schedules work, consumes virtual time, or
    draws randomness, so attaching it cannot perturb a run.

    Rules read well-known rollup names (registered by the driver's
    telemetry wiring): counters [cp.b2b], [nvlog.hard_dwell_us],
    [flash.gc_stall_us], [rebuild.blocks], [trace.drops]; gauge
    [rebuild.active]; per-volume write-latency sketches from
    {!Rollup.vol_row.vr_lat}. *)

type severity = Info | Warn | Crit

type rule =
  | B2b_streak of { cps : int; windows : int }
      (** >= [cps] back-to-back CPs in each of the last [windows]
          consecutive windows. *)
  | Hard_dwell of { frac : float }
      (** NVLog hard-watermark dwell exceeds [frac] of the window. *)
  | Victim_p99 of { factor : float; baseline_windows : int; min_samples : int }
      (** A volume's write p99 exceeds [factor] x its own baseline (the
          merge of its previous [baseline_windows] windows); both sides
          need [min_samples] samples. *)
  | Gc_stall of { frac : float }
      (** Flash GC stall time exceeds [frac] of the window. *)
  | Rebuild_stall of { windows : int }
      (** RAID rebuild active but zero blocks repaired for [windows]
          consecutive windows. *)
  | Trace_drops  (** The user-attached trace ring dropped events. *)

val default_rules : rule list
(** Conservative thresholds: quiet on healthy fig4-9 runs. *)

type event = {
  ev_seq : int;  (** sealing window's grid index *)
  ev_time : float;  (** sealing window's end (virtual us) *)
  ev_severity : severity;
  ev_rule : string;  (** stable rule tag, e.g. ["b2b_streak"] *)
  ev_vol : int option;  (** offending volume, for per-volume rules *)
  ev_detail : string;
}

type t

val create : ?capacity:int -> rules:rule list -> Rollup.t -> t
(** Attach a watchdog to [rollup] (registers an [on_seal] callback).
    The event log holds at most [capacity] (default 256) events; later
    events are counted in {!dropped} and discarded. *)

val emit : t -> event -> unit
(** The single typed append into the event log.  All health events flow
    through here ([wafl_lint] flags calls outside health.ml). *)

val events : t -> event list
(** Oldest first. *)

val dropped : t -> int
val severity_str : severity -> string

val event_to_json : event -> Json.t
val event_of_json : Json.t -> event
