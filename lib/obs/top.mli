(** Operator view over {!Rollup} snapshots and {!Health} events: the
    rendering layer behind [wafl_sim top]. *)

val render : ?top_k:int -> Rollup.snapshot -> Health.event list -> string
(** Per-window fleet tables: a CP / fleet timeline (one row per sealed
    window), top-[top_k] (default 5) volumes of the newest window by
    shed, write p99 and backlog, and the health-event feed. *)

val to_json : Rollup.snapshot -> Health.event list -> Json.t
(** Self-describing export ([schema = "wafl-top/1"]). *)

val of_json : Json.t -> Rollup.snapshot * Health.event list
