module Engine = Wafl_sim.Engine
module Histogram = Wafl_util.Histogram

type config = {
  window_us : float;
  windows : int;
  vol_budget_bytes : int;
  lat_lo : float;
  lat_hi : float;
  lat_buckets_per_decade : int;
}

let default_config =
  {
    window_us = 100_000.0;
    windows = 8;
    vol_budget_bytes = 4096;
    lat_lo = 1.0;
    lat_hi = 1e7;
    lat_buckets_per_decade = 4;
  }

type vol_row = {
  vr_writes : int;
  vr_admitted : int;
  vr_throttled : int;
  vr_shed : int;
  vr_completed : int;
  vr_backlog : int;
  vr_lat : Histogram.t;
}

type window = {
  w_seq : int;
  w_start : float;
  w_end : float;
  w_counters : (string * float) list;
  w_gauges : (string * float) list;
  w_sketches : (string * Histogram.t) list;
  w_vols : (int * vol_row) list;
}

type snapshot = { s_window_us : float; s_windows : window list }

(* Open-window per-volume accumulator; sealed into an immutable vol_row. *)
type acc = {
  mutable a_writes : int;
  mutable a_admitted : int;
  mutable a_throttled : int;
  mutable a_shed : int;
  mutable a_completed : int;
  a_lat : Histogram.t;
}

(* Cumulative per-volume admitted/completed, persisted across windows so a
   quiet volume with outstanding backlog still gets a row. *)
type totals = { mutable t_admitted : int; mutable t_completed : int }

type t = {
  eng : Engine.t;
  cfg : config;
  mutable sources : (string * (unit -> float) * float ref) list;  (* name, read, prev *)
  mutable gauges : (string * (unit -> float)) list;
  mutable hsources : (string * (unit -> Histogram.t option) * Histogram.t option ref) list;
  mutable seal_cbs : (t -> window -> unit) list;  (* reverse registration order *)
  vols : (int, acc) Hashtbl.t;  (* open window *)
  totals : (int, totals) Hashtbl.t;
  mutable ring : window list;  (* newest first, length <= cfg.windows *)
  mutable cur_seq : int;  (* grid index of the open window *)
}

let mk_lat cfg =
  Histogram.create ~lo:cfg.lat_lo ~hi:cfg.lat_hi
    ~buckets_per_decade:cfg.lat_buckets_per_decade ()

let vol_window_bytes cfg =
  (* Sealed row: record header + 7 fields; plus the latency sketch. *)
  (8 * 8) + Histogram.approx_bytes (mk_lat cfg)

let seq_of cfg now = int_of_float (Float.floor (now /. cfg.window_us))

let create ?(config = default_config) eng =
  let cfg = config in
  if cfg.window_us <= 0.0 || cfg.windows <= 0 then invalid_arg "Rollup.create";
  if (cfg.windows + 1) * vol_window_bytes cfg > cfg.vol_budget_bytes then
    invalid_arg "Rollup.create: ring exceeds vol_budget_bytes";
  {
    eng;
    cfg;
    sources = [];
    gauges = [];
    hsources = [];
    seal_cbs = [];
    vols = Hashtbl.create 64;
    totals = Hashtbl.create 64;
    ring = [];
    cur_seq = seq_of cfg (Engine.now eng);
  }

let config t = t.cfg

let add_source t ~name f = t.sources <- t.sources @ [ (name, f, ref (f ())) ]
let add_gauge t ~name f = t.gauges <- t.gauges @ [ (name, f) ]
let add_hsource t ~name f = t.hsources <- t.hsources @ [ (name, f, ref None) ]
let on_seal t cb = t.seal_cbs <- cb :: t.seal_cbs

let by_name (a, _) (b, _) = compare a b

let seal_window t seq =
  let counters =
    List.map
      (fun (name, read, prev) ->
        let v = read () in
        let d = v -. !prev in
        prev := v;
        (name, d))
      t.sources
    |> List.sort by_name
  in
  let gauges = List.map (fun (name, read) -> (name, read ())) t.gauges |> List.sort by_name in
  let sketches =
    List.filter_map
      (fun (name, read, prev) ->
        match read () with
        | None -> None
        | Some h ->
            let d =
              match !prev with
              | None -> Histogram.copy h  (* instrument created after attach *)
              | Some p -> Histogram.delta ~baseline:p h
            in
            prev := Some (Histogram.copy h);
            Some (name, d))
      t.hsources
    |> List.sort by_name
  in
  let backlog vol =
    match Hashtbl.find_opt t.totals vol with
    | None -> 0
    | Some tot -> tot.t_admitted - tot.t_completed
  in
  let active =
    Hashtbl.fold (* lint-ok: sorted before use *)
      (fun vol a rows ->
        ( vol,
          {
            vr_writes = a.a_writes;
            vr_admitted = a.a_admitted;
            vr_throttled = a.a_throttled;
            vr_shed = a.a_shed;
            vr_completed = a.a_completed;
            vr_backlog = backlog vol;
            vr_lat = a.a_lat;
          } )
        :: rows)
      t.vols []
  in
  (* Quiet volumes with outstanding backlog still get a (zero-activity) row. *)
  let quiet =
    Hashtbl.fold (* lint-ok: sorted before use *)
      (fun vol _tot rows ->
        if Hashtbl.mem t.vols vol || backlog vol = 0 then rows
        else
          ( vol,
            {
              vr_writes = 0;
              vr_admitted = 0;
              vr_throttled = 0;
              vr_shed = 0;
              vr_completed = 0;
              vr_backlog = backlog vol;
              vr_lat = mk_lat t.cfg;
            } )
          :: rows)
      t.totals []
  in
  let vols = List.sort (fun (a, _) (b, _) -> compare a b) (active @ quiet) in
  Hashtbl.reset t.vols;
  let w =
    {
      w_seq = seq;
      w_start = float_of_int seq *. t.cfg.window_us;
      w_end = float_of_int (seq + 1) *. t.cfg.window_us;
      w_counters = counters;
      w_gauges = gauges;
      w_sketches = sketches;
      w_vols = vols;
    }
  in
  t.ring <- w :: t.ring;
  (if List.length t.ring > t.cfg.windows then
     t.ring <- List.filteri (fun i _ -> i < t.cfg.windows) t.ring);
  List.iter (fun cb -> cb t w) (List.rev t.seal_cbs)

(* Lazy sealing: called from every write-side entry point.  The rollup's
   tables are touched by every client fiber, so declare them shared. *)
let roll t =
  Engine.probe_atomic t.eng ~shared:"obs.rollup";
  let now = Engine.now t.eng in
  let due = seq_of t.cfg now in
  while t.cur_seq < due do
    seal_window t t.cur_seq;
    t.cur_seq <- t.cur_seq + 1
  done

let acc_of t vol =
  match Hashtbl.find_opt t.vols vol with
  | Some a -> a
  | None ->
      let a =
        { a_writes = 0; a_admitted = 0; a_throttled = 0; a_shed = 0; a_completed = 0;
          a_lat = mk_lat t.cfg }
      in
      Hashtbl.replace t.vols vol a;
      a

let totals_of t vol =
  match Hashtbl.find_opt t.totals vol with
  | Some tot -> tot
  | None ->
      let tot = { t_admitted = 0; t_completed = 0 } in
      Hashtbl.replace t.totals vol tot;
      tot

let observe_write t ~vol lat =
  roll t;
  let a = acc_of t vol in
  a.a_writes <- a.a_writes + 1;
  Histogram.add a.a_lat lat

let count t ~vol kind =
  roll t;
  let a = acc_of t vol in
  (match kind with
  | `Admitted ->
      a.a_admitted <- a.a_admitted + 1;
      let tot = totals_of t vol in
      tot.t_admitted <- tot.t_admitted + 1
  | `Throttled -> a.a_throttled <- a.a_throttled + 1
  | `Shed -> a.a_shed <- a.a_shed + 1
  | `Completed ->
      a.a_completed <- a.a_completed + 1;
      let tot = totals_of t vol in
      tot.t_completed <- tot.t_completed + 1);
  ()

let recent t n = List.filteri (fun i _ -> i < n) t.ring

let snapshot t =
  roll t;
  { s_window_us = t.cfg.window_us; s_windows = List.rev t.ring }

(* --- JSON ---------------------------------------------------------------- *)

module J = Json

let jget k j =
  match J.member k j with Some v -> v | None -> invalid_arg ("Rollup: missing key " ^ k)

let jnum k j =
  match J.to_float (jget k j) with
  | Some f -> f
  | None -> invalid_arg ("Rollup: non-numeric key " ^ k)

let jlist k j =
  match J.to_list (jget k j) with
  | Some l -> l
  | None -> invalid_arg ("Rollup: non-array key " ^ k)

let jfloat j = match J.to_float j with Some f -> f | None -> invalid_arg "Rollup: non-number"

(* Serialized numbers are pre-rounded to the printer's 3-decimal
   resolution, so serialize(parse(s)) = s byte-for-byte: without this, a
   near-integral accumulation like 444.0000001 prints as "444.000" but
   re-parses to 444.0 and re-prints as "444". *)
let jnum3 v = J.Num (Float.round (v *. 1000.0) /. 1000.0)

let hist_to_json h =
  J.Obj
    [
      ("lo", jnum3 (Histogram.lo h));
      ("bpd", J.Num (float_of_int (Histogram.buckets_per_decade h)));
      ("counts", J.Arr (Array.to_list (Array.map (fun c -> J.Num (float_of_int c)) (Histogram.counts h))));
      ("sum", jnum3 (Histogram.sum h));
      ("max", jnum3 (Histogram.max_seen h));
    ]

let hist_of_json j =
  let counts =
    jlist "counts" j |> List.map (fun c -> int_of_float (jfloat c)) |> Array.of_list
  in
  Histogram.of_counts ~lo:(jnum "lo" j)
    ~buckets_per_decade:(int_of_float (jnum "bpd" j))
    ~counts ~sum:(jnum "sum" j) ~max_seen:(jnum "max" j)

let kv_to_json kvs = J.Obj (List.map (fun (k, v) -> (k, jnum3 v)) kvs)
let kv_of_json j = match j with J.Obj kvs -> List.map (fun (k, v) -> (k, jfloat v)) kvs | _ -> []

let vol_to_json (vol, r) =
  J.Obj
    [
      ("vol", J.Num (float_of_int vol));
      ("writes", J.Num (float_of_int r.vr_writes));
      ("admitted", J.Num (float_of_int r.vr_admitted));
      ("throttled", J.Num (float_of_int r.vr_throttled));
      ("shed", J.Num (float_of_int r.vr_shed));
      ("completed", J.Num (float_of_int r.vr_completed));
      ("backlog", J.Num (float_of_int r.vr_backlog));
      ("lat", hist_to_json r.vr_lat);
    ]

let vol_of_json j =
  let i k = int_of_float (jnum k j) in
  ( i "vol",
    {
      vr_writes = i "writes";
      vr_admitted = i "admitted";
      vr_throttled = i "throttled";
      vr_shed = i "shed";
      vr_completed = i "completed";
      vr_backlog = i "backlog";
      vr_lat = hist_of_json (jget "lat" j);
    } )

let window_to_json w =
  J.Obj
    [
      ("seq", J.Num (float_of_int w.w_seq));
      ("start", jnum3 w.w_start);
      ("end", jnum3 w.w_end);
      ("counters", kv_to_json w.w_counters);
      ("gauges", kv_to_json w.w_gauges);
      ("sketches", J.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) w.w_sketches));
      ("vols", J.Arr (List.map vol_to_json w.w_vols));
    ]

let window_of_json j =
  {
    w_seq = int_of_float (jnum "seq" j);
    w_start = jnum "start" j;
    w_end = jnum "end" j;
    w_counters = kv_of_json (jget "counters" j);
    w_gauges = kv_of_json (jget "gauges" j);
    w_sketches =
      (match jget "sketches" j with
      | J.Obj kvs -> List.map (fun (k, h) -> (k, hist_of_json h)) kvs
      | _ -> []);
    w_vols = jlist "vols" j |> List.map vol_of_json;
  }

let snapshot_to_json s =
  J.Obj
    [
      ("schema", J.Str "wafl-rollup/1");
      ("window_us", jnum3 s.s_window_us);
      ("windows", J.Arr (List.map window_to_json s.s_windows));
    ]

let snapshot_of_json j =
  {
    s_window_us = jnum "window_us" j;
    s_windows = jlist "windows" j |> List.map window_of_json;
  }

(* --- deterministic shard merge ------------------------------------------- *)

let merge_kvs a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k v
      | Some v0 -> Hashtbl.replace tbl k (v0 +. v))
    b;
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] (* lint-ok: sorted before use *)
  |> List.sort by_name

let merge_sketches a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, h) -> Hashtbl.replace tbl k h) a;
  List.iter
    (fun (k, h) ->
      match Hashtbl.find_opt tbl k with
      | None -> Hashtbl.replace tbl k h
      | Some h0 -> Hashtbl.replace tbl k (Histogram.merge h0 h))
    b;
  Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] (* lint-ok: sorted before use *)
  |> List.sort by_name

let merge_windows a b =
  {
    a with
    w_counters = merge_kvs a.w_counters b.w_counters;
    w_gauges = merge_kvs a.w_gauges b.w_gauges;
    w_sketches = merge_sketches a.w_sketches b.w_sketches;
    w_vols = List.sort (fun (x, _) (y, _) -> compare x y) (a.w_vols @ b.w_vols);
  }

let merge_snapshots snaps =
  match snaps with
  | [] -> { s_window_us = 0.0; s_windows = [] }
  | (_, first) :: rest ->
      List.iter
        (fun (_, s) ->
          if s.s_window_us <> first.s_window_us then
            invalid_arg "Rollup.merge_snapshots: window_us mismatch")
        rest;
      let namespaced (ns, s) =
        List.map
          (fun w ->
            { w with w_vols = List.map (fun (v, r) -> ((ns lsl 16) lor v, r)) w.w_vols })
          s.s_windows
      in
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (ns, s) ->
          List.iter
            (fun w ->
              match Hashtbl.find_opt tbl w.w_seq with
              | None -> Hashtbl.replace tbl w.w_seq w
              | Some w0 -> Hashtbl.replace tbl w.w_seq (merge_windows w0 w))
            (namespaced (ns, s)))
        snaps;
      let windows =
        Hashtbl.fold (fun _ w l -> w :: l) tbl [] (* lint-ok: sorted before use *)
        |> List.sort (fun a b -> compare a.w_seq b.w_seq)
      in
      { s_window_us = first.s_window_us; s_windows = windows }
