(** Minimal deterministic JSON: emitter for trace export and the benchmark
    harness, parser for loading traces back in tests.  Byte-stable output:
    the same value always prints the same string (see {!num_str}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_str : float -> string
(** Canonical float image: integral values print with no fractional part,
    everything else with three decimals. *)

val escape_into : Buffer.t -> string -> unit
(** Append the JSON-escaped body of a string (no surrounding quotes). *)

val str_into : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a position message. *)

(** {1 Accessors} *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
