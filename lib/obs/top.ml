module Table = Wafl_util.Table
module Histogram = Wafl_util.Histogram

let counter w name =
  match List.assoc_opt name w.Rollup.w_counters with Some v -> v | None -> 0.0

(* Fleet-level write-latency sketch for a window: the registered
   [op.e2e_us.write] delta when present, else the merge of the per-volume
   sketches. *)
let window_lat w =
  match List.assoc_opt "op.e2e_us.write" w.Rollup.w_sketches with
  | Some h -> Some h
  | None -> (
      match w.Rollup.w_vols with
      | [] -> None
      | (_, r0) :: rest ->
          let m = Histogram.copy r0.Rollup.vr_lat in
          List.iter (fun (_, r) -> Histogram.merge_into ~dst:m r.Rollup.vr_lat) rest;
          Some m)

let vol_sum f w = List.fold_left (fun acc (_, r) -> acc + f r) 0 w.Rollup.w_vols

let timeline snap =
  let tbl =
    Table.create
      ~headers:[ "window"; "t0_ms"; "vols"; "writes"; "shed"; "p99_us"; "backlog"; "cps"; "b2b" ]
  in
  List.iter
    (fun w ->
      let p99 =
        match window_lat w with
        | Some h when Histogram.count h > 0 -> Printf.sprintf "%.0f" (Histogram.percentile h 99.0)
        | _ -> "-"
      in
      Table.add_row tbl
        [
          string_of_int w.Rollup.w_seq;
          Printf.sprintf "%.1f" (w.Rollup.w_start /. 1000.0);
          string_of_int (List.length w.Rollup.w_vols);
          string_of_int (vol_sum (fun r -> r.Rollup.vr_writes) w);
          string_of_int (vol_sum (fun r -> r.Rollup.vr_shed) w);
          p99;
          string_of_int (vol_sum (fun r -> r.Rollup.vr_backlog) w);
          Printf.sprintf "%.0f" (counter w "cp.count");
          Printf.sprintf "%.0f" (counter w "cp.b2b");
        ])
    snap.Rollup.s_windows;
  Table.render tbl

let top_vols ~top_k ~metric ~label w =
  let ranked =
    List.filter (fun (_, r) -> metric r > 0.0) w.Rollup.w_vols
    |> List.stable_sort (fun (va, a) (vb, b) ->
           match compare (metric b) (metric a) with 0 -> compare va vb | c -> c)
    |> List.filteri (fun i _ -> i < top_k)
  in
  if ranked = [] then ""
  else begin
    (* The ranking metric leads; standard columns that duplicate it are
       dropped (e.g. the by-shed table has no second "shed" column). *)
    let extras =
      List.filter
        (fun (h, _) -> h <> label)
        [
          ("writes", fun r -> string_of_int r.Rollup.vr_writes);
          ("shed", fun r -> string_of_int r.Rollup.vr_shed);
          ("backlog", fun r -> string_of_int r.Rollup.vr_backlog);
        ]
    in
    let tbl = Table.create ~headers:("vol" :: label :: List.map fst extras) in
    List.iter
      (fun (vol, r) ->
        Table.add_row tbl
          (string_of_int vol
          :: Printf.sprintf "%.0f" (metric r)
          :: List.map (fun (_, f) -> f r) extras))
      ranked;
    Printf.sprintf "top volumes by %s (window %d):\n%s\n" label w.Rollup.w_seq
      (Table.render tbl)
  end

let health_feed events =
  if events = [] then "health: no events\n"
  else begin
    let tbl = Table.create ~headers:[ "t_ms"; "sev"; "rule"; "vol"; "detail" ] in
    List.iter
      (fun ev ->
        Table.add_row tbl
          [
            Printf.sprintf "%.1f" (ev.Health.ev_time /. 1000.0);
            Health.severity_str ev.Health.ev_severity;
            ev.Health.ev_rule;
            (match ev.Health.ev_vol with Some v -> string_of_int v | None -> "-");
            ev.Health.ev_detail;
          ])
      events;
    Printf.sprintf "health events (%d):\n%s" (List.length events) (Table.render tbl)
  end

let render ?(top_k = 5) snap events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "fleet timeline (%d windows x %.0fms):\n"
       (List.length snap.Rollup.s_windows)
       (snap.Rollup.s_window_us /. 1000.0));
  Buffer.add_string buf (timeline snap);
  (match List.rev snap.Rollup.s_windows with
  | [] -> ()
  | newest :: _ ->
      Buffer.add_string buf
        (top_vols ~top_k ~metric:(fun r -> float_of_int r.Rollup.vr_shed) ~label:"shed" newest);
      Buffer.add_string buf
        (top_vols ~top_k
           ~metric:(fun r ->
             if Histogram.count r.Rollup.vr_lat = 0 then 0.0
             else Histogram.percentile r.Rollup.vr_lat 99.0)
           ~label:"p99_us" newest);
      Buffer.add_string buf
        (top_vols ~top_k
           ~metric:(fun r -> float_of_int r.Rollup.vr_backlog)
           ~label:"backlog" newest));
  Buffer.add_string buf (health_feed events);
  Buffer.contents buf

module J = Json

let to_json snap events =
  J.Obj
    [
      ("schema", J.Str "wafl-top/1");
      ("snapshot", Rollup.snapshot_to_json snap);
      ("events", J.Arr (List.map Health.event_to_json events));
    ]

let of_json j =
  let get k = match J.member k j with Some v -> v | None -> invalid_arg ("Top: missing " ^ k) in
  (match J.to_str (get "schema") with
  | Some "wafl-top/1" -> ()
  | _ -> invalid_arg "Top.of_json: unknown schema");
  let snap = Rollup.snapshot_of_json (get "snapshot") in
  let events =
    match J.to_list (get "events") with
    | Some l -> List.map Health.event_of_json l
    | None -> invalid_arg "Top: events"
  in
  (snap, events)
