(** Bounded ring-buffer trace sink.

    When full, the oldest events are overwritten and counted; the
    exporter reports the drop count so a truncated trace is never
    mistaken for a complete one.  [record] is the single mutation point
    of the tracing subsystem — code outside [Wafl_obs] must emit through
    the {!Trace} API (enforced by [wafl_lint]). *)

type ev = {
  ph : char;
      (** 'X' complete span, 'i' instant, 'C' counter sample, 's'/'f'
          flow start/finish (causal edge) *)
  cat : string;
  name : string;
  ts : float;  (** virtual microseconds *)
  dur : float;  (** 'X': span duration; 'C': sampled value *)
  tid : int;  (** fiber id; -1 outside fiber context *)
  flow : int;  (** 's'/'f': edge id pairing the two halves; 0 = none *)
  args : (string * string) list;
  num_args : (string * float) list;
}

type t

val create : capacity:int -> t
val record : t -> ev -> unit
val length : t -> int
val dropped : t -> int

val iter : t -> (ev -> unit) -> unit
(** Visit retained events oldest to newest. *)

val clear : t -> unit
