(* Typed metrics registry: counters, gauges and virtual-time histograms.

   This subsumes the loose end-of-run reads of [Wafl_fs.Counters]: a
   component registers its instruments once at construction time and
   updates them on the hot path with a single mutation (no hashing), and
   the tracer periodically samples every counter and gauge into the trace
   sink as a Chrome counter-event timeseries.  All read-side iteration is
   name-sorted so nothing observable depends on hash order. *)

type counter = { c_name : string; mutable c_value : float }
type gauge = { g_name : string; mutable g_value : float }
type histo = { h_name : string; h_hist : Wafl_util.Histogram.t }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 32; histos = Hashtbl.create 32 }

(* One registry shared by code that accumulates across runs (the bench
   harness reads per-figure virtual-time totals from here). *)
let default = create ()

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0.0 } in
      Hashtbl.add t.counters name c;
      c

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.add t.gauges name g;
      g

let histogram ?(lo = 0.01) ?(hi = 1e9) t name =
  match Hashtbl.find_opt t.histos name with
  | Some h -> h
  | None ->
      let h = { h_name = name; h_hist = Wafl_util.Histogram.create ~lo ~hi () } in
      Hashtbl.add t.histos name h;
      h

(* --- write side (hot path: one mutation, no lookup) ---------------------- *)

let incr c = c.c_value <- c.c_value +. 1.0
let add c n = c.c_value <- c.c_value +. float_of_int n
let addf c d = c.c_value <- c.c_value +. d
let set g v = g.g_value <- v
let observe h v = Wafl_util.Histogram.add h.h_hist v

(* --- read side (sorted, deterministic) ----------------------------------- *)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c_value | None -> 0.0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.g_value | None -> 0.0

let histo t name = Option.map (fun h -> h.h_hist) (Hashtbl.find_opt t.histos name)

let sorted_of tbl value =
  (* lint-ok: sorted before use. *)
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_of t.counters (fun c -> c.c_value)
let gauges t = sorted_of t.gauges (fun g -> g.g_value)
let histograms t = sorted_of t.histos (fun h -> h.h_hist)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histos
