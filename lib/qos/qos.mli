(** Per-volume quality of service: token-bucket rate limits with a
    bounded admission queue and deterministic shedding.

    Each volume (tenant) gets its own {!Token_bucket} with the same
    configured rate.  {!admit} classifies an arriving op: run now, run
    after a deterministic queueing delay (the bucket's debt), or shed
    because the queue is full.  Everything is a pure function of the
    arrival sequence, so QoS-on runs replay byte-identically per seed.

    Fair CP admission lives in {!Fair} (used by the CP engine via
    [Walloc.config.fair_cp]); this module covers the arrival side. *)

type config = {
  rate_per_s : float;  (** per-volume sustained admission rate (ops per virtual second) *)
  burst : float;  (** bucket capacity: ops admitted back-to-back after idle *)
  queue_depth : int;  (** max ops queued (delayed) per volume before shedding *)
}

val default_config : config
(** 50 k ops/s per volume, burst 64, queue depth 256. *)

type t

val create : ?eng:Wafl_sim.Engine.t -> config -> t
(** [eng] is the sanitizer probe target: when given, every {!admit}
    declares its touch of the shared bucket/counter state
    ([probe_atomic], never reported — admission order is fixed by the
    deterministic arrival process, not by affinity ownership).  Omit it
    in engine-less unit tests. *)

val admit : t -> vol:int -> now:float -> [ `Admit | `Delay of float | `Shed ]
(** Classify an op arriving at virtual time [now] for volume [vol].
    [`Delay d] reserves the slot — the caller must start the op after [d]
    virtual µs, not re-ask. *)

val admitted : t -> int
val throttled : t -> int
(** Ops admitted with a [`Delay]. *)

val shed : t -> int

val vol_stats : t -> vol:int -> (int * int * int) option
(** [(admitted, throttled, shed)] for one volume, if it has ever seen an
    arrival — the per-volume feed for telemetry rollups. *)

val bucket_state : t -> vol:int -> (float * float) option
(** [(tokens, last_update)] of the volume's bucket, if it exists yet —
    for the same-seed identity tests. *)
