type config = { rate_per_s : float; burst : float; queue_depth : int }

let default_config = { rate_per_s = 50_000.0; burst = 64.0; queue_depth = 256 }

type vol_acc = { mutable va_admitted : int; mutable va_throttled : int; mutable va_shed : int }

type t = {
  cfg : config;
  eng : Wafl_sim.Engine.t option; (* sanitizer probe target; None in unit tests *)
  buckets : (int, Token_bucket.t) Hashtbl.t; (* vol id -> bucket; never iterated *)
  vstats : (int, vol_acc) Hashtbl.t; (* vol id -> counters; never iterated *)
  mutable admitted : int;
  mutable throttled : int;
  mutable shed : int;
}

let create ?eng cfg =
  if cfg.queue_depth < 0 then invalid_arg "Qos.create: negative queue depth";
  {
    cfg;
    eng;
    buckets = Hashtbl.create 16;
    vstats = Hashtbl.create 16;
    admitted = 0;
    throttled = 0;
    shed = 0;
  }

let bucket t vol =
  match Hashtbl.find_opt t.buckets vol with
  | Some b -> b
  | None ->
      let b = Token_bucket.create ~rate_per_s:t.cfg.rate_per_s ~burst:t.cfg.burst in
      Hashtbl.add t.buckets vol b;
      b

let admit t ~vol ~now =
  (* The bucket table, each bucket's token/debt state and the admission
     counters are touched by every arrival fiber: in the real system an
     atomic per-volume structure, declared as such to the sanitizer. *)
  (match t.eng with
  | Some e -> Wafl_sim.Engine.probe_atomic e ~shared:"qos.buckets"
  | None -> ());
  let va =
    match Hashtbl.find_opt t.vstats vol with
    | Some va -> va
    | None ->
        let va = { va_admitted = 0; va_throttled = 0; va_shed = 0 } in
        Hashtbl.add t.vstats vol va;
        va
  in
  match Token_bucket.reserve (bucket t vol) ~now ~max_debt:(float_of_int t.cfg.queue_depth) with
  | Token_bucket.Admit ->
      t.admitted <- t.admitted + 1;
      va.va_admitted <- va.va_admitted + 1;
      `Admit
  | Token_bucket.Delay d ->
      t.throttled <- t.throttled + 1;
      va.va_throttled <- va.va_throttled + 1;
      `Delay d
  | Token_bucket.Shed ->
      t.shed <- t.shed + 1;
      va.va_shed <- va.va_shed + 1;
      `Shed

let admitted t = t.admitted
let throttled t = t.throttled
let shed t = t.shed

let vol_stats t ~vol =
  Option.map
    (fun va -> (va.va_admitted, va.va_throttled, va.va_shed))
    (Hashtbl.find_opt t.vstats vol)
let bucket_state t ~vol = Option.map Token_bucket.state (Hashtbl.find_opt t.buckets vol)
