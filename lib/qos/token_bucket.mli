(** Deterministic token bucket with bounded negative balance (GCRA
    style).

    The bucket refills at [rate_per_s] tokens per virtual second up to
    [burst].  {!reserve} takes one token; a negative balance represents
    ops already admitted but delayed into the future, so its magnitude is
    the depth of the admission queue.  [max_debt] bounds that depth:
    beyond it the op is shed with no state change.  All state is a pure
    function of the reservation sequence — same arrivals, same
    decisions. *)

type t

type decision =
  | Admit  (** run now *)
  | Delay of float  (** run after this many virtual µs (slot reserved) *)
  | Shed  (** queue full; dropped, no state change *)

val create : rate_per_s:float -> burst:float -> t
(** Starts full.  Requires [rate_per_s > 0] and [burst >= 1]. *)

val reserve : t -> now:float -> max_debt:float -> decision
(** Refill to [now], then take one token. *)

val tokens : t -> float
val last_update : t -> float

val state : t -> float * float
(** [(tokens, last_update)] — the full observable state, for the
    same-seed identity tests. *)
