val interleave : 'a list list -> 'a list
(** Round-robin across the lists — one element from each non-empty list
    per round, preserving each list's internal order.  The CP engine runs
    per-volume cleaning work through this so one hot volume cannot
    monopolize the front of a checkpoint. *)
