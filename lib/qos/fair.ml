(* Round-robin interleave: one element from each non-empty list per
   round, preserving each list's internal order.  Used by the CP engine
   to admit cleaning work fairly across volumes. *)
let interleave lists =
  let rec go acc lists =
    let lists = List.filter (fun l -> l <> []) lists in
    if lists = [] then List.rev acc
    else
      let acc, rests =
        List.fold_left
          (fun (acc, rests) l ->
            match l with [] -> (acc, rests) | x :: tl -> (x :: acc, tl :: rests))
          (acc, []) lists
      in
      go acc (List.rev rests)
  in
  go [] lists
