type t = {
  rate : float; (* tokens per virtual µs *)
  burst : float;
  mutable tokens : float;
  mutable last : float; (* virtual time of the last refill *)
}

type decision = Admit | Delay of float | Shed

let create ~rate_per_s ~burst =
  if rate_per_s <= 0.0 then invalid_arg "Token_bucket.create: rate must be positive";
  if burst < 1.0 then invalid_arg "Token_bucket.create: burst must be at least one op";
  { rate = rate_per_s /. 1_000_000.0; burst; tokens = burst; last = 0.0 }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

(* GCRA-style reservation: tokens may go negative, each unit of debt
   standing for one op already admitted but scheduled in the future.  The
   debt magnitude is therefore the queue depth, which [max_debt] bounds:
   a reservation that would exceed it is shed without touching state, so
   the decision sequence is a pure function of the arrival sequence. *)
let reserve t ~now ~max_debt =
  refill t ~now;
  if t.tokens -. 1.0 < -.max_debt then Shed
  else begin
    t.tokens <- t.tokens -. 1.0;
    if t.tokens >= 0.0 then Admit else Delay (-.t.tokens /. t.rate)
  end

let tokens t = t.tokens
let last_update t = t.last
let state t = (t.tokens, t.last)
