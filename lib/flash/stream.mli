(** One open erase block accepting page appends for a write stream.

    A stream is a temperature/object class on the host side (hot metafile
    pages vs cold user data), or the FTL's internal GC relocation stream.
    Pages appended through the same stream land in the same erase block,
    so co-streamed pages die together — the multi-stream SSD contract. *)

type t

val make : int -> t
val id : t -> int

val block : t -> int
(** Currently open erase block, [-1] when none. *)

val has_block : t -> bool
val open_block : t -> block:int -> now:float -> unit
val close : t -> unit

val append : t -> int
(** Take the next page offset within the open block and advance. *)

val full : t -> pages_per_block:int -> bool

val appended : t -> int
(** Lifetime pages appended through this stream. *)
