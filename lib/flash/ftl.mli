(** Page-mapped flash translation layer for one RAID group.

    A timing/wear/accounting model of a NAND device (DESIGN.md §4.13):
    payload content stays in {!Wafl_storage.Disk}'s block store while this
    layer tracks which physical flash page each logical page lives in,
    runs a background garbage-collection fiber over erase blocks, and
    charges program/read/erase time plus GC-induced host stalls in
    virtual time.  All behavior is seeded-deterministic: same seed and
    same host write history yield an identical {!signature}. *)

type victim_policy =
  | Greedy  (** victim = closed block with fewest valid pages *)
  | Cost_benefit  (** weigh utilization against block age (LFS-style) *)

type config = {
  pages_per_block : int;  (** erase-block size in pages (one page = one VBN) *)
  logical_capacity : float;
      (** advertised device capacity as a fraction of the lpn address
          space (default 1.0).  Below 1.0 the device is thin-provisioned:
          the "device fill" seen by the FTL is [valid / advertised]
          pages, decoupled from the file system's occupancy of the VBN
          space — how the flash experiments sweep fill without driving
          the aggregate itself to the allocator's limits.  Valid data
          beyond the advertised capacity is operator overcommit: the
          device runs out of free blocks and stalls the host. *)
  op_ratio : float;  (** over-provisioned spare capacity, fraction of logical *)
  gc_low : float;
      (** GC wakes when free blocks fall below this fraction of the spare pool *)
  gc_high : float;  (** ... and parks again at this fraction *)
  policy : victim_policy;
  streams : int;  (** host write streams; an internal GC stream is added *)
  prefill : float;
      (** fraction of the logical space mapped as data at create — the
          "device fill" axis of the flash experiments.  A non-zero
          prefill also seasons the device to steady state: deterministic
          random churn within the aged span drains the free pool to the
          GC-idle threshold, as on a long-written drive *)
  page_program_us : float;
  page_read_us : float;
  block_erase_us : float;
  seed : int;
}

val default_config : config

type t

val create :
  ?obs:Wafl_obs.Trace.t -> Wafl_sim.Engine.t -> cfg:config -> lpns:int -> rg:int -> t
(** [create eng ~cfg ~lpns ~rg] sizes the device at
    [ceil(lpns * logical_capacity / pages_per_block) * (1 + op_ratio)]
    erase blocks (with a small floor so every stream can hold a block
    open), applies [cfg.prefill], and spawns the daemon GC fiber.  Must
    be called with [eng] not yet running or from fiber context. *)

val host_write : t -> (int * int) list -> unit
(** [host_write t pairs] programs each [(lpn, stream)] pair in order from
    the calling service fiber: stalls when the device is out of free
    blocks, queues behind any in-flight GC erase (the die is busy — the
    steady-state GC push-back the experiments measure), then sleeps the
    aggregate program time.  Out-of-range stream ids are clamped. *)

val trim : t -> lpn:int -> unit
(** The file system freed this logical page: drop the mapping so GC need
    not relocate it.  Pure bookkeeping, callable outside fiber context. *)

val preload : t -> int list -> unit
(** Map pages with no virtual-time charge — create-time prefill and
    crash-recovery rebuild.  Callable outside fiber context. *)

(** {2 Introspection} *)

val config : t -> config
val lpn_count : t -> int
val block_count : t -> int

val logical_pages : t -> int
(** Advertised device capacity in pages; device fill is
    [valid_pages / logical_pages]. *)

val stream_appended : t -> int array
(** Lifetime pages appended per stream (index [streams] is the internal
    GC relocation stream). *)

val host_pages : t -> int
val gc_pages : t -> int
val erases : t -> int
val gc_runs : t -> int

val gc_stall_us : t -> float
(** Virtual µs host writers spent blocked by the GC: waiting out an
    in-flight erase, or parked on an exhausted free pool. *)

val trims : t -> int
val free_blocks : t -> int
val valid_pages : t -> int
val max_wear : t -> int

val waf : t -> float
(** Measured write amplification, [(host + gc pages) / host pages];
    [1.0] before any host write. *)

val block_of_lpn : t -> int -> int
(** Erase block currently holding [lpn], [-1] if unmapped. *)

val signature : t -> string
(** Deterministic digest of the full L2P table, wear array and WAF
    counters; the replay-identity tests compare runs by it. *)
