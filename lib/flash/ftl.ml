open Wafl_sim

(* Page-mapped flash translation layer for one RAID group (DESIGN.md
   §4.13).  The FTL is a timing/wear/accounting model: payload content
   stays in the Disk block store, while this layer tracks which physical
   flash page each logical page (one per VBN of the group) lives in,
   runs a background garbage-collection fiber over erase blocks, and
   charges program/read/erase time plus GC-induced host stalls in
   virtual time.  Everything is seeded-deterministic: victim tie-breaks
   come from a {!Wafl_util.Rng} derived from the config seed, all scans
   are index-ordered, and all waits are FIFO. *)

type victim_policy = Greedy | Cost_benefit

type config = {
  pages_per_block : int;  (* erase-block size in (4 KiB) pages *)
  logical_capacity : float;  (* advertised capacity, fraction of the lpn space *)
  op_ratio : float;  (* over-provisioned spare capacity, fraction of logical *)
  gc_low : float;  (* GC starts when free blocks fall below this fraction of spare *)
  gc_high : float;  (* ... and runs until free blocks reach this fraction *)
  policy : victim_policy;
  streams : int;  (* host write streams; the FTL adds an internal GC stream *)
  prefill : float;  (* fraction of logical pages mapped at create (device aging) *)
  page_program_us : float;
  page_read_us : float;
  block_erase_us : float;
  seed : int;
}

let default_config =
  {
    pages_per_block = 64;
    logical_capacity = 1.0;
    op_ratio = 0.10;
    gc_low = 0.50;
    gc_high = 0.75;
    policy = Greedy;
    streams = 2;
    prefill = 0.0;
    page_program_us = 8.0;
    page_read_us = 4.0;
    block_erase_us = 400.0;
    seed = 1;
  }

(* Free blocks only GC may take: the relocation stream must always be
   able to open a block, or a full device deadlocks against its own
   cleaner. *)
let gc_reserve = 2

type t = {
  eng : Engine.t;
  cfg : config;
  rg : int;
  shared : string;  (* sanitizer family for every state touch *)
  obs : Wafl_obs.Trace.t;
  obs_on : bool;
  lpns : int;
  lblocks : int;  (* advertised (logical) capacity in erase blocks *)
  nblocks : int;
  l2p : int array;  (* lpn -> ppn, -1 unmapped *)
  p2l : int array;  (* ppn -> lpn while valid, -1 otherwise *)
  valid : int array;  (* per block: count of valid pages *)
  wear : int array;  (* per block: erase count *)
  btime : float array;  (* per block: virtual time of last open (CB age) *)
  closed : bool array;  (* per block: fully programmed, GC candidate *)
  free_q : int Queue.t;  (* erased blocks, FIFO for natural wear rotation *)
  mutable free_count : int;
  streams_tbl : Stream.t array;  (* cfg.streams host streams + 1 GC stream *)
  rng : Wafl_util.Rng.t;
  host_q : Sync.Waitq.t;  (* host writers stalled on free space *)
  gc_q : Sync.Waitq.t;  (* the GC fiber parks here above the high mark *)
  mutable host_pages : int;
  mutable gc_pages : int;
  mutable erases : int;
  mutable gc_runs : int;
  mutable gc_stall_us : float;
  mutable erase_until : float;  (* host programs blocked while an erase runs *)
  mutable trims : int;
  m_host : Wafl_obs.Metrics.counter;
  m_gc : Wafl_obs.Metrics.counter;
  m_erase : Wafl_obs.Metrics.counter;
  m_runs : Wafl_obs.Metrics.counter;
  m_stall : Wafl_obs.Metrics.counter;
}

let probe t = Engine.probe_atomic t.eng ~shared:t.shared
let spare t = t.nblocks - t.lblocks
let low_blocks t = max (gc_reserve + 1) (int_of_float (t.cfg.gc_low *. float_of_int (spare t)))

let high_blocks t =
  max (low_blocks t + 1) (int_of_float (t.cfg.gc_high *. float_of_int (spare t)))

let gc_stream t = t.streams_tbl.(t.cfg.streams)

(* --- block lifecycle ----------------------------------------------------- *)

let take_free t ~for_gc =
  let floor = if for_gc then 0 else gc_reserve in
  if t.free_count <= floor then None
  else begin
    let b = Queue.pop t.free_q in
    t.free_count <- t.free_count - 1;
    Some b
  end

let close_block t (s : Stream.t) =
  if Stream.has_block s then begin
    let b = Stream.block s in
    t.closed.(b) <- true;
    t.btime.(b) <- Engine.now t.eng;
    Stream.close s
  end

(* Append one page through [s]; [None] when no free block is available to
   open (host streams keep their hands off the GC reserve).  The open
   blocks and the free pool are shared between every RAID service fiber
   and the GC fiber; the real device serializes them behind its internal
   allocation lock. *)
let try_append t (s : Stream.t) ~for_gc =
  probe t;
  if Stream.full s ~pages_per_block:t.cfg.pages_per_block then close_block t s;
  (if not (Stream.has_block s) then
     match take_free t ~for_gc with
     | Some b -> Stream.open_block s ~block:b ~now:(Engine.now t.eng)
     | None -> ());
  if not (Stream.has_block s) then None
  else begin
    let off = Stream.append s in
    Some ((Stream.block s * t.cfg.pages_per_block) + off)
  end

let invalidate t lpn =
  let old = t.l2p.(lpn) in
  if old >= 0 then begin
    t.p2l.(old) <- -1;
    let b = old / t.cfg.pages_per_block in
    t.valid.(b) <- t.valid.(b) - 1
  end

let map t lpn ppn =
  invalidate t lpn;
  t.l2p.(lpn) <- ppn;
  t.p2l.(ppn) <- lpn;
  let b = ppn / t.cfg.pages_per_block in
  t.valid.(b) <- t.valid.(b) + 1

(* --- victim selection ---------------------------------------------------- *)

(* Deterministic scan over closed blocks; ties are broken by the seeded
   RNG (same seed, same history -> same victim).  Greedy minimizes valid
   pages; cost-benefit weighs (1-u)/(1+u) against block age so cold,
   mostly-valid blocks are eventually cleaned too. *)
let pick_victim t =
  let now = Engine.now t.eng in
  let best_score = ref neg_infinity and ties = ref [] in
  for b = 0 to t.nblocks - 1 do
    if t.closed.(b) && t.valid.(b) < t.cfg.pages_per_block then begin
      let score =
        match t.cfg.policy with
        | Greedy -> float_of_int (t.cfg.pages_per_block - t.valid.(b))
        | Cost_benefit ->
            let u = float_of_int t.valid.(b) /. float_of_int t.cfg.pages_per_block in
            let age = Float.max 1.0 (now -. t.btime.(b)) in
            (1.0 -. u) /. (1.0 +. u) *. age
      in
      if score > !best_score +. 1e-12 then begin
        best_score := score;
        ties := [ b ]
      end
      else if score >= !best_score -. 1e-12 then ties := b :: !ties
    end
  done;
  match !ties with
  | [] -> None
  | l ->
      let arr = Array.of_list (List.rev l) in
      Some arr.(Wafl_util.Rng.int t.rng (Array.length arr))

(* Relocate the victim's still-valid pages through the GC stream, then
   erase it.  Bookkeeping happens up front (so host writes racing the
   GC sleep invalidate the *new* locations); the virtual-time charge
   covers the page reads, page programs and the erase. *)
let gc_cycle t victim =
  let ppb = t.cfg.pages_per_block in
  let moved = ref 0 in
  t.closed.(victim) <- false;
  for off = 0 to ppb - 1 do
    let ppn = (victim * ppb) + off in
    let lpn = t.p2l.(ppn) in
    if lpn >= 0 then begin
      (* The reserve guarantees the GC stream can always open a block. *)
      match try_append t (gc_stream t) ~for_gc:true with
      | Some dst ->
          map t lpn dst;
          incr moved
      | None -> assert false
    end
  done;
  t.gc_pages <- t.gc_pages + !moved;
  Wafl_obs.Metrics.add t.m_gc !moved;
  let t0 = Engine.now t.eng in
  Engine.sleep (float_of_int !moved *. (t.cfg.page_read_us +. t.cfg.page_program_us));
  (* The erase occupies the die: host programs arriving inside this
     window queue behind it (the erase-suspend-free NAND contract) —
     that queueing is the GC push-back the experiments measure. *)
  t.erase_until <- Engine.now t.eng +. t.cfg.block_erase_us;
  Engine.sleep t.cfg.block_erase_us;
  let dur = Engine.now t.eng -. t0 in
  (* Erase: the block (fully invalid by now) returns to the free pool. *)
  t.valid.(victim) <- 0;
  t.wear.(victim) <- t.wear.(victim) + 1;
  t.erases <- t.erases + 1;
  Wafl_obs.Metrics.incr t.m_erase;
  Queue.push victim t.free_q;
  t.free_count <- t.free_count + 1;
  if t.obs_on then
    Wafl_obs.Trace.complete t.obs ~cat:"flash" ~name:"flash gc" ~ts:t0 ~dur
      ~num_args:
        [
          ("rg", float_of_int t.rg);
          ("block", float_of_int victim);
          ("moved", float_of_int !moved);
          ("free_blocks", float_of_int t.free_count);
        ]
      ();
  ignore (Sync.Waitq.wake_all t.host_q)

let gc_fiber t () =
  let rec loop () =
    probe t;
    if t.free_count >= high_blocks t then Sync.Waitq.wait t.gc_q
    else begin
      t.gc_runs <- t.gc_runs + 1;
      Wafl_obs.Metrics.incr t.m_runs;
      (match pick_victim t with
      | Some victim -> gc_cycle t victim
      | None ->
          (* Nothing reclaimable (every closed block fully valid): park
             until a host write or trim changes the picture. *)
          Sync.Waitq.wait t.gc_q)
    end;
    loop ()
  in
  loop ()

let kick_gc t = if t.free_count < low_blocks t then ignore (Sync.Waitq.wake_all t.gc_q)

(* --- host interface ------------------------------------------------------- *)

(* Program [pairs] of (lpn, stream), in order, from the calling service
   fiber.  Stalls (FIFO) whenever no free block is available outside the
   GC reserve — that wait is the GC-induced host delay the experiments
   measure — then charges one program time per page. *)
let host_write t pairs =
  probe t;
  let n = ref 0 in
  List.iter
    (fun (lpn, stream) ->
      let s = t.streams_tbl.(max 0 (min stream (t.cfg.streams - 1))) in
      let rec put () =
        match try_append t s ~for_gc:false with
        | Some ppn ->
            map t lpn ppn;
            incr n
        | None ->
            ignore (Sync.Waitq.wake_all t.gc_q);
            let w0 = Engine.now t.eng in
            Sync.Waitq.wait t.host_q;
            let w = Engine.now t.eng -. w0 in
            t.gc_stall_us <- t.gc_stall_us +. w;
            Wafl_obs.Metrics.addf t.m_stall w;
            if t.obs_on && w > 0.0 then
              Wafl_obs.Trace.complete t.obs ~cat:"flash" ~name:"flash stall" ~ts:w0 ~dur:w
                ~num_args:[ ("rg", float_of_int t.rg) ]
                ();
            put ()
      in
      put ())
    pairs;
  t.host_pages <- t.host_pages + !n;
  Wafl_obs.Metrics.add t.m_host !n;
  (* Programs queue behind an in-flight GC erase (the die is busy): this
     is the steady-state flavor of GC push-back, felt long before the
     free pool is exhausted. *)
  (if !n > 0 then
     let now = Engine.now t.eng in
     if now < t.erase_until then begin
       let w = t.erase_until -. now in
       t.gc_stall_us <- t.gc_stall_us +. w;
       Wafl_obs.Metrics.addf t.m_stall w;
       if t.obs_on then
         Wafl_obs.Trace.complete t.obs ~cat:"flash" ~name:"flash stall" ~ts:now ~dur:w
           ~num_args:[ ("rg", float_of_int t.rg) ]
           ();
       Engine.sleep w
     end);
  let t0 = Engine.now t.eng in
  let dur = float_of_int !n *. t.cfg.page_program_us in
  Engine.sleep dur;
  if t.obs_on && !n > 0 then
    Wafl_obs.Trace.complete t.obs ~cat:"flash" ~name:"flash program" ~ts:t0 ~dur
      ~num_args:[ ("rg", float_of_int t.rg); ("pages", float_of_int !n) ]
      ();
  kick_gc t

(* The file system freed this logical page (WAFL never overwrites in
   place, so frees are the FTL's only source of invalidation besides
   remaps): its flash page is dead and need not be relocated.  Pure
   bookkeeping — callable outside fiber context. *)
let trim t ~lpn =
  probe t;
  if t.l2p.(lpn) >= 0 then begin
    invalidate t lpn;
    t.l2p.(lpn) <- -1;
    t.trims <- t.trims + 1
  end

(* Map pages with no virtual-time charge: recovery rebuilding the
   pre-crash device fill, and the create-time prefill.  Outside fiber
   context by design. *)
let preload t lpns_list =
  probe t;
  List.iter
    (fun lpn ->
      match try_append t t.streams_tbl.(0) ~for_gc:false with
      | Some ppn -> map t lpn ppn
      | None -> invalid_arg "Ftl.preload: device full")
    lpns_list

let create ?(obs = Wafl_obs.Trace.disabled) eng ~cfg ~lpns ~rg =
  if lpns <= 0 then invalid_arg "Ftl.create: lpns must be positive";
  if cfg.pages_per_block <= 0 then invalid_arg "Ftl.create: pages_per_block must be positive";
  if cfg.streams < 1 then invalid_arg "Ftl.create: at least one host stream";
  if cfg.logical_capacity <= 0.0 then invalid_arg "Ftl.create: logical_capacity must be positive";
  let ppb = cfg.pages_per_block in
  (* Thin provisioning: the device advertises [logical_capacity] of the
     lpn address space.  Valid data beyond the advertised capacity is
     the operator's overcommit — the device just runs out of free
     blocks and stalls the host, as real hardware would. *)
  let logical_pages =
    max 1 (int_of_float (ceil (cfg.logical_capacity *. float_of_int lpns)))
  in
  let logical_blocks = (logical_pages + ppb - 1) / ppb in
  let nblocks =
    max
      (logical_blocks + cfg.streams + 1 + gc_reserve + 2)
      (int_of_float (ceil (float_of_int logical_blocks *. (1.0 +. cfg.op_ratio))))
  in
  let m = Wafl_obs.Trace.metrics obs in
  let t =
    {
      eng;
      cfg;
      rg;
      shared = Printf.sprintf "flash.rg%d" rg;
      obs;
      obs_on = Wafl_obs.Trace.enabled obs;
      lpns;
      lblocks = logical_blocks;
      nblocks;
      l2p = Array.make lpns (-1);
      p2l = Array.make (nblocks * ppb) (-1);
      valid = Array.make nblocks 0;
      wear = Array.make nblocks 0;
      btime = Array.make nblocks 0.0;
      closed = Array.make nblocks false;
      free_q = Queue.create ();
      free_count = nblocks;
      streams_tbl = Array.init (cfg.streams + 1) Stream.make;
      rng = Wafl_util.Rng.create ~seed:(cfg.seed + (rg * 7919));
      host_q = Sync.Waitq.create eng;
      gc_q = Sync.Waitq.create eng;
      host_pages = 0;
      gc_pages = 0;
      erases = 0;
      gc_runs = 0;
      gc_stall_us = 0.0;
      erase_until = 0.0;
      trims = 0;
      m_host = Wafl_obs.Metrics.counter m "flash.host_pages";
      m_gc = Wafl_obs.Metrics.counter m "flash.gc_pages";
      m_erase = Wafl_obs.Metrics.counter m "flash.erases";
      m_runs = Wafl_obs.Metrics.counter m "flash.gc_runs";
      m_stall = Wafl_obs.Metrics.counter m "flash.gc_stall_us";
    }
  in
  for b = 0 to nblocks - 1 do
    Queue.push b t.free_q
  done;
  (* Device aging: map the first [prefill] fraction of the logical space
     as data, then season to steady state — random overwrites within the
     aged span until the free pool sits at the GC-idle threshold, as on
     a drive that has been written continuously for a long time.  The
     churn scatters invalid pages across every block, so the background
     GC is live (and the measured WAF meaningful) from the first host
     write instead of after megabytes of free-pool drain. *)
  let aged = min lpns (int_of_float (cfg.prefill *. float_of_int lpns)) in
  if aged > 0 then begin
    preload t (List.init aged Fun.id);
    while t.free_count > high_blocks t do
      let lpn = Wafl_util.Rng.int t.rng aged in
      match try_append t t.streams_tbl.(0) ~for_gc:false with
      | Some ppn -> map t lpn ppn
      | None -> assert false (* free pool > high mark > GC reserve *)
    done
  end;
  ignore (Engine.spawn eng ~label:"io" ~daemon:true (gc_fiber t));
  t

(* --- introspection -------------------------------------------------------- *)

let config t = t.cfg
let lpn_count t = t.lpns
let block_count t = t.nblocks
let logical_pages t = t.lblocks * t.cfg.pages_per_block
let stream_appended t = Array.map Stream.appended t.streams_tbl
let host_pages t = t.host_pages
let gc_pages t = t.gc_pages
let erases t = t.erases
let gc_runs t = t.gc_runs
let gc_stall_us t = t.gc_stall_us
let trims t = t.trims
let free_blocks t = t.free_count

let valid_pages t = Array.fold_left ( + ) 0 t.valid

let waf t =
  if t.host_pages = 0 then 1.0
  else float_of_int (t.host_pages + t.gc_pages) /. float_of_int t.host_pages

let max_wear t = Array.fold_left max 0 t.wear

let block_of_lpn t lpn =
  if t.l2p.(lpn) < 0 then -1 else t.l2p.(lpn) / t.cfg.pages_per_block

(* Deterministic digest of the full translation state plus the wear and
   WAF counters; the replay-identity tests compare two runs by it. *)
let signature t =
  let h = ref 1469598103934665603L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (v + 1))) 1099511628211L
  in
  Array.iter mix t.l2p;
  Array.iter mix t.wear;
  mix t.host_pages;
  mix t.gc_pages;
  mix t.erases;
  mix (int_of_float t.gc_stall_us);
  Printf.sprintf "%Lx" !h
