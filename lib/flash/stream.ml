(* One open erase block accepting page appends for a write stream — a
   temperature/object class on the host side, or the FTL's internal GC
   relocation stream.  Pages appended through the same stream land in the
   same erase block, so co-streamed pages die together (the multi-stream
   SSD contract). *)

type t = {
  id : int;  (* stream index; the last index is the GC relocation stream *)
  mutable block : int;  (* open erase block, -1 when none *)
  mutable ptr : int;  (* next page offset within [block] *)
  mutable opened_at : float;  (* virtual time the block was opened *)
  mutable appended : int;  (* lifetime pages appended through this stream *)
}

let make id = { id; block = -1; ptr = 0; opened_at = 0.0; appended = 0 }
let id t = t.id
let block t = t.block
let has_block t = t.block >= 0

let open_block t ~block ~now =
  t.block <- block;
  t.ptr <- 0;
  t.opened_at <- now

let close t = t.block <- -1

(* Append one page; the caller translates (block, offset) to a physical
   page number and handles the block filling up. *)
let append t =
  let off = t.ptr in
  t.ptr <- off + 1;
  t.appended <- t.appended + 1;
  off

let full t ~pages_per_block = t.ptr >= pages_per_block
let appended t = t.appended
