(** Virtual-time synchronization primitives built on {!Engine} parking.

    These model the lock-protected structures of the paper (bucket cache,
    used-bucket queue, stages, tetris dispatch): acquiring a held mutex or
    receiving from an empty channel parks the fiber, so contention and
    backpressure cost virtual time.  All wait queues are FIFO, preserving
    determinism.

    Every operation must be called from fiber context. *)

(** Plain FIFO wait queue; building block for the other primitives and for
    ad-hoc waits (e.g. tetris completion). *)
module Waitq : sig
  type t

  val create : Engine.t -> t
  val wait : t -> unit
  (** Park the calling fiber on the queue. *)

  val wake_one : t -> bool
  (** Wake the oldest waiter; [false] if the queue was empty. *)

  val wake_all : t -> int
  (** Wake every waiter; returns how many were woken. *)

  val waiters : t -> int
end

module Mutex : sig
  type t

  val create : ?name:string -> ?acquire_cost:float -> Engine.t -> t
  (** [acquire_cost] is virtual µs of CPU charged per [lock] (default
      {!Cost.default}[.lock_acquire]), modelling the atomic-op cost that
      the paper amortizes via buckets. *)

  val lock : t -> unit
  val unlock : t -> unit
  (** Raises [Invalid_argument] — naming the mutex, the calling fiber
      and the actual holder — if the calling fiber does not hold [t]. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  val name : t -> string
  val contended_acquires : t -> int
  (** Number of [lock] calls that had to park. *)

  val acquires : t -> int
end

module Condition : sig
  type t

  val create : Engine.t -> t
  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex and park; the mutex is re-acquired
      before returning.  Raises [Invalid_argument] — naming the mutex,
      the caller and the actual holder — if the caller does not hold
      it. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

(** Bounded or unbounded FIFO channel (multi-producer, multi-consumer). *)
module Channel : sig
  type 'a t

  val create : ?capacity:int -> Engine.t -> 'a t
  (** Unbounded when [capacity] is omitted. *)

  val send : 'a t -> 'a -> unit
  (** Parks while the channel is full. *)

  val recv : 'a t -> 'a
  (** Parks while the channel is empty. *)

  val try_recv : 'a t -> 'a option
  (** Non-blocking receive. *)

  val length : 'a t -> int
end
