(** Deterministic discrete-event simulator with effect-handler fibers.

    This is the many-core substitute for the paper's 20-core testbed (see
    DESIGN.md §1).  Simulated threads are OCaml 5 fibers; a configurable
    number of {e virtual cores} executes runnable fibers in virtual time.
    CPU work is charged explicitly with {!consume}; blocking primitives
    (see {!Sync}) park fibers, so contention, queueing and pipeline
    backpressure show up as virtual-time delays exactly as they would as
    wall-clock delays on real hardware.

    Scheduling model: non-preemptive per core with an optional quantum.
    A fiber keeps its core across {!consume} calls; it releases the core
    when it yields, sleeps, parks or finishes, or when a consume completes
    past the quantum while other fibers are runnable.  All queues are
    FIFO and event ties are broken by sequence number, so a run is a pure
    function of its inputs.

    All fiber-context functions ({!consume}, {!sleep}, {!yield}, ...)
    must be called from code running inside a fiber of the same engine;
    calling them elsewhere raises [Stdlib.Effect.Unhandled]. *)

type t
(** A simulation engine instance. *)

type fiber
(** Handle to a simulated thread. *)

val create : ?quantum:float -> ?sanitize:bool -> cores:int -> unit -> t
(** [create ~cores ()] makes an engine with [cores] virtual cores and an
    empty event queue at virtual time 0.  [quantum] (default [100.0]
    virtual microseconds, [0.0] disables) bounds how long a fiber may hold
    a core across consume boundaries while other work is runnable.

    [sanitize] (default [false]) attaches a {!Race} happens-before
    detector: the engine feeds it every scheduling edge, {!Sync}
    primitives add release/acquire edges, and {!probe} calls become
    live.  Probes never consume virtual time or schedule anything, so
    a sanitized run produces bit-identical results to an unsanitized
    one; with [sanitize:false] every probe is a single branch. *)

val cores : t -> int
val now : t -> float
(** Current virtual time in microseconds. *)

val spawn : t -> ?label:string -> ?daemon:bool -> ?at:float -> (unit -> unit) -> fiber
(** [spawn t ~label body] creates a fiber that becomes runnable now (or at
    virtual time [at]).  [label] (default ["other"]) is the accounting
    class charged for the fiber's CPU time; see {!busy}.

    [daemon] (default [false]) marks a long-lived service fiber — e.g. a
    scheduler worker — that legitimately parks forever between work items:
    daemons are excluded from {!live_fibers} and from {!stalled_fibers}
    diagnosis, so a run that ends with idle daemons parked still counts as
    having run to completion. *)

(** {1 Running} *)

val run : ?until:float -> t -> unit
(** Process events until the event queue and run queue are empty, or until
    virtual time would exceed [until] (the clock is then set to [until]
    and remaining events stay queued, so [run] can be called again to
    continue — this is how warmup/measurement windows are implemented). *)

val stalled_fibers : t -> (int * string) list
(** Non-daemon fibers that are parked with nothing left in the system to
    wake them; non-empty after a full [run] indicates a deadlock or a
    lost wakeup.  Returns [(id, label)] pairs. *)

val live_fibers : t -> int
(** Non-daemon fibers spawned and not yet finished. *)

val pending_work : t -> bool
(** Whether anything remains to execute: queued events or runnable
    fibers.  False after a [run ~until] that went idle before the limit
    (parked daemons don't count).  The partitioned driver ({!Partition})
    uses this to decide when a partition has drained. *)

(** {1 Fiber context operations} *)

val consume : float -> unit
(** Occupy the current core for the given number of virtual microseconds. *)

val sleep : float -> unit
(** Release the core and become runnable again after the given delay. *)

val yield : unit -> unit
(** Release the core and requeue at the tail of the run queue. *)

val self : t -> fiber
(** The fiber currently executing on [t].  Raises [Invalid_argument] if no
    fiber is running (i.e. called from outside the simulation). *)

val set_label : t -> string -> unit
(** Change the accounting class of the current fiber; used by scheduler
    workers that execute messages of different classes. *)

val relabel : fiber -> string -> unit
(** Change the accounting class of an arbitrary fiber (it need not be
    running).  The Waffinity scheduler relabels a pooled worker to the
    granted message's label before waking it, so CPU charges and the
    dispatch observability hook see the message's class, exactly as if
    the message ran on a fresh fiber with that label. *)

val fiber_id : fiber -> int
val fiber_label : fiber -> string
val finished : fiber -> bool
val join : t -> fiber -> unit
(** Park until the given fiber finishes (returns immediately if it has). *)

(** {1 Low-level parking — used by {!Sync}} *)

val park : t -> unit
(** Park the current fiber unconditionally.  Some other fiber must hold a
    reference (obtained via {!self}) and call {!wake}. *)

val wake : t -> fiber -> unit
(** Make a parked fiber runnable.  Raises [Invalid_argument] if the fiber
    is not parked. *)

(** {1 CPU accounting} *)

val reset_accounting : t -> unit
(** Zero all per-label busy counters and restart the measurement window at
    the current virtual time. *)

val busy : t -> string -> float
(** Virtual microseconds of CPU consumed by fibers under the given label
    since the last {!reset_accounting}. *)

val busy_labels : t -> (string * float) list
(** All (label, busy) pairs, sorted by label. *)

val window : t -> float
(** Length of the current measurement window ([now - window start]). *)

val cores_used : t -> string -> float
(** [busy t label / window t] — average number of cores the label kept
    busy, the unit in which the paper reports "core usage". *)

val utilization : t -> float
(** Total busy time across all labels divided by [cores * window]. *)

val context_switches : t -> int
(** Dispatches of a fiber onto a core since engine creation. *)

(** {1 Sanitizer support}

    See DESIGN.md §4.7.  All of these are no-ops (or return the empty
    value) unless the engine was created with [~sanitize:true]. *)

val sanitizing : t -> bool
val race : t -> Race.t option

val current_fid : t -> int
(** The running fiber's id, or {!Race.main_fid} outside fiber context.
    Unlike {!self} this never raises. *)

val probe : t -> shared:string -> Race.mode -> unit
(** Declare an access to the shared mutable state named [shared] from
    the current context; the race detector checks it against every
    concurrent access to the same id, and the access hook (the
    affinity-isolation checker, when wired) validates it against the
    running message's affinity. *)

val probe_atomic : t -> shared:string -> unit
(** Declare an operation on a structure that the real system protects
    with a lock or atomic whose cost this simulation does not model
    (buffer cache, nvlog, tetris dispatch, message queues): a paired
    release/acquire on a per-[shared] sync clock.  Never reports. *)

val probe_locked : t -> shared:string -> Race.mode -> unit
(** {!probe}, but performed inside an acquire/release pair on [shared]'s
    own sync clock: models data a per-item lock protects (a metafile
    buffer lock), where affinity rules prevent lock {e contention} rather
    than providing the only exclusion.  The access hook still validates
    the touch against the running affinity, but same-id accesses are
    serialized by the lock and never reported as races. *)

val set_access_hook : t -> (int -> string -> Race.mode -> unit) -> unit
(** Install the isolation checker's callback, invoked on every {!probe}
    with the running fiber id, shared id and mode.  It may raise to
    abort the run with a diagnostic. *)

val race_reports : t -> Race.report list
val race_report_count : t -> int

(** {1 Observability taps}

    Used by [Wafl_obs] to attribute CPU charges to span stacks and to
    drive virtual-time metric sampling.  Hooks run synchronously inside
    existing scheduling decisions; they must never consume virtual time
    or schedule events, so an instrumented run stays bit-identical to an
    uninstrumented one.  With no hooks installed each site is a single
    branch. *)

type obs_hooks = {
  on_consume : fid:int -> label:string -> amount:float -> now:float -> unit;
      (** A fiber charged [amount] virtual microseconds of CPU, beginning
          at virtual time [now]. *)
  on_switch : fid:int -> label:string -> now:float -> unit;
      (** A fiber was dispatched onto a core. *)
  on_wake : waker:int -> wakee:int -> now:float -> unit;
      (** [waker] made the parked fiber [wakee] runnable ({!wake}, or a
          finishing fiber releasing its {!join} waiters).  Every [Sync]
          mutex/condvar/waitq/channel wakeup funnels through here, so
          this is the engine-level causal edge for blocking handoffs. *)
  on_spawn : parent:int -> child:int -> now:float -> unit;
      (** [parent] spawned [child] ([Race.main_fid] when spawned from
          outside fiber context). *)
}

val set_obs_hooks : t -> obs_hooks -> unit
val clear_obs_hooks : t -> unit
