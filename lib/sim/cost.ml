type t = {
  lock_acquire : float;
  msg_dispatch : float;
  thread_wake : float;
  client_write : float;
  client_write_random : float;
  client_read : float;
  read_miss : float;
  client_meta : float;
  clean_inode_overhead : float;
  clean_buffer : float;
  stage_free : float;
  bitmap_scan_word : float;
  metafile_block_touch : float;
  bitmap_bit_update : float;
  bucket_fixed : float;
  stage_commit_fixed : float;
  summary_update : float;
  raid_io_dispatch : float;
  device_write_per_block : float;
  device_base_latency : float;
  parity_read_penalty : float;
  transient_retry_backoff : float;
  rebuild_block : float;
  cp_fixed : float;
}

(* Calibrated so that, per 4 KiB client write in steady state, cleaner work
   is ~2 µs, infrastructure work is ~1.1 µs for sequential streams (frees
   land in the bitmap blocks already touched) and ~3 µs for random streams
   (each free touches its own bitmap block), and non-allocation client work
   is ~11 µs — matching the paper's observation that write allocation
   saturates ~6 of 20 cores at peak.  See EXPERIMENTS.md. *)
let default =
  {
    lock_acquire = 0.08;
    msg_dispatch = 1.2;
    thread_wake = 4.0;
    client_write = 9.0;
    client_write_random = 40.0;
    client_read = 5.5;
    read_miss = 18.0;
    client_meta = 7.0;
    clean_inode_overhead = 1.6;
    clean_buffer = 2.1;
    stage_free = 0.25;
    bitmap_scan_word = 0.05;
    metafile_block_touch = 5.0;
    bitmap_bit_update = 0.12;
    bucket_fixed = 6.0;
    stage_commit_fixed = 3.0;
    summary_update = 1.5;
    raid_io_dispatch = 3.0;
    device_write_per_block = 0.35;
    device_base_latency = 25.0;
    parity_read_penalty = 90.0;
    transient_retry_backoff = 400.0;
    rebuild_block = 4.0;
    cp_fixed = 50.0;
  }

let free =
  {
    lock_acquire = 0.0;
    msg_dispatch = 0.0;
    thread_wake = 0.0;
    client_write = 0.0;
    client_write_random = 0.0;
    client_read = 0.0;
    read_miss = 0.0;
    client_meta = 0.0;
    clean_inode_overhead = 0.0;
    clean_buffer = 0.0;
    stage_free = 0.0;
    bitmap_scan_word = 0.0;
    metafile_block_touch = 0.0;
    bitmap_bit_update = 0.0;
    bucket_fixed = 0.0;
    stage_commit_fixed = 0.0;
    summary_update = 0.0;
    raid_io_dispatch = 0.0;
    device_write_per_block = 0.0;
    device_base_latency = 0.0;
    parity_read_penalty = 0.0;
    transient_retry_backoff = 0.0;
    rebuild_block = 0.0;
    cp_fixed = 0.0;
  }
