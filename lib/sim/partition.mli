(** Conservative-lookahead partitioned DES.

    A partitioned run shards one simulation across [K] independently
    clocked {!Engine} instances (one per aggregate / volume group) and
    advances them window by window: within a virtual-time window
    [[W, W + lookahead)] every partition executes independently —
    concurrently on worker domains when the run was given more than one
    — and cross-partition interaction travels only through {!post},
    which delivers a closure to its destination at least [lookahead]
    after the sender's clock.  That is the classic conservative PDES
    guarantee: nothing sent during a window can affect that same
    window, so no partition ever observes an event out of order and
    there is nothing to roll back.

    Determinism: each partition's window execution is an ordinary
    sequential {!Engine.run}; pending deliveries are injected before
    the window that contains them, sorted by [(deliver time, source
    partition, per-source send seq)], so the destination engine's FIFO
    tie-break sees one well-defined event sequence.  The whole run is
    therefore a pure function of the initial spawns and seeds —
    byte-identical at any domain count, verified by the replay-identity
    tests in test_domains.ml.

    The sync points this models are the coarse ones the paper's
    architecture already serializes — aggregate-wide CP barriers, NVLog
    watermark broadcasts, RAID-group handoffs — whose real latencies
    are comfortably above a millisecond-scale lookahead. *)

type t

val create :
  ?quantum:float ->
  ?sanitize:bool ->
  parts:int ->
  cores_per_part:int ->
  lookahead:float ->
  unit ->
  t
(** [create ~parts ~cores_per_part ~lookahead ()] builds [parts]
    engines, each with [cores_per_part] virtual cores, all at virtual
    time 0.  [lookahead] (virtual µs, > 0) is the window length and the
    minimum cross-partition delivery delay.  [quantum] / [sanitize] are
    passed to every {!Engine.create}. *)

val parts : t -> int
val lookahead : t -> float

val engine : t -> int -> Engine.t
(** The partition's engine, for initial spawns and end-of-run reads.
    During {!run} it must only be touched from fibers of that same
    partition. *)

val now : t -> float
(** The completed horizon: every partition's clock has reached it. *)

val post : t -> src:int -> dst:int -> delay:float -> (unit -> unit) -> unit
(** [post t ~src ~dst ~delay fn] (from a fiber of partition [src], or
    from the host between {!run} calls — every partition is then parked
    at the horizon) schedules [fn] to run as a fresh fiber of partition
    [dst] at virtual time [Engine.now (engine t src) +. delay].  Raises
    [Invalid_argument] if [delay < lookahead t] — the conservative
    bound — or if [dst] is out of range.  [src = dst] is allowed (the
    bound still applies).  Delivery order at equal virtual time is
    fixed by (source partition, per-source send sequence). *)

val run : ?domains:int -> until:float -> t -> unit
(** Advance every partition to virtual time [until], window by window.
    [domains] (default 1) is the worker-domain count for the window
    fan-out (a persistent {!Wafl_util.Pool.team} for the whole call).
    If every partition drains early (no queued events, no pending
    deliveries), the clocks jump straight to [until].  May be called
    repeatedly with increasing [until] (warmup / measurement
    windows). *)
