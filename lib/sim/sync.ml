module Waitq = struct
  type t = { eng : Engine.t; q : Engine.fiber Queue.t }

  let create eng = { eng; q = Queue.create () }

  let wait t =
    Queue.push (Engine.self t.eng) t.q;
    Engine.park t.eng

  let wake_one t =
    match Queue.take_opt t.q with
    | None -> false
    | Some f ->
        Engine.wake t.eng f;
        true

  let wake_all t =
    let n = Queue.length t.q in
    while wake_one t do
      ()
    done;
    n

  let waiters t = Queue.length t.q
end

module Mutex = struct
  type t = {
    eng : Engine.t;
    mutex_name : string;
    acquire_cost : float;
    mutable owner : Engine.fiber option;
    waiters : Engine.fiber Queue.t;
    mutable n_acquires : int;
    mutable n_contended : int;
    race_sync : int option; (* release/acquire clock when sanitizing *)
  }

  let create ?(name = "mutex") ?acquire_cost eng =
    let acquire_cost =
      match acquire_cost with Some c -> c | None -> Cost.default.lock_acquire
    in
    {
      eng;
      mutex_name = name;
      acquire_cost;
      owner = None;
      waiters = Queue.create ();
      n_acquires = 0;
      n_contended = 0;
      race_sync = (match Engine.race eng with Some r -> Some (Race.new_sync r) | None -> None);
    }

  let race_acquire t =
    match (Engine.race t.eng, t.race_sync) with
    | Some r, Some sync -> Race.acquire r ~fid:(Engine.current_fid t.eng) ~sync
    | _ -> ()

  let race_release t =
    match (Engine.race t.eng, t.race_sync) with
    | Some r, Some sync -> Race.release r ~fid:(Engine.current_fid t.eng) ~sync
    | _ -> ()

  let fiber_desc f = Printf.sprintf "%s#%d" (Engine.fiber_label f) (Engine.fiber_id f)
  let holder_desc t = match t.owner with Some f -> fiber_desc f | None -> "nobody"

  let lock t =
    let me = Engine.self t.eng in
    Engine.consume t.acquire_cost;
    t.n_acquires <- t.n_acquires + 1;
    (match t.owner with
    | None -> t.owner <- Some me
    | Some owner ->
        if Engine.fiber_id owner = Engine.fiber_id me then
          invalid_arg
            (Printf.sprintf "Mutex %s: recursive lock by %s" t.mutex_name (fiber_desc me));
        t.n_contended <- t.n_contended + 1;
        Queue.push me t.waiters;
        Engine.park t.eng
        (* Ownership is transferred by [unlock]; when we resume we already
           hold the mutex. *));
    race_acquire t

  let unlock t =
    let me = Engine.self t.eng in
    (match t.owner with
    | Some owner when Engine.fiber_id owner = Engine.fiber_id me -> ()
    | _ ->
        invalid_arg
          (Printf.sprintf "Mutex %s: unlock by %s but held by %s" t.mutex_name (fiber_desc me)
             (holder_desc t)));
    race_release t;
    match Queue.take_opt t.waiters with
    | None -> t.owner <- None
    | Some next ->
        t.owner <- Some next;
        Engine.wake t.eng next

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception exn ->
        unlock t;
        raise exn

  let name t = t.mutex_name
  let contended_acquires t = t.n_contended
  let acquires t = t.n_acquires
end

module Condition = struct
  type t = { eng : Engine.t; waiters : Engine.fiber Queue.t }

  let create eng = { eng; waiters = Queue.create () }

  (* The simulation is cooperatively scheduled, so "enqueue self, unlock,
     park" cannot lose a wakeup: no other fiber runs between the unlock and
     the park effect. *)
  let wait t m =
    let me = Engine.self t.eng in
    (match m.Mutex.owner with
    | Some owner when Engine.fiber_id owner = Engine.fiber_id me -> ()
    | _ ->
        invalid_arg
          (Printf.sprintf "Condition.wait: mutex %s not held by %s but by %s"
             (Mutex.name m) (Mutex.fiber_desc me) (Mutex.holder_desc m)));
    Queue.push me t.waiters;
    Mutex.unlock m;
    Engine.park t.eng;
    Mutex.lock m

  let signal t =
    match Queue.take_opt t.waiters with None -> () | Some f -> Engine.wake t.eng f

  let broadcast t =
    while not (Queue.is_empty t.waiters) do
      signal t
    done
end

module Channel = struct
  type 'a t = {
    eng : Engine.t;
    capacity : int option;
    items : 'a Queue.t;
    senders : Engine.fiber Queue.t;
    receivers : Engine.fiber Queue.t;
    race_sync : int option;
  }

  let create ?capacity eng =
    (match capacity with
    | Some c when c <= 0 -> invalid_arg "Channel.create: capacity must be positive"
    | _ -> ());
    {
      eng;
      capacity;
      items = Queue.create ();
      senders = Queue.create ();
      receivers = Queue.create ();
      race_sync = (match Engine.race eng with Some r -> Some (Race.new_sync r) | None -> None);
    }

  (* A send is a release and a successful receive an acquire on the
     channel's clock: a receiver is ordered after every prior sender. *)
  let race_release t =
    match (Engine.race t.eng, t.race_sync) with
    | Some r, Some sync -> Race.release r ~fid:(Engine.current_fid t.eng) ~sync
    | _ -> ()

  let race_acquire t =
    match (Engine.race t.eng, t.race_sync) with
    | Some r, Some sync -> Race.acquire r ~fid:(Engine.current_fid t.eng) ~sync
    | _ -> ()

  let is_full t =
    match t.capacity with None -> false | Some c -> Queue.length t.items >= c

  let send t v =
    while is_full t do
      Queue.push (Engine.self t.eng) t.senders;
      Engine.park t.eng
    done;
    Queue.push v t.items;
    race_release t;
    match Queue.take_opt t.receivers with
    | None -> ()
    | Some f -> Engine.wake t.eng f

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v ->
        race_acquire t;
        (match Queue.take_opt t.senders with
        | None -> ()
        | Some f -> Engine.wake t.eng f);
        v
    | None ->
        Queue.push (Engine.self t.eng) t.receivers;
        Engine.park t.eng;
        recv t

  let try_recv t =
    match Queue.take_opt t.items with
    | Some v ->
        race_acquire t;
        (match Queue.take_opt t.senders with
        | None -> ()
        | Some f -> Engine.wake t.eng f);
        Some v
    | None -> None

  let length t = Queue.length t.items
end
