(** Happens-before race detector (vector clocks over engine fibers).

    The engine (when created with [~sanitize:true]) maintains one
    detector instance and drives it from every scheduling edge it
    produces: fiber spawn, finish/join, park/wake.  {!Sync} adds
    release/acquire edges for mutexes, conditions and channels.
    Instrumented code then declares its touches of shared mutable state
    with {!access} probes (via [Engine.probe]); any two accesses to the
    same shared id that are not ordered by the recorded happens-before
    relation — and of which at least one is a write — are reported with
    both fibers' labels and virtual timestamps.

    The detector is epoch-based: per shared id it keeps the last write
    and the last read of each fiber slot, so memory is bounded by the
    number of probed ids times the maximum number of concurrently live
    fibers.  Fiber slots are recycled when fibers finish; a recycled
    slot continues its predecessor's scalar clock, which keeps the
    detector free of false positives at the cost of possibly missing a
    race against a fiber that has already finished (see DESIGN.md
    §4.7). *)

type mode = Read | Write

type report = {
  shared : string;  (** id passed to {!access} *)
  first_mode : mode;
  first_label : string;
  first_fid : int;
  first_time : float;
  second_mode : mode;
  second_label : string;
  second_fid : int;
  second_time : float;
}

type t

val create : unit -> t
(** A fresh detector.  The non-fiber (host) context is pre-registered as
    fiber {!main_fid}. *)

val main_fid : int
(** Pseudo fiber id (-1) for code running outside any engine fiber. *)

(** {1 Happens-before edges (engine and Sync internals)} *)

val add_fiber : t -> parent:int -> fid:int -> unit
(** Register a spawned fiber; it inherits the spawner's clock (the
    spawn is a release edge from parent to child). *)

val finish_fiber : t -> fid:int -> unit
(** Retire a fiber: its final clock is kept for later {!edge} calls from
    it (joins on finished fibers) and its slot becomes reusable.  Only
    the most recent few thousand final clocks are kept individually;
    older ones are folded into a single conservative clock, so memory
    stays bounded over runs that finish millions of fibers. *)

val edge : t -> from_:int -> to_:int -> unit
(** Release/acquire edge between two fibers: everything [from_] has done
    happens before everything [to_] does next.  [from_] may already be
    finished (if its final clock was pruned, the edge conservatively
    carries the join of all pruned clocks — this can hide a race, never
    invent one); [to_] must be live. *)

val new_sync : t -> int
(** A fresh synchronization object (its own vector clock). *)

val sync_id : t -> string -> int
(** The sync object registered under [name], created on first use. *)

val acquire : t -> fid:int -> sync:int -> unit
(** The fiber inherits everything released into the sync object. *)

val release : t -> fid:int -> sync:int -> unit
(** The fiber publishes its history into the sync object. *)

(** {1 Probes and reports} *)

val access : t -> fid:int -> label:string -> now:float -> shared:string -> mode -> unit
(** Declare that [fid] touched the shared mutable state [shared].
    Reports a race when the access is concurrent (per the recorded
    happens-before relation) with a previous access to the same id and
    at least one of the two is a [Write]. *)

val reports : t -> report list
(** Reports in detection order; storage is capped (the count keeps
    growing past the cap, see {!n_reports}). *)

val n_reports : t -> int
(** Total number of races detected, including any beyond the cap. *)

val absorb_all : t -> unit
(** Join every live fiber's and sync object's clock into {!main_fid}'s.
    The engine calls this when [run] returns: the host context then
    observes results of everything that ran, which is sound because the
    simulation is cooperative and single-threaded. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Introspection} *)

type stats = {
  live_fibers : int;
  n_slots : int;  (** distinct fiber slots ever needed (peak concurrency) *)
  finished_kept : int;  (** final clocks retained individually *)
  n_syncs : int;
  n_vars : int;  (** distinct shared ids probed *)
  max_vc_words : int;  (** capacity of the largest vector clock *)
}

val stats : t -> stats
(** Size counters for memory diagnosis; O(live fibers + syncs). *)
