(* Conservative-lookahead partitioned DES.  See the interface for the
   protocol; the invariants that make it deterministic:

   - a message posted during window [W, W+L) has deliver time
     >= sender clock + L >= W + L, i.e. strictly after the current
     window, so the window's execution never depends on concurrent
     sends (conservative lookahead);
   - outboxes are per-source (only the sending partition's window run
     appends; the coordinator reads them after the barrier), so there
     is no cross-domain mutation;
   - pending deliveries are injected before the window containing them,
     sorted by (deliver, src, seq), so Engine.spawn's FIFO tie-break
     sees one well-defined order regardless of which domain ran what
     when. *)

type msg = { deliver : float; src : int; seq : int; dst : int; fn : unit -> unit }

type part = {
  eng : Engine.t;
  mutable out_rev : msg list; (* sends this window, newest first *)
  mutable out_seq : int; (* per-source send counter *)
  mutable inbox : msg list; (* undelivered, sorted by msg_order *)
}

type t = {
  parts : part array;
  lookahead : float;
  mutable horizon : float; (* every partition's clock has reached this *)
}

let create ?quantum ?(sanitize = false) ~parts ~cores_per_part ~lookahead () =
  if parts <= 0 then invalid_arg "Partition.create: parts must be positive";
  if not (lookahead > 0.0) then invalid_arg "Partition.create: lookahead must be positive";
  {
    parts =
      Array.init parts (fun _ ->
          {
            eng = Engine.create ?quantum ~sanitize ~cores:cores_per_part ();
            out_rev = [];
            out_seq = 0;
            inbox = [];
          });
    lookahead;
    horizon = 0.0;
  }

let parts t = Array.length t.parts
let lookahead t = t.lookahead
let engine t pid = t.parts.(pid).eng
let now t = t.horizon

let post t ~src ~dst ~delay fn =
  if delay < t.lookahead then
    invalid_arg "Partition.post: delay below the conservative lookahead";
  if dst < 0 || dst >= Array.length t.parts then invalid_arg "Partition.post: dst out of range";
  let p = t.parts.(src) in
  let seq = p.out_seq in
  p.out_seq <- p.out_seq + 1;
  p.out_rev <- { deliver = Engine.now p.eng +. delay; src; seq; dst; fn } :: p.out_rev

let msg_order a b =
  match Float.compare a.deliver b.deliver with
  | 0 -> ( match Int.compare a.src b.src with 0 -> Int.compare a.seq b.seq | c -> c)
  | c -> c

(* Spawn every pending delivery that lands inside [horizon, stop) into
   its engine, in sorted order.  The inbox is sorted, so this peels a
   prefix. *)
let inject p ~stop =
  let rec go = function
    | m :: rest when m.deliver < stop ->
        ignore (Engine.spawn p.eng ~label:"xpart" ~at:m.deliver m.fn);
        go rest
    | rest -> p.inbox <- rest
  in
  go p.inbox

(* Undrained outboxes count as work: a message posted host-side between
   [run] calls (seeding) has not crossed a window barrier yet, and a
   drained run must still deliver it rather than jump the horizon. *)
let has_work t =
  Array.exists
    (fun p -> Engine.pending_work p.eng || p.inbox <> [] || p.out_rev <> [])
    t.parts

let run ?(domains = 1) ~until t =
  if until < t.horizon then invalid_arg "Partition.run: until is behind the horizon";
  let team = Wafl_util.Pool.team ~domains in
  Fun.protect ~finally:(fun () -> Wafl_util.Pool.team_stop team) @@ fun () ->
  while t.horizon < until && has_work t do
    let stop = Float.min until (t.horizon +. t.lookahead) in
    Array.iter (fun p -> inject p ~stop) t.parts;
    Wafl_util.Pool.team_run team
      (Array.to_list (Array.map (fun p () -> Engine.run ~until:stop p.eng) t.parts));
    (* Deterministic merge: collect outboxes in partition order (send
       order within each), then keep every destination inbox sorted by
       (deliver, src, seq). *)
    let touched = ref [] in
    Array.iter
      (fun p ->
        List.iter
          (fun m ->
            let d = t.parts.(m.dst) in
            if not (List.mem m.dst !touched) then touched := m.dst :: !touched;
            d.inbox <- m :: d.inbox)
          (List.rev p.out_rev);
        p.out_rev <- [])
      t.parts;
    List.iter
      (fun dst ->
        let d = t.parts.(dst) in
        d.inbox <- List.sort msg_order d.inbox)
      !touched;
    t.horizon <- stop
  done;
  (* Drained early: nothing queued anywhere and no pending deliveries,
     so no event can ever materialize — jump every clock to [until]. *)
  if t.horizon < until then begin
    Array.iter (fun p -> Engine.run ~until p.eng) t.parts;
    t.horizon <- until
  end
