(** Central CPU cost model for the simulation, in virtual microseconds.

    The reproduction's performance results are *shapes* produced by real
    data-structure traffic (how many bitmap blocks were touched, how many
    lock acquisitions happened, how many messages were dispatched); this
    table only prices the primitive operations.  One default table is
    used by every experiment — see EXPERIMENTS.md for the calibration
    rationale against the paper's Ivy Bridge platform. *)

type t = {
  (* scheduling and synchronization *)
  lock_acquire : float;  (** charged per mutex acquisition *)
  msg_dispatch : float;  (** Waffinity message dispatch + completion overhead *)
  thread_wake : float;  (** waking an inactive cleaner thread *)
  (* client-side (protocol + front-end file system) per operation *)
  client_write : float;  (** per 4 KiB sequential-stream write op, excluding write allocation *)
  client_write_random : float;
      (** per 4 KiB random write op — random I/O does far more client-side
          work (cache misses, RAID read-modify context, per-op protocol
          state) than a sequential stream *)
  client_read : float;  (** per read op served from a cache *)
  read_miss : float;  (** extra CPU + transfer cost when a read misses the buffer cache *)
  client_meta : float;  (** per metadata op in the NFS mix *)
  (* cleaner-thread work *)
  clean_inode_overhead : float;  (** per inode-clean message *)
  clean_buffer : float;  (** per dirty buffer: USE a VBN, update block map, tetris enqueue *)
  stage_free : float;  (** per freed VBN pushed to a stage *)
  (* infrastructure work (runs as Waffinity messages) *)
  bitmap_scan_word : float;  (** per 64-bit bitmap word examined while filling buckets *)
  metafile_block_touch : float;  (** per distinct metafile block read + marked dirty *)
  bitmap_bit_update : float;  (** per bit set / cleared within an already-touched block *)
  bucket_fixed : float;  (** fixed cost per bucket refill or commit *)
  stage_commit_fixed : float;  (** fixed cost per free-stage commit message *)
  summary_update : float;  (** allocation-area summary bookkeeping per bucket *)
  (* storage *)
  raid_io_dispatch : float;  (** CPU cost to assemble and submit one tetris I/O *)
  device_write_per_block : float;  (** device service time per block written *)
  device_base_latency : float;  (** fixed device latency per I/O *)
  parity_read_penalty : float;  (** extra service time when a stripe write is partial *)
  transient_retry_backoff : float;
      (** base backoff before retrying a transiently failed I/O; doubles per
          attempt, so retry latency shows up in CP duration *)
  rebuild_block : float;
      (** device service time to reconstruct + write one block during a
          RAID rebuild (reads the surviving drives of the stripe) *)
  (* consistency points *)
  cp_fixed : float;  (** fixed work to start / finalize a CP *)
}

val default : t
(** The calibrated table used by all experiments. *)

val free : t
(** All-zero table, for unit tests that want pure logic with no timing. *)
