type mode = Read | Write

type report = {
  shared : string;
  first_mode : mode;
  first_label : string;
  first_fid : int;
  first_time : float;
  second_mode : mode;
  second_label : string;
  second_fid : int;
  second_time : float;
}

(* Growable vector clock indexed by fiber slot.  [len] is the logical
   length (highest slot ever set, plus one); [a] may be longer.  Joins
   iterate and propagate [len], never raw capacity — using capacity as
   the length would let the doubling in [ensure] ratchet capacities up
   exponentially across the join graph. *)
type vc = { mutable a : int array; mutable len : int }

let vc_create () = { a = Array.make 8 0; len = 0 }

let ensure v n =
  if Array.length v.a < n then begin
    let bigger = Array.make (max n (2 * Array.length v.a)) 0 in
    Array.blit v.a 0 bigger 0 (Array.length v.a);
    v.a <- bigger
  end

let get v i = if i < v.len then v.a.(i) else 0

let set v i x =
  ensure v (i + 1);
  v.a.(i) <- x;
  if i + 1 > v.len then v.len <- i + 1

let join dst src =
  ensure dst src.len;
  for i = 0 to src.len - 1 do
    if src.a.(i) > dst.a.(i) then dst.a.(i) <- src.a.(i)
  done;
  if src.len > dst.len then dst.len <- src.len

let copy src = { a = Array.copy src.a; len = src.len }

type fib = { slot : int; vc : vc }

(* Epoch records: one last-write plus one last-read per slot.  Clocks are
   monotonic within a slot (recycling continues the scalar clock), so an
   access ordered after a slot's latest epoch is ordered after all its
   earlier ones — keeping only the latest per slot loses no reports. *)
type reader = { r_slot : int; r_clock : int; r_label : string; r_time : float; r_fid : int }

type var = {
  mutable w_slot : int; (* -1 until first write *)
  mutable w_clock : int;
  mutable w_label : string;
  mutable w_time : float;
  mutable w_fid : int;
  mutable readers : reader list;
}

type t = {
  fibers : (int, fib) Hashtbl.t; (* live fibers, including main *)
  finished : (int, vc) Hashtbl.t; (* final clocks, for join-after-finish *)
  finished_order : int Queue.t; (* finish order, oldest first, for pruning *)
  ancient : vc; (* join of all pruned finished clocks *)
  slot_clock : vc; (* per-slot scalar-clock floor, monotonic across recycling *)
  mutable free_slots : int list;
  mutable n_slots : int;
  syncs : (int, vc) Hashtbl.t;
  sync_names : (string, int) Hashtbl.t;
  mutable next_sync : int;
  vars : (string, var) Hashtbl.t;
  mutable reports : report list; (* newest first *)
  mutable n_reports : int;
}

let report_cap = 200

(* A long run finishes millions of message fibers; keeping every final
   clock would dominate memory.  Joins on long-finished fibers are rare
   (the scheduler uses park/wake), so past this cap the oldest clocks
   are folded into [ancient] — a join of everything pruned.  An edge
   from a pruned fiber then conservatively acquires [ancient]: the
   joiner may inherit more history than it really has, which can only
   hide a race, never invent one (same trade as slot recycling). *)
let finished_cap = 4096
let main_fid = -1

let create () =
  let t =
    {
      fibers = Hashtbl.create 64;
      finished = Hashtbl.create 256;
      finished_order = Queue.create ();
      ancient = vc_create ();
      slot_clock = vc_create ();
      free_slots = [];
      n_slots = 1;
      syncs = Hashtbl.create 32;
      sync_names = Hashtbl.create 32;
      next_sync = 0;
      vars = Hashtbl.create 256;
      reports = [];
      n_reports = 0;
    }
  in
  (* Slot 0 is the host context and is never recycled. *)
  let v = vc_create () in
  set v 0 1;
  set t.slot_clock 0 1;
  Hashtbl.replace t.fibers main_fid { slot = 0; vc = v };
  t

let fib t fid =
  match Hashtbl.find_opt t.fibers fid with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Race: unknown or finished fiber %d" fid)

let inc t f =
  let c = get f.vc f.slot + 1 in
  set f.vc f.slot c;
  set t.slot_clock f.slot c

let alloc_slot t =
  match t.free_slots with
  | s :: rest ->
      t.free_slots <- rest;
      s
  | [] ->
      let s = t.n_slots in
      t.n_slots <- s + 1;
      s

let add_fiber t ~parent ~fid =
  let p = fib t parent in
  let slot = alloc_slot t in
  let v = copy p.vc in
  let c = get t.slot_clock slot + 1 in
  set v slot c;
  set t.slot_clock slot c;
  Hashtbl.replace t.fibers fid { slot; vc = v };
  inc t p

let finish_fiber t ~fid =
  let f = fib t fid in
  Hashtbl.replace t.finished fid f.vc;
  Queue.push fid t.finished_order;
  Hashtbl.remove t.fibers fid;
  t.free_slots <- f.slot :: t.free_slots;
  while Hashtbl.length t.finished > finished_cap do
    let old = Queue.pop t.finished_order in
    match Hashtbl.find_opt t.finished old with
    | Some v ->
        join t.ancient v;
        Hashtbl.remove t.finished old
    | None -> ()
  done

let edge t ~from_ ~to_ =
  let dst = fib t to_ in
  match Hashtbl.find_opt t.fibers from_ with
  | Some src ->
      join dst.vc src.vc;
      inc t src
  | None -> (
      match Hashtbl.find_opt t.finished from_ with
      | Some v -> join dst.vc v
      | None ->
          (* Pruned (or never-registered) finished fiber: acquire the
             conservative join of everything pruned. *)
          join dst.vc t.ancient)

let new_sync t =
  let id = t.next_sync in
  t.next_sync <- id + 1;
  Hashtbl.replace t.syncs id (vc_create ());
  id

let sync_id t name =
  match Hashtbl.find_opt t.sync_names name with
  | Some id -> id
  | None ->
      let id = new_sync t in
      Hashtbl.replace t.sync_names name id;
      id

let acquire t ~fid ~sync = join (fib t fid).vc (Hashtbl.find t.syncs sync)

let release t ~fid ~sync =
  let f = fib t fid in
  join (Hashtbl.find t.syncs sync) f.vc;
  inc t f

let access t ~fid ~label ~now ~shared mode =
  let f = fib t fid in
  let v =
    match Hashtbl.find_opt t.vars shared with
    | Some v -> v
    | None ->
        let v =
          { w_slot = -1; w_clock = 0; w_label = ""; w_time = 0.0; w_fid = 0; readers = [] }
        in
        Hashtbl.replace t.vars shared v;
        v
  in
  let report first_mode first_label first_fid first_time =
    if t.n_reports < report_cap then
      t.reports <-
        {
          shared;
          first_mode;
          first_label;
          first_fid;
          first_time;
          second_mode = mode;
          second_label = label;
          second_fid = fid;
          second_time = now;
        }
        :: t.reports;
    t.n_reports <- t.n_reports + 1
  in
  let write_ordered = v.w_slot < 0 || get f.vc v.w_slot >= v.w_clock in
  (match mode with
  | Read -> if not write_ordered then report Write v.w_label v.w_fid v.w_time
  | Write ->
      if not write_ordered then report Write v.w_label v.w_fid v.w_time;
      List.iter
        (fun r ->
          if not (get f.vc r.r_slot >= r.r_clock) then report Read r.r_label r.r_fid r.r_time)
        v.readers);
  match mode with
  | Read ->
      let entry =
        { r_slot = f.slot; r_clock = get f.vc f.slot; r_label = label; r_time = now; r_fid = fid }
      in
      v.readers <- entry :: List.filter (fun r -> r.r_slot <> f.slot) v.readers
  | Write ->
      v.readers <- [];
      v.w_slot <- f.slot;
      v.w_clock <- get f.vc f.slot;
      v.w_label <- label;
      v.w_time <- now;
      v.w_fid <- fid

let reports t = List.rev t.reports
let n_reports t = t.n_reports

type stats = {
  live_fibers : int;
  n_slots : int;
  finished_kept : int;
  n_syncs : int;
  n_vars : int;
  max_vc_words : int;
}

let stats t =
  let max_vc = ref (Array.length t.slot_clock.a) in
  let see (v : vc) = if Array.length v.a > !max_vc then max_vc := Array.length v.a in
  (* lint-ok: max is order-independent. *)
  Hashtbl.iter (fun _ f -> see f.vc) t.fibers;
  (* lint-ok: same. *)
  Hashtbl.iter (fun _ v -> see v) t.syncs;
  {
    live_fibers = Hashtbl.length t.fibers;
    n_slots = t.n_slots;
    finished_kept = Hashtbl.length t.finished;
    n_syncs = Hashtbl.length t.syncs;
    n_vars = Hashtbl.length t.vars;
    max_vc_words = !max_vc;
  }

let absorb_all t =
  let m = fib t main_fid in
  (* lint-ok: vector-clock join is a pointwise max — order-independent. *)
  Hashtbl.iter (fun fid f -> if fid <> main_fid then join m.vc f.vc) t.fibers;
  (* lint-ok: same commutative join. *)
  Hashtbl.iter (fun _ v -> join m.vc v) t.syncs

let mode_name = function Read -> "read" | Write -> "write"

let pp_report ppf r =
  Format.fprintf ppf "race on %s: %s by %s#%d at %.1fus vs %s by %s#%d at %.1fus" r.shared
    (mode_name r.first_mode) r.first_label r.first_fid r.first_time (mode_name r.second_mode)
    r.second_label r.second_fid r.second_time
