type _ Effect.t +=
  | Consume : float -> unit Effect.t
  | Sleep : float -> unit Effect.t
  | Yield : unit Effect.t
  | Park : unit Effect.t

type state = Created | Runnable | Running | Sleeping | Parked | Done

type fiber = {
  fid : int;
  mutable label : string;
  mutable state : state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable hold_start : float;
  mutable body : (unit -> unit) option; (* cleared once started *)
  mutable join_waiters : fiber list;
  eng : t;
}

and action = Resume of fiber (* consume finished; fiber still holds its core *)
           | Wake of fiber (* sleep expired or delayed spawn: make runnable *)

and event = { time : float; seq : int; action : action }

and t = {
  n_cores : int;
  quantum : float;
  mutable clock : float;
  mutable free_cores : int;
  runnable : fiber Queue.t;
  mutable heap : event array;
  mutable heap_len : int;
  mutable next_seq : int;
  mutable next_fid : int;
  mutable live : int;
  mutable current : fiber option;
  busy_tbl : (string, float ref) Hashtbl.t;
  mutable window_start : float;
  mutable switches : int;
  mutable all_fibers : fiber list; (* for stalled-fiber diagnosis *)
  race : Race.t option; (* Some iff created with ~sanitize:true *)
  mutable access_hook : (int -> string -> Race.mode -> unit) option;
  mutable obs_hooks : obs_hooks option; (* observability taps; None = zero cost *)
}

and obs_hooks = {
  on_consume : fid:int -> label:string -> amount:float -> now:float -> unit;
  on_switch : fid:int -> label:string -> now:float -> unit;
}

(* --- binary min-heap on (time, seq) --- *)

let dummy_event = { time = 0.0; seq = 0; action = Wake (Obj.magic ()) }

let heap_less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let heap_push t ev =
  if t.heap_len = Array.length t.heap then begin
    let bigger = Array.make (max 64 (2 * t.heap_len)) dummy_event in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  t.heap.(!i) <- ev;
  let continue_up = ref true in
  while !continue_up && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_less t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue_up := false
  done

let heap_pop t =
  if t.heap_len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.heap_len <- t.heap_len - 1;
    if t.heap_len > 0 then begin
      t.heap.(0) <- t.heap.(t.heap_len);
      let i = ref 0 in
      let continue_down = ref true in
      while !continue_down do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.heap_len && heap_less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.heap_len && heap_less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue_down := false
      done
    end;
    Some top
  end

let heap_peek t = if t.heap_len = 0 then None else Some t.heap.(0)

(* --- engine --- *)

let create ?(quantum = 100.0) ?(sanitize = false) ~cores () =
  if cores <= 0 then invalid_arg "Engine.create: cores must be positive";
  {
    n_cores = cores;
    quantum;
    clock = 0.0;
    free_cores = cores;
    runnable = Queue.create ();
    heap = Array.make 64 dummy_event;
    heap_len = 0;
    next_seq = 0;
    next_fid = 0;
    live = 0;
    current = None;
    busy_tbl = Hashtbl.create 16;
    window_start = 0.0;
    switches = 0;
    all_fibers = [];
    race = (if sanitize then Some (Race.create ()) else None);
    access_hook = None;
    obs_hooks = None;
  }

let cores t = t.n_cores
let now t = t.clock

(* --- sanitizer plumbing --- *)

let sanitizing t = t.race <> None
let race t = t.race
let current_fid t = match t.current with Some f -> f.fid | None -> Race.main_fid
let current_label t = match t.current with Some f -> f.label | None -> "main"

let probe t ~shared mode =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      Race.access r ~fid ~label:(current_label t) ~now:t.clock ~shared mode;
      (match t.access_hook with Some h -> h fid shared mode | None -> ())

(* Models an operation on an atomically/lock-protected structure whose
   lock the simulation does not charge: a paired acquire+release on a
   per-id sync clock.  Never reports; orders this fiber after every
   earlier probe_atomic on the same id. *)
let probe_atomic t ~shared =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      let sync = Race.sync_id r shared in
      Race.acquire r ~fid ~sync;
      Race.release r ~fid ~sync

(* An access under a per-id lock the simulation does not charge (e.g. a
   buffer lock): the access is recorded — so the isolation checker still
   validates it against the running affinity — but it happens inside an
   acquire/release pair on the id's sync clock, so same-id accesses are
   totally ordered and never reported as races. *)
let probe_locked t ~shared mode =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      let sync = Race.sync_id r shared in
      Race.acquire r ~fid ~sync;
      Race.access r ~fid ~label:(current_label t) ~now:t.clock ~shared mode;
      (match t.access_hook with Some h -> h fid shared mode | None -> ());
      Race.release r ~fid ~sync

let set_access_hook t h = t.access_hook <- Some h

(* Observability taps (see Wafl_obs).  Like the sanitizer probes, these
   run synchronously inside existing scheduling decisions and must never
   consume virtual time or schedule events, so an instrumented run stays
   bit-identical to an uninstrumented one. *)
let set_obs_hooks t h = t.obs_hooks <- Some h
let clear_obs_hooks t = t.obs_hooks <- None
let race_reports t = match t.race with None -> [] | Some r -> Race.reports r
let race_report_count t = match t.race with None -> 0 | Some r -> Race.n_reports r

let schedule t time action =
  let ev = { time; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  heap_push t ev

let charge t label d =
  match Hashtbl.find_opt t.busy_tbl label with
  | Some r -> r := !r +. d
  | None -> Hashtbl.add t.busy_tbl label (ref d)

let enqueue_runnable t f =
  f.state <- Runnable;
  Queue.push f t.runnable

let release_core t = t.free_cores <- t.free_cores + 1

let finish_fiber t f =
  f.state <- Done;
  t.live <- t.live - 1;
  release_core t;
  (match t.race with
  | Some r ->
      List.iter (fun w -> Race.edge r ~from_:f.fid ~to_:w.fid) f.join_waiters;
      Race.finish_fiber r ~fid:f.fid
  | None -> ());
  List.iter (fun w -> enqueue_runnable t w) f.join_waiters;
  f.join_waiters <- []

(* Execute the fiber's body under the effect handler.  Control returns to
   the scheduler whenever the fiber performs an effect that stores its
   continuation (or when it finishes). *)
let start_fiber t f body =
  let handler =
    {
      Effect.Deep.retc = (fun () -> finish_fiber t f);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Consume d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f.cont <- Some k;
                  charge t f.label d;
                  (match t.obs_hooks with
                  | Some h -> h.on_consume ~fid:f.fid ~label:f.label ~amount:d ~now:t.clock
                  | None -> ());
                  schedule t (t.clock +. d) (Resume f))
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f.cont <- Some k;
                  f.state <- Sleeping;
                  release_core t;
                  schedule t (t.clock +. d) (Wake f))
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f.cont <- Some k;
                  release_core t;
                  enqueue_runnable t f)
          | Park ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  f.cont <- Some k;
                  f.state <- Parked;
                  release_core t)
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

let resume_fiber t f =
  match f.cont with
  | None -> (
      match f.body with
      | Some body ->
          f.body <- None;
          f.state <- Running;
          t.current <- Some f;
          start_fiber t f body;
          t.current <- None
      | None -> invalid_arg "Engine: resuming a fiber with no continuation")
  | Some k ->
      f.cont <- None;
      f.state <- Running;
      t.current <- Some f;
      Effect.Deep.continue k ();
      t.current <- None

(* Dispatch runnable fibers onto free cores. *)
let dispatch t =
  while t.free_cores > 0 && not (Queue.is_empty t.runnable) do
    let f = Queue.pop t.runnable in
    t.free_cores <- t.free_cores - 1;
    t.switches <- t.switches + 1;
    f.hold_start <- t.clock;
    (match t.obs_hooks with
    | Some h -> h.on_switch ~fid:f.fid ~label:f.label ~now:t.clock
    | None -> ());
    resume_fiber t f
  done

let spawn t ?(label = "other") ?at body =
  let f =
    {
      fid = t.next_fid;
      label;
      state = Created;
      cont = None;
      hold_start = 0.0;
      body = Some body;
      join_waiters = [];
      eng = t;
    }
  in
  t.next_fid <- t.next_fid + 1;
  t.live <- t.live + 1;
  t.all_fibers <- f :: t.all_fibers;
  (match t.race with
  | Some r -> Race.add_fiber r ~parent:(current_fid t) ~fid:f.fid
  | None -> ());
  (match at with
  | None -> enqueue_runnable t f
  | Some time ->
      if time < t.clock then invalid_arg "Engine.spawn: at is in the past";
      f.state <- Sleeping;
      schedule t time (Wake f));
  f

let run ?until t =
  let stop = ref false in
  while not !stop do
    dispatch t;
    match heap_peek t with
    | None -> stop := true
    | Some ev -> (
        match until with
        | Some limit when ev.time > limit ->
            t.clock <- limit;
            stop := true
        | _ -> (
            ignore (heap_pop t);
            t.clock <- ev.time;
            match ev.action with
            | Wake f -> enqueue_runnable t f
            | Resume f ->
                if
                  t.quantum > 0.0
                  && t.clock -. f.hold_start >= t.quantum
                  && not (Queue.is_empty t.runnable)
                then begin
                  release_core t;
                  enqueue_runnable t f
                end
                else resume_fiber t f))
  done;
  (* If we stopped because of [until] there may still be runnable fibers;
     leave them queued for the next call. *)
  (match until with
  | Some limit when t.clock < limit && t.heap_len = 0 && Queue.is_empty t.runnable ->
      t.clock <- limit
  | _ -> ());
  (* The host context now observes everything that ran (cooperative,
     single-threaded), so its clock must dominate all of it. *)
  match t.race with Some r -> Race.absorb_all r | None -> ()

let stalled_fibers t =
  if t.heap_len > 0 || not (Queue.is_empty t.runnable) then []
  else
    List.filter_map
      (fun f -> match f.state with Parked -> Some (f.fid, f.label) | _ -> None)
      t.all_fibers

let live_fibers t = t.live

(* --- fiber-context operations --- *)

let consume d = if d > 0.0 then Effect.perform (Consume d)
let sleep d = if d > 0.0 then Effect.perform (Sleep d) else Effect.perform Yield
let yield () = Effect.perform Yield

let self t =
  match t.current with
  | Some f -> f
  | None -> invalid_arg "Engine.self: no fiber is running"

let set_label t label = (self t).label <- label
let fiber_id f = f.fid
let fiber_label f = f.label
let finished f = f.state = Done

let park t =
  ignore (self t);
  Effect.perform Park

let wake t f =
  match f.state with
  | Parked ->
      (match t.race with
      | Some r -> Race.edge r ~from_:(current_fid t) ~to_:f.fid
      | None -> ());
      enqueue_runnable t f
  | _ -> invalid_arg "Engine.wake: fiber is not parked"

let join t f =
  if not (finished f) then begin
    let me = self t in
    f.join_waiters <- me :: f.join_waiters;
    Effect.perform Park
  end
  else
    (* Already finished: the waiter still inherits the fiber's history. *)
    match t.race with
    | Some r -> Race.edge r ~from_:f.fid ~to_:(self t).fid
    | None -> ()

(* --- accounting --- *)

let reset_accounting t =
  Hashtbl.reset t.busy_tbl;
  t.window_start <- t.clock

let busy t label = match Hashtbl.find_opt t.busy_tbl label with Some r -> !r | None -> 0.0

let busy_labels t =
  (* lint-ok: sorted before use. *)
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.busy_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let window t = t.clock -. t.window_start

let cores_used t label =
  let w = window t in
  if w <= 0.0 then 0.0 else busy t label /. w

let utilization t =
  let w = window t in
  if w <= 0.0 then 0.0
  else
    (* Sum in sorted label order: float addition is not associative, so a
       hash-order sum would depend on table internals. *)
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (busy_labels t) in
    total /. (w *. float_of_int t.n_cores)

let context_switches t = t.switches
