(* Effects carry no payload: the float operand travels through the
   domain-local [pending] field (a flat float field, so the write never
   allocates).  The handler reads it synchronously before any other
   perform can run on the same domain, so one cell per domain is safe —
   each domain runs at most one engine at a time, strictly
   sequentially.  This keeps a consume/sleep perform allocation-free. *)
type _ Effect.t +=
  | Consume_e : unit Effect.t
  | Sleep_e : unit Effect.t
  | Yield : unit Effect.t
  | Park : unit Effect.t

(* A mutable float in a mixed record is boxed on every store; a
   single-field float record is flat, so [x.v <- ...] allocates nothing.
   Used for the clock and the per-label busy accumulators. *)
type fbox = { mutable v : float }

type state = Created | Runnable | Running | Sleeping | Parked | Done

type fiber = {
  fid : int;
  daemon : bool; (* service fiber: excluded from live count / stall diagnosis *)
  mutable label : string;
  mutable state : state;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable hold_start : float;
  mutable body : (unit -> unit) option; (* cleared once started *)
  mutable join_waiters : fiber list;
  (* Busy-cell cache: when [cell_label == label] and [cell_epoch] matches
     the engine's accounting epoch, [cell] is the accumulator for this
     fiber's label and a charge is one float add — no hash lookup.  The
     label check is physical equality, so {!relabel}/{!set_label} need no
     explicit invalidation. *)
  mutable cell : fbox;
  mutable cell_label : string;
  mutable cell_epoch : int;
  eng : t;
}

and t = {
  n_cores : int;
  quantum : float;
  clock : fbox;
  mutable free_cores : int;
  runnable : fiber Queue.t;
  (* Event min-heap on (time, seq), struct-of-arrays so a push/pop
     allocates nothing on the hot path (the time array stays a flat
     unboxed float array).  ev_resume.(i) distinguishes a Resume (consume
     finished; the fiber still holds its core) from a Wake (sleep expired
     or delayed spawn: make runnable). *)
  mutable ev_time : float array;
  mutable ev_seq : int array;
  mutable ev_fiber : fiber array;
  mutable ev_resume : bool array;
  mutable heap_len : int;
  mutable next_seq : int;
  mutable next_fid : int;
  mutable live : int;
  mutable current : fiber; (* == dummy_fiber when no fiber is running *)
  mutable run_limit : float; (* [until] of the active run; infinity if none *)
  busy_tbl : (string, fbox) Hashtbl.t;
  mutable busy_sorted : (string * fbox) list; (* same cells, label-sorted *)
  mutable acct_epoch : int; (* bumped by reset_accounting; invalidates caches *)
  mutable window_start : float;
  mutable switches : int;
  mutable all_fibers : fiber list; (* for stalled-fiber diagnosis *)
  race : Race.t option; (* Some iff created with ~sanitize:true *)
  mutable access_hook : (int -> string -> Race.mode -> unit) option;
  mutable obs_hooks : obs_hooks option; (* observability taps; None = zero cost *)
}

and obs_hooks = {
  on_consume : fid:int -> label:string -> amount:float -> now:float -> unit;
  on_switch : fid:int -> label:string -> now:float -> unit;
  on_wake : waker:int -> wakee:int -> now:float -> unit;
  on_spawn : parent:int -> child:int -> now:float -> unit;
}

(* Per-domain scheduler context: the engine currently executing [run]
   on this domain (for the consume fast path; saved/restored around
   [run] so nested engines behave) and the operand of an in-flight
   consume/sleep perform.  Domain-local rather than process-global so
   independent engines running concurrently on worker domains
   (Wafl_util.Pool) never share scheduler state; within a domain the
   simulation stays strictly sequential, exactly as before. *)
type dctx = { mutable pending : float; mutable running : t option }

let dctx_key : dctx Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { pending = 0.0; running = None })

let dctx () = Domain.DLS.get dctx_key

(* --- binary min-heap on (time, seq), struct-of-arrays --- *)

let dummy_fiber : fiber = Obj.magic ()
let dummy_cell : fbox = { v = 0.0 }

(* Does the event at slot [i] order before (time', seq')? *)
let heap_before t i time' seq' =
  t.ev_time.(i) < time' || (t.ev_time.(i) = time' && t.ev_seq.(i) < seq')

let heap_push t time seq fiber resume =
  let cap = Array.length t.ev_time in
  if t.heap_len = cap then begin
    let cap' = max 64 (2 * cap) in
    let tm = Array.make cap' 0.0
    and sq = Array.make cap' 0
    and fb = Array.make cap' dummy_fiber
    and rs = Array.make cap' false in
    Array.blit t.ev_time 0 tm 0 t.heap_len;
    Array.blit t.ev_seq 0 sq 0 t.heap_len;
    Array.blit t.ev_fiber 0 fb 0 t.heap_len;
    Array.blit t.ev_resume 0 rs 0 t.heap_len;
    t.ev_time <- tm;
    t.ev_seq <- sq;
    t.ev_fiber <- fb;
    t.ev_resume <- rs
  end;
  (* Sift the hole up, then write the new event once. *)
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  let continue_up = ref true in
  while !continue_up && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_before t parent time seq then continue_up := false
    else begin
      t.ev_time.(!i) <- t.ev_time.(parent);
      t.ev_seq.(!i) <- t.ev_seq.(parent);
      t.ev_fiber.(!i) <- t.ev_fiber.(parent);
      t.ev_resume.(!i) <- t.ev_resume.(parent);
      i := parent
    end
  done;
  t.ev_time.(!i) <- time;
  t.ev_seq.(!i) <- seq;
  t.ev_fiber.(!i) <- fiber;
  t.ev_resume.(!i) <- resume

(* Remove the minimum (slot 0); the caller has already read it. *)
let heap_remove_min t =
  t.heap_len <- t.heap_len - 1;
  let n = t.heap_len in
  if n = 0 then t.ev_fiber.(0) <- dummy_fiber
  else begin
    (* Sift the last event down from the root, writing it once. *)
    let time = t.ev_time.(n)
    and seq = t.ev_seq.(n)
    and fiber = t.ev_fiber.(n)
    and resume = t.ev_resume.(n) in
    t.ev_fiber.(n) <- dummy_fiber;
    let i = ref 0 in
    let continue_down = ref true in
    while !continue_down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      if l >= n then continue_down := false
      else begin
        (* The smaller child, or -1 if neither orders before the sifted event. *)
        let s = ref (-1) in
        if heap_before t l time seq then s := l;
        if r < n
           && heap_before t r
                (if !s >= 0 then t.ev_time.(l) else time)
                (if !s >= 0 then t.ev_seq.(l) else seq)
        then s := r;
        if !s < 0 then continue_down := false
        else begin
          t.ev_time.(!i) <- t.ev_time.(!s);
          t.ev_seq.(!i) <- t.ev_seq.(!s);
          t.ev_fiber.(!i) <- t.ev_fiber.(!s);
          t.ev_resume.(!i) <- t.ev_resume.(!s);
          i := !s
        end
      end
    done;
    t.ev_time.(!i) <- time;
    t.ev_seq.(!i) <- seq;
    t.ev_fiber.(!i) <- fiber;
    t.ev_resume.(!i) <- resume
  end

(* --- engine --- *)

let create ?(quantum = 100.0) ?(sanitize = false) ~cores () =
  if cores <= 0 then invalid_arg "Engine.create: cores must be positive";
  {
    n_cores = cores;
    quantum;
    clock = { v = 0.0 };
    free_cores = cores;
    runnable = Queue.create ();
    ev_time = Array.make 64 0.0;
    ev_seq = Array.make 64 0;
    ev_fiber = Array.make 64 dummy_fiber;
    ev_resume = Array.make 64 false;
    heap_len = 0;
    next_seq = 0;
    next_fid = 0;
    live = 0;
    current = dummy_fiber;
    run_limit = infinity;
    busy_tbl = Hashtbl.create 16;
    busy_sorted = [];
    acct_epoch = 0;
    window_start = 0.0;
    switches = 0;
    all_fibers = [];
    race = (if sanitize then Some (Race.create ()) else None);
    access_hook = None;
    obs_hooks = None;
  }

let cores t = t.n_cores
let now t = t.clock.v

(* --- sanitizer plumbing --- *)

let sanitizing t = t.race <> None
let race t = t.race
let current_fid t = if t.current == dummy_fiber then Race.main_fid else t.current.fid
let current_label t = if t.current == dummy_fiber then "main" else t.current.label

let probe t ~shared mode =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      Race.access r ~fid ~label:(current_label t) ~now:t.clock.v ~shared mode;
      (match t.access_hook with Some h -> h fid shared mode | None -> ())

(* Models an operation on an atomically/lock-protected structure whose
   lock the simulation does not charge: a paired acquire+release on a
   per-id sync clock.  Never reports; orders this fiber after every
   earlier probe_atomic on the same id. *)
let probe_atomic t ~shared =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      let sync = Race.sync_id r shared in
      Race.acquire r ~fid ~sync;
      Race.release r ~fid ~sync

(* An access under a per-id lock the simulation does not charge (e.g. a
   buffer lock): the access is recorded — so the isolation checker still
   validates it against the running affinity — but it happens inside an
   acquire/release pair on the id's sync clock, so same-id accesses are
   totally ordered and never reported as races. *)
let probe_locked t ~shared mode =
  match t.race with
  | None -> ()
  | Some r ->
      let fid = current_fid t in
      let sync = Race.sync_id r shared in
      Race.acquire r ~fid ~sync;
      Race.access r ~fid ~label:(current_label t) ~now:t.clock.v ~shared mode;
      (match t.access_hook with Some h -> h fid shared mode | None -> ());
      Race.release r ~fid ~sync

let set_access_hook t h = t.access_hook <- Some h

(* Observability taps (see Wafl_obs).  Like the sanitizer probes, these
   run synchronously inside existing scheduling decisions and must never
   consume virtual time or schedule events, so an instrumented run stays
   bit-identical to an uninstrumented one.  With no hooks installed each
   site is a single branch. *)
let set_obs_hooks t h = t.obs_hooks <- Some h
let clear_obs_hooks t = t.obs_hooks <- None
let race_reports t = match t.race with None -> [] | Some r -> Race.reports r
let race_report_count t = match t.race with None -> 0 | Some r -> Race.n_reports r

let schedule t time fiber ~resume =
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  heap_push t time seq fiber resume

(* Keep [busy_sorted] ordered by label so the read side never re-sorts;
   new labels are rare (a handful per run), so the insertion is cheap. *)
let rec insert_sorted label r = function
  | [] -> [ (label, r) ]
  | (l, _) :: _ as rest when String.compare label l < 0 -> (label, r) :: rest
  | kv :: rest -> kv :: insert_sorted label r rest

(* Charge [d] to [f]'s label.  The fiber caches its accumulator cell, so
   the steady state is one physical-equality check and one float add. *)
let charge t f d =
  if f.cell_label == f.label && f.cell_epoch = t.acct_epoch then
    f.cell.v <- f.cell.v +. d
  else begin
    let cell =
      match Hashtbl.find_opt t.busy_tbl f.label with
      | Some c -> c
      | None ->
          let c = { v = 0.0 } in
          Hashtbl.add t.busy_tbl f.label c;
          t.busy_sorted <- insert_sorted f.label c t.busy_sorted;
          c
    in
    f.cell <- cell;
    f.cell_label <- f.label;
    f.cell_epoch <- t.acct_epoch;
    cell.v <- cell.v +. d
  end

let enqueue_runnable t f =
  f.state <- Runnable;
  Queue.push f t.runnable

let release_core t = t.free_cores <- t.free_cores + 1

let finish_fiber t f =
  f.state <- Done;
  if not f.daemon then t.live <- t.live - 1;
  release_core t;
  (match t.race with
  | Some r ->
      List.iter (fun w -> Race.edge r ~from_:f.fid ~to_:w.fid) f.join_waiters;
      Race.finish_fiber r ~fid:f.fid
  | None -> ());
  (match t.obs_hooks with
  | Some h ->
      List.iter (fun w -> h.on_wake ~waker:f.fid ~wakee:w.fid ~now:t.clock.v) f.join_waiters
  | None -> ());
  List.iter (fun w -> enqueue_runnable t w) f.join_waiters;
  f.join_waiters <- []

(* Execute the fiber's body under the effect handler.  Control returns to
   the scheduler whenever the fiber performs an effect that stores its
   continuation (or when it finishes).  The per-effect continuation
   consumers are allocated once per fiber here, not per perform. *)
let start_fiber t f body =
  let consume_k (k : (unit, unit) Effect.Deep.continuation) =
    f.cont <- Some k;
    let d = (dctx ()).pending in
    charge t f d;
    (match t.obs_hooks with
    | Some h -> h.on_consume ~fid:f.fid ~label:f.label ~amount:d ~now:t.clock.v
    | None -> ());
    schedule t (t.clock.v +. d) f ~resume:true
  in
  let sleep_k (k : (unit, unit) Effect.Deep.continuation) =
    f.cont <- Some k;
    f.state <- Sleeping;
    release_core t;
    schedule t (t.clock.v +. (dctx ()).pending) f ~resume:false
  in
  let yield_k (k : (unit, unit) Effect.Deep.continuation) =
    f.cont <- Some k;
    release_core t;
    enqueue_runnable t f
  in
  let park_k (k : (unit, unit) Effect.Deep.continuation) =
    f.cont <- Some k;
    f.state <- Parked;
    release_core t
  in
  let consume_o = Some consume_k
  and sleep_o = Some sleep_k
  and yield_o = Some yield_k
  and park_o = Some park_k in
  let handler =
    {
      Effect.Deep.retc = (fun () -> finish_fiber t f);
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Consume_e -> (consume_o : ((a, unit) Effect.Deep.continuation -> unit) option)
          | Sleep_e -> sleep_o
          | Yield -> yield_o
          | Park -> park_o
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

let resume_fiber t f =
  match f.cont with
  | None -> (
      match f.body with
      | Some body ->
          f.body <- None;
          f.state <- Running;
          t.current <- f;
          start_fiber t f body;
          t.current <- dummy_fiber
      | None -> invalid_arg "Engine: resuming a fiber with no continuation")
  | Some k ->
      f.cont <- None;
      f.state <- Running;
      t.current <- f;
      Effect.Deep.continue k ();
      t.current <- dummy_fiber

(* Dispatch runnable fibers onto free cores. *)
let dispatch t =
  while t.free_cores > 0 && not (Queue.is_empty t.runnable) do
    let f = Queue.pop t.runnable in
    t.free_cores <- t.free_cores - 1;
    t.switches <- t.switches + 1;
    f.hold_start <- t.clock.v;
    (match t.obs_hooks with
    | Some h -> h.on_switch ~fid:f.fid ~label:f.label ~now:t.clock.v
    | None -> ());
    resume_fiber t f
  done

let spawn t ?(label = "other") ?(daemon = false) ?at body =
  let f =
    {
      fid = t.next_fid;
      daemon;
      label;
      state = Created;
      cont = None;
      hold_start = 0.0;
      body = Some body;
      join_waiters = [];
      cell = dummy_cell;
      cell_label = "";
      cell_epoch = -1;
      eng = t;
    }
  in
  t.next_fid <- t.next_fid + 1;
  if not daemon then t.live <- t.live + 1;
  t.all_fibers <- f :: t.all_fibers;
  (match t.race with
  | Some r -> Race.add_fiber r ~parent:(current_fid t) ~fid:f.fid
  | None -> ());
  (match t.obs_hooks with
  | Some h -> h.on_spawn ~parent:(current_fid t) ~child:f.fid ~now:t.clock.v
  | None -> ());
  (match at with
  | None -> enqueue_runnable t f
  | Some time ->
      if time < t.clock.v then invalid_arg "Engine.spawn: at is in the past";
      f.state <- Sleeping;
      schedule t time f ~resume:false);
  f

let run ?until t =
  let dc = dctx () in
  let saved = dc.running in
  dc.running <- Some t;
  t.run_limit <- (match until with Some l -> l | None -> infinity);
  Fun.protect
    ~finally:(fun () -> dc.running <- saved)
    (fun () ->
      let stop = ref false in
      while not !stop do
        dispatch t;
        if t.heap_len = 0 then stop := true
        else begin
          let time = t.ev_time.(0) in
          match until with
          | Some limit when time > limit ->
              t.clock.v <- limit;
              stop := true
          | _ ->
              let f = t.ev_fiber.(0) in
              let resume = t.ev_resume.(0) in
              heap_remove_min t;
              t.clock.v <- time;
              if not resume then enqueue_runnable t f
              else if
                t.quantum > 0.0
                && t.clock.v -. f.hold_start >= t.quantum
                && not (Queue.is_empty t.runnable)
              then begin
                release_core t;
                enqueue_runnable t f
              end
              else resume_fiber t f
        end
      done;
      (* If we stopped because of [until] there may still be runnable fibers;
         leave them queued for the next call. *)
      (match until with
      | Some limit when t.clock.v < limit && t.heap_len = 0 && Queue.is_empty t.runnable ->
          t.clock.v <- limit
      | _ -> ());
      (* The host context now observes everything that ran (cooperative,
         single-threaded), so its clock must dominate all of it. *)
      match t.race with Some r -> Race.absorb_all r | None -> ())

let stalled_fibers t =
  if t.heap_len > 0 || not (Queue.is_empty t.runnable) then []
  else
    List.filter_map
      (fun f ->
        match f.state with
        | Parked when not f.daemon -> Some (f.fid, f.label)
        | _ -> None)
      t.all_fibers

let live_fibers t = t.live
let pending_work t = t.heap_len > 0 || not (Queue.is_empty t.runnable)

(* --- fiber-context operations --- *)

(* Fast path: when the running fiber's resume event would be the very
   next thing the event loop processes — no fiber is runnable and
   clock+d strictly precedes every queued event (our event would carry
   the largest seq, so a time tie goes to the queued event) — performing
   the effect, scheduling, popping and resuming is observable only as
   "charge d and advance the clock".  Doing exactly that inline skips
   two stack switches and the heap round-trip.  The [run_limit] guard
   keeps warmup/measure windows exact: an event past [until] must stay
   queued with the clock pinned at the limit, so that case suspends. *)
let consume d =
  if d > 0.0 then begin
    let dc = dctx () in
    match dc.running with
    | Some t
      when t.current != dummy_fiber
           && Queue.is_empty t.runnable
           && (t.heap_len = 0 || t.clock.v +. d < t.ev_time.(0))
           && t.clock.v +. d <= t.run_limit ->
        let f = t.current in
        charge t f d;
        (match t.obs_hooks with
        | Some h -> h.on_consume ~fid:f.fid ~label:f.label ~amount:d ~now:t.clock.v
        | None -> ());
        t.next_seq <- t.next_seq + 1;
        t.clock.v <- t.clock.v +. d
    | _ ->
        dc.pending <- d;
        Effect.perform Consume_e
  end

let sleep d =
  if d > 0.0 then begin
    (dctx ()).pending <- d;
    Effect.perform Sleep_e
  end
  else Effect.perform Yield

let yield () = Effect.perform Yield

let self t =
  if t.current == dummy_fiber then invalid_arg "Engine.self: no fiber is running"
  else t.current

let set_label t label = (self t).label <- label
let relabel f label = f.label <- label
let fiber_id f = f.fid
let fiber_label f = f.label
let finished f = f.state = Done

let park t =
  ignore (self t);
  Effect.perform Park

let wake t f =
  match f.state with
  | Parked ->
      (match t.race with
      | Some r -> Race.edge r ~from_:(current_fid t) ~to_:f.fid
      | None -> ());
      (match t.obs_hooks with
      | Some h -> h.on_wake ~waker:(current_fid t) ~wakee:f.fid ~now:t.clock.v
      | None -> ());
      enqueue_runnable t f
  | _ -> invalid_arg "Engine.wake: fiber is not parked"

let join t f =
  if not (finished f) then begin
    let me = self t in
    f.join_waiters <- me :: f.join_waiters;
    Effect.perform Park
  end
  else
    (* Already finished: the waiter still inherits the fiber's history. *)
    match t.race with
    | Some r -> Race.edge r ~from_:f.fid ~to_:(self t).fid
    | None -> ()

(* --- accounting --- *)

let reset_accounting t =
  Hashtbl.reset t.busy_tbl;
  t.busy_sorted <- [];
  t.acct_epoch <- t.acct_epoch + 1;
  t.window_start <- t.clock.v

let busy t label =
  match Hashtbl.find_opt t.busy_tbl label with Some c -> c.v | None -> 0.0

(* [busy_sorted] is maintained label-sorted at insertion, so this neither
   walks the hash table nor re-sorts. *)
let busy_labels t = List.map (fun (k, c) -> (k, c.v)) t.busy_sorted

let window t = t.clock.v -. t.window_start

let cores_used t label =
  let w = window t in
  if w <= 0.0 then 0.0 else busy t label /. w

let utilization t =
  let w = window t in
  if w <= 0.0 then 0.0
  else
    (* Sum in sorted label order: float addition is not associative, so a
       hash-order sum would depend on table internals. *)
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (busy_labels t) in
    total /. (w *. float_of_int t.n_cores)

let context_switches t = t.switches
