(** Loose accounting for global counters (paper §III-C).

    Cleaner threads may not update global counters directly — doing so
    per-VBN caused excessive synchronization overhead in the pre-White-
    Alligator design.  Instead each cleaner stages deltas in a local
    {!token}; tokens are applied to the global counters in a batched
    fashion from infrastructure context.  Counter reads may therefore lag
    their instantaneous logical value by the amount still staged in
    tokens; {!audit} bounds the discrepancy in tests. *)

type t
type token

val create : unit -> t
val token : t -> token
(** A new local token for one cleaner thread. *)

val read : t -> string -> int
(** Current (loose) value of a named counter; 0 if never touched. *)

val set : t -> string -> int -> unit
(** Direct assignment; only for initialization / recovery. *)

val add : t -> string -> int -> unit
(** Direct delta; only from contexts that already own the counter
    (infrastructure messages, mount). *)

val stage : token -> string -> int -> unit
(** Record a delta in the local token (no synchronization). *)

val cell : t -> string -> int ref
(** The named counter's storage cell (created zeroed if absent).  Hot
    paths cache the cell to skip the per-update name hash; mutating it is
    equivalent to {!add}. *)

val token_cell : token -> string -> int ref
(** Same, for a token: mutating the cell is equivalent to {!stage}.
    Cells survive {!flush} (they are zeroed, not removed). *)

val staged : token -> string -> int
val flush : t -> token -> int
(** Apply and clear every staged delta; returns how many distinct
    counters were updated (the infrastructure charges CPU per update). *)

val exact : t -> token list -> string -> int
(** The counter value with all given tokens logically applied — the
    "audited and corrected" read the paper describes for code paths that
    need precise values. *)

val names : t -> string list
