type op =
  | Create_vol of { vol : int; vvbn_space : int }
  | Create_file of { vol : int; file : int }
  | Write of { vol : int; file : int; fbn : int; content : int64 }
  | Delete_file of { vol : int; file : int }

exception Exhausted

type watermarks = { soft : float; hard : float; pace : float }

type t = {
  half_capacity : int;
  mutable filling : op list; (* newest first *)
  mutable filling_len : int;
  mutable cp_half : op list; (* newest first; [] when no CP active *)
  mutable cp_len : int; (* List.length cp_half, maintained incrementally *)
  mutable cp_active : bool;
  mutable torn : int; (* newest filling records torn by a crash *)
  mutable wm : watermarks option;
}

let check_watermarks = function
  | None -> ()
  | Some { soft; hard; pace } ->
      if not (0.0 < soft && soft < hard && hard <= 1.0) then
        invalid_arg "Nvlog: watermarks need 0 < soft < hard <= 1";
      if pace < 0.0 then invalid_arg "Nvlog: negative pacing delay"

let create ?(half_capacity = 16384) ?watermarks () =
  if half_capacity <= 0 then invalid_arg "Nvlog.create: bad capacity";
  check_watermarks watermarks;
  {
    half_capacity;
    filling = [];
    filling_len = 0;
    cp_half = [];
    cp_len = 0;
    cp_active = false;
    torn = 0;
    wm = watermarks;
  }

let capacity t = 2 * t.half_capacity
let is_exhausted t = t.filling_len >= 2 * t.half_capacity

let append t op =
  if is_exhausted t then raise Exhausted;
  t.filling <- op :: t.filling;
  t.filling_len <- t.filling_len + 1;
  if t.filling_len >= t.half_capacity then `Half_full else `Ok

let is_half_full t = t.filling_len >= t.half_capacity

(* Leave headroom for operations already in flight through the message
   scheduler when the throttle check happens in the client thread. *)
let is_nearly_full t = t.filling_len >= (2 * t.half_capacity) - (t.half_capacity / 8)
let pending t = t.filling_len
let in_cp t = t.cp_len
let total_pending t = t.filling_len + t.cp_len
let watermarks t = t.wm

let set_watermarks t wm =
  check_watermarks wm;
  t.wm <- wm

let cp_begin t =
  if t.cp_active then invalid_arg "Nvlog.cp_begin: CP already active";
  t.cp_half <- t.filling;
  t.cp_len <- t.filling_len;
  t.filling <- [];
  t.filling_len <- 0;
  t.cp_active <- true

let cp_commit t =
  if not t.cp_active then invalid_arg "Nvlog.cp_commit: no CP active";
  t.cp_half <- [];
  t.cp_len <- 0;
  t.cp_active <- false

(* Tear the newest [records] of the filling half, as a crash would tear
   records whose NVRAM DMA was still in flight (their acknowledgements
   never left the box).  Returns the torn operations, oldest first, so
   the crash harness can retract those acknowledgements from its oracle. *)
let tear t ~records =
  if records < 0 then invalid_arg "Nvlog.tear: negative record count";
  let k = min records (t.filling_len - t.torn) in
  let rec take k acc = function
    | rest when k = 0 -> (acc, rest)
    | [] -> (acc, [])
    | op :: rest -> take (k - 1) (op :: acc) rest
  in
  let torn_ops, _ = take k [] t.filling in
  t.torn <- t.torn + k;
  torn_ops

let torn t = t.torn

let drop_torn t =
  let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  drop t.torn t.filling

(* Replay stops cleanly at the first torn record: torn records are the
   newest ones, so the replayable prefix is everything before them. *)
let replay_ops t = List.rev t.cp_half @ List.rev (drop_torn t)

let recover_reset t =
  t.filling <- drop_torn t @ t.cp_half;
  t.filling_len <- List.length t.filling;
  t.torn <- 0;
  t.cp_half <- [];
  t.cp_len <- 0;
  t.cp_active <- false
