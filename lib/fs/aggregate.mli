(** The mounted file system: an aggregate of RAID groups housing FlexVol
    volumes (paper §II-B), plus the aggregate-wide allocation state that
    the write-allocation infrastructure manipulates.

    This module is pure bookkeeping — it never charges simulated CPU
    itself; callers (Waffinity messages, cleaner threads, the CP engine)
    charge costs according to what they touched.  All mutating entry
    points assume the caller holds the appropriate serialization (an
    affinity or a cleaner-owned structure), exactly as in WAFL.

    Crash semantics: {!crash} returns the {!persist} handle (disk,
    superblock, NVRAM log) and abandons all volatile state; {!recover}
    mounts a fresh instance from it and replays the log. *)

type t

type meta_ref =
  | Bmap_block of { vol : int; file : int; index : int }
  | Inode_chunk of { vol : int; index : int }
  | Container_chunk of { vol : int; index : int }
  | Vol_map_chunk of { vol : int; index : int }
  | Agg_map_chunk of { index : int }

type persist
(** What survives a crash: the disk image, the last durable superblock
    and the NVRAM log. *)

exception Corruption of string
(** Raised by {!read} when an on-disk block does not match the metadata
    that references it — the invariant a broken allocator violates. *)

val create :
  ?nvlog_half:int ->
  ?nvlog_watermarks:Nvlog.watermarks ->
  ?cache_blocks:int ->
  ?queue_depth:int ->
  ?obs:Wafl_obs.Trace.t ->
  ?flash:Wafl_flash.Ftl.config ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  geometry:Wafl_storage.Geometry.t ->
  unit ->
  t
(** [obs] (default disabled) is handed to each RAID group so device
    service spans and I/O metrics are recorded.  [nvlog_watermarks]
    (default none) enables watermark back-pressure in
    {!wait_for_log_space}; the thresholds live with the NVRAM log, so
    they survive {!crash}/{!recover}.  [flash] (default none) attaches a
    {!Wafl_flash.Ftl} media model to every RAID group: writes program
    NAND pages (with GC push-back), frees are TRIMmed, and the config
    survives {!crash}/{!recover} (the L2P itself is re-derived from the
    recovered activemap).  Off means the device is the flat slab it was
    before — bit-identical behavior. *)

val engine : t -> Wafl_sim.Engine.t
val cost : t -> Wafl_sim.Cost.t
val geometry : t -> Wafl_storage.Geometry.t
val disk : t -> Layout.block Wafl_storage.Disk.t
val raid : t -> rg:int -> Layout.block Wafl_storage.Raid.t
val raid_groups : t -> Layout.block Wafl_storage.Raid.t array
val nvlog : t -> Nvlog.t
val counters : t -> Counters.t
val agg_map : t -> Bitmap_file.t

val flash_enabled : t -> bool

val ftls : t -> Wafl_flash.Ftl.t list
(** The per-RAID-group FTLs, in group order; empty without a media
    model. *)

val set_stream_classifier : t -> (Layout.block -> int) -> unit
(** Route tetris payloads to flash write streams (hot metafiles vs cold
    user data).  No-op without a media model; installed by
    {!Wafl_core.Walloc} when its [streams] policy is on. *)

val refresh_flash_counters : t -> unit
(** Mirror the FTL counters (host/GC pages written, erases, GC runs,
    TRIMs, accumulated GC stall, WAF×100) into {!counters} under the
    ["flash_"] prefix.  No-op without a media model. *)

(** {1 Client operations} *)

val create_volume : t -> vvbn_space:int -> Volume.t
val volume : t -> int -> Volume.t option
val volume_exn : t -> int -> Volume.t
val volumes : t -> Volume.t list
val create_file : t -> vol:int -> File.t

val delete_file : t -> vol:int -> file:int -> unit
(** Log the deletion and queue the file as a zombie; its blocks (data,
    block-map metafile blocks, vvbns) are reclaimed by the next CP. *)

val write :
  t -> vol:int -> file:int -> fbn:int -> content:int64 -> [ `Ok | `Log_half_full | `Log_exhausted ]
(** Log the operation, dirty the buffer and queue the inode for the next
    CP.  [`Log_half_full] asks the caller to trigger a CP.
    [`Log_exhausted] means NVRAM is completely full and the operation was
    shed {e without} being logged or applied (counted as
    ["nvlog_exhausted_writes"] in {!counters} and reported by
    {!Report.faults}); with watermark back-pressure enabled this is
    unreachable. *)

val read : t -> vol:int -> file:int -> fbn:int -> int64 option
(** Dirty buffers first, then the on-disk tree.  [None] for holes. *)

val read_cached_status :
  t -> vol:int -> file:int -> fbn:int -> int64 option * [ `Buffered | `Hit | `Miss ]
(** Like {!read}, also reporting how the block was served: from a dirty
    buffer, from the read buffer cache, or from disk (the caller charges
    the miss cost). *)

val buffer_cache : t -> Buffer_cache.t

val read_pvbn : t -> int -> Layout.block option
(** Fault-aware physical read: goes through {!Raid.read} so latent media
    errors and degraded groups are reconstructed from the parity model.
    Raises {!Corruption} on a double failure ([`Lost]). *)

val refresh_fault_counters : t -> unit
(** Mirror the attached fault plan's counters ([media_errors],
    [degraded_reads], [transient_retries], [rebuild_blocks],
    [unrecoverable_reads]) into {!counters}.  No-op without a fault
    plan. *)

val wait_for_log_space : t -> unit
(** Write-admission throttle; call once before each {!write}.

    Without watermarks (the default): parks while the NVRAM filling half
    is full and a CP is still running, returns immediately otherwise —
    the legacy blanket stall.

    With {!Nvlog.watermarks} configured: admission control against NVRAM
    fill (occupancy plus already-admitted writes).  Crossing the soft
    watermark triggers an early CP (via {!set_cp_trigger}) and paces the
    write with a deterministic delay; at the hard watermark admission
    parks until a CP commit frees space.  Time spent parked or paced
    accumulates in ["nvlog_stall_us"] ({!counters}) and the
    ["nvlog.stall_us"] metric. *)

val set_cp_trigger : t -> (unit -> unit) -> unit
(** Install the early-CP hook used by watermark admission (normally
    [Cp.request], installed by [Walloc.create]). *)

val stall_time : t -> float
(** Total virtual µs clients have spent stalled (parked or paced) in
    {!wait_for_log_space}. *)

val hard_dwell_time : t -> float
(** Subset of {!stall_time}: virtual µs spent parked above the hard
    watermark (also in the [nvlog_hard_dwell_us] counter and the
    [nvlog.hard_dwell_us] metric). *)

val chaos_inject_hard_dwell : float ref
(** Test-only: extra dwell µs booked per {!wait_for_log_space} call.
    Pure accounting (no sleep), so setting it cannot perturb a run. *)

(** {1 Physical allocation state (infrastructure side)} *)

val commit_alloc_pvbn : t -> int -> unit
val commit_free_pvbn : t -> int -> unit
val pvbn_allocatable : t -> int -> bool
(** Free in the activemap {e and} not frozen by a free earlier in the
    running CP. *)

val commit_alloc_vvbn : t -> vol:Volume.t -> int -> unit
val commit_free_vvbn : t -> vol:Volume.t -> int -> unit
val vvbn_allocatable : t -> vol:Volume.t -> int -> bool

val select_aa : t -> rg:int -> exclude:int list -> int option
(** The Allocation Area of the RAID group with the most free blocks
    (§IV-D), excluding those currently being consumed. *)

val aa_free : t -> rg:int -> aa:int -> int
val select_vvbn_region : t -> vol:Volume.t -> exclude:int list -> int option
val vvbn_region_free : t -> vol:Volume.t -> region:int -> int
val vvbn_region_bits : int

(** {1 Sanitizer data domains}

    Canonical shared-state ids for [Engine.probe] and the
    {!Wafl_waffinity.Isolation} owner map: one domain per metafile map
    block, the partition-private unit the affinity rules protect
    (DESIGN.md §4.7). *)

val agg_map_domain : index:int -> string
val vol_map_domain : vol:int -> index:int -> string

val pvbn_domain : int -> string
(** Domain of the aggregate-map block covering this pvbn. *)

val vvbn_domain : vol:int -> int -> string
(** Domain of the volume-map block covering this vvbn. *)

(** {1 Consistency-point support} *)

val cp_snapshot : t -> (Volume.t * File.t list) list
(** Atomically freeze the dirty state of every volume and rotate the
    NVRAM log halves; returns each volume's cleaning work. *)

val take_dirty_meta : t -> meta_ref list
(** Dirty metafile blocks in dependency order (bmap, inode, container,
    volume map, aggregate map), clearing the dirty flags.  Metafile
    relocation during the CP re-dirties blocks; the CP engine calls this
    repeatedly until it returns []. *)

val meta_payload : t -> meta_ref -> Layout.block
(** Serialize a metafile block for writing.  Must be called after all
    location assignments of the current pass ({!meta_set_location}). *)

val meta_location : t -> meta_ref -> int
(** Current on-disk pvbn of a metafile block, or -1 when it was never
    placed or its owning volume/file no longer exists.  The CP repair
    phase uses this to check that a failed metafile write is still the
    current location before re-allocating it. *)

val meta_set_location : t -> meta_ref -> int -> int
(** Record a metafile block's new pvbn; returns the previous one (-1 if
    none), which the caller must free. *)

val make_superblock : t -> Layout.superblock
val publish_superblock : t -> Layout.superblock -> unit
(** Make the superblock durable, commit the NVRAM log half, thaw
    recently freed VBNs, and bump the generation. *)

val superblock : t -> Layout.superblock option
val generation : t -> int
val cp_count : t -> int

(** {1 Snapshots} *)

val create_snapshot : t -> name:string -> Snapshot.t
(** Pin the tree of the last committed CP.  The pinned blocks stop being
    reusable until the snapshot is deleted.  Requires at least one
    committed CP and no CP in flight; durable from the next CP on. *)

val snapshots : t -> Snapshot.t list
val find_snapshot : t -> string -> Snapshot.t option
val snapshot_held : t -> int -> bool
(** Whether any snapshot references the given pvbn. *)

val read_snapshot : t -> Snapshot.t -> vol:int -> file:int -> fbn:int -> int64 option
val delete_snapshot : t -> Snapshot.t -> unit
(** Release the snapshot; blocks no longer referenced by the active tree
    or another snapshot become allocatable again. *)

(** {1 Crash and recovery} *)

val persist : t -> persist
val crash : t -> persist
val recover :
  ?cache_blocks:int ->
  ?queue_depth:int ->
  ?obs:Wafl_obs.Trace.t ->
  Wafl_sim.Engine.t ->
  cost:Wafl_sim.Cost.t ->
  persist ->
  t
(** Mount from the persistent image: load the superblock tree, recompute
    allocation summaries and counters, then replay the NVRAM log. *)

(** {1 Integrity checking (tests)} *)

val fsck : t -> unit
(** Full cross-check of block maps, container maps, activemaps and
    counters.  Raises [Failure] with a description on any inconsistency.
    Call at quiescent points (no CP in flight). *)
