(** Nonvolatile operation log (paper §II-C).

    Operations that change file-system state are logged here so the
    client can be answered before the data reaches disk; a consistency
    point later flushes the accumulated state, after which the covered
    log prefix is discarded.  The log content survives a simulated crash
    ({!Aggregate.crash} keeps it), and recovery replays it on top of the
    last committed CP.

    The log has two halves, as in ONTAP: while a CP drains one half, new
    operations fill the other.  {!append} reports when the filling half
    has reached its capacity, which is the primary CP trigger. *)

type op =
  | Create_vol of { vol : int; vvbn_space : int }
  | Create_file of { vol : int; file : int }
  | Write of { vol : int; file : int; fbn : int; content : int64 }
  | Delete_file of { vol : int; file : int }

type t

exception Exhausted
(** Raised by {!append} when the whole NVRAM (both halves) is full: the
    operation was {e not} logged.  The write path converts this into a
    typed shed ([`Log_exhausted]) counted in {!Counters}; with watermark
    back-pressure enabled it is unreachable, because admission stops at
    the hard watermark before the log can fill. *)

type watermarks = {
  soft : float;  (** fill fraction that triggers an early CP and pacing *)
  hard : float;  (** fill fraction at which admission parks until a CP commits *)
  pace : float;  (** max per-write pacing delay (virtual µs) at the hard mark *)
}
(** Back-pressure thresholds as fractions of total NVRAM (both halves).
    Requires [0 < soft < hard <= 1] and [pace >= 0]. *)

val create : ?half_capacity:int -> ?watermarks:watermarks -> unit -> t
(** [half_capacity] (default 16384) is the number of operations one half
    can hold before a CP should be triggered.  [watermarks] (default
    none: legacy nearly-full throttling only) enables watermark
    back-pressure in {!Aggregate.wait_for_log_space}; it lives with the
    log so it survives {!Aggregate.crash}/[recover]. *)

val append : t -> op -> [ `Ok | `Half_full ]
(** Log an operation into the filling half.  Returns [`Half_full] when
    this append reached (or exceeded) the half's capacity — the CP
    trigger.  Raises {!Exhausted} (without logging the operation) if the
    whole NVRAM (both halves) is full — the caller must throttle clients
    against CP progress before that point. *)

val is_half_full : t -> bool
(** CP-trigger threshold reached. *)

val is_nearly_full : t -> bool
(** The filling half is close to exhausting NVRAM; clients must park
    until the running CP commits. *)

val is_exhausted : t -> bool
(** Both halves full: the next {!append} would raise {!Exhausted}. *)

val capacity : t -> int
(** Total operations NVRAM can hold (both halves). *)

val pending : t -> int
(** Operations in the filling half (not yet covered by a CP snapshot). *)

val in_cp : t -> int
(** Operations in the half currently being flushed by a CP. *)

val total_pending : t -> int
(** [pending + in_cp]: all operations occupying NVRAM. *)

val watermarks : t -> watermarks option
val set_watermarks : t -> watermarks option -> unit

val cp_begin : t -> unit
(** Swap halves: everything logged so far is now covered by the starting
    CP.  Raises [Invalid_argument] if a CP half is already active. *)

val cp_commit : t -> unit
(** Discard the CP half after the superblock is durable. *)

val tear : t -> records:int -> op list
(** Simulate a torn NVRAM tail at crash: the newest [records] operations
    of the filling half (whose DMA was still in flight — their replies
    never left the box) become unreadable.  Clamped to the filling half's
    live length; returns the torn operations oldest-first so the crash
    harness can retract those acknowledgements from its oracle.
    {!replay_ops} then stops cleanly at the first torn record instead of
    replaying garbage, and {!recover_reset} discards them. *)

val torn : t -> int
(** Records currently torn (0 except between {!tear} and recovery). *)

val replay_ops : t -> op list
(** All surviving operations in order (CP half first, then the filling
    half up to the first torn record); used by crash recovery. *)

val recover_reset : t -> unit
(** After a crash: merge any CP half back into the filling half (that CP
    never committed, so its operations are live again) and clear the
    CP-active flag. *)
