open Wafl_storage

open Wafl_sim

type meta_ref =
  | Bmap_block of { vol : int; file : int; index : int }
  | Inode_chunk of { vol : int; index : int }
  | Container_chunk of { vol : int; index : int }
  | Vol_map_chunk of { vol : int; index : int }
  | Agg_map_chunk of { index : int }

type persist = {
  p_disk : Layout.block Disk.t;
  mutable p_sb : Layout.superblock option;
  p_nvlog : Nvlog.t;
  p_flash : Wafl_flash.Ftl.config option;
      (* media model config; the FTL state itself is volatile (the real
         device rebuilds its L2P from NAND metadata on power-on, modeled
         by re-deriving fill from the recovered activemap) *)
}

exception Corruption of string

let vvbn_region_bits = Layout.bits_per_map_block

(* --- sanitizer data-domain names (DESIGN.md §4.7) ---

   One domain per metafile map block: the partition-private unit the
   affinity rules protect.  The same names are used by the allocation
   probes here, the scan probes in Infra, and the Isolation owner map. *)

let agg_map_domain ~index = Printf.sprintf "agg.map/%d" index
let vol_map_domain ~vol ~index = Printf.sprintf "vol/%d.map/%d" vol index
let pvbn_domain pvbn = agg_map_domain ~index:(pvbn / Layout.bits_per_map_block)
let vvbn_domain ~vol vvbn = vol_map_domain ~vol ~index:(vvbn / Layout.bits_per_map_block)

type t = {
  eng : Engine.t;
  cost : Cost.t;
  geom : Geometry.t;
  pers : persist;
  raids : Layout.block Raid.t array;
  flash_on : bool; (* hoisted: any raid has an FTL attached *)
  agg_map : Bitmap_file.t;
  aa_free_tbl : int array array; (* rg -> aa -> free blocks *)
  mutable vols : (int * Volume.t) list; (* ascending ids; volumes are few *)
  vols_tbl : (int, Volume.t) Hashtbl.t; (* same volumes; O(1) lookup *)
  free_cell : int ref; (* cached [free_counter] cell: no hash per block *)
  held_cell : int ref; (* cached "snapshot_held_blocks" cell *)
  vol_free_cells : (int, int ref) Hashtbl.t; (* vid -> cached vvbn-free cell *)
  (* Union of every snapshot's held words, rebuilt whenever [snaps]
     changes, so [snapshot_held] is one bit test instead of a scan. *)
  mutable snap_union : int64 array;
  vvbn_region_free : (int, int array) Hashtbl.t; (* vol id -> region free counts *)
  counters : Counters.t;
  mutable recently_freed : int64 array; (* bitmap over pvbns; never iterated *)
  mutable last_vol : Volume.t option; (* one-entry [volume] lookup cache *)
  cache : Buffer_cache.t;
  mutable snaps : Snapshot.t list;
  log_space : Sync.Waitq.t;
  mutable next_vol_id : int;
  mutable generation : int;
  mutable cp_count : int;
  mutable cp_in_progress : bool;
  (* Overload protection (DESIGN.md §4.11).  [cp_trigger] is installed by
     the CP engine so watermark admission can start an early CP;
     [log_inflight] counts writes admitted past [wait_for_log_space] but
     not yet appended, so admission sees NVRAM slots already spoken for. *)
  mutable cp_trigger : (unit -> unit) option;
  mutable log_inflight : int;
  mutable stall_us : float;
  mutable hard_dwell_us : float;
  stall_cell : int ref;
  hard_dwell_cell : int ref;
  exhausted_cell : int ref;
  m_stall : Wafl_obs.Metrics.counter;
  m_hard_dwell : Wafl_obs.Metrics.counter;
}

(* Test-only chaos hook: each [wait_for_log_space] call books this many
   extra virtual µs of hard-watermark dwell.  Pure accounting — no sleep,
   no scheduling — so runs stay bit-identical with it set. *)
let chaos_inject_hard_dwell = ref 0.0

let free_counter = "agg_free_blocks"
let vol_free_counter vid = Printf.sprintf "vol%d_free_vvbns" vid

let make_raids eng cost disk geom queue_depth obs flash_cfg =
  Array.init (Geometry.raid_group_count geom) (fun rg ->
      let flash =
        Option.map
          (fun cfg ->
            let lpns = Geometry.data_drives geom ~rg * Geometry.drive_blocks geom in
            Wafl_flash.Ftl.create ?obs eng ~cfg ~lpns ~rg)
          flash_cfg
      in
      Raid.create ?queue_depth ?obs ?flash eng ~cost ~disk ~rg)

let init_aa_free geom =
  Array.init (Geometry.raid_group_count geom) (fun rg ->
      Array.make (Geometry.aa_count geom)
        (Geometry.aa_stripes geom * Geometry.data_drives geom ~rg))

let create ?(nvlog_half = 16384) ?nvlog_watermarks ?(cache_blocks = 65536) ?queue_depth ?obs
    ?flash eng ~cost ~geometry () =
  let disk = Disk.create geometry in
  let pers =
    {
      p_disk = disk;
      p_sb = None;
      p_nvlog = Nvlog.create ~half_capacity:nvlog_half ?watermarks:nvlog_watermarks ();
      p_flash = flash;
    }
  in
  let counters = Counters.create () in
  let t =
    {
      eng;
      cost;
      geom = geometry;
      pers;
      raids = make_raids eng cost disk geometry queue_depth obs flash;
      flash_on = flash <> None;
      agg_map = Bitmap_file.create ~bits:(Geometry.total_data_blocks geometry);
      aa_free_tbl = init_aa_free geometry;
      vols = [];
      vols_tbl = Hashtbl.create 8;
      vol_free_cells = Hashtbl.create 8;
      free_cell = Counters.cell counters free_counter;
      held_cell = Counters.cell counters "snapshot_held_blocks";
      snap_union = [||];
      vvbn_region_free = Hashtbl.create 8;
      counters;
      recently_freed = Array.make ((Geometry.total_data_blocks geometry + 63) / 64) 0L;
      last_vol = None;
      cache = Buffer_cache.create ~capacity:cache_blocks;
      snaps = [];
      log_space = Sync.Waitq.create eng;
      next_vol_id = 0;
      generation = 0;
      cp_count = 0;
      cp_in_progress = false;
      cp_trigger = None;
      log_inflight = 0;
      stall_us = 0.0;
      hard_dwell_us = 0.0;
      stall_cell = Counters.cell counters "nvlog_stall_us";
      hard_dwell_cell = Counters.cell counters "nvlog_hard_dwell_us";
      exhausted_cell = Counters.cell counters "nvlog_exhausted_writes";
      m_stall =
        Wafl_obs.Metrics.counter
          (Wafl_obs.Trace.metrics (Option.value obs ~default:Wafl_obs.Trace.disabled))
          "nvlog.stall_us";
      m_hard_dwell =
        Wafl_obs.Metrics.counter
          (Wafl_obs.Trace.metrics (Option.value obs ~default:Wafl_obs.Trace.disabled))
          "nvlog.hard_dwell_us";
    }
  in
  Counters.set t.counters free_counter (Geometry.total_data_blocks geometry);
  t

let engine t = t.eng
let cost t = t.cost
let geometry t = t.geom
let disk t = t.pers.p_disk
let raid t ~rg = t.raids.(rg)
let raid_groups t = t.raids
let nvlog t = t.pers.p_nvlog
let counters t = t.counters
let agg_map t = t.agg_map

(* --- volumes and files --- *)

(* The NVRAM log is an append-only device with its own internal ordering
   (a lock in real WAFL whose cost the write path amortizes); appends
   from different affinities are legal, so model it as atomic. *)
let log_append t entry =
  if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"fs.nvlog";
  Nvlog.append (nvlog t) entry

let volume t vid =
  match t.last_vol with
  | Some v when Volume.id v = vid -> t.last_vol
  | _ ->
      let r = Hashtbl.find_opt t.vols_tbl vid in
      (match r with Some _ -> t.last_vol <- r | None -> ());
      r

let volume_exn t vid =
  match volume t vid with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Aggregate: no volume %d" vid)

let volumes t = List.map snd t.vols

let region_count vvbn_space = (vvbn_space + vvbn_region_bits - 1) / vvbn_region_bits

let register_volume t vol =
  t.vols <- t.vols @ [ (Volume.id vol, vol) ];
  Hashtbl.replace t.vols_tbl (Volume.id vol) vol;
  if Volume.id vol >= t.next_vol_id then t.next_vol_id <- Volume.id vol + 1;
  let nregions = region_count (Volume.vvbn_space vol) in
  let free = Array.make nregions 0 in
  for r = 0 to nregions - 1 do
    let lo = r * vvbn_region_bits in
    let hi = min (Volume.vvbn_space vol - 1) (((r + 1) * vvbn_region_bits) - 1) in
    free.(r) <- hi - lo + 1
  done;
  Hashtbl.replace t.vvbn_region_free (Volume.id vol) free;
  Counters.set t.counters (vol_free_counter (Volume.id vol)) (Volume.vvbn_space vol);
  Hashtbl.replace t.vol_free_cells (Volume.id vol)
    (Counters.cell t.counters (vol_free_counter (Volume.id vol)))

let create_volume t ~vvbn_space =
  let vid = t.next_vol_id in
  let vol = Volume.create ~id:vid ~vvbn_space in
  register_volume t vol;
  ignore (log_append t (Nvlog.Create_vol { vol = vid; vvbn_space }));
  vol

let create_file t ~vol =
  let v = volume_exn t vol in
  let fid = Volume.fresh_file_id v in
  let f = File.create ~vol ~id:fid in
  Volume.add_file v f;
  ignore (log_append t (Nvlog.Create_file { vol; file = fid }));
  f

let delete_file t ~vol ~file =
  let v = volume_exn t vol in
  let f = Volume.file_exn v file in
  Volume.mark_deleted v f;
  ignore (log_append t (Nvlog.Delete_file { vol; file }))

let write t ~vol ~file ~fbn ~content =
  (* Consume this write's admission reservation (watermark mode only;
     zero and untouched otherwise). *)
  if t.log_inflight > 0 then t.log_inflight <- t.log_inflight - 1;
  if Nvlog.is_exhausted (nvlog t) then begin
    (* Typed graceful shed: nothing was logged or applied, so the client
       simply never gets an acknowledgement for this op.  Unreachable
       once watermark back-pressure is on — admission stops at the hard
       watermark with headroom to spare. *)
    t.exhausted_cell := !(t.exhausted_cell) + 1;
    `Log_exhausted
  end
  else begin
    let v = volume_exn t vol in
    let f = Volume.file_exn v file in
    File.write f ~fbn ~content;
    Volume.note_dirty v f;
    match log_append t (Nvlog.Write { vol; file; fbn; content }) with
    | `Ok -> `Ok
    | `Half_full -> `Log_half_full
  end

let buffer_cache t = t.cache

(* All on-disk reads funnel through the RAID read path so that latent
   media errors and degraded groups are handled (reconstruction from the
   parity model) instead of silently returning the stored payload. *)
let read_pvbn t pvbn =
  let loc = Geometry.locate t.geom pvbn in
  match Raid.read t.raids.(loc.Geometry.rg) pvbn with
  | `Ok p -> Some p
  | `Degraded p -> Some p
  | `Absent -> None
  | `Lost ->
      raise
        (Corruption
           (Printf.sprintf "pvbn %d unrecoverable: media error in a degraded RAID group" pvbn))

let flash_enabled t = t.flash_on
let ftls t = Array.to_list t.raids |> List.filter_map Raid.flash

(* Route tetris payloads to flash write streams (no-op without a media
   model; installed by Walloc when the [streams] policy is on). *)
let set_stream_classifier t f = Array.iter (fun r -> Raid.set_stream_of r f) t.raids

(* Mirror the per-group FTL counters into the global counter table so
   operators and tests read them through Counters / Report. *)
let refresh_flash_counters t =
  if t.flash_on then begin
    let sum f = List.fold_left (fun acc ftl -> acc + f ftl) 0 (ftls t) in
    let sumf f = List.fold_left (fun acc ftl -> acc +. f ftl) 0.0 (ftls t) in
    Counters.set t.counters "flash_host_pages" (sum Wafl_flash.Ftl.host_pages);
    Counters.set t.counters "flash_gc_pages" (sum Wafl_flash.Ftl.gc_pages);
    Counters.set t.counters "flash_erases" (sum Wafl_flash.Ftl.erases);
    Counters.set t.counters "flash_gc_runs" (sum Wafl_flash.Ftl.gc_runs);
    Counters.set t.counters "flash_trims" (sum Wafl_flash.Ftl.trims);
    Counters.set t.counters "flash_gc_stall_us"
      (int_of_float (sumf Wafl_flash.Ftl.gc_stall_us));
    (* WAF scaled by 100 (the counter table is integers). *)
    let host = sum Wafl_flash.Ftl.host_pages and gc = sum Wafl_flash.Ftl.gc_pages in
    if host > 0 then
      Counters.set t.counters "flash_waf_x100" (100 * (host + gc) / host)
  end

(* Mirror the fault-plan counters into the global counter table so
   operators and tests read them through Counters / Report. *)
let refresh_fault_counters t =
  match Disk.fault t.pers.p_disk with
  | None -> ()
  | Some f ->
      Counters.set t.counters "media_errors" (Fault.media_errors_seen f);
      Counters.set t.counters "degraded_reads" (Fault.degraded_reads f);
      Counters.set t.counters "transient_retries" (Fault.transient_retries f);
      Counters.set t.counters "rebuild_blocks" (Fault.rebuild_blocks f);
      Counters.set t.counters "unrecoverable_reads" (Fault.unrecoverable_reads f)

(* Like [read] but reports whether the on-disk path hit the buffer cache;
   the caller charges the miss cost.  [`Buffered] means the block was
   served from a dirty buffer and never reached the disk path. *)
let read_cached_status t ~vol ~file ~fbn =
  let v = volume_exn t vol in
  let f = Volume.file_exn v file in
  match File.read_cached f ~fbn with
  | Some c -> (Some c, `Buffered)
  | None -> (
      match File.vvbn_of_fbn f fbn with
      | -1 -> (None, `Buffered)
      | vvbn -> (
          match Volume.pvbn_of_vvbn v vvbn with
          | -1 ->
              raise
                (Corruption
                   (Printf.sprintf "vol %d file %d fbn %d: vvbn %d has no container entry"
                      vol file fbn vvbn))
          | pvbn -> (
              if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"fs.buffer_cache";
              let status = if Buffer_cache.probe t.cache pvbn then `Hit else `Miss in
              match read_pvbn t pvbn with
              | Some (Layout.Data d) when d.vol = vol && d.file = file && d.fbn = fbn ->
                  (Some d.content, status)
              | Some _ ->
                  raise
                    (Corruption
                       (Printf.sprintf
                          "vol %d file %d fbn %d: pvbn %d holds someone else's block" vol
                          file fbn pvbn))
              | None ->
                  raise
                    (Corruption
                       (Printf.sprintf "vol %d file %d fbn %d: pvbn %d never written" vol
                          file fbn pvbn)))))

let read t ~vol ~file ~fbn = fst (read_cached_status t ~vol ~file ~fbn)

let set_cp_trigger t trigger = t.cp_trigger <- Some trigger
let request_cp t = match t.cp_trigger with Some trigger -> trigger () | None -> ()
let stall_time t = t.stall_us

let note_stall t dt =
  if dt > 0.0 then begin
    t.stall_us <- t.stall_us +. dt;
    t.stall_cell := int_of_float t.stall_us;
    Wafl_obs.Metrics.addf t.m_stall dt
  end

let hard_dwell_time t = t.hard_dwell_us

let note_hard_dwell t dt =
  if dt > 0.0 then begin
    t.hard_dwell_us <- t.hard_dwell_us +. dt;
    t.hard_dwell_cell := int_of_float t.hard_dwell_us;
    Wafl_obs.Metrics.addf t.m_hard_dwell dt
  end

let wait_for_log_space t =
  if !chaos_inject_hard_dwell > 0.0 then note_hard_dwell t !chaos_inject_hard_dwell;
  let nv = nvlog t in
  match Nvlog.watermarks nv with
  | None ->
      (* Legacy blanket throttle: park only while a CP is draining and
         the filling half is nearly full. *)
      if Nvlog.is_nearly_full nv && t.cp_in_progress then begin
        let w0 = Engine.now t.eng in
        while Nvlog.is_nearly_full nv && t.cp_in_progress do
          Sync.Waitq.wait t.log_space
        done;
        note_stall t (Engine.now t.eng -. w0)
      end
  | Some wm ->
      (* Watermark admission: fill counts NVRAM occupancy plus writes
         already admitted but not yet appended (their messages are in
         flight through the scheduler), so a burst cannot slip past the
         throttle before any of its appends land. *)
      if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"fs.nvlog";
      let cap = float_of_int (Nvlog.capacity nv) in
      let fill () = float_of_int (Nvlog.total_pending nv + t.log_inflight) /. cap in
      if fill () >= wm.Nvlog.soft then begin
        let w0 = Engine.now t.eng in
        request_cp t;
        let h0 = Engine.now t.eng in
        while
          fill () >= wm.Nvlog.hard && (t.cp_in_progress || Option.is_some t.cp_trigger)
        do
          (* Re-arm the CP request each round: the commit that woke us may
             have left the log above the hard mark. *)
          request_cp t;
          Sync.Waitq.wait t.log_space
        done;
        note_hard_dwell t (Engine.now t.eng -. h0);
        (* Reserve before pacing, with no yield since the hard check: a
           writer sleeping out its pacing delay must already count
           against fill, or a wave of simultaneously-woken writers would
           all pass the hard check and overrun the log together.  With
           check-and-reserve atomic, admissions stop within one record
           of the hard mark and exhaustion is unreachable. *)
        t.log_inflight <- t.log_inflight + 1;
        (* Soft region: pace the admitted write against CP progress with a
           deterministic delay growing toward [pace] at the hard mark. *)
        let f = fill () in
        if f >= wm.Nvlog.soft then
          Engine.sleep
            (wm.Nvlog.pace
            *. Float.min 1.0 ((f -. wm.Nvlog.soft) /. (wm.Nvlog.hard -. wm.Nvlog.soft)));
        note_stall t (Engine.now t.eng -. w0)
      end
      else t.log_inflight <- t.log_inflight + 1

(* --- physical allocation state --- *)

let aa_of_pvbn t pvbn =
  let loc = Geometry.locate t.geom pvbn in
  (loc.Geometry.rg, Geometry.aa_of_dbn t.geom loc.Geometry.dbn)

let commit_alloc_pvbn t pvbn =
  if Engine.sanitizing t.eng then Engine.probe_locked t.eng ~shared:(pvbn_domain pvbn) Race.Write;
  Bitmap_file.set t.agg_map pvbn;
  let rg, aa = aa_of_pvbn t pvbn in
  t.aa_free_tbl.(rg).(aa) <- t.aa_free_tbl.(rg).(aa) - 1;
  t.free_cell := !(t.free_cell) - 1

let vol_free_cell t vid =
  match Hashtbl.find_opt t.vol_free_cells vid with
  | Some c -> c
  | None -> invalid_arg "Aggregate: unregistered volume"

let snapshot_held t pvbn =
  let w = pvbn lsr 6 in
  w < Array.length t.snap_union
  && Int64.logand t.snap_union.(w) (Int64.shift_left 1L (pvbn land 63)) <> 0L

let rebuild_snap_union t =
  let len =
    List.fold_left (fun m s -> max m (Array.length (Snapshot.held_words s))) 0 t.snaps
  in
  let u = Array.make len 0L in
  List.iter
    (fun s ->
      Array.iteri (fun i x -> u.(i) <- Int64.logor u.(i) x) (Snapshot.held_words s))
    t.snaps;
  t.snap_union <- u

let commit_free_pvbn t pvbn =
  if Engine.sanitizing t.eng then begin
    Engine.probe_locked t.eng ~shared:(pvbn_domain pvbn) Race.Write;
    Engine.probe_atomic t.eng ~shared:"fs.buffer_cache"
  end;
  Bitmap_file.clear t.agg_map pvbn;
  (* The block's content is dead; a future occupant must read from disk. *)
  Buffer_cache.invalidate t.cache pvbn;
  if snapshot_held t pvbn then
    (* The block leaves the active tree but a snapshot still references
       it: not reusable, not free space. *)
    t.held_cell := !(t.held_cell) + 1
  else begin
    let rg, aa = aa_of_pvbn t pvbn in
    t.aa_free_tbl.(rg).(aa) <- t.aa_free_tbl.(rg).(aa) + 1;
    t.free_cell := !(t.free_cell) + 1
  end;
  let w = pvbn lsr 6 in
  t.recently_freed.(w) <- Int64.logor t.recently_freed.(w) (Int64.shift_left 1L (pvbn land 63));
  (* TRIM: the flash page backing a freed block is dead — without this
     the FTL's GC would keep relocating pages the file system no longer
     references, and the device-fill axis would only ever grow. *)
  if t.flash_on then
    Raid.trim t.raids.((Geometry.locate t.geom pvbn).Geometry.rg) pvbn

let pvbn_allocatable t pvbn =
  (not (Bitmap_file.mem t.agg_map pvbn))
  && Int64.logand t.recently_freed.(pvbn lsr 6) (Int64.shift_left 1L (pvbn land 63)) = 0L
  && not (snapshot_held t pvbn)

let region_free t vol =
  match Hashtbl.find_opt t.vvbn_region_free (Volume.id vol) with
  | Some a -> a
  | None -> invalid_arg "Aggregate: unregistered volume"

let commit_alloc_vvbn t ~vol vvbn =
  if Engine.sanitizing t.eng then
    Engine.probe_locked t.eng ~shared:(vvbn_domain ~vol:(Volume.id vol) vvbn) Race.Write;
  Bitmap_file.set (Volume.vol_map vol) vvbn;
  let regions = region_free t vol in
  let r = vvbn / vvbn_region_bits in
  regions.(r) <- regions.(r) - 1;
  decr (vol_free_cell t (Volume.id vol))

let commit_free_vvbn t ~vol vvbn =
  if Engine.sanitizing t.eng then
    Engine.probe_locked t.eng ~shared:(vvbn_domain ~vol:(Volume.id vol) vvbn) Race.Write;
  Bitmap_file.clear (Volume.vol_map vol) vvbn;
  let regions = region_free t vol in
  let r = vvbn / vvbn_region_bits in
  regions.(r) <- regions.(r) + 1;
  Volume.note_freed_vvbn vol vvbn;
  incr (vol_free_cell t (Volume.id vol))

let vvbn_allocatable t ~vol vvbn =
  ignore t;
  (not (Bitmap_file.mem (Volume.vol_map vol) vvbn)) && Volume.vvbn_reusable vol vvbn

let select_best counts ~exclude =
  let best = ref (-1) and best_free = ref 0 in
  Array.iteri
    (fun i free ->
      if free > !best_free && not (List.mem i exclude) then begin
        best := i;
        best_free := free
      end)
    counts;
  if !best < 0 then None else Some !best

let select_aa t ~rg ~exclude = select_best t.aa_free_tbl.(rg) ~exclude
let aa_free t ~rg ~aa = t.aa_free_tbl.(rg).(aa)
let select_vvbn_region t ~vol ~exclude = select_best (region_free t vol) ~exclude
let vvbn_region_free t ~vol ~region = (region_free t vol).(region)

(* --- consistency-point support --- *)

let cp_snapshot t =
  if t.cp_in_progress then invalid_arg "Aggregate.cp_snapshot: CP already running";
  t.cp_in_progress <- true;
  if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"fs.nvlog";
  Nvlog.cp_begin (nvlog t);
  List.map (fun (_, v) -> (v, Volume.cp_snapshot v)) t.vols

let take_dirty_meta t =
  let acc = ref [] in
  (* Aggregate map last: relocating any other block dirties it. *)
  List.iter
    (fun idx -> acc := Agg_map_chunk { index = idx } :: !acc)
    (Bitmap_file.dirty_blocks_desc t.agg_map);
  Bitmap_file.clear_dirty t.agg_map;
  List.iter
    (fun (vid, v) ->
      List.iter
        (fun idx -> acc := Vol_map_chunk { vol = vid; index = idx } :: !acc)
        (Bitmap_file.dirty_blocks_desc (Volume.vol_map v));
      Bitmap_file.clear_dirty (Volume.vol_map v);
      List.iter
        (fun idx -> acc := Container_chunk { vol = vid; index = idx } :: !acc)
        (Volume.dirty_container_chunks_desc v);
      Volume.clear_dirty_containers v;
      List.iter
        (fun idx -> acc := Inode_chunk { vol = vid; index = idx } :: !acc)
        (Volume.dirty_inode_chunks_desc v);
      Volume.clear_dirty_inode_chunks v;
      (* Bmap dirt lives on files touched by this CP's cleaning. *)
      List.iter
        (fun f ->
          List.iter
            (fun idx ->
              acc := Bmap_block { vol = vid; file = File.id f; index = idx } :: !acc)
            (File.dirty_bmap_blocks_desc f);
          File.clear_dirty_bmap f)
        (Volume.cp_files v))
    (List.rev t.vols);
  !acc

let meta_payload t = function
  | Bmap_block { vol; file; index } ->
      let f = Volume.file_exn (volume_exn t vol) file in
      Layout.Bmap { vol; file; index; entries = File.bmap_entries f index }
  | Inode_chunk { vol; index } ->
      Layout.Inode_chunk { vol; index; inodes = Volume.inode_chunk (volume_exn t vol) index }
  | Container_chunk { vol; index } ->
      Layout.Container
        { vol; index; entries = Volume.container_entries (volume_exn t vol) index }
  | Vol_map_chunk { vol; index } ->
      if Engine.sanitizing t.eng then
        Engine.probe_locked t.eng ~shared:(vol_map_domain ~vol ~index) Race.Read;
      Layout.Vol_map
        { vol; index; words = Bitmap_file.words_of_block (Volume.vol_map (volume_exn t vol)) index }
  | Agg_map_chunk { index } ->
      if Engine.sanitizing t.eng then Engine.probe_locked t.eng ~shared:(agg_map_domain ~index) Race.Read;
      Layout.Agg_map { index; words = Bitmap_file.words_of_block t.agg_map index }

(* Current on-disk location of a metafile block, or -1 when the owning
   volume/file no longer exists (e.g. deleted between enqueue and a CP
   repair round) or the block was never placed. *)
let meta_location t ref_ =
  match ref_ with
  | Bmap_block { vol; file; index } -> (
      match volume t vol with
      | None -> -1
      | Some v -> (
          match Volume.file v file with
          | None -> -1
          | Some f -> File.bmap_location f index))
  | Inode_chunk { vol; index } -> (
      match volume t vol with None -> -1 | Some v -> Volume.inode_location v index)
  | Container_chunk { vol; index } -> (
      match volume t vol with None -> -1 | Some v -> Volume.container_location v index)
  | Vol_map_chunk { vol; index } -> (
      match volume t vol with
      | None -> -1
      | Some v -> Bitmap_file.location (Volume.vol_map v) index)
  | Agg_map_chunk { index } -> Bitmap_file.location t.agg_map index

let meta_set_location t ref_ pvbn =
  match ref_ with
  | Bmap_block { vol; file; index } ->
      let v = volume_exn t vol in
      let f = Volume.file_exn v file in
      let old = File.set_bmap_location f index pvbn in
      (* The inode record embeds bmap locations, so it changed too. *)
      Volume.mark_inode_dirty v f;
      old
  | Inode_chunk { vol; index } -> Volume.set_inode_location (volume_exn t vol) index pvbn
  | Container_chunk { vol; index } ->
      Volume.set_container_location (volume_exn t vol) index pvbn
  | Vol_map_chunk { vol; index } ->
      Bitmap_file.set_location (Volume.vol_map (volume_exn t vol)) index pvbn
  | Agg_map_chunk { index } -> Bitmap_file.set_location t.agg_map index pvbn

let make_superblock t =
  {
    Layout.generation = t.generation + 1;
    cp_count = t.cp_count + 1;
    vols = List.map (fun (_, v) -> Volume.to_vol_rec v) t.vols;
    aggmap_pvbns =
      (let acc = ref [] in
       for i = Bitmap_file.nblocks t.agg_map - 1 downto 0 do
         let loc = Bitmap_file.location t.agg_map i in
         if loc >= 0 then acc := (i, loc) :: !acc
       done;
       Array.of_list !acc);
    free_blocks = Counters.read t.counters free_counter;
    snap_roots =
      List.map
        (fun s -> (Snapshot.name s, { (Snapshot.superblock s) with Layout.snap_roots = [] }))
        t.snaps;
  }

let publish_superblock t sb =
  t.pers.p_sb <- Some sb;
  t.generation <- sb.Layout.generation;
  t.cp_count <- sb.Layout.cp_count;
  if Engine.sanitizing t.eng then Engine.probe_atomic t.eng ~shared:"fs.nvlog";
  Nvlog.cp_commit (nvlog t);
  Array.fill t.recently_freed 0 (Array.length t.recently_freed) 0L;
  List.iter
    (fun (_, v) ->
      Volume.clear_recent_frees v;
      Volume.cp_done v)
    t.vols;
  t.cp_in_progress <- false;
  ignore (Sync.Waitq.wake_all t.log_space)

let superblock t = t.pers.p_sb
let generation t = t.generation
let cp_count t = t.cp_count

(* --- snapshots --- *)

let snapshots t = t.snaps
let find_snapshot t name = List.find_opt (fun s -> Snapshot.name s = name) t.snaps

let create_snapshot t ~name =
  if t.cp_in_progress then invalid_arg "Aggregate.create_snapshot: CP in flight";
  (match t.pers.p_sb with
  | None -> invalid_arg "Aggregate.create_snapshot: no consistency point committed yet"
  | Some _ -> ());
  if find_snapshot t name <> None then
    invalid_arg (Printf.sprintf "Aggregate.create_snapshot: %S already exists" name);
  (* Between CPs the in-memory activemap equals the on-disk one, so its
     words are exactly the block set the last CP's tree references. *)
  let sb = Option.get t.pers.p_sb in
  let snap = Snapshot.make ~name ~sb ~words:(Bitmap_file.snapshot_words t.agg_map) in
  t.snaps <- t.snaps @ [ snap ];
  rebuild_snap_union t;
  snap

let read_snapshot t snap ~vol ~file ~fbn =
  Snapshot.read snap ~disk:t.pers.p_disk ~vol ~file ~fbn

(* Blocks that become reusable when [snap] goes away: held by it, free in
   the active map, and not held by any remaining snapshot. *)
let delete_snapshot t snap =
  if t.cp_in_progress then invalid_arg "Aggregate.delete_snapshot: CP in flight";
  if not (List.memq snap t.snaps) then invalid_arg "Aggregate.delete_snapshot: unknown snapshot";
  t.snaps <- List.filter (fun s -> s != snap) t.snaps;
  rebuild_snap_union t;
  let words = Snapshot.held_words snap in
  let active = Bitmap_file.snapshot_words t.agg_map in
  let released = ref 0 in
  Array.iteri
    (fun w snap_word ->
      let candidates = Int64.logand snap_word (Int64.lognot active.(w)) in
      if candidates <> 0L then
        for i = 0 to 63 do
          if Wafl_util.Bitops.get candidates i then begin
            let pvbn = (w * 64) + i in
            if Geometry.vbn_valid t.geom pvbn && not (snapshot_held t pvbn) then begin
              let rg, aa = aa_of_pvbn t pvbn in
              t.aa_free_tbl.(rg).(aa) <- t.aa_free_tbl.(rg).(aa) + 1;
              incr released
            end
          end
        done)
    words;
  Counters.add t.counters free_counter !released;
  Counters.add t.counters "snapshot_held_blocks" (- !released)

(* --- crash and recovery --- *)

let persist t = t.pers
let crash t = t.pers

(* Recovery reads go through the fault-aware RAID path too: a latent
   media error under a metafile block must be reconstructed, not treated
   as corruption. *)
let read_meta_block t pvbn describe =
  match read_pvbn t pvbn with
  | Some payload -> payload
  | None -> raise (Corruption (Printf.sprintf "recovery: %s at pvbn %d missing" describe pvbn))

let apply_op t = function
  | Nvlog.Create_vol { vol; vvbn_space } ->
      if volume t vol = None then begin
        let v = Volume.create ~id:vol ~vvbn_space in
        register_volume t v
      end
  | Nvlog.Create_file { vol; file } -> (
      let v = volume_exn t vol in
      match Volume.file v file with
      | Some _ -> ()
      | None -> Volume.add_file v (File.create ~vol ~id:file))
  | Nvlog.Write { vol; file; fbn; content } ->
      let v = volume_exn t vol in
      let f = Volume.file_exn v file in
      File.write f ~fbn ~content;
      Volume.note_dirty v f
  | Nvlog.Delete_file { vol; file } ->
      let v = volume_exn t vol in
      Volume.mark_deleted v (Volume.file_exn v file)

let recompute_aa_free t =
  let geom = t.geom in
  for rg = 0 to Geometry.raid_group_count geom - 1 do
    for aa = 0 to Geometry.aa_count geom - 1 do
      let lo_dbn, hi_dbn = Geometry.aa_dbn_range geom ~aa in
      let free = ref 0 in
      List.iter
        (fun (drive, _) ->
          let lo = Geometry.vbn_of geom ~rg ~drive ~dbn:lo_dbn in
          let hi = Geometry.vbn_of geom ~rg ~drive ~dbn:hi_dbn in
          free := !free + Bitmap_file.count_free_in t.agg_map ~lo ~hi)
        (Geometry.drives_of_rg geom ~rg);
      t.aa_free_tbl.(rg).(aa) <- !free
    done
  done

let recompute_vvbn_regions t vol =
  let regions = region_free t vol in
  let vmap = Volume.vol_map vol in
  Array.iteri
    (fun r _ ->
      let lo = r * vvbn_region_bits in
      let hi = min (Volume.vvbn_space vol - 1) (((r + 1) * vvbn_region_bits) - 1) in
      regions.(r) <- Bitmap_file.count_free_in vmap ~lo ~hi)
    regions

let recover ?(cache_blocks = 65536) ?queue_depth ?obs eng ~cost pers =
  let geom = Disk.geometry pers.p_disk in
  let counters = Counters.create () in
  let t =
    {
      eng;
      cost;
      geom;
      pers;
      raids = make_raids eng cost pers.p_disk geom queue_depth obs pers.p_flash;
      flash_on = pers.p_flash <> None;
      agg_map = Bitmap_file.create ~bits:(Geometry.total_data_blocks geom);
      aa_free_tbl = init_aa_free geom;
      vols = [];
      vols_tbl = Hashtbl.create 8;
      vol_free_cells = Hashtbl.create 8;
      free_cell = Counters.cell counters free_counter;
      held_cell = Counters.cell counters "snapshot_held_blocks";
      snap_union = [||];
      vvbn_region_free = Hashtbl.create 8;
      counters;
      recently_freed = Array.make ((Geometry.total_data_blocks geom + 63) / 64) 0L;
      last_vol = None;
      cache = Buffer_cache.create ~capacity:cache_blocks;
      snaps = [];
      log_space = Sync.Waitq.create eng;
      next_vol_id = 0;
      generation = 0;
      cp_count = 0;
      cp_in_progress = false;
      cp_trigger = None;
      log_inflight = 0;
      stall_us = 0.0;
      hard_dwell_us = 0.0;
      stall_cell = Counters.cell counters "nvlog_stall_us";
      hard_dwell_cell = Counters.cell counters "nvlog_hard_dwell_us";
      exhausted_cell = Counters.cell counters "nvlog_exhausted_writes";
      m_stall =
        Wafl_obs.Metrics.counter
          (Wafl_obs.Trace.metrics (Option.value obs ~default:Wafl_obs.Trace.disabled))
          "nvlog.stall_us";
      m_hard_dwell =
        Wafl_obs.Metrics.counter
          (Wafl_obs.Trace.metrics (Option.value obs ~default:Wafl_obs.Trace.disabled))
          "nvlog.hard_dwell_us";
    }
  in
  Counters.set t.counters free_counter (Geometry.total_data_blocks geom);
  (match pers.p_sb with
  | None -> ()
  | Some sb ->
      t.generation <- sb.Layout.generation;
      t.cp_count <- sb.Layout.cp_count;
      (* Aggregate activemap. *)
      Array.iter
        (fun (idx, pvbn) ->
          (match read_meta_block t pvbn "aggmap chunk" with
          | Layout.Agg_map { index; words } when index = idx ->
              Bitmap_file.load_block t.agg_map idx words
          | _ -> raise (Corruption "recovery: aggmap chunk has wrong payload"));
          ignore (Bitmap_file.set_location t.agg_map idx pvbn))
        sb.Layout.aggmap_pvbns;
      Bitmap_file.clear_dirty t.agg_map;
      (* Volumes. *)
      List.iter
        (fun (vr : Layout.vol_rec) ->
          let v = Volume.of_vol_rec vr in
          register_volume t v;
          Array.iter
            (fun (idx, pvbn) ->
              match read_meta_block t pvbn "volmap chunk" with
              | Layout.Vol_map { vol; index; words } when vol = vr.Layout.vol_id && index = idx
                ->
                  Bitmap_file.load_block (Volume.vol_map v) idx words
              | _ -> raise (Corruption "recovery: volmap chunk has wrong payload"))
            vr.Layout.volmap_pvbns;
          Bitmap_file.clear_dirty (Volume.vol_map v);
          Array.iter
            (fun (idx, pvbn) ->
              match read_meta_block t pvbn "container chunk" with
              | Layout.Container { vol; index; entries }
                when vol = vr.Layout.vol_id && index = idx ->
                  Volume.load_container_chunk v ~index:idx ~entries
              | _ -> raise (Corruption "recovery: container chunk has wrong payload"))
            vr.Layout.container_pvbns;
          Volume.clear_dirty_containers v;
          Array.iter
            (fun (idx, pvbn) ->
              match read_meta_block t pvbn "inode chunk" with
              | Layout.Inode_chunk { vol; index; inodes }
                when vol = vr.Layout.vol_id && index = idx ->
                  Volume.load_inode_chunk v inodes
              | _ -> raise (Corruption "recovery: inode chunk has wrong payload"))
            vr.Layout.inode_chunk_pvbns;
          Volume.clear_dirty_inode_chunks v;
          (* File block maps. *)
          List.iter
            (fun f ->
              let rec_ = File.inode_rec f in
              Array.iter
                (fun (idx, pvbn) ->
                  match read_meta_block t pvbn "bmap block" with
                  | Layout.Bmap { vol; file; index; entries }
                    when vol = vr.Layout.vol_id && file = File.id f && index = idx ->
                      File.load_bmap_block f ~index:idx ~entries
                  | _ -> raise (Corruption "recovery: bmap block has wrong payload"))
                rec_.Layout.bmap_pvbns;
              File.clear_dirty_bmap f)
            (Volume.files v);
          recompute_vvbn_regions t v;
          Counters.set t.counters (vol_free_counter vr.Layout.vol_id)
            (Bitmap_file.free_count (Volume.vol_map v)))
        sb.Layout.vols;
      (* Snapshots: rebuild each pinned block set from the snapshot's own
         persisted activemap chunks. *)
      List.iter
        (fun (name, (snap_sb : Layout.superblock)) ->
          let snap_map = Bitmap_file.create ~bits:(Geometry.total_data_blocks geom) in
          Array.iter
            (fun (idx, pvbn) ->
              match read_meta_block t pvbn "snapshot aggmap chunk" with
              | Layout.Agg_map { index; words } when index = idx ->
                  Bitmap_file.load_block snap_map idx words
              | _ -> raise (Corruption "recovery: snapshot aggmap chunk has wrong payload"))
            snap_sb.Layout.aggmap_pvbns;
          t.snaps <-
            t.snaps @ [ Snapshot.make ~name ~sb:snap_sb ~words:(Bitmap_file.snapshot_words snap_map) ])
        sb.Layout.snap_roots;
      rebuild_snap_union t;
      recompute_aa_free t;
      (* Subtract snapshot-held blocks from the free space and summaries:
         they are map-free but not allocatable. *)
      let held = ref 0 in
      for pvbn = 0 to Geometry.total_data_blocks geom - 1 do
        if (not (Bitmap_file.mem t.agg_map pvbn)) && snapshot_held t pvbn then begin
          incr held;
          let rg, aa = aa_of_pvbn t pvbn in
          t.aa_free_tbl.(rg).(aa) <- t.aa_free_tbl.(rg).(aa) - 1
        end
      done;
      Counters.set t.counters "snapshot_held_blocks" !held;
      Counters.set t.counters free_counter (Bitmap_file.free_count t.agg_map - !held));
  (* Replay the surviving NVRAM log on top of the recovered tree. *)
  let ops = Nvlog.replay_ops pers.p_nvlog in
  Nvlog.recover_reset pers.p_nvlog;
  List.iter (apply_op t) ops;
  (* The FTL's L2P is volatile: re-derive device fill from the recovered
     activemap, as the real device rebuilds its map from NAND metadata.
     (Create-time prefill was already re-applied by Ftl.create; mapping a
     used pvbn over an aged page just remaps it.) *)
  if t.flash_on then begin
    let per_rg = Array.map (fun _ -> ref []) t.raids in
    for pvbn = Geometry.total_data_blocks geom - 1 downto 0 do
      if Bitmap_file.mem t.agg_map pvbn then begin
        let loc = Geometry.locate geom pvbn in
        let lpn = (loc.Geometry.drive * Geometry.drive_blocks geom) + loc.Geometry.dbn in
        let cell = per_rg.(loc.Geometry.rg) in
        cell := lpn :: !cell
      end
    done;
    Array.iteri
      (fun rg cell ->
        match Raid.flash t.raids.(rg) with
        | Some ftl -> Wafl_flash.Ftl.preload ftl !cell
        | None -> ())
      per_rg
  end;
  t

(* --- integrity checking --- *)

let fail_fsck fmt = Printf.ksprintf (fun s -> failwith ("fsck: " ^ s)) fmt

let fsck t =
  if t.cp_in_progress then fail_fsck "called with a CP in flight";
  let used_pvbns = Hashtbl.create 4096 in
  let claim_pvbn pvbn what =
    if not (Geometry.vbn_valid t.geom pvbn) then fail_fsck "%s: invalid pvbn %d" what pvbn;
    (match Hashtbl.find_opt used_pvbns pvbn with
    | Some other -> fail_fsck "pvbn %d claimed by both %s and %s" pvbn other what
    | None -> Hashtbl.add used_pvbns pvbn what);
    if not (Bitmap_file.mem t.agg_map pvbn) then
      fail_fsck "%s: pvbn %d not marked used in aggregate map" what pvbn
  in
  (* Aggregate map chunk locations. *)
  for i = 0 to Bitmap_file.nblocks t.agg_map - 1 do
    let loc = Bitmap_file.location t.agg_map i in
    if loc >= 0 then claim_pvbn loc (Printf.sprintf "aggmap chunk %d" i)
  done;
  List.iter
    (fun (vid, v) ->
      let used_vvbns = Hashtbl.create 4096 in
      let vmap = Volume.vol_map v in
      for i = 0 to Bitmap_file.nblocks vmap - 1 do
        let loc = Bitmap_file.location vmap i in
        if loc >= 0 then claim_pvbn loc (Printf.sprintf "vol %d volmap chunk %d" vid i)
      done;
      List.iter
        (fun idx -> claim_pvbn (Volume.container_location v idx)
            (Printf.sprintf "vol %d container chunk %d" vid idx))
        (List.filter
           (fun idx -> Volume.container_location v idx >= 0)
           (List.init
              ((Volume.vvbn_space v + Layout.entries_per_container_block - 1)
              / Layout.entries_per_container_block)
              Fun.id));
      List.iter
        (fun idx ->
          claim_pvbn (Volume.inode_location v idx) (Printf.sprintf "vol %d inode chunk %d" vid idx))
        (List.filter
           (fun idx -> Volume.inode_location v idx >= 0)
           (List.init ((Volume.file_count v / Layout.inodes_per_block) + 1) Fun.id));
      List.iter
        (fun f ->
          let rec_ = File.inode_rec f in
          Array.iter
            (fun (idx, pvbn) ->
              claim_pvbn pvbn (Printf.sprintf "vol %d file %d bmap %d" vid (File.id f) idx))
            rec_.Layout.bmap_pvbns;
          for fbn = 0 to File.nfbns f - 1 do
            let vvbn = File.vvbn_of_fbn f fbn in
            if vvbn >= 0 then begin
              (match Hashtbl.find_opt used_vvbns vvbn with
              | Some other ->
                  fail_fsck "vol %d vvbn %d claimed by both %s and file %d/%d" vid vvbn other
                    (File.id f) fbn
              | None ->
                  Hashtbl.add used_vvbns vvbn (Printf.sprintf "file %d/%d" (File.id f) fbn));
              if not (Bitmap_file.mem vmap vvbn) then
                fail_fsck "vol %d: vvbn %d referenced but free in volume map" vid vvbn;
              let pvbn = Volume.pvbn_of_vvbn v vvbn in
              if pvbn < 0 then fail_fsck "vol %d: vvbn %d has no container entry" vid vvbn;
              claim_pvbn pvbn (Printf.sprintf "vol %d vvbn %d" vid vvbn)
            end
          done)
        (Volume.files v);
      (* Every used vvbn must be referenced by exactly one (file, fbn). *)
      if Bitmap_file.used_count vmap <> Hashtbl.length used_vvbns then
        fail_fsck "vol %d: volume map says %d used vvbns but %d are referenced" vid
          (Bitmap_file.used_count vmap) (Hashtbl.length used_vvbns);
      (* Container entries must exist only for used vvbns. *)
      for vvbn = 0 to Volume.vvbn_space v - 1 do
        let mapped = Volume.pvbn_of_vvbn v vvbn >= 0 in
        let used = Bitmap_file.mem vmap vvbn in
        if mapped <> used then
          fail_fsck "vol %d: vvbn %d container/%s activemap mismatch" vid vvbn
            (if used then "used" else "free")
      done;
      let counter = Counters.read t.counters (vol_free_counter vid) in
      if counter <> Bitmap_file.free_count vmap then
        fail_fsck "vol %d: free counter %d but volume map says %d" vid counter
          (Bitmap_file.free_count vmap))
    t.vols;
  (* No leaked pvbns: everything marked used must have been claimed. *)
  if Bitmap_file.used_count t.agg_map <> Hashtbl.length used_pvbns then
    fail_fsck "aggregate map says %d used pvbns but %d are referenced"
      (Bitmap_file.used_count t.agg_map) (Hashtbl.length used_pvbns);
  (* Snapshot-held blocks are map-free but not free space. *)
  let held_only = ref 0 in
  if t.snaps <> [] then
    for pvbn = 0 to Geometry.total_data_blocks t.geom - 1 do
      if (not (Bitmap_file.mem t.agg_map pvbn)) && snapshot_held t pvbn then incr held_only
    done;
  let counter = Counters.read t.counters free_counter in
  if counter <> Bitmap_file.free_count t.agg_map - !held_only then
    fail_fsck "aggregate free counter %d but activemap says %d (%d snapshot-held)" counter
      (Bitmap_file.free_count t.agg_map) !held_only;
  let held_counter = Counters.read t.counters "snapshot_held_blocks" in
  if held_counter <> !held_only then
    fail_fsck "snapshot-held counter %d but %d blocks are held-only" held_counter !held_only;
  (* AA summary consistency. *)
  for rg = 0 to Geometry.raid_group_count t.geom - 1 do
    for aa = 0 to Geometry.aa_count t.geom - 1 do
      let lo_dbn, hi_dbn = Geometry.aa_dbn_range t.geom ~aa in
      let free = ref 0 in
      List.iter
        (fun (drive, _) ->
          let lo = Geometry.vbn_of t.geom ~rg ~drive ~dbn:lo_dbn in
          let hi = Geometry.vbn_of t.geom ~rg ~drive ~dbn:hi_dbn in
          free := !free + Bitmap_file.count_free_in t.agg_map ~lo ~hi;
          if t.snaps <> [] then
            for pvbn = lo to hi do
              if (not (Bitmap_file.mem t.agg_map pvbn)) && snapshot_held t pvbn then decr free
            done)
        (Geometry.drives_of_rg t.geom ~rg);
      if !free <> t.aa_free_tbl.(rg).(aa) then
        fail_fsck "rg %d aa %d: summary says %d free, activemap says %d" rg aa
          t.aa_free_tbl.(rg).(aa) !free
    done
  done
