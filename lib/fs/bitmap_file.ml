open Wafl_util

let words_per_block = Layout.bits_per_map_block / 64

type t = {
  nbits : int;
  words : int64 array;
  mutable free : int;
  dirty : (int, unit) Hashtbl.t;
  mutable last_dirty : int; (* last block marked; skips the replace *)
  locations : Intvec.t; (* metafile block idx -> pvbn *)
  mutable scanned : int;
}

let create ~bits =
  if bits <= 0 then invalid_arg "Bitmap_file.create: bits must be positive";
  {
    nbits = bits;
    words = Array.make ((bits + 63) / 64) 0L;
    free = bits;
    dirty = Hashtbl.create 64;
    last_dirty = -1;
    locations = Intvec.create ~default:(-1) ();
    scanned = 0;
  }

let nbits t = t.nbits
let nblocks t = (t.nbits + Layout.bits_per_map_block - 1) / Layout.bits_per_map_block
let block_of_bit bit = bit / Layout.bits_per_map_block

let check t bit =
  if bit < 0 || bit >= t.nbits then
    invalid_arg (Printf.sprintf "Bitmap_file: bit %d out of range" bit)

let mem t bit =
  check t bit;
  Bitops.get t.words.(bit / 64) (bit mod 64)

let touch t bit = Hashtbl.replace t.dirty (block_of_bit bit) ()

let set t bit =
  check t bit;
  let w = bit / 64 and i = bit mod 64 in
  if Bitops.get t.words.(w) i then
    invalid_arg (Printf.sprintf "Bitmap_file.set: bit %d already allocated" bit);
  t.words.(w) <- Bitops.set t.words.(w) i;
  t.free <- t.free - 1;
  touch t bit

let clear t bit =
  check t bit;
  let w = bit / 64 and i = bit mod 64 in
  if not (Bitops.get t.words.(w) i) then
    invalid_arg (Printf.sprintf "Bitmap_file.clear: bit %d already free" bit);
  t.words.(w) <- Bitops.clear t.words.(w) i;
  t.free <- t.free + 1;
  touch t bit

let free_count t = t.free
let used_count t = t.nbits - t.free

let find_free t ~lo ~hi ~start =
  check t lo;
  check t hi;
  let from = max lo start in
  if from > hi then None
  else begin
    let result = ref None in
    let w = ref (from / 64) in
    let first_bit = from mod 64 in
    let last_word = hi / 64 in
    (* First, the partial word. *)
    t.scanned <- t.scanned + 1;
    (match Bitops.find_next_zero t.words.(!w) first_bit with
    | -1 -> incr w
    | i ->
        let bit = (!w * 64) + i in
        if bit <= hi then result := Some bit else w := last_word + 1);
    while !result = None && !w <= last_word do
      t.scanned <- t.scanned + 1;
      (match Bitops.find_first_zero t.words.(!w) with
      | -1 -> ()
      | i ->
          let bit = (!w * 64) + i in
          if bit <= hi then result := Some bit else w := last_word);
      incr w
    done;
    !result
  end

let count_free_in t ~lo ~hi =
  check t lo;
  check t hi;
  (* Ranges are word-aligned in practice (AAs are multiples of 64 blocks);
     handle stragglers bit-by-bit for generality. *)
  let count = ref 0 in
  let bit = ref lo in
  while !bit <= hi do
    if !bit mod 64 = 0 && !bit + 63 <= hi then begin
      t.scanned <- t.scanned + 1;
      count := !count + (64 - Bitops.popcount t.words.(!bit / 64));
      bit := !bit + 64
    end
    else begin
      if not (mem t !bit) then incr count;
      incr bit
    end
  done;
  !count

let words_scanned t = t.scanned

let dirty_blocks t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.dirty [] |> List.sort Int.compare (* lint-ok: sorted *)

let dirty_blocks_desc t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.dirty [] (* lint-ok: sorted below *)
  |> List.sort (fun a b -> Int.compare b a)

let dirty_count t = Hashtbl.length t.dirty
let mark_dirty t i =
  if i <> t.last_dirty then begin
    Hashtbl.replace t.dirty i ();
    t.last_dirty <- i
  end

let clear_dirty t =
  Hashtbl.clear t.dirty;
  t.last_dirty <- -1

let words_of_block t i =
  if i < 0 || i >= nblocks t then invalid_arg "Bitmap_file.words_of_block: bad block";
  let off = i * words_per_block in
  let len = min words_per_block (Array.length t.words - off) in
  Array.sub t.words off len

let load_block t i payload =
  if i < 0 || i >= nblocks t then invalid_arg "Bitmap_file.load_block: bad block";
  let off = i * words_per_block in
  let len = min words_per_block (Array.length t.words - off) in
  if Array.length payload <> len then invalid_arg "Bitmap_file.load_block: size mismatch";
  (* Maintain the free count incrementally. *)
  for j = 0 to len - 1 do
    t.free <- t.free + Bitops.popcount t.words.(off + j) - Bitops.popcount payload.(j);
    t.words.(off + j) <- payload.(j)
  done

let snapshot_words t = Array.copy t.words

let location t i = Intvec.get t.locations i

let set_location t i pvbn =
  let old = Intvec.get t.locations i in
  Intvec.set t.locations i pvbn;
  old
