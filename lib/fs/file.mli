(** In-memory inode: dirty buffers, block map and CP snapshot state.

    Client writes land in the {e front} dirty-buffer table.  When a CP
    starts, the front table becomes the {e CP} table (an O(1) swap — the
    in-memory copy-on-write of §II-C: later client writes repopulate the
    front table and never disturb the snapshot being flushed).  Cleaner
    threads walk the CP table, assign VBNs and update the block map; CP
    buffers stay readable until {!cp_done} so reads never race the
    in-flight tetris I/Os. *)

type t

val create : vol:int -> id:int -> t
val vol : t -> int
val id : t -> int
val nfbns : t -> int
(** One past the highest fbn ever written. *)

(** {1 Front (client) side} *)

val write : t -> fbn:int -> content:int64 -> unit
val read_cached : t -> fbn:int -> int64 option
(** Front table first, then the CP snapshot. *)

val dirty_front : t -> int
(** Number of front dirty buffers. *)

(** {1 Block map} *)

val vvbn_of_fbn : t -> int -> int
(** -1 for holes. *)

val set_vvbn : t -> fbn:int -> vvbn:int -> int
(** Record the new location chosen by a cleaner; returns the previous
    vvbn (-1 if none) and marks the covering bmap block dirty. *)

(** {1 CP snapshot} *)

val cp_snapshot : t -> unit
(** Swap front into the CP table.  Raises [Invalid_argument] if a CP
    snapshot is still outstanding. *)

val cp_buffers : t -> (int * int64) list
(** The snapshot's (fbn, content) pairs in ascending fbn order — the
    cleaning order, which makes consecutive file blocks land on
    consecutive bucket VBNs. *)

val cp_buffer_count : t -> int
val cp_done : t -> unit

(** {1 Block-map metafile bookkeeping} *)

val dirty_bmap_blocks : t -> int list

val dirty_bmap_blocks_desc : t -> int list
(** Descending-order variant for prepend-accumulator callers. *)

val bmap_entries : t -> int -> int array
(** Serialized entries of bmap block [i] (length
    {!Layout.entries_per_bmap_block}). *)

val bmap_location : t -> int -> int
val set_bmap_location : t -> int -> int -> int
(** Returns the previous pvbn (-1 if none). *)

val clear_dirty_bmap : t -> unit
val inode_rec : t -> Layout.inode_rec
val of_inode_rec : vol:int -> Layout.inode_rec -> t
(** Rebuild from a persisted inode record; bmap blocks are loaded
    afterwards with {!load_bmap_block}. *)

val load_bmap_block : t -> index:int -> entries:int array -> unit
