open Wafl_util

type t = {
  id : int;
  vvbn_space : int;
  files : (int, File.t) Hashtbl.t;
  mutable next_file_id : int;
  (* dirty-inode lists: [dirty] is the front list, [cp] the snapshot *)
  mutable dirty : File.t list;
  dirty_set : (int, unit) Hashtbl.t;
  mutable cp : File.t list;
  (* container map *)
  container : Intvec.t;
  container_locations : Intvec.t;
  dirty_containers : (int, unit) Hashtbl.t;
  (* volume activemap *)
  vol_map : Bitmap_file.t;
  recent_frees : int64 array; (* bitmap over vvbns; never iterated *)
  mutable last_dirty_container : int; (* last chunk marked; skips the replace *)
  (* inode file *)
  inode_locations : Intvec.t;
  dirty_inodes : (int, unit) Hashtbl.t;
  mutable zombies : File.t list;
}

let create ~id ~vvbn_space =
  if vvbn_space <= 0 then invalid_arg "Volume.create: bad vvbn space";
  {
    id;
    vvbn_space;
    files = Hashtbl.create 64;
    next_file_id = 0;
    dirty = [];
    dirty_set = Hashtbl.create 64;
    cp = [];
    container = Intvec.create ~default:(-1) ();
    container_locations = Intvec.create ~default:(-1) ();
    dirty_containers = Hashtbl.create 16;
    vol_map = Bitmap_file.create ~bits:vvbn_space;
    recent_frees = Array.make ((vvbn_space + 63) / 64) 0L;
    last_dirty_container = -1;
    inode_locations = Intvec.create ~default:(-1) ();
    dirty_inodes = Hashtbl.create 4;
    zombies = [];
  }

let id t = t.id
let vvbn_space t = t.vvbn_space

let fresh_file_id t =
  let id = t.next_file_id in
  t.next_file_id <- id + 1;
  id

let inode_chunk_of_file file_id = file_id / Layout.inodes_per_block
let mark_inode_dirty t file = Hashtbl.replace t.dirty_inodes (inode_chunk_of_file (File.id file)) ()

let add_file t file =
  if Hashtbl.mem t.files (File.id file) then invalid_arg "Volume.add_file: duplicate id";
  Hashtbl.add t.files (File.id file) file;
  if File.id file >= t.next_file_id then t.next_file_id <- File.id file + 1;
  mark_inode_dirty t file

let file t fid = Hashtbl.find_opt t.files fid

let file_exn t fid =
  match file t fid with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Volume %d: no file %d" t.id fid)

(* Sorted by file id: recovery and fsck walk this list, so its order must
   not depend on hash internals. *)
let files t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.files [] (* lint-ok: sorted below *)
  |> List.sort (fun a b -> Int.compare (File.id a) (File.id b))
let file_count t = Hashtbl.length t.files

let mark_deleted t file = t.zombies <- file :: t.zombies

let take_zombies t =
  let z = List.rev t.zombies in
  t.zombies <- [];
  z

let remove_file t fid =
  if not (Hashtbl.mem t.files fid) then invalid_arg "Volume.remove_file: no such file";
  Hashtbl.remove t.files fid;
  Hashtbl.replace t.dirty_inodes (inode_chunk_of_file fid) ()

let note_dirty t file =
  if not (Hashtbl.mem t.dirty_set (File.id file)) then begin
    Hashtbl.add t.dirty_set (File.id file) ();
    t.dirty <- file :: t.dirty
  end

let dirty_inode_count t = List.length t.dirty

let cp_snapshot t =
  let snapshot = List.rev t.dirty in
  t.dirty <- [];
  Hashtbl.clear t.dirty_set;
  List.iter File.cp_snapshot snapshot;
  t.cp <- snapshot;
  snapshot

let cp_files t = t.cp

let cp_done t =
  List.iter File.cp_done t.cp;
  t.cp <- []

let check_vvbn t vvbn =
  if vvbn < 0 || vvbn >= t.vvbn_space then
    invalid_arg (Printf.sprintf "Volume %d: vvbn %d out of range" t.id vvbn)

let pvbn_of_vvbn t vvbn =
  check_vvbn t vvbn;
  Intvec.get t.container vvbn

let map_vvbn t ~vvbn ~pvbn =
  check_vvbn t vvbn;
  let old = Intvec.get t.container vvbn in
  Intvec.set t.container vvbn pvbn;
  let chunk = vvbn / Layout.entries_per_container_block in
  if chunk <> t.last_dirty_container then begin
    Hashtbl.replace t.dirty_containers chunk ();
    t.last_dirty_container <- chunk
  end;
  old

let vol_map t = t.vol_map
let note_freed_vvbn t vvbn =
  let w = vvbn lsr 6 in
  t.recent_frees.(w) <- Int64.logor t.recent_frees.(w) (Int64.shift_left 1L (vvbn land 63))

let vvbn_reusable t vvbn =
  Int64.logand t.recent_frees.(vvbn lsr 6) (Int64.shift_left 1L (vvbn land 63)) = 0L

let clear_recent_frees t = Array.fill t.recent_frees 0 (Array.length t.recent_frees) 0L

let sorted_keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort Int.compare (* lint-ok *)

let sorted_keys_desc tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] (* lint-ok: sorted below *)
  |> List.sort (fun a b -> Int.compare b a)

let dirty_container_chunks t = sorted_keys t.dirty_containers
let dirty_container_chunks_desc t = sorted_keys_desc t.dirty_containers

let container_entries t index =
  let base = index * Layout.entries_per_container_block in
  Intvec.extract t.container ~pos:base ~len:Layout.entries_per_container_block

let container_location t index = Intvec.get t.container_locations index

let set_container_location t index pvbn =
  let old = Intvec.get t.container_locations index in
  Intvec.set t.container_locations index pvbn;
  old

let clear_dirty_containers t =
  Hashtbl.clear t.dirty_containers;
  t.last_dirty_container <- -1
let dirty_inode_chunks t = sorted_keys t.dirty_inodes
let dirty_inode_chunks_desc t = sorted_keys_desc t.dirty_inodes

let inode_chunk t index =
  let base = index * Layout.inodes_per_block in
  let recs = ref [] in
  for fid = base + Layout.inodes_per_block - 1 downto base do
    match file t fid with Some f -> recs := File.inode_rec f :: !recs | None -> ()
  done;
  !recs

let inode_location t index = Intvec.get t.inode_locations index

let set_inode_location t index pvbn =
  let old = Intvec.get t.inode_locations index in
  Intvec.set t.inode_locations index pvbn;
  old

let clear_dirty_inode_chunks t = Hashtbl.clear t.dirty_inodes

let locations_array vec =
  let acc = ref [] in
  Intvec.iteri_set vec (fun idx pvbn -> acc := (idx, pvbn) :: !acc);
  Array.of_list (List.rev !acc)

let to_vol_rec t =
  {
    Layout.vol_id = t.id;
    vvbn_space = t.vvbn_space;
    inode_chunk_pvbns = locations_array t.inode_locations;
    container_pvbns = locations_array t.container_locations;
    volmap_pvbns =
      (let acc = ref [] in
       for i = Bitmap_file.nblocks t.vol_map - 1 downto 0 do
         let loc = Bitmap_file.location t.vol_map i in
         if loc >= 0 then acc := (i, loc) :: !acc
       done;
       Array.of_list !acc);
  }

let of_vol_rec (r : Layout.vol_rec) =
  let t = create ~id:r.Layout.vol_id ~vvbn_space:r.Layout.vvbn_space in
  Array.iter (fun (i, p) -> ignore (set_inode_location t i p)) r.Layout.inode_chunk_pvbns;
  Array.iter (fun (i, p) -> ignore (set_container_location t i p)) r.Layout.container_pvbns;
  Array.iter (fun (i, p) -> ignore (Bitmap_file.set_location t.vol_map i p)) r.Layout.volmap_pvbns;
  t

let load_container_chunk t ~index ~entries =
  let base = index * Layout.entries_per_container_block in
  Array.iteri (fun i pvbn -> if pvbn >= 0 then Intvec.set t.container (base + i) pvbn) entries

let load_inode_chunk t recs =
  List.iter
    (fun (r : Layout.inode_rec) ->
      let f = File.of_inode_rec ~vol:t.id r in
      Hashtbl.replace t.files r.Layout.file_id f;
      if r.Layout.file_id >= t.next_file_id then t.next_file_id <- r.Layout.file_id + 1)
    recs
