(** A FlexVol volume: file table, container map (vvbn -> pvbn), volume
    activemap and per-volume CP state (paper §II-B).

    Data blocks in a volume are dual-addressed: the block map of a file
    yields a vvbn (position in the volume's virtual space) and the
    container map translates it to a pvbn (position in the aggregate).
    Write allocation assigns {e both} — the reason the paper gives for
    why inode cleaning "does not fit neatly into any single affinity". *)

type t

val create : id:int -> vvbn_space:int -> t
val id : t -> int
val vvbn_space : t -> int

(** {1 Files} *)

val fresh_file_id : t -> int
val add_file : t -> File.t -> unit
(** Registers the file and dirties its inode chunk.  Raises
    [Invalid_argument] on a duplicate id. *)

val file : t -> int -> File.t option
val file_exn : t -> int -> File.t
val files : t -> File.t list
val file_count : t -> int

val mark_deleted : t -> File.t -> unit
(** Queue the file as a zombie: its blocks are freed by the next CP, at
    which point it disappears from the file table (WAFL processes
    deletions as deferred work so the client reply is immediate). *)

val take_zombies : t -> File.t list
(** The zombies queued for the starting CP (clears the queue). *)

val remove_file : t -> int -> unit
(** Drop a file from the table and dirty its inode chunk. *)

(** {1 Dirty-inode tracking} *)

val note_dirty : t -> File.t -> unit
(** Add to the front dirty-inode list (idempotent). *)

val dirty_inode_count : t -> int
val cp_snapshot : t -> File.t list
(** Atomically take the dirty-inode list and snapshot every listed file's
    buffers; the returned list is the CP's cleaning work. *)

val cp_files : t -> File.t list
val cp_done : t -> unit

(** {1 Container map} *)

val pvbn_of_vvbn : t -> int -> int
val map_vvbn : t -> vvbn:int -> pvbn:int -> int
(** Record a translation (or clear it with [pvbn:-1]); returns the
    previous pvbn (-1 if none) and dirties the covering container chunk. *)

(** {1 Volume activemap} *)

val vol_map : t -> Bitmap_file.t

val note_freed_vvbn : t -> int -> unit
(** Freeze a vvbn freed during the running CP (not reusable until the CP
    commits). *)

val vvbn_reusable : t -> int -> bool
val clear_recent_frees : t -> unit

(** {1 Metafile bookkeeping for CPs} *)

val mark_inode_dirty : t -> File.t -> unit
val dirty_container_chunks : t -> int list

val dirty_container_chunks_desc : t -> int list
(** Descending-order variant for prepend-accumulator callers. *)

val container_entries : t -> int -> int array
val container_location : t -> int -> int
val set_container_location : t -> int -> int -> int
val clear_dirty_containers : t -> unit
val dirty_inode_chunks : t -> int list

val dirty_inode_chunks_desc : t -> int list
(** Descending-order variant for prepend-accumulator callers. *)

val inode_chunk : t -> int -> Layout.inode_rec list
val inode_location : t -> int -> int
val set_inode_location : t -> int -> int -> int
val clear_dirty_inode_chunks : t -> unit

(** {1 Persistence} *)

val to_vol_rec : t -> Layout.vol_rec
val of_vol_rec : Layout.vol_rec -> t
(** Rebuild identity and metafile locations; chunk contents are loaded by
    the recovery driver via [load_*]. *)

val load_container_chunk : t -> index:int -> entries:int array -> unit
val load_inode_chunk : t -> Layout.inode_rec list -> unit
(** Registers the files without dirtying inode chunks. *)
