open Wafl_storage

let space agg =
  let buf = Buffer.create 256 in
  let geom = Aggregate.geometry agg in
  let total = Geometry.total_data_blocks geom in
  let map = Aggregate.agg_map agg in
  let free = Counters.read (Aggregate.counters agg) "agg_free_blocks" in
  let held = Counters.read (Aggregate.counters agg) "snapshot_held_blocks" in
  Buffer.add_string buf
    (Printf.sprintf "aggregate: %d blocks total, %d used, %d free, %d snapshot-held\n" total
       (Bitmap_file.used_count map) free held);
  List.iter
    (fun vol ->
      let vmap = Volume.vol_map vol in
      Buffer.add_string buf
        (Printf.sprintf "  volume %d: %d files, %d/%d vvbns used\n" (Volume.id vol)
           (Volume.file_count vol)
           (Bitmap_file.used_count vmap)
           (Volume.vvbn_space vol)))
    (Aggregate.volumes agg);
  let cache = Aggregate.buffer_cache agg in
  Buffer.add_string buf
    (Printf.sprintf "buffer cache: %d/%d blocks resident, %.1f%% hit rate\n"
       (Buffer_cache.length cache) (Buffer_cache.capacity cache)
       (100.0 *. Buffer_cache.hit_rate cache));
  Buffer.contents buf

let snapshots agg =
  match Aggregate.snapshots agg with
  | [] -> "no snapshots\n"
  | snaps ->
      let buf = Buffer.create 128 in
      List.iter
        (fun s ->
          (* Held = pinned blocks no longer in the active tree. *)
          let words = Snapshot.held_words s in
          let active = Aggregate.agg_map agg in
          let held = ref 0 in
          Array.iteri
            (fun w word ->
              if word <> 0L then
                for i = 0 to 63 do
                  if Wafl_util.Bitops.get word i then begin
                    let pvbn = (w * 64) + i in
                    if
                      Geometry.vbn_valid (Aggregate.geometry agg) pvbn
                      && not (Bitmap_file.mem active pvbn)
                    then incr held
                  end
                done)
            words;
          Buffer.add_string buf
            (Printf.sprintf "snapshot %-16s generation %-5d holds %d otherwise-free blocks\n"
               (Snapshot.name s) (Snapshot.generation s) !held))
        snaps;
      Buffer.contents buf

let allocation_areas agg =
  let geom = Aggregate.geometry agg in
  let buf = Buffer.create 128 in
  for rg = 0 to Geometry.raid_group_count geom - 1 do
    let frees =
      List.init (Geometry.aa_count geom) (fun aa -> Aggregate.aa_free agg ~rg ~aa)
      |> List.sort compare
    in
    let n = List.length frees in
    let capacity = Geometry.aa_stripes geom * Geometry.data_drives geom ~rg in
    Buffer.add_string buf
      (Printf.sprintf
         "raid group %d: %d AAs of %d blocks; free in fullest %d, median %d, emptiest %d\n" rg
         n capacity (List.nth frees 0)
         (List.nth frees (n / 2))
         (List.nth frees (n - 1)))
  done;
  Buffer.contents buf

let faults agg =
  Aggregate.refresh_fault_counters agg;
  let buf = Buffer.create 128 in
  (match Disk.fault (Aggregate.disk agg) with
  | None -> Buffer.add_string buf "faults: no fault plan attached\n"
  | Some _ ->
      let c name = Counters.read (Aggregate.counters agg) name in
      Buffer.add_string buf
        (Printf.sprintf
           "faults: %d media errors, %d transient retries, %d degraded reads, %d rebuilt \
            blocks, %d unrecoverable\n"
           (c "media_errors") (c "transient_retries") (c "degraded_reads") (c "rebuild_blocks")
           (c "unrecoverable_reads"));
      Array.iter
        (fun raid ->
          if Raid.degraded raid then
            Buffer.add_string buf
              (Printf.sprintf "  raid group %d: DEGRADED, rebuild %d blocks done\n"
                 (Raid.rg raid) (Raid.rebuild_blocks raid)))
        (Aggregate.raid_groups agg));
  Buffer.contents buf
