open Wafl_storage

let space agg =
  let buf = Buffer.create 256 in
  let geom = Aggregate.geometry agg in
  let total = Geometry.total_data_blocks geom in
  let map = Aggregate.agg_map agg in
  let free = Counters.read (Aggregate.counters agg) "agg_free_blocks" in
  let held = Counters.read (Aggregate.counters agg) "snapshot_held_blocks" in
  Buffer.add_string buf
    (Printf.sprintf "aggregate: %d blocks total, %d used, %d free, %d snapshot-held\n" total
       (Bitmap_file.used_count map) free held);
  List.iter
    (fun vol ->
      let vmap = Volume.vol_map vol in
      Buffer.add_string buf
        (Printf.sprintf "  volume %d: %d files, %d/%d vvbns used\n" (Volume.id vol)
           (Volume.file_count vol)
           (Bitmap_file.used_count vmap)
           (Volume.vvbn_space vol)))
    (Aggregate.volumes agg);
  let cache = Aggregate.buffer_cache agg in
  Buffer.add_string buf
    (Printf.sprintf "buffer cache: %d/%d blocks resident, %.1f%% hit rate\n"
       (Buffer_cache.length cache) (Buffer_cache.capacity cache)
       (100.0 *. Buffer_cache.hit_rate cache));
  Buffer.contents buf

let snapshots agg =
  match Aggregate.snapshots agg with
  | [] -> "no snapshots\n"
  | snaps ->
      let buf = Buffer.create 128 in
      List.iter
        (fun s ->
          (* Held = pinned blocks no longer in the active tree. *)
          let words = Snapshot.held_words s in
          let active = Aggregate.agg_map agg in
          let held = ref 0 in
          Array.iteri
            (fun w word ->
              if word <> 0L then
                for i = 0 to 63 do
                  if Wafl_util.Bitops.get word i then begin
                    let pvbn = (w * 64) + i in
                    if
                      Geometry.vbn_valid (Aggregate.geometry agg) pvbn
                      && not (Bitmap_file.mem active pvbn)
                    then incr held
                  end
                done)
            words;
          Buffer.add_string buf
            (Printf.sprintf "snapshot %-16s generation %-5d holds %d otherwise-free blocks\n"
               (Snapshot.name s) (Snapshot.generation s) !held))
        snaps;
      Buffer.contents buf

let allocation_areas agg =
  let geom = Aggregate.geometry agg in
  let buf = Buffer.create 128 in
  for rg = 0 to Geometry.raid_group_count geom - 1 do
    let frees =
      List.init (Geometry.aa_count geom) (fun aa -> Aggregate.aa_free agg ~rg ~aa)
      |> List.sort compare
    in
    let n = List.length frees in
    let capacity = Geometry.aa_stripes geom * Geometry.data_drives geom ~rg in
    Buffer.add_string buf
      (Printf.sprintf
         "raid group %d: %d AAs of %d blocks; free in fullest %d, median %d, emptiest %d\n" rg
         n capacity (List.nth frees 0)
         (List.nth frees (n / 2))
         (List.nth frees (n - 1)))
  done;
  Buffer.contents buf

(* Render one histogram line: count, mean, p50, p99. *)
let histo_line buf label h =
  let module H = Wafl_util.Histogram in
  Buffer.add_string buf
    (Printf.sprintf "  %-28s %8d  mean %10.1f  p50 %10.1f  p99 %10.1f\n" label (H.count h)
       (H.mean h) (H.percentile h 50.0) (H.percentile h 99.0))

let perf ?elapsed m =
  let module M = Wafl_obs.Metrics in
  let module H = Wafl_util.Histogram in
  let buf = Buffer.create 512 in
  let with_prefix prefix l =
    List.filter_map
      (fun (name, v) ->
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then
          Some (String.sub name pl (String.length name - pl), v)
        else None)
      l
  in
  (* Checkpoints *)
  let cps = M.counter_value m "cp.count" in
  Buffer.add_string buf
    (Printf.sprintf "checkpoints: %.0f completed, %.0f buffers cleaned\n" cps
       (M.counter_value m "cp.buffers_cleaned"));
  (match M.histo m "cp.duration_us" with
  | Some h when H.count h > 0 -> histo_line buf "cp duration (us)" h
  | _ -> ());
  let phases = with_prefix "cp.phase_us." (M.histograms m) in
  if phases <> [] then begin
    Buffer.add_string buf "cp phase totals (virtual us):\n";
    List.iter
      (fun (phase, h) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %10.0f  (%d intervals)\n" phase
             (H.mean h *. float_of_int (H.count h))
             (H.count h)))
      phases
  end;
  (* Waffinity queues *)
  let waits = with_prefix "sched.wait_us." (M.histograms m) in
  if waits <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "message queues (%.0f messages dispatched):\n"
         (M.counter_value m "sched.messages"));
    List.iter (fun (kind, h) -> histo_line buf ("wait " ^ kind) h) waits;
    List.iter
      (fun (kind, h) -> histo_line buf ("service " ^ kind) h)
      (with_prefix "sched.service_us." (M.histograms m))
  end;
  (* Cleaner pool *)
  let busy = M.counter_value m "cleaner.busy_us" in
  let work = M.counter_value m "cleaner.work_msgs" in
  Buffer.add_string buf
    (Printf.sprintf "cleaners: %.0f work messages, %.0f busy virtual us, %.0f active%s\n" work
       busy
       (M.gauge_value m "cleaner.active")
       (match elapsed with
       | Some e when e > 0.0 && M.gauge_value m "cleaner.active" > 0.0 ->
           Printf.sprintf ", %.1f%% utilization"
             (100.0 *. busy /. (e *. M.gauge_value m "cleaner.active"))
       | _ -> ""));
  (* RAID *)
  Buffer.add_string buf
    (Printf.sprintf "raid: %.0f ios, %.0f blocks written\n" (M.counter_value m "raid.ios")
       (M.counter_value m "raid.blocks"));
  (match M.histo m "raid.io_service_us" with
  | Some h when H.count h > 0 -> histo_line buf "raid service (us)" h
  | _ -> ());
  (match M.histo m "raid.io_wait_us" with
  | Some h when H.count h > 0 -> histo_line buf "raid queue wait (us)" h
  | _ -> ());
  (match M.histo m "tetris.fill_blocks" with
  | Some h when H.count h > 0 -> histo_line buf "tetris fill (blocks)" h
  | _ -> ());
  (* Flash media model (DESIGN.md §4.13): write amplification and the GC
     push-back behind it.  Absent entirely without an FTL attached. *)
  let host_pages = M.counter_value m "flash.host_pages" in
  if host_pages > 0.0 then begin
    let gc_pages = M.counter_value m "flash.gc_pages" in
    Buffer.add_string buf
      (Printf.sprintf
         "flash: %.0f host pages, %.0f gc relocations (waf %.2f), %.0f erases in %.0f gc \
          runs, %.0f us host stall\n"
         host_pages gc_pages
         ((host_pages +. gc_pages) /. host_pages)
         (M.counter_value m "flash.erases")
         (M.counter_value m "flash.gc_runs")
         (M.counter_value m "flash.gc_stall_us"))
  end;
  (* Write path: end-to-end client latency per op kind plus the CP
     back-pressure component (DESIGN.md §4.10). *)
  let e2e = with_prefix "op.e2e_us." (M.histograms m) in
  let e2e = List.filter (fun (_, h) -> H.count h > 0) e2e in
  if e2e <> [] then begin
    Buffer.add_string buf "write path (end-to-end client latency, us):\n";
    List.iter (fun (kind, h) -> histo_line buf kind h) e2e;
    match M.histo m "op.throttle_us" with
    | Some h when H.count h > 0 -> histo_line buf "nvlog throttle (us)" h
    | _ -> ()
  end;
  (* Overload & QoS (DESIGN.md §4.11): watermark admission stalls,
     back-to-back CP episodes, and per-volume admission outcomes. *)
  let stall = M.counter_value m "nvlog.stall_us" in
  let b2b = M.counter_value m "cp.b2b" in
  let admitted = M.counter_value m "qos.admitted_ops" in
  let shed = M.counter_value m "qos.shed_ops" in
  if stall > 0.0 || b2b > 0.0 || admitted > 0.0 || shed > 0.0 then begin
    Buffer.add_string buf
      (Printf.sprintf
         "overload: %.0f us client stall in nvlog admission, %.0f back-to-back CPs in %.0f \
          episodes\n"
         stall b2b
         (M.counter_value m "cp.b2b_episodes"));
    if admitted > 0.0 || shed > 0.0 then begin
      Buffer.add_string buf
        (Printf.sprintf "qos: %.0f ops admitted (%.0f after a delay), %.0f shed\n" admitted
           (M.counter_value m "qos.throttled_ops") shed);
      match M.histo m "qos.queue_wait_us" with
      | Some h when H.count h > 0 -> histo_line buf "qos queue wait (us)" h
      | _ -> ()
    end
  end;
  Buffer.contents buf

let faults agg =
  Aggregate.refresh_fault_counters agg;
  let buf = Buffer.create 128 in
  (match Disk.fault (Aggregate.disk agg) with
  | None -> Buffer.add_string buf "faults: no fault plan attached\n"
  | Some _ ->
      let c name = Counters.read (Aggregate.counters agg) name in
      Buffer.add_string buf
        (Printf.sprintf
           "faults: %d media errors, %d transient retries, %d degraded reads, %d rebuilt \
            blocks, %d unrecoverable\n"
           (c "media_errors") (c "transient_retries") (c "degraded_reads") (c "rebuild_blocks")
           (c "unrecoverable_reads"));
      Array.iter
        (fun raid ->
          if Raid.degraded raid then
            Buffer.add_string buf
              (Printf.sprintf "  raid group %d: DEGRADED, rebuild %d blocks done\n"
                 (Raid.rg raid) (Raid.rebuild_blocks raid)))
        (Aggregate.raid_groups agg));
  (* NVRAM exhaustion is a fault even without a disk fault plan: it means
     admission control failed to hold writes back against CP progress. *)
  let exhausted = Counters.read (Aggregate.counters agg) "nvlog_exhausted_writes" in
  if exhausted > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "nvlog: %d writes refused on exhausted NVRAM (admission control failed to throttle)\n"
         exhausted);
  Buffer.contents buf
