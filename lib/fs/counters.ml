type t = (string, int ref) Hashtbl.t
type token = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16
let token (_ : t) : token = Hashtbl.create 8

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add tbl name r;
      r

let read t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let set t name v = cell t name := v
let add t name d = cell t name := !(cell t name) + d
let stage tok name d = cell tok name := !(cell tok name) + d
let staged tok name = read tok name

let token_cell = cell

let flush t tok =
  let updated = ref 0 in
  (* Integer addition commutes, so the visit order cannot leak. lint-ok *)
  (* Cells persist across flushes (holders cache them); zero them instead
     of dropping them.  The update count — which feeds a per-update CPU
     charge — counts cells with a nonzero staged delta, which matches the
     old table-length count because a cell only exists while staged. *)
  Hashtbl.iter (* lint-ok: commutative *)
    (fun name r ->
      if !r <> 0 then begin
        incr updated;
        add t name !r;
        r := 0
      end)
    tok;
  !updated

let exact t toks name =
  read t name + List.fold_left (fun acc tok -> acc + staged tok name) 0 toks

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare (* lint-ok *)
