open Wafl_util

type t = {
  vol : int;
  id : int;
  mutable nfbns : int;
  bmap : Intvec.t; (* fbn -> vvbn *)
  bmap_locations : Intvec.t; (* bmap block idx -> pvbn *)
  mutable front : (int, int64) Hashtbl.t;
  mutable cp : (int, int64) Hashtbl.t;
  mutable cp_outstanding : bool;
  dirty_bmap : (int, unit) Hashtbl.t;
}

let create ~vol ~id =
  {
    vol;
    id;
    nfbns = 0;
    bmap = Intvec.create ~default:(-1) ();
    bmap_locations = Intvec.create ~default:(-1) ();
    front = Hashtbl.create 16;
    cp = Hashtbl.create 16;
    cp_outstanding = false;
    dirty_bmap = Hashtbl.create 4;
  }

let vol t = t.vol
let id t = t.id
let nfbns t = t.nfbns

let write t ~fbn ~content =
  if fbn < 0 then invalid_arg "File.write: negative fbn";
  Hashtbl.replace t.front fbn content;
  if fbn >= t.nfbns then t.nfbns <- fbn + 1

let read_cached t ~fbn =
  match Hashtbl.find_opt t.front fbn with
  | Some c -> Some c
  | None -> Hashtbl.find_opt t.cp fbn

let dirty_front t = Hashtbl.length t.front
let vvbn_of_fbn t fbn = Intvec.get t.bmap fbn

let set_vvbn t ~fbn ~vvbn =
  let old = Intvec.get t.bmap fbn in
  Intvec.set t.bmap fbn vvbn;
  Hashtbl.replace t.dirty_bmap (fbn / Layout.entries_per_bmap_block) ();
  old

let cp_snapshot t =
  if t.cp_outstanding then invalid_arg "File.cp_snapshot: previous CP not finished";
  let snapshot = t.front in
  t.front <- t.cp;
  (* The old CP table is empty after cp_done; reuse it as the new front. *)
  t.cp <- snapshot;
  t.cp_outstanding <- true

let cp_buffers t =
  Hashtbl.fold (fun fbn content acc -> (fbn, content) :: acc) t.cp [] (* lint-ok: sorted *)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let cp_buffer_count t = Hashtbl.length t.cp

let cp_done t =
  (* [clear], not [reset]: keep the bucket table at its high-water size so
     per-CP reuse doesn't regrow it from scratch every cycle. *)
  Hashtbl.clear t.cp;
  t.cp_outstanding <- false

let dirty_bmap_blocks t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_bmap [] |> List.sort Int.compare (* lint-ok *)

let dirty_bmap_blocks_desc t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_bmap [] (* lint-ok: sorted below *)
  |> List.sort (fun a b -> Int.compare b a)

let bmap_entries t index =
  let base = index * Layout.entries_per_bmap_block in
  Intvec.extract t.bmap ~pos:base ~len:Layout.entries_per_bmap_block

let bmap_location t index = Intvec.get t.bmap_locations index

let set_bmap_location t index pvbn =
  let old = Intvec.get t.bmap_locations index in
  Intvec.set t.bmap_locations index pvbn;
  old

let clear_dirty_bmap t = Hashtbl.clear t.dirty_bmap

let inode_rec t =
  let locs = ref [] in
  Intvec.iteri_set t.bmap_locations (fun idx pvbn -> locs := (idx, pvbn) :: !locs);
  {
    Layout.file_id = t.id;
    nfbns = t.nfbns;
    bmap_pvbns = Array.of_list (List.rev !locs);
  }

let of_inode_rec ~vol (rec_ : Layout.inode_rec) =
  let t = create ~vol ~id:rec_.Layout.file_id in
  t.nfbns <- rec_.Layout.nfbns;
  Array.iter
    (fun (idx, pvbn) -> ignore (set_bmap_location t idx pvbn))
    rec_.Layout.bmap_pvbns;
  t

let load_bmap_block t ~index ~entries =
  let base = index * Layout.entries_per_bmap_block in
  Array.iteri (fun i vvbn -> if vvbn >= 0 then Intvec.set t.bmap (base + i) vvbn) entries
