(** An allocation bitmap stored as a metafile ("one bit for each block in
    the file system to track whether the corresponding block is used or
    free", §III-C).

    The bitmap tracks which of its own metafile blocks are dirty (have
    had bits toggled since the last consistency point) and where each
    metafile block lives on disk, so a CP can rewrite exactly the dirty
    blocks at fresh locations.  A set bit means {e in use}. *)

type t

val create : bits:int -> t
(** All bits clear (everything free). *)

val nbits : t -> int
val nblocks : t -> int
(** Number of metafile blocks backing the bitmap. *)

val block_of_bit : int -> int
(** Which metafile block covers a given bit (see
    {!Layout.bits_per_map_block}). *)

val mem : t -> int -> bool
val set : t -> int -> unit
(** Raises [Invalid_argument] if the bit is already set — a double
    allocation, which must never happen. *)

val clear : t -> int -> unit
(** Raises [Invalid_argument] if the bit is already clear — a double
    free. *)

val free_count : t -> int
val used_count : t -> int

val find_free : t -> lo:int -> hi:int -> start:int -> int option
(** Lowest clear bit in [\[max lo start, hi\]], scanning word-at-a-time.
    [None] when the range is fully allocated. *)

val count_free_in : t -> lo:int -> hi:int -> int
val words_scanned : t -> int
(** Cumulative 64-bit words examined by [find_free] / [count_free_in];
    the infrastructure charges CPU proportionally. *)

(** {1 Metafile bookkeeping} *)

val dirty_blocks : t -> int list
(** Metafile blocks with bits toggled since the last [clear_dirty],
    ascending. *)

val dirty_blocks_desc : t -> int list
(** [dirty_blocks] in descending order, for prepend-accumulator callers
    that would otherwise reverse the ascending list. *)

val dirty_count : t -> int
val mark_dirty : t -> int -> unit
(** Explicitly dirty a block (used when relocating the block itself). *)

val clear_dirty : t -> unit
val words_of_block : t -> int -> int64 array
(** Copy of the words backing metafile block [i], for serialization. *)

val snapshot_words : t -> int64 array
(** Copy of the whole bit array; used to capture the block-usage state a
    snapshot pins. *)

val load_block : t -> int -> int64 array -> unit
(** Overwrite block [i]'s words from a disk payload (recovery). *)

val location : t -> int -> int
(** Current pvbn of metafile block [i], or -1 if never written. *)

val set_location : t -> int -> int -> int
(** [set_location t i pvbn] records the new location and returns the
    previous one (-1 if none) so the caller can free it. *)
