(** Human-readable state reports for a mounted aggregate — the `df` /
    `snap list` style views an operator of the real system would use,
    plus allocation-quality summaries used by examples and tests. *)

val space : Aggregate.t -> string
(** Totals, free/used/snapshot-held blocks, per-volume vvbn usage, and
    the buffer-cache hit rate. *)

val snapshots : Aggregate.t -> string
(** One line per snapshot: name, pinned generation, held blocks. *)

val allocation_areas : Aggregate.t -> string
(** Per-RAID-group occupancy of Allocation Areas (free blocks in the
    emptiest / median / fullest AA) — the state the §IV-D selection
    policy operates on. *)

val perf : ?elapsed:float -> Wafl_obs.Metrics.t -> string
(** Operator performance summary from a tracer's metrics registry
    ([Wafl_obs.Trace.metrics]): CP count and duration percentiles with
    per-phase virtual-time totals, per-affinity-kind queue wait/service
    p50/p99, cleaner-pool activity (utilization when [elapsed] — the
    run's virtual duration — is given), RAID I/O service times and
    tetris stripe fill.  When the run saw overload machinery engage, an
    overload section reports NVLog admission stall time and back-to-back
    CP episodes, and a QoS section reports admitted/delayed/shed ops with
    queue-wait percentiles (DESIGN.md §4.11).  Sections with no data are
    omitted. *)

val faults : Aggregate.t -> string
(** Fault-injection counters (media errors, transient retries, degraded
    reads, rebuild progress) and any RAID group currently degraded;
    refreshes the counters first.  One line when no plan is attached.
    Writes refused on an exhausted NVRAM ([Nvlog.Exhausted], counter
    ["nvlog_exhausted_writes"]) are reported here too — they indicate
    admission control failed to throttle clients against CP progress. *)
