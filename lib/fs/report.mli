(** Human-readable state reports for a mounted aggregate — the `df` /
    `snap list` style views an operator of the real system would use,
    plus allocation-quality summaries used by examples and tests. *)

val space : Aggregate.t -> string
(** Totals, free/used/snapshot-held blocks, per-volume vvbn usage, and
    the buffer-cache hit rate. *)

val snapshots : Aggregate.t -> string
(** One line per snapshot: name, pinned generation, held blocks. *)

val allocation_areas : Aggregate.t -> string
(** Per-RAID-group occupancy of Allocation Areas (free blocks in the
    emptiest / median / fullest AA) — the state the §IV-D selection
    policy operates on. *)

val faults : Aggregate.t -> string
(** Fault-injection counters (media errors, transient retries, degraded
    reads, rebuild progress) and any RAID group currently degraded;
    refreshes the counters first.  One line when no plan is attached. *)
