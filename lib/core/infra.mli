(** The White Alligator infrastructure (paper §IV-B2, §IV-D).

    The infrastructure is the only component that reads or writes
    allocation metafiles, and all of its work runs as Waffinity messages:
    per-drive bucket refills and commits run in [Agg_range] affinities
    (or all in the single [Aggregate_vbn] affinity when [parallel] is
    false — the paper's "serialized infrastructure" instrumentation);
    volume-side work runs in [Vol_range] / [Volume_vbn] likewise.

    Physical buckets follow the §IV-D cycle: one bucket per data drive is
    carved from the current Allocation Area of each RAID group; when all
    of a group's buckets have been returned and refilled they are
    collectively reinserted into the bucket cache, guaranteeing equal
    progress down each drive.  Virtual (vvbn) buckets refill
    independently per bucket — volumes have no drive-fairness constraint.

    Cleaner threads interact with this module only through {!Api}. *)

type config = {
  parallel : bool;  (** parallel infrastructure (Range affinities) vs serialized *)
  chunk : int;  (** VBNs per bucket; "typically a multiple of 64" *)
  ranges : int;  (** Range-affinity instances per metafile *)
  vol_buckets_per_cycle : int;  (** concurrent vvbn buckets per volume *)
  stage_capacity : int;  (** frees per stage before commit *)
}

val default_config : config

type t

val create :
  ?obs:Wafl_obs.Trace.t -> Wafl_waffinity.Scheduler.t -> Wafl_fs.Aggregate.t -> config -> t
(** Registers every existing volume and kicks off the initial refill
    cycles (the bucket cache is being filled as this returns).  [obs]
    (default disabled) is handed to each cycle's {!Tetris}. *)

val register_volume : t -> Wafl_fs.Volume.t -> unit
val config : t -> config
val aggregate : t -> Wafl_fs.Aggregate.t
val scheduler : t -> Wafl_waffinity.Scheduler.t

(** {1 Operations used by {!Api}} *)

val get_phys : t -> Bucket.t
(** Blocking receive from the physical bucket cache. *)

val get_virt : t -> Wafl_fs.Volume.t -> Bucket.t
val put : t -> Bucket.t -> unit
(** Enqueue a returned bucket for commit + refill (posts an
    infrastructure message; does not block). *)

val commit_frees :
  ?owner:int -> t -> target:Stage.target -> vbns:int list -> token:Wafl_fs.Counters.token -> unit
(** Post messages committing staged frees to the allocation metafiles,
    split by metafile block range so they parallelize across Range
    affinities.  Also applies the cleaner's loose-accounting token.
    [owner] is the staging cleaner's index; when sanitizing, the token
    flush probes that cleaner's token domain (see DESIGN.md §4.7). *)

val meta_affinity : t -> Wafl_fs.Aggregate.meta_ref -> Wafl_waffinity.Affinity.t
(** Range affinity under which a metafile block's CP write-out runs
    (single [Aggregate_vbn] lane when serialized). *)

val post_meta : t -> affinity:Wafl_waffinity.Affinity.t -> (unit -> unit) -> unit
(** Post a metafile write-out message (CP phase B fan-out). *)

val flush_token : ?owner:int -> t -> Wafl_fs.Counters.token -> unit
(** Post a message applying a cleaner's loose-accounting token even when
    no frees are staged (end-of-CP flush).  [owner] as in
    {!commit_frees}. *)

val phys_cache_length : t -> int
val virt_cache_length : t -> Wafl_fs.Volume.t -> int

(** {1 CP support} *)

val quiesce_commits : t -> unit
(** Park until every posted commit message (bucket commits and free
    commits) has been applied to the allocation metafiles; called by the
    CP engine before it serializes those metafiles. *)

val live_tetrises : t -> Tetris.t list
(** Current tetris of every RAID group, for CP-boundary flushing. *)

(** {1 Statistics} *)

val buckets_filled : t -> int
val buckets_committed : t -> int
val vbns_allocated : t -> int
(** VBNs committed as used (physical + virtual). *)

val vbns_freed : t -> int
val metafile_blocks_touched : t -> int
(** Distinct metafile-block touches across all commit and free messages —
    the quantity that separates random from sequential write (§V-A2). *)

val messages_posted : t -> int

val dump : t -> out_channel -> unit
(** Diagnostic dump of cycle and cache state. *)
