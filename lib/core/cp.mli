(** The consistency-point engine (paper §II-C).

    A CP atomically snapshots all dirty in-memory state, cleans every
    dirty inode through the cleaner pool (write allocation proper), then
    relocates and writes out every dirty metafile block, flushes the
    remaining tetris contents, quiesces RAID, and finally publishes the
    superblock — the atomic commit.  Operations logged after the snapshot
    belong to the next CP.

    Work distribution implements both §V-C optimizations: small dirty
    inodes are batched into one cleaner message, and large dirty inodes
    are split into segments processed by multiple cleaners in parallel. *)

type config = {
  batching : bool;  (** batch small inodes into one message *)
  batch_max_inodes : int;
  batch_max_buffers : int;
  segment_buffers : int;  (** split inodes with more dirty buffers than this *)
  timer_interval : float option;  (** periodic CP trigger, virtual µs *)
  serial_cleaning : bool;
      (** historical pre-2008 mode (§III-B/C): inode cleaning and metafile
          relocation run as Serial-affinity messages with VBN-at-a-time
          allocation, excluding all client processing while they run *)
  fair_cp : bool;
      (** admit cleaning work round-robin across volumes
          ({!Wafl_qos.Fair.interleave}) so one hot tenant cannot
          monopolize the front of a checkpoint; off reproduces the
          historical volume-order walk exactly *)
}

val default_config : config

type t

val create : ?obs:Wafl_obs.Trace.t -> Infra.t -> Cleaner_pool.t -> config -> t
(** Spawns the CP manager fiber (label ["cp"]) and, if configured, the
    timer fiber.  [obs] (default disabled) records the CP phase timeline:
    one ["cp <phase>"] span per phase, a whole-["CP"] span with
    buffer/metafile counts, per-phase duration histograms
    (["cp.phase_us.<phase>"]) and CP count/duration metrics.

    Back-to-back CPs — a CP whose predecessor committed with the
    half-full trigger already re-reached — are counted in the aggregate's
    {!Wafl_fs.Counters} as ["b2b_cps"] (with maximal runs counted as
    ["b2b_episodes"]) and as the ["cp.b2b"]/["cp.b2b_episodes"]
    metrics. *)

val request : t -> unit
(** Ask for a CP; no-op if one is already running (it will run again
    afterwards if more state got dirty — the back-to-back CP behaviour of
    a loaded system). *)

val run_now : t -> unit
(** Fiber context: request a CP and park until one full CP (snapshotting
    state at least as new as now) has committed. *)

val chaos_publish_before_quiesce : bool ref
(** Test-only chaos hook: when set, the CP publishes the superblock
    {e before} the io-flush quiesce and failed-write repair — a
    deliberately broken commit ordering.  A crash landing in the
    publish-to-quiesce window then loses acknowledged writes, which the
    randomized crash harness must detect (negative control proving the
    harness oracle works).  Never set outside tests. *)

val chaos_force_b2b : bool ref
(** Test-only chaos hook: book every CP as back-to-back.  Pure
    accounting — counters and metrics only, scheduling untouched — used
    to drive the health watchdog's B2B-streak rule in tests.  Never set
    outside tests. *)

val running : t -> bool

val phase : t -> string
(** Diagnostic: which CP phase is executing ("idle" between CPs). *)

val cps_completed : t -> int
val last_duration : t -> float
val buffers_last_cp : t -> int
val meta_blocks_last_cp : t -> int
val meta_passes_last_cp : t -> int
(** Iterations the metafile fixpoint took (bounded; typically 2-3). *)

type record = {
  generation : int;  (** superblock generation the CP published *)
  started_at : float;
  duration : float;
  buffers : int;
  meta_blocks : int;
  passes : int;
}

val history : t -> record list
(** The most recent CPs (up to 64), oldest first — per-CP observability
    for operators and the test suite. *)
