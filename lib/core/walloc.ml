type config = {
  workers : int option;
  parallel_infra : bool;
  cleaner_threads : int;
  max_cleaner_threads : int;
  dynamic_cleaners : bool;
  tuner : Tuner.config;
  chunk : int;
  ranges : int;
  vol_buckets : int;
  stage_capacity : int;
  batching : bool;
  batch_max_inodes : int;
  batch_max_buffers : int;
  segment_buffers : int;
  cp_timer : float option;
  serial_cleaning : bool;
  fair_cp : bool;
  streams : [ `Off | `Temperature ];
}

let default_config =
  {
    workers = None;
    parallel_infra = true;
    cleaner_threads = 4;
    max_cleaner_threads = 8;
    dynamic_cleaners = false;
    tuner = Tuner.default_config;
    chunk = 128;
    ranges = 8;
    vol_buckets = 8;
    stage_capacity = 64;
    batching = true;
    batch_max_inodes = 16;
    batch_max_buffers = 64;
    segment_buffers = 4096;
    cp_timer = None;
    serial_cleaning = false;
    fair_cp = false;
    streams = `Off;
  }

let serialized_config =
  { default_config with parallel_infra = false; cleaner_threads = 1; max_cleaner_threads = 1 }

type t = {
  cfg : config;
  agg : Wafl_fs.Aggregate.t;
  sched : Wafl_waffinity.Scheduler.t;
  infra : Infra.t;
  pool : Cleaner_pool.t;
  cp : Cp.t;
  tuner : Tuner.t option;
}

let create ?(obs = Wafl_obs.Trace.disabled) agg cfg =
  let eng = Wafl_fs.Aggregate.engine agg in
  (* Sanitizing engines get the affinity-isolation checker: the scheduler
     registers each message's affinity, the engine's access hook validates
     every probe against it, and Infra registers the map-block owners. *)
  let isolation =
    if Wafl_sim.Engine.sanitizing eng then begin
      let iso = Wafl_waffinity.Isolation.create () in
      Wafl_sim.Engine.set_access_hook eng (fun fid shared _mode ->
          Wafl_waffinity.Isolation.check iso ~fid ~shared);
      Some iso
    end
    else None
  in
  let sched =
    Wafl_waffinity.Scheduler.create ?workers:cfg.workers ?isolation ~obs eng
      ~cost:(Wafl_fs.Aggregate.cost agg) ()
  in
  let infra =
    Infra.create ~obs sched agg
      {
        Infra.parallel = cfg.parallel_infra;
        chunk = cfg.chunk;
        ranges = cfg.ranges;
        (* Guarantee a virtual bucket is always available to any cleaner
           that parks while holding a physical bucket: with more virtual
           buckets than cleaner threads, the per-volume cache can never be
           fully drained by held buckets (deadlock avoidance). *)
        vol_buckets_per_cycle = max cfg.vol_buckets (cfg.max_cleaner_threads + 2);
        stage_capacity = cfg.stage_capacity;
      }
  in
  let pool =
    Cleaner_pool.create ~obs infra ~max_threads:cfg.max_cleaner_threads
      ~initial_threads:cfg.cleaner_threads
  in
  let cp =
    Cp.create ~obs infra pool
      {
        Cp.batching = cfg.batching;
        batch_max_inodes = cfg.batch_max_inodes;
        batch_max_buffers = cfg.batch_max_buffers;
        segment_buffers = cfg.segment_buffers;
        timer_interval = cfg.cp_timer;
        serial_cleaning = cfg.serial_cleaning;
        fair_cp = cfg.fair_cp;
      }
  in
  (* Watermark admission ([Aggregate.wait_for_log_space]) can now start
     early CPs; a no-op until watermarks are configured on the NVLog. *)
  Wafl_fs.Aggregate.set_cp_trigger agg (fun () -> Cp.request cp);
  (* Multi-stream write allocation: route tetris payloads to flash write
     streams by temperature.  Only consulted when a media model is
     attached, so `Off vs `Temperature is behavior-identical without
     flash. *)
  (match cfg.streams with
  | `Off -> ()
  | `Temperature -> Wafl_fs.Aggregate.set_stream_classifier agg (Tetris.make_temperature_stream ()));
  let tuner = if cfg.dynamic_cleaners then Some (Tuner.create pool cfg.tuner) else None in
  { cfg; agg; sched; infra; pool; cp; tuner }

let config t = t.cfg
let aggregate t = t.agg
let scheduler t = t.sched
let infra t = t.infra
let pool t = t.pool
let cp t = t.cp
let tuner t = t.tuner
let register_volume t vol = Infra.register_volume t.infra vol
