(** A bucket: a chunk of contiguous free VBNs on one target, the basic
    unit of allocation in White Alligator (paper §IV-C).

    A {e physical} bucket covers VBNs of a single data drive (so
    consuming it in order lays consecutive file blocks contiguously on
    that drive) and carries a reference to the tetris of its refill
    cycle.  A {e virtual} bucket covers vvbns of one FlexVol volume.

    A bucket is owned by exactly one cleaner thread between GET and PUT,
    so {!take} needs no locking — the amortization argument of §IV-C. *)

type target = Phys of { rg : int; drive : int } | Virt of { vol : int }

type t

val make : target:target -> ?tetris:Tetris.t -> vbns:int array -> unit -> t
(** [vbns] must be the ascending free VBNs of the chunk.  Physical
    buckets require [tetris]; virtual ones must omit it. *)

val target : t -> target
val tetris : t -> Tetris.t option
val capacity : t -> int
val remaining : t -> int
val is_exhausted : t -> bool

val take : t -> int option
(** Consume the next VBN; [None] when exhausted. *)

val consumed : t -> int list
(** VBNs taken so far, ascending — what the infrastructure must commit
    to the allocation metafiles. *)

val consumed_count : t -> int
(** [List.length (consumed t)] without building the list. *)

val unused : t -> int list
(** VBNs never taken (bucket returned early at a CP boundary); they
    simply remain free. *)

val mark_committed : t -> unit
(** Set by the CP metafile pass when it commits consumed VBNs inline;
    tells the infrastructure not to commit them again on PUT. *)

val is_committed : t -> bool
